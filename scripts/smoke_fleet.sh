#!/usr/bin/env bash
# End-to-end smoke test for a spind fleet: boot three gossiping daemons
# plus a single-node reference, wait for readiness (first gossip round),
# fan a seed sweep across the fleet round-robin and assert every
# response is byte-identical (sha256) to the reference node's answer,
# repeat the sweep rotated one node over and prove zero new simulations
# ran (the fleet answered from its distributed cache), stream one
# request over SSE, trace one proxied request end to end (traceparent
# propagation across the hop, both nodes logging the same trace ID, a
# merged /v1/trace timeline with spans from >=2 nodes, a
# Perfetto-loadable rendering), SIGKILL a node mid-sweep and assert the survivors
# answer everything — still byte-identical — and detect the death via
# gossip. With SMOKE_ARTIFACTS_DIR set, per-node logs and metrics are
# left there for CI to upload. Run from the repo root.
set -euo pipefail

BASE="${SPIND_FLEET_BASE_PORT:-18190}"
A1="127.0.0.1:$BASE"; A2="127.0.0.1:$((BASE+1))"; A3="127.0.0.1:$((BASE+2))"
REF="127.0.0.1:$((BASE+3))"
PEERS="$A1,$A2,$A3"
TMP="$(mktemp -d)"
PIDS=()

collect_artifacts() {
  if [ -n "${SMOKE_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS_DIR"
    cp "$TMP"/*.log "$SMOKE_ARTIFACTS_DIR/" 2>/dev/null || true
    cp "$TMP/trace-merged.json" "$TMP/trace-merged-perfetto.json" "$SMOKE_ARTIFACTS_DIR/" 2>/dev/null || true
    for a in "$A1" "$A2" "$A3"; do
      curl -fsS --max-time 2 "http://$a/metrics" > "$SMOKE_ARTIFACTS_DIR/metrics-$a.txt" 2>/dev/null || true
      curl -fsS --max-time 2 "http://$a/v1/fleet" > "$SMOKE_ARTIFACTS_DIR/fleet-$a.json" 2>/dev/null || true
    done
  fi
}
cleanup() {
  collect_artifacts
  for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build"
go build -o "$TMP/spind" ./cmd/spind

boot() { # boot <addr> <node-id> <peers>
  local addr="$1" id="$2" peers="$3"
  "$TMP/spind" -addr "$addr" -cachedir "$TMP/cache-$id" -gossip 200ms \
    ${peers:+-peers "$peers"} ${id:+-node "$id"} 2> "$TMP/$id.log" &
  PIDS+=("$!")
}

echo "== boot reference node + 3-node fleet (gossip 200ms)"
boot "$REF" ref ""
boot "$A1" n1 "$PEERS"
boot "$A2" n2 "$PEERS"
boot "$A3" n3 "$PEERS"

wait_ready() { # wait_ready <addr> [path]
  local addr="$1" path="${2:-/readyz}"
  for i in $(seq 1 100); do
    if curl -fsS "http://$addr$path" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "node $addr never became ready ($path)" >&2
  return 1
}
wait_ready "$REF" /healthz
for a in "$A1" "$A2" "$A3"; do wait_ready "$a"; done

echo "== fleet admin view: all three alive on every node"
for a in "$A1" "$A2" "$A3"; do
  curl -fsS "http://$a/v1/fleet" > "$TMP/fleet.json"
  alive="$(grep -c '"state": "alive"' "$TMP/fleet.json" || true)"
  [ "$alive" -eq 3 ] || { echo "node $a sees $alive alive members, want 3:"; cat "$TMP/fleet.json"; exit 1; }
done

body() { # body <seed>
  printf '{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":2000,"seed":%d}' "$1"
}
NODES=("$A1" "$A2" "$A3")

echo "== reference run (single node)"
for seed in $(seq 1 9); do
  curl -fsS -o "$TMP/ref-$seed.json" -d "$(body "$seed")" "http://$REF/v1/simulate"
done

echo "== fan the sweep across the fleet round-robin"
for seed in $(seq 1 9); do
  node="${NODES[$(( (seed - 1) % 3 ))]}"
  curl -fsS -o "$TMP/fleet-$seed.json" -d "$(body "$seed")" "http://$node/v1/simulate"
  cmp "$TMP/ref-$seed.json" "$TMP/fleet-$seed.json" \
    || { echo "seed $seed via $node differs from the single-node reference"; exit 1; }
done
sha256sum "$TMP"/ref-*.json > "$TMP/ref.sha256"
( cd "$TMP" && sed 's/ref-/fleet-/' ref.sha256 | sha256sum -c --quiet ) \
  || { echo "fleet responses not byte-identical to reference"; exit 1; }

sim_count() { # total executed simulations across the fleet
  local total=0 c
  for a in "$A1" "$A2" "$A3"; do
    c="$(curl -fsS "http://$a/metrics" | awk '/^spind_simulation_duration_seconds_count /{print $2}')"
    total=$((total + ${c:-0}))
  done
  echo "$total"
}

echo "== repeat the sweep rotated one node over: zero new simulations"
before="$(sim_count)"
for seed in $(seq 1 9); do
  node="${NODES[$(( seed % 3 ))]}"
  curl -fsS -D "$TMP/h" -o "$TMP/again-$seed.json" -d "$(body "$seed")" "http://$node/v1/simulate"
  cmp "$TMP/ref-$seed.json" "$TMP/again-$seed.json" \
    || { echo "repeated seed $seed differs"; exit 1; }
done
after="$(sim_count)"
[ "$before" -eq "$after" ] \
  || { echo "repeat sweep ran $((after - before)) new simulations, want 0"; exit 1; }
echo "   executed simulations fleet-wide: $after (unchanged across repeat)"

echo "== sweep endpoint across the hop"
SWEEP='{"fig":"10","cycles":5000,"warmup":500}'
curl -fsS -o "$TMP/sweep-ref.json" -d "$SWEEP" "http://$REF/v1/sweep"
curl -fsS -o "$TMP/sweep-n2.json" -d "$SWEEP" "http://$A2/v1/sweep"
cmp "$TMP/sweep-ref.json" "$TMP/sweep-n2.json" || { echo "sweep differs from reference"; exit 1; }

echo "== SSE stream"
SSEBODY='{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":2000,"seed":77,"telemetry":true,"epoch":200}'
curl -fsSN -o "$TMP/sse.txt" -d "$SSEBODY" "http://$A1/v1/simulate?stream=sse"
grep -q '^event: sample' "$TMP/sse.txt" || { echo "SSE stream carried no sample events:"; cat "$TMP/sse.txt"; exit 1; }
grep -q '^event: result' "$TMP/sse.txt" || { echo "SSE stream carried no result event"; exit 1; }

echo "== distributed tracing: traceparent propagation across a proxied hop"
TID="feedfacecafebeeffeedfacecafebeef"
PROXIED=""
for seed in $(seq 40 60); do
  curl -fsS -D "$TMP/th" -o "$TMP/tr" \
    -H "traceparent: 00-$TID-00f067aa0ba902b7-01" \
    -d "$(body "$seed")" "http://$A1/v1/simulate"
  if grep -qi '^x-fleet: proxy:' "$TMP/th"; then PROXIED="$seed"; break; fi
done
[ -n "$PROXIED" ] || { echo "no seed in 40..60 proxied from n1; every key landed on n1?"; exit 1; }
grep -qi "^traceparent: 00-$TID-" "$TMP/th" \
  || { echo "response did not adopt the caller's trace ID:"; cat "$TMP/th"; exit 1; }
OWNER="$(grep -i '^x-fleet:' "$TMP/th" | tr -d '[:space:]\r' | cut -d: -f3)"
grep -q "\"trace\":\"$TID\"" "$TMP/n1.log" \
  || { echo "n1 request log lacks the propagated trace ID:"; cat "$TMP/n1.log"; exit 1; }
grep -q "\"trace\":\"$TID\"" "$TMP/$OWNER.log" \
  || { echo "owner $OWNER request log lacks the propagated trace ID:"; cat "$TMP/$OWNER.log"; exit 1; }

echo "== merged cross-node timeline (/v1/trace/<id>)"
curl -fsS -o "$TMP/trace-merged.json" "http://$A1/v1/trace/$TID"
nodes="$(grep -o '"node":"[^"]*"' "$TMP/trace-merged.json" | sort -u | wc -l)"
[ "$nodes" -ge 2 ] \
  || { echo "merged trace has spans from $nodes node(s), want >=2:"; cat "$TMP/trace-merged.json"; exit 1; }
grep -q '"name":"proxy:' "$TMP/trace-merged.json" \
  || { echo "merged trace lacks the proxy hop span:"; cat "$TMP/trace-merged.json"; exit 1; }
curl -fsS -o "$TMP/trace-merged-perfetto.json" "http://$A1/v1/trace/$TID?format=perfetto"
grep -q '"traceEvents"' "$TMP/trace-merged-perfetto.json" \
  || { echo "merged perfetto trace malformed:"; cat "$TMP/trace-merged-perfetto.json"; exit 1; }
echo "   merged timeline spans $nodes nodes (proxied seed $PROXIED, owner $OWNER)"

echo "== build identity gossiped into the fleet view"
grep -q '"version":' "$TMP/fleet.json" \
  || { echo "fleet members carry no version field:"; cat "$TMP/fleet.json"; exit 1; }

echo "== SIGKILL n3 mid-sweep: survivors keep answering, byte-identical"
N3_PID="${PIDS[3]}"
for seed in $(seq 20 25); do
  curl -fsS -o "$TMP/ref-$seed.json" -d "$(body "$seed")" "http://$REF/v1/simulate"
done
(
  sleep 0.3
  kill -9 "$N3_PID"
) &
KILLER=$!
for seed in $(seq 20 25); do
  node="${NODES[$(( seed % 2 ))]}" # survivors only; n3 keys fall back
  curl -fsS -o "$TMP/kill-$seed.json" -d "$(body "$seed")" "http://$node/v1/simulate"
  cmp "$TMP/ref-$seed.json" "$TMP/kill-$seed.json" \
    || { echo "seed $seed after the kill differs from reference"; exit 1; }
done
wait "$KILLER"
kill -0 "$N3_PID" 2>/dev/null && { echo "n3 survived SIGKILL?"; exit 1; }

echo "== gossip notices the death"
for i in $(seq 1 75); do
  alive="$(curl -fsS "http://$A1/v1/fleet" | grep -c '"state": "alive"' || true)"
  [ "$alive" -le 2 ] && break
  sleep 0.2
done
[ "$alive" -le 2 ] || { echo "n1 still sees $alive alive members after killing n3"; exit 1; }

echo "== graceful drain of the survivors"
kill -TERM "${PIDS[1]}" "${PIDS[2]}" "${PIDS[0]}"
wait "${PIDS[1]}" "${PIDS[2]}" "${PIDS[0]}" 2>/dev/null || true

grep -q '"fleet":' "$TMP/n1.log" || { echo "n1 request log has no fleet fields:"; cat "$TMP/n1.log"; exit 1; }
echo "smoke_fleet: OK"
