#!/usr/bin/env bash
# End-to-end smoke test for the spind daemon: build, boot with a temp
# cache dir, wait for /healthz, run one small mesh simulation twice and
# assert the repeat is a cache hit with byte-identical body, scrape
# /metrics, then SIGTERM mid-flight and assert the in-flight request
# still completes (graceful drain). Run from the repo root; CI runs it
# in the smoke job.
set -euo pipefail

ADDR="127.0.0.1:${SPIND_PORT:-18080}"
TMP="$(mktemp -d)"
trap 'kill "$SPIND_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/spind" ./cmd/spind

echo "== boot (cachedir $TMP/cache)"
"$TMP/spind" -addr "$ADDR" -cachedir "$TMP/cache" &
SPIND_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SPIND_PID" 2>/dev/null; then echo "spind died during startup" >&2; exit 1; fi
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz"

BODY='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":5000,"seed":1}'

echo "== first request (expect miss)"
curl -fsS -D "$TMP/h1" -o "$TMP/r1" -d "$BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: miss' "$TMP/h1" || { echo "first request was not a miss:"; cat "$TMP/h1"; exit 1; }

echo "== second request (expect hit, byte-identical)"
curl -fsS -D "$TMP/h2" -o "$TMP/r2" -d "$BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: hit' "$TMP/h2" || { echo "repeat was not a cache hit:"; cat "$TMP/h2"; exit 1; }
cmp "$TMP/r1" "$TMP/r2" || { echo "cache hit not byte-identical"; exit 1; }

echo "== metrics scrape"
curl -fsS "http://$ADDR/metrics" | tee "$TMP/metrics" | grep -E '^spind_cache_(hits|misses)_total'
grep -q '^spind_cache_hits_total 1$' "$TMP/metrics"
grep -q '^spind_cache_misses_total 1$' "$TMP/metrics"

echo "== graceful drain: SIGTERM with a request in flight"
SLOW='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":200000,"seed":7}'
curl -fsS -o "$TMP/slow" -d "$SLOW" "http://$ADDR/v1/simulate" &
CURL_PID=$!
sleep 0.5                    # let the simulation start
kill -TERM "$SPIND_PID"
wait "$CURL_PID" || { echo "in-flight request failed during drain"; exit 1; }
grep -q '"stats"' "$TMP/slow" || { echo "drained response incomplete"; exit 1; }
wait "$SPIND_PID"

echo "smoke: OK"
