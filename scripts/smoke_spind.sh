#!/usr/bin/env bash
# End-to-end smoke test for the spind daemon: build, boot with a temp
# cache dir, wait for /healthz, run one small mesh simulation twice and
# assert the repeat is a cache hit with byte-identical body, scrape
# /metrics (including the simulator-level telemetry series), run a
# telemetry-enabled request (latency percentiles + time-series in the
# response), assert the structured request log, then SIGTERM mid-flight
# and assert the in-flight request still completes (graceful drain).
# With SMOKE_ARTIFACTS_DIR set, sample observability outputs (a Perfetto
# trace, a time-series JSON, the telemetry response, the request log)
# are left there for CI to upload. Run from the repo root; CI runs it in
# the smoke job.
set -euo pipefail

ADDR="127.0.0.1:${SPIND_PORT:-18080}"
TMP="$(mktemp -d)"
trap 'kill "$SPIND_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/spind" ./cmd/spind

echo "== boot (cachedir $TMP/cache)"
"$TMP/spind" -addr "$ADDR" -cachedir "$TMP/cache" 2> "$TMP/spind.log" &
SPIND_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SPIND_PID" 2>/dev/null; then echo "spind died during startup" >&2; exit 1; fi
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz"

BODY='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":5000,"seed":1}'

echo "== first request (expect miss)"
curl -fsS -D "$TMP/h1" -o "$TMP/r1" -d "$BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: miss' "$TMP/h1" || { echo "first request was not a miss:"; cat "$TMP/h1"; exit 1; }

echo "== second request (expect hit, byte-identical)"
curl -fsS -D "$TMP/h2" -o "$TMP/r2" -d "$BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: hit' "$TMP/h2" || { echo "repeat was not a cache hit:"; cat "$TMP/h2"; exit 1; }
cmp "$TMP/r1" "$TMP/r2" || { echo "cache hit not byte-identical"; exit 1; }

echo "== metrics scrape"
curl -fsS "http://$ADDR/metrics" | tee "$TMP/metrics" | grep -E '^spind_cache_(hits|misses)_total'
grep -q '^spind_cache_hits_total 1$' "$TMP/metrics"
grep -q '^spind_cache_misses_total 1$' "$TMP/metrics"

echo "== simulator-level metrics"
grep -q '^spind_sim_spins_total ' "$TMP/metrics"
grep -q '^spind_sim_recoveries_total ' "$TMP/metrics"
grep -q '^spind_sim_probes_total ' "$TMP/metrics"
grep -q '^spind_sim_kill_moves_total ' "$TMP/metrics"
grep -q '^spind_sim_deadlock_firings_total ' "$TMP/metrics"
grep -q 'spind_sim_packet_latency_cycles_bucket{quantile="p50",le="+Inf"} 1' "$TMP/metrics"
grep -q 'spind_sim_packet_latency_cycles_count{quantile="p99"} 1' "$TMP/metrics"

echo "== telemetry request (latency percentiles + time-series)"
TBODY='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":5000,"seed":1,"telemetry":true,"epoch":500}'
curl -fsS -D "$TMP/h3" -o "$TMP/r3" -d "$TBODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: miss' "$TMP/h3" >/dev/null || { echo "telemetry request shares the plain cache entry"; exit 1; }
grep -i '^x-request-id:' "$TMP/h3" >/dev/null || { echo "no X-Request-ID header"; exit 1; }
for field in '"latency"' '"p50"' '"p95"' '"p99"' '"time_series"' '"spin-timeseries-v1"'; do
  grep -q "$field" "$TMP/r3" || { echo "telemetry response missing $field:"; cat "$TMP/r3"; exit 1; }
done
grep -q '"latency"' "$TMP/r1" && { echo "plain response leaks telemetry fields"; exit 1; }

echo "== request log (structured JSON records)"
grep -E '"msg":"request","id":"[0-9a-f]+-[0-9]+","endpoint":"simulate","code":200,"cache":"miss","key":"[0-9a-f]{64}"' "$TMP/spind.log" >/dev/null \
  || { echo "no structured miss record:"; cat "$TMP/spind.log"; exit 1; }
grep -E '"endpoint":"simulate","code":200,"cache":"hit"' "$TMP/spind.log" >/dev/null \
  || { echo "no structured hit record:"; cat "$TMP/spind.log"; exit 1; }
grep -E '"trace":"[0-9a-f]{32}","span":"[0-9a-f]{16}"' "$TMP/spind.log" >/dev/null \
  || { echo "request records carry no trace/span IDs:"; cat "$TMP/spind.log"; exit 1; }

echo "== server-side tracing (?trace=server, /v1/trace/<id>)"
curl -fsS -o "$TMP/r7" -d "$BODY" "http://$ADDR/v1/simulate?trace=server"
grep -q '"trace_id":"' "$TMP/r7" || { echo "?trace=server carried no trace envelope:"; cat "$TMP/r7"; exit 1; }
grep -q '"name":"cache"' "$TMP/r7" || { echo "?trace=server has no cache span:"; cat "$TMP/r7"; exit 1; }
grep -q '"key":"' "$TMP/r7" || { echo "?trace=server lost the result body:"; cat "$TMP/r7"; exit 1; }
TRACE_ID="$(sed -n 's/.*"trace_id":"\([0-9a-f]\{32\}\)".*/\1/p' "$TMP/r7")"
curl -fsS -o "$TMP/trace.json" "http://$ADDR/v1/trace/$TRACE_ID"
grep -q '"name":"simulate"' "$TMP/trace.json" || { echo "/v1/trace lacks the root span:"; cat "$TMP/trace.json"; exit 1; }
curl -fsS -o "$TMP/trace-perfetto.json" "http://$ADDR/v1/trace/$TRACE_ID?format=perfetto"
grep -q '"traceEvents"' "$TMP/trace-perfetto.json" || { echo "perfetto trace malformed:"; cat "$TMP/trace-perfetto.json"; exit 1; }

echo "== build info (/v1/version + spind_build_info)"
curl -fsS -o "$TMP/version.json" "http://$ADDR/v1/version"
grep -q '"go":"go' "$TMP/version.json" || { echo "/v1/version malformed:"; cat "$TMP/version.json"; exit 1; }
curl -fsS -o "$TMP/metrics2" "http://$ADDR/metrics"
grep -q '^spind_build_info{' "$TMP/metrics2" || { echo "no spind_build_info metric"; exit 1; }
grep -q 'spind_span_duration_seconds_bucket{span="simulate"' "$TMP/metrics2" \
  || { echo "no span-duration histogram"; exit 1; }

echo "== trace upload (spintrace -pack -b64 -> /v1/simulate trace_b64)"
go build -o "$TMP/spintrace" ./cmd/spintrace
# A tiny deterministic CSV trace: 32 packets over 8 cycles on the 8x8 mesh.
for i in $(seq 0 31); do
  src=$((i % 64)); dst=$(((src + 1 + i % 61) % 64))
  echo "$((i / 4)),$src,$dst,$((1 + i % 5)),0"
done > "$TMP/trace.csv"
TB64="$("$TMP/spintrace" -pack "$TMP/trace.csv" -b64)"
TRACE_BODY="{\"topology\":\"mesh:8x8\",\"routing\":\"min_adaptive\",\"scheme\":\"spin\",\"cycles\":200,\"drain_cycles\":20000,\"seed\":2,\"trace_b64\":\"$TB64\"}"
curl -fsS -D "$TMP/h4" -o "$TMP/r4" -d "$TRACE_BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: miss' "$TMP/h4" >/dev/null || { echo "trace upload was not a miss:"; cat "$TMP/h4"; exit 1; }
grep -Eq '"injected": *32' "$TMP/r4" || { echo "trace replay did not inject 32 packets:"; cat "$TMP/r4"; exit 1; }
curl -fsS -D "$TMP/h5" -o "$TMP/r5" -d "$TRACE_BODY" "http://$ADDR/v1/simulate"
grep -i '^x-cache: hit' "$TMP/h5" >/dev/null || { echo "trace repeat was not a hit:"; cat "$TMP/h5"; exit 1; }
cmp "$TMP/r4" "$TMP/r5" || { echo "trace cache hit not byte-identical"; exit 1; }

echo "== closed-loop workload request"
WBODY='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.2,"cycles":2000,"seed":4,"workload":{"mode":"closed","window":4,"req_len":1,"resp_len":1,"think":8}}'
curl -fsS -o "$TMP/r6" -d "$WBODY" "http://$ADDR/v1/simulate"
grep -q '"injected"' "$TMP/r6" || { echo "workload request failed:"; cat "$TMP/r6"; exit 1; }
grep -Eq '"vnets": *2' "$TMP/r6" || { echo "workload normalization did not reserve a reply vnet:"; cat "$TMP/r6"; exit 1; }

echo "== graceful drain: SIGTERM with a request in flight"
SLOW='{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":200000,"seed":7}'
curl -fsS -o "$TMP/slow" -d "$SLOW" "http://$ADDR/v1/simulate" &
CURL_PID=$!
sleep 0.5                    # let the simulation start
kill -TERM "$SPIND_PID"
wait "$CURL_PID" || { echo "in-flight request failed during drain"; exit 1; }
grep -q '"stats"' "$TMP/slow" || { echo "drained response incomplete"; exit 1; }
wait "$SPIND_PID"

if [ -n "${SMOKE_ARTIFACTS_DIR:-}" ]; then
  echo "== observability sample artifacts -> $SMOKE_ARTIFACTS_DIR"
  mkdir -p "$SMOKE_ARTIFACTS_DIR"
  go build -o "$TMP/spinsim" ./cmd/spinsim
  "$TMP/spinsim" -topo mesh:8x8 -routing favors_min -scheme spin -vcs 1 \
    -traffic uniform_random -rate 0.40 -seed 7 -cycles 6000 -warmup 1000 \
    -trace "$SMOKE_ARTIFACTS_DIR/sample-trace.json" -epoch 500 -hist \
    -tsout "$SMOKE_ARTIFACTS_DIR/sample-timeseries.json" > "$SMOKE_ARTIFACTS_DIR/spinsim-summary.txt"
  cp "$TMP/r3" "$SMOKE_ARTIFACTS_DIR/telemetry-response.json"
  cp "$TMP/metrics" "$SMOKE_ARTIFACTS_DIR/metrics.txt"
  cp "$TMP/spind.log" "$SMOKE_ARTIFACTS_DIR/spind-request-log.txt"
  cp "$TMP/trace-perfetto.json" "$SMOKE_ARTIFACTS_DIR/request-trace-perfetto.json"
fi

echo "smoke: OK"
