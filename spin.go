// Package spin is a Go reproduction of "Synchronized Progress in
// Interconnection Networks (SPIN): A New Theory for Deadlock Freedom"
// (Ramrakhyani, Gratz, Krishna — ISCA 2018).
//
// It bundles a cycle-accurate virtual-cut-through network simulator, the
// topologies and routing algorithms of the paper's evaluation, all four
// prior deadlock-freedom frameworks (Dally turn models and VC ladders,
// Duato escape VCs, bubble flow control, deflection routing), and SPIN
// itself: a distributed deadlock-recovery protocol that detects a cyclic
// buffer dependency with a timeout-triggered probe, announces a common
// spin cycle with a move message, and resolves the deadlock by moving
// every packet of the cycle forward one hop simultaneously.
//
// The top-level API builds simulations from declarative Config values:
//
//	sim, err := spin.New(spin.Config{
//	    Topology: "mesh:8x8",
//	    Routing:  "favors_min",
//	    Scheme:   "spin",
//	    VCsPerVNet: 1,
//	    Traffic:  "uniform_random",
//	    Rate:     0.30,
//	})
//	sim.Run(100_000)
//	fmt.Println(sim.AvgLatency(), sim.Throughput())
//
// The named configurations of the paper's Table III are available through
// Preset. Lower-level control (custom topologies, hand-injected packets,
// the deadlock oracle) is reachable through the Network method.
package spin

import (
	"fmt"
	"strconv"
	"strings"

	"math/rand"

	"repro/internal/bubble"
	"repro/internal/routing"
	"repro/internal/sim"
	spinimpl "repro/internal/spin"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Config declares a simulation.
type Config struct {
	// Topology: "mesh:XxY", "torus:XxY", "ring:N", "dragonfly:p,a,h,g",
	// "dragonfly1024", "irregular:XxY:F" (F faulty links),
	// "jellyfish:N,P,DEG" (random regular graph), "fattree:E,S,P"
	// (two-level folded Clos).
	Topology string
	// Routing: "xy", "westfirst", "min_adaptive", "escape_vc",
	// "favors_min", "favors_nmin", "dfly_min", "dfly_min_ladder",
	// "ugal_ladder", "ugal_spin".
	Routing string
	// Scheme: "" (none), "spin", "static_bubble", "ring_bubble".
	Scheme string
	// Traffic: a synthetic pattern name ("uniform_random",
	// "bit_complement", "transpose", "tornado", "neighbor", "bit_reverse",
	// "bit_rotation", "shuffle") or "" for manual injection.
	Traffic string
	// Rate is offered load in flits/terminal/cycle.
	Rate float64
	// DataFrac is the long-packet fraction (default 0.5 of packets are
	// 5-flit data, the rest 1-flit control, as in the paper).
	DataFrac float64

	VNets      int   // default 1
	VCsPerVNet int   // default 1
	VCDepth    int   // default 5
	Seed       int64 // deterministic seed
	Warmup     int64 // cycles before measurement starts

	// Shards is the number of spatial router partitions the cycle engine
	// steps in parallel (0 or 1 = serial). Results are byte-identical at
	// any shard count; the engine clamps the value when the scheme,
	// traffic generator, or routing algorithm requires serial stepping.
	Shards int

	// TDD overrides SPIN's (and Static Bubble's) detection threshold
	// (default 128, the paper's value).
	TDD int64
	// SPIN fine-tuning (zero values = paper defaults).
	SPIN spinimpl.Config
}

// Simulation is a runnable network instance.
type Simulation struct {
	cfg  Config
	net  *sim.Network
	topo topology.Topology
	spin *spinimpl.Scheme
}

// New builds a Simulation from cfg.
func New(cfg Config) (*Simulation, error) {
	topo, err := BuildTopology(cfg.Topology, cfg.Seed)
	if err != nil {
		return nil, err
	}
	vcs := cfg.VCsPerVNet
	if vcs == 0 {
		vcs = 1
	}
	s := &Simulation{cfg: cfg, topo: topo}
	var scheme sim.Scheme
	var forcedRouting sim.RoutingAlgorithm
	switch cfg.Scheme {
	case "", "none":
	case "spin":
		sc := cfg.SPIN
		if cfg.TDD != 0 {
			sc.TDD = cfg.TDD
		}
		s.spin = spinimpl.New(sc)
		scheme = s.spin
	case "static_bubble":
		m, ok := topo.(*topology.Mesh)
		if !ok {
			return nil, fmt.Errorf("spin: static_bubble needs a mesh topology")
		}
		sb := &bubble.StaticBubble{Mesh: m, TDD: cfg.TDD}
		scheme = sb
		forcedRouting = sb.Routing(vcs)
	case "ring_bubble":
		m, ok := topo.(*topology.Mesh)
		if !ok || !m.Torus {
			return nil, fmt.Errorf("spin: ring_bubble needs a torus topology")
		}
		scheme = &bubble.RingBubble{Mesh: m}
	default:
		return nil, fmt.Errorf("spin: unknown scheme %q", cfg.Scheme)
	}
	var alg sim.RoutingAlgorithm
	if forcedRouting != nil {
		alg = forcedRouting
	} else {
		alg, err = BuildRouting(cfg.Routing, topo, vcs)
		if err != nil {
			return nil, err
		}
	}
	var gen sim.TrafficGen
	if cfg.Traffic != "" {
		pat, err := traffic.ByName(cfg.Traffic, topo)
		if err != nil {
			return nil, err
		}
		gen = &traffic.Synthetic{Pattern: pat, Rate: cfg.Rate, DataFrac: cfg.DataFrac, VNets: max(1, cfg.VNets)}
	}
	net, err := sim.NewNetwork(sim.Config{
		Topology:   topo,
		Routing:    alg,
		Scheme:     scheme,
		Traffic:    gen,
		VNets:      cfg.VNets,
		VCsPerVNet: vcs,
		VCDepth:    cfg.VCDepth,
		Seed:       cfg.Seed,
		Shards:     cfg.Shards,
		StatsStart: cfg.Warmup,
	})
	if err != nil {
		return nil, err
	}
	s.net = net
	return s, nil
}

// BuildTopology parses a topology spec string.
func BuildTopology(spec string, seed int64) (topology.Topology, error) {
	if spec == "" {
		return nil, fmt.Errorf("spin: empty topology spec")
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "mesh", "torus", "irregular":
		if len(parts) < 2 {
			return nil, fmt.Errorf("spin: %s needs dimensions, e.g. %q", parts[0], parts[0]+":8x8")
		}
		x, y, err := parseXY(parts[1])
		if err != nil {
			return nil, err
		}
		switch parts[0] {
		case "mesh":
			return topology.NewMesh(x, y, 1)
		case "torus":
			return topology.NewTorus(x, y, 1)
		default:
			faults := 4
			if len(parts) >= 3 {
				f, err := strconv.Atoi(parts[2])
				if err != nil {
					return nil, fmt.Errorf("spin: bad fault count %q", parts[2])
				}
				faults = f
			}
			return topology.NewIrregularMesh(x, y, 1, faults, rand.New(rand.NewSource(seed+1)))
		}
	case "ring":
		if len(parts) < 2 {
			return nil, fmt.Errorf("spin: ring needs a size, e.g. \"ring:8\"")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		return topology.NewRing(n, 1, true)
	case "dragonfly":
		if len(parts) < 2 {
			return nil, fmt.Errorf("spin: dragonfly needs p,a,h,g")
		}
		nums := strings.Split(parts[1], ",")
		if len(nums) != 4 {
			return nil, fmt.Errorf("spin: dragonfly needs p,a,h,g, got %q", parts[1])
		}
		v := make([]int, 4)
		for i, s := range nums {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, err
			}
			v[i] = n
		}
		return topology.NewDragonfly(v[0], v[1], v[2], v[3], 1, 3)
	case "dragonfly1024":
		return topology.NewDragonfly(4, 8, 4, 32, 1, 3)
	case "jellyfish":
		v, err := parseInts(parts, 3, "jellyfish:N,P,DEG")
		if err != nil {
			return nil, err
		}
		return topology.NewJellyfish(v[0], v[1], v[2], 1, rand.New(rand.NewSource(seed+2)))
	case "fattree":
		v, err := parseInts(parts, 3, "fattree:E,S,P")
		if err != nil {
			return nil, err
		}
		return topology.NewFatTree(v[0], v[1], v[2], 1)
	}
	return nil, fmt.Errorf("spin: unknown topology %q", spec)
}

// parseInts parses "name:a,b,c"-style specs.
func parseInts(parts []string, n int, usage string) ([]int, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("spin: topology needs parameters, e.g. %q", usage)
	}
	nums := strings.Split(parts[1], ",")
	if len(nums) != n {
		return nil, fmt.Errorf("spin: expected %q, got %q", usage, parts[1])
	}
	out := make([]int, n)
	for i, f := range nums {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseXY(s string) (int, int, error) {
	xy := strings.SplitN(s, "x", 2)
	if len(xy) != 2 {
		return 0, 0, fmt.Errorf("spin: bad dimensions %q", s)
	}
	x, err := strconv.Atoi(xy[0])
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(xy[1])
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

// BuildRouting resolves a routing algorithm by name for a topology.
func BuildRouting(name string, topo topology.Topology, vcs int) (sim.RoutingAlgorithm, error) {
	mesh, isMesh := topo.(*topology.Mesh)
	dfly, isDfly := topo.(*topology.Dragonfly)
	switch name {
	case "xy":
		if !isMesh {
			return nil, fmt.Errorf("spin: xy routing needs a mesh")
		}
		return &routing.XY{Mesh: mesh}, nil
	case "westfirst":
		if !isMesh {
			return nil, fmt.Errorf("spin: westfirst routing needs a mesh")
		}
		return &routing.WestFirst{Mesh: mesh}, nil
	case "min_adaptive", "":
		return &routing.MinAdaptive{Topo: topo}, nil
	case "escape_vc":
		if !isMesh {
			return nil, fmt.Errorf("spin: escape_vc routing needs a mesh")
		}
		if vcs < 2 {
			return nil, fmt.Errorf("spin: escape_vc needs >= 2 VCs per vnet")
		}
		return &routing.EscapeVC{Mesh: mesh, VCs: vcs}, nil
	case "favors_min":
		return &routing.FAvORS{Topo: topo}, nil
	case "favors_nmin":
		return &routing.FAvORS{Topo: topo, NonMinimal: true}, nil
	case "dfly_min", "dfly_min_ladder":
		if !isDfly {
			return nil, fmt.Errorf("spin: %s needs a dragonfly", name)
		}
		return &routing.DflyMinimal{Dfly: dfly, VCLadder: name == "dfly_min_ladder", VCs: vcs}, nil
	case "ugal_ladder", "ugal_spin":
		if !isDfly {
			return nil, fmt.Errorf("spin: %s needs a dragonfly", name)
		}
		return &routing.UGAL{Dfly: dfly, VCLadder: name == "ugal_ladder", VCs: vcs}, nil
	}
	return nil, fmt.Errorf("spin: unknown routing %q", name)
}

// Run advances the simulation by cycles.
func (s *Simulation) Run(cycles int64) { s.net.Run(cycles) }

// Drain stops traffic and runs until empty (or the budget ends),
// reporting whether everything was delivered.
func (s *Simulation) Drain(maxCycles int64) bool { return s.net.Drain(maxCycles) }

// Network exposes the underlying simulator for advanced use (manual
// injection, the deadlock oracle, per-router state).
func (s *Simulation) Network() *sim.Network { return s.net }

// Topology reports the simulated topology.
func (s *Simulation) Topology() topology.Topology { return s.topo }

// Stats returns the raw counters.
func (s *Simulation) Stats() *sim.Stats { return s.net.Stats() }

// AvgLatency reports mean packet latency over the measurement window.
func (s *Simulation) AvgLatency() float64 { return s.net.Stats().AvgLatency() }

// Throughput reports accepted flits/terminal/cycle over the measurement
// window.
func (s *Simulation) Throughput() float64 {
	return s.net.Stats().Throughput(s.topo.NumTerminals())
}

// Spins reports how many synchronized movements were performed.
func (s *Simulation) Spins() int64 { return s.net.Stats().Spins }

// Deadlocked consults the global oracle (measurement/testing aid — no
// distributed scheme uses it).
func (s *Simulation) Deadlocked() bool { return s.net.Deadlocked() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
