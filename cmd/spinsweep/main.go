// Command spinsweep regenerates the paper's figures: it runs the
// parameter sweeps behind each plot and prints the data series.
//
// Sweeps run on the internal/runner worker pool: -workers bounds the
// number of concurrent simulation points (default: all cores), -timeout
// bounds each point, and -progress streams per-point completions to
// stderr. Results are bit-identical at any worker count for a given
// -seed. Ctrl-C cancels the sweep promptly.
//
// Usage:
//
//	spinsweep -fig 3            # deadlock onset rates
//	spinsweep -fig 6            # dragonfly latency curves
//	spinsweep -fig 7            # mesh latency curves
//	spinsweep -fig 8a           # PARSEC network EDP
//	spinsweep -fig 8b           # link utilisation breakdown
//	spinsweep -fig 9            # spins and false positives
//	spinsweep -fig 10           # area overheads
//	spinsweep -fig all -workers 8
//	spinsweep -fig 7 -cycles 100000 -full   # paper-scale run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"sync"

	"repro/internal/exp"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinsweep: ")
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 3, 6, 7, 8a, 8b, 9, 10, costs, torus, deflection, all")
		cycles   = flag.Int64("cycles", 0, "cycles per point (0 = default 20000)")
		warmup   = flag.Int64("warmup", 0, "warmup cycles (0 = cycles/10, negative = no warmup)")
		full     = flag.Bool("full", false, "full-size topologies (8x8 mesh, 1024-node dragonfly); default uses scaled-down instances")
		seed     = flag.Int64("seed", 1, "base random seed; per-point seeds derive from it and each point's key")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text")
		workers  = flag.Int("workers", 0, "concurrent simulation points (0 = GOMAXPROCS); never changes results")
		timeout  = flag.Duration("timeout", 0, "per-simulation-point time budget (0 = unlimited), e.g. 30s")
		progress = flag.Bool("progress", false, "stream per-point completions to stderr")
		check    = flag.Bool("check", false, "attach the runtime invariant checker to every sweep point; a violation fails that point")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := exp.Options{
		Cycles: *cycles, Warmup: *warmup, Small: !*full, Seed: *seed,
		Workers: *workers, Timeout: *timeout, Check: *check,
	}
	if *progress {
		o.Progress = progressPrinter()
	}
	emit := func(v interface{}) error {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
		fmt.Print(v)
		return nil
	}

	run := map[string]func(context.Context) (interface{}, error){
		"3": func(ctx context.Context) (interface{}, error) { return exp.Fig3(ctx, o) },
		"6": func(ctx context.Context) (interface{}, error) {
			figs, err := exp.Fig6(ctx, o)
			return figureList(figs), err
		},
		"7": func(ctx context.Context) (interface{}, error) {
			figs, err := exp.Fig7(ctx, o)
			return figureList(figs), err
		},
		"8a":    func(ctx context.Context) (interface{}, error) { return exp.Fig8a(ctx, o) },
		"8b":    func(ctx context.Context) (interface{}, error) { return exp.Fig8b(ctx, o) },
		"9":     func(ctx context.Context) (interface{}, error) { return exp.Fig9(ctx, o) },
		"10":    func(ctx context.Context) (interface{}, error) { return exp.Fig10(), nil },
		"costs": func(ctx context.Context) (interface{}, error) { return exp.Costs(), nil },
		"torus": func(ctx context.Context) (interface{}, error) { return exp.Torus(ctx, o) },
		"deflection": func(ctx context.Context) (interface{}, error) {
			return exp.Deflection(ctx, o)
		},
	}
	if *fig == "all" {
		// All figures dispatch through one shared pool: each figure is a
		// job whose own points fan out on the same scheduler, and the
		// buffered results print in canonical order afterwards.
		keys := []string{"3", "6", "7", "8a", "8b", "9", "10", "costs", "torus", "deflection"}
		jobs := make([]runner.Job[interface{}], len(keys))
		for i, k := range keys {
			k := k
			jobs[i] = runner.Job[interface{}]{Key: "fig/" + k, Run: func(ctx context.Context, _ int64) (interface{}, error) {
				return run[k](ctx)
			}}
		}
		results, err := runner.Run(ctx, runner.Options{Workers: *workers, Seed: *seed, Progress: o.Progress}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		for i, k := range keys {
			fmt.Printf("\n===== fig %s =====\n", k)
			if err := emitResult(results[i], emit, *asJSON); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	v, err := f(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := emitResult(v, emit, *asJSON); err != nil {
		log.Fatal(err)
	}
}

// progressPrinter builds a goroutine-safe progress sink: under -fig all
// several figure pools complete points concurrently.
func progressPrinter() runner.ProgressFunc {
	var mu sync.Mutex
	return func(e runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		status := "ok"
		if e.Err != nil {
			status = "FAIL: " + e.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "spinsweep: [%d/%d] %s (%.1fs) %s\n",
			e.Done, e.Total, e.Key, e.Elapsed.Seconds(), status)
	}
}

// namedFigure pairs a pattern with its figure so figure maps print and
// encode in a stable order.
type namedFigure struct {
	Pattern string
	Figure  *exp.Figure
}

// figureList flattens a figure map into pattern-sorted order.
func figureList(figs map[string]*exp.Figure) []namedFigure {
	var keys []string
	for k := range figs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]namedFigure, len(keys))
	for i, k := range keys {
		out[i] = namedFigure{Pattern: k, Figure: figs[k]}
	}
	return out
}

// emitResult prints one figure's result, expanding figure lists.
func emitResult(v interface{}, emit func(interface{}) error, asJSON bool) error {
	figs, ok := v.([]namedFigure)
	if !ok {
		return emit(v)
	}
	if asJSON {
		// Preserve the historical {pattern: figure} JSON shape; Go maps
		// marshal with sorted keys, so the bytes stay deterministic.
		m := make(map[string]*exp.Figure, len(figs))
		for _, nf := range figs {
			m[nf.Pattern] = nf.Figure
		}
		return emit(m)
	}
	for _, nf := range figs {
		fmt.Println(nf.Figure)
	}
	return nil
}
