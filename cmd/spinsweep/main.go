// Command spinsweep regenerates the paper's figures: it runs the
// parameter sweeps behind each plot and prints the data series.
//
// Usage:
//
//	spinsweep -fig 3            # deadlock onset rates
//	spinsweep -fig 6            # dragonfly latency curves
//	spinsweep -fig 7            # mesh latency curves
//	spinsweep -fig 8a           # PARSEC network EDP
//	spinsweep -fig 8b           # link utilisation breakdown
//	spinsweep -fig 9            # spins and false positives
//	spinsweep -fig 10           # area overheads
//	spinsweep -fig all
//	spinsweep -fig 7 -cycles 100000 -full   # paper-scale run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinsweep: ")
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 3, 6, 7, 8a, 8b, 9, 10, costs, torus, deflection, all")
		cycles = flag.Int64("cycles", 0, "cycles per point (0 = default 20000)")
		warmup = flag.Int64("warmup", 0, "warmup cycles (0 = cycles/10)")
		full   = flag.Bool("full", false, "full-size topologies (8x8 mesh, 1024-node dragonfly); default uses scaled-down instances")
		seed   = flag.Int64("seed", 1, "random seed")
		asJSON = flag.Bool("json", false, "emit results as JSON instead of text")
	)
	flag.Parse()
	o := exp.Options{Cycles: *cycles, Warmup: *warmup, Small: !*full, Seed: *seed}
	emit := func(v interface{}) error {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
		fmt.Print(v)
		return nil
	}

	run := map[string]func() error{
		"3": func() error {
			r, err := exp.Fig3(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
		"6": func() error {
			figs, err := exp.Fig6(o)
			if err != nil {
				return err
			}
			return emitFigures(figs, emit, *asJSON)
		},
		"7": func() error {
			figs, err := exp.Fig7(o)
			if err != nil {
				return err
			}
			return emitFigures(figs, emit, *asJSON)
		},
		"8a": func() error {
			r, err := exp.Fig8a(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
		"8b": func() error {
			r, err := exp.Fig8b(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
		"9": func() error {
			r, err := exp.Fig9(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
		"10": func() error {
			return emit(exp.Fig10())
		},
		"costs": func() error {
			return emit(exp.Costs())
		},
		"torus": func() error {
			r, err := exp.Torus(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
		"deflection": func() error {
			r, err := exp.Deflection(o)
			if err != nil {
				return err
			}
			return emit(r)
		},
	}
	if *fig == "all" {
		for _, k := range []string{"3", "6", "7", "8a", "8b", "9", "10", "costs", "torus", "deflection"} {
			fmt.Printf("\n===== fig %s =====\n", k)
			if err := run[k](); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := f(); err != nil {
		log.Fatal(err)
	}
}

func emitFigures(figs map[string]*exp.Figure, emit func(interface{}) error, asJSON bool) error {
	if asJSON {
		return emit(figs)
	}
	var keys []string
	for k := range figs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(figs[k])
	}
	return nil
}
