// Command spinsweep regenerates the paper's figures: it runs the
// parameter sweeps behind each plot and prints the data series.
//
// Sweeps run on the internal/runner worker pool: -workers bounds the
// number of concurrent simulation points (default: all cores), -timeout
// bounds each point, and -progress streams per-point completions to
// stderr. Results are bit-identical at any worker count for a given
// -seed. Ctrl-C cancels the sweep promptly.
//
// -shards N additionally parallelizes inside each simulation point via
// the sharded cycle engine — useful when one paper-scale point dominates
// the sweep. Shard count never changes results either; when
// workers x shards would oversubscribe GOMAXPROCS the shard count is
// capped (resolved values are printed under -progress). -preset runs a
// latency curve for one named Table III preset (see -pattern, -maxrate)
// instead of a figure.
//
// Dispatch and JSON encoding live in internal/exp (Sweep, EncodeJSON)
// and are shared with the spind daemon's /v1/sweep endpoint, so the CLI
// and the API emit byte-identical results for identical requests.
//
// Usage:
//
//	spinsweep -fig 3            # deadlock onset rates
//	spinsweep -fig 6            # dragonfly latency curves
//	spinsweep -fig 7            # mesh latency curves
//	spinsweep -fig 8a           # PARSEC network EDP
//	spinsweep -fig 8b           # link utilisation breakdown
//	spinsweep -fig 9            # spins and false positives
//	spinsweep -fig 10           # area overheads
//	spinsweep -fig all -workers 8
//	spinsweep -fig 7 -cycles 100000 -full   # paper-scale run
//	spinsweep -preset dfly1024 -shards 8 -progress   # sharded engine on one big preset
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"

	"repro/internal/exp"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinsweep: ")
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 3, 6, 7, 8a, 8b, 9, 10, costs, torus, deflection, all")
		preset   = flag.String("preset", "", "sweep one named Table III preset (e.g. dfly1024, mesh64x64) instead of a figure")
		pattern  = flag.String("pattern", "uniform_random", "synthetic traffic pattern for -preset sweeps")
		maxrate  = flag.Float64("maxrate", 0.6, "top of the offered-load ladder for -preset sweeps")
		cycles   = flag.Int64("cycles", 0, "cycles per point (0 = default 20000)")
		warmup   = flag.Int64("warmup", 0, "warmup cycles (0 = cycles/10, negative = no warmup)")
		full     = flag.Bool("full", false, "full-size topologies (8x8 mesh, 1024-node dragonfly); default uses scaled-down instances")
		seed     = flag.Int64("seed", 1, "base random seed; per-point seeds derive from it and each point's key")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text")
		workers  = flag.Int("workers", 0, "concurrent simulation points (0 = GOMAXPROCS); never changes results")
		shards   = flag.Int("shards", 0, "spatial shards per simulation point (0/1 = serial); capped so workers x shards never oversubscribes GOMAXPROCS; never changes results")
		timeout  = flag.Duration("timeout", 0, "per-simulation-point time budget (0 = unlimited), e.g. 30s")
		progress = flag.Bool("progress", false, "stream per-point completions to stderr")
		check    = flag.Bool("check", false, "attach the runtime invariant checker to every sweep point; a violation fails that point")
		tele     = flag.Bool("telemetry", false, "attach per-point telemetry: latency p50/p95/p99 and an epoch-windowed time-series in each point")
		epoch    = flag.Int64("epoch", 0, "telemetry time-series window in cycles (0 = default 100; needs -telemetry)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *epoch != 0 && !*tele {
		log.Fatal("-epoch needs -telemetry")
	}
	// Sweep-level workers and run-level shards multiply: cap the shard
	// count so the product never oversubscribes GOMAXPROCS (neither knob
	// changes results, so the cap is free to apply).
	maxp := runtime.GOMAXPROCS(0)
	workersEff := *workers
	if workersEff <= 0 {
		workersEff = maxp
	}
	shardsEff := *shards
	if shardsEff < 1 {
		shardsEff = 1
	}
	if workersEff*shardsEff > maxp {
		shardsEff = maxp / workersEff
		if shardsEff < 1 {
			shardsEff = 1
		}
	}
	o := exp.Options{
		Cycles: *cycles, Warmup: *warmup, Small: !*full, Seed: *seed,
		Workers: *workers, Shards: shardsEff, Timeout: *timeout, Check: *check,
		Telemetry: *tele, Epoch: *epoch,
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "spinsweep: parallelism workers=%d shards=%d/point (requested %d, GOMAXPROCS %d)\n",
			workersEff, shardsEff, *shards, maxp)
		o.Progress = progressPrinter()
	}
	emit := func(v interface{}) error {
		if *asJSON {
			return exp.EncodeJSON(os.Stdout, v)
		}
		fmt.Print(v)
		return nil
	}

	if *preset != "" {
		v, err := exp.PresetSweep(ctx, *preset, *pattern, *maxrate, o)
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fig == "all" {
		// All figures dispatch through one shared pool: each figure is a
		// job whose own points fan out on the same scheduler, and the
		// buffered results print in canonical order afterwards.
		ids := exp.SweepIDs()
		jobs := make([]runner.Job[interface{}], len(ids))
		for i, id := range ids {
			id := id
			jobs[i] = runner.Job[interface{}]{Key: "fig/" + id, Run: func(ctx context.Context, _ int64) (interface{}, error) {
				return exp.Sweep(ctx, id, o)
			}}
		}
		results, err := runner.Run(ctx, runner.Options{Workers: *workers, Seed: *seed, Progress: o.Progress}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		for i, id := range ids {
			fmt.Printf("\n===== fig %s =====\n", id)
			if err := emit(results[i]); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if err := (exp.SweepRequest{Fig: *fig}).Validate(); err != nil {
		log.Fatal(err)
	}
	v, err := exp.Sweep(ctx, *fig, o)
	if err != nil {
		log.Fatal(err)
	}
	if err := emit(v); err != nil {
		log.Fatal(err)
	}
}

// progressPrinter builds a goroutine-safe progress sink: under -fig all
// several figure pools complete points concurrently.
func progressPrinter() runner.ProgressFunc {
	var mu sync.Mutex
	return func(e runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		status := "ok"
		if e.Err != nil {
			status = "FAIL: " + e.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "spinsweep: [%d/%d] %s (%.1fs) %s\n",
			e.Done, e.Total, e.Key, e.Elapsed.Seconds(), status)
	}
}
