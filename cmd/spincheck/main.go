// Command spincheck runs static channel-dependency-graph analysis on a
// (topology, routing) pair: it reports whether the configuration is
// deadlock-free by Dally's theorem (acyclic CDG) and, for cyclic ones,
// the size of the dependency cycles a recovery scheme like SPIN must be
// able to break.
//
// Usage:
//
//	spincheck -topo mesh:8x8 -routing xy
//	spincheck -topo mesh:8x8 -routing min_adaptive -vcs 3
//	spincheck -topo dragonfly:4,8,4,32 -routing dfly_min_ladder -vcs 2
package main

import (
	"flag"
	"fmt"
	"log"

	spin "repro"
	"repro/internal/cdg"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spincheck: ")
	var (
		topoSpec = flag.String("topo", "mesh:8x8", "topology spec")
		routing  = flag.String("routing", "xy", "routing function: xy, westfirst, min_adaptive, escape_vc, escape_subnet, torus_dor, dfly_min_ladder, dfly_free")
		vcs      = flag.Int("vcs", 1, "VC classes per link")
		seed     = flag.Int64("seed", 1, "seed for randomised topologies")
	)
	flag.Parse()

	topo, err := spin.BuildTopology(*topoSpec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := resolveDep(*routing, topo, *vcs)
	if err != nil {
		log.Fatal(err)
	}
	g := cdg.Build(topo, *vcs, dep)
	fmt.Printf("topology: %s (%d routers, %d links)\n", topo.Name(), topo.NumRouters(), len(topo.Links()))
	fmt.Printf("routing:  %s with %d VC class(es)\n", *routing, *vcs)
	fmt.Println(g.Describe())
	if g.Acyclic() {
		fmt.Println("verdict:  deadlock-free by Dally's theorem (no recovery scheme needed)")
		return
	}
	cycles := g.Cycles()
	largest := 0
	for _, c := range cycles {
		if len(c) > largest {
			largest = len(c)
		}
	}
	fmt.Printf("verdict:  NOT avoidance-deadlock-free: %d cyclic component(s), largest %d channels\n", len(cycles), largest)
	fmt.Println("          pair this routing with a recovery scheme (e.g. SPIN)")
}

func resolveDep(name string, topo topology.Topology, vcs int) (cdg.DependencyFunc, error) {
	mesh, isMesh := topo.(*topology.Mesh)
	dfly, isDfly := topo.(*topology.Dragonfly)
	switch name {
	case "xy":
		if !isMesh {
			return nil, fmt.Errorf("xy needs a mesh")
		}
		return cdg.XYDep(mesh), nil
	case "westfirst":
		if !isMesh {
			return nil, fmt.Errorf("westfirst needs a mesh")
		}
		return cdg.WestFirstDep(mesh), nil
	case "min_adaptive", "favors_min":
		return cdg.MinAdaptiveDep(topo), nil
	case "escape_vc":
		if !isMesh {
			return nil, fmt.Errorf("escape_vc needs a mesh")
		}
		return cdg.EscapeDep(mesh, vcs), nil
	case "escape_subnet":
		if !isMesh {
			return nil, fmt.Errorf("escape_subnet needs a mesh")
		}
		return cdg.EscapeSubgraphDep(mesh), nil
	case "torus_dor":
		if !isMesh || !mesh.Torus {
			return nil, fmt.Errorf("torus_dor needs a torus")
		}
		return cdg.TorusDORDep(mesh), nil
	case "dfly_min_ladder":
		if !isDfly {
			return nil, fmt.Errorf("dfly_min_ladder needs a dragonfly")
		}
		return cdg.DflyLadderDep(dfly, vcs), nil
	case "dfly_free", "dfly_min":
		if !isDfly {
			return nil, fmt.Errorf("dfly_free needs a dragonfly")
		}
		return cdg.DflyFreeDep(dfly), nil
	}
	return nil, fmt.Errorf("unknown routing %q", name)
}
