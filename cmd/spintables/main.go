// Command spintables regenerates the paper's tables: the qualitative
// framework comparison (Table I, with its CDG claims verified
// mechanically), SPIN's router modules (Table II) and the evaluated
// network configurations (Table III).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spintables: ")
	table := flag.Int("table", 0, "table to print: 1, 2, 3 (0 = all)")
	flag.Parse()

	if *table == 0 || *table == 1 {
		t1, err := exp.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t1)
	}
	if *table == 0 || *table == 2 {
		fmt.Println(exp.Table2())
	}
	if *table == 0 || *table == 3 {
		fmt.Println(exp.Table3())
	}
}
