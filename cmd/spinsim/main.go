// Command spinsim runs one network configuration and prints its
// performance and recovery statistics.
//
// Usage:
//
//	spinsim -topo mesh:8x8 -routing favors_min -scheme spin -vcs 1 \
//	        -traffic uniform_random -rate 0.3 -cycles 100000
//	spinsim -preset mesh_favors_min -traffic transpose -rate 0.25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	spin "repro"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinsim: ")
	var (
		preset  = flag.String("preset", "", "named configuration from Table III (see spintables -table 3)")
		topo    = flag.String("topo", "mesh:8x8", "topology spec (mesh:XxY, torus:XxY, ring:N, dragonfly:p,a,h,g, dragonfly1024, irregular:XxY:F)")
		routing = flag.String("routing", "min_adaptive", "routing algorithm")
		scheme  = flag.String("scheme", "", "deadlock scheme: spin, static_bubble, ring_bubble or empty")
		vcs     = flag.Int("vcs", 1, "VCs per virtual network")
		vnets   = flag.Int("vnets", 1, "virtual networks")
		pattern = flag.String("traffic", "uniform_random", "synthetic traffic pattern")
		rate    = flag.Float64("rate", 0.1, "offered load (flits/node/cycle)")
		cycles  = flag.Int64("cycles", 100000, "simulated cycles")
		warmup  = flag.Int64("warmup", 10000, "warmup cycles before measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		tdd     = flag.Int64("tdd", 0, "deadlock detection threshold (0 = default 128)")
		drain   = flag.Bool("drain", false, "after the run, stop traffic and drain (liveness check)")
		record  = flag.String("record", "", "record the injected workload to a CSV trace file")
		replay  = flag.String("replay", "", "drive the run from a CSV trace file instead of -traffic")
	)
	flag.Parse()

	cfg := spin.Config{
		Topology:   *topo,
		Routing:    *routing,
		Scheme:     *scheme,
		VCsPerVNet: *vcs,
		VNets:      *vnets,
		Traffic:    *pattern,
		Rate:       *rate,
		Warmup:     *warmup,
		Seed:       *seed,
		TDD:        *tdd,
	}
	if *preset != "" {
		p, err := spin.PresetByName(*preset)
		if err != nil {
			log.Fatal(err)
		}
		cfg = p.Config
		cfg.Traffic = *pattern
		cfg.Rate = *rate
		cfg.Warmup = *warmup
		cfg.Seed = *seed
		cfg.TDD = *tdd
	}
	if *replay != "" {
		cfg.Traffic = "" // the trace drives injection
	}
	s, err := spin.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var recorder *traffic.Recorder
	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := traffic.LoadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		nc := s.Network().Config()
		if err := tr.Validate(s.Topology().NumTerminals(), nc.VNets, nc.MaxPktLen); err != nil {
			log.Fatal(err)
		}
		s.Network().SetTraffic(&traffic.Replay{Trace: tr})
	case *record != "":
		recorder = &traffic.Recorder{Gen: s.Network().Config().Traffic}
		s.Network().SetTraffic(recorder)
	}
	s.Run(*cycles)
	if recorder != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := recorder.Trace.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace           %d injections recorded to %s\n", len(recorder.Trace.Entries), *record)
	}
	st := s.Stats()
	fmt.Printf("topology        %s (%d routers, %d terminals)\n",
		s.Topology().Name(), s.Topology().NumRouters(), s.Topology().NumTerminals())
	fmt.Printf("config          routing=%s scheme=%s vnets=%d vcs=%d\n", cfg.Routing, orNone(cfg.Scheme), maxi(1, cfg.VNets), maxi(1, cfg.VCsPerVNet))
	fmt.Printf("offered         %s @ %.3f flits/node/cycle, %d cycles\n", cfg.Traffic, cfg.Rate, *cycles)
	fmt.Printf("packets         injected=%d ejected=%d in-flight=%d queued=%d\n",
		st.Injected, st.Ejected, s.Network().InFlight(), s.Network().QueuedPackets())
	fmt.Printf("latency         avg=%.1f net=%.1f max=%d cycles\n", st.AvgLatency(), st.AvgNetLatency(), st.MaxLatency)
	fmt.Printf("throughput      %.4f flits/node/cycle, %.2f avg hops\n", s.Throughput(), st.AvgHops())
	u := s.Network().LinkUtilisation()
	fmt.Printf("links           flit=%.3f sm=%.4f idle=%.3f\n", u.Flit, u.SMAll, u.Idle)
	if cfg.Scheme == "spin" {
		fmt.Printf("spin            spins=%d recoveries=%d probes=%d kill_moves=%d\n",
			st.Spins, st.Counter("recoveries"), st.Counter("probes_sent"), st.Counter("kill_moves_sent"))
	}
	if *drain {
		if s.Drain(10 * *cycles) {
			fmt.Println("drain           complete: every packet delivered")
		} else {
			fmt.Printf("drain           INCOMPLETE: %d still in flight\n", s.Network().InFlight())
			os.Exit(1)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
