// Command spinsim runs one network configuration and prints its
// performance and recovery statistics.
//
// With -seeds N (N > 1) it runs N replicates of the configuration on the
// internal/runner worker pool — replicate seeds derive from -seed and
// the replicate index — and reports per-replicate and aggregate numbers,
// the cheap way to put confidence intervals on a single design point.
// -timeout bounds each run, -progress reports completions, and Ctrl-C
// cancels promptly. -shards N steps the network itself on N spatial
// shards (byte-identical results at any shard count; incompatible with
// -record/-replay, which capture the global injection order).
//
// Usage:
//
//	spinsim -topo mesh:8x8 -routing favors_min -scheme spin -vcs 1 \
//	        -traffic uniform_random -rate 0.3 -cycles 100000
//	spinsim -preset mesh_favors_min -traffic transpose -rate 0.25
//	spinsim -preset mesh_favors_min -rate 0.3 -seeds 8 -workers 4
//	spinsim -topo mesh:8x8 -rate 0.28 -cycles 20000 -cpuprofile cpu.pb
//	spinsim -topo mesh:8x8 -routing favors_min -scheme spin -rate 0.40 \
//	        -cycles 20000 -trace out.json -epoch 500 -hist -tsout ts.json
//
// -trace writes a Chrome trace-event JSON (open in ui.perfetto.dev or
// chrome://tracing) of the last -tracebuf non-flit telemetry events —
// packet lifecycles, SPIN state-machine sends, VC freezes, oracle
// firings — plus counter tracks sampled every -epoch cycles. -hist
// prints p50/p95/p99 latency percentiles and -tsout writes the windowed
// time-series JSON.
//
// Workload shaping (see internal/workload): -window W turns the
// synthetic source into closed-loop request/response clients with at
// most W requests outstanding per terminal (-think sets the mean
// post-reply think time), -burst ON:OFF modulates the source with
// per-terminal on/off bursts, and -hotspot FRAC:N skews FRAC of the
// destinations onto N hot terminals. -trace-in replays a binary
// spintrace-v1 file (see cmd/spintrace) through the streaming decoder —
// constant memory regardless of trace length, and, unlike CSV -replay,
// composable with -shards:
//
//	spinsim -topo mesh:8x8 -scheme spin -rate 0.4 -window 8 -think 16
//	spinsim -topo mesh:8x8 -scheme spin -rate 0.2 -burst 16:48 -hotspot 0.2:2
//	spinsim -topo mesh:8x8 -scheme spin -trace-in workload.spintrace -shards 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	spin "repro"
	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// serialFlagsErr rejects flag combinations that need the serial engine:
// -record and -replay capture (or impose) the global injection order,
// which only exists when one shard steps the whole network. The engine
// would clamp Shards to 1 anyway (traffic.Replay and traffic.Recorder
// are SerialOnly); rejecting the flags keeps the surprise out of a run
// the user asked to be parallel.
func serialFlagsErr(record, replay string, shards int) error {
	if (record != "" || replay != "") && shards > 1 {
		return fmt.Errorf("-record/-replay capture the global injection order and need the serial engine; drop -shards")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinsim: ")
	var (
		preset   = flag.String("preset", "", "named configuration from Table III (see spintables -table 3)")
		topo     = flag.String("topo", "mesh:8x8", "topology spec (mesh:XxY, torus:XxY, ring:N, dragonfly:p,a,h,g, dragonfly1024, irregular:XxY:F)")
		routing  = flag.String("routing", "min_adaptive", "routing algorithm")
		scheme   = flag.String("scheme", "", "deadlock scheme: spin, static_bubble, ring_bubble or empty")
		vcs      = flag.Int("vcs", 1, "VCs per virtual network")
		vnets    = flag.Int("vnets", 1, "virtual networks")
		pattern  = flag.String("traffic", "uniform_random", "synthetic traffic pattern")
		rate     = flag.Float64("rate", 0.1, "offered load (flits/node/cycle)")
		cycles   = flag.Int64("cycles", 100000, "simulated cycles")
		warmup   = flag.Int64("warmup", 10000, "warmup cycles before measurement")
		seed     = flag.Int64("seed", 1, "random seed (base seed when -seeds > 1)")
		tdd      = flag.Int64("tdd", 0, "deadlock detection threshold (0 = default 128)")
		drain    = flag.Bool("drain", false, "after the run, stop traffic and drain (liveness check)")
		check    = flag.Bool("check", false, "attach the runtime invariant checker; on violation print it, write a replay artifact, and exit 1")
		checkDir = flag.String("checkdir", ".", "directory for -check replay artifacts")
		replayFr = flag.String("replay-forensics", "", "re-drive a forensics-<key>.json flight-recorder artifact through the checked harness; exit 0 if the failure reproduces")
		record   = flag.String("record", "", "record the injected workload to a CSV trace file")
		replay   = flag.String("replay", "", "drive the run from a CSV trace file instead of -traffic")
		traceIn  = flag.String("trace-in", "", "drive the run from a binary spintrace-v1 file (streamed; works with -shards)")
		window   = flag.Int("window", 0, "closed-loop client window: max outstanding requests per terminal (0 = open loop)")
		think    = flag.Int64("think", 0, "closed-loop mean think time in cycles after each reply (with -window)")
		burst    = flag.String("burst", "", "on/off burst modulation as ON:OFF mean cycles, e.g. 16:48")
		hotspot  = flag.String("hotspot", "", "hotspot skew as FRAC:N, e.g. 0.2:2 (20% of packets to 2 hot terminals)")
		seeds    = flag.Int("seeds", 1, "replicate count: run the configuration under N derived seeds")
		shards   = flag.Int("shards", 0, "spatial shards per simulation for the parallel cycle engine (0/1 = serial); never changes results")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON of the run to this file (open in ui.perfetto.dev)")
		tracebuf = flag.Int("tracebuf", 1<<18, "trace ring capacity: -trace keeps the last N non-flit events")
		epoch    = flag.Int64("epoch", 0, "telemetry time-series window in cycles (0 = default 100 when a time-series consumer is on)")
		hist     = flag.Bool("hist", false, "print latency percentiles (p50/p95/p99) from a log2-bucketed histogram")
		tsout    = flag.String("tsout", "", "write the epoch-windowed time-series JSON to this file")
		workers  = flag.Int("workers", 0, "concurrent replicates when -seeds > 1 (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-run time budget (0 = unlimited), e.g. 2m")
		progress = flag.Bool("progress", false, "report run completions (and single-run progress) to stderr")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprof  = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()
	if *replayFr != "" {
		replayForensics(*replayFr)
		return
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	cfg := spin.Config{
		Topology:   *topo,
		Routing:    *routing,
		Scheme:     *scheme,
		VCsPerVNet: *vcs,
		VNets:      *vnets,
		Traffic:    *pattern,
		Rate:       *rate,
		Warmup:     *warmup,
		Seed:       *seed,
		TDD:        *tdd,
		Shards:     *shards,
	}
	if *preset != "" {
		p, err := spin.PresetByName(*preset)
		if err != nil {
			log.Fatal(err)
		}
		cfg = p.Config
		cfg.Traffic = *pattern
		cfg.Rate = *rate
		cfg.Warmup = *warmup
		cfg.Seed = *seed
		cfg.TDD = *tdd
		cfg.Shards = *shards
	}
	var wspec workload.Spec
	if *window > 0 {
		wspec.Mode = "closed"
		wspec.Window = *window
		wspec.Think = *think
	} else if *think != 0 {
		log.Fatal("-think needs -window (closed-loop clients)")
	}
	if *burst != "" {
		if _, err := fmt.Sscanf(*burst, "%d:%d", &wspec.BurstOn, &wspec.BurstOff); err != nil {
			log.Fatalf("-burst wants ON:OFF mean cycles, got %q", *burst)
		}
	}
	if *hotspot != "" {
		if _, err := fmt.Sscanf(*hotspot, "%g:%d", &wspec.HotFrac, &wspec.Hotspots); err != nil {
			log.Fatalf("-hotspot wants FRAC:N, got %q", *hotspot)
		}
	}
	if err := wspec.Validate(); err != nil {
		log.Fatal(err)
	}
	shaped := *window > 0 || *burst != "" || *hotspot != ""
	switch {
	case shaped && (*replay != "" || *traceIn != ""):
		log.Fatal("-window/-burst/-hotspot shape the synthetic source; they cannot combine with -replay/-trace-in")
	case *traceIn != "" && (*replay != "" || *record != ""):
		log.Fatal("-trace-in is incompatible with -replay/-record")
	case *window > 0 && *record != "":
		log.Fatal("-record captures an open-loop injection sequence; it cannot wrap closed-loop clients")
	}
	if wspec.Mode == "closed" && cfg.VNets < 2 {
		cfg.VNets = 2 // replies need their own message class
	}
	telemetryOn := *traceOut != "" || *tsout != "" || *hist || *epoch != 0
	if *seeds > 1 {
		if *record != "" || *replay != "" || *traceIn != "" || *drain {
			log.Fatal("-seeds > 1 is incompatible with -record/-replay/-trace-in/-drain")
		}
		if shaped {
			log.Fatal("-seeds > 1 is incompatible with -window/-burst/-hotspot")
		}
		if telemetryOn {
			log.Fatal("-seeds > 1 is incompatible with -trace/-tsout/-hist/-epoch")
		}
		runReplicates(ctx, cfg, *cycles, *seeds, *workers, *timeout, *progress, *check)
		return
	}
	if err := serialFlagsErr(*record, *replay, *shards); err != nil {
		log.Fatal(err)
	}
	if *replay != "" || *traceIn != "" {
		cfg.Traffic = "" // the trace drives injection
	}
	s, err := spin.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if shaped {
		nc := s.Network().Config()
		pat, err := traffic.ByName(cfg.Traffic, s.Topology())
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.Build(wspec, pat, cfg.Rate, cfg.DataFrac, nc.VNets, s.Topology().NumTerminals(), nc.MaxPktLen, cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		s.Network().SetTraffic(gen)
	}
	var recorder *traffic.Recorder
	var stream *traffic.StreamReplay
	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := traffic.StreamTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		nc := s.Network().Config()
		stream = traffic.NewStreamReplay(tr, s.Topology().NumTerminals(), nc.VNets, nc.MaxPktLen)
		s.Network().SetTraffic(stream)
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := traffic.LoadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		nc := s.Network().Config()
		if err := tr.Validate(s.Topology().NumTerminals(), nc.VNets, nc.MaxPktLen); err != nil {
			log.Fatal(err)
		}
		s.Network().SetTraffic(&traffic.Replay{Trace: tr})
	case *record != "":
		recorder = &traffic.Recorder{Gen: s.Network().Config().Traffic}
		s.Network().SetTraffic(recorder)
	}
	var checker *sim.InvariantChecker
	if *check {
		net := s.Network()
		checker = net.AttachChecker(harness.FromConfig(cfg, *cycles).CheckOptions(net.NumRouters()))
	}
	var tele *sim.Telemetry
	var events *telemetry.Recorder
	if telemetryOn {
		topt := sim.TelemetryOptions{Hist: *hist}
		if *traceOut != "" || *tsout != "" || *epoch != 0 {
			topt.Window = *epoch
			if topt.Window == 0 {
				topt.Window = 100
			}
		}
		if *traceOut != "" {
			events = telemetry.NewRecorder(*tracebuf)
			topt.Probe = events
		}
		tele = s.Network().AttachTelemetry(topt)
	}
	if *check {
		// After the telemetry attach (which replaces the layer wholesale):
		// the flight recorder rides the same event funnel and snapshots
		// the SPIN protocol tail when an invariant fires.
		s.Network().AttachFlightRecorder(harness.FlightRecorderCap)
	}
	if err := runOne(ctx, s, *cycles, *timeout, *progress); err != nil {
		log.Fatal(err)
	}
	if stream != nil {
		if err := stream.Err(); err != nil {
			log.Fatalf("trace stream: %v", err)
		}
	}
	if recorder != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := recorder.Trace.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace           %d injections recorded to %s\n", len(recorder.Trace.Entries), *record)
	}
	st := s.Stats()
	fmt.Printf("topology        %s (%d routers, %d terminals)\n",
		s.Topology().Name(), s.Topology().NumRouters(), s.Topology().NumTerminals())
	fmt.Printf("config          routing=%s scheme=%s vnets=%d vcs=%d\n", cfg.Routing, orNone(cfg.Scheme), maxi(1, cfg.VNets), maxi(1, cfg.VCsPerVNet))
	fmt.Printf("offered         %s @ %.3f flits/node/cycle, %d cycles\n", cfg.Traffic, cfg.Rate, *cycles)
	fmt.Printf("packets         injected=%d ejected=%d in-flight=%d queued=%d\n",
		st.Injected, st.Ejected, s.Network().InFlight(), s.Network().QueuedPackets())
	fmt.Printf("latency         avg=%.1f net=%.1f max=%d cycles\n", st.AvgLatency(), st.AvgNetLatency(), st.MaxLatency)
	if *hist {
		sum := tele.LatencySummary()
		fmt.Printf("percentiles     p50=%.1f p95=%.1f p99=%.1f max=%d cycles (n=%d)\n",
			sum.P50, sum.P95, sum.P99, sum.Max, sum.Count)
	}
	fmt.Printf("throughput      %.4f flits/node/cycle, %.2f avg hops\n", s.Throughput(), st.AvgHops())
	u := s.Network().LinkUtilisation()
	fmt.Printf("links           flit=%.3f sm=%.4f idle=%.3f\n", u.Flit, u.SMAll, u.Idle)
	if cfg.Scheme == "spin" {
		fmt.Printf("spin            spins=%d recoveries=%d probes=%d kill_moves=%d\n",
			st.Spins, st.Counter("recoveries"), st.Counter("probes_sent"), st.Counter("kill_moves_sent"))
	}
	if cl, ok := s.Network().Config().Traffic.(*workload.ClosedLoop); ok {
		achieved := float64(cl.Completed()) / float64(*cycles) / float64(s.Topology().NumTerminals())
		fmt.Printf("closedloop      window=%d issued=%d completed=%d in_window=%d achieved=%.4f req/node/cycle\n",
			cl.WindowLimit(), cl.Issued(), cl.Completed(), cl.InWindow(), achieved)
	}
	if stream != nil {
		fmt.Printf("trace           %d packets streamed from %s\n", stream.Pumped(), *traceIn)
	}
	drained := true
	if *drain {
		if s.Drain(10 * *cycles) {
			fmt.Println("drain           complete: every packet delivered")
		} else {
			fmt.Printf("drain           INCOMPLETE: %d still in flight\n", s.Network().InFlight())
			drained = false
			if checker == nil {
				os.Exit(1)
			}
		}
	}
	// Telemetry files are written before the checker verdict so a failed
	// check still leaves the trace behind — that is when it matters most.
	if tele != nil {
		tele.Flush()
		if *tsout != "" {
			writeJSONFile(*tsout, tele.TimeSeries())
			fmt.Printf("timeseries      %d windows of %d cycles written to %s\n",
				len(tele.TimeSeries().Samples), tele.TimeSeries().Window, *tsout)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := telemetry.WriteChromeTrace(f, events.Events(), tele.TimeSeries()); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace           %d events (of %d seen) written to %s\n",
				events.Len(), events.Total(), *traceOut)
		}
	}
	if checker != nil {
		ns := s.Network().Stats()
		res := &harness.Result{
			Scenario:         harness.FromConfig(cfg, *cycles),
			Violations:       checker.Violations(),
			Drained:          drained,
			Injected:         ns.Injected,
			Ejected:          ns.Ejected,
			Spins:            ns.Spins,
			MaxDeadlockSpell: checker.MaxDeadlockSpell(),
		}
		if events != nil {
			ev := events.Events()
			if len(ev) > harness.TraceTail {
				ev = ev[len(ev)-harness.TraceTail:]
			}
			res.Trace = ev
		}
		if res.Failed() {
			if !drained {
				s.Network().CaptureForensics("drain_incomplete")
			}
			res.Forensics = s.Network().FlightRecorder().Snapshot()
			log.Print(harness.ReportFailure(*checkDir, res))
			os.Exit(1)
		}
		fmt.Printf("check           ok: no invariant violations (max deadlock spell %d cycles)\n", checker.MaxDeadlockSpell())
	}
}

// replayForensics re-drives a flight-recorder artifact through the
// checked harness and reports whether the recorded failure reproduces.
func replayForensics(path string) {
	f, err := harness.LoadForensics(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forensics       %s\n", path)
	fmt.Printf("scenario        %s\n", f.Scenario)
	if f.Snapshot != nil {
		fmt.Printf("recorded        %s at cycle %d: %d SPIN events retained (%d seen), %d chained VCs\n",
			f.Snapshot.Reason, f.Snapshot.Cycle, len(f.Snapshot.Events), f.Snapshot.Total, len(f.Snapshot.SpinningVCs))
	}
	if f.CDG != nil {
		fmt.Printf("cdg             %s\n", f.CDG.Summary)
	}
	res, reproduced, err := harness.ReplayForensics(f)
	if err != nil {
		log.Fatal(err)
	}
	if !reproduced {
		fmt.Printf("replay          NOT REPRODUCED: %s\n", res.Summary())
		os.Exit(1)
	}
	fmt.Printf("replay          reproduced: %s\n", res.Summary())
	if res.Forensics != nil {
		fmt.Printf("snapshot        fresh capture at cycle %d: %d events, %d chained VCs\n",
			res.Forensics.Cycle, len(res.Forensics.Events), len(res.Forensics.SpinningVCs))
	}
}

// runOne advances a single simulation through the runner so -timeout and
// Ctrl-C cancellation apply, printing coarse progress when asked.
func runOne(ctx context.Context, s *spin.Simulation, cycles int64, timeout time.Duration, progress bool) error {
	job := runner.Job[struct{}]{Key: "run", Run: func(ctx context.Context, _ int64) (struct{}, error) {
		var done, lastPct int64
		return struct{}{}, runner.Cycles(ctx, func(n int64) {
			s.Run(n)
			done += n
			if pct := done * 100 / cycles; progress && pct >= lastPct+10 {
				lastPct = pct - pct%10
				fmt.Fprintf(os.Stderr, "spinsim: %d%% (%d/%d cycles)\n", lastPct, done, cycles)
			}
		}, cycles)
	}}
	_, err := runner.Run(ctx, runner.Options{Workers: 1, Timeout: timeout}, []runner.Job[struct{}]{job})
	return err
}

// replicate is one seed's headline metrics.
type replicate struct {
	Seed       int64
	AvgLatency float64
	Throughput float64
	Spins      int64
}

// runReplicates runs cfg under n derived seeds in parallel and prints
// per-replicate rows plus mean ± stddev aggregates.
func runReplicates(ctx context.Context, cfg spin.Config, cycles int64, n, workers int, timeout time.Duration, progress, check bool) {
	jobs := make([]runner.Job[replicate], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = runner.Job[replicate]{
			Key: fmt.Sprintf("rep/%d", i),
			Run: func(ctx context.Context, seed int64) (replicate, error) {
				c := cfg
				c.Seed = seed
				s, err := spin.New(c)
				if err != nil {
					return replicate{}, err
				}
				var checker *sim.InvariantChecker
				if check {
					net := s.Network()
					checker = net.AttachChecker(harness.FromConfig(c, cycles).CheckOptions(net.NumRouters()))
				}
				if err := runner.Cycles(ctx, s.Run, cycles); err != nil {
					return replicate{}, err
				}
				if checker != nil {
					if err := checker.Err(); err != nil {
						return replicate{}, fmt.Errorf("seed %d: %w", seed, err)
					}
				}
				return replicate{Seed: seed, AvgLatency: s.AvgLatency(), Throughput: s.Throughput(), Spins: s.Spins()}, nil
			},
		}
	}
	o := runner.Options{Workers: workers, Seed: cfg.Seed, Timeout: timeout}
	if progress {
		o.Progress = func(e runner.Event) {
			fmt.Fprintf(os.Stderr, "spinsim: [%d/%d] %s (%.1fs)\n", e.Done, e.Total, e.Key, e.Elapsed.Seconds())
		}
	}
	reps, err := runner.Run(ctx, o, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config          %s routing=%s scheme=%s traffic=%s rate=%.3f cycles=%d\n",
		cfg.Topology, cfg.Routing, orNone(cfg.Scheme), cfg.Traffic, cfg.Rate, cycles)
	fmt.Printf("%-6s %20s %12s %12s %8s\n", "rep", "seed", "avg_latency", "throughput", "spins")
	for i, r := range reps {
		fmt.Printf("%-6d %20d %12.1f %12.4f %8d\n", i, r.Seed, r.AvgLatency, r.Throughput, r.Spins)
	}
	lat := make([]float64, n)
	tp := make([]float64, n)
	for i, r := range reps {
		lat[i], tp[i] = r.AvgLatency, r.Throughput
	}
	lm, ls := meanStd(lat)
	tm, ts := meanStd(tp)
	fmt.Printf("%-6s %20s %7.1f±%-4.1f %7.4f±%-.4f\n", "agg", fmt.Sprintf("%d seeds", n), lm, ls, tm, ts)
}

// meanStd reports mean and sample standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// writeJSONFile marshals v, indented, to path.
func writeJSONFile(path string, v interface{}) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
