package main

import "testing"

// TestSerialFlagsErr pins the -record/-replay vs -shards rejection:
// trace capture and replay depend on the global injection order, which
// only the serial engine has.
func TestSerialFlagsErr(t *testing.T) {
	cases := []struct {
		name           string
		record, replay string
		shards         int
		wantErr        bool
	}{
		{"no trace flags, serial", "", "", 1, false},
		{"no trace flags, sharded", "", "", 8, false},
		{"record, serial", "t.json", "", 1, false},
		{"replay, serial", "", "t.json", 1, false},
		{"record, sharded", "t.json", "", 2, true},
		{"replay, sharded", "", "t.json", 4, true},
		{"record and replay, sharded", "a.json", "b.json", 2, true},
		{"shards zero counts as serial", "t.json", "", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := serialFlagsErr(tc.record, tc.replay, tc.shards)
			if (err != nil) != tc.wantErr {
				t.Errorf("serialFlagsErr(%q, %q, %d) = %v, wantErr %v",
					tc.record, tc.replay, tc.shards, err, tc.wantErr)
			}
		})
	}
}
