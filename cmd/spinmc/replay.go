package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/mc"
)

// replayArtifact reruns a counterexample artifact through the simulator
// with the invariant checker attached — the differential-oracle loop
// closed from the command line.
func replayArtifact(path string) error {
	art, err := harness.LoadArtifact(path)
	if err != nil {
		return err
	}
	if err := art.Scenario.Validate(); err != nil {
		return err
	}
	res, err := mc.Replay(art.Scenario)
	if err != nil {
		return err
	}
	fmt.Printf("replay %s: %s\n", art.Scenario, res.Summary())
	if res.Failed() {
		return fmt.Errorf("replay reproduced the failure")
	}
	return nil
}

// writeArtifacts converts each replayable violation into a harness
// scenario artifact under dir, deduplicating identical scenarios (many
// violations share one injection prefix).
func writeArtifacts(in *mc.Instance, res *mc.Result, dir string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	for _, v := range res.Violations {
		sc, err := in.TraceScenario(v)
		if err != nil {
			log.Printf("skip %s violation: %v", v.Kind, err)
			continue
		}
		key := sc.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		art := harness.Artifact{
			Scenario: sc,
			Notes: []string{
				fmt.Sprintf("model counterexample: [%s] %s", v.Kind, v.Message),
				fmt.Sprintf("model trace (%d steps): %v", len(v.Trace), v.Trace),
				"replay: spinmc -replay <this file>",
			},
		}
		p, err := harness.WriteArtifact(dir, art)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
