// Command spinmc is the explicit-state model checker for the SPIN
// protocol: it exhausts (or bounds) the state space of a small
// abstracted instance, checks the safety invariants and the
// reach-delivery liveness property on every state, and prints the
// state-space census. Property violations are written as harness
// scenario artifacts replayable through the simulator:
//
//	spinmc -topo mesh2x2                  # exhaust, print census
//	spinmc -topo ring5 -bound 24 -json    # bounded, census as JSON
//	spinmc -topo ring5 -mutate no_probe -out /tmp/cex
//	spinmc -replay /tmp/cex/scenario-<key>.json
//
// Exit status 1 means a property violation (or a failed replay).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/mc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinmc: ")
	var (
		topo      = flag.String("topo", "mesh2x2", "instance: mesh2x2, mesh3x3, or ring5")
		packets   = flag.Int("packets", 0, "truncate the instance workload to its first N packets (0 = all)")
		bound     = flag.Int("bound", 0, "BFS depth bound in levels (0 = exhaust)")
		workers   = flag.Int("workers", 0, "parallel expansion workers (0 = GOMAXPROCS)")
		maxStates = flag.Int("maxstates", 0, "stop expanding once the store exceeds N states (0 = unlimited)")
		mutate    = flag.String("mutate", "none", "inject a protocol defect: none, no_probe, or spin_unchecked")
		out       = flag.String("out", "", "directory for counterexample scenario artifacts")
		jsonOut   = flag.Bool("json", false, "print the full result as JSON instead of a summary")
		replay    = flag.String("replay", "", "replay a counterexample artifact through the simulator instead of checking")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		if err := replayArtifact(*replay); err != nil {
			log.Fatal(err)
		}
		return
	}

	mut, err := mc.MutationByName(*mutate)
	if err != nil {
		log.Fatal(err)
	}
	in, err := mc.NewInstance(*topo, *packets, mut)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mc.Check(ctx, in, mc.Options{Workers: *workers, Bound: *bound, MaxStates: *maxStates})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	} else {
		c := res.Census
		fmt.Printf("%s (%d packets, mutation %s): %d states, %d edges, diameter %d",
			c.Instance, c.Packets, c.Mutation, c.States, c.Edges, c.Diameter)
		if c.Truncated {
			fmt.Printf(" (truncated at bound %d)", c.Bound)
		}
		fmt.Printf("\n  deadlocked states: %d, max recovery distance: %d\n", c.Deadlocked, c.MaxRecoveryDistance)
	}
	if !res.Failed() {
		fmt.Println("  no property violations")
		return
	}
	fmt.Printf("  %d property violations (%d reported)\n", res.TotalViolations, len(res.Violations))
	for i, v := range res.Violations {
		if i >= 4 && !*jsonOut {
			fmt.Printf("  ... %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  [%s] %s (trace: %d steps)\n", v.Kind, v.Message, len(v.Trace))
	}
	if *out != "" {
		paths, err := writeArtifacts(in, res, *out)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Printf("  counterexample: %s\n", p)
		}
	}
	os.Exit(1)
}
