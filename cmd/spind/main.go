// Command spind is the simulation-as-a-service daemon: an HTTP API over
// the SPIN simulator with a content-addressed result cache and
// Prometheus metrics.
//
// Endpoints:
//
//	POST /v1/simulate   one scenario (harness JSON + optional "check")
//	POST /v1/sweep      one figure sweep ({"fig":"7", ...})
//	GET  /healthz       liveness + queue snapshot
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/pprof/  net/http/pprof profiling of the live daemon
//
// Identical requests — after canonicalization, so spelling out defaults
// does not matter — share one cache entry keyed by the SHA-256 of the
// canonical request plus the result-schema version, and concurrent
// identical requests run the simulation once. Responses carry X-Cache
// (hit | miss | shared) and X-Cache-Key headers.
//
// The daemon sheds load instead of collapsing: past -queue waiting jobs
// it answers 429 with Retry-After. SIGINT/SIGTERM drain gracefully —
// in-flight requests complete before the process exits.
//
// Usage:
//
//	spind -addr :8080 -cachedir /var/cache/spind
//	curl -s localhost:8080/healthz
//	curl -s -d '{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":20000,"seed":1}' localhost:8080/v1/simulate
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("spind: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cachedir  = flag.String("cachedir", "", "directory for the on-disk result cache (empty = in-memory only)")
		cachemem  = flag.Int("cachemem", 0, "in-memory cache entries (0 = default 1024)")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "spatial shards per simulation (0/1 = serial); capped so workers x shards never oversubscribes GOMAXPROCS; never changes results")
		queue     = flag.Int("queue", 0, "accepted-but-waiting jobs before shedding 429s (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request simulation budget")
		maxcycles = flag.Int64("maxcycles", 2_000_000, "largest cycles value a request may ask for")
		grace     = flag.Duration("grace", time.Minute, "shutdown grace period for in-flight requests")
		reqlog    = flag.Bool("reqlog", true, "log one structured line per request (id, endpoint, code, cache outcome, key, duration)")
	)
	flag.Parse()

	store, err := cache.Open(*cachedir, *cachemem)
	if err != nil {
		log.Fatalf("opening cache: %v", err)
	}
	cfg := serve.Config{
		Cache:     store,
		Workers:   *workers,
		Shards:    *shards,
		QueueSize: *queue,
		Timeout:   *timeout,
		MaxCycles: *maxcycles,
	}
	if *reqlog {
		// The request log shares the daemon's logger: same prefix and
		// timestamps, greppable by the request ID echoed in X-Request-ID
		// headers and error bodies.
		cfg.Log = log.Default()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The API handler takes every path except the profiling namespace:
	// /debug/pprof is served by net/http/pprof for live CPU/heap/goroutine
	// inspection of a running daemon (go tool pprof
	// http://host:port/debug/pprof/profile).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	workersEff := *workers
	if workersEff <= 0 {
		workersEff = runtime.GOMAXPROCS(0)
	}
	log.Printf("listening on %s (workers=%d, shards=%d requested, cachedir=%q; resolved counts on /metrics)",
		*addr, workersEff, *shards, *cachedir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (grace %v)", sig, *grace)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Drain: stop accepting connections, let in-flight requests (and the
	// simulations they wait on) complete, then stop the worker pool.
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	st := srv.Snapshot()
	log.Printf("bye: %d hits (%d disk), %d misses, %d shared, %d errors",
		st.Hits, st.DiskHits, st.Misses, st.Shared, st.Errors)
}
