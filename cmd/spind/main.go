// Command spind is the simulation-as-a-service daemon: an HTTP API over
// the SPIN simulator with a content-addressed result cache and
// Prometheus metrics.
//
// Endpoints:
//
//	POST /v1/simulate   one scenario (harness JSON + optional "check");
//	                    ?stream=sse streams the windowed time-series live
//	POST /v1/sweep      one figure sweep ({"fig":"7", ...})
//	GET  /v1/trace/<id> a request's span tree, merged across the fleet
//	                    (?format=perfetto for a Perfetto-loadable timeline)
//	GET  /v1/version    build identity (version, commit, Go toolchain)
//	GET  /healthz       liveness + queue snapshot
//	GET  /readyz        readiness (fails while draining or pre-gossip)
//	GET  /metrics       Prometheus text exposition
//	GET  /v1/fleet      fleet membership, ring, and counters (with -peers)
//	GET  /debug/pprof/  net/http/pprof profiling of the live daemon
//
// Identical requests — after canonicalization, so spelling out defaults
// does not matter — share one cache entry keyed by the SHA-256 of the
// canonical request plus the result-schema version, and concurrent
// identical requests run the simulation once. Responses carry X-Cache
// (hit | miss | shared) and X-Cache-Key headers.
//
// With -peers, multiple daemons form a fleet: gossip membership, a
// consistent-hash ring assigning every cache key one owner, peer
// cache-fill before simulating, and proxying to the owner (or computing
// locally and backfilling when the owner is down). Results stay
// byte-identical to a single node — the fleet only moves cached bytes.
//
// The daemon sheds load instead of collapsing: past -queue waiting jobs
// it answers 429 with Retry-After. SIGINT/SIGTERM drain gracefully —
// readiness fails first, fleet peers are told we are leaving, then
// in-flight requests complete before the process exits.
//
// Usage:
//
//	spind -addr :8080 -cachedir /var/cache/spind
//	spind -addr :8081 -peers 127.0.0.1:8080 -node b
//	curl -s localhost:8080/healthz
//	curl -s -d '{"topology":"mesh:8x8","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":20000,"seed":1}' localhost:8080/v1/simulate
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("spind: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cachedir  = flag.String("cachedir", "", "directory for the on-disk result cache (empty = in-memory only)")
		cachemem  = flag.Int("cachemem", 0, "in-memory cache entries (0 = default 1024)")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "spatial shards per simulation (0/1 = serial); capped so workers x shards never oversubscribes GOMAXPROCS; never changes results")
		queue     = flag.Int("queue", 0, "accepted-but-waiting jobs before shedding 429s (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request simulation budget")
		maxcycles = flag.Int64("maxcycles", 2_000_000, "largest cycles value a request may ask for")
		grace     = flag.Duration("grace", time.Minute, "shutdown grace period for in-flight requests")
		reqlog    = flag.Bool("reqlog", true, "log one structured JSON record per request (id, endpoint, code, cache outcome, key, duration, trace/span IDs)")
		node      = flag.String("node", "", "fleet node ID (default: the advertise address)")
		advertise = flag.String("advertise", "", "host:port peers reach this node at (default: 127.0.0.1 + the -addr port)")
		peers     = flag.String("peers", "", "comma-separated seed addresses of other fleet members (empty = no fleet)")
		gossip    = flag.Duration("gossip", time.Second, "fleet gossip interval (suspicion at 3x, death at 10x)")
	)
	flag.Parse()

	store, err := cache.Open(*cachedir, *cachemem)
	if err != nil {
		log.Fatalf("opening cache: %v", err)
	}
	// Request and fleet logs are structured JSON records on stderr (one
	// object per line: request ID, trace/span IDs, hop path, ...), so
	// they are machine-queryable; daemon lifecycle lines stay on the
	// plain logger.
	jsonLog := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := serve.Config{
		Cache:     store,
		Workers:   *workers,
		Shards:    *shards,
		QueueSize: *queue,
		Timeout:   *timeout,
		MaxCycles: *maxcycles,
	}
	if *reqlog {
		cfg.Log = jsonLog
	}

	// Fleet mode: any -peers (or an explicit -node/-advertise) joins this
	// daemon to a gossip fleet. A lone daemon stays exactly as before.
	var fl *fleet.Fleet
	if *peers != "" || *node != "" || *advertise != "" {
		adv := *advertise
		if adv == "" {
			// A bare ":8080" listen address is reachable locally; fleets
			// spanning hosts must set -advertise explicitly.
			if strings.HasPrefix(*addr, ":") {
				adv = "127.0.0.1" + *addr
			} else {
				adv = *addr
			}
		}
		id := *node
		if id == "" {
			id = adv
		}
		var seedList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				seedList = append(seedList, p)
			}
		}
		fl, err = fleet.New(fleet.Config{
			ID:        id,
			Advertise: adv,
			Peers:     seedList,
			Interval:  *gossip,
			Cache:     store,
			CacheStats: func() fleet.CacheInfo {
				st := store.Snapshot()
				return fleet.CacheInfo{Hits: st.Hits, DiskHits: st.DiskHits, Misses: st.Misses, Entries: st.MemEntries}
			},
			ProxyTimeout: *timeout + 30*time.Second,
			Version:      serve.ReadBuild().String(),
			Log:          jsonLog,
		})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		cfg.Fleet = fl
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The API handler takes every path except the profiling namespace:
	// /debug/pprof is served by net/http/pprof for live CPU/heap/goroutine
	// inspection of a running daemon (go tool pprof
	// http://host:port/debug/pprof/profile).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if fl != nil {
		// Gossip starts after the listener: the first exchange needs peers
		// to be able to dial back.
		fl.Start()
		log.Printf("fleet: node %s advertising %s (%d seed peers, gossip %v)",
			fl.SelfID(), *advertise, len(strings.Split(*peers, ",")), *gossip)
	}
	workersEff := *workers
	if workersEff <= 0 {
		workersEff = runtime.GOMAXPROCS(0)
	}
	log.Printf("listening on %s (workers=%d, shards=%d requested, cachedir=%q; resolved counts on /metrics)",
		*addr, workersEff, *shards, *cachedir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (grace %v)", sig, *grace)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Drain ordering: fail readiness first (load balancers stop routing
	// here), tell fleet peers we are leaving (they drop us from their
	// rings instead of waiting out suspicion), stop accepting
	// connections, let in-flight requests (and the simulations they wait
	// on) complete, then stop the pool and the gossip loop.
	srv.SetDraining(true)
	if fl != nil {
		fl.Leave()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	if fl != nil {
		fl.Close()
	}
	st := srv.Snapshot()
	log.Printf("bye: %d hits (%d disk), %d misses, %d shared, %d errors",
		st.Hits, st.DiskHits, st.Misses, st.Shared, st.Errors)
}
