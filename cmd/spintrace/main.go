// Command spintrace converts between the repository's two trace
// formats: the human-readable CSV that spinsim -record/-replay uses
// (cycle,src,dst,length,vnet per line) and the streaming binary
// spintrace-v1 container (varint-delta encoded, chunked with per-chunk
// CRCs, gzip-framed) that spinsim -trace-in and the spind /v1/simulate
// trace_b64 field consume.
//
// Usage:
//
//	spintrace -pack trace.csv -o trace.spintrace
//	spintrace -pack trace.csv -b64 > trace.b64     # for /v1/simulate trace_b64
//	spintrace -unpack trace.spintrace -o trace.csv
//	spintrace -info trace.spintrace
//
// -info streams the file through the validating decoder in constant
// memory, so it doubles as an integrity check: a truncated or
// bit-flipped trace fails with the first corrupt chunk's error.
package main

import (
	"bufio"
	"encoding/base64"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spintrace: ")
	var (
		pack   = flag.String("pack", "", "CSV trace to encode as spintrace-v1")
		unpack = flag.String("unpack", "", "spintrace-v1 file to decode back to CSV")
		info   = flag.String("info", "", "spintrace-v1 file to summarize (streaming; validates every chunk)")
		b64    = flag.Bool("b64", false, "with -pack: emit standard base64 instead of raw binary")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	modes := 0
	for _, m := range []string{*pack, *unpack, *info} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("exactly one of -pack, -unpack, -info is required")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer func() {
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
	}()

	switch {
	case *pack != "":
		doPack(*pack, bw, *b64)
	case *unpack != "":
		doUnpack(*unpack, bw)
	case *info != "":
		doInfo(*info, bw)
	}
}

// doPack reads a CSV trace and writes it as spintrace-v1 (optionally
// base64-wrapped for direct use as a /v1/simulate trace_b64 value).
func doPack(path string, w io.Writer, asB64 bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := traffic.LoadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	if asB64 {
		enc := base64.NewEncoder(base64.StdEncoding, w)
		if err := traffic.EncodeTrace(enc, tr); err != nil {
			log.Fatal(err)
		}
		if err := enc.Close(); err != nil {
			log.Fatal(err)
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := traffic.EncodeTrace(w, tr); err != nil {
		log.Fatal(err)
	}
}

// doUnpack streams a spintrace-v1 file back out as CSV, one entry at a
// time — the decode side never holds the whole trace.
func doUnpack(path string, w io.Writer) {
	reader(path, func(e traffic.TraceEntry) {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", e.Cycle, e.Src, e.Dst, e.Length, e.VNet); err != nil {
			log.Fatal(err)
		}
	})
}

// doInfo streams the trace and prints a summary.
func doInfo(path string, w io.Writer) {
	var (
		entries              int64
		firstCycle           int64 = -1
		lastCycle            int64
		flits                int64
		maxSrc, maxDst, maxV int
	)
	reader(path, func(e traffic.TraceEntry) {
		if firstCycle < 0 {
			firstCycle = e.Cycle
		}
		lastCycle = e.Cycle
		entries++
		flits += int64(e.Length)
		if e.Src > maxSrc {
			maxSrc = e.Src
		}
		if e.Dst > maxDst {
			maxDst = e.Dst
		}
		if e.VNet > maxV {
			maxV = e.VNet
		}
	})
	if firstCycle < 0 {
		firstCycle = 0
	}
	fmt.Fprintf(w, "entries   %d (%d flits)\n", entries, flits)
	fmt.Fprintf(w, "cycles    %d..%d\n", firstCycle, lastCycle)
	fmt.Fprintf(w, "terminals >= %d, vnets >= %d\n", maxi(maxSrc, maxDst)+1, maxV+1)
}

// reader streams every entry of a spintrace-v1 file through fn.
func reader(path string, fn func(traffic.TraceEntry)) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := traffic.StreamTrace(bufio.NewReader(f))
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		fn(e)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
