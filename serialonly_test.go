package spin_test

import (
	"strings"
	"testing"

	spin "repro"
	"repro/internal/sim"
	spinimpl "repro/internal/spin"
	"repro/internal/traffic"
)

// TestSerialOnlyClamping pins which configurations may actually shard:
// schemes and traffic generators must positively declare shard-safety
// (sim.SerialOnly), so anything with cross-router step-time scans — the
// ring-bubble free-slot check, SPIN's oracle-backed CountTruth
// accounting — or global injection-order state — trace record/replay —
// silently clamps to the serial engine, while the plain sharded-safe
// configuration keeps its requested shard count.
func TestSerialOnlyClamping(t *testing.T) {
	cases := []struct {
		name       string
		cfg        spin.Config
		wantShards int
	}{
		{
			name: "spin scheme shards freely",
			cfg: spin.Config{
				Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin",
				Traffic: "uniform_random", Rate: 0.1, Shards: 4,
			},
			wantShards: 4, // positive control: the clamp is real, not a default
		},
		{
			name: "count_truth forces serial",
			cfg: spin.Config{
				Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin",
				SPIN:    spinimpl.Config{CountTruth: true},
				Traffic: "uniform_random", Rate: 0.1, Shards: 4,
			},
			wantShards: 1,
		},
		{
			name: "ring bubble forces serial",
			cfg: spin.Config{
				Topology: "torus:4x4", Routing: "xy", Scheme: "ring_bubble",
				Traffic: "uniform_random", Rate: 0.1, Shards: 4,
			},
			wantShards: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := spin.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Network().Shards(); got != tc.wantShards {
				t.Errorf("Shards() = %d, want %d", got, tc.wantShards)
			}
		})
	}
}

// TestTraceTrafficShardPolicy: traffic.Recorder captures the global
// injection order, which is inherently serial, so it clamps to one
// shard. traffic.Replay (and the streaming StreamReplay) dispatch each
// entry to its source terminal's queue, a shard-local affair, so replay
// declares shard-safety and keeps the requested count.
func TestTraceTrafficShardPolicy(t *testing.T) {
	topo, err := spin.BuildTopology("mesh:4x4", 1)
	if err != nil {
		t.Fatal(err)
	}
	routing, err := spin.BuildRouting("min_adaptive", topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := &traffic.Synthetic{Pattern: traffic.Uniform(topo.NumTerminals()), Rate: 0.1}
	cases := []struct {
		name       string
		gen        sim.TrafficGen
		wantShards int
	}{
		{"replay", &traffic.Replay{Trace: &traffic.Trace{}}, 4},
		{"recorder", &traffic.Recorder{Gen: base}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, err := sim.NewNetwork(sim.Config{
				Topology: topo, Routing: routing, Traffic: tc.gen, Shards: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := net.Shards(); got != tc.wantShards {
				t.Errorf("Shards() = %d, want %d", got, tc.wantShards)
			}
		})
	}
}

// TestSetTrafficPanicsOnShardedNetwork: attaching a serial-only
// generator after construction cannot silently re-serialize a network
// already running sharded — it must refuse loudly.
func TestSetTrafficPanicsOnShardedNetwork(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin",
		Traffic: "uniform_random", Rate: 0.1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Network().Shards() != 4 {
		t.Fatalf("control network did not shard: %d", s.Network().Shards())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetTraffic accepted a serial-only generator on a sharded network")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "serial") {
			t.Errorf("panic message does not explain the serial requirement: %v", r)
		}
	}()
	s.Network().SetTraffic(&traffic.Recorder{Gen: &traffic.Synthetic{
		Pattern: traffic.Uniform(16), Rate: 0.1,
	}})
}

// TestReplaySetTrafficAllowedSharded is the flip side: a shard-safe
// replay generator attaches to a sharded network without complaint.
func TestReplaySetTrafficAllowedSharded(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin",
		Traffic: "uniform_random", Rate: 0.1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Network().Shards() != 4 {
		t.Fatalf("control network did not shard: %d", s.Network().Shards())
	}
	s.Network().SetTraffic(&traffic.Replay{Trace: &traffic.Trace{}})
}
