package spin_test

import (
	"testing"

	spin "repro"
	"repro/internal/sim"
)

func TestFacadeQuickRun(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology:   "mesh:4x4",
		Routing:    "favors_min",
		Scheme:     "spin",
		Traffic:    "uniform_random",
		Rate:       0.2,
		VCsPerVNet: 1,
		TDD:        32,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3000)
	if s.Stats().Ejected == 0 {
		t.Fatal("no packets delivered")
	}
	if !s.Drain(50000) {
		t.Fatal("facade simulation failed to drain")
	}
	if s.AvgLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestFacadeTopologySpecs(t *testing.T) {
	specs := []string{"mesh:4x4", "torus:4x4", "ring:6", "dragonfly:2,4,2,9", "irregular:5x5:3", "jellyfish:12,1,4", "fattree:4,2,2"}
	for _, spec := range specs {
		topo, err := spin.BuildTopology(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if topo.NumRouters() == 0 {
			t.Fatalf("%s: empty topology", spec)
		}
	}
	if _, err := spin.BuildTopology("blob:3", 1); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := spin.BuildTopology("mesh:ZxZ", 1); err == nil {
		t.Fatal("bad dims accepted")
	}
	if _, err := spin.BuildTopology("", 1); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestFacadeRoutingValidation(t *testing.T) {
	dfly, _ := spin.BuildTopology("dragonfly:2,4,2,9", 1)
	mesh, _ := spin.BuildTopology("mesh:4x4", 1)
	if _, err := spin.BuildRouting("xy", dfly, 1); err == nil {
		t.Fatal("xy on dragonfly accepted")
	}
	if _, err := spin.BuildRouting("ugal_ladder", mesh, 3); err == nil {
		t.Fatal("ugal on mesh accepted")
	}
	if _, err := spin.BuildRouting("escape_vc", mesh, 1); err == nil {
		t.Fatal("escape_vc with 1 VC accepted")
	}
	if _, err := spin.BuildRouting("nope", mesh, 1); err == nil {
		t.Fatal("unknown routing accepted")
	}
}

func TestAllPresetsBuildAndRun(t *testing.T) {
	for _, p := range spin.Presets() {
		cfg := p.Config
		cfg.Traffic = "uniform_random"
		cfg.Rate = 0.05
		cfg.Seed = 3
		cfg.TDD = 64
		// Shrink the paper-scale presets for test speed.
		if cfg.Topology == "dragonfly1024" {
			cfg.Topology = "dragonfly:2,4,2,9"
		}
		if cfg.Topology == "mesh:8x8" || cfg.Topology == "mesh:64x64" {
			cfg.Topology = "mesh:4x4"
		}
		s, err := spin.New(cfg)
		if err != nil {
			t.Fatalf("preset %s: %v", p.Name, err)
		}
		s.Run(2000)
		if s.Stats().Ejected == 0 {
			t.Fatalf("preset %s: no traffic delivered", p.Name)
		}
		if !s.Drain(100000) {
			t.Fatalf("preset %s: failed to drain", p.Name)
		}
	}
}

func TestPresetByName(t *testing.T) {
	if _, err := spin.PresetByName("mesh_favors_min"); err != nil {
		t.Fatal(err)
	}
	if _, err := spin.PresetByName("nonsense"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestFacadeVNetSpread(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology:   "mesh:4x4",
		Routing:    "xy",
		VNets:      3,
		VCsPerVNet: 1,
		Traffic:    "uniform_random",
		Rate:       0.2,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	if s.Stats().Ejected == 0 {
		t.Fatal("no traffic")
	}
	if !s.Drain(20000) {
		t.Fatal("3-vnet facade run failed to drain")
	}
}

func TestFacadeSchemeValidation(t *testing.T) {
	if _, err := spin.New(spin.Config{Topology: "mesh:4x4", Scheme: "warp_drive"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := spin.New(spin.Config{Topology: "dragonfly:2,4,2,9", Routing: "dfly_min", Scheme: "static_bubble"}); err == nil {
		t.Fatal("static_bubble on dragonfly accepted")
	}
	if _, err := spin.New(spin.Config{Topology: "mesh:4x4", Routing: "xy", Scheme: "ring_bubble"}); err == nil {
		t.Fatal("ring_bubble on non-torus accepted")
	}
}

func TestFacadeRingBubbleTorus(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology: "torus:4x4",
		Scheme:   "ring_bubble",
		Routing:  "min_adaptive", // overridden semantics: bubble guards DOR-style rings
		Traffic:  "uniform_random",
		Rate:     0.1,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1500)
	if s.Stats().Ejected == 0 {
		t.Fatal("no traffic under ring bubble")
	}
}

func TestFacadeTDDPassthrough(t *testing.T) {
	s, err := spin.New(spin.Config{
		Topology:   "mesh:4x4",
		Routing:    "min_adaptive",
		Scheme:     "spin",
		TDD:        16,
		VCsPerVNet: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Build a quick square deadlock via manual injection and verify fast
	// detection (low TDD) resolves it within a few hundred cycles.
	n := s.Network()
	ring := []int{0, 1, 5, 4}
	dsts := []int{5, 4, 0, 1}
	for i := range ring {
		n.InjectPacket(ring[i], simPacket(dsts[i]))
	}
	s.Run(800)
	if s.Stats().Ejected != 4 {
		t.Fatalf("low-TDD recovery did not resolve the ring: %d/4 (spins=%d)", s.Stats().Ejected, s.Spins())
	}
}

func simPacket(dst int) sim.PacketSpec { return sim.PacketSpec{Dst: dst, Length: 2} }

func TestPresetsCoverTableIII(t *testing.T) {
	// Every Table III design of the paper is represented: four dragonfly
	// rows and six mesh rows, each naming its theory and type.
	byTheory := map[string]int{}
	for _, p := range spin.Presets() {
		if p.Theory == "" || p.Type == "" || p.Config.Topology == "" {
			t.Fatalf("incomplete preset %q", p.Name)
		}
		if p.Config.VNets != 3 {
			t.Fatalf("preset %q does not run 3 vnets", p.Name)
		}
		byTheory[p.Theory]++
	}
	for _, theory := range []string{"Dally", "Duato", "FlowCtrl", "SPIN"} {
		if byTheory[theory] == 0 {
			t.Fatalf("no preset exercises %s theory", theory)
		}
	}
}
