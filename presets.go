package spin

import "fmt"

// Preset names the network configurations of the paper's Table III plus
// the deterministic-routing baselines used in Fig. 3.
type Preset struct {
	// Name as used in the paper's plots.
	Name string
	// Description for tables.
	Description string
	// Theory and Type columns of Table III.
	Theory, Type string
	// Adaptive and Minimal columns.
	Adaptive, Minimal string
	Config            Config
}

// Presets returns the Table III configuration registry. As in the paper,
// every configuration runs three virtual networks (the message classes of
// a directory protocol; synthetic traffic is spread across them
// round-robin); VCsPerVNet is the paper's "nVC" knob, which callers
// override per experiment.
func Presets() []Preset {
	return []Preset{
		{
			Name: "dfly_ugal_ladder", Description: "1024-node dragonfly, UGAL with Dally VC ladder (commercial baseline)",
			Theory: "Dally", Type: "Avoidance", Adaptive: "Full", Minimal: "No",
			Config: Config{Topology: "dragonfly1024", Routing: "ugal_ladder", VNets: 3, VCsPerVNet: 3},
		},
		{
			Name: "dfly_ugal_spin", Description: "1024-node dragonfly, UGAL with free VC use under SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "No",
			Config: Config{Topology: "dragonfly1024", Routing: "ugal_spin", Scheme: "spin", VNets: 3, VCsPerVNet: 3},
		},
		{
			Name: "dfly_minimal_spin", Description: "1024-node dragonfly, minimal routing, 1 VC, SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "dragonfly1024", Routing: "dfly_min", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "dfly_favors_nmin", Description: "1024-node dragonfly, FAvORS non-minimal, 1 VC, SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "No",
			Config: Config{Topology: "dragonfly1024", Routing: "favors_nmin", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "mesh_xy", Description: "8x8 mesh, dimension-ordered routing (deterministic baseline)",
			Theory: "Dally", Type: "Avoidance", Adaptive: "No", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Routing: "xy", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "mesh_westfirst", Description: "8x8 mesh, west-first turn-model routing",
			Theory: "Dally", Type: "Avoidance", Adaptive: "Part", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Routing: "westfirst", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "mesh_escape_vc", Description: "8x8 mesh, fully adaptive with escape VC (Duato)",
			Theory: "Duato", Type: "Avoidance", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Routing: "escape_vc", VNets: 3, VCsPerVNet: 2},
		},
		{
			Name: "mesh_static_bubble", Description: "8x8 mesh, adaptive with Static Bubble recovery",
			Theory: "FlowCtrl", Type: "Recovery", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Scheme: "static_bubble", VNets: 3, VCsPerVNet: 2},
		},
		{
			Name: "mesh_min_adaptive_spin", Description: "8x8 mesh, fully adaptive minimal with SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Routing: "min_adaptive", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "mesh_favors_min", Description: "8x8 mesh, FAvORS minimal, 1 VC, SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "mesh:8x8", Routing: "favors_min", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
		// Paper-scale presets, sized for the sharded engine (-shards):
		// the canonical 1024-node dragonfly of Table III under the paper's
		// headline configuration, and a 64x64 mesh for full-mesh-class
		// studies. Serial runs work too, just slowly.
		{
			Name: "dfly1024", Description: "1024-node dragonfly (p=4, a=8, h=4, g=32), UGAL with free VC use under SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "No",
			Config: Config{Topology: "dragonfly1024", Routing: "ugal_spin", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
		{
			Name: "mesh64x64", Description: "64x64 mesh (4096 nodes), FAvORS minimal, 1 VC, SPIN",
			Theory: "SPIN", Type: "Recovery", Adaptive: "Full", Minimal: "Yes",
			Config: Config{Topology: "mesh:64x64", Routing: "favors_min", Scheme: "spin", VNets: 3, VCsPerVNet: 1},
		},
	}
}

// PresetByName resolves one preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("spin: unknown preset %q", name)
}
