package mc

import "fmt"

// The untimed protocol model. Each reachable state is a snapshot of:
//
//   - packet locations — queued at the source NIC, resident in the single
//     VC of some (router, input port), or delivered;
//   - per-router agent state: the initiator FSM role (internal/spin's
//     RoleOff/RoleDD collapse to Idle, RoleMove/RoleKillMove/
//     RoleFwdProgress map to MoveOut/KillOut/Armed) plus the latched loop
//     (loopPort, initOut, loopPath), and the follower state (srcID + a
//     bitmask of frozen input ports);
//   - the in-flight special messages (probe / move / kill_move), each at
//     a (router, input port) position with its remaining path.
//
// Timers become nondeterminism: every counter expiry of the simulator is
// an always-enabled action here (Timeout, MoveTimeout, KillTimeout,
// Trigger), and SM contention drops become the DropSM action. The model
// therefore explores a superset of the timed simulator's interleavings —
// sound for safety checking, and the liveness property (delivery is
// reachable from every state) is existential, so extra interleavings can
// only add proof obligations, never hide one.
//
// Deliberate abstractions, kept in sync with internal/spin by the replay
// tests: one VC per port and one virtual network (VCsPerVNet=1, packet
// length = VC depth, so virtual cut-through holds one packet per VC);
// probe_move is elided (the model's initiator returns to detection after
// every spin, the DisableProbeMove ablation); the rotating-priority probe
// drop is subsumed by the nondeterministic DropSM (instance loops are
// shorter than the GraceHops default, so the simulator never applies the
// rule to them either); and an initiator re-emits an SM kind only once
// its previous one is gone, mirroring the timed guarantee that a
// bufferless SM either returns or is dropped within one loop traversal.

// Role is the model's initiator FSM state.
type Role uint8

// Roles.
const (
	RoleIdle Role = iota // RoleOff / RoleDD: detecting
	RoleProbing
	RoleMoveOut
	RoleKillOut
	RoleArmed // RoleFwdProgress: own VC frozen, awaiting the spin
	numRoles
)

func (r Role) String() string {
	switch r {
	case RoleIdle:
		return "idle"
	case RoleProbing:
		return "probing"
	case RoleMoveOut:
		return "move_out"
	case RoleKillOut:
		return "kill_out"
	case RoleArmed:
		return "armed"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// SM kinds.
const (
	SMProbe uint8 = iota
	SMMove
	SMKill
	numSMKinds
)

func smKindName(k uint8) string {
	switch k {
	case SMProbe:
		return "probe"
	case SMMove:
		return "move"
	case SMKill:
		return "kill_move"
	}
	return fmt.Sprintf("sm(%d)", k)
}

// Packet location kinds.
const (
	LocQueued uint8 = iota
	LocDelivered
	LocAt
)

// PktLoc is one packet's position.
type PktLoc struct {
	Kind   uint8
	Router uint8 // valid when Kind == LocAt
	Port   uint8
}

// RouterState is one router's agent snapshot.
type RouterState struct {
	Role     Role
	LoopPort int8 // latched loop re-entry port (MoveOut/KillOut/Armed)
	InitOut  int8 // latched first-hop output port
	LoopPath []uint8
	SrcID    int8  // follower: initiator holding this router's freezes, -1 none
	Frozen   uint8 // bitmask of frozen input ports
}

// SM is one in-flight special message, positioned at the router it is
// about to be handled by (arrival via InPort).
type SM struct {
	Kind      uint8
	Initiator uint8
	Router    uint8
	InPort    uint8
	FirstOut  int8 // probe: the port the initiator launched out of
	Path      []uint8
}

// State is one vertex of the protocol state graph.
type State struct {
	Pkts    []PktLoc
	Routers []RouterState
	SMs     []SM
}

// InitialState places every packet in its source queue with all agents
// idle.
func (in *Instance) InitialState() *State {
	s := &State{
		Pkts:    make([]PktLoc, len(in.Packets)),
		Routers: make([]RouterState, in.NumRouters()),
	}
	for i := range s.Routers {
		s.Routers[i] = RouterState{LoopPort: -1, InitOut: -1, SrcID: -1}
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		Pkts:    append([]PktLoc(nil), s.Pkts...),
		Routers: append([]RouterState(nil), s.Routers...),
	}
	for i := range c.Routers {
		if p := c.Routers[i].LoopPath; p != nil {
			c.Routers[i].LoopPath = append([]uint8(nil), p...)
		}
	}
	if len(s.SMs) > 0 {
		c.SMs = make([]SM, len(s.SMs))
		for i, m := range s.SMs {
			c.SMs[i] = m
			if m.Path != nil {
				c.SMs[i].Path = append([]uint8(nil), m.Path...)
			}
		}
	}
	return c
}

// Delivered counts delivered packets.
func (s *State) Delivered() int {
	n := 0
	for _, p := range s.Pkts {
		if p.Kind == LocDelivered {
			n++
		}
	}
	return n
}

// occupant reports the packet resident in (router, port), or -1.
func (s *State) occupant(r, p int) int {
	for i, l := range s.Pkts {
		if l.Kind == LocAt && int(l.Router) == r && int(l.Port) == p {
			return i
		}
	}
	return -1
}

// frozen reports whether (router, port)'s VC is frozen.
func (s *State) frozen(r, p int) bool { return s.Routers[r].Frozen&(1<<uint(p)) != 0 }

// blockedOn mirrors internal/spin's blockedDependency for the single-VC
// abstraction: the VC at (r, p) holds a packet that is not home and whose
// next-hop VC cannot accept it. It returns the requested output port.
func (in *Instance) blockedOn(s *State, r, p int) (int, bool) {
	pi := s.occupant(r, p)
	if pi < 0 {
		return 0, false
	}
	dst := in.Packets[pi].Dst
	if dst == r {
		return 0, false // WaitingToEject: ejection is stall-free
	}
	out := in.Route(r, dst)
	d, ok := in.Down(r, out)
	if !ok {
		return 0, false
	}
	if s.occupant(d.router, d.inPort) < 0 {
		return 0, false // space downstream: the packet can advance
	}
	return out, true
}

// freezeCandidate mirrors the agent's freezeCandidate: the unfrozen VC at
// (r, inPort) whose resident is head-blocked on out.
func (in *Instance) freezeCandidate(s *State, r, inPort, out int) bool {
	if s.frozen(r, inPort) {
		return false
	}
	o, ok := in.blockedOn(s, r, inPort)
	return ok && o == out
}

// hasSM reports whether initiator already has an SM of kind in flight.
func (s *State) hasSM(initiator int, kind uint8) bool {
	for _, m := range s.SMs {
		if int(m.Initiator) == initiator && m.Kind == kind {
			return true
		}
	}
	return false
}

// removeSM deletes SM index i (order is re-canonicalized at encode time).
func (s *State) removeSM(i int) { s.SMs = append(s.SMs[:i], s.SMs[i+1:]...) }

// Succ is one outgoing transition.
type Succ struct {
	Action string // human-readable label, parseable by replay.go
	State  *State
	// Progress marks a delivery edge (the delivered count increased).
	Progress bool
	// Violation carries an invariant broken BY this transition (spin
	// mutual exclusion, duplicate occupancy under MutSpinUnchecked);
	// state-level invariants are checked separately via CheckInvariants.
	Violation string
}

// Successors enumerates every enabled transition of s. The slice and its
// states are freshly allocated.
func (in *Instance) Successors(s *State) []Succ {
	var out []Succ
	add := func(action string, n *State, progress bool, violation string) {
		out = append(out, Succ{Action: action, State: n, Progress: progress, Violation: violation})
	}

	// Inject: a queued packet enters the empty VC at its source's local
	// port (the NIC's single terminal port 0).
	for i, l := range s.Pkts {
		if l.Kind != LocQueued {
			continue
		}
		src := in.Packets[i].Src
		if s.occupant(src, 0) >= 0 {
			continue
		}
		n := s.Clone()
		n.Pkts[i] = PktLoc{Kind: LocAt, Router: uint8(src), Port: 0}
		add(fmt.Sprintf("inject p%d", i), n, false, "")
	}

	// Advance / Deliver: virtual cut-through moves a whole packet when
	// the downstream VC is empty; a packet at its destination router
	// ejects into the stall-free sink.
	for i, l := range s.Pkts {
		if l.Kind != LocAt {
			continue
		}
		r, p := int(l.Router), int(l.Port)
		if s.frozen(r, p) {
			continue // frozen for a pending spin: only the spin moves it
		}
		dst := in.Packets[i].Dst
		if dst == r {
			n := s.Clone()
			n.Pkts[i] = PktLoc{Kind: LocDelivered}
			add(fmt.Sprintf("deliver p%d", i), n, true, "")
			continue
		}
		outPort := in.Route(r, dst)
		d, ok := in.Down(r, outPort)
		if !ok {
			continue
		}
		if s.occupant(d.router, d.inPort) >= 0 || s.frozen(d.router, d.inPort) {
			continue
		}
		n := s.Clone()
		n.Pkts[i] = PktLoc{Kind: LocAt, Router: uint8(d.router), Port: uint8(d.inPort)}
		add(fmt.Sprintf("advance p%d to r%d", i, d.router), n, false, "")
	}

	// Timeout: an idle agent's detection counter expires on a blocked
	// link-port VC and launches a probe out the blocked dependency
	// (terminal ports are skipped, as in scanWatch: queued/ejecting
	// packets cannot be part of a cyclic buffer dependency).
	if in.Mutation != MutNoProbe {
		for r := range s.Routers {
			if s.Routers[r].Role != RoleIdle || s.hasSM(r, SMProbe) {
				continue
			}
			for p := 1; p < in.Radix(r); p++ {
				if s.frozen(r, p) {
					continue
				}
				outPort, ok := in.blockedOn(s, r, p)
				if !ok {
					continue
				}
				d, _ := in.Down(r, outPort)
				n := s.Clone()
				n.Routers[r].Role = RoleProbing
				n.SMs = append(n.SMs, SM{
					Kind: SMProbe, Initiator: uint8(r),
					Router: uint8(d.router), InPort: uint8(d.inPort),
					FirstOut: int8(outPort),
				})
				add(fmt.Sprintf("timeout r%d port %d", r, p), n, false, "")
			}
		}
	}

	// SM hops and drops.
	for i := range s.SMs {
		m := s.SMs[i]
		switch m.Kind {
		case SMProbe:
			add(fmt.Sprintf("probe_hop i%d at r%d", m.Initiator, m.Router), in.probeHop(s, i), false, "")
		case SMMove:
			n, viol := in.moveHop(s, i)
			add(fmt.Sprintf("move_hop i%d at r%d", m.Initiator, m.Router), n, false, viol)
		case SMKill:
			add(fmt.Sprintf("kill_hop i%d at r%d", m.Initiator, m.Router), in.killHop(s, i), false, "")
		}
		// DropSM: bufferless SMs lose link contention nondeterministically.
		n := s.Clone()
		n.removeSM(i)
		if m.Kind == SMProbe {
			// The initiator's detection counter simply re-arms.
			n.Routers[m.Initiator].Role = RoleIdle
		}
		add(fmt.Sprintf("drop_%s i%d", smKindName(m.Kind), m.Initiator), n, false, "")
	}

	// MoveTimeout / KillTimeout: the initiator's counter expires before
	// the SM returned (it was dropped, or is still circulating).
	for r := range s.Routers {
		switch s.Routers[r].Role {
		case RoleMoveOut:
			n := s.Clone()
			in.startKill(n, r)
			add(fmt.Sprintf("move_timeout r%d", r), n, false, "")
		case RoleKillOut:
			n := s.Clone()
			in.resetInitiator(n, r)
			add(fmt.Sprintf("kill_timeout r%d", r), n, false, "")
		case RoleArmed:
			// FwdProgress expiry (resetToDD): the spin never fired; the
			// initiator returns to detection. Its freezes stay behind
			// until their own spin counters fire or abort them.
			n := s.Clone()
			in.resetInitiator(n, r)
			add(fmt.Sprintf("arm_timeout r%d", r), n, false, "")
		}
	}

	// Trigger: a follower's spin counter expires on one frozen entry —
	// rotate its fully frozen dependency cycle one hop, or abort the
	// freeze (the simulator's spin_abort) when the chain is broken.
	for r := range s.Routers {
		for p := 0; p < in.Radix(r); p++ {
			if !s.frozen(r, p) {
				continue
			}
			n, viol := in.trigger(s, r, p)
			add(fmt.Sprintf("trigger r%d port %d", r, p), n, false, viol)
		}
	}

	return out
}

// probeHop processes SM i (a probe) at its current router, mirroring
// handleProbe/forkProbe: the initiator's returning probe confirms when a
// local dependency matches; otherwise the probe forwards along the unique
// blocked dependency of its arrival port or is dropped on any sign of
// progress.
func (in *Instance) probeHop(s *State, i int) *State {
	n := s.Clone()
	m := n.SMs[i]
	r, ip := int(m.Router), int(m.InPort)
	if int(m.Initiator) == r && n.Routers[r].Role == RoleProbing &&
		in.freezeCandidate(n, r, ip, int(m.FirstOut)) && !n.hasSM(r, SMMove) {
		// Confirmed: latch the loop and launch the move (Phase II).
		n.removeSM(i)
		rs := &n.Routers[r]
		rs.Role = RoleMoveOut
		rs.LoopPort = int8(ip)
		rs.InitOut = m.FirstOut
		rs.LoopPath = append([]uint8(nil), m.Path...)
		d, _ := in.Down(r, int(m.FirstOut))
		n.SMs = append(n.SMs, SM{
			Kind: SMMove, Initiator: m.Initiator,
			Router: uint8(d.router), InPort: uint8(d.inPort), FirstOut: -1,
			Path: append([]uint8(nil), m.Path...),
		})
		return n
	}
	// Fork rule, single-VC case: the arrival port's VC must itself be a
	// blocked dependency, else the probe dies (idle VC, ejecting or
	// unblocked resident all mean progress is possible here).
	drop := func() *State {
		n.removeSM(i)
		n.Routers[m.Initiator].Role = RoleIdle
		return n
	}
	if len(m.Path) >= in.MaxPath {
		return drop()
	}
	pi := n.occupant(r, ip)
	if pi < 0 || in.Packets[pi].Dst == r {
		return drop()
	}
	outPort, ok := in.blockedOn(n, r, ip)
	if !ok {
		return drop()
	}
	d, _ := in.Down(r, outPort)
	n.SMs[i].Router = uint8(d.router)
	n.SMs[i].InPort = uint8(d.inPort)
	n.SMs[i].Path = append(append([]uint8(nil), m.Path...), uint8(outPort))
	return n
}

// moveHop processes SM i (a move), mirroring handleMoveLike: freeze the
// matching candidate and forward, drop on conflict (another recovery
// holds the router) or staleness, and on the final return freeze the
// initiator's own candidate — or cancel with a kill when its dependency
// dissolved. It reports a violation string when the freeze rules break.
func (in *Instance) moveHop(s *State, i int) (*State, string) {
	n := s.Clone()
	m := n.SMs[i]
	r, ip := int(m.Router), int(m.InPort)
	rs := &n.Routers[r]
	if int(m.Initiator) == r && len(m.Path) == 0 {
		// Final return to the initiator.
		n.removeSM(i)
		if rs.Role != RoleMoveOut || ip != int(rs.LoopPort) {
			return n, "" // misreturn: a stale copy, dropped
		}
		if in.freezeCandidate(n, r, ip, int(rs.InitOut)) {
			rs.Frozen |= 1 << uint(ip)
			rs.SrcID = int8(r)
			rs.Role = RoleArmed
			return n, ""
		}
		// Our own dependency dissolved while the move circulated.
		in.startKill(n, r)
		return n, ""
	}
	if len(m.Path) == 0 {
		n.removeSM(i)
		return n, "" // malformed
	}
	outPort := int(m.Path[0])
	if rs.SrcID >= 0 && rs.SrcID != int8(m.Initiator) {
		// Another recovery holds this router (Fig. 5a, Case II).
		n.removeSM(i)
		return n, ""
	}
	if !in.freezeCandidate(n, r, ip, outPort) {
		// The dependency the probe saw no longer exists here.
		n.removeSM(i)
		return n, ""
	}
	if in.Packets[n.occupant(r, ip)].Dst == r {
		return n, fmt.Sprintf("move i%d froze an ejecting packet at r%d port %d", m.Initiator, r, ip)
	}
	rs.Frozen |= 1 << uint(ip)
	rs.SrcID = int8(m.Initiator)
	d, _ := in.Down(r, outPort)
	n.SMs[i].Router = uint8(d.router)
	n.SMs[i].InPort = uint8(d.inPort)
	n.SMs[i].Path = append([]uint8(nil), m.Path[1:]...)
	return n, ""
}

// killHop processes SM i (a kill_move), mirroring handleKill: unfreeze
// the matching entry and forward; drop without forwarding when the router
// is frozen by a different recovery (or not frozen at all).
func (in *Instance) killHop(s *State, i int) *State {
	n := s.Clone()
	m := n.SMs[i]
	r, ip := int(m.Router), int(m.InPort)
	rs := &n.Routers[r]
	if int(m.Initiator) == r && len(m.Path) == 0 {
		n.removeSM(i)
		if rs.Role == RoleKillOut {
			in.resetInitiator(n, r)
		}
		return n
	}
	if len(m.Path) == 0 {
		n.removeSM(i)
		return n
	}
	if rs.SrcID != int8(m.Initiator) {
		n.removeSM(i)
		return n // the freeze belongs to a different, still-valid recovery
	}
	outPort := int(m.Path[0])
	if n.frozen(r, ip) {
		pi := n.occupant(r, ip)
		if pi >= 0 && in.Route(r, in.Packets[pi].Dst) == outPort {
			rs.Frozen &^= 1 << uint(ip)
			if rs.Frozen == 0 {
				rs.SrcID = -1
			}
		}
	}
	d, ok := in.Down(r, outPort)
	if !ok {
		n.removeSM(i)
		return n
	}
	n.SMs[i].Router = uint8(d.router)
	n.SMs[i].InPort = uint8(d.inPort)
	n.SMs[i].Path = append([]uint8(nil), m.Path[1:]...)
	return n
}

// startKill launches a kill_move along the latched loop (Phase II
// cancellation) and moves the initiator to KillOut. A stale kill of this
// initiator still in flight suppresses the emission — the timed system
// guarantees an SM either returns or is dropped before its initiator can
// cycle back to re-emission, so one in-flight SM per (initiator, kind)
// is the faithful bound and it keeps the state space finite.
func (in *Instance) startKill(n *State, r int) {
	rs := &n.Routers[r]
	rs.Role = RoleKillOut
	if n.hasSM(r, SMKill) {
		return
	}
	d, _ := in.Down(r, int(rs.InitOut))
	n.SMs = append(n.SMs, SM{
		Kind: SMKill, Initiator: uint8(r),
		Router: uint8(d.router), InPort: uint8(d.inPort), FirstOut: -1,
		Path: append([]uint8(nil), rs.LoopPath...),
	})
}

// resetInitiator returns an initiator to detection, clearing the latch.
func (in *Instance) resetInitiator(n *State, r int) {
	rs := &n.Routers[r]
	rs.Role = RoleIdle
	rs.LoopPort, rs.InitOut, rs.LoopPath = -1, -1, nil
}

// chainEntry is one frozen VC of a (candidate) spin cycle.
type chainEntry struct {
	router, inPort, out int
}

// walkChain follows frozen entries downstream from (r, p), mirroring
// chainClosed: every hop must land on a VC frozen for the same source.
// It returns the cycle when it comes back to the start.
func (in *Instance) walkChain(s *State, r, p int) ([]chainEntry, bool) {
	src := s.Routers[r].SrcID
	var cycle []chainEntry
	cr, cp := r, p
	for steps := 0; steps <= in.MaxPath; steps++ {
		pi := s.occupant(cr, cp)
		if pi < 0 {
			return cycle, false
		}
		out := in.Route(cr, in.Packets[pi].Dst)
		if out < 0 {
			// The resident is home (reachable only after a mutation
			// corrupted occupancy): the chain is broken here.
			return cycle, false
		}
		cycle = append(cycle, chainEntry{router: cr, inPort: cp, out: out})
		d, ok := in.Down(cr, out)
		if !ok {
			return cycle, false
		}
		if s.Routers[d.router].SrcID != src || !s.frozen(d.router, d.inPort) {
			return cycle, false
		}
		if d.router == r && d.inPort == p {
			return cycle, true
		}
		cr, cp = d.router, d.inPort
	}
	return cycle, false
}

// trigger fires the spin counter of frozen entry (r, p): if its frozen
// chain closes into a cycle, every packet of the cycle moves one hop
// simultaneously (the synchronized spin) and the freezes clear; a broken
// chain aborts this entry's freeze instead. Under MutSpinUnchecked the
// closure check is skipped and the partial chain rotates anyway — the
// deliberate safety defect.
func (in *Instance) trigger(s *State, r, p int) (*State, string) {
	n := s.Clone()
	cycle, closed := in.walkChain(n, r, p)
	if !closed && in.Mutation != MutSpinUnchecked {
		// spin_abort: release this entry; the dependency re-enters
		// detection.
		rs := &n.Routers[r]
		rs.Frozen &^= 1 << uint(p)
		if rs.Frozen == 0 {
			rs.SrcID = -1
			if rs.Role == RoleArmed {
				in.resetInitiator(n, r)
			}
		}
		return n, ""
	}
	src := n.Routers[r].SrcID
	// Spin mutual exclusion: a firing cycle must be wholly frozen for one
	// source. walkChain enforces this hop by hop; the re-check keeps the
	// property explicit so a future walkChain change cannot silently
	// weaken it.
	if closed {
		for _, e := range cycle {
			if n.Routers[e.router].SrcID != src || !n.frozen(e.router, e.inPort) {
				return n, fmt.Sprintf("spin fired across recoveries: cycle of i%d includes r%d held by i%d", src, e.router, n.Routers[e.router].SrcID)
			}
		}
	}
	// Rotate: every entry's packet moves to the downstream entry's VC.
	moved := make([]int, len(cycle))
	for i, e := range cycle {
		moved[i] = n.occupant(e.router, e.inPort)
	}
	var violation string
	for i, e := range cycle {
		d, _ := in.Down(e.router, e.out)
		if !closed || i == len(cycle)-1 {
			// Under the mutation a broken chain's last hop may land on an
			// occupied, unfrozen VC — the lost/duplicated packet defect
			// the occupancy invariant exists to catch.
			if occ := n.occupant(d.router, d.inPort); occ >= 0 && !containsInt(moved, occ) {
				violation = fmt.Sprintf("spin rotated p%d into the occupied VC (r%d port %d)", moved[i], d.router, d.inPort)
			}
		}
		n.Pkts[moved[i]] = PktLoc{Kind: LocAt, Router: uint8(d.router), Port: uint8(d.inPort)}
		rs := &n.Routers[e.router]
		rs.Frozen &^= 1 << uint(e.inPort)
		if rs.Frozen == 0 {
			rs.SrcID = -1
		}
	}
	if src >= 0 {
		if rs := &n.Routers[src]; rs.Role == RoleArmed && rs.Frozen == 0 {
			in.resetInitiator(n, int(src))
		}
	}
	return n, violation
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// CheckInvariants audits state-level safety: exactly-once packet
// locations, frozen-VC sanity (the model's credit discipline — a frozen
// or occupied VC is exactly one packet's single buffer), follower/source
// consistency, and SM well-formedness.
func (in *Instance) CheckInvariants(s *State) []string {
	var violations []string
	seen := map[[2]uint8]int{}
	for i, l := range s.Pkts {
		switch l.Kind {
		case LocQueued, LocDelivered:
		case LocAt:
			r, p := int(l.Router), int(l.Port)
			if r >= in.NumRouters() || p >= in.Radix(r) {
				violations = append(violations, fmt.Sprintf("p%d at invalid VC r%d port %d", i, r, p))
				continue
			}
			key := [2]uint8{l.Router, l.Port}
			if j, dup := seen[key]; dup {
				violations = append(violations, fmt.Sprintf("p%d and p%d share the VC at r%d port %d", j, i, r, p))
			}
			seen[key] = i
		default:
			violations = append(violations, fmt.Sprintf("p%d has invalid location kind %d", i, l.Kind))
		}
	}
	for r := range s.Routers {
		rs := s.Routers[r]
		if (rs.SrcID >= 0) != (rs.Frozen != 0) {
			violations = append(violations, fmt.Sprintf("r%d follower state inconsistent: src i%d with frozen mask %#x", r, rs.SrcID, rs.Frozen))
		}
		for p := 0; p < in.Radix(r); p++ {
			if !s.frozen(r, p) {
				continue
			}
			pi := s.occupant(r, p)
			if pi < 0 {
				violations = append(violations, fmt.Sprintf("r%d port %d frozen but empty", r, p))
			} else if in.Packets[pi].Dst == r {
				violations = append(violations, fmt.Sprintf("r%d port %d froze ejecting packet p%d", r, p, pi))
			}
		}
		switch rs.Role {
		case RoleMoveOut, RoleKillOut, RoleArmed:
			if rs.LoopPort < 1 || rs.InitOut < 1 {
				violations = append(violations, fmt.Sprintf("r%d role %s without a latched loop", r, rs.Role))
			}
		}
	}
	for _, m := range s.SMs {
		if len(m.Path) > in.MaxPath {
			violations = append(violations, fmt.Sprintf("%s of i%d carries a path of %d > max %d", smKindName(m.Kind), m.Initiator, len(m.Path), in.MaxPath))
		}
	}
	return violations
}

// OracleDeadlocked mirrors sim.Network.FindDeadlock on the abstract
// state: a liveness fixpoint over occupied VCs, where frozen VCs count
// as live (recovery is moving them). It reports whether any VC is
// deadlocked right now.
func (in *Instance) OracleDeadlocked(s *State) bool {
	type vcKey struct{ r, p int }
	live := map[vcKey]bool{}
	occupied := map[vcKey]int{}
	for i, l := range s.Pkts {
		if l.Kind == LocAt {
			occupied[vcKey{int(l.Router), int(l.Port)}] = i
		}
	}
	for k, pi := range occupied {
		if s.frozen(k.r, k.p) || in.Packets[pi].Dst == k.r {
			live[k] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for k, pi := range occupied {
			if live[k] {
				continue
			}
			out := in.Route(k.r, in.Packets[pi].Dst)
			d, ok := in.Down(k.r, out)
			if !ok {
				continue
			}
			dk := vcKey{d.router, d.inPort}
			if _, occ := occupied[dk]; !occ || live[dk] {
				live[k] = true
				changed = true
			}
		}
	}
	for k := range occupied {
		if !live[k] {
			return true
		}
	}
	return false
}
