// Package mc is an explicit-state model checker for the SPIN protocol:
// an untimed abstraction of the simulator's routers (one single-packet VC
// per input port, a handful of packets, deterministic routing) with the
// agent state machine of internal/spin reduced to nondeterministic
// enabled actions (timers become "may fire now"). The checker enumerates
// every reachable protocol state of a small instance by parallel frontier
// BFS, checks safety invariants (no lost or duplicated packets, frozen-VC
// and credit sanity, spin mutual exclusion) on each, and checks the
// recovery liveness property — every state that is not fully delivered
// can still reach a delivery — over the stored state graph. Property
// violations carry a counterexample trace that replays through
// internal/sim via the harness scenario format, so a disagreement
// between model and simulator is itself a reportable bug.
package mc

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Packet is one packet of an instance's fixed workload. Src and Dst are
// router ids; every instance attaches exactly one terminal per router, so
// they double as terminal ids in the replay scenario.
type Packet struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Mutation selects a deliberate protocol defect, used to prove the
// checker finds bugs (and that its counterexamples reproduce in the
// simulator).
type Mutation int

// Mutations.
const (
	// MutNone checks the faithful protocol.
	MutNone Mutation = iota
	// MutNoProbe disables the timeout/probe phase entirely: deadlocks are
	// never detected, so any reachable true deadlock becomes a liveness
	// counterexample. Maps to spin.Config.SPIN.DisableProbe for replay.
	MutNoProbe
	// MutSpinUnchecked skips the chain-closure check before a spin: a
	// partially frozen chain rotates anyway, pushing a packet into an
	// occupied VC — a safety (duplicate-occupancy) counterexample. This
	// defect lives in the model's abstraction of triggerSpin and has no
	// simulator knob; it validates the safety-invariant machinery.
	MutSpinUnchecked
)

func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutNoProbe:
		return "no_probe"
	case MutSpinUnchecked:
		return "spin_unchecked"
	}
	return fmt.Sprintf("mutation(%d)", int(m))
}

// MutationByName parses a -mutate flag value.
func MutationByName(s string) (Mutation, error) {
	switch s {
	case "", "none":
		return MutNone, nil
	case "no_probe":
		return MutNoProbe, nil
	case "spin_unchecked":
		return MutSpinUnchecked, nil
	}
	return MutNone, fmt.Errorf("mc: unknown mutation %q", s)
}

// portDest is the downstream end of a link output port.
type portDest struct {
	router int
	inPort int
}

// Instance is one checkable protocol configuration: a topology, a
// deterministic route table derived from the simulator's own routing
// logic, and a fixed packet workload.
type Instance struct {
	// Name is the registry key ("mesh2x2", "mesh3x3", "ring5").
	Name string
	// TopoSpec and RoutingName are the spin.Config spec strings the
	// replay scenario uses; the model's route table mirrors them exactly.
	TopoSpec    string
	RoutingName string
	// Packets is the workload (truncatable via the -packets flag).
	Packets []Packet
	// MaxPath caps probe paths, mirroring spin.Config.MaxPathLen's
	// default of 2 x routers.
	MaxPath int
	// Mutation is the injected defect (MutNone = faithful protocol).
	Mutation Mutation

	topo  topology.Topology
	radix []int        // ports per router, local port 0 + link ports
	down  [][]portDest // down[r][port]; router -1 where no out-link exists
	route [][]int8     // route[r][dst] = deterministic out port; -1 at dst
}

// NumRouters reports the instance's router count.
func (in *Instance) NumRouters() int { return len(in.radix) }

// Radix reports router r's port count (local port 0 included).
func (in *Instance) Radix(r int) int { return in.radix[r] }

// Down resolves the downstream (router, input port) of r's output port p,
// or ok=false for the local port, unwired ports, and out-of-range p (a
// mutation-corrupted walk may ask about a packet already at its
// destination, whose route is -1).
func (in *Instance) Down(r, p int) (portDest, bool) {
	if p < 0 || p >= len(in.down[r]) {
		return portDest{router: -1}, false
	}
	d := in.down[r][p]
	return d, d.router >= 0
}

// Route reports the deterministic output port from r toward dst.
func (in *Instance) Route(r, dst int) int { return int(in.route[r][dst]) }

// NewInstance resolves a named instance. The registry holds the three
// instances of the census goldens; packets > 0 truncates the workload to
// its first packets entries.
func NewInstance(name string, packets int, mut Mutation) (*Instance, error) {
	var in *Instance
	var err error
	switch name {
	case "mesh2x2":
		// Both packets converge on router 3: pkt1 parks in r3's ejection
		// VC while pkt0 head-blocks at r1 — probes fire and must be
		// dropped at the ejecting VC. XY routing is deadlock-free, so the
		// full space must be violation-free with every packet delivered.
		in, err = meshInstance(2, 2, []Packet{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}})
	case "mesh3x3":
		// Two packets sharing the column-2 ascent: they contend for r5's
		// north link from different input ports, producing multi-hop
		// blocked chains (and probe walks) without any true deadlock.
		in, err = meshInstance(3, 3, []Packet{{Src: 0, Dst: 8}, {Src: 3, Dst: 8}})
	case "ring5":
		// The classic ring deadlock: packet i travels two hops clockwise,
		// so all five link VCs fill with packets each one hop from home —
		// a true cyclic wait only a synchronized spin resolves.
		pk := make([]Packet, 5)
		for i := range pk {
			pk[i] = Packet{Src: i, Dst: (i + 2) % 5}
		}
		in, err = ringInstance(5, pk)
	default:
		return nil, fmt.Errorf("mc: unknown instance %q (want mesh2x2, mesh3x3, or ring5)", name)
	}
	if err != nil {
		return nil, err
	}
	if packets > 0 {
		if packets > len(in.Packets) {
			return nil, fmt.Errorf("mc: instance %s defines %d packets, asked for %d", name, len(in.Packets), packets)
		}
		in.Packets = in.Packets[:packets]
	}
	in.Mutation = mut
	return in, nil
}

// meshInstance builds an X x Y mesh instance routed by the simulator's
// dimension-ordered table (routing.XYPort), the deterministic mesh
// routing the replay scenario runs.
func meshInstance(x, y int, pk []Packet) (*Instance, error) {
	m, err := topology.NewMesh(x, y, 1)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		Name:        fmt.Sprintf("mesh%dx%d", x, y),
		TopoSpec:    fmt.Sprintf("mesh:%dx%d", x, y),
		RoutingName: "xy",
		Packets:     pk,
		topo:        m,
	}
	in.wire()
	n := m.NumRouters()
	in.route = make([][]int8, n)
	for r := 0; r < n; r++ {
		in.route[r] = make([]int8, n)
		for dst := 0; dst < n; dst++ {
			if dst == r {
				in.route[r][dst] = -1
				continue
			}
			in.route[r][dst] = int8(routing.XYPort(m, r, dst))
		}
	}
	return in, in.validate()
}

// ringInstance builds a bidirectional N-ring routed by the unique minimal
// port — the deterministic special case of min_adaptive the replay
// scenario relies on. Workloads whose minimal direction ties (equal CW
// and CCW distance) are rejected: the simulator would break the tie with
// its per-router RNG and the model could not mirror it.
func ringInstance(nr int, pk []Packet) (*Instance, error) {
	t, err := topology.NewRing(nr, 1, true)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		Name:        fmt.Sprintf("ring%d", nr),
		TopoSpec:    fmt.Sprintf("ring:%d", nr),
		RoutingName: "min_adaptive",
		Packets:     pk,
		topo:        t,
	}
	in.wire()
	in.route = make([][]int8, nr)
	for r := 0; r < nr; r++ {
		in.route[r] = make([]int8, nr)
		for dst := 0; dst < nr; dst++ {
			if dst == r {
				in.route[r][dst] = -1
				continue
			}
			ports := t.MinimalPorts(r, dst)
			if len(ports) != 1 {
				return nil, fmt.Errorf("mc: ring%d route %d->%d has %d minimal ports; the model needs a unique one", nr, r, dst, len(ports))
			}
			in.route[r][dst] = int8(ports[0])
		}
	}
	return in, in.validate()
}

// wire derives radix and the port-level link map from the topology.
func (in *Instance) wire() {
	n := in.topo.NumRouters()
	in.radix = make([]int, n)
	in.down = make([][]portDest, n)
	for r := 0; r < n; r++ {
		in.radix[r] = in.topo.Radix(r)
		in.down[r] = make([]portDest, in.radix[r])
		for p := range in.down[r] {
			in.down[r][p] = portDest{router: -1}
		}
	}
	for _, l := range in.topo.Links() {
		in.down[l.Src][l.SrcPort] = portDest{router: l.Dst, inPort: l.DstPort}
	}
	in.MaxPath = 2 * n
}

// validate checks the workload and route table are self-consistent:
// every packet's route walks real links and terminates at its
// destination.
func (in *Instance) validate() error {
	for i, p := range in.Packets {
		if p.Src == p.Dst {
			return fmt.Errorf("mc: packet %d is self-destined at router %d", i, p.Src)
		}
		r := p.Src
		for hops := 0; r != p.Dst; hops++ {
			if hops > in.NumRouters() {
				return fmt.Errorf("mc: packet %d route %d->%d does not terminate", i, p.Src, p.Dst)
			}
			out := in.Route(r, p.Dst)
			d, ok := in.Down(r, out)
			if out <= 0 || !ok {
				return fmt.Errorf("mc: packet %d route stalls at router %d (port %d)", i, r, out)
			}
			r = d.router
		}
	}
	return nil
}
