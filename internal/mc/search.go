package mc

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/runner"
)

// Options configure one Check run.
type Options struct {
	// Workers is the number of parallel expansion workers (0 = GOMAXPROCS).
	Workers int
	// Bound caps the BFS depth in levels; 0 exhausts the space.
	Bound int
	// MaxStates stops expansion once the store holds more states; the cut
	// happens at a level boundary so a capped census is still
	// deterministic. 0 = unlimited.
	MaxStates int
	// MaxViolations caps the violations carried in the result (the census
	// still counts all of them). 0 = 64.
	MaxViolations int
}

// Census is the committed state-space summary — the golden data that
// makes model regressions byte-visible.
type Census struct {
	Instance            string `json:"instance"`
	Packets             int    `json:"packets"`
	Mutation            string `json:"mutation"`
	Bound               int    `json:"bound"`
	States              int    `json:"states"`
	Edges               int    `json:"edges"`
	Diameter            int    `json:"diameter"`
	Deadlocked          int    `json:"deadlocked"`
	MaxRecoveryDistance int    `json:"max_recovery_distance"`
	Truncated           bool   `json:"truncated"`
}

// Violation is one property failure with a counterexample trace (action
// labels from the initial state; replayable through internal/sim via
// TraceScenario). The trace follows first-writer parent pointers, so its
// exact path — unlike every census field — may vary across runs; it is
// always a valid path of the state graph.
type Violation struct {
	Kind    string   `json:"kind"` // "invariant" or "liveness"
	Message string   `json:"message"`
	Trace   []string `json:"trace"`
}

// Result is one Check run's outcome.
type Result struct {
	Census          Census      `json:"census"`
	Violations      []Violation `json:"violations"`
	TotalViolations int         `json:"total_violations"`
}

// Failed reports whether any property was violated.
func (r *Result) Failed() bool { return r.TotalViolations > 0 }

// state flags computed at insertion.
const (
	flagDelivered   uint8 = 1 << iota // all packets delivered
	flagDeadlocked                    // OracleDeadlocked holds
	flagAssumedGood                   // truncated frontier: liveness assumed
)

type stateRec struct {
	enc    string
	parent int32 // -1 at the root
	action string
	level  int32
	flags  uint8
}

const numShards = 64

type visitShard struct {
	mu  sync.Mutex
	ids map[string]int32
}

// store is the sharded visited set: encodings map to dense state ids.
// The shard index comes from the hash, membership from the full
// encoding. Lock order is shard → store.
type store struct {
	shards [numShards]visitShard
	mu     sync.Mutex
	states []stateRec
}

func newStore() *store {
	st := &store{}
	for i := range st.shards {
		st.shards[i].ids = make(map[string]int32)
	}
	return st
}

// lookupOrInsert returns the id for enc, inserting a fresh record when
// unseen. ok reports a fresh insert.
func (st *store) lookupOrInsert(enc []byte, parent int32, action string, level int32, flags uint8) (int32, bool) {
	sh := &st.shards[Hash(enc)%numShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, seen := sh.ids[string(enc)]; seen {
		return id, false
	}
	key := string(enc)
	st.mu.Lock()
	id := int32(len(st.states))
	st.states = append(st.states, stateRec{enc: key, parent: parent, action: action, level: level, flags: flags})
	st.mu.Unlock()
	sh.ids[key] = id
	return id, true
}

type edge struct{ from, to int32 }

type vioRec struct {
	kind    string
	state   int32
	action  string // transition violations: the offending action label
	message string
}

type frontierItem struct {
	id  int32
	enc string
}

type chunkOut struct {
	next  []frontierItem
	edges []edge
	vios  []vioRec
}

// Check explores the instance's reachable state space by level-
// synchronous parallel BFS and checks every property. The census fields
// are deterministic for fixed (instance, options); violation traces are
// valid paths but follow first-writer parent pointers.
func Check(ctx context.Context, in *Instance, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxVio := opts.MaxViolations
	if maxVio <= 0 {
		maxVio = 64
	}

	st := newStore()
	init := in.InitialState()
	st.lookupOrInsert(in.Encode(init), -1, "", 0, in.stateFlags(init))

	var vios []vioRec
	for _, msg := range in.CheckInvariants(init) {
		vios = append(vios, vioRec{kind: "invariant", state: 0, message: msg})
	}

	queueSize := 2 * workers
	pool := runner.NewPool[chunkOut](runner.PoolOptions{Workers: workers, QueueSize: queueSize})
	defer pool.Close()
	// Submissions are throttled to the queue capacity so Submit can never
	// hit ErrQueueFull: each in-flight submission holds at most one slot.
	sem := make(chan struct{}, queueSize)

	frontier := []frontierItem{{id: 0, enc: st.states[0].enc}}
	var edges []edge
	depth := int32(0) // level of the current frontier
	truncated := false
	var firstErr error
	for len(frontier) > 0 {
		if opts.Bound > 0 && int(depth) >= opts.Bound {
			truncated = true
			break
		}
		if opts.MaxStates > 0 && len(st.states) > opts.MaxStates {
			truncated = true
			break
		}
		const chunkSize = 256
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next []frontierItem
		)
		for start := 0; start < len(frontier); start += chunkSize {
			chunk := frontier[start:min(start+chunkSize, len(frontier))]
			key := fmt.Sprintf("mc:%s:l%d:c%d", in.Name, depth, start/chunkSize)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				out, err := pool.Submit(ctx, runner.Job[chunkOut]{Key: key, Run: func(ctx context.Context, _ int64) (chunkOut, error) {
					return in.expandChunk(st, chunk, depth+1)
				}})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				next = append(next, out.next...)
				edges = append(edges, out.edges...)
				vios = append(vios, out.vios...)
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		frontier = next
		depth++
	}
	if truncated {
		// The boundary frontier is stored but unexpanded: liveness must
		// assume it recovers (the run proves nothing beyond the bound).
		for _, it := range frontier {
			st.states[it.id].flags |= flagAssumedGood
		}
	}

	// Liveness: reverse BFS from the good states (fully delivered, or
	// assumed good at the truncation boundary). dist[s] = steps to reach
	// full delivery; -1 = never, the liveness violation.
	n := len(st.states)
	preds := make([][]int32, n)
	for _, e := range edges {
		preds[e.to] = append(preds[e.to], e.from)
	}
	dist := make([]int32, n)
	buckets := [][]int32{nil}
	for i := range st.states {
		dist[i] = -1
		if st.states[i].flags&(flagDelivered|flagAssumedGood) != 0 {
			dist[i] = 0
			buckets[0] = append(buckets[0], int32(i))
		}
	}
	for d := 0; d < len(buckets); d++ {
		for _, id := range buckets[d] {
			for _, u := range preds[id] {
				if dist[u] == -1 {
					dist[u] = int32(d + 1)
					for len(buckets) <= d+1 {
						buckets = append(buckets, nil)
					}
					buckets[d+1] = append(buckets[d+1], u)
				}
			}
		}
	}
	var dead []int32
	deadlocked, maxRec := 0, 0
	for i := range st.states {
		if st.states[i].flags&flagDeadlocked != 0 {
			deadlocked++
			if d := dist[i]; d > int32(maxRec) {
				maxRec = int(d)
			}
		}
		if dist[i] == -1 {
			dead = append(dead, int32(i))
		}
	}
	// Report the shallowest dead states first, tie-broken on the
	// canonical encoding so the selection is deterministic.
	sort.Slice(dead, func(a, b int) bool {
		ra, rb := &st.states[dead[a]], &st.states[dead[b]]
		if ra.level != rb.level {
			return ra.level < rb.level
		}
		return ra.enc < rb.enc
	})
	totalVios := len(vios) + len(dead)
	for _, id := range dead[:min(len(dead), maxVio)] {
		vios = append(vios, vioRec{kind: "liveness", state: id,
			message: fmt.Sprintf("state cannot reach full delivery (depth %d, %d/%d delivered)", st.states[id].level, in.deliveredOf(st, id), len(in.Packets))})
	}

	res := &Result{
		Census: Census{
			Instance:            in.Name,
			Packets:             len(in.Packets),
			Mutation:            in.Mutation.String(),
			Bound:               opts.Bound,
			States:              n,
			Edges:               len(edges),
			Diameter:            int(depth),
			Deadlocked:          deadlocked,
			MaxRecoveryDistance: maxRec,
			Truncated:           truncated,
		},
		TotalViolations: totalVios,
	}
	sort.Slice(vios, func(a, b int) bool {
		if vios[a].kind != vios[b].kind {
			return vios[a].kind < vios[b].kind
		}
		if vios[a].message != vios[b].message {
			return vios[a].message < vios[b].message
		}
		return vios[a].state < vios[b].state
	})
	for _, v := range vios[:min(len(vios), maxVio)] {
		trace := st.traceOf(v.state)
		if v.action != "" {
			trace = append(trace, v.action)
		}
		res.Violations = append(res.Violations, Violation{Kind: v.kind, Message: v.message, Trace: trace})
	}
	return res, nil
}

// deliveredOf decodes a stored state and counts its deliveries.
func (in *Instance) deliveredOf(st *store, id int32) int {
	s, err := in.Decode([]byte(st.states[id].enc))
	if err != nil {
		return -1
	}
	return s.Delivered()
}

// stateFlags computes the per-state classification stored at insert.
func (in *Instance) stateFlags(s *State) uint8 {
	var f uint8
	if s.Delivered() == len(in.Packets) {
		f |= flagDelivered
	}
	if in.OracleDeadlocked(s) {
		f |= flagDeadlocked
	}
	return f
}

// expandChunk decodes and expands one frontier chunk, inserting fresh
// successors at the given level and checking invariants on each.
func (in *Instance) expandChunk(st *store, chunk []frontierItem, level int32) (chunkOut, error) {
	var out chunkOut
	for _, it := range chunk {
		s, err := in.Decode([]byte(it.enc))
		if err != nil {
			return out, fmt.Errorf("mc: stored state %d corrupt: %w", it.id, err)
		}
		for _, sc := range in.Successors(s) {
			enc := in.Encode(sc.State)
			id, fresh := st.lookupOrInsert(enc, it.id, sc.Action, level, in.stateFlags(sc.State))
			out.edges = append(out.edges, edge{from: it.id, to: id})
			if sc.Violation != "" {
				out.vios = append(out.vios, vioRec{kind: "invariant", state: it.id, action: sc.Action, message: sc.Violation})
			}
			if fresh {
				out.next = append(out.next, frontierItem{id: id, enc: string(enc)})
				for _, msg := range in.CheckInvariants(sc.State) {
					out.vios = append(out.vios, vioRec{kind: "invariant", state: id, message: msg})
				}
			}
		}
	}
	return out, nil
}

// traceOf rebuilds the action path from the root to state id.
func (st *store) traceOf(id int32) []string {
	var rev []string
	for cur := id; cur > 0; cur = st.states[cur].parent {
		rev = append(rev, st.states[cur].action)
	}
	trace := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		trace = append(trace, rev[i])
	}
	return trace
}
