package mc

import (
	"bytes"
	"testing"
)

// fuzzInstances are the registry instances the fuzzer round-trips
// against; data[0] selects one so a single corpus covers every topology
// shape (different radix, path caps, packet counts).
var fuzzInstances = []string{"mesh2x2", "mesh3x3", "ring5"}

// FuzzMCState fuzzes the canonical state codec: any byte string the
// decoder accepts must re-encode to exactly the same bytes (the
// visited-set membership contract — one state, one encoding), hash
// consistently, and be safe to hand to the invariant checker and the
// successor generator. Decoder rejections are fine; panics and
// encoding aliases are the bugs.
func FuzzMCState(f *testing.F) {
	// Seed with real reachable encodings: each instance's initial state
	// plus a few BFS levels, so the fuzzer starts from valid structures
	// rather than discovering the format from scratch.
	for sel, name := range fuzzInstances {
		in, err := NewInstance(name, 0, MutNone)
		if err != nil {
			f.Fatal(err)
		}
		frontier := []*State{in.InitialState()}
		for depth := 0; depth < 4; depth++ {
			var next []*State
			for _, s := range frontier {
				f.Add(append([]byte{byte(sel)}, in.Encode(s)...))
				if len(next) < 64 {
					for _, sc := range in.Successors(s) {
						next = append(next, sc.State)
					}
				}
			}
			frontier = next
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		in, err := NewInstance(fuzzInstances[int(data[0])%len(fuzzInstances)], 0, MutNone)
		if err != nil {
			t.Fatal(err)
		}
		enc := data[1:]
		st, err := in.Decode(enc)
		if err != nil {
			return // rejection is a valid answer; aliasing is not
		}
		re := in.Encode(st)
		if !bytes.Equal(re, enc) {
			t.Fatalf("decode accepted a non-canonical encoding:\n  in  %x\n  out %x", enc, re)
		}
		if Hash(re) != Hash(enc) {
			t.Fatal("hash of identical bytes differs")
		}
		// Decoded states must be safe to explore: the checker calls both
		// of these on every state the search reaches.
		in.CheckInvariants(st)
		for _, succ := range in.Successors(st) {
			if succ.State == nil {
				t.Fatalf("successor %q has nil state", succ.Action)
			}
		}
	})
}
