package mc

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the census golden from this run")

// censusRuns are the committed state-space censuses: mesh instances
// exhaust, ring5 is depth-bounded (its full space runs to millions of
// states; the bound keeps the golden fast while still covering the full
// deadlock-detect-recover-deliver arc, diameter 24 > the 20 steps a
// complete recovery needs).
var censusRuns = []struct {
	instance string
	bound    int
}{
	{"mesh2x2", 0},
	{"mesh3x3", 0},
	{"ring5", 24},
}

func checkInstance(t *testing.T, name string, bound, workers int, mut Mutation) *Result {
	t.Helper()
	in, err := NewInstance(name, 0, mut)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(context.Background(), in, Options{Workers: workers, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCensusGoldens pins the state-space census of every registry
// instance: any change to the model's semantics shows up as a
// states/edges/diameter drift against testdata/census.json. Regenerate
// with go test ./internal/mc -run TestCensusGoldens -update. The run
// also asserts the tentpole acceptance property: zero violations on the
// faithful protocol.
func TestCensusGoldens(t *testing.T) {
	var got []Census
	for _, run := range censusRuns {
		res := checkInstance(t, run.instance, run.bound, 4, MutNone)
		if res.Failed() {
			t.Errorf("%s: %d property violations on the faithful protocol; first: %+v",
				run.instance, res.TotalViolations, res.Violations[0])
		}
		got = append(got, res.Census)
	}
	path := filepath.Join("testdata", "census.json")
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if string(want) != string(gotJSON) {
		t.Errorf("census drifted from golden:\n--- want\n%s\n--- got\n%s", want, gotJSON)
	}
}

// TestCensusDeterministicAcrossWorkers is the parallel-search contract:
// every census field is schedule-independent, so 1 worker and 8 workers
// must produce identical summaries.
func TestCensusDeterministicAcrossWorkers(t *testing.T) {
	for _, run := range []struct {
		instance string
		bound    int
	}{{"mesh3x3", 0}, {"ring5", 18}} {
		base := checkInstance(t, run.instance, run.bound, 1, MutNone).Census
		for _, workers := range []int{4, 8} {
			got := checkInstance(t, run.instance, run.bound, workers, MutNone).Census
			if got != base {
				t.Errorf("%s: census differs at %d workers:\n  1: %+v\n  %d: %+v",
					run.instance, workers, base, workers, got)
			}
		}
	}
}

// TestRing5DeadlockIsReachableAndRecovered: the bounded ring5 space
// must actually contain oracle-visible deadlocks (the instance exists to
// exercise recovery), and the liveness pass must prove they all recover.
func TestRing5DeadlockIsReachableAndRecovered(t *testing.T) {
	res := checkInstance(t, "ring5", 20, 4, MutNone)
	if res.Census.Deadlocked == 0 {
		t.Fatal("ring5 reached no deadlocked states; the instance no longer exercises recovery")
	}
	if res.Census.MaxRecoveryDistance == 0 {
		t.Error("deadlocked states exist but max recovery distance is 0")
	}
	if res.Failed() {
		t.Errorf("faithful ring5 has violations: %+v", res.Violations[0])
	}
}

// TestNoProbeMutationFindsLivenessViolation: with detection disabled the
// ring deadlock is a dead state, and the checker must say so.
func TestNoProbeMutationFindsLivenessViolation(t *testing.T) {
	res := checkInstance(t, "ring5", 14, 4, MutNoProbe)
	if !res.Failed() {
		t.Fatal("no_probe mutation produced no violation")
	}
	v := res.Violations[0]
	if v.Kind != "liveness" {
		t.Fatalf("want a liveness violation, got %+v", v)
	}
	if len(v.Trace) == 0 {
		t.Fatal("violation carries no counterexample trace")
	}
}

// TestSpinUncheckedMutationFindsSafetyViolation: skipping the
// chain-closure check before a spin must surface as a duplicate-
// occupancy invariant violation.
func TestSpinUncheckedMutationFindsSafetyViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("explores ~200k states; skipped in -short")
	}
	res := checkInstance(t, "ring5", 26, 8, MutSpinUnchecked)
	if !res.Failed() {
		t.Fatal("spin_unchecked mutation produced no violation")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "invariant" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("want an invariant violation, got only %+v", res.Violations[0])
	}
}

// TestCounterexampleReplaysThroughSimulator is the differential oracle
// (the tentpole acceptance test): the no_probe counterexample's workload
// must fail the checked simulator run with the same defect injected, and
// the identical workload without the mutation must pass. Model and
// simulator agree the mutation — not the workload — is the bug.
func TestCounterexampleReplaysThroughSimulator(t *testing.T) {
	res := checkInstance(t, "ring5", 14, 4, MutNoProbe)
	if !res.Failed() {
		t.Fatal("no counterexample to replay")
	}
	in, err := NewInstance("ring5", 0, MutNoProbe)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := in.TraceScenario(res.Violations[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Injections) != len(in.Packets) {
		t.Fatalf("counterexample injects %d of %d packets", len(sc.Injections), len(in.Packets))
	}

	mutated, err := Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !mutated.Failed() {
		t.Fatalf("simulator replay with no_probe did not reproduce the violation: %s", mutated.Summary())
	}
	if mutated.Drained {
		t.Error("mutated replay drained; the deadlock should persist with detection off")
	}

	healthy := sc
	healthy.Mutation = ""
	clean, err := Replay(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("faithful replay of the same workload failed: %s", clean.Summary())
	}
	if clean.Spins == 0 {
		t.Error("faithful replay recovered without a spin; the workload no longer deadlocks")
	}
}

// TestForensicsArtifactFromInducedDeadlock is the flight-recorder
// acceptance test: replaying the ring5 no_probe counterexample through
// the checked harness must trip the flight recorder, the resulting
// forensics-<key>.json must carry the SPIN event tail and the
// frozen/spinning-VC chain, and re-driving the artifact through
// harness.ReplayForensics must reproduce the violation.
func TestForensicsArtifactFromInducedDeadlock(t *testing.T) {
	res := checkInstance(t, "ring5", 14, 4, MutNoProbe)
	if !res.Failed() {
		t.Fatal("no counterexample to replay")
	}
	in, err := NewInstance("ring5", 0, MutNoProbe)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := in.TraceScenario(res.Violations[0])
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !mutated.Failed() {
		t.Fatalf("replay did not fail: %s", mutated.Summary())
	}
	if mutated.Forensics == nil {
		t.Fatal("failed replay produced no forensics snapshot")
	}
	if len(mutated.Forensics.Events) == 0 {
		t.Error("forensics snapshot retained no SPIN events")
	}
	if len(mutated.Forensics.SpinningVCs) == 0 {
		t.Error("forensics snapshot has an empty VC chain for a persistent deadlock")
	}

	dir := t.TempDir()
	path, err := harness.WriteForensics(dir, harness.NewForensics(mutated))
	if err != nil {
		t.Fatal(err)
	}
	f, err := harness.LoadForensics(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.Key() != sc.Key() {
		t.Fatal("artifact scenario does not match the replayed scenario")
	}
	replayRes, reproduced, err := harness.ReplayForensics(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reproduced {
		t.Fatalf("forensics replay did not reproduce the violation: %s", replayRes.Summary())
	}
	if replayRes.Forensics == nil {
		t.Error("forensics replay produced no fresh snapshot")
	}
}

// TestTraceScenarioRejectsModelOnlyMutation: spin_unchecked lives in the
// model's spin abstraction and must refuse to fabricate a simulator
// replay.
func TestTraceScenarioRejectsModelOnlyMutation(t *testing.T) {
	in, err := NewInstance("ring5", 0, MutSpinUnchecked)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.TraceScenario(Violation{Trace: []string{"inject p0"}}); err == nil {
		t.Fatal("TraceScenario accepted a model-only mutation")
	}
}

// TestEncodeDecodeRoundTrip walks the reachable space and checks the
// canonical-encoding contract on real states: Encode → Decode → Encode
// is the identity, and the visited-set key (the full encoding) separates
// states regardless of hash collisions.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, name := range []string{"mesh2x2", "mesh3x3", "ring5"} {
		in, err := NewInstance(name, 0, MutNone)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		frontier := []*State{in.InitialState()}
		for depth := 0; depth < 12 && len(frontier) > 0; depth++ {
			var next []*State
			for _, s := range frontier {
				enc := in.Encode(s)
				if seen[string(enc)] {
					continue
				}
				seen[string(enc)] = true
				dec, err := in.Decode(enc)
				if err != nil {
					t.Fatalf("%s: decode of own encoding failed: %v", name, err)
				}
				if re := in.Encode(dec); string(re) != string(enc) {
					t.Fatalf("%s: encode∘decode not the identity:\n  %x\n  %x", name, enc, re)
				}
				if len(next) < 4096 {
					for _, sc := range in.Successors(s) {
						next = append(next, sc.State)
					}
				}
			}
			frontier = next
		}
		if len(seen) < 10 {
			t.Fatalf("%s: walk covered only %d states", name, len(seen))
		}
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid encoding and
// requires each mutant to either fail decoding or re-encode exactly to
// itself — no byte string may alias a different state's encoding.
func TestDecodeRejectsCorruption(t *testing.T) {
	in, err := NewInstance("ring5", 0, MutNone)
	if err != nil {
		t.Fatal(err)
	}
	s := in.InitialState()
	for i := 0; i < 9; i++ { // drive a few hops in for a non-trivial state
		succs := in.Successors(s)
		if len(succs) == 0 {
			break
		}
		s = succs[i%len(succs)].State
	}
	enc := in.Encode(s)
	for i := range enc {
		for delta := byte(1); delta < 4; delta++ {
			mut := append([]byte(nil), enc...)
			mut[i] += delta
			dec, err := in.Decode(mut)
			if err != nil {
				continue
			}
			if re := in.Encode(dec); string(re) != string(mut) {
				t.Fatalf("byte %d+%d: decode accepted a non-canonical encoding:\n  in  %x\n  out %x", i, delta, mut, re)
			}
		}
	}
}

// TestInstanceRegistry covers the registry's error paths.
func TestInstanceRegistry(t *testing.T) {
	if _, err := NewInstance("hypercube", 0, MutNone); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := NewInstance("mesh2x2", 99, MutNone); err == nil {
		t.Error("oversized packet truncation accepted")
	}
	in, err := NewInstance("ring5", 2, MutNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Packets) != 2 {
		t.Errorf("truncation kept %d packets, want 2", len(in.Packets))
	}
	if _, err := MutationByName("chaos_monkey"); err == nil {
		t.Error("unknown mutation name accepted")
	}
}

// TestVisitedSetKeysOnEncoding: two states whose hashes collide into the
// same shard must still be distinct entries — membership is the full
// encoding, the hash only picks a shard.
func TestVisitedSetKeysOnEncoding(t *testing.T) {
	st := newStore()
	a := []byte{1, 2, 3}
	b := []byte{1, 2, 3, 0} // different encoding, whatever its hash
	idA, fresh := st.lookupOrInsert(a, -1, "", 0, 0)
	if !fresh {
		t.Fatal("first insert not fresh")
	}
	if id2, fresh := st.lookupOrInsert(a, -1, "", 0, 0); fresh || id2 != idA {
		t.Fatal("duplicate encoding created a second state")
	}
	if idB, fresh := st.lookupOrInsert(b, -1, "", 0, 0); !fresh || idB == idA {
		t.Fatal("distinct encoding collapsed into an existing state")
	}
}

// TestReplayScenarioValidates: the generated scenario must pass the
// harness's own validation (it travels through artifact files and
// spind).
func TestReplayScenarioValidates(t *testing.T) {
	in, err := NewInstance("ring5", 0, MutNoProbe)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, 0, 10)
	for i := 0; i < 5; i++ {
		trace = append(trace, fmt.Sprintf("inject p%d", i), fmt.Sprintf("advance p%d to r%d", i, (i+1)%5))
	}
	sc, err := in.TraceScenario(Violation{Kind: "liveness", Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	norm := sc.Normalized()
	if norm.Rate != 0 || norm.DataFrac != 0 {
		t.Errorf("normalization left synthetic-generator knobs set: %+v", norm)
	}
	var decoded harness.Scenario
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Injections) != 5 || decoded.Mutation != "no_probe" {
		t.Errorf("injection scenario did not survive JSON: %+v", decoded)
	}
}
