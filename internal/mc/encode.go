package mc

import (
	"fmt"
	"sort"
)

// Canonical state encoding: a state has exactly one byte string, so the
// visited set can key on the encoding itself (the hash is only used to
// pick a shard). The layout is sequential:
//
//	version | per-packet (kind, router, port) | per-router (role,
//	loopPort+1, initOut+1, srcID+1, frozen, pathLen, path...) |
//	smCount, per-SM (kind, initiator, router, inPort, firstOut+1,
//	pathLen, path...) with the SM records byte-sorted
//
// Signed fields are shifted by +1 so -1 encodes as 0. Decode re-checks
// every range and canonicality rule, so any byte string it accepts
// re-encodes to itself — the FuzzMCState contract.

// encVersion guards the layout; bump on any change so stale census
// goldens and fuzz corpus entries fail loudly instead of misdecoding.
const encVersion = 1

const locNone = 0xFF

// Encode renders s into its canonical byte string.
func (in *Instance) Encode(s *State) []byte {
	buf := make([]byte, 0, 1+3*len(s.Pkts)+8*len(s.Routers)+1+8*len(s.SMs))
	buf = append(buf, encVersion)
	for _, l := range s.Pkts {
		if l.Kind == LocAt {
			buf = append(buf, l.Kind, l.Router, l.Port)
		} else {
			buf = append(buf, l.Kind, locNone, locNone)
		}
	}
	for i := range s.Routers {
		rs := &s.Routers[i]
		buf = append(buf, byte(rs.Role), byte(rs.LoopPort+1), byte(rs.InitOut+1),
			byte(rs.SrcID+1), rs.Frozen, byte(len(rs.LoopPath)))
		buf = append(buf, rs.LoopPath...)
	}
	buf = append(buf, byte(len(s.SMs)))
	if len(s.SMs) > 0 {
		recs := make([][]byte, len(s.SMs))
		for i := range s.SMs {
			recs[i] = encodeSM(&s.SMs[i])
		}
		sort.Slice(recs, func(a, b int) bool { return lessBytes(recs[a], recs[b]) })
		for _, r := range recs {
			buf = append(buf, r...)
		}
	}
	return buf
}

func encodeSM(m *SM) []byte {
	r := make([]byte, 0, 6+len(m.Path))
	r = append(r, m.Kind, m.Initiator, m.Router, m.InPort, byte(m.FirstOut+1), byte(len(m.Path)))
	return append(r, m.Path...)
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Hash is FNV-1a over the canonical encoding — shard selection only;
// equality always compares full encodings.
func Hash(enc []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range enc {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// decoder walks an encoding sequentially with range checks.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte(what string) (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("mc: truncated encoding at %s (offset %d)", what, d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) path(n int, maxPath, maxRadix int, what string) ([]uint8, error) {
	if n > maxPath {
		return nil, fmt.Errorf("mc: %s path length %d exceeds max %d", what, n, maxPath)
	}
	if n == 0 {
		return nil, nil
	}
	p := make([]uint8, n)
	for i := range p {
		b, err := d.byte(what + " path")
		if err != nil {
			return nil, err
		}
		// Path entries are link output ports: the local port 0 never
		// appears in a dependency walk.
		if b < 1 || int(b) >= maxRadix {
			return nil, fmt.Errorf("mc: %s path entry %d out of range", what, b)
		}
		p[i] = b
	}
	return p, nil
}

// Decode parses enc back into a State, rejecting any non-canonical or
// out-of-range encoding. A nil error guarantees Encode(state) == enc.
func (in *Instance) Decode(enc []byte) (*State, error) {
	d := &decoder{buf: enc}
	v, err := d.byte("version")
	if err != nil {
		return nil, err
	}
	if v != encVersion {
		return nil, fmt.Errorf("mc: encoding version %d, want %d", v, encVersion)
	}
	maxRadix := 0
	for r := 0; r < in.NumRouters(); r++ {
		if in.Radix(r) > maxRadix {
			maxRadix = in.Radix(r)
		}
	}
	s := &State{
		Pkts:    make([]PktLoc, len(in.Packets)),
		Routers: make([]RouterState, in.NumRouters()),
	}
	for i := range s.Pkts {
		kind, err := d.byte("packet kind")
		if err != nil {
			return nil, err
		}
		r, err := d.byte("packet router")
		if err != nil {
			return nil, err
		}
		p, err := d.byte("packet port")
		if err != nil {
			return nil, err
		}
		switch kind {
		case LocQueued, LocDelivered:
			if r != locNone || p != locNone {
				return nil, fmt.Errorf("mc: packet %d location fields must be 0xFF when not resident", i)
			}
			s.Pkts[i] = PktLoc{Kind: kind}
		case LocAt:
			if int(r) >= in.NumRouters() || int(p) >= in.Radix(int(r)) {
				return nil, fmt.Errorf("mc: packet %d at invalid VC r%d port %d", i, r, p)
			}
			s.Pkts[i] = PktLoc{Kind: kind, Router: r, Port: p}
		default:
			return nil, fmt.Errorf("mc: packet %d has invalid location kind %d", i, kind)
		}
	}
	for r := range s.Routers {
		radix := in.Radix(r)
		role, err := d.byte("role")
		if err != nil {
			return nil, err
		}
		if role >= byte(numRoles) {
			return nil, fmt.Errorf("mc: r%d invalid role %d", r, role)
		}
		loopPort, err := d.byte("loopPort")
		if err != nil {
			return nil, err
		}
		initOut, err := d.byte("initOut")
		if err != nil {
			return nil, err
		}
		srcID, err := d.byte("srcID")
		if err != nil {
			return nil, err
		}
		frozen, err := d.byte("frozen")
		if err != nil {
			return nil, err
		}
		pathLen, err := d.byte("loopPath length")
		if err != nil {
			return nil, err
		}
		rs := &s.Routers[r]
		rs.Role = Role(role)
		switch rs.Role {
		case RoleIdle, RoleProbing:
			// No loop latched: the shifted fields must hold their zero
			// forms or the encoding is non-canonical.
			if loopPort != 0 || initOut != 0 || pathLen != 0 {
				return nil, fmt.Errorf("mc: r%d role %s carries a loop latch", r, rs.Role)
			}
			rs.LoopPort, rs.InitOut = -1, -1
		default:
			// Latched ports are link ports: shifted values in [2, radix].
			if loopPort < 2 || int(loopPort) > radix || initOut < 2 || int(initOut) > radix {
				return nil, fmt.Errorf("mc: r%d role %s with invalid loop latch (%d, %d)", r, rs.Role, loopPort, initOut)
			}
			rs.LoopPort, rs.InitOut = int8(loopPort-1), int8(initOut-1)
			rs.LoopPath, err = d.path(int(pathLen), in.MaxPath, maxRadix, "loop")
			if err != nil {
				return nil, err
			}
		}
		if int(srcID) > in.NumRouters() {
			return nil, fmt.Errorf("mc: r%d invalid srcID %d", r, srcID)
		}
		rs.SrcID = int8(srcID) - 1
		if frozen&1 != 0 || frozen>>uint(radix) != 0 {
			return nil, fmt.Errorf("mc: r%d frozen mask %#x outside link ports", r, frozen)
		}
		rs.Frozen = frozen
		if (rs.SrcID >= 0) != (rs.Frozen != 0) {
			return nil, fmt.Errorf("mc: r%d srcID %d inconsistent with frozen mask %#x", r, rs.SrcID, rs.Frozen)
		}
	}
	smCount, err := d.byte("SM count")
	if err != nil {
		return nil, err
	}
	var prev []byte
	for i := 0; i < int(smCount); i++ {
		start := d.off
		kind, err := d.byte("SM kind")
		if err != nil {
			return nil, err
		}
		if kind >= numSMKinds {
			return nil, fmt.Errorf("mc: SM %d invalid kind %d", i, kind)
		}
		initiator, err := d.byte("SM initiator")
		if err != nil {
			return nil, err
		}
		router, err := d.byte("SM router")
		if err != nil {
			return nil, err
		}
		inPort, err := d.byte("SM inPort")
		if err != nil {
			return nil, err
		}
		firstOut, err := d.byte("SM firstOut")
		if err != nil {
			return nil, err
		}
		pathLen, err := d.byte("SM path length")
		if err != nil {
			return nil, err
		}
		if int(initiator) >= in.NumRouters() || int(router) >= in.NumRouters() {
			return nil, fmt.Errorf("mc: SM %d references invalid routers", i)
		}
		// SMs travel links: the arrival port is a link port.
		if inPort < 1 || int(inPort) >= in.Radix(int(router)) {
			return nil, fmt.Errorf("mc: SM %d invalid inPort %d", i, inPort)
		}
		m := SM{Kind: kind, Initiator: initiator, Router: router, InPort: inPort}
		if kind == SMProbe {
			if firstOut < 2 || int(firstOut) > in.Radix(int(initiator)) {
				return nil, fmt.Errorf("mc: probe %d invalid firstOut %d", i, firstOut)
			}
			m.FirstOut = int8(firstOut - 1)
		} else {
			if firstOut != 0 {
				return nil, fmt.Errorf("mc: %s %d carries a firstOut", smKindName(kind), i)
			}
			m.FirstOut = -1
		}
		m.Path, err = d.path(int(pathLen), in.MaxPath, maxRadix, smKindName(kind))
		if err != nil {
			return nil, err
		}
		rec := d.buf[start:d.off]
		if prev != nil && !lessBytes(prev, rec) {
			return nil, fmt.Errorf("mc: SM records not in canonical order at %d", i)
		}
		prev = rec
		s.SMs = append(s.SMs, m)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("mc: %d trailing bytes after state", len(d.buf)-d.off)
	}
	return s, nil
}
