package mc

import (
	"fmt"
	"strings"

	"repro/internal/harness"
)

// Counterexample replay: a model violation trace is converted into a
// harness scenario whose exact-injection workload reproduces the
// counterexample's packet arrivals in the simulator, with the same
// protocol defect injected via Scenario.Mutation. The differential
// oracle is then just harness.Run: a mutated replay must fail the
// checked run (the simulator agrees the defect is real) and the same
// workload without the mutation must pass (the fault is the mutation,
// not the workload).

// replayTDD is the detection timeout for replay scenarios — small, so a
// counterexample resolves (or provably fails to) in a short run.
const replayTDD = 32

// ReplayBudget is the drain budget for replay scenarios: comfortably
// above the harness recovery bound at replayTDD (40·tdd + 30·routers),
// so an unmutated run has time to recover while a mutated one fails
// fast.
const ReplayBudget = 8000

// TraceScenario converts a counterexample trace into a replayable
// harness scenario. Only the trace's injection actions matter: the
// simulator runs its own timing, so the replay reproduces the workload
// and the mutation, not the model's exact interleaving.
func (in *Instance) TraceScenario(v Violation) (harness.Scenario, error) {
	if in.Mutation == MutSpinUnchecked {
		// The defect lives in the model's own spin abstraction; the
		// simulator has no matching knob to inject.
		return harness.Scenario{}, fmt.Errorf("mc: mutation %s is model-only and has no simulator replay", in.Mutation)
	}
	sc := harness.Scenario{
		Topology:    in.TopoSpec,
		Routing:     in.RoutingName,
		Scheme:      "spin",
		VNets:       1,
		VCsPerVNet:  1,
		VCDepth:     5,
		Seed:        1,
		TDD:         replayTDD,
		Mutation:    in.Mutation.String(),
		DrainCycles: ReplayBudget,
	}
	if in.Mutation == MutNone {
		sc.Mutation = ""
	}
	for step, action := range v.Trace {
		var pkt int
		if _, err := fmt.Sscanf(action, "inject p%d", &pkt); err != nil || !strings.HasPrefix(action, "inject ") {
			continue
		}
		if pkt < 0 || pkt >= len(in.Packets) {
			return harness.Scenario{}, fmt.Errorf("mc: malformed trace action %q", action)
		}
		p := in.Packets[pkt]
		sc.Injections = append(sc.Injections, harness.Injection{
			// The step index preserves the counterexample's relative
			// injection order; packet length fills the whole VC, the
			// model's single-occupancy abstraction.
			Cycle:  int64(step),
			Src:    p.Src,
			Dst:    p.Dst,
			Length: 5,
			VNet:   0,
		})
	}
	if len(sc.Injections) == 0 {
		return harness.Scenario{}, fmt.Errorf("mc: trace contains no injections")
	}
	sc.Cycles = int64(len(v.Trace)) + 16
	if err := sc.Validate(); err != nil {
		return harness.Scenario{}, fmt.Errorf("mc: replay scenario invalid: %w", err)
	}
	return sc, nil
}

// Replay runs the counterexample scenario through the simulator with the
// invariant checker attached and reports the checked result.
func Replay(sc harness.Scenario) (*harness.Result, error) { return harness.Run(sc) }
