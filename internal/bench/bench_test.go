package bench

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	spin "repro"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite BENCH_sim.json from this machine's measurements")

const baselineFile = "BENCH_sim.json"

// TestBenchRegression is the performance gate: current per-cycle cost
// versus the committed BENCH_sim.json baseline. ns/cycle is compared
// after scaling the baseline by the machines' calibration ratio and
// allowing 10% noise; allocations and bytes per cycle are
// machine-independent and compare directly (allocations near-exactly,
// bytes with slack for allocator bucketing).
//
// The wall-clock limit only fails the test when BENCH_STRICT is set in
// the environment (the CI bench job sets it and runs this package
// alone). Under a plain `go test ./...`, other test binaries run
// concurrently and contend for the CPU, so an over-limit timing is
// reported but not fatal; the allocation and byte gates are
// contention-immune and always enforce.
func TestBenchRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts timing and allocation counts")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	cur, err := Collect(3)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := cur.Write(baselineFile); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (calibration %.3f ns/op)", baselineFile, cur.CalibrationNs)
		return
	}
	base, err := Load(baselineFile)
	if err != nil {
		t.Fatal(err)
	}
	scale := cur.CalibrationNs / base.CalibrationNs
	t.Logf("machine calibration: baseline %.3f ns/op, current %.3f ns/op (scale %.2fx)",
		base.CalibrationNs, cur.CalibrationNs, scale)
	for _, got := range cur.Workloads {
		want, ok := base.Find(got.Name)
		if !ok {
			t.Errorf("%s: not in baseline; run with -update", got.Name)
			continue
		}
		limit := want.NsPerCycle * scale * 1.10
		t.Logf("%-14s %8.0f ns/cycle (limit %8.0f)  %6.3f allocs/cycle  %8.1f B/cycle",
			got.Name, got.NsPerCycle, limit, got.AllocsPerCycle, got.BytesPerCycle)
		if got.NsPerCycle > limit {
			msg := "%s: %.0f ns/cycle exceeds %.0f (baseline %.0f x calibration %.2f x 1.10)"
			if os.Getenv("BENCH_STRICT") != "" {
				t.Errorf(msg, got.Name, got.NsPerCycle, limit, want.NsPerCycle, scale)
			} else {
				t.Logf(msg+" — advisory only; set BENCH_STRICT=1 to enforce",
					got.Name, got.NsPerCycle, limit, want.NsPerCycle, scale)
			}
		}
		if got.AllocsPerCycle > want.AllocsPerCycle+0.01 {
			t.Errorf("%s: %.3f allocs/cycle exceeds baseline %.3f",
				got.Name, got.AllocsPerCycle, want.AllocsPerCycle)
		}
		if got.BytesPerCycle > want.BytesPerCycle*1.5+64 {
			t.Errorf("%s: %.1f B/cycle exceeds baseline %.1f by more than 1.5x+64",
				got.Name, got.BytesPerCycle, want.BytesPerCycle)
		}
	}
}

// TestStepAllocBudget pins the steady-state allocation discipline:
// after warmup — pools populated, scratch buffers grown, source queues
// at their plateau — Network.Step must not allocate at all. The runs are
// deterministic (fixed seed, sequential cycles), so the budget is exact,
// not statistical.
func TestStepAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, name := range []string{"mesh8x8/sat", "dfly64/sat"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", name, shards), func(t *testing.T) {
				var w Workload
				for _, cand := range Workloads() {
					if cand.Name == name {
						w = cand
					}
				}
				if w.Name == "" {
					t.Fatalf("workload %s not defined", name)
				}
				cfg := w.Cfg
				cfg.Shards = shards
				s, err := spin.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Run(8000)
				if avg := testing.AllocsPerRun(300, func() { s.Run(1) }); avg != 0 {
					t.Errorf("steady-state Step allocates %.4f objects/cycle, want 0", avg)
				}
			})
		}
	}
}

// TestStepAllocBudgetFlightRecorder re-runs the zero-alloc gate with
// the forensics flight recorder attached: the recorder's masked ring
// must record SPIN protocol events without costing a single steady-state
// allocation, since it is meant to be left on in production runs.
func TestStepAllocBudgetFlightRecorder(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, name := range []string{"mesh8x8/sat", "dfly64/sat"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", name, shards), func(t *testing.T) {
				var w Workload
				for _, cand := range Workloads() {
					if cand.Name == name {
						w = cand
					}
				}
				if w.Name == "" {
					t.Fatalf("workload %s not defined", name)
				}
				cfg := w.Cfg
				cfg.Shards = shards
				s, err := spin.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rec := s.Network().AttachFlightRecorder(1024)
				s.Run(8000)
				if avg := testing.AllocsPerRun(300, func() { s.Run(1) }); avg != 0 {
					t.Errorf("steady-state Step with flight recorder allocates %.4f objects/cycle, want 0", avg)
				}
				// Only the mesh workload is guaranteed SPIN activity at
				// saturation; dfly64's routing can stay recovery-free.
				if name == "mesh8x8/sat" && rec.Total() == 0 {
					t.Error("flight recorder saw no SPIN events on a saturating mesh workload")
				}
			})
		}
	}
}

// TestStepAllocBudgetWorkloads extends the zero-alloc gate to the shaped
// traffic generators: the closed-loop request/response clients (whose
// reply queues and window accounting must reach a steady-state plateau
// and then stop allocating) and the burst modulator. Same discipline as
// TestStepAllocBudget: after warmup, Step allocates nothing.
func TestStepAllocBudgetWorkloads(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	build := func(t *testing.T, shards int, closed bool) *sim.Network {
		m, err := topology.NewMesh(8, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		var gen sim.TrafficGen
		if closed {
			cl, err := workload.NewClosedLoop(workload.ClosedLoopConfig{
				Pattern: traffic.Uniform(64),
				Window:  4,
				Rate:    0.2,
				Think:   8,
				VNets:   2,
				Seed:    17,
			})
			if err != nil {
				t.Fatal(err)
			}
			gen = cl
		} else {
			gen = &workload.Burst{
				Inner:   &traffic.Synthetic{Pattern: traffic.Uniform(64), Rate: 0.2, VNets: 2},
				OnMean:  12,
				OffMean: 36,
			}
		}
		n, err := sim.NewNetwork(sim.Config{
			Topology:   m,
			Routing:    &routing.XY{Mesh: m},
			Traffic:    gen,
			VNets:      2,
			VCsPerVNet: 2,
			Shards:     shards,
			Seed:       17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && n.Shards() != shards {
			t.Fatalf("workload generator clamped to %d shards, want %d", n.Shards(), shards)
		}
		return n
	}
	for _, tc := range []struct {
		name   string
		closed bool
	}{{"closedloop", true}, {"burst", false}} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", tc.name, shards), func(t *testing.T) {
				n := build(t, shards, tc.closed)
				n.Run(8000)
				if avg := testing.AllocsPerRun(300, func() { n.Run(1) }); avg != 0 {
					t.Errorf("steady-state Step allocates %.4f objects/cycle, want 0", avg)
				}
			})
		}
	}
}

// TestShardScalingGate measures the sharded engine's speedup at 4
// shards on the paper-scale mesh and gates on the >=1.5x target. The
// target only makes sense with cores to back it, so below 4 CPUs the
// test skips; on multicore hardware a miss is advisory unless
// BENCH_STRICT is set (the CI bench job's posture, mirrored from
// TestBenchRegression).
// minShardCores is the smallest core count on which the 4-shard speedup
// target is measurable at all; below it only the sharding overhead
// shows.
const minShardCores = 4

func TestShardScalingGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts timing")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	if cores := runtime.NumCPU(); cores < minShardCores {
		t.Skipf("detected %d CPUs but the scaling gate needs >= %d: speedup is not measurable, skipping", cores, minShardCores)
	}
	var w Workload
	for _, cand := range ScaleWorkloads() {
		if cand.Name == "mesh64x64/low" {
			w = cand
		}
	}
	if w.Name == "" {
		t.Fatal("scale workload mesh64x64/low not defined")
	}
	measure := func(shards int) float64 {
		sw := w
		sw.Cfg.Shards = shards
		best := 0.0
		for i := 0; i < 3; i++ {
			r, err := Measure(sw)
			if err != nil {
				t.Fatal(err)
			}
			if best == 0 || r.NsPerCycle < best {
				best = r.NsPerCycle
			}
		}
		return best
	}
	ns1 := measure(1)
	ns4 := measure(4)
	speedup := ns1 / ns4
	t.Logf("mesh64x64/low: %.0f ns/cycle serial, %.0f ns/cycle at 4 shards (%.2fx, %d CPUs)",
		ns1, ns4, speedup, runtime.NumCPU())
	if speedup < 1.5 {
		msg := "4-shard speedup %.2fx below the 1.5x target"
		if os.Getenv("BENCH_STRICT") != "" {
			t.Errorf(msg, speedup)
		} else {
			t.Logf(msg+" — advisory only; set BENCH_STRICT=1 to enforce", speedup)
		}
	}
}

// BenchmarkStep exposes the workload matrix to `go test -bench` so CI
// and benchstat see standard ns/op + allocs/op series per cycle.
func BenchmarkStep(b *testing.B) {
	for _, w := range Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			s, err := spin.New(w.Cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Run(w.Warmup)
			b.ReportAllocs()
			b.ResetTimer()
			s.Run(int64(b.N))
		})
	}
}

// BenchmarkStepShards exposes the paper-scale workloads across the
// shard ladder, the `go test -bench` view of the scaling table. On a
// 1-core runner the sub-serial shards>1 rows measure the coordination
// overhead; on multicore they measure the speedup.
func BenchmarkStepShards(b *testing.B) {
	for _, w := range ScaleWorkloads() {
		for _, shards := range ShardCounts() {
			b.Run(fmt.Sprintf("%s/shards%d", w.Name, shards), func(b *testing.B) {
				cfg := w.Cfg
				cfg.Shards = shards
				s, err := spin.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Run(w.Warmup)
				b.ReportAllocs()
				b.ResetTimer()
				s.Run(int64(b.N))
			})
		}
	}
}

// BenchmarkCalibration publishes the machine-speed kernel so benchmark
// artifacts record the hardware context next to the simulator numbers.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(0x9E3779B97F4A7C15)
		for j := 0; j < 1024; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrationSink += x
	}
}
