//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Timing and allocation gates are meaningless under ~10x instrumentation
// overhead (and the runtime itself allocates), so the regression and
// allocation-budget tests skip themselves when it is on.
const raceEnabled = false
