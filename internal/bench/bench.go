// Package bench measures the simulator's hot path — ns, heap bytes and
// heap allocations per simulated cycle — over a fixed matrix of
// workloads (mesh, torus, dragonfly at low and saturation load), and
// compares runs against the committed baseline BENCH_sim.json.
//
// The baseline carries a machine-speed calibration: the time per
// iteration of a fixed integer kernel measured on the machine that wrote
// the file. A regression check scales the baseline's ns/cycle by the
// ratio of the current machine's calibration to the baseline's, so the
// gate tracks simulator regressions rather than hardware differences.
// Allocation and byte counts are machine-independent and compare
// directly.
//
// Regenerate the baseline after a deliberate perf change:
//
//	go test ./internal/bench -run TestBenchRegression -update
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	spin "repro"
)

// Workload is one benchmarked configuration.
type Workload struct {
	// Name keys the workload in BENCH_sim.json.
	Name string
	// Cfg is the simulation under test.
	Cfg spin.Config
	// Warmup cycles run before measurement: long enough that buffers,
	// scratch slices and the packet/SM pools reach steady state.
	Warmup int64
	// Cycles measured.
	Cycles int64
}

// Result is one workload's measurement.
type Result struct {
	Name           string  `json:"name"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	Cycles         int64   `json:"cycles"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	// Schema guards against comparing incompatible file versions.
	Schema int `json:"schema"`
	// GoVersion that produced the baseline (informational).
	GoVersion string `json:"go_version"`
	// CalibrationNs is the fixed integer kernel's ns/iteration on the
	// producing machine; regression checks scale ns/cycle by the ratio of
	// the current machine's calibration to this.
	CalibrationNs float64  `json:"calibration_ns"`
	Workloads     []Result `json:"workloads"`
	// Scaling records the sharded engine's measured ns/cycle at several
	// shard counts on the paper-scale workloads (informational: speedup
	// depends on the producing machine's core count, recorded in NumCPU).
	NumCPU  int             `json:"num_cpu,omitempty"`
	Scaling []ScalingResult `json:"scaling,omitempty"`
}

// ScalingResult is one (workload, shard count) cell of the scaling table.
type ScalingResult struct {
	Workload   string  `json:"workload"`
	Shards     int     `json:"shards"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// Schema is the current BENCH_sim.json schema version.
const Schema = 1

// Workloads is the benchmark matrix. Saturation rates sit at the highest
// load where source queues stay bounded (measured on this tree), so
// steady state recycles every packet through the pool; past that edge the
// growing backlog genuinely allocates and allocs/cycle cannot be zero.
func Workloads() []Workload {
	mk := func(name, topo, routing string, rate float64) Workload {
		return Workload{
			Name: name,
			Cfg: spin.Config{
				Topology:   topo,
				Routing:    routing,
				Scheme:     "spin",
				VCsPerVNet: 3,
				Traffic:    "uniform_random",
				Rate:       rate,
				Seed:       17,
			},
			Warmup: 4000,
			Cycles: 2000,
		}
	}
	return []Workload{
		mk("mesh8x8/low", "mesh:8x8", "min_adaptive", 0.05),
		mk("mesh8x8/sat", "mesh:8x8", "min_adaptive", 0.28),
		mk("torus8x8/low", "torus:8x8", "min_adaptive", 0.05),
		mk("torus8x8/sat", "torus:8x8", "min_adaptive", 0.45),
		mk("dfly64/low", "dragonfly:4,4,4,16", "ugal_spin", 0.05),
		mk("dfly64/sat", "dragonfly:4,4,4,16", "ugal_spin", 0.20),
	}
}

// ScaleWorkloads is the paper-scale matrix behind BenchmarkStepShards
// and the scaling table: the Table III presets the sharded engine was
// built to make interactive. Cycle counts are short — one cycle of the
// 1024-node dragonfly costs roughly what a whole mesh8x8 measurement
// window does — and warmup is just long enough to fill the pipeline.
func ScaleWorkloads() []Workload {
	mk := func(name, preset string, rate float64) Workload {
		p, err := spin.PresetByName(preset)
		if err != nil {
			panic(err) // presets are compiled in; absence is a bug
		}
		cfg := p.Config
		cfg.Traffic = "uniform_random"
		cfg.Rate = rate
		cfg.Seed = 17
		return Workload{Name: name, Cfg: cfg, Warmup: 200, Cycles: 100}
	}
	return []Workload{
		mk("dfly1024/low", "dfly1024", 0.05),
		mk("mesh64x64/low", "mesh64x64", 0.05),
	}
}

// ShardCounts is the shard ladder measured by the scaling table and
// BenchmarkStepShards.
func ShardCounts() []int { return []int{1, 2, 4, 8} }

// CollectScaling measures each scale workload's ns/cycle across the
// shard ladder. Speedups are meaningful only when the machine has the
// cores to back them (Report.NumCPU records that context).
func CollectScaling() ([]ScalingResult, error) {
	var out []ScalingResult
	for _, w := range ScaleWorkloads() {
		for _, shards := range ShardCounts() {
			sw := w
			sw.Cfg.Shards = shards
			r, err := Measure(sw)
			if err != nil {
				return nil, err
			}
			out = append(out, ScalingResult{Workload: w.Name, Shards: shards, NsPerCycle: r.NsPerCycle})
		}
	}
	return out, nil
}

// Measure runs one workload and reports per-cycle cost. The warmup phase
// is excluded; a GC between warmup and measurement keeps the measured
// Mallocs delta attributable to the measured cycles.
func Measure(w Workload) (Result, error) {
	s, err := spin.New(w.Cfg)
	if err != nil {
		return Result{}, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	s.Run(w.Warmup)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	s.Run(w.Cycles)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(w.Cycles)
	return Result{
		Name:           w.Name,
		NsPerCycle:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		Cycles:         w.Cycles,
	}, nil
}

// calibrationSink defeats dead-code elimination of the kernel.
var calibrationSink uint64

// Calibrate times a fixed xorshift kernel and reports ns/iteration — a
// pure-integer, cache-resident proxy for the machine's scalar speed. The
// minimum of three runs rejects scheduling noise.
func Calibrate() float64 {
	const iters = 1 << 25
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		x := uint64(0x9E3779B97F4A7C15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		elapsed := float64(time.Since(start).Nanoseconds()) / iters
		calibrationSink += x
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// Collect measures every workload (best ns of reps runs each; allocation
// counts come from the first run, which is deterministic) and stamps the
// report with the machine calibration.
func Collect(reps int) (Report, error) {
	rep := Report{Schema: Schema, GoVersion: runtime.Version(), CalibrationNs: Calibrate(), NumCPU: runtime.NumCPU()}
	for _, w := range Workloads() {
		var best Result
		for i := 0; i < reps; i++ {
			r, err := Measure(w)
			if err != nil {
				return Report{}, err
			}
			if i == 0 {
				best = r
			} else if r.NsPerCycle < best.NsPerCycle {
				best.NsPerCycle = r.NsPerCycle
			}
		}
		rep.Workloads = append(rep.Workloads, best)
	}
	scaling, err := CollectScaling()
	if err != nil {
		return Report{}, err
	}
	rep.Scaling = scaling
	return rep, nil
}

// Load reads a report from path.
func Load(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("bench: %s has schema %d, want %d (regenerate with -update)", path, r.Schema, Schema)
	}
	return r, nil
}

// Write emits the report as indented JSON to path.
func (r Report) Write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Find returns the named workload result.
func (r Report) Find(name string) (Result, bool) {
	for _, w := range r.Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return Result{}, false
}
