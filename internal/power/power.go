// Package power is an analytical router area/energy model standing in for
// the paper's Nangate 15 nm RTL synthesis (DESIGN.md records the
// substitution). All numbers are relative units; the model's purpose is
// the paper's *relative* claims:
//
//   - input buffers dominate router area, so dropping from 3 VCs to 1
//     saves ~50% area and power (mesh and dragonfly);
//   - SPIN's modules (FSM, probe/move managers, loop buffer) cost a few
//     percent of a router;
//   - Static Bubble's recovery buffer and control cost ~10%;
//   - an escape-VC design pays a whole extra VC of buffering plus escape
//     routing state.
package power

import "math"

// Tech holds the technology/circuit constants (relative units per bit).
type Tech struct {
	// BufAreaPerBit is flip-flop buffer area per bit.
	BufAreaPerBit float64
	// XbarAreaPerPortBit models a mux-based crossbar: area per output
	// port per bit of datapath width.
	XbarAreaPerPortBit float64
	// AllocAreaPerVC is switch/VC-allocator area per VC arbiter input.
	AllocAreaPerVC float64
	// Energy per bit per event (relative).
	EBufWriteBit, EBufReadBit, EXbarBit, ELinkBit float64
	// LeakPerArea is static power per area unit per cycle.
	LeakPerArea float64
	// ClockPerBufBit is clock-tree + register idle power per buffer bit
	// per cycle. Register-based NoC buffers burn clock power whether or
	// not flits flow, which is why dropping VCs halves router power in
	// the paper's RTL numbers.
	ClockPerBufBit float64
}

// defaultTech is calibrated so that the evaluated design points reproduce
// the paper's reported ratios (1 VC vs 3 VC: ~52% mesh / ~53% dragonfly
// area, ~50%/55% power; SPIN ≈ 4% of a 3-VC west-first mesh router).
var defaultTech = Tech{
	BufAreaPerBit:      1.0,
	XbarAreaPerPortBit: 4.25,
	AllocAreaPerVC:     32,
	EBufWriteBit:       1.0,
	EBufReadBit:        0.8,
	EXbarBit:           0.6,
	ELinkBit:           1.3,
	LeakPerArea:        0.0002,
	ClockPerBufBit:     0.1,
}

// Default returns the calibrated technology constants by value. Every
// caller gets its own copy, so concurrent experiment jobs can read (or
// locally tweak) the constants without racing on shared state.
func Default() Tech { return defaultTech }

// DefaultTech is a package-level copy of Default()'s value.
//
// Deprecated: as package-level mutable state it is not safe to modify
// once parallel sweeps are running; use Default() and pass the value
// through explicitly.
var DefaultTech = defaultTech

// SchemeKind enumerates the deadlock-freedom hardware variants whose
// overhead the model charges.
type SchemeKind int

// Scheme kinds.
const (
	SchemeNone SchemeKind = iota
	SchemeSPIN
	SchemeStaticBubble
	SchemeEscapeVC
)

// RouterConfig describes one router design point.
type RouterConfig struct {
	Radix      int // ports
	VCs        int // total VCs per input port (vnets × VCs/vnet)
	VCDepth    int // flits
	FlitBits   int
	NumRouters int // network size (loop-buffer sizing)
	Scheme     SchemeKind
}

// Area breaks a router's area into components (relative units).
type Area struct {
	Buffers, Crossbar, Allocators, SchemeExtra float64
}

// Total sums the components.
func (a Area) Total() float64 { return a.Buffers + a.Crossbar + a.Allocators + a.SchemeExtra }

// RouterArea evaluates the model for one design point.
func RouterArea(t Tech, c RouterConfig) Area {
	var a Area
	bits := float64(c.FlitBits)
	a.Buffers = t.BufAreaPerBit * float64(c.Radix*c.VCs*c.VCDepth) * bits
	a.Crossbar = t.XbarAreaPerPortBit * float64(c.Radix) * bits
	a.Allocators = t.AllocAreaPerVC * float64(c.Radix*c.VCs)
	a.SchemeExtra = schemeArea(t, c)
	return a
}

// schemeArea charges the per-scheme control hardware.
func schemeArea(t Tech, c RouterConfig) float64 {
	switch c.Scheme {
	case SchemeSPIN:
		// Loop buffer: log2(radix) bits per router of the network
		// (Table II), plus the counter FSM and the probe/move managers.
		loopBits := math.Ceil(math.Log2(float64(c.Radix))) * float64(c.NumRouters)
		const fsm, probeMgr, moveMgr = 120, 90, 90
		return t.BufAreaPerBit*loopBits + fsm + probeMgr + moveMgr
	case SchemeStaticBubble:
		// One packet-sized recovery buffer plus activation FSM, detection
		// counters and bubble-placement control.
		buf := t.BufAreaPerBit * float64(c.VCDepth*c.FlitBits)
		const fsm, control = 120, 470
		return buf + fsm + control
	case SchemeEscapeVC:
		// Escape routing tables/logic on top of the extra VC (the VC
		// itself is counted in Buffers via the VCs field).
		return 64 * float64(c.Radix)
	}
	return 0
}

// bufferBits reports the router's total buffer storage.
func bufferBits(c RouterConfig) float64 {
	return float64(c.Radix * c.VCs * c.VCDepth * c.FlitBits)
}

// controlBits models the VC-count-independent clocked state: datapath
// pipeline registers, allocator and routing state — roughly one VC's
// worth of storage per port. It is what keeps the 1-VC router at ~50%
// (not ~33%) of the 3-VC router's power, matching the paper's RTL
// numbers.
func controlBits(c RouterConfig) float64 {
	return float64(c.Radix * c.VCDepth * c.FlitBits)
}

// RouterPower reports clock + leakage + per-flit dynamic power at a given
// flit throughput (flits per cycle through the router).
func RouterPower(t Tech, c RouterConfig, flitsPerCycle float64) float64 {
	area := RouterArea(t, c)
	static := t.LeakPerArea*area.Total() + t.ClockPerBufBit*(bufferBits(c)+controlBits(c))
	bits := float64(c.FlitBits)
	perFlit := (t.EBufWriteBit + t.EBufReadBit + t.EXbarBit + t.ELinkBit) * bits
	return static + perFlit*flitsPerCycle
}

// FlitEventEnergy reports the dynamic energy of the four per-flit events,
// for combining with simulator counters.
type FlitEventEnergy struct {
	BufWrite, BufRead, Xbar, Link float64
}

// Events evaluates per-flit event energies for a flit width.
func Events(t Tech, flitBits int) FlitEventEnergy {
	b := float64(flitBits)
	return FlitEventEnergy{
		BufWrite: t.EBufWriteBit * b,
		BufRead:  t.EBufReadBit * b,
		Xbar:     t.EXbarBit * b,
		Link:     t.ELinkBit * b,
	}
}

// NetworkEnergy combines simulator activity counters with the model:
// dynamic event energy plus clock and leakage over routers × cycles.
func NetworkEnergy(t Tech, c RouterConfig, bufWrites, bufReads, xbars, links, cycles int64) float64 {
	e := Events(t, c.FlitBits)
	dyn := e.BufWrite*float64(bufWrites) + e.BufRead*float64(bufReads) +
		e.Xbar*float64(xbars) + e.Link*float64(links)
	static := (t.LeakPerArea*RouterArea(t, c).Total() + t.ClockPerBufBit*(bufferBits(c)+controlBits(c))) *
		float64(c.NumRouters) * float64(cycles)
	return dyn + static
}

// EDP is the energy-delay product given network energy and a delay metric
// (average packet latency, per the paper's network EDP figure).
func EDP(energy, delay float64) float64 { return energy * delay }

// MeshRouter returns the design point of an 8x8-mesh router (radix 5,
// 128-bit links, 5-flit VCs).
func MeshRouter(vcs int, scheme SchemeKind) RouterConfig {
	return RouterConfig{Radix: 5, VCs: vcs, VCDepth: 5, FlitBits: 128, NumRouters: 64, Scheme: scheme}
}

// DragonflyRouter returns the design point of the 1024-node dragonfly
// router (p=4, a=8, h=4: radix 15).
func DragonflyRouter(vcs int, scheme SchemeKind) RouterConfig {
	return RouterConfig{Radix: 15, VCs: vcs, VCDepth: 5, FlitBits: 128, NumRouters: 256, Scheme: scheme}
}
