package power

import "testing"

func ratio(a, b float64) float64 { return a / b }

// The 1-VC mesh router should be ~52% (36%) smaller than a 3-VC (2-VC)
// router — the paper's headline cost claim.
func TestMeshAreaSavings(t *testing.T) {
	a1 := RouterArea(Default(), MeshRouter(1, SchemeNone)).Total()
	a2 := RouterArea(Default(), MeshRouter(2, SchemeNone)).Total()
	a3 := RouterArea(Default(), MeshRouter(3, SchemeNone)).Total()
	if s := 1 - ratio(a1, a3); s < 0.45 || s > 0.60 {
		t.Fatalf("1VC vs 3VC mesh area saving = %.2f, want ~0.52", s)
	}
	if s := 1 - ratio(a1, a2); s < 0.28 || s > 0.44 {
		t.Fatalf("1VC vs 2VC mesh area saving = %.2f, want ~0.36", s)
	}
}

func TestDragonflyAreaSavings(t *testing.T) {
	a1 := RouterArea(Default(), DragonflyRouter(1, SchemeNone)).Total()
	a3 := RouterArea(Default(), DragonflyRouter(3, SchemeNone)).Total()
	if s := 1 - ratio(a1, a3); s < 0.45 || s > 0.62 {
		t.Fatalf("1VC vs 3VC dragonfly area saving = %.2f, want ~0.53", s)
	}
}

// SPIN's modules should cost a few percent of a 3-VC west-first router
// (the paper reports 4%).
func TestSPINOverheadSmall(t *testing.T) {
	base := RouterArea(Default(), MeshRouter(3, SchemeNone)).Total()
	with := RouterArea(Default(), MeshRouter(3, SchemeSPIN)).Total()
	over := (with - base) / base
	if over < 0.02 || over > 0.07 {
		t.Fatalf("SPIN area overhead = %.3f, want ~0.04", over)
	}
}

// Scheme overhead ordering of Fig. 10: escape-VC >> static bubble > SPIN.
func TestFig10Ordering(t *testing.T) {
	wf := RouterArea(Default(), MeshRouter(1, SchemeNone)).Total()
	spin := RouterArea(Default(), MeshRouter(1, SchemeSPIN)).Total()
	sb := RouterArea(Default(), MeshRouter(1, SchemeStaticBubble)).Total()
	// Escape-VC needs one more VC than the baseline plus escape state.
	esc := RouterArea(Default(), MeshRouter(2, SchemeEscapeVC)).Total()
	if !(spin < sb && sb < esc) {
		t.Fatalf("overhead ordering broken: spin=%.0f sb=%.0f escape=%.0f (wf=%.0f)", spin, sb, esc, wf)
	}
	if spin/wf > 1.10 {
		t.Fatalf("SPIN relative area %.2f too high", spin/wf)
	}
	if esc/wf < 1.4 {
		t.Fatalf("escape-VC relative area %.2f too low (paper: ~2x)", esc/wf)
	}
}

func TestPowerSavings(t *testing.T) {
	// At equal load, the 1-VC router burns roughly half the power of the
	// 3-VC one (leakage tracks area; the paper reports 50%).
	p1 := RouterPower(Default(), MeshRouter(1, SchemeNone), 0)
	p3 := RouterPower(Default(), MeshRouter(3, SchemeNone), 0)
	if s := 1 - p1/p3; s < 0.4 || s > 0.65 {
		t.Fatalf("1VC vs 3VC static power saving = %.2f, want ~0.5", s)
	}
	// Dynamic power grows with throughput.
	lo := RouterPower(Default(), MeshRouter(1, SchemeNone), 0.1)
	hi := RouterPower(Default(), MeshRouter(1, SchemeNone), 0.9)
	if hi <= lo {
		t.Fatal("dynamic power not increasing with load")
	}
}

func TestNetworkEnergyMonotonic(t *testing.T) {
	c := MeshRouter(2, SchemeSPIN)
	e1 := NetworkEnergy(Default(), c, 1000, 1000, 1000, 1000, 10000)
	e2 := NetworkEnergy(Default(), c, 2000, 2000, 2000, 2000, 10000)
	if e2 <= e1 {
		t.Fatal("energy not monotonic in activity")
	}
	if EDP(e1, 20) >= EDP(e1, 30) {
		t.Fatal("EDP not monotonic in delay")
	}
}

func TestAreaComponents(t *testing.T) {
	a := RouterArea(Default(), MeshRouter(3, SchemeSPIN))
	if a.Buffers <= 0 || a.Crossbar <= 0 || a.Allocators <= 0 || a.SchemeExtra <= 0 {
		t.Fatalf("missing component: %+v", a)
	}
	if a.Buffers < a.Crossbar {
		t.Fatal("buffers should dominate crossbar in a 3-VC router")
	}
}

func TestDragonflyLoopBufferScaling(t *testing.T) {
	// The SPIN module cost grows with log2(radix)·N: the dragonfly router
	// (radix 15, 256 routers) pays a larger loop buffer than the mesh
	// router (radix 5, 64 routers), but it stays a small fraction.
	mesh := RouterArea(Default(), MeshRouter(3, SchemeSPIN))
	dfly := RouterArea(Default(), DragonflyRouter(3, SchemeSPIN))
	if dfly.SchemeExtra <= mesh.SchemeExtra {
		t.Fatalf("dragonfly SPIN modules (%.0f) should exceed mesh (%.0f)", dfly.SchemeExtra, mesh.SchemeExtra)
	}
	if frac := dfly.SchemeExtra / dfly.Total(); frac > 0.05 {
		t.Fatalf("dragonfly SPIN module fraction %.3f too large", frac)
	}
}

func TestSchemeNoneHasNoExtra(t *testing.T) {
	if RouterArea(Default(), MeshRouter(2, SchemeNone)).SchemeExtra != 0 {
		t.Fatal("SchemeNone charged extra area")
	}
}

// Default returns the constants by value: callers can mutate their copy
// freely, and the deprecated package-level DefaultTech matches it.
func TestDefaultAccessor(t *testing.T) {
	if Default() != defaultTech {
		t.Fatal("Default() does not return the calibrated constants")
	}
	if DefaultTech != Default() {
		t.Fatal("deprecated DefaultTech diverged from Default()")
	}
	local := Default()
	local.BufAreaPerBit = 99
	if Default().BufAreaPerBit == 99 {
		t.Fatal("mutating a Default() copy leaked into the shared constants")
	}
}
