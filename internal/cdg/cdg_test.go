package cdg

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func mesh(t *testing.T, x, y int) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestXYAcyclic(t *testing.T) {
	m := mesh(t, 4, 4)
	g := Build(m, 1, XYDep(m))
	if !g.Acyclic() {
		t.Fatalf("XY CDG should be acyclic: %s", g.Describe())
	}
}

func TestWestFirstAcyclic(t *testing.T) {
	m := mesh(t, 5, 4)
	g := Build(m, 2, WestFirstDep(m))
	if !g.Acyclic() {
		t.Fatalf("west-first CDG should be acyclic: %s", g.Describe())
	}
}

func TestMinAdaptiveCyclicOnMesh(t *testing.T) {
	m := mesh(t, 3, 3)
	g := Build(m, 1, MinAdaptiveDep(m))
	if g.Acyclic() {
		t.Fatal("fully-adaptive minimal mesh routing must have a cyclic CDG (that's why it needs SPIN)")
	}
	cycles := g.Cycles()
	if len(cycles) == 0 {
		t.Fatal("no cyclic components reported")
	}
}

func TestMinAdaptiveAcyclicOnLine(t *testing.T) {
	// A 1-D mesh has no turns, so even fully-adaptive routing is acyclic.
	m := mesh(t, 6, 1)
	g := Build(m, 1, MinAdaptiveDep(m))
	if !g.Acyclic() {
		t.Fatalf("1-D adaptive routing should be acyclic: %s", g.Describe())
	}
}

func TestEscapeVCStructure(t *testing.T) {
	m := mesh(t, 4, 4)
	full := Build(m, 3, EscapeDep(m, 3))
	if full.Acyclic() {
		t.Fatal("full escape-VC CDG is expected to be cyclic (regular VCs are unrestricted)")
	}
	escape := Build(m, 3, EscapeSubgraphDep(m))
	if !escape.Acyclic() {
		t.Fatalf("Duato escape sub-network must be acyclic: %s", escape.Describe())
	}
}

func TestDragonflyLadderAcyclic(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(d, 2, DflyLadderDep(d, 2))
	if !g.Acyclic() {
		t.Fatalf("dragonfly VC ladder must be acyclic: %s", g.Describe())
	}
	free := Build(d, 2, DflyFreeDep(d))
	if free.Acyclic() {
		t.Fatal("free-VC dragonfly routing should be cyclic")
	}
}

func TestTorusDORCyclicWithOneVC(t *testing.T) {
	// Dimension-ordered routing on a torus is cyclic with one VC (the
	// wraparound ring) — the classic motivation for bubble flow control
	// and dateline VCs.
	tor, err := topology.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tor, 1, TorusDORDep(tor))
	if g.Acyclic() {
		t.Fatal("torus DOR with 1 VC should be cyclic (ring wraparound)")
	}
}

func TestIrregularMeshAdaptiveCyclic(t *testing.T) {
	m := mesh(t, 4, 4)
	g := Build(m, 2, MinAdaptiveDep(m))
	if g.Acyclic() {
		t.Fatal("adaptive routing with 2 VCs still cyclic")
	}
	if g.NumChannels() != len(m.Links())*2 {
		t.Fatalf("channel count %d, want %d", g.NumChannels(), len(m.Links())*2)
	}
}

func TestDescribe(t *testing.T) {
	m := mesh(t, 3, 3)
	if s := Build(m, 1, XYDep(m)).Describe(); s == "" {
		t.Fatal("empty description")
	}
	if s := Build(m, 1, MinAdaptiveDep(m)).Describe(); s == "" {
		t.Fatal("empty description")
	}
}

func TestCyclesReportMembers(t *testing.T) {
	m := mesh(t, 3, 3)
	g := Build(m, 1, MinAdaptiveDep(m))
	cycles := g.Cycles()
	if len(cycles) == 0 {
		t.Fatal("no cycles")
	}
	links := m.Links()
	for _, cyc := range cycles {
		for _, ch := range cyc {
			if ch.Link < 0 || ch.Link >= len(links) {
				t.Fatalf("bad link index %d", ch.Link)
			}
			if ch.VC != 0 {
				t.Fatalf("unexpected VC class %d in 1-VC analysis", ch.VC)
			}
		}
	}
}

func TestBuildCountsAreStable(t *testing.T) {
	m := mesh(t, 4, 4)
	a := Build(m, 2, WestFirstDep(m))
	b := Build(m, 2, WestFirstDep(m))
	if a.NumChannels() != b.NumChannels() || a.NumEdges() != b.NumEdges() {
		t.Fatal("CDG construction not deterministic")
	}
	if a.NumChannels() != len(m.Links())*2 {
		t.Fatalf("channels = %d, want %d", a.NumChannels(), len(m.Links())*2)
	}
}

func TestJellyfishAdaptiveCyclic(t *testing.T) {
	rng := newRand(11)
	j, err := topology.NewJellyfish(12, 1, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(j, 1, MinAdaptiveDep(j))
	if g.Acyclic() {
		t.Fatal("random-graph adaptive routing should be cyclic (the paper's motivation for SPIN)")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
