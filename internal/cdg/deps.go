package cdg

import (
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// XYDep is the dependency function of dimension-ordered mesh routing.
func XYDep(m *topology.Mesh) DependencyFunc {
	return func(r, _, _, dst int) []Request {
		return []Request{{Port: routing.XYPort(m, r, dst), VCMask: sim.AllVCs}}
	}
}

// WestFirstDep is the dependency function of west-first turn-model
// routing: every legal adaptive choice becomes an edge.
func WestFirstDep(m *topology.Mesh) DependencyFunc {
	return func(r, _, _, dst int) []Request {
		var reqs []Request
		for _, p := range routing.WestFirstPorts(m, r, dst, nil) {
			reqs = append(reqs, Request{Port: p, VCMask: sim.AllVCs})
		}
		return reqs
	}
}

// MinAdaptiveDep is the dependency function of fully-adaptive minimal
// routing with unrestricted VC use — the configuration SPIN makes legal.
func MinAdaptiveDep(topo topology.Topology) DependencyFunc {
	return func(r, _, _, dst int) []Request {
		var reqs []Request
		for _, p := range topo.MinimalPorts(r, dst) {
			reqs = append(reqs, Request{Port: p, VCMask: sim.AllVCs})
		}
		return reqs
	}
}

// EscapeDep is the Duato escape-VC configuration: adaptive requests over
// the regular VCs (classes 1..vcs-1) plus a dimension-ordered escape
// request on VC 0, from any held VC.
func EscapeDep(m *topology.Mesh, vcs int) DependencyFunc {
	regular := (uint32(1)<<uint(vcs) - 1) &^ 1
	return func(r, _, _, dst int) []Request {
		var reqs []Request
		for _, p := range m.MinimalPorts(r, dst) {
			reqs = append(reqs, Request{Port: p, VCMask: regular})
		}
		reqs = append(reqs, Request{Port: routing.XYPort(m, r, dst), VCMask: 1})
		return reqs
	}
}

// EscapeSubgraphDep restricts EscapeDep to the escape network alone
// (VC 0, dimension-ordered): Duato's condition requires exactly this
// sub-CDG to be acyclic.
func EscapeSubgraphDep(m *topology.Mesh) DependencyFunc {
	return func(r, _, held, dst int) []Request {
		if held > 0 {
			return nil
		}
		return []Request{{Port: routing.XYPort(m, r, dst), VCMask: 1}}
	}
}

// TorusDORDep is dimension-ordered routing on a torus, taking the
// shorter wraparound direction per dimension. With one VC its CDG is
// cyclic around each ring — the classic motivation for bubble flow
// control and dateline VCs.
func TorusDORDep(m *topology.Mesh) DependencyFunc {
	return func(r, _, _, dst int) []Request {
		cx, cy := m.Coords(r)
		dx, dy := m.Coords(dst)
		var port int
		switch {
		case cx != dx:
			east := ((dx - cx) + m.X) % m.X
			if east <= m.X-east {
				port = topology.MeshPort(topology.East)
			} else {
				port = topology.MeshPort(topology.West)
			}
		case cy != dy:
			north := ((dy - cy) + m.Y) % m.Y
			if north <= m.Y-north {
				port = topology.MeshPort(topology.North)
			} else {
				port = topology.MeshPort(topology.South)
			}
		default:
			return nil
		}
		return []Request{{Port: port, VCMask: sim.AllVCs}}
	}
}

// DflyLadderDep is the dragonfly Dally VC ladder: a packet in VC class k
// has crossed k global channels; it moves to VC k on local hops and VC
// k+1 across global channels, which orders channel acquisition and makes
// the extended CDG acyclic.
func DflyLadderDep(d *topology.Dragonfly, vcs int) DependencyFunc {
	return func(r, inPort, held, dst int) []Request {
		// The VC class climbs when the held channel is a global one (the
		// packet's global-hop count incremented on traversal).
		cls := held
		if cls < 0 {
			cls = 0
		}
		if inPort >= 0 && d.IsGlobalPort(inPort) {
			cls++
		}
		if cls >= vcs {
			return nil
		}
		mask := uint32(1) << uint(cls)
		var reqs []Request
		gd := d.Group(dst)
		if d.Group(r) == gd {
			if r != dst {
				reqs = append(reqs, Request{Port: d.LocalPortTo(r, dst), VCMask: mask})
			}
			return reqs
		}
		if globals := d.GlobalPortsTo(r, gd); len(globals) > 0 {
			for _, p := range globals {
				reqs = append(reqs, Request{Port: p, VCMask: mask})
			}
			return reqs
		}
		// Pre-global local hop: only taken straight out of injection (a
		// packet already holding a channel at a router without the global
		// link cannot occur under canonical minimal routing).
		if inPort < 0 {
			for _, p := range d.CanonicalMinimalPorts(r, dst) {
				reqs = append(reqs, Request{Port: p, VCMask: mask})
			}
		}
		return reqs
	}
}

// DflyFreeDep is dragonfly minimal routing with unrestricted VC use (the
// UGAL+SPIN configuration): cyclic, hence needs recovery.
func DflyFreeDep(d *topology.Dragonfly) DependencyFunc {
	return MinAdaptiveDep(d)
}
