// Package cdg builds and analyses channel dependency graphs (Dally &
// Seitz). A CDG node is a virtual channel class (link × VC); an edge u→v
// exists when some packet can hold u while requesting v. Dally's theorem:
// a routing function is deadlock-free on a network if its CDG is acyclic.
// Duato's extension: it suffices that an escape sub-network's CDG is
// acyclic and always reachable.
//
// The package verifies the paper's baselines mechanically: XY and
// West-first are acyclic, fully-adaptive minimal routing is cyclic (hence
// needs SPIN), the escape-VC configuration has an acyclic escape
// sub-graph, and the dragonfly VC ladder is acyclic while free VC use is
// not.
package cdg

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Channel identifies a CDG node: a directed link (by index into
// Topology.Links()) and a VC class on it.
type Channel struct {
	Link int
	VC   int
}

// Graph is a channel dependency graph.
type Graph struct {
	topo     topology.Topology
	vcs      int
	channels []Channel
	index    map[Channel]int
	adj      [][]int
}

// DependencyFunc enumerates, for a packet that occupies VC class heldVC on
// the link arriving at router r via input port inPort with destination
// dst, the (outPort, vcMask) pairs it may request next. Injection is
// modelled with inPort = -1 and heldVC = -1. It mirrors
// sim.RoutingAlgorithm at the level of static analysis: implementations
// must enumerate every choice the dynamic algorithm could make.
type DependencyFunc func(r, inPort, heldVC, dst int) []Request

// Request names an output port and the admissible VC classes there.
type Request struct {
	Port   int
	VCMask uint32
}

// Build constructs the CDG for a topology with vcs VC classes per link
// under the given dependency function. For every destination it traverses
// exactly the (channel, VC-class) states packets headed there can reach —
// dependencies that no real route produces (e.g. an eastbound XY channel
// "requesting" a westward turn) are never added, so the analysis is exact
// for incremental routing functions.
func Build(topo topology.Topology, vcs int, dep DependencyFunc) *Graph {
	g := &Graph{topo: topo, vcs: vcs, index: map[Channel]int{}}
	links := topo.Links()
	for li := range links {
		for v := 0; v < vcs; v++ {
			c := Channel{Link: li, VC: v}
			g.index[c] = len(g.channels)
			g.channels = append(g.channels, c)
		}
	}
	g.adj = make([][]int, len(g.channels))
	edge := map[[2]int]bool{}
	// linkAt[(r, p)] is the index of the link leaving router r via port p.
	linkAt := make(map[[2]int]int)
	for li, l := range links {
		linkAt[[2]int{l.Src, l.SrcPort}] = li
	}
	routers := topo.NumRouters()
	visited := make([]bool, len(g.channels))
	var stack []int
	addState := func(r int, req Request) {
		nli, ok := linkAt[[2]int{r, req.Port}]
		if !ok {
			return
		}
		for v := 0; v < vcs; v++ {
			if req.VCMask&(1<<uint(v)) == 0 {
				continue
			}
			n := g.index[Channel{Link: nli, VC: v}]
			if !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	for dst := 0; dst < routers; dst++ {
		for i := range visited {
			visited[i] = false
		}
		stack = stack[:0]
		// Seed with injection at every source.
		for src := 0; src < routers; src++ {
			if src == dst {
				continue
			}
			for _, req := range dep(src, -1, -1, dst) {
				addState(src, req)
			}
		}
		// Traverse held states, recording channel-to-channel edges.
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := g.channels[u]
			l := links[c.Link]
			r := l.Dst
			if r == dst {
				continue // ejection releases the channel
			}
			for _, req := range dep(r, l.DstPort, c.VC, dst) {
				nli, ok := linkAt[[2]int{r, req.Port}]
				if !ok {
					continue
				}
				for v := 0; v < vcs; v++ {
					if req.VCMask&(1<<uint(v)) == 0 {
						continue
					}
					w := g.index[Channel{Link: nli, VC: v}]
					if !edge[[2]int{u, w}] {
						edge[[2]int{u, w}] = true
						g.adj[u] = append(g.adj[u], w)
					}
					if !visited[w] {
						visited[w] = true
						stack = append(stack, w)
					}
				}
			}
		}
	}
	for _, a := range g.adj {
		sort.Ints(a)
	}
	return g
}

// NumChannels reports the CDG node count.
func (g *Graph) NumChannels() int { return len(g.channels) }

// NumEdges reports the CDG edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// Cycles returns the non-trivial strongly connected components of the
// CDG (each contains at least one dependency cycle), as channel lists.
// An empty result proves the routing deadlock-free by Dally's theorem.
func (g *Graph) Cycles() [][]Channel {
	sccs := g.tarjan()
	var out [][]Channel
	for _, scc := range sccs {
		if len(scc) > 1 {
			chs := make([]Channel, len(scc))
			for i, n := range scc {
				chs[i] = g.channels[n]
			}
			out = append(out, chs)
			continue
		}
		// Single node with a self-loop is also a cycle.
		n := scc[0]
		for _, w := range g.adj[n] {
			if w == n {
				out = append(out, []Channel{g.channels[n]})
				break
			}
		}
	}
	return out
}

// Acyclic reports whether the CDG has no dependency cycles.
func (g *Graph) Acyclic() bool { return len(g.Cycles()) == 0 }

// tarjan computes strongly connected components iteratively.
func (g *Graph) tarjan() [][]int {
	n := len(g.adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		sccs    [][]int
		counter int
	)
	type frame struct {
		node, edge int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(g.adj[f.node]) {
				w := g.adj[f.node][f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[node] < low[parent] {
					low[parent] = low[node]
				}
			}
			if low[node] == index[node] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// Describe summarises the analysis for reports.
func (g *Graph) Describe() string {
	cycles := g.Cycles()
	if len(cycles) == 0 {
		return fmt.Sprintf("CDG: %d channels, %d edges, acyclic (Dally-deadlock-free)", g.NumChannels(), g.NumEdges())
	}
	largest := 0
	for _, c := range cycles {
		if len(c) > largest {
			largest = len(c)
		}
	}
	return fmt.Sprintf("CDG: %d channels, %d edges, %d cyclic component(s), largest %d channels",
		g.NumChannels(), g.NumEdges(), len(cycles), largest)
}
