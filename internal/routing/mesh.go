package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// XY is dimension-ordered mesh routing: correct X first, then Y. Its
// channel dependency graph is acyclic, so it is deadlock-free with any
// number of VCs (Dally's theory, fully restricted).
type XY struct {
	sim.BaseRouting
	Mesh *topology.Mesh

	tbl []uint8 // lazily built n×n dimension-ordered port table
}

// Name implements sim.RoutingAlgorithm.
func (x *XY) Name() string { return "xy" }

// Route implements sim.RoutingAlgorithm.
func (x *XY) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	if x.tbl == nil {
		x.tbl = buildXYTable(x.Mesh)
	}
	port := int(x.tbl[r.ID*x.Mesh.NumRouters()+p.RouteDst()])
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// buildXYTable precomputes xyPort for every (cur, dst) pair.
func buildXYTable(m *topology.Mesh) []uint8 {
	n := m.NumRouters()
	tbl := make([]uint8, n*n)
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			tbl[cur*n+dst] = uint8(xyPort(m, cur, dst))
		}
	}
	return tbl
}

// XYPort computes the dimension-ordered output port from cur toward dst.
// It is exported for static CDG analysis (internal/cdg).
func XYPort(m *topology.Mesh, cur, dst int) int { return xyPort(m, cur, dst) }

// WestFirstPorts appends the west-first-legal minimal output ports from
// cur toward dst to buf. Exported for static CDG analysis.
func WestFirstPorts(m *topology.Mesh, cur, dst int, buf []int) []int {
	return westFirstPorts(m, cur, dst, buf)
}

// xyPort computes the dimension-ordered output port from cur toward dst.
func xyPort(m *topology.Mesh, cur, dst int) int {
	cx, cy := m.Coords(cur)
	dx, dy := m.Coords(dst)
	switch {
	case dx > cx:
		return topology.MeshPort(topology.East)
	case dx < cx:
		return topology.MeshPort(topology.West)
	case dy > cy:
		return topology.MeshPort(topology.North)
	default:
		return topology.MeshPort(topology.South)
	}
}

// WestFirst is the turn-model partially-adaptive mesh routing: a packet
// whose destination lies to the west must travel west first; all other
// packets route adaptively among their minimal directions (none of which
// can ever be west again). The resulting CDG is acyclic.
type WestFirst struct {
	sim.BaseRouting
	Mesh *topology.Mesh

	tbl     *portTable // lazily built west-first port sets
	scratch []int
}

// Name implements sim.RoutingAlgorithm.
func (w *WestFirst) Name() string { return "westfirst" }

// Route implements sim.RoutingAlgorithm.
func (w *WestFirst) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	if w.tbl == nil {
		w.tbl = buildPortTable(w.Mesh.NumRouters(), func(cur, dst int) []int {
			return westFirstPorts(w.Mesh, cur, dst, nil)
		})
	}
	w.scratch = w.tbl.appendPorts(w.scratch[:0], r.ID, p.RouteDst())
	ports := w.scratch
	mustPorts(w.Name(), ports, r.ID, p.RouteDst())
	port := pickAdaptive(r, ports, p.VNet, sim.AllVCs, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// westFirstPorts appends the west-first-legal minimal ports to buf.
func westFirstPorts(m *topology.Mesh, cur, dst int, buf []int) []int {
	cx, cy := m.Coords(cur)
	dx, dy := m.Coords(dst)
	if dx < cx {
		return append(buf, topology.MeshPort(topology.West))
	}
	if dx > cx {
		buf = append(buf, topology.MeshPort(topology.East))
	}
	if dy > cy {
		buf = append(buf, topology.MeshPort(topology.North))
	}
	if dy < cy {
		buf = append(buf, topology.MeshPort(topology.South))
	}
	return buf
}

// MinAdaptive is topology-agnostic fully-adaptive minimal routing with the
// FAvORS selection function and no VC restriction. It is FAvORS-Min when
// run with one VC; it has a cyclic CDG and therefore requires SPIN (or
// another recovery scheme) for deadlock freedom.
type MinAdaptive struct {
	sim.BaseRouting
	Topo topology.Topology
	// RoutingName lets configurations label the algorithm (e.g.
	// "favors_min"); empty means "min_adaptive".
	RoutingName string

	into    func([]int, int, int) []int
	scratch []int
}

// Name implements sim.RoutingAlgorithm.
func (a *MinAdaptive) Name() string {
	if a.RoutingName != "" {
		return a.RoutingName
	}
	return "min_adaptive"
}

// Route implements sim.RoutingAlgorithm.
func (a *MinAdaptive) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	if a.into == nil {
		a.into = minimalSource(a.Topo)
	}
	a.scratch = a.into(a.scratch[:0], r.ID, p.RouteDst())
	ports := a.scratch
	mustPorts(a.Name(), ports, r.ID, p.RouteDst())
	port := pickAdaptive(r, ports, p.VNet, sim.AllVCs, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// EscapeVC is Duato-theory adaptive routing for meshes: VC 0 of each vnet
// is the escape channel, routed with dimension order (an acyclic escape
// sub-network); the remaining VCs route fully adaptively with no turn
// restriction. A blocked packet always has the escape path available, so
// the configuration is deadlock-free by Duato's theorem.
type EscapeVC struct {
	sim.BaseRouting
	Mesh *topology.Mesh
	// VCs is the total VCs per vnet (must be >= 2: one escape + regulars).
	VCs int

	xyTbl   []uint8
	scratch []int
}

// Name implements sim.RoutingAlgorithm.
func (e *EscapeVC) Name() string { return "escape_vc" }

// regularMask covers VCs 1..VCs-1; escapeMask covers VC 0.
func (e *EscapeVC) regularMask() uint32 {
	return (uint32(1)<<uint(e.VCs) - 1) &^ 1
}

// Route implements sim.RoutingAlgorithm.
func (e *EscapeVC) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	if e.xyTbl == nil {
		e.xyTbl = buildXYTable(e.Mesh)
	}
	dst := p.RouteDst()
	e.scratch = e.Mesh.MinimalPortsInto(e.scratch[:0], r.ID, dst)
	ports := e.scratch
	mustPorts(e.Name(), ports, r.ID, dst)
	adaptive := pickAdaptive(r, ports, p.VNet, e.regularMask(), p.Length)
	buf = append(buf, sim.PortRequest{Port: adaptive, VCMask: e.regularMask()})
	// Escape request: dimension-ordered port, escape VC only.
	escape := int(e.xyTbl[r.ID*e.Mesh.NumRouters()+dst])
	buf = append(buf, sim.PortRequest{Port: escape, VCMask: 1})
	return buf
}
