package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// XY is dimension-ordered mesh routing: correct X first, then Y. Its
// channel dependency graph is acyclic, so it is deadlock-free with any
// number of VCs (Dally's theory, fully restricted).
type XY struct {
	sim.BaseRouting
	Mesh *topology.Mesh
}

// Name implements sim.RoutingAlgorithm.
func (x *XY) Name() string { return "xy" }

// Route implements sim.RoutingAlgorithm.
func (x *XY) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	port := xyPort(x.Mesh, r.ID, p.RouteDst())
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// XYPort computes the dimension-ordered output port from cur toward dst.
// It is exported for static CDG analysis (internal/cdg).
func XYPort(m *topology.Mesh, cur, dst int) int { return xyPort(m, cur, dst) }

// WestFirstPorts appends the west-first-legal minimal output ports from
// cur toward dst to buf. Exported for static CDG analysis.
func WestFirstPorts(m *topology.Mesh, cur, dst int, buf []int) []int {
	return westFirstPorts(m, cur, dst, buf)
}

// xyPort computes the dimension-ordered output port from cur toward dst.
func xyPort(m *topology.Mesh, cur, dst int) int {
	cx, cy := m.Coords(cur)
	dx, dy := m.Coords(dst)
	switch {
	case dx > cx:
		return topology.MeshPort(topology.East)
	case dx < cx:
		return topology.MeshPort(topology.West)
	case dy > cy:
		return topology.MeshPort(topology.North)
	default:
		return topology.MeshPort(topology.South)
	}
}

// WestFirst is the turn-model partially-adaptive mesh routing: a packet
// whose destination lies to the west must travel west first; all other
// packets route adaptively among their minimal directions (none of which
// can ever be west again). The resulting CDG is acyclic.
type WestFirst struct {
	sim.BaseRouting
	Mesh *topology.Mesh
}

// Name implements sim.RoutingAlgorithm.
func (w *WestFirst) Name() string { return "westfirst" }

// Route implements sim.RoutingAlgorithm.
func (w *WestFirst) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	ports := westFirstPorts(w.Mesh, r.ID, p.RouteDst(), nil)
	mustPorts(w.Name(), ports, r.ID, p.RouteDst())
	port := pickAdaptive(r, ports, p.VNet, sim.AllVCs, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// westFirstPorts appends the west-first-legal minimal ports to buf.
func westFirstPorts(m *topology.Mesh, cur, dst int, buf []int) []int {
	cx, cy := m.Coords(cur)
	dx, dy := m.Coords(dst)
	if dx < cx {
		return append(buf, topology.MeshPort(topology.West))
	}
	if dx > cx {
		buf = append(buf, topology.MeshPort(topology.East))
	}
	if dy > cy {
		buf = append(buf, topology.MeshPort(topology.North))
	}
	if dy < cy {
		buf = append(buf, topology.MeshPort(topology.South))
	}
	return buf
}

// MinAdaptive is topology-agnostic fully-adaptive minimal routing with the
// FAvORS selection function and no VC restriction. It is FAvORS-Min when
// run with one VC; it has a cyclic CDG and therefore requires SPIN (or
// another recovery scheme) for deadlock freedom.
type MinAdaptive struct {
	sim.BaseRouting
	Topo topology.Topology
	// RoutingName lets configurations label the algorithm (e.g.
	// "favors_min"); empty means "min_adaptive".
	RoutingName string
}

// Name implements sim.RoutingAlgorithm.
func (a *MinAdaptive) Name() string {
	if a.RoutingName != "" {
		return a.RoutingName
	}
	return "min_adaptive"
}

// Route implements sim.RoutingAlgorithm.
func (a *MinAdaptive) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	ports := a.Topo.MinimalPorts(r.ID, p.RouteDst())
	mustPorts(a.Name(), ports, r.ID, p.RouteDst())
	port := pickAdaptive(r, ports, p.VNet, sim.AllVCs, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// EscapeVC is Duato-theory adaptive routing for meshes: VC 0 of each vnet
// is the escape channel, routed with dimension order (an acyclic escape
// sub-network); the remaining VCs route fully adaptively with no turn
// restriction. A blocked packet always has the escape path available, so
// the configuration is deadlock-free by Duato's theorem.
type EscapeVC struct {
	sim.BaseRouting
	Mesh *topology.Mesh
	// VCs is the total VCs per vnet (must be >= 2: one escape + regulars).
	VCs int
}

// Name implements sim.RoutingAlgorithm.
func (e *EscapeVC) Name() string { return "escape_vc" }

// regularMask covers VCs 1..VCs-1; escapeMask covers VC 0.
func (e *EscapeVC) regularMask() uint32 {
	return (uint32(1)<<uint(e.VCs) - 1) &^ 1
}

// Route implements sim.RoutingAlgorithm.
func (e *EscapeVC) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	dst := p.RouteDst()
	ports := e.Mesh.MinimalPorts(r.ID, dst)
	mustPorts(e.Name(), ports, r.ID, dst)
	adaptive := pickAdaptive(r, ports, p.VNet, e.regularMask(), p.Length)
	buf = append(buf, sim.PortRequest{Port: adaptive, VCMask: e.regularMask()})
	// Escape request: dimension-ordered port, escape VC only.
	buf = append(buf, sim.PortRequest{Port: xyPort(e.Mesh, r.ID, dst), VCMask: 1})
	return buf
}
