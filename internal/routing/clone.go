package routing

import "repro/internal/sim"

// CloneForShard implementations for the sharded cycle engine: each clone
// shares the instance's precomputed lookup tables (read-only after an
// eager build here — a lazy build inside Route would race across shards)
// and carries private scratch buffers. Table (test-only explicit routing)
// deliberately has no clone; networks using it run serial.

// CloneForShard implements sim.ShardCloner.
func (x *XY) CloneForShard() sim.RoutingAlgorithm {
	if x.tbl == nil {
		x.tbl = buildXYTable(x.Mesh)
	}
	c := *x
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (w *WestFirst) CloneForShard() sim.RoutingAlgorithm {
	if w.tbl == nil {
		w.tbl = buildPortTable(w.Mesh.NumRouters(), func(cur, dst int) []int {
			return westFirstPorts(w.Mesh, cur, dst, nil)
		})
	}
	c := *w
	c.scratch = nil
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (a *MinAdaptive) CloneForShard() sim.RoutingAlgorithm {
	if a.into == nil {
		a.into = minimalSource(a.Topo)
	}
	c := *a
	c.scratch = nil
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (e *EscapeVC) CloneForShard() sim.RoutingAlgorithm {
	if e.xyTbl == nil {
		e.xyTbl = buildXYTable(e.Mesh)
	}
	c := *e
	c.scratch = nil
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (d *DflyMinimal) CloneForShard() sim.RoutingAlgorithm {
	if d.VCLadder && d.tbl == nil {
		d.tbl = canonicalPortTable(d.Dfly)
	}
	c := *d
	c.scratch = nil
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (u *UGAL) CloneForShard() sim.RoutingAlgorithm {
	if u.VCLadder && u.tbl == nil {
		u.tbl = canonicalPortTable(u.Dfly)
	}
	c := *u
	c.scratch = nil
	c.vcBuf = nil
	return &c
}

// CloneForShard implements sim.ShardCloner.
func (f *FAvORS) CloneForShard() sim.RoutingAlgorithm {
	if f.into == nil {
		f.into = minimalSource(f.Topo)
	}
	c := *f
	c.scratch = nil
	c.scratch2 = nil
	return &c
}
