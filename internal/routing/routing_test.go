package routing_test

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func run(t *testing.T, topo topology.Topology, alg sim.RoutingAlgorithm, vcs int, pattern string, rate float64, cycles int64) *sim.Network {
	t.Helper()
	pat, err := traffic.ByName(pattern, topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   topo,
		Routing:    alg,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: rate},
		VCsPerVNet: vcs,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(cycles)
	return n
}

func TestXYTakesManhattanPaths(t *testing.T) {
	m, _ := topology.NewMesh(6, 6, 1)
	n := run(t, m, &routing.XY{Mesh: m}, 1, "uniform_random", 0.1, 3000)
	if !n.Drain(20000) {
		t.Fatal("xy failed to drain")
	}
	if n.Stats().MisrouteSum != 0 {
		t.Fatalf("XY misrouted %d times", n.Stats().MisrouteSum)
	}
	// Average hops under uniform random on a 6x6 mesh is ~4 (2*(k+1)/3-ish
	// per dimension).
	if h := n.Stats().AvgHops(); h < 3 || h > 5 {
		t.Fatalf("avg hops %.2f out of range", h)
	}
}

func TestWestFirstNeverTurnsToWest(t *testing.T) {
	m, _ := topology.NewMesh(6, 6, 1)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.WestFirst{Mesh: m},
		VCsPerVNet: 1,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A packet destined east must never use a west port; verify the port
	// helper directly over all pairs.
	for cur := 0; cur < 36; cur++ {
		for dst := 0; dst < 36; dst++ {
			if cur == dst {
				continue
			}
			cx, _ := m.Coords(cur)
			dx, _ := m.Coords(dst)
			ports := routing.WestFirstPorts(m, cur, dst, nil)
			if len(ports) == 0 {
				t.Fatalf("no west-first ports %d->%d", cur, dst)
			}
			for _, p := range ports {
				if dx >= cx && p == topology.MeshPort(topology.West) {
					t.Fatalf("west turn offered for eastbound packet %d->%d", cur, dst)
				}
			}
			if dx < cx && (len(ports) != 1 || ports[0] != topology.MeshPort(topology.West)) {
				t.Fatalf("westbound packet %d->%d must go west first, got %v", cur, dst, ports)
			}
		}
	}
	_ = n
}

func TestMinAdaptiveStaysMinimal(t *testing.T) {
	m, _ := topology.NewMesh(6, 6, 1)
	n := run(t, m, &routing.MinAdaptive{Topo: m}, 2, "transpose", 0.15, 3000)
	if !n.Drain(30000) {
		t.Skip("low-rate adaptive run did not fully drain (rare cycle without recovery scheme)")
	}
	if n.Stats().MisrouteSum != 0 {
		t.Fatalf("minimal adaptive misrouted %d times", n.Stats().MisrouteSum)
	}
}

func TestEscapeVCDeadlockFreeUnderStress(t *testing.T) {
	m, _ := topology.NewMesh(5, 5, 1)
	n := run(t, m, &routing.EscapeVC{Mesh: m, VCs: 2}, 2, "transpose", 0.6, 4000)
	if !n.Drain(200000) {
		t.Fatalf("escape-vc mesh failed to drain: %d in flight", n.InFlight())
	}
}

func TestUGALLadderDeliversWithoutRecovery(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := run(t, d, &routing.UGAL{Dfly: d, VCLadder: true, VCs: 3}, 3, "uniform_random", 0.3, 4000)
	if !n.Drain(100000) {
		t.Fatalf("UGAL-ladder dragonfly failed to drain: %d in flight", n.InFlight())
	}
	if n.Stats().Ejected == 0 {
		t.Fatal("no deliveries")
	}
}

func TestUGALGoesNonMinimalUnderAdversarialLoad(t *testing.T) {
	d, _ := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	n := run(t, d, &routing.UGAL{Dfly: d, VCLadder: true, VCs: 3}, 3, "tornado", 0.5, 6000)
	if n.Stats().MisrouteSum == 0 {
		t.Fatal("UGAL never took a Valiant path under tornado traffic")
	}
	if !n.Drain(200000) {
		t.Fatal("UGAL tornado run failed to drain")
	}
}

func TestFAvORSMisroutesAtMostOnce(t *testing.T) {
	m, _ := topology.NewMesh(5, 5, 1)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.FAvORS{Topo: m, NonMinimal: true},
		VCsPerVNet: 1,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxMis := 0
	n.SetEjectHook(func(p *sim.Packet) {
		if p.Misroutes > maxMis {
			maxMis = p.Misroutes
		}
	})
	pat := traffic.Uniform(25)
	rng := n.RNG()
	for c := 0; c < 4000; c++ {
		if c < 2000 {
			for src := 0; src < 25; src++ {
				if rng.Float64() < 0.1 {
					d := pat.Dest(src, rng)
					n.InjectPacket(src, sim.PacketSpec{Dst: d, Length: 1})
				}
			}
		}
		n.Step()
	}
	// One Valiant detour adds at most a bounded number of non-reducing
	// hops: each phase is minimal, so misroutes only accrue while heading
	// to the intermediate router.
	if maxMis > 8 {
		t.Fatalf("packet misrouted %d times; FAvORS must bound detours", maxMis)
	}
}

func TestTableRoutingPanicsOnMissingEntry(t *testing.T) {
	m, _ := topology.NewMesh(2, 2, 1)
	tab := &routing.Table{}
	tab.Set(0, 3, topology.MeshPort(topology.East))
	n, err := sim.NewNetwork(sim.Config{Topology: m, Routing: tab, VCsPerVNet: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing table entry should panic")
		}
	}()
	n.InjectPacket(1, sim.PacketSpec{Dst: 2, Length: 1})
	n.Run(10)
}

func TestDflyMinimalCanonicalNeverTwoGlobals(t *testing.T) {
	d, _ := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   d,
		Routing:    &routing.DflyMinimal{Dfly: d, VCLadder: true, VCs: 2},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(d.NumTerminals()), Rate: 0.15},
		VCsPerVNet: 2,
		Seed:       12,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.SetEjectHook(func(p *sim.Packet) {
		if p.GlobalHops > 1 {
			t.Fatalf("canonical minimal packet crossed %d global links", p.GlobalHops)
		}
	})
	n.Run(4000)
	if !n.Drain(50000) {
		t.Fatal("canonical dragonfly failed to drain")
	}
}
