package routing

import (
	"fmt"

	"repro/internal/sim"
)

// Table is explicit source-agnostic table routing: Ports[router][dst]
// names the single output port a packet for dst takes at router. Tests use
// it to construct exact buffer-dependency shapes (rings, overlapping
// cycles, figure-8 loops) that adaptive algorithms would route around.
type Table struct {
	sim.BaseRouting
	Ports map[int]map[int]int
	Label string
}

// Name implements sim.RoutingAlgorithm.
func (t *Table) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "table"
}

// Route implements sim.RoutingAlgorithm.
func (t *Table) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	dst := p.RouteDst()
	byDst, ok := t.Ports[r.ID]
	if !ok {
		panic(fmt.Sprintf("routing table: no entries at router %d", r.ID))
	}
	port, ok := byDst[dst]
	if !ok {
		panic(fmt.Sprintf("routing table: no entry at router %d for dst %d", r.ID, dst))
	}
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

// Set records that packets for dst leave router via port.
func (t *Table) Set(router, dst, port int) {
	if t.Ports == nil {
		t.Ports = map[int]map[int]int{}
	}
	if t.Ports[router] == nil {
		t.Ports[router] = map[int]int{}
	}
	t.Ports[router][dst] = port
}
