package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// tableInstances mirrors internal/topology's property-test spread: one
// entry per generated instance of every family. The equivalence tests
// below prove the precomputed routing tables reproduce the original
// per-flit computation on all of them, port for port and in order —
// order matters because adaptive selection draws from the RNG per
// candidate set, so a reordered (even if equal) set changes simulations.
func tableInstances(t *testing.T) map[string]topology.Topology {
	t.Helper()
	out := map[string]topology.Topology{}
	add := func(name string, topo topology.Topology, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = topo
	}
	for _, d := range []struct{ x, y int }{{2, 2}, {3, 3}, {4, 4}, {5, 3}, {8, 8}, {2, 7}} {
		m, err := topology.NewMesh(d.x, d.y, 1)
		add(fmt.Sprintf("mesh:%dx%d", d.x, d.y), m, err)
		if d.x > 2 || d.y > 2 {
			tr, err := topology.NewTorus(d.x, d.y, 1)
			add(fmt.Sprintf("torus:%dx%d", d.x, d.y), tr, err)
		}
	}
	for _, p := range []struct{ p, a, h, g int }{{1, 2, 1, 3}, {2, 4, 2, 9}} {
		df, err := topology.NewDragonfly(p.p, p.a, p.h, p.g, 1, 3)
		add(fmt.Sprintf("dragonfly:%d,%d,%d,%d", p.p, p.a, p.h, p.g), df, err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		j, err := topology.NewJellyfish(12, 2, 3, 1, rand.New(rand.NewSource(seed)))
		add(fmt.Sprintf("jellyfish:12,2,3/seed%d", seed), j, err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		im, err := topology.NewIrregularMesh(4, 4, 1, 3, rand.New(rand.NewSource(seed)))
		add(fmt.Sprintf("irregular:4x4:3/seed%d", seed), im, err)
	}
	ft, err := topology.NewFatTree(4, 2, 2, 1)
	add("fattree:4,2,2", ft, err)
	return out
}

// wantPorts normalises nil/empty for comparison against table output.
func wantPorts(ports []int) []int {
	if len(ports) == 0 {
		return []int{}
	}
	return ports
}

// TestMinimalSourceMatchesMinimalPorts: the zero-allocation accessor the
// routing algorithms use (MinimalPortsInto via minimalSource) returns
// exactly MinimalPorts on every pair of every instance.
func TestMinimalSourceMatchesMinimalPorts(t *testing.T) {
	for name, topo := range tableInstances(t) {
		t.Run(name, func(t *testing.T) {
			into := minimalSource(topo)
			var buf []int
			n := topo.NumRouters()
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					want := wantPorts(topo.MinimalPorts(r, dst))
					buf = into(buf[:0], r, dst)
					if !reflect.DeepEqual(wantPorts(buf), want) {
						t.Fatalf("(%d -> %d): into=%v, MinimalPorts=%v", r, dst, buf, want)
					}
				}
			}
		})
	}
}

// TestXYTableMatchesXYPort: the flat dimension-ordered table equals the
// per-hop geometry computation on every mesh pair.
func TestXYTableMatchesXYPort(t *testing.T) {
	for name, topo := range tableInstances(t) {
		m, ok := topo.(*topology.Mesh)
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			tbl := buildXYTable(m)
			n := m.NumRouters()
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					if got, want := int(tbl[r*n+dst]), xyPort(m, r, dst); got != want {
						t.Fatalf("(%d -> %d): table=%d, xyPort=%d", r, dst, got, want)
					}
				}
			}
		})
	}
}

// TestWestFirstTableMatchesDirect: the packed west-first port sets equal
// westFirstPorts, in order, on every mesh pair.
func TestWestFirstTableMatchesDirect(t *testing.T) {
	for name, topo := range tableInstances(t) {
		m, ok := topo.(*topology.Mesh)
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			tbl := buildPortTable(m.NumRouters(), func(cur, dst int) []int {
				return westFirstPorts(m, cur, dst, nil)
			})
			var buf []int
			n := m.NumRouters()
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					want := wantPorts(westFirstPorts(m, r, dst, nil))
					buf = tbl.appendPorts(buf[:0], r, dst)
					if !reflect.DeepEqual(wantPorts(buf), want) {
						t.Fatalf("(%d -> %d): table=%v, direct=%v", r, dst, buf, want)
					}
				}
			}
		})
	}
}

// TestCanonicalTableMatchesDirect: the dragonfly VC-ladder path table
// equals CanonicalMinimalPorts on every pair.
func TestCanonicalTableMatchesDirect(t *testing.T) {
	for name, topo := range tableInstances(t) {
		df, ok := topo.(*topology.Dragonfly)
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			tbl := canonicalPortTable(df)
			var buf []int
			n := df.NumRouters()
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					want := wantPorts(df.CanonicalMinimalPorts(r, dst))
					buf = tbl.appendPorts(buf[:0], r, dst)
					if !reflect.DeepEqual(wantPorts(buf), want) {
						t.Fatalf("(%d -> %d): table=%v, direct=%v", r, dst, buf, want)
					}
				}
			}
		})
	}
}
