// Package routing implements the routing algorithms evaluated in the SPIN
// paper: deterministic and turn-model mesh routing (XY, West-first),
// fully-adaptive minimal routing, Duato escape-VC routing, dragonfly
// minimal and UGAL routing, and the paper's FAvORS one-VC fully-adaptive
// algorithm (minimal and non-minimal variants).
//
// All algorithms implement sim.RoutingAlgorithm. Route is invoked once per
// router visit (as in Garnet), so adaptive algorithms bind their port
// choice to the congestion state observed on arrival.
package routing

import (
	"fmt"

	"repro/internal/sim"
)

// pickAdaptive chooses one output port from candidates using the FAvORS
// selection function: prefer a random port that has a free downstream VC
// (lightly loaded network); otherwise take the port whose downstream VCs
// have been active for the fewest cycles (least contended).
func pickAdaptive(r *sim.Router, ports []int, vnet int, mask uint32, length int) int {
	var free [8]int
	nfree := 0
	for _, p := range ports {
		if r.FreeVCAt(p, vnet, mask, length) {
			if nfree < len(free) {
				free[nfree] = p
				nfree++
			}
		}
	}
	if nfree > 0 {
		return free[r.RNG().Intn(nfree)]
	}
	best, bestT := ports[0], int64(1)<<62
	for _, p := range ports {
		if t := r.MinActiveTime(p, vnet, mask); t < bestT {
			best, bestT = p, t
		}
	}
	return best
}

func mustPorts(name string, ports []int, router, dst int) {
	if len(ports) == 0 {
		panic(fmt.Sprintf("routing %s: no ports from router %d toward %d", name, router, dst))
	}
}
