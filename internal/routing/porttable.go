package routing

import "repro/internal/topology"

// portTable is a precomputed per-(router, destination) output-port lookup:
// one flattened port list per ordered router pair, built once per routing
// instance from the algorithm's original per-hop computation. Route then
// reads the table instead of recomputing geometry for every head flit.
// Port ids are stored as uint8 (radices are far below 256) and appended in
// exactly the order the generating function produced them, so adaptive
// selection sees identical candidate sequences and consumes the RNG
// identically — the golden-determinism contract.
type portTable struct {
	n     int
	off   []int32
	ports []uint8
}

// buildPortTable evaluates f for every (router, dst) pair of an n-router
// topology and packs the results.
func buildPortTable(n int, f func(r, dst int) []int) *portTable {
	t := &portTable{n: n, off: make([]int32, n*n+1)}
	for r := 0; r < n; r++ {
		for dst := 0; dst < n; dst++ {
			for _, p := range f(r, dst) {
				t.ports = append(t.ports, uint8(p))
			}
			t.off[r*n+dst+1] = int32(len(t.ports))
		}
	}
	return t
}

// appendPorts appends the precomputed ports of (r, dst) to buf.
func (t *portTable) appendPorts(buf []int, r, dst int) []int {
	base := r*t.n + dst
	lo, hi := t.off[base], t.off[base+1]
	for _, p := range t.ports[lo:hi] {
		buf = append(buf, int(p))
	}
	return buf
}

// minimalInto is the zero-allocation minimal-port interface every Graph-
// backed topology provides.
type minimalInto interface {
	MinimalPortsInto(buf []int, r, dst int) []int
}

// minimalSource returns an appending MinimalPorts accessor for t: the
// topology's own precomputed table when available (all built-in
// topologies), otherwise a copying fallback around the allocating API.
func minimalSource(t topology.Topology) func(buf []int, r, dst int) []int {
	if g, ok := t.(minimalInto); ok {
		return g.MinimalPortsInto
	}
	return func(buf []int, r, dst int) []int {
		return append(buf, t.MinimalPorts(r, dst)...)
	}
}
