package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// FAvORS is the paper's Fully Adaptive One-VC Routing with Spin
// (Section V). The per-hop component is minimal adaptive routing with the
// free-VC / least-active-VC selection function (MinAdaptive implements
// exactly that); this type adds the non-minimal source decision:
//
// The source router first looks for a minimal first hop with a free VC.
// If none exists it considers one random intermediate router and compares
//
//	Hmin + tactive_min  >  Hnonmin + tactive_nonmin
//
// choosing the Valiant path when the inequality holds. The packet is
// misrouted at most once (p = 1), so SPIN's non-minimal resolution bound
// applies and the algorithm is livelock-free.
type FAvORS struct {
	Topo topology.Topology
	// NonMinimal enables the source-side Valiant decision (FAvORS-NMin);
	// false gives FAvORS-Min.
	NonMinimal bool

	into func([]int, int, int) []int
	// AtSource compares the minimal and Valiant port sets side by side, so
	// it needs two live buffers; Route reuses the first.
	scratch  []int
	scratch2 []int
}

// minInto lazily resolves the zero-allocation minimal-port accessor.
func (f *FAvORS) minInto() func([]int, int, int) []int {
	if f.into == nil {
		f.into = minimalSource(f.Topo)
	}
	return f.into
}

// Name implements sim.RoutingAlgorithm.
func (f *FAvORS) Name() string {
	if f.NonMinimal {
		return "favors_nmin"
	}
	return "favors_min"
}

// AtSource implements sim.RoutingAlgorithm.
func (f *FAvORS) AtSource(r *sim.Router, p *sim.Packet) {
	if !f.NonMinimal || p.SrcRouter == p.DstRouter {
		return
	}
	src, dst := p.SrcRouter, p.DstRouter
	f.scratch = f.minInto()(f.scratch[:0], src, dst)
	minPorts := f.scratch
	if len(minPorts) == 0 {
		return
	}
	// A free VC on some minimal first hop means a lightly loaded network:
	// route minimally.
	for _, port := range minPorts {
		if r.FreeVCAt(port, p.VNet, sim.AllVCs, p.Length) {
			return
		}
	}
	// Congested: consider one random intermediate node.
	mid := r.RNG().Intn(f.Topo.NumRouters())
	if mid == src || mid == dst {
		return
	}
	f.scratch2 = f.minInto()(f.scratch2[:0], src, mid)
	midPorts := f.scratch2
	if len(midPorts) == 0 {
		return
	}
	hMin := int64(f.Topo.Distance(src, dst))
	hNon := int64(f.Topo.Distance(src, mid) + f.Topo.Distance(mid, dst))
	tMin := minActiveOver(r, minPorts, p)
	tNon := minActiveOver(r, midPorts, p)
	if hMin+tMin > hNon+tNon {
		p.Intermediate = mid
	}
}

// minActiveOver reports the smallest downstream-VC active time over ports.
func minActiveOver(r *sim.Router, ports []int, p *sim.Packet) int64 {
	best := int64(1) << 62
	for _, port := range ports {
		if t := r.MinActiveTime(port, p.VNet, sim.AllVCs); t < best {
			best = t
		}
	}
	return best
}

// Route implements sim.RoutingAlgorithm: minimal adaptive toward the
// phase-local destination with the FAvORS selection function.
func (f *FAvORS) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	dst := p.RouteDst()
	f.scratch = f.minInto()(f.scratch[:0], r.ID, dst)
	ports := f.scratch
	mustPorts(f.Name(), ports, r.ID, dst)
	port := pickAdaptive(r, ports, p.VNet, sim.AllVCs, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}
