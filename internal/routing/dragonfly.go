package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// DflyMinimal is minimal adaptive dragonfly routing (local hop, global
// hop, local hop). VCPolicy selects the deadlock-freedom style: with
// VCLadder the Dally global-hop ladder restricts VC use (VC index =
// global hops taken, the classic avoidance scheme); with VCFree packets
// use any VC and rely on a recovery scheme such as SPIN.
type DflyMinimal struct {
	sim.BaseRouting
	Dfly     *topology.Dragonfly
	VCLadder bool
	VCs      int // VCs per vnet, needed for ladder masks

	tbl     *portTable // lazily built canonical paths (ladder mode only)
	scratch []int
}

// Name implements sim.RoutingAlgorithm.
func (d *DflyMinimal) Name() string {
	if d.VCLadder {
		return "dfly_min_ladder"
	}
	return "dfly_min"
}

// ladderMask maps a packet's global-hop count to its admissible VC under
// Dally's theory: the VC index must equal the number of global channels
// already crossed, which makes the extended CDG acyclic.
func ladderMask(globalHops, vcs int) uint32 {
	k := globalHops
	if k >= vcs {
		k = vcs - 1
	}
	return 1 << uint(k)
}

// minPorts picks the path model: the VC ladder requires canonical
// local-global-local minimal paths (a second global hop would outrun the
// ladder); free-VC configurations may use any BFS-minimal port. Both
// variants serve from precomputed tables; the result is valid until the
// next call on this instance.
func (d *DflyMinimal) minPorts(r, dst int) []int {
	if d.VCLadder {
		if d.tbl == nil {
			d.tbl = canonicalPortTable(d.Dfly)
		}
		d.scratch = d.tbl.appendPorts(d.scratch[:0], r, dst)
		return d.scratch
	}
	d.scratch = d.Dfly.MinimalPortsInto(d.scratch[:0], r, dst)
	return d.scratch
}

// canonicalPortTable precomputes CanonicalMinimalPorts for all pairs.
func canonicalPortTable(dfly *topology.Dragonfly) *portTable {
	return buildPortTable(dfly.NumRouters(), dfly.CanonicalMinimalPorts)
}

// Route implements sim.RoutingAlgorithm.
func (d *DflyMinimal) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	dst := p.RouteDst()
	ports := d.minPorts(r.ID, dst)
	mustPorts(d.Name(), ports, r.ID, dst)
	mask := sim.AllVCs
	if d.VCLadder {
		mask = ladderMask(p.GlobalHops, d.VCs)
	}
	port := pickAdaptive(r, ports, p.VNet, mask, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: mask})
}

// UGAL is the Universal Globally-Adaptive Load-balanced dragonfly routing:
// at the source the packet picks minimal or Valiant (via a random
// intermediate group) by comparing queue-weighted path lengths; en route
// it routes minimally toward the phase target. With VCLadder it uses the
// commercial Dally-style VC-per-global-hop discipline (3 VCs); with
// VCFree (UGAL+SPIN) packets use any free VC.
type UGAL struct {
	Dfly     *topology.Dragonfly
	VCLadder bool
	VCs      int

	tbl     *portTable // lazily built canonical paths (ladder mode only)
	scratch []int
	vcBuf   []*sim.VC
}

// Name implements sim.RoutingAlgorithm.
func (u *UGAL) Name() string {
	if u.VCLadder {
		return "ugal_ladder"
	}
	return "ugal_spin"
}

// AtSource implements sim.RoutingAlgorithm: the UGAL-L decision.
// Congestion is estimated from downstream VC occupancy on the candidate
// first hops, the in-hardware analogue of output-queue length.
func (u *UGAL) AtSource(r *sim.Router, p *sim.Packet) {
	src, dst := p.SrcRouter, p.DstRouter
	if src == dst {
		return
	}
	topo := u.Dfly
	hMin := topo.Distance(src, dst)
	qMin := u.portCongestion(r, u.minPorts(src, dst), p)
	// Candidate intermediate: a random router in a random other group
	// (Valiant over groups).
	g := topo.Group(src)
	gd := topo.Group(dst)
	mid := -1
	for try := 0; try < 4; try++ {
		cand := r.RNG().Intn(topo.NumRouters())
		cg := topo.Group(cand)
		if cg != g && cg != gd {
			mid = cand
			break
		}
	}
	if mid < 0 {
		return
	}
	hNon := topo.Distance(src, mid) + topo.Distance(mid, dst)
	qNon := u.portCongestion(r, u.minPorts(src, mid), p)
	// UGAL-L: go non-minimal when the queue-weighted minimal cost exceeds
	// the non-minimal one.
	if qMin*int64(hMin) > qNon*int64(hNon) {
		p.Intermediate = mid
	}
}

// portCongestion reports the minimum buffered-flit load over the
// candidate ports' downstream VCs.
func (u *UGAL) portCongestion(r *sim.Router, ports []int, p *sim.Packet) int64 {
	if len(ports) == 0 {
		return 1 << 30
	}
	mask := sim.AllVCs
	if u.VCLadder {
		mask = ladderMask(0, u.VCs)
	}
	best := int64(1) << 30
	for _, port := range ports {
		u.vcBuf = r.DownstreamVCs(port, p.VNet, mask, u.vcBuf[:0])
		var occ int64
		for _, vc := range u.vcBuf {
			occ += int64(vc.SnapLen())
		}
		if occ < best {
			best = occ
		}
	}
	return best
}

// minPorts mirrors DflyMinimal.minPorts for the UGAL phases. The result
// aliases the instance scratch buffer and is valid until the next call.
func (u *UGAL) minPorts(r, dst int) []int {
	if u.VCLadder {
		if u.tbl == nil {
			u.tbl = canonicalPortTable(u.Dfly)
		}
		u.scratch = u.tbl.appendPorts(u.scratch[:0], r, dst)
		return u.scratch
	}
	u.scratch = u.Dfly.MinimalPortsInto(u.scratch[:0], r, dst)
	return u.scratch
}

// Route implements sim.RoutingAlgorithm.
func (u *UGAL) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	// Valiant routing over groups: the misroute phase ends as soon as the
	// packet enters the intermediate *group*, not a specific router —
	// otherwise the path takes two consecutive intra-group hops there,
	// which creates intra-class local-channel cycles the VC ladder cannot
	// order away.
	if p.Intermediate >= 0 && p.Phase == 0 && u.Dfly.Group(r.ID) == u.Dfly.Group(p.Intermediate) {
		p.Phase = 1
	}
	dst := p.RouteDst()
	ports := u.minPorts(r.ID, dst)
	mustPorts(u.Name(), ports, r.ID, dst)
	mask := sim.AllVCs
	if u.VCLadder {
		mask = ladderMask(p.GlobalHops, u.VCs)
	}
	port := pickAdaptive(r, ports, p.VNet, mask, p.Length)
	return append(buf, sim.PortRequest{Port: port, VCMask: mask})
}
