package otrace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("a", 0)
	root := tr.StartRequest("request", "")
	tp := root.Traceparent()
	tid, sid, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", tp)
	}
	if tid != root.TraceID() || sid != root.SpanID() {
		t.Fatalf("parsed (%s,%s), want (%s,%s)", tid, sid, root.TraceID(), root.SpanID())
	}
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q not in 00-...-01 form", tp)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16) + "-01", // uppercase
		"00_" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // bad separator
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-0",  // short
	}
	for _, tp := range bad {
		if _, _, ok := ParseTraceparent(tp); ok {
			t.Errorf("ParseTraceparent(%q) accepted", tp)
		}
	}
}

func TestStartRequestAdoptsRemoteTrace(t *testing.T) {
	a := NewTracer("a", 0)
	b := NewTracer("b", 0)
	root := a.StartRequest("request", "")
	child := root.StartChild("proxy:b")
	remote := b.StartRequest("request", child.Traceparent())
	if remote.TraceID() != root.TraceID() {
		t.Fatalf("remote trace %s, want adopted %s", remote.TraceID(), root.TraceID())
	}
	remote.End()
	child.End()
	root.End()
	spans := b.Trace(root.TraceID())
	if len(spans) != 1 {
		t.Fatalf("node b recorded %d spans, want 1", len(spans))
	}
	if spans[0].Parent != child.SpanID() {
		t.Fatalf("remote root parent %s, want the proxy child %s", spans[0].Parent, child.SpanID())
	}
	if spans[0].Node != "b" {
		t.Fatalf("remote span node %q, want b", spans[0].Node)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer("n1", 0)
	root := tr.StartRequest("request", "")
	c1 := root.StartChild("decode")
	c1.End()
	c2 := root.StartChild("cache")
	c2.SetAttr("outcome", "miss")
	g := c2.StartChild("compute")
	g.End()
	c2.End()
	root.End()
	spans := tr.Trace(root.TraceID())
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["decode"].Parent != root.SpanID() || byName["cache"].Parent != root.SpanID() {
		t.Error("children do not parent to the root")
	}
	if byName["compute"].Parent != byName["cache"].SpanID {
		t.Error("grandchild does not parent to its child")
	}
	if byName["cache"].Attrs["outcome"] != "miss" {
		t.Errorf("cache attrs = %v, want outcome=miss", byName["cache"].Attrs)
	}
	for _, s := range spans {
		if s.Node != "n1" {
			t.Errorf("span %s node %q, want n1", s.Name, s.Node)
		}
		if s.Dur < 0 {
			t.Errorf("span %s negative duration %d", s.Name, s.Dur)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetMetricName("m")
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil span produced a non-nil child")
	}
	if s.TraceID() != "" || s.SpanID() != "" || s.Traceparent() != "" {
		t.Fatal("nil span reports non-empty IDs")
	}
	if _, ok := s.Snapshot(); ok {
		t.Fatal("nil span snapshot reported ok")
	}
	var tr *Tracer
	if sp := tr.StartRequest("r", ""); sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if tr.Trace("x") != nil || tr.Len() != 0 {
		t.Fatal("nil tracer reports traces")
	}
}

func TestTraceEviction(t *testing.T) {
	tr := NewTracer("a", 3)
	var ids []string
	for i := 0; i < 5; i++ {
		s := tr.StartRequest("request", "")
		s.End()
		ids = append(ids, s.TraceID())
	}
	if tr.Len() != 3 {
		t.Fatalf("tracer retains %d traces, want 3", tr.Len())
	}
	for _, old := range ids[:2] {
		if tr.Trace(old) != nil {
			t.Errorf("evicted trace %s still present", old)
		}
	}
	for _, recent := range ids[2:] {
		if tr.Trace(recent) == nil {
			t.Errorf("recent trace %s missing", recent)
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTracer("a", 0)
	tr.capSpans = 4
	root := tr.StartRequest("request", "")
	for i := 0; i < 10; i++ {
		root.StartChild(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	if n := len(tr.Trace(root.TraceID())); n != 4 {
		t.Fatalf("trace holds %d spans, want capped 4", n)
	}
	if d := tr.Dropped(root.TraceID()); d != 7 {
		t.Fatalf("dropped %d spans, want 7 (6 children + root)", d)
	}
}

func TestOnEndCallbackAndMetricName(t *testing.T) {
	tr := NewTracer("a", 0)
	var mu sync.Mutex
	got := map[string]int{}
	tr.OnEnd(func(d SpanData) {
		mu.Lock()
		got[d.MetricName()]++
		mu.Unlock()
	})
	root := tr.StartRequest("request", "")
	p := root.StartChild("proxy:node-b")
	p.SetMetricName("proxy")
	p.End()
	root.End()
	if got["proxy"] != 1 || got["request"] != 1 {
		t.Fatalf("OnEnd observed %v, want proxy:1 request:1", got)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer("a", 0)
	root := tr.StartRequest("request", "")
	root.End()
	root.End()
	if n := len(tr.Trace(root.TraceID())); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer("a", 0)
	root := tr.StartRequest("request", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild(fmt.Sprintf("c%d", i))
			c.SetAttr("i", fmt.Sprint(i))
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if n := len(tr.Trace(root.TraceID())); n != 17 {
		t.Fatalf("recorded %d spans, want 17", n)
	}
}

func TestValidTraceID(t *testing.T) {
	tr := NewTracer("a", 0)
	id := tr.StartRequest("r", "").TraceID()
	if !ValidTraceID(id) {
		t.Fatalf("minted trace ID %q fails validation", id)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("G", 32)} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) accepted", bad)
		}
	}
}
