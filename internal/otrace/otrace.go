// Package otrace is a lightweight distributed-tracing layer for the
// spind serving stack: spans with parent links and W3C-style
// traceparent identifiers, recorded into a bounded per-node ring so a
// request's whole tree — across fleet hops — can be fetched after the
// fact and merged into one timeline.
//
// The package is deliberately tiny: no clocks beyond time.Now, no
// sampling machinery, no wire protocol beyond the traceparent header
// (`00-<32 hex trace id>-<16 hex span id>-01`). Every Span method is
// nil-receiver safe, so call sites never guard on whether tracing is
// enabled — an untraced request simply carries a nil *Span all the way
// through.
package otrace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Traceparent format: version 00, 16-byte trace ID, 8-byte span ID,
// flags 01 (sampled). This is the W3C trace-context layout; only the
// fields the fleet needs are interpreted.
const (
	traceIDHexLen = 32
	spanIDHexLen  = 16
)

// ParseTraceparent extracts the trace and parent-span IDs from a
// traceparent header value. ok is false for anything malformed — an
// unparseable header means "start a fresh trace", never an error.
func ParseTraceparent(tp string) (traceID, spanID string, ok bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-yyyyyyyyyyyyyyyy-01
	if len(tp) != 2+1+traceIDHexLen+1+spanIDHexLen+1+2 {
		return "", "", false
	}
	if tp[2] != '-' || tp[3+traceIDHexLen] != '-' || tp[4+traceIDHexLen+spanIDHexLen] != '-' {
		return "", "", false
	}
	traceID = tp[3 : 3+traceIDHexLen]
	spanID = tp[4+traceIDHexLen : 4+traceIDHexLen+spanIDHexLen]
	if !isLowerHex(tp[:2]) || !isLowerHex(traceID) || !isLowerHex(spanID) {
		return "", "", false
	}
	if allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

// FormatTraceparent renders a traceparent header value.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randHex returns n random bytes as 2n lowercase hex characters.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the supported platforms; a non-random
		// ID would still be unique enough for correlation, so degrade
		// rather than panic the serving path.
		for i := range b {
			b[i] = byte(time.Now().UnixNano() >> (uint(i) * 8))
		}
	}
	s := hex.EncodeToString(b)
	if allZero(s) {
		s = "1" + s[1:]
	}
	return s
}

// SpanData is the exported, immutable form of one finished (or
// snapshotted) span. Durations and start times are wall-clock
// nanoseconds so spans from different nodes merge on one axis.
type SpanData struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_span_id,omitempty"`
	Name    string            `json:"name"`
	Node    string            `json:"node,omitempty"`
	Start   int64             `json:"start_unix_ns"`
	Dur     int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	// Metric overrides the histogram label the span lands under (spans
	// like "proxy:<peer>" all observe as "proxy"); empty means Name.
	Metric string `json:"-"`
}

// MetricName is the label the span's duration is observed under.
func (d SpanData) MetricName() string {
	if d.Metric != "" {
		return d.Metric
	}
	return d.Name
}

// Span is one in-progress operation. Obtain the root with
// Tracer.StartRequest and children with StartChild; finish with End.
// All methods are safe on a nil receiver (no tracer → no spans).
type Span struct {
	tr    *Tracer
	mu    sync.Mutex
	data  SpanData
	start time.Time
	ended bool
}

// StartChild opens a child span under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		tr:    s.tr,
		start: now,
		data: SpanData{
			TraceID: s.data.TraceID,
			SpanID:  randHex(8),
			Parent:  s.data.SpanID,
			Name:    name,
			Node:    s.data.Node,
			Start:   now.UnixNano(),
		},
	}
}

// SetAttr attaches one key=value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[k] = v
	s.mu.Unlock()
}

// SetMetricName sets the histogram label the span's duration observes
// under, collapsing per-peer span names into one bounded series.
func (s *Span) SetMetricName(m string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Metric = m
	s.mu.Unlock()
}

// End finishes the span and records it into the tracer's ring (at most
// once; duplicate Ends are ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Dur = time.Since(s.start).Nanoseconds()
	d := s.data
	s.mu.Unlock()
	if s.tr != nil {
		s.tr.record(d)
	}
}

// Snapshot returns the span's current data with the duration measured
// up to now — the live view of an unfinished span (the ?trace=server
// response includes the root this way, since the root only Ends after
// the response is written).
func (s *Span) Snapshot() (SpanData, bool) {
	if s == nil {
		return SpanData{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.data
	if !s.ended {
		d.Dur = time.Since(s.start).Nanoseconds()
	}
	if len(s.data.Attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.data.Attrs))
		for k, v := range s.data.Attrs {
			d.Attrs[k] = v
		}
	}
	return d, true
}

// TraceID reports the span's 32-hex-char trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID reports the span's 16-hex-char span ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// Traceparent renders the header value that makes a downstream hop's
// spans children of s ("" on nil).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.data.TraceID, s.data.SpanID)
}

// traceEntry is one trace's recorded spans.
type traceEntry struct {
	spans   []SpanData
	dropped int
}

// Tracer records finished spans into a bounded per-trace ring. One
// Tracer per node; the node name stamps every span so merged timelines
// show where each span ran.
type Tracer struct {
	node     string
	capTrace int
	capSpans int

	mu     sync.Mutex
	traces map[string]*traceEntry
	order  []string // trace IDs oldest-first, for eviction
	onEnd  func(SpanData)
}

// DefaultTraceCap and DefaultSpanCap bound the ring: at most
// DefaultTraceCap distinct traces retained, each keeping at most
// DefaultSpanCap spans (beyond that, spans are counted but dropped).
const (
	DefaultTraceCap = 256
	DefaultSpanCap  = 512
)

// NewTracer builds a tracer for one node. capTraces <= 0 selects
// DefaultTraceCap.
func NewTracer(node string, capTraces int) *Tracer {
	if capTraces <= 0 {
		capTraces = DefaultTraceCap
	}
	return &Tracer{
		node:     node,
		capTrace: capTraces,
		capSpans: DefaultSpanCap,
		traces:   make(map[string]*traceEntry),
	}
}

// Node reports the tracer's node name.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// OnEnd installs a callback invoked (synchronously) for every span as
// it is recorded — the hook the serving layer uses to feed span-duration
// histograms. Install before serving begins.
func (t *Tracer) OnEnd(fn func(SpanData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// StartRequest opens a root span for one inbound request. A valid
// traceparent header adopts the remote trace ID and parents the root
// under the remote span (the cross-node link); anything else mints a
// fresh trace. Safe on a nil tracer (returns a nil span).
func (t *Tracer) StartRequest(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	s := &Span{tr: t, start: now}
	s.data = SpanData{
		SpanID: randHex(8),
		Name:   name,
		Node:   t.node,
		Start:  now.UnixNano(),
	}
	if tid, parent, ok := ParseTraceparent(traceparent); ok {
		s.data.TraceID = tid
		s.data.Parent = parent
	} else {
		s.data.TraceID = randHex(16)
	}
	return s
}

// record stores one finished span, evicting the oldest trace beyond the
// trace cap.
func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	e := t.traces[d.TraceID]
	if e == nil {
		e = &traceEntry{}
		t.traces[d.TraceID] = e
		t.order = append(t.order, d.TraceID)
		for len(t.order) > t.capTrace {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
	}
	if len(e.spans) < t.capSpans {
		e.spans = append(e.spans, d)
	} else {
		e.dropped++
	}
	fn := t.onEnd
	t.mu.Unlock()
	if fn != nil {
		fn(d)
	}
}

// Trace returns the recorded spans of one trace, start-time ordered
// (nil when the trace is unknown or evicted). The slice is a copy.
func (t *Tracer) Trace(traceID string) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	e := t.traces[traceID]
	var out []SpanData
	if e != nil {
		out = append([]SpanData(nil), e.spans...)
	}
	t.mu.Unlock()
	SortSpans(out)
	return out
}

// Dropped reports how many spans of a trace were discarded over the
// per-trace cap.
func (t *Tracer) Dropped(traceID string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.traces[traceID]; e != nil {
		return e.dropped
	}
	return 0
}

// Len reports how many traces are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// SortSpans orders spans by start time (then span ID for stability) —
// the canonical order for responses and merged timelines.
func SortSpans(spans []SpanData) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// ValidTraceID reports whether id is a well-formed 32-hex-char trace ID
// (the /v1/trace/<id> path segment check).
func ValidTraceID(id string) bool {
	return len(id) == traceIDHexLen && isLowerHex(id) && !allZero(id)
}

// String implements fmt.Stringer for debugging.
func (d SpanData) String() string {
	return fmt.Sprintf("%s/%s %s@%s %dns", d.TraceID, d.SpanID, d.Name, d.Node, d.Dur)
}
