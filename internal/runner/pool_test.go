package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolSubmitRuns checks the basic result path and that the pool
// derives job seeds with the same SeedFor contract as Run.
func TestPoolSubmitRuns(t *testing.T) {
	p := NewPool[int64](PoolOptions{Workers: 2, Seed: 42})
	defer p.Close()
	got, err := p.Submit(context.Background(), Job[int64]{
		Key: "k1",
		Run: func(_ context.Context, seed int64) (int64, error) { return seed, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := SeedFor(42, "k1"); got != want {
		t.Fatalf("seed = %d, want SeedFor(42, k1) = %d", got, want)
	}
}

// TestPoolQueueFull pins the load-shedding contract: with the workers
// busy and the queue at capacity, Submit fails fast with ErrQueueFull
// instead of blocking.
func TestPoolQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	p := NewPool[int](PoolOptions{Workers: 1, QueueSize: 1})
	defer p.Close()

	blocker := func(ctx context.Context, _ int64) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return 0, nil
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.Submit(context.Background(), Job[int]{Key: "busy", Run: blocker}) }()
	<-started // the worker is occupied
	go func() { defer wg.Done(); p.Submit(context.Background(), Job[int]{Key: "queued", Run: blocker}) }()
	// Wait until the second job occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := p.Depth(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued job never showed up in Depth")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := p.Submit(context.Background(), Job[int]{Key: "shed", Run: blocker})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(release) // unblock the occupied worker and the queued job
	wg.Wait()
}

// TestPoolPanicCapture checks that a panicking job surfaces as a
// *PanicError naming the job key and leaves the pool fully serviceable —
// the property cmd/spind relies on to turn panics into 500s instead of
// crashes.
func TestPoolPanicCapture(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 1})
	defer p.Close()
	_, err := p.Submit(context.Background(), Job[int]{
		Key: "boom",
		Run: func(context.Context, int64) (int, error) { panic("kaboom") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Key != "boom" {
		t.Fatalf("panic key = %q, want boom", pe.Key)
	}
	// The worker that caught the panic must still serve jobs.
	got, err := p.Submit(context.Background(), Job[int]{
		Key: "after",
		Run: func(context.Context, int64) (int, error) { return 7, nil },
	})
	if err != nil || got != 7 {
		t.Fatalf("pool unusable after panic: got %d, err %v", got, err)
	}
}

// TestPoolStateHook records every queue transition and checks the
// bookkeeping: depth rises while jobs wait, and everything returns to
// (0, 0) when the pool drains.
func TestPoolStateHook(t *testing.T) {
	type state struct{ queued, running int }
	var (
		mu     sync.Mutex
		states []state
	)
	release := make(chan struct{})
	p := NewPool[int](PoolOptions{
		Workers:   1,
		QueueSize: 2,
		OnState: func(q, r int) {
			mu.Lock()
			states = append(states, state{q, r})
			mu.Unlock()
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), Job[int]{Key: "", Run: func(ctx context.Context, _ int64) (int, error) {
				<-release
				return 0, nil
			}})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, r := p.Depth(); q == 2 && r == 1 {
			break
		}
		if time.Now().After(deadline) {
			q, r := p.Depth()
			t.Fatalf("never reached full load: queued=%d running=%d", q, r)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(states) == 0 {
		t.Fatal("no state transitions observed")
	}
	maxQ, maxR := 0, 0
	for _, s := range states {
		if s.queued > maxQ {
			maxQ = s.queued
		}
		if s.running > maxR {
			maxR = s.running
		}
	}
	if maxQ != 2 || maxR != 1 {
		t.Fatalf("peak state = (%d queued, %d running), want (2, 1)", maxQ, maxR)
	}
	if last := states[len(states)-1]; last != (state{0, 0}) {
		t.Fatalf("final state = %+v, want drained (0, 0)", last)
	}
}

// TestPoolTimeout applies the pool-level per-job budget.
func TestPoolTimeout(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 1, Timeout: 10 * time.Millisecond})
	defer p.Close()
	_, err := p.Submit(context.Background(), Job[int]{
		Key: "slow",
		Run: func(ctx context.Context, _ int64) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		},
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestPoolCancelWhileQueued checks that a caller whose context dies while
// its job is still queued returns promptly, and the worker discards the
// abandoned job instead of running it.
func TestPoolCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	p := NewPool[int](PoolOptions{Workers: 1, QueueSize: 1})
	defer p.Close()

	go p.Submit(context.Background(), Job[int]{Key: "busy", Run: func(ctx context.Context, _ int64) (int, error) {
		started <- struct{}{}
		<-release
		return 0, nil
	}})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, Job[int]{Key: "abandoned", Run: func(context.Context, int64) (int, error) {
			ran <- struct{}{}
			return 0, nil
		}})
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := p.Depth(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	p.Close()
	select {
	case <-ran:
		t.Fatal("abandoned job still ran")
	default:
	}
}

// TestPoolClose checks drain-on-close and the post-close Submit error.
func TestPoolClose(t *testing.T) {
	var mu sync.Mutex
	completed := 0
	p := NewPool[int](PoolOptions{Workers: 2, QueueSize: 4, Progress: func(e Event) {
		mu.Lock()
		completed = e.Done
		mu.Unlock()
	}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), Job[int]{Key: "", Run: func(context.Context, int64) (int, error) {
				time.Sleep(5 * time.Millisecond)
				return 0, nil
			}})
		}()
	}
	wg.Wait()
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if completed != 4 {
		t.Fatalf("progress saw %d completions, want 4", completed)
	}
	if _, err := p.Submit(context.Background(), Job[int]{Key: "late"}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}
