// Package runner is a generic parallel job engine for the experiment
// sweeps. Every simulation point of a sweep becomes a Job with a stable
// string key; Run executes the jobs on a bounded worker pool and returns
// their results in job order.
//
// Determinism is the central contract: a job's random seed is derived
// from the base seed and the job key alone (SeedFor), never from
// scheduling order, so a sweep produces bit-identical results at any
// worker count. Cancellation flows through context.Context — jobs are
// expected to poll their context between simulation chunks — and a
// panicking job is captured into a *PanicError instead of taking the
// process down.
package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Options configure one Run call.
type Options struct {
	// Workers bounds how many jobs execute concurrently. Zero or
	// negative means GOMAXPROCS. Worker count never affects results,
	// only wall-clock time.
	Workers int
	// Seed is the base seed; each job receives SeedFor(Seed, job.Key).
	Seed int64
	// Timeout bounds each job's execution (0 = unlimited). A job that
	// overruns sees its context expire and is reported as a failure.
	Timeout time.Duration
	// Progress, when non-nil, receives one Event per completed job.
	// Events are delivered serially; the callback need not be
	// goroutine-safe.
	Progress ProgressFunc
}

// Event describes one finished job.
type Event struct {
	Key     string        // the job's key
	Index   int           // the job's position in the input slice
	Done    int           // completed jobs so far, including this one
	Total   int           // total jobs in this Run
	Err     error         // nil on success
	Elapsed time.Duration // the job's own execution time
}

// ProgressFunc observes job completions.
type ProgressFunc func(Event)

// Job is one unit of work. Run receives a context — cancelled when the
// pool shuts down or the per-job timeout expires — and the job's derived
// seed. Long-running bodies should poll ctx.Err() periodically so
// cancellation is prompt.
type Job[T any] struct {
	Key string
	Run func(ctx context.Context, seed int64) (T, error)
}

// PanicError wraps a panic recovered from a job.
type PanicError struct {
	Key   string
	Value interface{}
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Key, e.Value)
}

// SeedFor derives the deterministic seed of the job identified by key
// under a base seed: FNV-1a over the base seed and the key, finalised
// with a splitmix64 mix so related keys ("x@0.1", "x@0.2") land far
// apart. The scheme is stable across releases — recorded results remain
// reproducible.
func SeedFor(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(mix64(h.Sum64()))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Run executes jobs on a worker pool and returns their results in job
// order. On the first failure the remaining jobs are cancelled, finished
// jobs' results are kept, and the triggering error (wrapped with its job
// key) is returned. Job keys must be unique — they name the job's seed
// and any duplicate would silently run two jobs on identical randomness.
func Run[T any](ctx context.Context, o Options, jobs []Job[T]) ([]T, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if prev, dup := seen[j.Key]; dup {
			return nil, fmt.Errorf("runner: duplicate job key %q (jobs %d and %d)", j.Key, prev, i)
		}
		seen[j.Key] = i
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(jobs))
	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				job := jobs[i]
				start := time.Now()
				res, err := runOne(ctx, o, job)
				mu.Lock()
				if err == nil {
					results[i] = res
				} else if firstErr == nil {
					// Jobs cancelled as a consequence of an earlier
					// failure must not mask it.
					firstErr = err
					cancel()
				}
				done++
				if o.Progress != nil {
					o.Progress(Event{
						Key: job.Key, Index: i, Done: done, Total: len(jobs),
						Err: err, Elapsed: time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// runOne executes a single job with panic capture and the per-job
// timeout applied.
func runOne[T any](ctx context.Context, o Options, job Job[T]) (res T, err error) {
	if err = ctx.Err(); err != nil {
		return res, fmt.Errorf("runner: job %q: %w", job.Key, err)
	}
	jctx := ctx
	if o.Timeout > 0 {
		var jcancel context.CancelFunc
		jctx, jcancel = context.WithTimeout(ctx, o.Timeout)
		defer jcancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Key: job.Key, Value: r, Stack: debug.Stack()}
		}
	}()
	res, err = job.Run(jctx, SeedFor(o.Seed, job.Key))
	if err != nil {
		if jctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return res, fmt.Errorf("runner: job %q exceeded its %v timeout: %w", job.Key, o.Timeout, err)
		}
		if _, isPanic := err.(*PanicError); !isPanic {
			err = fmt.Errorf("runner: job %q: %w", job.Key, err)
		}
	}
	return res, err
}

// Cycles advances a chunked computation — typically a simulator's Run
// method — in slices, polling ctx between slices so cancellation and
// timeouts are honoured promptly. Chunked stepping is state-for-state
// identical to a single run(total) call for any step-based simulator.
func Cycles(ctx context.Context, run func(int64), total int64) error {
	// 1024-cycle slices keep cancellation latency in the microsecond
	// range without measurable per-chunk overhead.
	const chunk = 1024
	for done := int64(0); done < total; {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := int64(chunk)
		if rem := total - done; rem < n {
			n = rem
		}
		run(n)
		done += n
	}
	return ctx.Err()
}
