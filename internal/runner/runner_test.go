package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSeedForDeterministic(t *testing.T) {
	if SeedFor(1, "a") != SeedFor(1, "a") {
		t.Fatal("same (base, key) must derive the same seed")
	}
	if SeedFor(1, "a") == SeedFor(1, "b") {
		t.Fatal("different keys must derive different seeds")
	}
	if SeedFor(1, "a") == SeedFor(2, "a") {
		t.Fatal("different bases must derive different seeds")
	}
	// Neighbouring point keys of one sweep must not collide.
	seen := map[int64]string{}
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0} {
		key := fmt.Sprintf("fig7/WestFirst_3VC/uniform_random@%g", rate)
		s := SeedFor(7, key)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, key)
		}
		seen[s] = key
	}
}

// sweep builds n jobs whose result records the seed each job received.
func sweep(n int) []Job[int64] {
	jobs := make([]Job[int64], n)
	for i := range jobs {
		jobs[i] = Job[int64]{
			Key: fmt.Sprintf("job/%d", i),
			Run: func(_ context.Context, seed int64) (int64, error) { return seed, nil },
		}
	}
	return jobs
}

func TestRunResultsIndependentOfWorkerCount(t *testing.T) {
	base, err := Run(context.Background(), Options{Workers: 1, Seed: 3}, sweep(40))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		got, err := Run(context.Background(), Options{Workers: workers, Seed: 3}, sweep(40))
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: job %d got seed %d, want %d", workers, i, got[i], base[i])
			}
		}
	}
}

func TestRunKeepsJobOrder(t *testing.T) {
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("order/%d", i),
			Run: func(_ context.Context, _ int64) (int, error) { return i * i, nil },
		}
	}
	got, err := Run(context.Background(), Options{Workers: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunPanicCapture(t *testing.T) {
	jobs := sweep(4)
	jobs[2].Run = func(_ context.Context, _ int64) (int64, error) { panic("boom") }
	_, err := Run(context.Background(), Options{Workers: 2}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Key != "job/2" || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic error lost context: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack missing")
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{}, 64)
	jobs := make([]Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("fail/%d", i),
			Run: func(ctx context.Context, _ int64) (int, error) {
				started <- struct{}{}
				if i == 0 {
					return 0, boom
				}
				<-ctx.Done() // a well-behaved job observes cancellation
				return 0, ctx.Err()
			},
		}
	}
	doneCh := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), Options{Workers: 4}, jobs)
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if !errors.Is(err, boom) {
			t.Fatalf("triggering error masked: %v", err)
		}
		if !strings.Contains(err.Error(), "fail/0") {
			t.Fatalf("error lost its job key: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after a job failure")
	}
	if n := len(started); n >= 64 {
		t.Fatal("failure did not stop the feed")
	}
}

func TestRunContextCancellationPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job[int], 16)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("wait/%d", i),
			Run: func(ctx context.Context, _ int64) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Options{Workers: 4}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestRunPerJobTimeout(t *testing.T) {
	jobs := []Job[int]{{
		Key: "slow",
		Run: func(ctx context.Context, _ int64) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		},
	}}
	_, err := Run(context.Background(), Options{Timeout: 20 * time.Millisecond}, jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "slow") || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("timeout error lost context: %v", err)
	}
}

func TestRunProgressEvents(t *testing.T) {
	var events []Event
	o := Options{Workers: 4, Progress: func(e Event) { events = append(events, e) }}
	if _, err := Run(context.Background(), o, sweep(10)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("want 10 events, got %d", len(events))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != 10 {
			t.Fatalf("event %d has Done=%d Total=%d", i, e.Done, e.Total)
		}
		if e.Err != nil {
			t.Fatalf("unexpected job error: %v", e.Err)
		}
	}
}

func TestRunDuplicateKeysRejected(t *testing.T) {
	jobs := sweep(3)
	jobs[2].Key = jobs[0].Key
	if _, err := Run(context.Background(), Options{}, jobs); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate keys must be rejected, got %v", err)
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run[int](context.Background(), Options{}, nil)
	if err != nil || res != nil {
		t.Fatalf("empty run: res=%v err=%v", res, err)
	}
}

func TestCyclesChunking(t *testing.T) {
	var total int64
	var calls int
	err := Cycles(context.Background(), func(n int64) { total += n; calls++ }, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2500 {
		t.Fatalf("ran %d cycles, want 2500", total)
	}
	if calls != 3 { // 1024 + 1024 + 452
		t.Fatalf("want 3 chunks, got %d", calls)
	}
}

func TestCyclesStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var total int64
	err := Cycles(ctx, func(n int64) {
		total += n
		if total >= 2048 {
			cancel()
		}
	}, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if total > 4096 {
		t.Fatalf("kept running after cancel: %d cycles", total)
	}
}
