package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Pool is the long-lived sibling of Run: a fixed set of workers serving
// a bounded queue of jobs submitted one at a time, built for daemons
// (cmd/spind) where jobs arrive with requests instead of as a batch.
//
// The queue is deliberately bounded and Submit fails fast with
// ErrQueueFull instead of blocking — a server sheds load (429) rather
// than accumulating unbounded goroutines until it collapses. Panics in
// jobs are captured into *PanicError exactly as in Run, so one poisoned
// request can never take the daemon down.
type Pool[T any] struct {
	opts  PoolOptions
	queue chan poolItem[T]
	wg    sync.WaitGroup

	mu      sync.Mutex
	queued  int
	running int
	done    int
	closed  bool
}

// PoolOptions configure a pool for its lifetime.
type PoolOptions struct {
	// Workers is the number of concurrently executing jobs (0 =
	// GOMAXPROCS).
	Workers int
	// QueueSize bounds jobs accepted but not yet running (0 = Workers).
	// A Submit beyond the bound fails immediately with ErrQueueFull.
	QueueSize int
	// Seed is the base seed; each job receives SeedFor(Seed, job.Key).
	Seed int64
	// Timeout bounds each job's execution (0 = unlimited), layered under
	// whatever deadline the Submit context already carries.
	Timeout time.Duration
	// OnState, when non-nil, observes every queue transition with the
	// current (queued, running) sizes. Calls are serialized; the callback
	// must not call back into the pool.
	OnState func(queued, running int)
	// Progress, when non-nil, receives one Event per completed job, with
	// Done counting completions over the pool's lifetime and Total == 0
	// (a pool has no fixed job count). Calls are serialized.
	Progress ProgressFunc
}

type poolItem[T any] struct {
	ctx context.Context
	job Job[T]
	res chan poolResult[T]
}

type poolResult[T any] struct {
	val T
	err error
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity. Servers translate it into backpressure (HTTP 429).
var ErrQueueFull = errors.New("runner: pool queue full")

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("runner: pool closed")

// NewPool starts the workers and returns the pool.
func NewPool[T any](o PoolOptions) *Pool[T] {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = o.Workers
	}
	p := &Pool[T]{opts: o, queue: make(chan poolItem[T], o.QueueSize)}
	for w := 0; w < o.Workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for item := range p.queue {
				p.runItem(item)
			}
		}()
	}
	return p
}

// Submit enqueues one job and waits for its result. It returns
// ErrQueueFull immediately when the queue is at capacity and
// ErrPoolClosed after Close; otherwise it blocks until the job finishes
// or ctx is done. A context expiring while the job is still queued
// abandons it cheaply — the worker discards the job without running it.
func (p *Pool[T]) Submit(ctx context.Context, job Job[T]) (T, error) {
	var zero T
	item := poolItem[T]{ctx: ctx, job: job, res: make(chan poolResult[T], 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return zero, fmt.Errorf("runner: job %q: %w", job.Key, ErrPoolClosed)
	}
	select {
	case p.queue <- item:
		p.queued++
		p.notifyLocked()
	default:
		queued, running := p.queued, p.running
		p.mu.Unlock()
		return zero, fmt.Errorf("runner: job %q: %w (%d queued, %d running)", job.Key, ErrQueueFull, queued, running)
	}
	p.mu.Unlock()

	select {
	case r := <-item.res:
		return r.val, r.err
	case <-ctx.Done():
		// The worker sees the expired context and skips or cancels the
		// job; nobody else reads item.res, so dropping it is safe.
		return zero, fmt.Errorf("runner: job %q: %w", job.Key, ctx.Err())
	}
}

// Depth reports the current queue state for health endpoints and tests.
func (p *Pool[T]) Depth() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.running
}

// Close stops accepting jobs and waits for every already-queued job to
// finish. It is idempotent.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}

// runItem executes one dequeued job with the shared runOne machinery
// (seed derivation, per-job timeout, panic capture).
func (p *Pool[T]) runItem(item poolItem[T]) {
	p.mu.Lock()
	p.queued--
	p.running++
	p.notifyLocked()
	p.mu.Unlock()

	start := time.Now()
	var r poolResult[T]
	r.val, r.err = runOne(item.ctx, Options{Seed: p.opts.Seed, Timeout: p.opts.Timeout}, item.job)
	item.res <- r

	p.mu.Lock()
	p.running--
	p.done++
	p.notifyLocked()
	if p.opts.Progress != nil {
		p.opts.Progress(Event{
			Key: item.job.Key, Index: -1, Done: p.done, Total: 0,
			Err: r.err, Elapsed: time.Since(start),
		})
	}
	p.mu.Unlock()
}

// notifyLocked fires the queue-state hook; p.mu must be held.
func (p *Pool[T]) notifyLocked() {
	if p.opts.OnState != nil {
		p.opts.OnState(p.queued, p.running)
	}
}
