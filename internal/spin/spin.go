// Package spin is the distributed, topology-agnostic implementation of
// the SPIN deadlock-freedom framework (Section IV of the paper).
//
// Every router carries one counter-driven agent. Detection uses a timeout
// (tDD) on a round-robin-watched blocked VC; a probe special message (SM)
// confirms the cyclic dependency and records its path; a move SM freezes
// one VC per router of the loop and announces the spin cycle
// (send + 2 × loop length); at the spin cycle all frozen routers push
// their frozen packets out simultaneously — the spin. A probe_move SM
// accelerates multi-spin deadlocks, and kill_move cancels recoveries whose
// dependency dissolved. All SMs share the data links at priority
// probe_move > move = kill_move > probe > flit, travel buffered-nowhere,
// and are dropped on contention, arbitrated by rotating router priorities
// with an epoch of 4·tDD cycles.
package spin

import (
	"repro/internal/sim"
)

// Config parameterises the scheme.
type Config struct {
	// TDD is the deadlock-detection timeout in cycles (paper default 128).
	TDD int64
	// EpochFactor scales the rotating-priority epoch: epoch = EpochFactor
	// × TDD (paper default 4).
	EpochFactor int64
	// DisableProbeMove turns off the multi-spin optimisation; the FSM then
	// falls back to fresh detection after every spin (ablation knob).
	DisableProbeMove bool
	// PriorityDrop enables the literal reading of the paper's rule that a
	// router drops probes from senders with lower dynamic priority at
	// EVERY hop. It guarantees at most one confirmed recovery per loop but
	// serialises recovery behind the rotating priority, which collapses
	// throughput once congestion couples many loops. The default applies
	// the rule only after GraceHops hops: short loops (the common case)
	// confirm in parallel from any initiator, while long probe walks are
	// culled quickly, keeping SM link utilisation negligible.
	PriorityDrop bool
	// GraceHops is how many hops a probe travels before the rotating
	// priority rule may drop it (default 12; ignored when PriorityDrop
	// forces the rule from hop one).
	GraceHops int
	// DisableProbeFork drops probes at input ports whose packets wait on
	// more than one output port instead of forking them. The paper argues
	// forking is required to trace inter-dependent cycles; this ablation
	// knob lets the claim be measured.
	DisableProbeFork bool
	// MaxPathLen caps the probe path (loop-buffer depth); 0 means
	// 2 × routers. The paper sizes the loop buffer at N entries
	// (log2(radix)·N bits); we default larger because fully developed
	// congestion can grow dependency cycles past N hops, and a cycle
	// longer than the cap can never be confirmed or recovered. The cap
	// also bounds probe lifetime, keeping SM link utilisation low.
	MaxPathLen int
	// CountTruth enables oracle-backed false-positive accounting: each
	// confirmed recovery is checked against the global deadlock oracle.
	// Costs oracle runs per recovery; used by the Fig. 9 experiment.
	CountTruth bool
	// DisableProbe turns off the detection/probe phase entirely: agents
	// never arm the deadlock-detection counter, so no probes, moves, or
	// spins ever happen and a true cyclic deadlock persists forever. It
	// exists for the model checker (internal/mc): its no_probe mutation
	// maps to this knob, so a model counterexample can be replayed
	// through the simulator with the identical defect injected.
	DisableProbe bool
}

func (c Config) withDefaults() Config {
	if c.TDD == 0 {
		c.TDD = 128
	}
	if c.GraceHops == 0 {
		c.GraceHops = 12
	}
	if c.EpochFactor == 0 {
		c.EpochFactor = 4
	}
	return c
}

// Scheme implements sim.Scheme for SPIN.
type Scheme struct {
	cfg    Config
	net    *sim.Network
	agents []*Agent
	epoch  int64
}

// New builds a SPIN scheme with cfg (zero value = paper defaults).
func New(cfg Config) *Scheme {
	return &Scheme{cfg: cfg.withDefaults()}
}

// Name implements sim.Scheme.
func (s *Scheme) Name() string { return "spin" }

// RequiresSerialStep implements sim.SerialOnly. The agents are shard-safe
// (own-router state plus published peer views); only the oracle-backed
// false-positive accounting (CountTruth) scans global live state and
// forces the serial engine.
func (s *Scheme) RequiresSerialStep() bool { return s.cfg.CountTruth }

// Attach implements sim.Scheme.
func (s *Scheme) Attach(n *sim.Network) {
	s.net = n
	s.epoch = s.cfg.EpochFactor * s.cfg.TDD
	if s.cfg.MaxPathLen == 0 {
		s.cfg.MaxPathLen = 2 * n.NumRouters()
	}
	s.agents = make([]*Agent, n.NumRouters())
	for i := 0; i < n.NumRouters(); i++ {
		a := newAgent(s, n.Router(i))
		s.agents[i] = a
		n.SetAgent(i, a)
	}
}

// Agents exposes the per-router agents (tests and the walkthrough
// example inspect FSM state).
func (s *Scheme) Agents() []*Agent { return s.agents }

// Priority reports router r's dynamic priority at cycle now: priorities
// rotate round-robin every epoch so that every router eventually holds the
// highest priority long enough (≥ 3·tDD of its 4·tDD epoch) to detect a
// deadlock, emit a probe and get it back without contention drops.
func (s *Scheme) Priority(r int, now int64) int {
	n := int64(s.net.NumRouters())
	return int((int64(r) + now/s.epoch) % n)
}
