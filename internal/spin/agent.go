package spin

import (
	"fmt"

	"repro/internal/sim"
)

// Role is the initiator-side FSM state of the paper's seven-state counter
// FSM (Fig. 4a). The follower side (S_Frozen) is orthogonal data — a
// router can simultaneously be the initiator of one recovery and a frozen
// follower of another (the dual-role race of Fig. 5a, Case II) — so the
// agent keeps follower state (is_deadlock, source id, frozen VCs)
// alongside the role.
type Role uint8

// FSM roles.
const (
	RoleOff Role = iota
	RoleDD
	RoleMove
	RoleFwdProgress
	RoleProbeMove
	RoleKillMove
)

func (r Role) String() string {
	switch r {
	case RoleOff:
		return "off"
	case RoleDD:
		return "dd"
	case RoleMove:
		return "move"
	case RoleFwdProgress:
		return "fwd_progress"
	case RoleProbeMove:
		return "probe_move"
	case RoleKillMove:
		return "kill_move"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// frozenEntry records one VC frozen for a pending spin and the output
// port its resident will take.
type frozenEntry struct {
	vc  *sim.VC
	out int
}

// Agent is the per-router SPIN agent.
type Agent struct {
	sim.BaseAgent
	s  *Scheme
	r  *sim.Router
	id int

	role   Role
	expire int64 // absolute counter-expiry cycle

	// Detection pointer (round-robin over blocked link-port VCs).
	watchPort, watchVC int
	watchPkt           uint64

	// Confirmed-recovery bookkeeping (initiator).
	loopPort  int // input port where the latched loop re-enters us
	loopVNet  int // virtual network the latched loop lives in
	initOut   int // output port of our own dependency in the loop
	loopPath  []uint8
	loopLen   int64
	spinCycle int64

	// failures counts cancelled recoveries (kill_move rounds); it feeds
	// the retry jitter so that two initiators of the same loop whose moves
	// keep colliding de-correlate instead of racing forever.
	failures int64
	// backoff doubles the detection interval after every fruitless probe
	// (up to 8×tDD) and resets on progress or a confirmed recovery. The
	// first probe of a fresh jam still fires at tDD, but sustained
	// congestion stops feeding probes onto the links — this is what keeps
	// SM link utilisation negligible at saturation (Fig. 8b).
	backoff int64

	// Follower state.
	isDeadlock  bool
	srcID       int
	followSpin  int64
	frozen      []frozenEntry
	spinStarted bool

	// classTrue records, at probe-confirmation time, whether the oracle
	// agreed a real deadlock existed (false-positive accounting).
	classTrue bool

	// tagSeq feeds the per-agent SM tag stream (tracing only). Tags are
	// router-salted so they stay globally unique without any shared
	// counter across agents.
	tagSeq uint64

	// view is the follower state snapshot other routers' agents read
	// during the engine's parallel compute phase (see PublishView).
	view agentView
}

// agentView is the cross-router-visible follower state, frozen at the end
// of the engine's delivery phase. The chainClosed/peerFrozenVC walks read
// peers through it, so every agent of a loop evaluates the same state no
// matter which shard (or at which point of the phase) it runs on — the
// all-or-none spin property.
type agentView struct {
	isDeadlock bool
	srcID      int
	frozen     []frozenEntry
}

func newAgent(s *Scheme, r *sim.Router) *Agent {
	return &Agent{s: s, r: r, id: r.ID, srcID: -1, initOut: -1}
}

// Role reports the initiator-side FSM role.
func (a *Agent) Role() Role { return a.role }

// State reports the paper-level FSM state name, folding the follower
// freeze in: a router frozen by another initiator reports "frozen".
func (a *Agent) State() string {
	if a.isDeadlock && a.srcID != a.id && a.role != RoleMove && a.role != RoleKillMove {
		return "frozen"
	}
	return a.role.String()
}

// IsDeadlock reports the is_deadlock bit.
func (a *Agent) IsDeadlock() bool { return a.isDeadlock }

// FrozenCount reports how many local VCs are currently frozen.
func (a *Agent) FrozenCount() int { return len(a.frozen) }

func (a *Agent) count(name string, d int64) { a.r.Stats().Count(name, d) }

// nextTag returns a globally unique SM tag from the agent's own stream.
func (a *Agent) nextTag() uint64 {
	a.tagSeq++
	return a.tagSeq*uint64(a.r.Net().NumRouters()) + uint64(a.id)
}

// PublishView implements sim.ViewPublisher: copy the follower state peers
// read into the immutable-through-phase-2 snapshot. Idle agents with an
// already-empty view return without touching anything.
func (a *Agent) PublishView() {
	if !a.isDeadlock && !a.view.isDeadlock {
		return
	}
	a.view.isDeadlock = a.isDeadlock
	a.view.srcID = a.srcID
	a.view.frozen = append(a.view.frozen[:0], a.frozen...)
}

// blockedDependency reports the link output port v's resident packet is
// head-blocked on, if v represents a live deadlock dependency: non-empty,
// routed, no downstream VC granted, not ejecting.
func blockedDependency(v *sim.VC) (int, bool) {
	if v.Len() == 0 || v.WaitingToEject() || v.Granted() >= 0 || !v.ResidentComplete() {
		return 0, false
	}
	reqs := v.Requests()
	if len(reqs) == 0 {
		return 0, false
	}
	return reqs[0].Port, true
}

// scanWatch finds the next non-empty, non-ejecting link-port VC starting
// after position (port, idx), wrapping around. Terminal ports are skipped:
// packets waiting to inject or eject cannot be part of a cyclic buffer
// dependency.
func (a *Agent) scanWatch(port, idx int) (int, int, bool) {
	r := a.r
	vcs := r.VCsPerPort()
	total := (r.Radix() - r.LocalPorts()) * vcs
	if total <= 0 {
		return 0, 0, false
	}
	startSlot := 0
	if port >= r.LocalPorts() {
		startSlot = (port-r.LocalPorts())*vcs + idx
	}
	for i := 1; i <= total; i++ {
		slot := (startSlot + i) % total
		p := r.LocalPorts() + slot/vcs
		k := slot % vcs
		v := r.VC(p, k)
		if v.Len() > 0 && !v.WaitingToEject() && !v.Frozen() {
			return p, k, true
		}
	}
	return 0, 0, false
}

// Quiescent implements sim.Quiescer: with the initiator FSM off and no
// follower freeze pending, Tick is a no-op unless the router holds
// blocked flits — and routers holding flits are always stepped. The
// engine uses this to skip idle routers' agent phase entirely.
func (a *Agent) Quiescent() bool { return a.role == RoleOff && !a.isDeadlock }

// Tick implements sim.Agent.
func (a *Agent) Tick() {
	now := a.r.Now()
	a.tickFollower(now)
	switch a.role {
	case RoleOff:
		if a.s.cfg.DisableProbe {
			break // detection disabled: the initiator FSM stays off
		}
		if p, k, ok := a.scanWatch(0, -1); ok {
			a.pointAt(p, k, now)
			a.role = RoleDD
		}
	case RoleDD:
		a.tickDD(now)
	case RoleMove, RoleProbeMove:
		if now >= a.expire {
			a.startKill(now)
		}
	case RoleKillMove:
		if now >= a.expire {
			a.resetToDD(now)
		}
	case RoleFwdProgress:
		if now >= a.expire {
			a.afterSpin(now)
		}
	}
}

// pointAt aims the detection counter at (port, idx) and restarts it. A
// small deterministic per-router jitter staggers detection so that fully
// symmetric deadlock rings (every counter armed the same cycle) do not
// confirm simultaneously and race their moves forever.
func (a *Agent) pointAt(port, idx int, now int64) {
	a.watchPort, a.watchVC = port, idx
	v := a.r.VC(port, idx)
	if p := v.FrontPacket(); p != nil {
		a.watchPkt = p.ID
	} else {
		a.watchPkt = 0
	}
	jitter := (int64(a.id)*7 + a.failures*a.failures*11) % a.jitterSpan()
	a.expire = now + a.s.cfg.TDD<<a.backoff + jitter
}

// jitterSpan bounds the detection jitter well below tDD.
func (a *Agent) jitterSpan() int64 {
	span := a.s.cfg.TDD / 2
	if span < 4 {
		span = 4
	}
	if span > 64 {
		span = 64
	}
	return span
}

// tickDD advances the detection pointer on progress and emits a probe on
// expiry (Phase I).
func (a *Agent) tickDD(now int64) {
	v := a.r.VC(a.watchPort, a.watchVC)
	blocked := false
	if p := v.FrontPacket(); p != nil && p.ID == a.watchPkt && !v.Frozen() {
		if _, ok := blockedDependency(v); ok {
			blocked = true
		}
	}
	if !blocked {
		// The watched packet made progress (or the VC drained / is mid
		// recovery): advance round-robin and re-arm the backoff.
		a.backoff = 0
		if p, k, ok := a.scanWatch(a.watchPort, a.watchVC); ok {
			a.pointAt(p, k, now)
		} else {
			a.role = RoleOff
			a.expire = 0
		}
		return
	}
	if now < a.expire {
		return
	}
	// Counter expired on a blocked packet: send one probe out the watched
	// dependency's requested port (the paper's rule — one counter, one
	// probe per expiry, keeping SM link load negligible). The pointer then
	// advances round-robin so every blocked VC gets probed in turn: a
	// blocked VC can be a victim hanging off a cycle (a "rho"-shaped
	// dependency) whose probe orbits without returning, and only probes
	// launched from VCs inside a cycle ever come back.
	out, _ := blockedDependency(v)
	probe := a.r.NewSM()
	probe.Kind = sim.SMProbe
	probe.Sender = a.id
	probe.VNet = uint8(v.VNet())
	probe.FirstOut = uint8(out)
	probe.HopCycles = int64(a.r.LinkLatency(out))
	probe.Tag = a.nextTag()
	a.r.SendSM(out, probe)
	a.count("probes_sent", 1)
	if a.backoff < 3 {
		a.backoff++
	}
	if p, k, ok := a.scanWatch(a.watchPort, a.watchVC); ok {
		a.pointAt(p, k, now)
	} else {
		a.expire = now + a.s.cfg.TDD<<a.backoff
	}
}

// resetToDD returns the initiator FSM to detection.
func (a *Agent) resetToDD(now int64) {
	a.loopPath = nil
	a.loopLen = 0
	a.spinCycle = 0
	a.initOut = -1
	if p, k, ok := a.scanWatch(a.watchPort, a.watchVC); ok {
		a.pointAt(p, k, now)
		a.role = RoleDD
	} else {
		a.role = RoleOff
		a.expire = 0
	}
}

// startKill launches a kill_move along the latched loop to unfreeze the
// routers a failed move/probe_move reached (Phase II cancellation).
func (a *Agent) startKill(now int64) {
	a.role = RoleKillMove
	a.expire = now + a.loopLen
	a.failures++
	if a.failures > 1<<20 {
		a.failures = 0
	}
	a.count("kill_moves_sent", 1)
	kill := a.r.NewSM()
	kill.Kind = sim.SMKillMove
	kill.Sender = a.id
	kill.Path = append(kill.Path[:0], a.loopPath...)
	kill.Tag = a.nextTag()
	a.r.SendSM(a.initOut, kill)
}

// afterSpin runs when the initiator's spin round has globally completed:
// either re-probe the latched loop with a probe_move (multi-spin
// optimisation) or fall back to fresh detection.
func (a *Agent) afterSpin(now int64) {
	if !a.s.cfg.DisableProbeMove {
		if _, ok := a.localDependency(); ok {
			a.role = RoleProbeMove
			a.spinCycle = now + 2*a.loopLen
			a.expire = now + a.loopLen
			a.count("probe_moves_sent", 1)
			pm := a.r.NewSM()
			pm.Kind = sim.SMProbeMove
			pm.Sender = a.id
			pm.VNet = uint8(a.loopVNet)
			pm.Path = append(pm.Path[:0], a.loopPath...)
			pm.SpinCycle = a.spinCycle
			pm.LoopLen = a.loopLen
			pm.Tag = a.nextTag()
			a.r.SendSM(a.initOut, pm)
			return
		}
	}
	a.resetToDD(now)
}

// localDependency finds a VC at the loop's local input port (within the
// loop's vnet) whose resident is head-blocked on initOut.
func (a *Agent) localDependency() (*sim.VC, bool) {
	if v := a.freezeCandidate(a.loopPort, a.initOut, a.loopVNet); v != nil {
		return v, true
	}
	return nil, false
}

// tickFollower triggers pending spins and cleans up completed ones.
func (a *Agent) tickFollower(now int64) {
	if !a.isDeadlock {
		return
	}
	if !a.spinStarted && now >= a.followSpin {
		a.triggerSpin(now)
		return
	}
	if a.spinStarted {
		for _, e := range a.frozen {
			if e.vc.SpinInProgress() {
				return
			}
		}
		// All frozen packets fully departed: resume normal operation.
		a.frozen = a.frozen[:0]
		a.isDeadlock = false
		a.spinStarted = false
		a.srcID = -1
	}
}

// chainClosed walks the frozen chain downstream from entry e and reports
// whether it comes back to e — i.e. the whole dependency cycle is frozen
// and will spin together. A broken chain (a kill_move that was dropped
// mid-path by SM contention leaves a frozen suffix) must not spin: an
// upstream router would push flits into a buffer nobody is draining.
// The walk reads peers through their published views (state at the end of
// the delivery phase), so every agent of the loop evaluates the same
// snapshot and either the entire loop fires or none of it does —
// regardless of shard count or tick order.
func (a *Agent) chainClosed(e frozenEntry) bool {
	cur, curEntry := a, e
	for steps := 0; steps <= a.s.cfg.MaxPathLen; steps++ {
		d, inPort, ok := cur.r.Downstream(curEntry.out)
		if !ok {
			return false
		}
		peer, ok := d.Agent().(*Agent)
		if !ok || !peer.view.isDeadlock || peer.view.srcID != a.srcID {
			return false
		}
		var next *frozenEntry
		for i := range peer.view.frozen {
			if peer.view.frozen[i].vc.Port() == inPort {
				next = &peer.view.frozen[i]
				break
			}
		}
		if next == nil {
			return false
		}
		if peer == a && next.vc == e.vc {
			return true
		}
		cur, curEntry = peer, *next
	}
	return false
}

// triggerSpin starts the synchronized movement for every frozen VC whose
// dependency cycle is fully frozen.
func (a *Agent) triggerSpin(now int64) {
	a.spinStarted = true
	kept := a.frozen[:0]
	for _, e := range a.frozen {
		if !a.chainClosed(e) {
			a.r.UnfreezeVC(e.vc)
			a.count("spin_aborts", 1)
			continue
		}
		// A pathological folded path could freeze two VCs sharing a port;
		// the crossbar moves one flit per port per cycle, so spin only one
		// and release the other (it re-enters detection). Closed cycles
		// cannot share ports (an output port determines its downstream
		// entry uniquely), so this never splits a fired cycle. The frozen
		// list is at most a handful of entries, so a scan over the already
		// fired ones replaces the old per-call maps.
		conflict := false
		for _, k := range kept {
			if k.out == e.out || k.vc.Port() == e.vc.Port() {
				conflict = true
				break
			}
		}
		if conflict {
			a.r.UnfreezeVC(e.vc)
			a.count("spin_aborts", 1)
			continue
		}
		peerVC := a.peerFrozenVC(e.out)
		if peerVC == nil {
			// The chain is inconsistent (should not happen: kill_move
			// timing guarantees cancellation reaches us first). Abort
			// this entry gracefully.
			a.r.UnfreezeVC(e.vc)
			a.count("spin_aborts", 1)
			continue
		}
		a.r.StartSpin(e.vc, e.out, peerVC)
		kept = append(kept, e)
	}
	a.frozen = kept
	if len(a.frozen) == 0 {
		a.isDeadlock = false
		a.spinStarted = false
		a.srcID = -1
		return
	}
	if a.srcID == a.id {
		// One spin event per recovery round, counted at the initiator.
		a.r.Stats().Spins++
		a.count("spin_events", 1)
		if a.s.cfg.CountTruth {
			if a.classTrue {
				a.count("true_positive_spins", 1)
			} else {
				a.count("false_positive_spins", 1)
			}
		}
	}
}

// peerFrozenVC resolves the downstream frozen VC our spin flits will land
// in: the VC the downstream agent froze at the input port our link feeds,
// for the same recovery source. Like chainClosed it reads the peer's
// published view.
func (a *Agent) peerFrozenVC(out int) *sim.VC {
	d, inPort, ok := a.r.Downstream(out)
	if !ok {
		return nil
	}
	peer, ok := d.Agent().(*Agent)
	if !ok {
		return nil
	}
	if !peer.view.isDeadlock || peer.view.srcID != a.srcID {
		return nil
	}
	for _, e := range peer.view.frozen {
		if e.vc.Port() == inPort {
			return e.vc
		}
	}
	return nil
}

// classifyRecovery snapshots, at probe-confirmation time (before any
// freeze distorts the oracle's liveness view), whether the watched VC is
// part of a true deadlock. A recovery whose spins run without one is a
// false positive (Fig. 9).
func (a *Agent) classifyRecovery() {
	a.classTrue = false
	for _, d := range a.r.Net().FindDeadlock() {
		if d.Router == a.id && d.Port == a.loopPort {
			a.classTrue = true
			return
		}
	}
}
