package spin_test

import (
	"fmt"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// meshPerimeterRing returns the perimeter ring of an XxY mesh with the
// ports that walk it clockwise.
func meshPerimeterRing(m *topology.Mesh) ([]int, []int) {
	e, n, w, s := topology.MeshPort(topology.East), topology.MeshPort(topology.North),
		topology.MeshPort(topology.West), topology.MeshPort(topology.South)
	var ring, ports []int
	for x := 0; x < m.X-1; x++ {
		ring = append(ring, m.RouterAt(x, 0))
		ports = append(ports, e)
	}
	for y := 0; y < m.Y-1; y++ {
		ring = append(ring, m.RouterAt(m.X-1, y))
		ports = append(ports, n)
	}
	for x := m.X - 1; x > 0; x-- {
		ring = append(ring, m.RouterAt(x, m.Y-1))
		ports = append(ports, w)
	}
	for y := m.Y - 1; y > 0; y-- {
		ring = append(ring, m.RouterAt(0, y))
		ports = append(ports, s)
	}
	return ring, ports
}

// TestSpinCountMatchesTheorem cross-checks the distributed implementation
// against the internal/core theorem: a symmetric ring whose in-ring
// packets sit d hops from their destinations resolves in exactly d spins,
// and never more than m-1.
func TestSpinCountMatchesTheorem(t *testing.T) {
	cases := []struct {
		x, y  int
		ahead int
	}{
		{2, 2, 2}, {2, 2, 3},
		{3, 3, 2}, {3, 3, 4}, {3, 3, 7},
		{4, 4, 2}, {4, 4, 5},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("mesh%dx%d_ahead%d", c.x, c.y, c.ahead), func(t *testing.T) {
			mesh, err := topology.NewMesh(c.x, c.y, 1)
			if err != nil {
				t.Fatal(err)
			}
			ring, ports := meshPerimeterRing(mesh)
			m := len(ring)
			if c.ahead >= m {
				t.Skip("ahead beyond ring length")
			}
			sc := buildRing(t, mesh, ring, ports, c.ahead, spin.Config{TDD: 24}, 2)
			sc.net.Run(12000)
			st := sc.net.Stats()
			if st.Ejected != int64(m) {
				t.Fatalf("ejected %d/%d", st.Ejected, m)
			}
			wantSpins := int64(c.ahead - 1) // in-ring packets are ahead-1 hops from home
			if st.Spins != wantSpins {
				t.Fatalf("spins = %d, want %d (theorem bound %d)", st.Spins, wantSpins, m-1)
			}
			if st.Spins > int64(m-1) {
				t.Fatalf("theorem bound violated: %d > %d", st.Spins, m-1)
			}
		})
	}
}

// TestSpinDragonflyGlobalLinkRing exercises loop-length accumulation over
// heterogeneous link latencies: a dependency ring crossing two 3-cycle
// global channels must still resolve (the move's spin cycle is computed
// from the probe's accumulated hop latency, not a hop count).
func TestSpinDragonflyGlobalLinkRing(t *testing.T) {
	d, err := topology.NewDragonfly(1, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Build a dependency ring through three groups (0 -> 1 -> 2 -> 0):
	// each segment is the pair's single global channel plus, when the
	// landing router differs from the next launch router, an intra-group
	// hop.
	globalLink := func(from, to int) (topology.Link, bool) {
		for _, l := range d.Links() {
			if d.Group(l.Src) == from && d.Group(l.Dst) == to {
				return l, true
			}
		}
		return topology.Link{}, false
	}
	a, okA := globalLink(0, 1)
	b, okB := globalLink(1, 3)
	c, okC := globalLink(3, 0)
	if !okA || !okB || !okC {
		t.Fatal("missing global channels for the 3-group ring")
	}
	var ring, ports []int
	addSeg := func(g topology.Link, nextSrc int) {
		ring = append(ring, g.Src)
		ports = append(ports, g.SrcPort)
		if g.Dst != nextSrc {
			ring = append(ring, g.Dst)
			ports = append(ports, d.LocalPortTo(g.Dst, nextSrc))
		}
	}
	addSeg(a, b.Src)
	addSeg(b, c.Src)
	addSeg(c, a.Src)
	if len(ring) < 3 {
		t.Fatalf("ring construction failed: %v", ring)
	}
	sc := buildRing(t, d, ring, ports, 2, spin.Config{TDD: 32}, 2)
	sc.net.Run(20)
	if !sc.net.Deadlocked() {
		t.Fatal("cross-group ring did not deadlock")
	}
	sc.net.Run(4000)
	if got, want := sc.net.Stats().Ejected, int64(len(ring)); got != want {
		t.Fatalf("ejected %d/%d across global links", got, want)
	}
	if sc.net.Stats().Spins < 1 {
		t.Fatal("no spin executed")
	}
}

// TestSpinKillMovesOccurUnderStress: sustained multi-loop congestion
// exercises the cancellation path (moves dropped at stale or conflicting
// routers must be followed by kill_moves, and the network must stay
// consistent).
func TestSpinKillMovesOccurUnderStress(t *testing.T) {
	mesh, _ := topology.NewMesh(5, 5, 1)
	scheme := spin.New(spin.Config{TDD: 24})
	pat, _ := traffic.ByName("uniform_random", mesh)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       31,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.45},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(12000)
	st := net.Stats()
	if st.Counter("kill_moves_sent") == 0 {
		t.Skip("no kill_move triggered at this seed; covered statistically elsewhere")
	}
	if !net.Drain(400000) {
		t.Fatalf("stress run with kill_moves failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinProbeForkingHappensWithMultiVC: with several VCs per port,
// probes must fork at input ports whose packets wait on distinct output
// ports (the rule Fig. 4's walkthrough demonstrates at node 2).
func TestSpinProbeForkingHappensWithMultiVC(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 4, 1)
	scheme := spin.New(spin.Config{TDD: 24})
	pat, _ := traffic.ByName("bit_complement", mesh)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VCsPerVNet: 3,
		Seed:       33,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(10000)
	if net.Stats().Counter("probe_forks") == 0 {
		t.Fatal("multi-VC congestion never forked a probe")
	}
	if !net.Drain(400000) {
		t.Fatal("multi-VC fork stress failed to drain")
	}
}

// TestSpinForkDisabledStillSafe: the no-fork ablation must stay correct
// (recoveries may be rarer, but nothing breaks and the network stays live
// at a load it can drain).
func TestSpinForkDisabledStillSafe(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 4, 1)
	scheme := spin.New(spin.Config{TDD: 24, DisableProbeFork: true})
	pat, _ := traffic.ByName("transpose", mesh)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VCsPerVNet: 2,
		Seed:       35,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2500)
	if !net.Drain(400000) {
		t.Fatalf("fork-disabled run failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinSMClassPriority checks the documented contention order.
func TestSpinSMClassPriority(t *testing.T) {
	order := []sim.SMKind{sim.SMProbe, sim.SMMove, sim.SMKillMove, sim.SMProbeMove}
	if sim.SMProbeMove.ClassPriority() <= sim.SMMove.ClassPriority() {
		t.Fatal("probe_move must outrank move")
	}
	if sim.SMMove.ClassPriority() != sim.SMKillMove.ClassPriority() {
		t.Fatal("move and kill_move share a class")
	}
	if sim.SMProbe.ClassPriority() >= sim.SMMove.ClassPriority() {
		t.Fatal("probe must rank below move")
	}
	for _, k := range order {
		if k.String() == "" {
			t.Fatal("missing SM kind name")
		}
	}
}

// TestSpinEpochRotation: every router eventually holds the highest
// priority, and priorities are a permutation at any cycle.
func TestSpinEpochRotation(t *testing.T) {
	mesh, _ := topology.NewMesh(3, 3, 1)
	scheme := spin.New(spin.Config{TDD: 16})
	_, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VCsPerVNet: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := mesh.NumRouters()
	epoch := int64(4 * 16)
	everTop := make([]bool, n)
	for e := int64(0); e < int64(n); e++ {
		now := e * epoch
		seen := make([]bool, n)
		for r := 0; r < n; r++ {
			pr := scheme.Priority(r, now)
			if pr < 0 || pr >= n || seen[pr] {
				t.Fatalf("priority not a permutation at epoch %d", e)
			}
			seen[pr] = true
			if pr == n-1 {
				everTop[r] = true
			}
		}
	}
	for r, ok := range everTop {
		if !ok {
			t.Fatalf("router %d never reached top priority across %d epochs", r, n)
		}
	}
}

// TestSpinRecoveryIsVNetScoped is the regression test for a bug where an
// idle VC belonging to another virtual network caused every probe to be
// dropped as "progress possible": a deadlock confined to one vnet must be
// detected and recovered regardless of other vnets' state.
func TestSpinRecoveryIsVNetScoped(t *testing.T) {
	mesh, err := topology.NewMesh(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := []int{0, 1, 3, 2}
	ports := []int{
		topology.MeshPort(topology.East),
		topology.MeshPort(topology.North),
		topology.MeshPort(topology.West),
		topology.MeshPort(topology.South),
	}
	table := &routing.Table{}
	for i := range ring {
		dst := ring[(i+2)%len(ring)]
		table.Set(ring[i], dst, ports[i])
		table.Set(ring[(i+1)%len(ring)], dst, ports[(i+1)%len(ring)])
	}
	scheme := spin.New(spin.Config{TDD: 16})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    table,
		Scheme:     scheme,
		VNets:      3,
		VCsPerVNet: 1,
		Seed:       44,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The deadlock lives entirely in vnet 1; vnets 0 and 2 stay idle.
	for i := range ring {
		net.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+2)%len(ring)], Length: 2, VNet: 1})
	}
	net.Run(10)
	if !net.Deadlocked() {
		t.Fatal("vnet-1 ring did not deadlock")
	}
	net.Run(500)
	st := net.Stats()
	if st.Ejected != 4 {
		t.Fatalf("ejected %d/4: recovery failed with idle VCs in other vnets (probes=%d, drops=%v)",
			st.Ejected, st.Counter("probes_sent"), st.Counters)
	}
	if st.Spins < 1 {
		t.Fatal("no spin despite vnet-1 deadlock")
	}
}

// TestSpinTwoVNetsIndependentDeadlocks: simultaneous rings in two vnets
// over the same physical links both recover.
func TestSpinTwoVNetsIndependentDeadlocks(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2, 1)
	ring := []int{0, 1, 3, 2}
	ports := []int{
		topology.MeshPort(topology.East),
		topology.MeshPort(topology.North),
		topology.MeshPort(topology.West),
		topology.MeshPort(topology.South),
	}
	table := &routing.Table{}
	for i := range ring {
		dst := ring[(i+2)%len(ring)]
		table.Set(ring[i], dst, ports[i])
		table.Set(ring[(i+1)%len(ring)], dst, ports[(i+1)%len(ring)])
	}
	scheme := spin.New(spin.Config{TDD: 16})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    table,
		Scheme:     scheme,
		VNets:      2,
		VCsPerVNet: 1,
		Seed:       45,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vnet := 0; vnet < 2; vnet++ {
		for i := range ring {
			net.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+2)%len(ring)], Length: 2, VNet: vnet})
		}
	}
	net.Run(2000)
	if got := net.Stats().Ejected; got != 8 {
		t.Fatalf("ejected %d/8 across two vnet deadlocks", got)
	}
	if net.Stats().Spins < 2 {
		t.Fatalf("expected one spin per vnet ring, got %d", net.Stats().Spins)
	}
}

// TestSpinJellyfish: the paper's opening motivation — deadlock-free
// adaptive routing on a random datacenter graph, where no turn model or
// escape construction exists. SPIN with one VC must keep it live.
func TestSpinJellyfish(t *testing.T) {
	rng := newSeededRand(51)
	j, err := topology.NewJellyfish(16, 2, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 32})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   j,
		Routing:    &routing.MinAdaptive{Topo: j},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       52,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(j.NumTerminals()), Rate: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(4000)
	if net.Stats().Ejected == 0 {
		t.Fatal("no traffic delivered on jellyfish")
	}
	if !net.Drain(300000) {
		t.Fatalf("jellyfish failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinFatTree: indirect topologies route fine with BFS-minimal
// adaptive + SPIN (edge-spine-edge paths have huge VC-cycle potential
// through the shared spines).
func TestSpinFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(8, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 32})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   ft,
		Routing:    &routing.MinAdaptive{Topo: ft},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       53,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(ft.NumTerminals()), Rate: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(4000)
	if !net.Drain(300000) {
		t.Fatalf("fattree failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinSMLoadStaysLow guards the Fig. 8(b) claim: even under
// saturation-level adversarial load, special messages must use only a
// tiny fraction of link bandwidth.
func TestSpinSMLoadStaysLow(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 4, 1)
	scheme := spin.New(spin.Config{})
	pat, _ := traffic.ByName("bit_complement", mesh)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VNets:      3,
		VCsPerVNet: 1,
		Seed:       61,
		StatsStart: 500,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.5, VNets: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(8000)
	u := net.LinkUtilisation()
	if u.SMAll > 0.05 {
		t.Fatalf("SM link utilisation %.3f exceeds 5%% (probe %.3f)", u.SMAll, u.SM[0])
	}
}

// TestSpinProbeRateBounded: sustained congestion without any deadlock
// keeps probing (the watched VCs make progress, re-arming detection), but
// the rate stays bounded by one probe per router per tDD and none of the
// probes may ever confirm on an acyclic workload.
func TestSpinProbeRateBounded(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 4, 1)
	scheme := spin.New(spin.Config{TDD: 16})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.XY{Mesh: mesh}, // acyclic: probes never confirm
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       62,
		Traffic:    &traffic.Synthetic{Pattern: hotspot{dst: 15}, Rate: 0.6, DataFrac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(4000)
	probes := net.Stats().Counter("probes_sent")
	if probes == 0 {
		t.Skip("hotspot produced no probes at this seed")
	}
	// Upper bound: every router probing on every tDD expiry.
	maxProbes := int64(net.NumRouters()) * 4000 / 16
	if probes > maxProbes {
		t.Fatalf("probe rate above the one-per-expiry bound: %d > %d", probes, maxProbes)
	}
	if net.Stats().Counter("recoveries") != 0 {
		t.Fatal("recovery confirmed on an acyclic workload")
	}
}
