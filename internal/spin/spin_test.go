package spin_test

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ringScenario wires an explicit dependency ring: packet i is injected at
// terminal ring[i] with destination ring[(i+ahead)%m], table-routed along
// the ring, so after the first hop every packet sits in a ring VC
// requesting the buffer its successor holds — a genuine deadlock.
type ringScenario struct {
	net    *sim.Network
	scheme *spin.Scheme
	ring   []int
	m      int
}

// buildRing constructs the scenario on topo using ringPorts[i] = output
// port from ring[i] to ring[i+1].
func buildRing(t *testing.T, topo topology.Topology, ring []int, ringPorts []int, ahead int, cfg spin.Config, pktLen int) *ringScenario {
	t.Helper()
	m := len(ring)
	table := &routing.Table{}
	for i := 0; i < m; i++ {
		dst := ring[(i+ahead)%m]
		for j := 0; j < ahead; j++ {
			at := (i + j) % m
			if ring[at] == dst {
				break
			}
			table.Set(ring[at], dst, ringPorts[at])
		}
	}
	scheme := spin.New(cfg)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   topo,
		Routing:    table,
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		n.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+ahead)%m], Length: pktLen})
	}
	return &ringScenario{net: n, scheme: scheme, ring: ring, m: m}
}

func squareRing(t *testing.T) (*topology.Mesh, []int, []int) {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -E-> 1 -N-> 3 -W-> 2 -S-> 0
	ring := []int{0, 1, 3, 2}
	ports := []int{
		topology.MeshPort(topology.East),
		topology.MeshPort(topology.North),
		topology.MeshPort(topology.West),
		topology.MeshPort(topology.South),
	}
	return mesh, ring, ports
}

func perimeterRing(t *testing.T) (*topology.Mesh, []int, []int) {
	t.Helper()
	mesh, err := topology.NewMesh(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := []int{0, 1, 2, 5, 8, 7, 6, 3}
	e, n, w, s := topology.MeshPort(topology.East), topology.MeshPort(topology.North),
		topology.MeshPort(topology.West), topology.MeshPort(topology.South)
	ports := []int{e, e, n, n, w, w, s, s}
	return mesh, ring, ports
}

func TestRingScenarioActuallyDeadlocks(t *testing.T) {
	mesh, ring, ports := squareRing(t)
	// No scheme: the deadlock must form and persist.
	table := &routing.Table{}
	m := len(ring)
	for i := 0; i < m; i++ {
		dst := ring[(i+2)%m]
		table.Set(ring[i], dst, ports[i])
		table.Set(ring[(i+1)%m], dst, ports[(i+1)%m])
	}
	n, err := sim.NewNetwork(sim.Config{Topology: mesh, Routing: table, VCsPerVNet: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		n.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+2)%m], Length: 2})
	}
	n.Run(50)
	if !n.Deadlocked() {
		t.Fatal("ring scenario did not deadlock without a recovery scheme")
	}
	n.Run(500)
	if n.Stats().Ejected != 0 {
		t.Fatal("deadlocked packets ejected without recovery?!")
	}
	if !n.Deadlocked() {
		t.Fatal("deadlock silently dissolved")
	}
}

func TestSpinResolvesSquareRing(t *testing.T) {
	mesh, ring, ports := squareRing(t)
	sc := buildRing(t, mesh, ring, ports, 2, spin.Config{TDD: 16}, 2)
	sc.net.Run(10)
	if !sc.net.Deadlocked() {
		t.Fatal("deadlock did not form")
	}
	sc.net.Run(440)
	st := sc.net.Stats()
	if st.Ejected != 4 {
		t.Fatalf("ejected %d/4 packets after SPIN recovery", st.Ejected)
	}
	if st.Spins < 1 {
		t.Fatal("no spin recorded")
	}
	if st.Counter("recoveries") < 1 {
		t.Fatal("no recovery confirmed")
	}
	if sc.net.Deadlocked() {
		t.Fatal("oracle still reports deadlock")
	}
}

func TestSpinSquareRingSingleSpin(t *testing.T) {
	mesh, ring, ports := squareRing(t)
	sc := buildRing(t, mesh, ring, ports, 2, spin.Config{TDD: 16}, 2)
	sc.net.Run(450)
	if got := sc.net.Stats().Spins; got != 1 {
		t.Fatalf("square ring with 2-ahead destinations needs exactly 1 spin, got %d", got)
	}
}

func TestSpinMultiSpinPerimeter(t *testing.T) {
	mesh, ring, ports := perimeterRing(t)
	sc := buildRing(t, mesh, ring, ports, 3, spin.Config{TDD: 24}, 2)
	sc.net.Run(15)
	if !sc.net.Deadlocked() {
		t.Fatal("perimeter deadlock did not form")
	}
	sc.net.Run(3000)
	st := sc.net.Stats()
	if st.Ejected != 8 {
		t.Fatalf("ejected %d/8", st.Ejected)
	}
	// In-ring packets start 2 hops from their destinations: 2 spins.
	if st.Spins < 2 {
		t.Fatalf("expected >= 2 spins, got %d", st.Spins)
	}
	if st.Spins > 7 {
		t.Fatalf("theorem bound violated: %d spins > m-1 = 7", st.Spins)
	}
	if st.Counter("probe_moves_sent") < 1 {
		t.Fatal("multi-spin resolution should use probe_move")
	}
}

func TestSpinProbeMoveDisabledStillResolves(t *testing.T) {
	mesh, ring, ports := perimeterRing(t)
	sc := buildRing(t, mesh, ring, ports, 3, spin.Config{TDD: 24, DisableProbeMove: true}, 2)
	sc.net.Run(5000)
	st := sc.net.Stats()
	if st.Ejected != 8 {
		t.Fatalf("ejected %d/8 with probe_move disabled", st.Ejected)
	}
	if st.Counter("probe_moves_sent") != 0 {
		t.Fatal("probe_move sent despite being disabled")
	}
}

// TestSpinFigure8 reconstructs Fig. 5(b): a folded dependency loop whose
// crossover router freezes and spins two packets.
func TestSpinFigure8(t *testing.T) {
	mesh, err := topology.NewMesh(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, n, w, s := topology.MeshPort(topology.East), topology.MeshPort(topology.North),
		topology.MeshPort(topology.West), topology.MeshPort(topology.South)
	table := &routing.Table{}
	type pkt struct {
		src, dst int
		hops     [][2]int // (router, port)
	}
	pkts := []pkt{
		{0, 4, [][2]int{{0, e}, {1, n}}},
		{1, 5, [][2]int{{1, n}, {4, e}}},
		{4, 8, [][2]int{{4, e}, {5, n}}},
		{5, 7, [][2]int{{5, n}, {8, w}}},
		{8, 4, [][2]int{{8, w}, {7, s}}},
		{7, 3, [][2]int{{7, s}, {4, w}}},
		{4, 0, [][2]int{{4, w}, {3, s}}},
		{3, 1, [][2]int{{3, s}, {0, e}}},
	}
	for _, p := range pkts {
		for _, h := range p.hops {
			table.Set(h[0], p.dst, h[1])
		}
	}
	scheme := spin.New(spin.Config{TDD: 24})
	net, err := sim.NewNetwork(sim.Config{Topology: mesh, Routing: table, Scheme: scheme, VCsPerVNet: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		net.InjectPacket(p.src, sim.PacketSpec{Dst: p.dst, Length: 2})
	}
	net.Run(15)
	if !net.Deadlocked() {
		t.Fatal("figure-8 deadlock did not form")
	}
	net.Run(4000)
	if got := net.Stats().Ejected; got != 8 {
		t.Fatalf("ejected %d/8 in figure-8 scenario", got)
	}
	if net.Deadlocked() {
		t.Fatal("figure-8 deadlock unresolved")
	}
}

// TestSpinOverlappingLoops reconstructs Fig. 5(a): two dependency cycles
// sharing routers resolve serially via the source-id rule.
func TestSpinOverlappingLoops(t *testing.T) {
	mesh, err := topology.NewMesh(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, n, w, s := topology.MeshPort(topology.East), topology.MeshPort(topology.North),
		topology.MeshPort(topology.West), topology.MeshPort(topology.South)
	// Left square clockwise: 0-1-4-3; right square counter-clockwise:
	// 1-2-5-4 — sharing routers 1 and 4.
	table := &routing.Table{}
	type pkt struct {
		src, dst int
		hops     [][2]int
	}
	left := []pkt{
		{0, 4, [][2]int{{0, e}, {1, n}}},
		{1, 3, [][2]int{{1, n}, {4, w}}},
		{4, 0, [][2]int{{4, w}, {3, s}}},
		{3, 1, [][2]int{{3, s}, {0, e}}},
	}
	right := []pkt{
		{1, 5, [][2]int{{1, e}, {2, n}}},
		{2, 4, [][2]int{{2, n}, {5, w}}},
		{5, 1, [][2]int{{5, w}, {4, s}}},
		{4, 2, [][2]int{{4, s}, {1, e}}},
	}
	pkts := append(append([]pkt(nil), left...), right...)
	for _, p := range pkts {
		for _, h := range p.hops {
			table.Set(h[0], p.dst, h[1])
		}
	}
	scheme := spin.New(spin.Config{TDD: 24})
	net, err := sim.NewNetwork(sim.Config{Topology: mesh, Routing: table, Scheme: scheme, VCsPerVNet: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two-phase injection: each loop's packets are injected together so
	// both cycles genuinely close (sources 1 and 4 feed both loops, and
	// per-NIC serialization would otherwise let the second loop's packets
	// race through half-formed dependencies).
	for _, p := range left {
		net.InjectPacket(p.src, sim.PacketSpec{Dst: p.dst, Length: 2})
	}
	net.Run(8)
	if got := len(net.FindDeadlock()); got < 4 {
		t.Fatalf("left loop not deadlocked: oracle found %d", got)
	}
	for _, p := range right {
		net.InjectPacket(p.src, sim.PacketSpec{Dst: p.dst, Length: 2})
	}
	net.Run(10)
	if got := len(net.FindDeadlock()); got < 8 {
		t.Fatalf("expected both loops deadlocked (8 VCs), oracle found %d", got)
	}
	net.Run(6000)
	st := net.Stats()
	if st.Ejected != 8 {
		t.Fatalf("ejected %d/8 with overlapping loops", st.Ejected)
	}
	if st.Spins < 2 {
		t.Fatalf("two loops should need >= 2 spins, got %d", st.Spins)
	}
}

// TestSpinCongestionFalsePositive: heavy one-directional traffic blocks
// packets long enough to trigger probes, but with an acyclic dependency
// the probes must never confirm a deadlock.
func TestSpinCongestionFalsePositive(t *testing.T) {
	// A hotspot corner on a mesh under acyclic XY routing: link VCs block
	// for far longer than tDD where the flows merge, so probes fire — but
	// with no cyclic dependency none may ever confirm.
	mesh, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 8})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.XY{Mesh: mesh},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       3,
		Traffic:    &traffic.Synthetic{Pattern: hotspot{dst: 15}, Rate: 0.5, DataFrac: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2500)
	st := net.Stats()
	if st.Counter("probes_sent") == 0 {
		t.Fatal("congestion never triggered a probe (tighten the test)")
	}
	if st.Counter("recoveries") != 0 {
		t.Fatalf("%d recoveries confirmed on an acyclic workload", st.Counter("recoveries"))
	}
	if st.Spins != 0 {
		t.Fatalf("%d spins on an acyclic workload", st.Spins)
	}
	if !net.Drain(120000) {
		t.Fatal("congested hotspot failed to drain")
	}
}

// TestSpinAdaptiveMeshStress: fully-adaptive minimal routing with one VC
// has a cyclic CDG and deadlocks readily; with SPIN the network must stay
// live under saturation across seeds and deliver every packet intact.
func TestSpinAdaptiveMeshStress(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		mesh, err := topology.NewMesh(4, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		pat, _ := traffic.ByName("transpose", mesh)
		scheme := spin.New(spin.Config{TDD: 32})
		net, err := sim.NewNetwork(sim.Config{
			Topology:   mesh,
			Routing:    &routing.MinAdaptive{Topo: mesh},
			Scheme:     scheme,
			VCsPerVNet: 1,
			Seed:       seed,
			Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		net.SetEjectHook(func(p *sim.Packet) {
			if seen[p.ID] {
				t.Fatalf("seed %d: packet %d delivered twice", seed, p.ID)
			}
			seen[p.ID] = true
		})
		net.Run(2500)
		if !net.Drain(300000) {
			t.Fatalf("seed %d: SPIN mesh failed to drain (%d in flight, %d spins, %d recoveries)",
				seed, net.InFlight(), net.Stats().Spins, net.Stats().Counter("recoveries"))
		}
		if net.Stats().Ejected != net.Stats().Injected {
			t.Fatalf("seed %d: lost packets: %d != %d", seed, net.Stats().Ejected, net.Stats().Injected)
		}
	}
}

// TestSpinAdaptiveMeshMultiVC exercises the 3-VC configuration (probe
// forking across VCs sharing an input port).
func TestSpinAdaptiveMeshMultiVC(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 4, 1)
	pat, _ := traffic.ByName("bit_complement", mesh)
	scheme := spin.New(spin.Config{TDD: 32})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.MinAdaptive{Topo: mesh},
		Scheme:     scheme,
		VCsPerVNet: 3,
		Seed:       5,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2500)
	if !net.Drain(300000) {
		t.Fatalf("3-VC SPIN mesh failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinDragonflyStress: 72-node dragonfly, fully adaptive minimal
// 1-VC routing under adversarial traffic.
func TestSpinDragonflyStress(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 64})
	pat, _ := traffic.ByName("tornado", d)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   d,
		Routing:    &routing.DflyMinimal{Dfly: d},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       6,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(3000)
	if !net.Drain(300000) {
		t.Fatalf("SPIN dragonfly failed to drain: %d in flight, %d spins", net.InFlight(), net.Stats().Spins)
	}
	if net.Stats().Ejected != net.Stats().Injected {
		t.Fatal("packet loss on dragonfly")
	}
}

// TestSpinFavorsNonMinimal: FAvORS-NMin must stay livelock-free (at most
// one misroute) and deliver everything with 1 VC.
func TestSpinFavorsNonMinimal(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 64})
	pat, _ := traffic.ByName("tornado", d)
	net, err := sim.NewNetwork(sim.Config{
		Topology:   d,
		Routing:    &routing.FAvORS{Topo: d, NonMinimal: true},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       7,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(3000)
	if !net.Drain(300000) {
		t.Fatalf("FAvORS-NMin failed to drain: %d in flight", net.InFlight())
	}
}

// TestSpinFSMWalkthrough checks the externally visible FSM progression of
// the walkthrough (Sec. IV-B): DD -> Move -> FwdProgress -> spin.
func TestSpinFSMWalkthrough(t *testing.T) {
	mesh, ring, ports := squareRing(t)
	sc := buildRing(t, mesh, ring, ports, 2, spin.Config{TDD: 16}, 2)
	sawMove, sawFwd, sawFrozen := false, false, false
	for i := 0; i < 400; i++ {
		sc.net.Step()
		for _, ag := range sc.scheme.Agents() {
			switch ag.State() {
			case "move":
				sawMove = true
			case "fwd_progress":
				sawFwd = true
			case "frozen":
				sawFrozen = true
			}
		}
	}
	if !sawMove || !sawFwd || !sawFrozen {
		t.Fatalf("FSM phases missing: move=%v fwd=%v frozen=%v", sawMove, sawFwd, sawFrozen)
	}
	if sc.net.Stats().Ejected != 4 {
		t.Fatalf("walkthrough delivered %d/4", sc.net.Stats().Ejected)
	}
}

// TestSpinIrregularTopology: SPIN is topology-agnostic — a faulted mesh
// with adaptive routing must stay deadlock-free.
func TestSpinIrregularTopology(t *testing.T) {
	rng := newSeededRand(11)
	irr, err := topology.NewIrregularMesh(5, 5, 1, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	scheme := spin.New(spin.Config{TDD: 32})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   irr,
		Routing:    &routing.MinAdaptive{Topo: irr},
		Scheme:     scheme,
		VCsPerVNet: 1,
		Seed:       8,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(25), Rate: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2500)
	if !net.Drain(300000) {
		t.Fatalf("irregular-mesh SPIN failed to drain: %d in flight", net.InFlight())
	}
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// hotspot sends every packet to a fixed destination terminal.
type hotspot struct{ dst int }

func (h hotspot) Name() string                   { return "hotspot" }
func (h hotspot) Dest(src int, _ *rand.Rand) int { return h.dst }
