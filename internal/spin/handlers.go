package spin

import "repro/internal/sim"

// HandleSM implements sim.Agent: dispatch arriving special messages.
func (a *Agent) HandleSM(sm *sim.SM, inPort int) {
	switch sm.Kind {
	case sim.SMProbe:
		a.handleProbe(sm, inPort)
	case sim.SMMove:
		a.handleMoveLike(sm, inPort, false)
	case sim.SMProbeMove:
		a.handleMoveLike(sm, inPort, true)
	case sim.SMKillMove:
		a.handleKill(sm, inPort)
	}
}

// handleProbe implements Phase I processing. The initiator's own latest
// probe returning on the watched port confirms the deadlock; every other
// probe is forked out of the unique ports the packets at its input port
// are head-blocked on, or dropped when that input port shows any sign of
// forward progress.
func (a *Agent) handleProbe(sm *sim.SM, inPort int) {
	now := a.r.Now()
	if sm.Sender == a.id {
		if a.role != RoleDD {
			// Already recovering (or idle): a returning copy of an older
			// probe is dropped; the FSM handles one recovery at a time.
			a.count("probe_drops_stale", 1)
			return
		}
		// The probe closes a dependency cycle if some packet at its
		// arrival port is head-blocked on the port the probe was launched
		// from. Acceptance does not require the probe to be the latest
		// one sent: loops longer than tDD return after the counter has
		// already re-armed, and their path is still a live cycle as long
		// as the local dependency holds.
		if v := a.freezeCandidate(inPort, int(sm.FirstOut), int(sm.VNet)); v != nil {
			a.confirmDeadlock(sm, inPort, now)
			return
		}
		// A mid-loop pass of our own live probe through a folded
		// (figure-8) dependency keeps travelling (Fig. 5b, Case II).
	}
	a.forkProbe(sm, inPort)
}

// confirmDeadlock latches the loop, measures its traversal time, and
// launches the move SM announcing the spin cycle (Phase II).
func (a *Agent) confirmDeadlock(sm *sim.SM, inPort int, now int64) {
	a.loopPort = inPort
	a.loopVNet = int(sm.VNet)
	a.initOut = int(sm.FirstOut)
	a.loopPath = append(a.loopPath[:0], sm.Path...)
	a.loopLen = sm.HopCycles
	if a.loopLen <= 0 {
		a.loopLen = 1
	}
	a.spinCycle = now + 2*a.loopLen
	a.backoff = 0
	a.role = RoleMove
	a.expire = now + a.loopLen
	a.count("recoveries", 1)
	if a.s.cfg.CountTruth {
		a.classifyRecovery()
	}
	mv := a.r.NewSM()
	mv.Kind = sim.SMMove
	mv.Sender = a.id
	mv.VNet = sm.VNet
	mv.Path = append(mv.Path[:0], a.loopPath...)
	mv.SpinCycle = a.spinCycle
	mv.LoopLen = a.loopLen
	mv.Tag = a.nextTag()
	a.r.SendSM(a.initOut, mv)
}

// forkProbe applies the forking rule: if every VC at the probe's input
// port is a blocked dependency (or waiting to eject), fork the probe out
// of every unique requested link port, appending the port id; otherwise
// drop it — an idle, granted, or freshly-arrived VC means the input port
// can still make progress, so no deadlock passes through it.
func (a *Agent) forkProbe(sm *sim.SM, inPort int) {
	if len(sm.Path) >= a.s.cfg.MaxPathLen {
		a.count("probe_drops_toolong", 1)
		return
	}
	// Optional rotating-priority rule (Config.PriorityDrop): a router
	// drops probes from lower-priority senders, so only a loop's
	// highest-priority member confirms. By default probes pass freely and
	// priorities only arbitrate port contention (PickSM): any member's
	// returning probe confirms, and near-simultaneous confirmations of
	// the same loop are serialised by the move source-id rule.
	if sm.Sender != a.id && (a.s.cfg.PriorityDrop || sm.Forked || len(sm.Path) >= a.s.cfg.GraceHops) {
		now := a.r.Now()
		if a.s.Priority(a.id, now) > a.s.Priority(sm.Sender, now) {
			a.count("probe_drops_priority", 1)
			return
		}
	}
	// Only the probe's own virtual network participates: vnets are
	// independent buffer classes, so an idle or moving VC of another
	// class says nothing about this one's dependency cycle.
	var ports [32]int
	n := 0
	vcsPer := a.r.Net().Config().VCsPerVNet
	base := int(sm.VNet) * vcsPer
	for k := base; k < base+vcsPer; k++ {
		v := a.r.VC(inPort, k)
		if v.Idle() {
			a.count("probe_drops_progress", 1)
			return
		}
		if v.WaitingToEject() {
			continue
		}
		out, ok := blockedDependency(v)
		if !ok {
			// Granted, unrouted, or mid-flight: progress is possible.
			a.count("probe_drops_progress", 1)
			return
		}
		dup := false
		for i := 0; i < n; i++ {
			if ports[i] == out {
				dup = true
				break
			}
		}
		if !dup && n < len(ports) {
			ports[n] = out
			n++
		}
	}
	if n == 0 {
		a.count("probe_drops_eject", 1)
		return
	}
	if n > 1 && (a.s.cfg.DisableProbeFork || sm.Forked) {
		// Forked copies do not fork again: one level of secondary
		// exploration traces dependent cycles (the paper's requirement)
		// without letting the fork tree grow geometrically.
		if a.s.cfg.DisableProbeFork {
			a.count("probe_drops_nofork", 1)
			return
		}
		n = 1
	}
	for i := 0; i < n; i++ {
		c := a.r.CloneSM(sm)
		c.Path = append(c.Path, uint8(ports[i]))
		c.HopCycles += int64(a.r.LinkLatency(ports[i]))
		if n > 1 {
			c.Forked = true
		}
		a.r.SendSM(ports[i], c)
	}
	if n > 1 {
		a.count("probe_forks", int64(n-1))
	}
}

// handleMoveLike processes move and probe_move SMs: identical traversal
// semantics, differing only in which initiator role accepts the final
// return.
func (a *Agent) handleMoveLike(sm *sim.SM, inPort int, isProbeMove bool) {
	now := a.r.Now()
	if sm.Sender == a.id && len(sm.Path) == 0 {
		// Final return to the initiator.
		wantRole := RoleMove
		if isProbeMove {
			wantRole = RoleProbeMove
		}
		if a.role != wantRole || inPort != a.loopPort {
			a.count("move_drops_misreturn", 1)
			return
		}
		if v, ok := a.localDependency(); ok {
			a.r.FreezeVC(v)
			a.frozen = append(a.frozen, frozenEntry{vc: v, out: a.initOut})
			a.isDeadlock = true
			a.srcID = a.id
			a.followSpin = sm.SpinCycle
			a.spinStarted = false
			a.role = RoleFwdProgress
			// afterSpin fires once every packet of the loop has finished
			// its synchronized movement.
			a.expire = sm.SpinCycle + int64(a.r.Net().Config().MaxPktLen)
			return
		}
		// Our own dependency dissolved while the move circulated: cancel
		// the recovery before anyone spins into our buffer.
		a.count("move_cancel_local", 1)
		a.startKill(now)
		return
	}
	if len(sm.Path) == 0 {
		a.count("move_drops_malformed", 1)
		return
	}
	out := int(sm.Path[0])
	if !a.r.HasOutLink(out) {
		a.count("move_drops_malformed", 1)
		return
	}
	if a.isDeadlock && a.srcID != sm.Sender {
		// Another recovery holds this router (Fig. 5a, Case II).
		a.count("move_drops_conflict", 1)
		return
	}
	v := a.freezeCandidate(inPort, out, int(sm.VNet))
	if v == nil {
		// The dependency the probe saw no longer exists here: drop; the
		// initiator will time out and kill_move the frozen prefix.
		a.count("move_drops_stale", 1)
		return
	}
	a.r.FreezeVC(v)
	a.frozen = append(a.frozen, frozenEntry{vc: v, out: out})
	a.isDeadlock = true
	a.srcID = sm.Sender
	a.followSpin = sm.SpinCycle
	a.spinStarted = false
	fwd := a.r.CloneSM(sm)
	fwd.Path = fwd.Path[1:]
	a.r.SendSM(out, fwd)
}

// freezeCandidate picks the VC to freeze: head-blocked at inPort wanting
// out within the recovery's virtual network, not already frozen.
func (a *Agent) freezeCandidate(inPort, out, vnet int) *sim.VC {
	vcsPer := a.r.Net().Config().VCsPerVNet
	base := vnet * vcsPer
	for k := base; k < base+vcsPer; k++ {
		v := a.r.VC(inPort, k)
		if v.Frozen() {
			continue
		}
		if o, ok := blockedDependency(v); ok && o == out {
			return v
		}
	}
	return nil
}

// handleKill processes kill_move: unfreeze the matching frozen VC and
// forward along the path; drop on source mismatch (the freeze belongs to
// a different, still-valid recovery).
func (a *Agent) handleKill(sm *sim.SM, inPort int) {
	now := a.r.Now()
	if sm.Sender == a.id && len(sm.Path) == 0 {
		if a.role == RoleKillMove {
			a.resetToDD(now)
		}
		return
	}
	if len(sm.Path) == 0 {
		return
	}
	out := int(sm.Path[0])
	if !a.r.HasOutLink(out) {
		return
	}
	if !a.isDeadlock || a.srcID != sm.Sender {
		a.count("kill_drops", 1)
		return
	}
	kept := a.frozen[:0]
	removed := false
	for _, e := range a.frozen {
		if !removed && e.vc.Port() == inPort && e.out == out && !e.vc.SpinInProgress() {
			a.r.UnfreezeVC(e.vc)
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	a.frozen = kept
	if len(a.frozen) == 0 {
		a.isDeadlock = false
		a.srcID = -1
		a.spinStarted = false
	}
	fwd := a.r.CloneSM(sm)
	fwd.Path = fwd.Path[1:]
	a.r.SendSM(out, fwd)
}

// PickSM implements sim.Agent: SM class priority first (probe_move > move
// = kill_move > probe), then the rotating dynamic priority of the sending
// router, then the lower router id — a total order, so contention is
// deterministic.
func (a *Agent) PickSM(_ int, cands []*sim.SM) *sim.SM {
	now := a.r.Now()
	best := cands[0]
	for _, c := range cands[1:] {
		if smLess(a.s, now, best, c) {
			best = c
		}
	}
	a.count("sm_contention_drops", int64(len(cands)-1))
	return best
}

// smLess reports whether b outranks a.
func smLess(s *Scheme, now int64, a, b *sim.SM) bool {
	ca, cb := a.Kind.ClassPriority(), b.Kind.ClassPriority()
	if ca != cb {
		return cb > ca
	}
	pa, pb := s.Priority(a.Sender, now), s.Priority(b.Sender, now)
	if pa != pb {
		return pb > pa
	}
	return b.Sender < a.Sender
}
