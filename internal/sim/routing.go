package sim

// PortRequest names an output port a packet asks for, together with the
// downstream VCs (within the packet's virtual network) it may occupy
// there. Deadlock-avoidance theories express their restrictions through
// these masks: Dally VC ladders allow a single VC, Duato escape schemes
// pair an adaptive request with an escape request, SPIN configurations
// allow every VC.
type PortRequest struct {
	Port int
	// VCMask is a bitmask over VC indices 0..VCsPerVNet-1. Bit k set means
	// downstream VC k of the packet's vnet is admissible.
	VCMask uint32
}

// AllVCs is the unrestricted VC mask.
const AllVCs uint32 = ^uint32(0)

// RoutingAlgorithm decides where packets go. Route is called once per
// router visit, when a packet's head flit reaches the front of its VC; the
// returned requests are held until the packet wins switch allocation
// (adaptive algorithms therefore adapt via the congestion state visible at
// routing time, as in Garnet). Requests are tried in preference order each
// cycle.
type RoutingAlgorithm interface {
	// Name identifies the algorithm in stats and tables.
	Name() string
	// Route computes the output-port requests for p at router r, arriving
	// on input port inPort. It must append to buf and return it; it must
	// not return an empty slice for a deliverable packet. Ejection is
	// handled by the engine before Route is consulted.
	Route(r *Router, inPort int, p *Packet, buf []PortRequest) []PortRequest
	// AtSource runs once when p is created, before injection, letting
	// source-routed decisions (UGAL, FAvORS non-minimal) annotate the
	// packet (intermediate router, phase). r is the source router.
	AtSource(r *Router, p *Packet)
}

// BaseRouting provides a no-op AtSource for algorithms without
// source-time decisions.
type BaseRouting struct{}

// AtSource implements RoutingAlgorithm with no source-time decision.
func (BaseRouting) AtSource(*Router, *Packet) {}
