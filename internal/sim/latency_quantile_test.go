package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// TestLatencyHistQuantileEdges pins the quantile estimator's edge
// behaviour: an empty histogram answers 0 for every q, identical
// samples keep every quantile inside their single bucket and clamp
// exactly to the observed value at q=1, a sparse top bucket never
// interpolates past the observed max, and non-positive samples quantile
// to 0 from bucket zero.
func TestLatencyHistQuantileEdges(t *testing.T) {
	var empty sim.LatencyHist
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// Single bucket: five samples of 5 all land in the log2 bucket
	// [4,7]; every estimate stays in [4, max] and q=1 is exactly the max
	// (linear interpolation would say 7; the clamp keeps it honest).
	var one sim.LatencyHist
	for i := 0; i < 5; i++ {
		one.Observe(5)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 1} {
		got := one.Quantile(q)
		if got < 4 || got > 5 {
			t.Errorf("single-bucket Quantile(%g) = %g, want within [4,5]", q, got)
		}
	}
	if got := one.Quantile(1); got != 5 {
		t.Errorf("single-bucket Quantile(1) = %g, want exactly the max 5", got)
	}

	// Max-clamp: one sample at 1 and one at 1025. The top bucket spans
	// [1024,2047], so uncorrected interpolation at q=1 would report 2047
	// — almost double anything ever observed.
	var sparse sim.LatencyHist
	sparse.Observe(1)
	sparse.Observe(1025)
	if got := sparse.Quantile(1); got != 1025 {
		t.Errorf("sparse Quantile(1) = %g, want the observed max 1025", got)
	}
	if got := sparse.Quantile(0.5); got != 1 {
		t.Errorf("sparse Quantile(0.5) = %g, want 1 (the lower sample)", got)
	}

	// Non-positive samples live in bucket zero and quantile to 0.
	var zero sim.LatencyHist
	zero.Observe(0)
	if got := zero.Quantile(0.99); got != 0 {
		t.Errorf("zero-valued Quantile(0.99) = %g, want 0", got)
	}
}
