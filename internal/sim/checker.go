package sim

import "fmt"

// The invariant checker is the runtime counterpart of the static CDG
// analysis: an always-on observer that asserts, every cycle, the
// structural contracts the simulator's correctness argument rests on —
// flit conservation, credit/free-slot accounting, the virtual cut-through
// interleave contract, reservation consistency, exactly-once delivery,
// hop bounds, and the SPIN liveness bounds (no VC stalls forever; no
// oracle-visible deadlock survives past the recovery bound). The fuzzing
// harness in internal/harness attaches one to every generated scenario;
// tests attach one to hand-built networks via Network.AttachChecker or
// ask for a one-shot sweep via Network.CheckStructural.

// Violation is one invariant breach observed by an InvariantChecker.
type Violation struct {
	Cycle  int64  `json:"cycle"`
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Rule, v.Detail)
}

// Rule names reported by the checker.
const (
	RuleConservation  = "conservation"   // injected - ejected != flits in buffers + links
	RuleCredit        = "credit"         // buffer occupancy / free-slot / in-flight accounting broken
	RuleVCTOrder      = "vct_order"      // flit sequence numbers not contiguous within a packet
	RuleVCTInterleave = "vct_interleave" // more than two packets, or not old-tail + new-head
	RuleReservation   = "reservation"    // VC allocation state inconsistent with buffered flits
	RuleDelivery      = "delivery"       // packet delivered more than once
	RuleHopBound      = "hop_bound"      // packet took more hops than the routing bound allows
	RuleProgress      = "progress"       // a VC's front flit made no progress for StallBound cycles
	RuleRecovery      = "recovery_bound" // oracle-visible deadlock outlived RecoveryBound cycles
	RuleWindow        = "window"         // closed-loop window accounting broken (outstanding outside [0,W], unmatched reply, drain residue)
)

// CheckOptions configures an InvariantChecker. The zero value enables the
// per-cycle structural checks (conservation, credit, VCT, reservation,
// delivery, hop bound) and disables the liveness bounds.
type CheckOptions struct {
	// Every is the structural sweep interval in cycles (default 1: every
	// cycle). Raising it trades detection latency for speed on big runs.
	Every int64
	// StallBound, when > 0, flags any VC whose front flit is unchanged
	// for more than StallBound consecutive cycles — the forward-progress
	// bound. It must exceed the scheme's worst-case legitimate wait
	// (deadlock detection with backoff plus the recovery itself).
	StallBound int64
	// RecoveryBound, when > 0, flags any VC the global FindDeadlock
	// oracle reports continuously deadlocked (same resident packet) for
	// more than RecoveryBound cycles. This is the distributed-vs-global
	// agreement check: SPIN's probes must find and break every deadlock
	// the oracle sees within the bound.
	RecoveryBound int64
	// OracleEvery is the FindDeadlock sampling interval backing the
	// RecoveryBound check (default 16).
	OracleEvery int64
	// HopSlack loosens the hop bound (default 4): a packet must satisfy
	// Hops - 2*Misroutes <= 2*diameter + HopSlack.
	HopSlack int
	// MaxViolations caps recorded violations (default 64); checking
	// continues but further violations only bump a counter.
	MaxViolations int
}

func (o *CheckOptions) setDefaults() {
	if o.Every <= 0 {
		o.Every = 1
	}
	if o.OracleEvery <= 0 {
		o.OracleEvery = 16
	}
	if o.HopSlack == 0 {
		o.HopSlack = 4
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 64
	}
}

// stallState tracks one VC's front flit across sweeps for the
// forward-progress bound.
type stallState struct {
	pktID    uint64
	frontSeq int
	bufLen   int
	since    int64
	reported bool
}

// dlSpell tracks one continuously-deadlocked VC across oracle samples.
type dlSpell struct {
	pktID    uint64
	since    int64
	reported bool
}

// InvariantChecker observes a Network and records invariant violations.
// Attach one with Network.AttachChecker before running.
type InvariantChecker struct {
	net *Network
	opt CheckOptions

	diameter   int
	violations []Violation
	dropped    int64 // violations beyond MaxViolations

	delivered map[uint64]struct{}
	stalls    map[*VC]*stallState
	spells    map[DeadlockedVC]*dlSpell

	// Reusable scratch state.
	inflight map[*VC]int
	runPkts  []*Packet
	dlBuf    []DeadlockedVC

	maxStall int64 // longest no-progress interval observed on any VC
	maxSpell int64 // longest continuous oracle-deadlock spell observed

	// windowAuditReported dedupes the sticky AuditWindows error — the
	// generator repeats its first failure forever, one report suffices.
	windowAuditReported bool
}

func newChecker(n *Network, opt CheckOptions) *InvariantChecker {
	opt.setDefaults()
	return &InvariantChecker{
		net:       n,
		opt:       opt,
		diameter:  networkDiameter(n),
		delivered: make(map[uint64]struct{}),
		stalls:    make(map[*VC]*stallState),
		spells:    make(map[DeadlockedVC]*dlSpell),
		inflight:  make(map[*VC]int),
	}
}

// networkDiameter computes the router-graph diameter for the hop bound,
// using the topology's own Diameter when it has one.
func networkDiameter(n *Network) int {
	if d, ok := n.cfg.Topology.(interface{ Diameter() int }); ok {
		return d.Diameter()
	}
	max := 0
	routers := n.cfg.Topology.NumRouters()
	for a := 0; a < routers; a++ {
		for b := 0; b < routers; b++ {
			if d := n.cfg.Topology.Distance(a, b); d > max {
				max = d
			}
		}
	}
	return max
}

// AttachChecker installs an invariant checker that sweeps the network
// every cycle (per opts) and audits every delivery. At most one checker
// may be attached; attaching replaces any previous one.
func (n *Network) AttachChecker(opt CheckOptions) *InvariantChecker {
	c := newChecker(n, opt)
	n.checker = c
	return c
}

// Checker returns the attached invariant checker, or nil.
func (n *Network) Checker() *InvariantChecker { return n.checker }

// CheckStructural runs one structural invariant sweep (conservation,
// credit accounting, VCT interleave, reservation consistency) against the
// network's instantaneous state and returns any violations. It does not
// attach anything; tests use it to audit hand-built networks mid-run.
func (n *Network) CheckStructural() []Violation {
	c := newChecker(n, CheckOptions{})
	c.sweep()
	return c.violations
}

// Violations returns the recorded violations (nil when the run is clean).
func (c *InvariantChecker) Violations() []Violation { return c.violations }

// Err summarises the violations as an error, nil when clean.
func (c *InvariantChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("sim: %d invariant violation(s), first: %s", len(c.violations)+int(c.dropped), c.violations[0])
}

// MaxStall reports the longest observed no-progress interval (cycles) on
// any VC front flit — the empirical forward-progress bound of the run.
func (c *InvariantChecker) MaxStall() int64 { return c.maxStall }

// MaxDeadlockSpell reports the longest continuous interval (cycles) any
// VC stayed in the global oracle's deadlocked set — the empirical
// recovery bound of the run.
func (c *InvariantChecker) MaxDeadlockSpell() int64 { return c.maxSpell }

func (c *InvariantChecker) report(rule, format string, args ...any) {
	if len(c.violations) >= c.opt.MaxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Cycle:  c.net.now,
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	})
	// First violation freezes the flight recorder (no-op when none is
	// attached): the ring and VC chain at the moment of failure are the
	// forensics artifact.
	c.net.CaptureForensics(rule)
}

// endOfStep runs at the end of Network.Step, after switch allocation.
func (c *InvariantChecker) endOfStep() {
	if c.net.now%c.opt.Every == 0 {
		c.sweep()
		if wt, ok := c.net.cfg.Traffic.(WindowedTraffic); ok {
			c.checkWindows(wt)
		}
	}
	if c.opt.StallBound > 0 {
		c.checkProgress()
	}
	if c.opt.RecoveryBound > 0 && c.net.now%c.opt.OracleEvery == 0 {
		c.checkRecoveryBound()
	}
}

// sweep audits conservation plus every VC's structural state.
func (c *InvariantChecker) sweep() {
	n := c.net
	clear(c.inflight)
	inTransit := 0
	for _, l := range n.links {
		inTransit += len(l.flits)
		for _, t := range l.flits {
			c.inflight[t.dst]++
		}
	}
	buffered := 0
	for _, r := range n.routers {
		r.ForEachVC(func(v *VC) {
			buffered += len(v.buf)
			c.checkVC(v)
		})
	}
	if inside := n.stats.InjectedFlits - n.stats.EjectedFlits; inside != int64(buffered+inTransit) {
		c.report(RuleConservation, "injected-ejected=%d but buffered=%d + in-transit=%d", inside, buffered, inTransit)
	}
}

// checkVC audits one VC: credit accounting, the VCT interleave contract
// (at most two packets, interleaved only as old-tail + new-head), and
// reservation consistency.
func (c *InvariantChecker) checkVC(v *VC) {
	if len(v.buf) > v.depth {
		c.report(RuleCredit, "r%d p%d vc%d holds %d flits, depth %d", v.router.ID, v.port, v.index, len(v.buf), v.depth)
	}
	if v.inFlight < 0 {
		c.report(RuleCredit, "r%d p%d vc%d negative in-flight count %d", v.router.ID, v.port, v.index, v.inFlight)
	}
	if v.FreeSlots() < 0 {
		// Holds even mid-spin: the forced drain vacates exactly one slot
		// per forced send, so len+inFlight never exceeds the depth.
		c.report(RuleCredit, "r%d p%d vc%d free slots %d (len=%d inFlight=%d depth=%d)",
			v.router.ID, v.port, v.index, v.FreeSlots(), len(v.buf), v.inFlight, v.depth)
	}
	if got := c.inflight[v]; got != v.inFlight {
		c.report(RuleCredit, "r%d p%d vc%d records %d in-flight flits, links carry %d", v.router.ID, v.port, v.index, v.inFlight, got)
	}

	// Partition the FIFO into per-packet runs, checking seq contiguity.
	c.runPkts = c.runPkts[:0]
	var runStart []int // first seq of each run
	var runEnd []int   // last seq of each run
	for _, f := range v.buf {
		k := len(c.runPkts) - 1
		if k >= 0 && c.runPkts[k] == f.Pkt {
			if f.Seq != runEnd[k]+1 {
				c.report(RuleVCTOrder, "r%d p%d vc%d packet %d flit seq %d follows %d", v.router.ID, v.port, v.index, f.Pkt.ID, f.Seq, runEnd[k])
			}
			runEnd[k] = f.Seq
			continue
		}
		for _, prev := range c.runPkts {
			if prev == f.Pkt {
				c.report(RuleVCTInterleave, "r%d p%d vc%d flits of packet %d split by another packet", v.router.ID, v.port, v.index, f.Pkt.ID)
			}
		}
		c.runPkts = append(c.runPkts, f.Pkt)
		runStart = append(runStart, f.Seq)
		runEnd = append(runEnd, f.Seq)
	}

	switch len(c.runPkts) {
	case 0:
		// Empty VC: an owner with no flits buffered or in flight would be
		// a leak, except mid-stream cut-through (the packet's remaining
		// flits are still upstream) — not distinguishable locally, so only
		// the buffered cases are asserted.
	case 1:
		// The single resident must own the VC unless it is the draining
		// old packet of a spin whose successor is still on the wire.
		if v.resvOwner == nil {
			c.report(RuleReservation, "r%d p%d vc%d buffers packet %d but has no reservation owner", v.router.ID, v.port, v.index, c.runPkts[0].ID)
		} else if v.resvOwner != c.runPkts[0] && v.inFlight == 0 {
			c.report(RuleReservation, "r%d p%d vc%d owned by packet %d but buffers only packet %d with nothing in flight",
				v.router.ID, v.port, v.index, v.resvOwner.ID, c.runPkts[0].ID)
		}
	case 2:
		// The spin overlap: the old resident's draining tail ahead of the
		// new owner's arriving head.
		oldPkt, newPkt := c.runPkts[0], c.runPkts[1]
		if runEnd[0] != oldPkt.Length-1 {
			c.report(RuleVCTInterleave, "r%d p%d vc%d old packet %d truncated at seq %d (length %d) ahead of packet %d",
				v.router.ID, v.port, v.index, oldPkt.ID, runEnd[0], oldPkt.Length, newPkt.ID)
		}
		if runStart[1] != 0 {
			c.report(RuleVCTInterleave, "r%d p%d vc%d new packet %d starts at seq %d, not its head", v.router.ID, v.port, v.index, newPkt.ID, runStart[1])
		}
		if v.resvOwner != newPkt {
			c.report(RuleReservation, "r%d p%d vc%d interleaves packets %d+%d but owner is %v", v.router.ID, v.port, v.index, oldPkt.ID, newPkt.ID, v.resvOwner)
		}
	default:
		c.report(RuleVCTInterleave, "r%d p%d vc%d holds %d distinct packets (VCT allows 2)", v.router.ID, v.port, v.index, len(c.runPkts))
	}
}

// onEject audits a fully delivered packet: exactly-once delivery and the
// hop bound (each productive hop reduces the phase-local distance, each
// misroute raises the remaining budget by at most one, over at most two
// routing phases).
func (c *InvariantChecker) onEject(p *Packet) {
	if _, dup := c.delivered[p.ID]; dup {
		c.report(RuleDelivery, "packet %d delivered twice", p.ID)
	}
	c.delivered[p.ID] = struct{}{}
	if bound := 2*c.diameter + c.opt.HopSlack; p.Hops-2*p.Misroutes > bound {
		c.report(RuleHopBound, "packet %d took %d hops with %d misroutes (bound %d, diameter %d)", p.ID, p.Hops, p.Misroutes, bound, c.diameter)
	}
}

// checkWindows audits a closed-loop generator's finite-window contract:
// every terminal's outstanding count stays within [0, W], and the
// generator's own request/reply bookkeeping balances (a reply that
// matches no issued request, or completions exceeding issues, surfaces
// through AuditWindows). Runs on the sweep cadence.
func (c *InvariantChecker) checkWindows(wt WindowedTraffic) {
	w := wt.WindowLimit()
	for t := range c.net.nics {
		if o := wt.Outstanding(t); o < 0 || o > w {
			c.report(RuleWindow, "terminal %d has %d outstanding requests, window %d", t, o, w)
		}
	}
	if err := wt.AuditWindows(); err != nil && !c.windowAuditReported {
		c.windowAuditReported = true
		c.report(RuleWindow, "%v", err)
	}
}

// checkProgress enforces the forward-progress bound: no VC's front flit
// may sit unchanged for more than StallBound cycles.
func (c *InvariantChecker) checkProgress() {
	now := c.net.now
	for _, r := range c.net.routers {
		r.ForEachVC(func(v *VC) {
			if len(v.buf) == 0 {
				delete(c.stalls, v)
				return
			}
			f := v.buf[0]
			s := c.stalls[v]
			if s == nil || s.pktID != f.Pkt.ID || s.frontSeq != f.Seq || s.bufLen != len(v.buf) {
				c.stalls[v] = &stallState{pktID: f.Pkt.ID, frontSeq: f.Seq, bufLen: len(v.buf), since: now}
				return
			}
			if stalled := now - s.since; stalled > c.maxStall {
				c.maxStall = stalled
			}
			if now-s.since > c.opt.StallBound && !s.reported {
				s.reported = true
				c.report(RuleProgress, "r%d p%d vc%d front flit (packet %d seq %d) stuck for %d cycles (bound %d, frozen=%v)",
					v.router.ID, v.port, v.index, f.Pkt.ID, f.Seq, now-s.since, c.opt.StallBound, v.frozen)
			}
		})
	}
}

// checkRecoveryBound samples the global deadlock oracle and enforces that
// no VC stays continuously deadlocked (same resident packet) for more
// than RecoveryBound cycles — the distributed detection and recovery
// machinery must agree with the oracle and clear the deadlock in time.
func (c *InvariantChecker) checkRecoveryBound() {
	now := c.net.now
	c.dlBuf = c.net.FindDeadlock()
	if t := c.net.tele; t != nil && t.probeOn() && len(c.dlBuf) > 0 {
		k := c.dlBuf[0]
		t.emit(Event{Cycle: now, Kind: EvOracleDeadlock, Router: k.Router,
			Port: k.Port, VC: k.Index, Arg: int64(len(c.dlBuf))})
	}
	current := make(map[DeadlockedVC]bool, len(c.dlBuf))
	for _, k := range c.dlBuf {
		current[k] = true
		v := c.net.routers[k.Router].in[k.Port][k.Index]
		p := v.FrontPacket()
		if p == nil {
			continue
		}
		s := c.spells[k]
		if s == nil || s.pktID != p.ID {
			c.spells[k] = &dlSpell{pktID: p.ID, since: now}
			continue
		}
		if spell := now - s.since; spell > c.maxSpell {
			c.maxSpell = spell
		}
		if now-s.since > c.opt.RecoveryBound && !s.reported {
			s.reported = true
			c.report(RuleRecovery, "r%d p%d vc%d (packet %d) deadlocked for %d cycles (bound %d)",
				k.Router, k.Port, k.Index, p.ID, now-s.since, c.opt.RecoveryBound)
		}
	}
	for k := range c.spells {
		if !current[k] {
			delete(c.spells, k)
		}
	}
}
