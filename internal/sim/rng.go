package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"strconv"
)

// RNG discipline for the sharded engine: instead of one shared generator
// whose draw sequence depends on iteration order, every router and every
// terminal owns an independent stream seeded from (Config.Seed, entity
// key). The sequence each entity observes is then a function of the
// configuration alone, never of shard count or worker interleaving —
// the foundation of the parallel-determinism contract.

// splitmix64 is a tiny (16-byte) rand.Source64. The default Go source
// carries ~5 KB of state per instance, which at one stream per router
// plus one per terminal would dominate the simulator's footprint on
// 1024-node topologies; splitmix64 passes the statistical bar for
// tie-breaking and Bernoulli draws at 0.3% of the size.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// mix64 is the splitmix64 finalizer, identical to runner.SeedFor's.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EntitySeed derives a per-entity stream seed from the simulation seed
// and a stable entity key. The derivation mirrors runner.SeedFor exactly
// (FNV-1a over the little-endian base followed by the key bytes,
// finalized with mix64), so entity streams and sweep-point seeds come
// from one documented scheme.
func EntitySeed(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(mix64(h.Sum64()))
}

// RouterKey is the entity key of router id's stream.
func RouterKey(id int) string { return "R:" + strconv.Itoa(id) }

// TerminalKey is the entity key of terminal id's stream.
func TerminalKey(id int) string { return "T:" + strconv.Itoa(id) }

// newEntityRand builds one entity stream.
func newEntityRand(base int64, key string) *rand.Rand {
	return rand.New(&splitmix64{state: uint64(EntitySeed(base, key))})
}
