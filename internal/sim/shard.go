package sim

import (
	"fmt"
	"math/bits"
	"sort"
)

// The sharded cycle engine partitions routers (with their NICs and
// terminals) into contiguous spatial shards, each stepped by a persistent
// worker. A cycle is two parallel phases plus a serial commit:
//
//   - Phase 1 (per shard): deliver link arrivals into the shard's own
//     routers, run traffic generation over the shard's terminals (each on
//     its private RNG stream), inject NIC flits, and publish agent views.
//   - Phase 2 (per shard): route computation, agent ticks, spin claims,
//     SM arbitration, and switch allocation over the shard's routers.
//     Cross-shard effects — VC reservations, in-flight credits, link
//     activations, ejection observers — are buffered into per-shard
//     outboxes instead of applied.
//   - Commit (serial): outboxes are merged in canonical shard order,
//     per-shard stats fold into the global Stats, VC snapshots refresh,
//     and the telemetry/checker hooks run.
//
// Determinism contract: every cross-router read during the parallel
// phases goes through state frozen at a barrier — VC snapshots refreshed
// at the previous commit, agent views published at the end of phase 1 —
// and every cross-router write is buffered and applied in shard-major
// order at commit. Output is therefore byte-identical at any shard count
// and any worker-pool size. Shards of one router range run the identical
// code path (outboxes included) inline on the caller, with no goroutines.

// Event-phase buckets. When a telemetry probe is attached to a sharded
// run, events are buffered per (shard, phase bucket) and flushed at
// commit bucket-major then shard-major, giving one canonical order
// regardless of worker interleaving.
const (
	phDeliver = iota
	phGen
	phInject
	phRoute
	phTick
	phResolve
	phSpin
	phSA
	numPhases
)

// SerialOnly marks a Scheme or TrafficGen whose step-time behavior cannot
// run under the sharded engine (cross-router live scans, shared mutable
// generation state). Implementations report whether serial stepping is
// required; types that do NOT implement the interface are conservatively
// treated as serial-only and clamp the shard count to 1.
type SerialOnly interface {
	RequiresSerialStep() bool
}

// ShardCloner is implemented by routing algorithms that support the
// sharded engine: CloneForShard returns an instance with private scratch
// state (lookup tables may be shared read-only; the clone must not build
// them lazily). Algorithms without it clamp the shard count to 1.
type ShardCloner interface {
	CloneForShard() RoutingAlgorithm
}

// TrafficPrep is implemented by traffic generators that keep per-terminal
// state; PrepareTerminals is called once before the first cycle with the
// terminal count.
type TrafficPrep interface {
	PrepareTerminals(n int)
}

// ViewPublisher is implemented by agents whose state other routers' agents
// read during phase 2 (the SPIN follower chain). PublishView is called at
// the end of phase 1 — after SM delivery, before any Tick — and must copy
// the cross-router-visible fields into a snapshot that stays immutable
// through phase 2.
type ViewPublisher interface {
	PublishView()
}

// resvOp is a deferred downstream-VC reservation. Normal reservations
// (switch allocation grants) are unique per VC per cycle — each input
// port is fed by exactly one link and each output port sends at most one
// head per cycle — so their commit order is irrelevant. Force
// reservations (spin targets) are applied first; a normal reservation
// finding the VC already owned then stands down in favor of the spin.
type resvOp struct {
	dvc   *VC
	pkt   *Packet
	force bool
}

// ejectRec is a fully ejected packet awaiting the serial commit replay of
// its observers (telemetry, eject hook, invariant checker, pool recycle).
type ejectRec struct {
	p        *Packet
	lat      int64
	measured bool
}

// shardState is one shard: a contiguous router range, the terminals and
// inbound links attached to it, private scratch and free lists, and the
// outboxes carrying its cross-shard effects to commit.
type shardState struct {
	n  *Network
	id int

	r0, r1 int     // router id range [r0, r1)
	l0, l1 int     // link index range [l0, l1): links whose dst lies in the shard
	terms  []int32 // terminals attached to the shard's routers, ascending

	// routing is the shard-private algorithm instance (the configured one
	// for serial runs, a CloneForShard copy otherwise).
	routing RoutingAlgorithm

	// stats accumulates the shard's measurements, drained into the global
	// Stats at every commit (so Network.Stats is always current between
	// steps). dQueued/dInNetwork are deltas against the global gauges.
	stats      Stats
	dQueued    int
	dInNetwork int
	busyFlit   int64
	busySM     int64

	// linkActive is the active bitset over the shard's inbound links; bit
	// i covers link l0+i. Set bits arrive via commit (linkMarks of the
	// sending shard), cleared bits are shard-local in phase 1.
	linkActive []uint64

	active  []*Router
	flitBuf []flitTransit
	smBuf   []smTransit

	pktPool []*Packet
	smPool  []*SM

	injectTerm int
	injectFn   func(PacketSpec)

	// Outboxes (cross-shard effects buffered during the parallel phases).
	resvOps     []resvOp
	inFlightOps []*VC
	linkMarks   []int32
	ejects      []ejectRec
	dirtyVCs    []*VC

	phase  int
	events [numPhases][]Event

	panicVal any
}

// emitEvent delivers a telemetry event: directly in serial runs
// (preserving the historical in-cycle interleaving), via the shard's
// phase bucket otherwise. Callers guard with tele != nil && probeOn().
func (s *shardState) emitEvent(e Event) {
	if s.n.nShards == 1 {
		s.n.tele.emit(e)
		return
	}
	s.events[s.phase] = append(s.events[s.phase], e)
}

// allocSM pulls a recycled special message from the shard's free list
// (keeping its Path capacity) or allocates a fresh one.
func (s *shardState) allocSM() *SM {
	if k := len(s.smPool); k > 0 {
		sm := s.smPool[k-1]
		s.smPool[k-1] = nil
		s.smPool = s.smPool[:k-1]
		path := sm.Path[:0]
		*sm = SM{Path: path, pooled: true}
		return sm
	}
	return &SM{pooled: true}
}

// freeSM returns a pool-owned SM to the shard's free list. SMs built
// directly by tests (composite literals) are left to the garbage
// collector.
func (s *shardState) freeSM(sm *SM) {
	if sm == nil || !sm.pooled {
		return
	}
	s.smPool = append(s.smPool, sm)
}

// phase1 delivers arrivals, generates and injects traffic, and publishes
// agent views for the shard.
func (s *shardState) phase1() {
	n := s.n
	s.phase = phDeliver
	s.deliverArrivals()
	if n.cfg.Traffic != nil {
		s.phase = phGen
		for _, t := range s.terms {
			s.injectTerm = int(t)
			n.cfg.Traffic.Generate(n.now, int(t), n.termRNG[t], s.injectFn)
		}
	}
	s.phase = phInject
	for _, t := range s.terms {
		n.nics[t].injectStep(n, s)
	}
	// Agent views are published after every SM delivery and injection of
	// the cycle, so phase-2 readers on any shard observe one consistent,
	// pre-Tick snapshot.
	for r := s.r0; r < s.r1; r++ {
		if vp := n.routers[r].vpub; vp != nil {
			vp.PublishView()
		}
	}
}

// phase2 runs the compute stages over the shard's active routers. The
// stages are fused per shard (no global barrier between them): every
// cross-router read inside them goes through VC snapshots or published
// views, so no shard can observe another's intra-phase progress.
func (s *shardState) phase2() {
	active := s.active[:0]
	for i := s.r0; i < s.r1; i++ {
		if r := s.n.routers[i]; r.active() {
			active = append(active, r)
		}
	}
	s.active = active
	s.phase = phRoute
	for _, r := range active {
		r.routeStage()
	}
	s.phase = phTick
	for _, r := range active {
		if r.agent != nil {
			r.agent.Tick()
		}
	}
	s.phase = phResolve
	for _, r := range active {
		r.claimSpinPorts()
	}
	for _, r := range active {
		r.resolveSMs()
	}
	s.phase = phSpin
	for _, r := range active {
		r.clearUsed()
	}
	for _, r := range active {
		r.spinStage()
	}
	s.phase = phSA
	for _, r := range active {
		r.saStage()
	}
}

// deliverArrivals moves flits and SMs that complete link traversal this
// cycle into the shard's input VCs and agent inboxes. Only links with
// traffic in flight are visited, in ascending link order; links are
// sorted by destination router at build, so shard-major order equals
// global link order.
func (s *shardState) deliverArrivals() {
	n := s.n
	for w, word := range s.linkActive {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			l := n.links[s.l0+w*64+b]
			s.deliverLink(l)
			if len(l.flits) == 0 && len(l.sms) == 0 {
				s.linkActive[w] &^= 1 << uint(b)
			}
		}
	}
}

func (s *shardState) deliverLink(l *link) {
	n := s.n
	s.flitBuf = s.flitBuf[:0]
	s.smBuf = s.smBuf[:0]
	s.flitBuf, s.smBuf = l.takeArrivals(n.now, s.flitBuf, s.smBuf)
	for _, t := range s.flitBuf {
		t.dst.inFlight--
		t.dst.enqueue(t.flit, n.now)
		if n.measuring() {
			s.stats.BufferWrites++
		}
		if t.flit.IsHead() {
			pkt := t.flit.Pkt
			pkt.Hops++
			// Misroute accounting: a hop that fails to reduce the
			// distance to the phase-local destination.
			cur, prev := l.dst.ID, l.topo.Src
			topo := n.cfg.Topology
			if topo.Distance(cur, pkt.RouteDst()) >= topo.Distance(prev, pkt.RouteDst()) {
				pkt.Misroutes++
			}
			if l.global {
				pkt.GlobalHops++
			}
		}
	}
	if len(s.smBuf) > 1 {
		sort.SliceStable(s.smBuf, func(i, j int) bool {
			return s.smBuf[i].sm.Kind.ClassPriority() > s.smBuf[j].sm.Kind.ClassPriority()
		})
	}
	for _, t := range s.smBuf {
		if n.tele != nil && n.tele.probeOn() {
			s.emitEvent(Event{Cycle: n.now, Kind: EvSMDeliver, Router: l.dst.ID,
				Port: l.topo.DstPort, Src: t.sm.Sender, VNet: int(t.sm.VNet),
				SM: t.sm.Kind.String(), Tag: t.sm.Tag, Arg: t.sm.SpinCycle})
		}
		if a := l.dst.agent; a != nil {
			a.HandleSM(t.sm, l.topo.DstPort)
		}
		// Delivered SMs are dead: agents copy (CloneSM) anything they
		// forward and never retain the original.
		s.freeSM(t.sm)
	}
}

// ejected accounts a flit leaving the network; on tails it finalises the
// packet and defers observer replay (telemetry, hooks, checker, pool
// recycle) to commit.
func (s *shardState) ejected(f Flit) {
	n := s.n
	s.stats.EjectedFlits++
	if n.measuring() {
		s.stats.EjectedFlitsMeas++
	}
	if n.tele != nil && n.tele.probeOn() {
		s.emitEvent(Event{Cycle: n.now, Kind: EvFlitEject, Router: f.Pkt.DstRouter,
			Packet: f.Pkt.ID, VNet: f.Pkt.VNet})
	}
	if !f.IsTail() {
		return
	}
	p := f.Pkt
	if p.Checksum != checksumFor(p.ID, p.Src, p.Dst, p.Length) {
		panic(fmt.Sprintf("sim: payload corruption in %v", p))
	}
	if dst := n.cfg.Topology.TerminalRouter(p.Dst); dst != p.DstRouter {
		panic(fmt.Sprintf("sim: %v ejected at wrong router", p))
	}
	p.EjectCycle = n.now
	s.stats.Ejected++
	s.dInNetwork--
	measured := p.GenCycle >= n.cfg.StatsStart
	if measured {
		s.stats.EjectedMeasured++
		lat := p.EjectCycle - p.GenCycle
		s.stats.LatencySum += lat
		s.stats.NetLatencySum += p.EjectCycle - p.InjectCycle
		s.stats.HopSum += int64(p.Hops)
		s.stats.MisrouteSum += int64(p.Misroutes)
		if lat > s.stats.MaxLatency {
			s.stats.MaxLatency = lat
		}
	}
	if n.tele != nil || n.ejectHook != nil || n.checker != nil || n.trafObs != nil || p.pooled {
		s.ejects = append(s.ejects, ejectRec{p: p, lat: p.EjectCycle - p.GenCycle, measured: measured})
	}
}

// runParallel executes one prebuilt per-shard closure set: shard 0 inline
// on the caller, the rest on the persistent workers. Worker panics are
// captured and re-raised on the caller in shard order, preserving the
// serial engine's panic-on-corruption semantics.
func (n *Network) runParallel(fns []func()) {
	if n.nShards == 1 {
		fns[0]()
		return
	}
	n.phaseWG.Add(n.nShards - 1)
	for i := 1; i < n.nShards; i++ {
		n.work <- fns[i]
	}
	fns[0]()
	n.phaseWG.Wait()
	for _, s := range n.shards {
		if pv := s.panicVal; pv != nil {
			s.panicVal = nil
			panic(pv)
		}
	}
}

// commit merges the shards' outboxes in canonical order and runs the
// serial end-of-cycle work. See the package comment at the top of this
// file for the full ordering argument.
func (n *Network) commit() {
	now := n.now
	// 1. Spin force-reservations, shards ascending.
	for _, s := range n.shards {
		for _, op := range s.resvOps {
			if op.force {
				op.dvc.applyReserve(op.pkt, now)
			}
		}
	}
	// 2. Normal reservations. At most one per VC per cycle can exist (one
	// inbound link, one head per output port); if a spin force-reserved
	// the VC this cycle the grant stands down and the spin keeps it.
	for _, s := range n.shards {
		for i, op := range s.resvOps {
			if !op.force && op.dvc.resvOwner == nil {
				op.dvc.applyReserve(op.pkt, now)
			}
			s.resvOps[i] = resvOp{}
		}
		s.resvOps = s.resvOps[:0]
	}
	// 3. In-flight credits for flits launched this cycle.
	for _, s := range n.shards {
		for i, v := range s.inFlightOps {
			v.inFlight++
			v.markDirty()
			s.inFlightOps[i] = nil
		}
		s.inFlightOps = s.inFlightOps[:0]
	}
	// 4. Link activations into the owning shards' bitsets.
	for _, s := range n.shards {
		for _, li := range s.linkMarks {
			o := n.shards[n.linkShard[li]]
			i := int(li) - o.l0
			o.linkActive[i>>6] |= 1 << uint(i&63)
		}
		s.linkMarks = s.linkMarks[:0]
	}
	// 5. Stats and gauge deltas — before the checker, whose conservation
	// sweep reads the merged flit totals.
	for _, s := range n.shards {
		s.stats.drainInto(&n.stats)
		n.queuedPackets += s.dQueued
		s.dQueued = 0
		n.inNetwork += s.dInNetwork
		s.dInNetwork = 0
	}
	// 6. Refresh the snapshots of every VC whose state changed.
	for _, s := range n.shards {
		for i, v := range s.dirtyVCs {
			v.refreshSnap()
			s.dirtyVCs[i] = nil
		}
		s.dirtyVCs = s.dirtyVCs[:0]
	}
	// 7. Telemetry busy counters.
	if n.tele != nil {
		for _, s := range n.shards {
			n.tele.busyFlit += s.busyFlit
			n.tele.busySM += s.busySM
			s.busyFlit, s.busySM = 0, 0
		}
	}
	// 8. Buffered events, bucket-major then shard-major (serial runs emit
	// directly and skip the buffers entirely).
	if n.nShards > 1 && n.tele != nil && n.tele.probeOn() {
		for ph := 0; ph < numPhases; ph++ {
			for _, s := range n.shards {
				for i := range s.events[ph] {
					n.tele.emit(s.events[ph][i])
				}
				s.events[ph] = s.events[ph][:0]
			}
		}
	}
	// 9. Ejection observer replay in shard order; pooled packets recycle
	// into the shard owning their source terminal (where injection draws
	// from) unless an observer may have retained the pointer.
	for _, s := range n.shards {
		for i, rec := range s.ejects {
			p := rec.p
			if n.tele != nil {
				n.tele.onEject(p, rec.lat, rec.measured)
			}
			if n.ejectHook != nil {
				n.ejectHook(p)
			}
			if n.trafObs != nil {
				// Closed-loop accounting: the observer must not retain p
				// (it may be recycled below), so recycling stays legal.
				n.trafObs.OnEject(p)
			}
			if n.checker != nil {
				n.checker.onEject(p)
			}
			if p.pooled && n.ejectHook == nil && n.checker == nil {
				o := n.shards[n.termShard[p.Src]]
				o.pktPool = append(o.pktPool, p)
			}
			s.ejects[i] = ejectRec{}
		}
		s.ejects = s.ejects[:0]
	}
	// 10-11. Checker, cycle counters, telemetry window close.
	if n.checker != nil {
		n.checker.endOfStep()
	}
	if n.measuring() {
		n.stats.MeasuredCycles++
	}
	n.stats.Cycles++
	n.now++
	if n.tele != nil {
		n.tele.onCycle()
	}
}
