package sim

import "fmt"

// VC is one virtual channel at a router input port: a FIFO of flits plus
// the routing and reservation state of its resident packet.
//
// Under virtual cut-through a VC normally holds at most one packet. During
// a SPIN it transiently holds the draining tail of the frozen packet and
// the arriving head of its upstream neighbour's packet; the FIFO and the
// reservation owner handle that overlap.
type VC struct {
	router *Router
	port   int // input port
	index  int // VC index within the port (vnet-major)

	buf      []Flit
	depth    int
	inFlight int // flits sent toward this VC but still on the link

	// resvOwner is the packet the VC is currently allocated to (the most
	// recently admitted one). It is set when an upstream head flit departs
	// toward this VC and cleared when that packet's tail flit is dequeued.
	resvOwner *Packet
	// activeSince is the cycle the VC last became allocated; it backs the
	// "VC active time" congestion proxy FAvORS uses.
	activeSince int64

	// Routing state of the resident (front) packet. reqs is computed once
	// per router visit when the head flit reaches the front.
	reqs     []PortRequest
	routed   bool
	target   *VC // downstream VC granted to the resident packet
	outPort  int // output port of the grant (-1 until granted)
	frozen   bool
	spinning bool // force-transmitting during a spin

	// Commit-frozen snapshot of the state other shards may read during the
	// parallel phases (downstream credit checks, congestion proxies). The
	// snapshot refreshes at the end of every commit for VCs marked dirty;
	// all cross-router reads in phase 2 go through it — on every shard
	// count, so serial and sharded runs observe identical values.
	snapFree   int   // FreeSlots at last commit
	snapLen    int   // Len at last commit
	snapResv   bool  // allocated (resvOwner != nil) at last commit
	snapActive int64 // activeSince at last commit
	snapDirty  bool  // queued on its shard's refresh list
}

// Router returns the router this VC belongs to.
func (v *VC) Router() *Router { return v.router }

// Port returns the input port this VC belongs to.
func (v *VC) Port() int { return v.port }

// Index returns the VC index within its port.
func (v *VC) Index() int { return v.index }

// VNet reports the virtual network this VC serves.
func (v *VC) VNet() int { return v.index / v.router.net.cfg.VCsPerVNet }

// Depth reports the buffer depth in flits.
func (v *VC) Depth() int { return v.depth }

// Len reports the number of buffered flits.
func (v *VC) Len() int { return len(v.buf) }

// Empty reports whether the VC holds no flits and expects none in flight.
func (v *VC) Empty() bool { return len(v.buf) == 0 && v.inFlight == 0 }

// Idle reports whether the VC is unallocated and empty.
func (v *VC) Idle() bool { return v.resvOwner == nil && v.Empty() }

// FreeSlots reports buffer slots not occupied or promised to in-flight
// flits.
func (v *VC) FreeSlots() int { return v.depth - len(v.buf) - v.inFlight }

// CanAccept reports whether a packet of the given length may be allocated
// to this VC under virtual cut-through: the VC must be unallocated and have
// room for the whole packet.
func (v *VC) CanAccept(length int) bool {
	return v.resvOwner == nil && v.FreeSlots() >= length
}

// ActiveTime reports how many cycles the VC has been allocated for, or 0
// if it is idle. It is the congestion proxy of FAvORS ("number of cycles
// the next-hop VC has been active since it last became free").
func (v *VC) ActiveTime(now int64) int64 {
	if v.resvOwner == nil {
		return 0
	}
	return now - v.activeSince
}

// refreshSnap freezes the cross-shard-visible state; called at commit for
// dirty VCs and once at construction.
func (v *VC) refreshSnap() {
	v.snapFree = v.depth - len(v.buf) - v.inFlight
	v.snapLen = len(v.buf)
	v.snapResv = v.resvOwner != nil
	v.snapActive = v.activeSince
	v.snapDirty = false
}

// markDirty queues the VC for a snapshot refresh at the next commit. It is
// called either from the VC's own shard during the parallel phases or from
// the serial commit itself, so the owning shard's list is never written
// concurrently.
func (v *VC) markDirty() {
	if v.snapDirty {
		return
	}
	v.snapDirty = true
	s := v.router.shard
	s.dirtyVCs = append(s.dirtyVCs, v)
}

// canAcceptSnap is CanAccept evaluated against the commit snapshot.
func (v *VC) canAcceptSnap(length int) bool {
	return !v.snapResv && v.snapFree >= length
}

// activeTimeSnap is ActiveTime evaluated against the commit snapshot.
func (v *VC) activeTimeSnap(now int64) int64 {
	if !v.snapResv {
		return 0
	}
	return now - v.snapActive
}

// SnapLen reports the buffered flit count as of the last commit — the
// occupancy reading congestion-aware routing (UGAL) uses for next-hop
// queues, stable across the parallel phases.
func (v *VC) SnapLen() int { return v.snapLen }

// Front returns the flit at the head of the FIFO.
func (v *VC) Front() (Flit, bool) {
	if len(v.buf) == 0 {
		return Flit{}, false
	}
	return v.buf[0], true
}

// FrontPacket returns the resident packet (the packet of the front flit).
func (v *VC) FrontPacket() *Packet {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0].Pkt
}

// Requests returns the output-port requests of the resident packet, or nil
// if no routed head is at the front. The slice must not be mutated.
func (v *VC) Requests() []PortRequest {
	if !v.routed {
		return nil
	}
	return v.reqs
}

// Granted reports the output port the resident packet holds a downstream
// VC grant for, or -1.
func (v *VC) Granted() int {
	if v.target == nil {
		return -1
	}
	return v.outPort
}

// Frozen reports whether the VC is frozen by a deadlock-recovery agent.
func (v *VC) Frozen() bool { return v.frozen }

// SpinInProgress reports whether the VC is force-transmitting its frozen
// resident; the engine clears it when that packet's tail dequeues.
func (v *VC) SpinInProgress() bool { return v.spinning }

// ResidentComplete reports whether every flit of the resident (front)
// packet is buffered. SPIN's freeze/spin machinery requires it: spinning a
// partially-arrived packet would let its trailing flits and the incoming
// spun packet outpace the single-flit-per-cycle drain and overflow the
// buffer.
func (v *VC) ResidentComplete() bool {
	p := v.FrontPacket()
	if p == nil {
		return false
	}
	if len(v.buf) < p.Length {
		return false
	}
	return v.buf[p.Length-1].Pkt == p
}

// WaitingToEject reports whether the resident packet has arrived at its
// destination router and only awaits ejection. Probes are dropped at such
// VCs: a packet waiting for ejection cannot be part of a cyclic buffer
// dependency (ejection never blocks).
func (v *VC) WaitingToEject() bool {
	p := v.FrontPacket()
	return p != nil && p.DstRouter == v.router.ID
}

// enqueue appends an arriving flit, maintaining the router's occupancy
// counters that drive the active-set worklists.
func (v *VC) enqueue(f Flit, now int64) {
	if len(v.buf) >= v.depth {
		panic(fmt.Sprintf("sim: VC overflow at r%d p%d vc%d cycle %d: depth=%d inFlight=%d frozen=%v spinning=%v resv=%v arriving=%v seq=%d front=%v",
			v.router.ID, v.port, v.index, now, v.depth, v.inFlight, v.frozen, v.spinning, v.resvOwner, f.Pkt, f.Seq, v.buf[0].Pkt))
	}
	if len(v.buf) == 0 {
		v.router.occupied++
	}
	v.router.flitCount++
	v.buf = append(v.buf, f)
	v.markDirty()
}

// dequeue removes the front flit, updating routing/reservation state when
// the departing flit is a tail.
func (v *VC) dequeue() Flit {
	f := v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	v.router.flitCount--
	if len(v.buf) == 0 {
		v.router.occupied--
	}
	if f.IsTail() {
		v.clearResidentState()
		if v.resvOwner == f.Pkt {
			v.resvOwner = nil
		}
	}
	v.markDirty()
	return f
}

// clearResidentState resets per-resident-packet routing state; the next
// packet in the FIFO (if any) will be routed afresh. The request slice
// keeps its capacity so steady-state routing never reallocates.
func (v *VC) clearResidentState() {
	v.reqs = v.reqs[:0]
	v.routed = false
	v.target = nil
	v.outPort = -1
	if v.spinning {
		v.spinning = false
		v.router.spinningVCs--
		n := v.router.net
		if n.tele != nil && n.tele.probeOn() {
			v.router.shard.emitEvent(Event{Cycle: n.now, Kind: EvSpinEnd, Router: v.router.ID,
				Port: v.port, VC: v.index})
		}
	}
}

// reserve allocates the VC to a packet whose head flit has just been sent
// toward it. force is used by spins, which overwrite the reservation while
// the previous resident drains. It is the live path (same-shard targets:
// NIC terminal VCs); cross-shard reservations are buffered as resvOps and
// go through applyReserve at commit.
func (v *VC) reserve(p *Packet, now int64, force bool) {
	if !force && v.resvOwner != nil {
		panic("sim: double VC reservation")
	}
	v.applyReserve(p, now)
}

// applyReserve installs the reservation without the double-booking check;
// commit uses it directly after arbitrating force vs. normal ops.
func (v *VC) applyReserve(p *Packet, now int64) {
	v.resvOwner = p
	v.activeSince = now
	v.markDirty()
}
