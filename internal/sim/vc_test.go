package sim

import (
	"testing"

	"repro/internal/topology"
)

// vcFixture builds a 2-router line so VCs have real routers behind them.
func vcFixture(t *testing.T) (*Network, *VC) {
	t.Helper()
	g := lineTopology(t)
	n, err := NewNetwork(Config{Topology: g, Routing: nopRouting{}, VCsPerVNet: 2, VCDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	return n, n.Router(1).VC(2, 0)
}

func TestVCCanAcceptSemantics(t *testing.T) {
	_, v := vcFixture(t)
	if !v.CanAccept(5) {
		t.Fatal("empty VC should accept a full packet")
	}
	p := &Packet{ID: 1, Length: 5}
	v.reserve(p, 10, false)
	if v.CanAccept(1) {
		t.Fatal("reserved VC accepted another packet")
	}
	if v.ActiveTime(15) != 5 {
		t.Fatalf("active time = %d, want 5", v.ActiveTime(15))
	}
	// Tail dequeue of the owner releases the reservation.
	v.enqueue(Flit{Pkt: p, Seq: 0}, 10)
	v.enqueue(Flit{Pkt: p, Seq: 4}, 11) // tail (length 5)
	v.dequeue()
	v.dequeue()
	if v.resvOwner != nil {
		t.Fatal("reservation not released on tail dequeue")
	}
	if v.ActiveTime(20) != 0 {
		t.Fatal("idle VC should report zero active time")
	}
}

func TestVCDoubleReservationPanics(t *testing.T) {
	_, v := vcFixture(t)
	v.reserve(&Packet{ID: 1, Length: 1}, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double reservation should panic")
		}
	}()
	v.reserve(&Packet{ID: 2, Length: 1}, 0, false)
}

func TestVCForceReservationOverrides(t *testing.T) {
	_, v := vcFixture(t)
	old := &Packet{ID: 1, Length: 2}
	v.reserve(old, 0, false)
	v.enqueue(Flit{Pkt: old, Seq: 0}, 0)
	v.enqueue(Flit{Pkt: old, Seq: 1}, 0)
	spun := &Packet{ID: 2, Length: 2}
	v.reserve(spun, 5, true)
	if v.resvOwner != spun {
		t.Fatal("force reserve did not override")
	}
	// Old packet's tail leaving must NOT clear the new owner.
	v.dequeue()
	v.dequeue()
	if v.resvOwner != spun {
		t.Fatal("old tail cleared the spin packet's reservation")
	}
}

func TestVCResidentComplete(t *testing.T) {
	_, v := vcFixture(t)
	p := &Packet{ID: 3, Length: 3}
	v.reserve(p, 0, false)
	v.enqueue(Flit{Pkt: p, Seq: 0}, 0)
	if v.ResidentComplete() {
		t.Fatal("partial packet reported complete")
	}
	v.enqueue(Flit{Pkt: p, Seq: 1}, 1)
	v.enqueue(Flit{Pkt: p, Seq: 2}, 2)
	if !v.ResidentComplete() {
		t.Fatal("full packet reported incomplete")
	}
}

func TestVCOverflowPanics(t *testing.T) {
	_, v := vcFixture(t)
	p := &Packet{ID: 4, Length: 5}
	for i := 0; i < 5; i++ {
		v.enqueue(Flit{Pkt: p, Seq: i}, 0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow should panic")
		}
	}()
	v.enqueue(Flit{Pkt: p, Seq: 5}, 0)
}

func TestVCVNetIndexing(t *testing.T) {
	g := lineTopology(t)
	n, err := NewNetwork(Config{Topology: g, Routing: nopRouting{}, VNets: 3, VCsPerVNet: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := n.Router(0)
	if got := r.VC(1, 0).VNet(); got != 0 {
		t.Fatalf("vc0 vnet = %d", got)
	}
	if got := r.VC(1, 3).VNet(); got != 1 {
		t.Fatalf("vc3 vnet = %d", got)
	}
	if got := r.VC(1, 5).VNet(); got != 2 {
		t.Fatalf("vc5 vnet = %d", got)
	}
}

// lineTopology is a minimal 2-router bidirectional line: terminal port 0,
// link ports 1 (east at r0 / unused at r1) and 2 (west input at r1).
func lineTopology(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.NewGraph("line2", 2, []int{0, 1}, []topology.Link{
		{Src: 0, SrcPort: 1, Dst: 1, DstPort: 2, Latency: 1},
		{Src: 1, SrcPort: 1, Dst: 0, DstPort: 2, Latency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// nopRouting always requests port 1 — enough for fixtures that never
// route real traffic.
type nopRouting struct{ BaseRouting }

func (nopRouting) Name() string { return "nop" }

func (nopRouting) Route(_ *Router, _ int, _ *Packet, buf []PortRequest) []PortRequest {
	return append(buf, PortRequest{Port: 1, VCMask: AllVCs})
}
