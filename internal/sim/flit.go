// Package sim is a cycle-accurate simulator of virtual-channel
// interconnection networks with virtual-cut-through flow control. It is the
// substrate the SPIN reproduction runs on, standing in for gem5/Garnet2.0:
// input-queued routers with per-port virtual channels, credit-style
// buffer-space accounting, single-cycle routers, pipelined multi-cycle
// links, stall-free ejection, and a special-message (SM) layer that shares
// links with flits at higher priority — exactly the transport SPIN's
// distributed protocol requires.
//
// Fidelity note (recorded in DESIGN.md): buffer-space availability is
// sampled directly rather than through delayed credit messages. This is
// the standard zero-delay-credit simplification; it shifts all
// configurations' absolute throughput identically and preserves the
// relative comparisons the paper reports.
package sim

import "fmt"

// Packet is a network packet. A packet of Length flits occupies one
// virtual channel at a time under virtual cut-through.
type Packet struct {
	// ID is unique per simulation.
	ID uint64
	// Src and Dst are terminal (NIC) ids.
	Src, Dst int
	// SrcRouter and DstRouter are the attached routers.
	SrcRouter, DstRouter int
	// VNet is the virtual network (message class) the packet travels in.
	VNet int
	// Length is the packet size in flits.
	Length int
	// GenCycle is when the traffic source created the packet; InjectCycle
	// when its head flit entered the network; EjectCycle when its tail
	// flit left.
	GenCycle, InjectCycle, EjectCycle int64
	// Intermediate is the misroute-via router for non-minimal routing
	// (-1 when routed minimally). Phase is 0 en route to the intermediate
	// router and 1 afterwards.
	Intermediate int
	Phase        int
	// GlobalHops counts dragonfly global-channel traversals (Dally VC
	// ladders key off it).
	GlobalHops int
	// Hops counts router-to-router traversals; Misroutes counts hops that
	// did not reduce the distance to the (phase-local) destination.
	Hops, Misroutes int
	// Checksum is an end-to-end payload integrity token.
	Checksum uint64

	// pooled marks packets owned by the engine's free list: created by the
	// internal traffic-generation path and recycled on tail ejection when
	// no observer could retain the pointer.
	pooled bool
}

// checksumFor derives the expected payload token for a packet identity.
func checksumFor(id uint64, src, dst, length int) uint64 {
	h := id*0x9e3779b97f4a7c15 ^ uint64(src)<<40 ^ uint64(dst)<<20 ^ uint64(length)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// RouteDst reports the router the packet is currently steering toward:
// the intermediate router in phase 0 of a non-minimal route, the final
// destination router otherwise.
func (p *Packet) RouteDst() int {
	if p.Intermediate >= 0 && p.Phase == 0 {
		return p.Intermediate
	}
	return p.DstRouter
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d len=%d vnet=%d", p.ID, p.Src, p.Dst, p.Length, p.VNet)
}

// Flit is one flow-control unit of a packet. Seq 0 is the head flit;
// Seq Length-1 the tail. Single-flit packets are head and tail at once.
type Flit struct {
	Pkt *Packet
	Seq int
}

// IsHead reports whether f is its packet's head flit.
func (f Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether f is its packet's tail flit.
func (f Flit) IsTail() bool { return f.Seq == f.Pkt.Length-1 }

// PacketSpec describes a packet a traffic generator asks a NIC to inject.
type PacketSpec struct {
	Dst    int // destination terminal
	Length int // flits
	VNet   int
}
