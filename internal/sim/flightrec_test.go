package sim

import "testing"

// probeFunc adapts a closure to the Probe interface.
type probeFunc func(Event)

func (f probeFunc) Event(e Event) { f(e) }

func TestFlightRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1024}, {-5, 1024}, {1, 1}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFlightRecorderFiltersAndWraps(t *testing.T) {
	r := NewFlightRecorder(4)
	// Flit-level kinds never enter the ring.
	r.record(Event{Cycle: 0, Kind: EvFlitInject})
	r.record(Event{Cycle: 0, Kind: EvPacketQueued})
	if r.Total() != 0 {
		t.Fatalf("non-SPIN events recorded: total %d", r.Total())
	}
	for i := int64(1); i <= 6; i++ {
		r.record(Event{Cycle: i, Kind: EvSMSend, Router: int(i)})
	}
	if r.Total() != 6 {
		t.Fatalf("total %d, want 6", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(i + 3); e.Cycle != want {
			t.Fatalf("event %d cycle %d, want %d (oldest-first tail)", i, e.Cycle, want)
		}
	}
}

func TestFlightRecorderEventsBeforeWrap(t *testing.T) {
	r := NewFlightRecorder(8)
	r.record(Event{Cycle: 1, Kind: EvSpinStart})
	r.record(Event{Cycle: 2, Kind: EvSpinEnd})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("pre-wrap events %v, want cycles 1,2", evs)
	}
}

func TestCaptureForensicsSnapshotsVCChain(t *testing.T) {
	n, v := vcFixture(t)
	rec := n.AttachFlightRecorder(8)
	n.tele.emit(Event{Cycle: 3, Kind: EvVCFreeze, Router: 1, Port: 2})
	n.tele.emit(Event{Cycle: 4, Kind: EvFlitEject}) // filtered

	p := &Packet{ID: 42, Length: 1}
	v.enqueue(Flit{Pkt: p, Seq: 0}, 3)
	v.frozen = true
	v.outPort = 1
	down := n.Router(0).VC(1, 1)
	down.spinning = true
	v.target = down

	snap := n.CaptureForensics("test_rule")
	if snap == nil || n.FlightRecorder().Snapshot() != snap {
		t.Fatal("CaptureForensics did not install a snapshot")
	}
	if snap.Reason != "test_rule" || snap.Total != 1 || len(snap.Events) != 1 {
		t.Fatalf("snapshot reason=%q total=%d events=%d, want test_rule/1/1",
			snap.Reason, snap.Total, len(snap.Events))
	}
	if len(snap.SpinningVCs) != 2 {
		t.Fatalf("chain has %d VCs, want 2 (frozen VC + its grant target)", len(snap.SpinningVCs))
	}
	var frozen, spinning *VCForensics
	for i := range snap.SpinningVCs {
		f := &snap.SpinningVCs[i]
		if f.Frozen {
			frozen = f
		}
		if f.Spinning {
			spinning = f
		}
	}
	if frozen == nil || spinning == nil {
		t.Fatalf("chain %+v missing frozen or spinning entry", snap.SpinningVCs)
	}
	if frozen.Router != 1 || frozen.Port != 2 || frozen.VC != 0 || frozen.Packet != 42 {
		t.Errorf("frozen VC = %+v, want router 1 port 2 vc 0 packet 42", frozen)
	}
	if frozen.DownRouter != 0 || frozen.DownPort != 1 || frozen.DownVC != 1 {
		t.Errorf("frozen VC downstream = (%d,%d,%d), want (0,1,1)",
			frozen.DownRouter, frozen.DownPort, frozen.DownVC)
	}
	if spinning.DownRouter != -1 {
		t.Errorf("chain-tail VC downstream router %d, want -1", spinning.DownRouter)
	}

	// Only the first capture sticks.
	if again := n.CaptureForensics("other"); again != snap || again.Reason != "test_rule" {
		t.Fatal("second CaptureForensics replaced the first snapshot")
	}
	_ = rec
}

func TestAttachFlightRecorderPreservesProbe(t *testing.T) {
	n, _ := vcFixture(t)
	var probed int
	n.AttachTelemetry(TelemetryOptions{Probe: probeFunc(func(Event) { probed++ })})
	n.AttachFlightRecorder(8)
	if n.tele.opt.Probe == nil {
		t.Fatal("attaching the flight recorder dropped the probe")
	}
	n.tele.emit(Event{Kind: EvSMSend})
	if probed != 1 {
		t.Fatalf("probe saw %d events, want 1", probed)
	}
	if n.FlightRecorder().Total() != 1 {
		t.Fatalf("recorder saw %d events, want 1", n.FlightRecorder().Total())
	}
}

func TestCaptureForensicsWithoutRecorderIsNil(t *testing.T) {
	n, _ := vcFixture(t)
	if snap := n.CaptureForensics("x"); snap != nil {
		t.Fatalf("capture without recorder returned %+v", snap)
	}
}
