package sim

import "math/bits"

// The flight recorder is the always-on crash-safe half of the
// observability layer: a fixed-size masked ring of SPIN protocol events
// (probes and state-machine sends, kills, spins, per-VC freeze
// transitions, oracle firings) that costs zero allocations in steady
// state. When the invariant checker fires — or a recovery outlives its
// bound, which reaches the same report path — the ring is snapshotted
// together with the frozen/spinning-VC chain into a ForensicsSnapshot
// that internal/harness wraps into a replayable forensics-<key>.json
// artifact.

// flightKindMask selects the SPIN protocol kinds the recorder keeps:
// everything the recovery machinery does, nothing per-flit.
const flightKindMask uint64 = 1<<EvSMSend | 1<<EvSMDrop | 1<<EvSMDeliver |
	1<<EvVCFreeze | 1<<EvVCUnfreeze | 1<<EvSpinStart | 1<<EvSpinEnd |
	1<<EvOracleDeadlock

// FlightRecorder is a bounded ring of SPIN protocol events. Attach one
// with Network.AttachFlightRecorder (or TelemetryOptions.Recorder); the
// hot path writes into preallocated slots through a power-of-two index
// mask, so steady-state recording never allocates.
type FlightRecorder struct {
	ring []Event
	mask uint64
	n    uint64 // events recorded (monotonic; ring index is n & mask)

	snap *ForensicsSnapshot // first-failure snapshot, nil until triggered
}

// NewFlightRecorder builds a recorder holding the last capacity events
// (rounded up to a power of two; <= 0 selects 1024).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	if capacity&(capacity-1) != 0 {
		capacity = 1 << bits.Len(uint(capacity))
	}
	return &FlightRecorder{ring: make([]Event, capacity), mask: uint64(capacity - 1)}
}

// record stores one event if its kind is a SPIN protocol kind. It is
// called from Telemetry.emit inside Network.Step and must not allocate.
func (r *FlightRecorder) record(e Event) {
	if flightKindMask&(1<<e.Kind) == 0 {
		return
	}
	r.ring[r.n&r.mask] = e
	r.n++
}

// Total reports how many SPIN events the recorder has seen (kept plus
// overwritten).
func (r *FlightRecorder) Total() uint64 { return r.n }

// Cap reports the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.ring) }

// Events returns the retained events oldest-first (a copy).
func (r *FlightRecorder) Events() []Event {
	if r.n <= uint64(len(r.ring)) {
		return append([]Event(nil), r.ring[:r.n]...)
	}
	at := r.n & r.mask
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[at:]...)
	out = append(out, r.ring[:at]...)
	return out
}

// Snapshot returns the forensics snapshot taken at the first invariant
// failure, or nil if none fired.
func (r *FlightRecorder) Snapshot() *ForensicsSnapshot { return r.snap }

// VCForensics is the frozen point-in-time state of one virtual channel
// involved in (or adjacent to) a recovery — the per-VC freeze state the
// snapshot captures, plus the downstream grant that stitches individual
// VCs into the spinning chain.
type VCForensics struct {
	Router   int  `json:"router"`
	Port     int  `json:"port"`
	VC       int  `json:"vc"`
	Frozen   bool `json:"frozen,omitempty"`
	Spinning bool `json:"spinning,omitempty"`
	// Deadlocked marks membership in the global oracle's deadlocked set
	// at snapshot time (a blocked VC that recovery never touched — the
	// shape a disabled or defeated protocol leaves behind).
	Deadlocked bool `json:"deadlocked,omitempty"`
	// Packet is the resident (front) packet ID, 0 when the VC is empty.
	Packet   uint64 `json:"packet,omitempty"`
	BufLen   int    `json:"buf_len"`
	InFlight int    `json:"in_flight,omitempty"`
	// OutPort is the granted output port (-1 before allocation); the
	// Down* triple names the downstream VC of the grant (-1s when none).
	OutPort    int `json:"out_port"`
	DownRouter int `json:"down_router"`
	DownPort   int `json:"down_port"`
	DownVC     int `json:"down_vc"`
}

// ForensicsSnapshot is the flight recorder's dump at the moment an
// invariant fired: the retained SPIN event tail, the reason, and the
// chain of frozen/spinning VCs (each with its downstream grant, so the
// deadlocked loop can be walked hop by hop).
type ForensicsSnapshot struct {
	Cycle  int64  `json:"cycle"`
	Reason string `json:"reason"`
	// Total is how many SPIN events the recorder saw over the whole run;
	// len(Events) of them (the most recent) are retained.
	Total  uint64  `json:"events_total"`
	Events []Event `json:"events"`
	// SpinningVCs is the freeze/spin chain: every frozen or spinning VC
	// plus the downstream VCs their residents hold grants on.
	SpinningVCs []VCForensics `json:"spinning_vcs,omitempty"`
}

// AttachFlightRecorder installs a flight recorder of the given capacity
// on the network's telemetry layer (attaching an otherwise-inert layer
// when none exists, preserving any probe/sampler already attached).
// Returns the recorder.
func (n *Network) AttachFlightRecorder(capacity int) *FlightRecorder {
	rec := NewFlightRecorder(capacity)
	if n.tele == nil {
		n.AttachTelemetry(TelemetryOptions{Recorder: rec})
	} else {
		n.tele.opt.Recorder = rec
	}
	return rec
}

// FlightRecorder returns the attached recorder, or nil.
func (n *Network) FlightRecorder() *FlightRecorder {
	if n.tele == nil {
		return nil
	}
	return n.tele.opt.Recorder
}

// CaptureForensics takes the first-failure snapshot: the event ring
// plus the current frozen/spinning-VC chain. Only the first capture
// sticks (the moment the first invariant fired is the diagnostic one);
// later calls return the existing snapshot. It is a no-op (nil) without
// an attached recorder. The invariant checker calls it from its report
// path; harnesses call it directly for non-checker failures (e.g. an
// incomplete drain).
func (n *Network) CaptureForensics(reason string) *ForensicsSnapshot {
	rec := n.FlightRecorder()
	if rec == nil {
		return nil
	}
	if rec.snap != nil {
		return rec.snap
	}
	rec.snap = &ForensicsSnapshot{
		Cycle:       n.now,
		Reason:      reason,
		Total:       rec.n,
		Events:      rec.Events(),
		SpinningVCs: n.vcChain(),
	}
	return rec.snap
}

// vcChain collects every frozen, spinning, or oracle-deadlocked VC plus
// the downstream VCs reachable through their grants — the recovery (or
// failed-to-recover) chain at snapshot time.
func (n *Network) vcChain() []VCForensics {
	seen := make(map[*VC]bool)
	deadlocked := make(map[*VC]bool)
	var chain []*VC
	add := func(v *VC) {
		if v != nil && !seen[v] {
			seen[v] = true
			chain = append(chain, v)
		}
	}
	for _, r := range n.routers {
		r.ForEachVC(func(v *VC) {
			if v.frozen || v.spinning {
				add(v)
			}
		})
	}
	// The oracle's deadlocked set covers the case recovery never ran
	// (disabled protocol, exceeded bound): blocked VCs with no freeze or
	// spin state still form the chain worth dumping.
	for _, d := range n.FindDeadlock() {
		v := n.routers[d.Router].in[d.Port][d.Index]
		deadlocked[v] = true
		add(v)
	}
	// Walk grants: each chain member's downstream target joins the chain,
	// closing the loop when the deadlocked cycle bites its own tail.
	for i := 0; i < len(chain); i++ {
		add(chain[i].target)
	}
	out := make([]VCForensics, 0, len(chain))
	for _, v := range chain {
		f := VCForensics{
			Router:     v.router.ID,
			Port:       v.port,
			VC:         v.index,
			Frozen:     v.frozen,
			Spinning:   v.spinning,
			Deadlocked: deadlocked[v],
			BufLen:     len(v.buf),
			InFlight:   v.inFlight,
			OutPort:    v.outPort,
			DownRouter: -1,
			DownPort:   -1,
			DownVC:     -1,
		}
		if p := v.FrontPacket(); p != nil {
			f.Packet = p.ID
		}
		if v.target != nil {
			f.DownRouter = v.target.router.ID
			f.DownPort = v.target.port
			f.DownVC = v.target.index
		}
		out = append(out, f)
	}
	return out
}
