package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// checkVCTInvariants asserts the virtual-cut-through contract on every
// VC: occupancy within depth, at most two packets interleaved only as
// old-tail + new-head (the spin overlap), and reservation consistency.
// The checks themselves live in the shared InvariantChecker (checker.go)
// so tests and the fuzzing harness run one implementation.
func checkVCTInvariants(t *testing.T, n *sim.Network) {
	t.Helper()
	for _, v := range n.CheckStructural() {
		t.Fatalf("invariant violation: %v", v)
	}
}

func TestVCTInvariantsUnderLoad(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	pat, _ := traffic.ByName("bit_complement", m)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.EscapeVC{Mesh: m, VCs: 2},
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.5},
		VCsPerVNet: 2,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		n.Step()
		if i%50 == 0 {
			checkVCTInvariants(t, n)
		}
	}
}

func TestFlitConservationContinuously(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(16), Rate: 0.4},
		VCsPerVNet: 2,
		Seed:       22,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		n.Step()
		st := n.Stats()
		if st.EjectedFlits > st.InjectedFlits {
			t.Fatalf("cycle %d: ejected %d flits > injected %d", i, st.EjectedFlits, st.InjectedFlits)
		}
	}
	if !n.Drain(30000) {
		t.Fatal("drain failed")
	}
	if n.Stats().EjectedFlits != n.Stats().InjectedFlits {
		t.Fatal("flits not conserved after drain")
	}
}

func TestRouterDelayAffectsLatency(t *testing.T) {
	lat := func(delay int) int64 {
		m, _ := topology.NewMesh(6, 1, 1)
		n, err := sim.NewNetwork(sim.Config{
			Topology:    m,
			Routing:     &routing.XY{Mesh: m},
			VCsPerVNet:  1,
			RouterDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got int64 = -1
		n.SetEjectHook(func(p *sim.Packet) { got = p.EjectCycle - p.GenCycle })
		n.InjectPacket(0, sim.PacketSpec{Dst: 5, Length: 1})
		n.Run(100)
		return got
	}
	l1, l3 := lat(1), lat(3)
	if l1 < 0 || l3 < 0 {
		t.Fatal("packet not delivered")
	}
	// 5 hops, each costing (link 1 + router delay): delta = 5*(3-1).
	if l3-l1 != 10 {
		t.Fatalf("router-delay scaling wrong: delay1=%d delay3=%d", l1, l3)
	}
}

func TestHeterogeneousLinkLatencies(t *testing.T) {
	// A custom 3-router line with a slow middle link.
	links := []topology.Link{
		{Src: 0, SrcPort: 1, Dst: 1, DstPort: 2, Latency: 1},
		{Src: 1, SrcPort: 1, Dst: 2, DstPort: 2, Latency: 5},
		{Src: 2, SrcPort: 1, Dst: 1, DstPort: 3, Latency: 5},
		{Src: 1, SrcPort: 4, Dst: 0, DstPort: 2, Latency: 1},
	}
	g, err := topology.NewGraph("line3", 3, []int{0, 1, 2}, links)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   g,
		Routing:    &routing.MinAdaptive{Topo: g},
		VCsPerVNet: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lat int64 = -1
	n.SetEjectHook(func(p *sim.Packet) { lat = p.EjectCycle - p.GenCycle })
	n.InjectPacket(0, sim.PacketSpec{Dst: 2, Length: 1})
	n.Run(100)
	// Hop 1: 1+1 cycles; hop 2: 5+1 cycles.
	if lat != 8 {
		t.Fatalf("latency over heterogeneous links = %d, want 8", lat)
	}
}

func TestLinkUtilisationSumsToOne(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(16), Rate: 0.3},
		VCsPerVNet: 1,
		Seed:       23,
		StatsStart: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5000)
	u := n.LinkUtilisation()
	total := u.Flit + u.SMAll + u.Idle
	if total < 0.999 || total > 1.001 {
		t.Fatalf("utilisation fractions sum to %f", total)
	}
	if u.Flit <= 0 {
		t.Fatal("no flit utilisation under load")
	}
	if u.SMAll != 0 {
		t.Fatal("SM utilisation without a recovery scheme")
	}
}

func TestNICInjectionSerialisesPerTerminal(t *testing.T) {
	m, _ := topology.NewMesh(2, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{Topology: m, Routing: &routing.XY{Mesh: m}, VCsPerVNet: 1})
	order := []uint64{}
	n.SetEjectHook(func(p *sim.Packet) { order = append(order, p.ID) })
	a := n.InjectPacket(0, sim.PacketSpec{Dst: 1, Length: 5})
	b := n.InjectPacket(0, sim.PacketSpec{Dst: 1, Length: 5})
	n.Run(200)
	if len(order) != 2 || order[0] != a.ID || order[1] != b.ID {
		t.Fatalf("per-terminal FIFO violated: %v (a=%d b=%d)", order, a.ID, b.ID)
	}
}

func TestStatsWarmupExcludesEarlyPackets(t *testing.T) {
	m, _ := topology.NewMesh(4, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VCsPerVNet: 1,
		StatsStart: 1000,
	})
	n.InjectPacket(0, sim.PacketSpec{Dst: 3, Length: 1})
	n.Run(100)
	if n.Stats().EjectedMeasured != 0 {
		t.Fatal("warmup packet measured")
	}
	if n.Stats().Ejected != 1 {
		t.Fatal("warmup packet not delivered")
	}
}

// Property: for random loads/seeds on a deadlock-free config, every
// injected packet is delivered exactly once with matching counts.
func TestDeliveryExactlyOnceProperty(t *testing.T) {
	f := func(seedRaw uint16, rateRaw uint8) bool {
		seed := int64(seedRaw) + 1
		rate := 0.05 + float64(rateRaw%40)/100
		m, _ := topology.NewMesh(3, 3, 1)
		n, err := sim.NewNetwork(sim.Config{
			Topology:   m,
			Routing:    &routing.XY{Mesh: m},
			Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(9), Rate: rate},
			VCsPerVNet: 1,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		seen := map[uint64]int{}
		n.SetEjectHook(func(p *sim.Packet) { seen[p.ID]++ })
		n.Run(800)
		if !n.Drain(20000) {
			return false
		}
		if n.Stats().Ejected != n.Stats().Injected {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestSetTrafficSwapsGenerator(t *testing.T) {
	m, _ := topology.NewMesh(4, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Neighbor(4), Rate: 0.2},
		VCsPerVNet: 1,
		Seed:       9,
	})
	n.Run(500)
	if n.Stats().Injected == 0 {
		t.Fatal("no injection")
	}
	n.SetTraffic(nil)
	// Packets already queued at the swap still inject; drain them, then
	// nothing new may appear.
	if !n.Drain(20000) {
		t.Fatal("network failed to drain after SetTraffic(nil)")
	}
	before := n.Stats().Injected
	n.Run(500)
	if n.Stats().Injected != before {
		t.Fatal("injection continued after SetTraffic(nil)")
	}
}
