package sim

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// This file is the simulator-native observability layer: a discrete-event
// probe interface compiled into the hot path, an epoch-windowed
// time-series sampler, and a log₂-bucketed latency histogram. Every hook
// in the cycle loop is a nil-check on Network.tele, so a simulation
// without telemetry attached pays nothing — the 0-allocs/cycle budget in
// internal/bench and the byte-identical exp goldens both hold with the
// layer compiled in.
//
// Events carry plain values only (IDs, port numbers, kind names), never
// pointers into engine state, so probes may retain them indefinitely
// without interfering with the packet/SM pools.

// EventKind enumerates the discrete simulator occurrences delivered to a
// Probe.
type EventKind uint8

// Event kinds. Flit-level events fire once per flit and dominate event
// volume at load; sinks that only care about lifecycle and SPIN activity
// should filter them out (internal/telemetry.Recorder does by default).
const (
	EvPacketQueued   EventKind = iota + 1 // packet created at a source queue
	EvPacketInject                        // head flit entered the network
	EvPacketEject                         // tail flit left the network (Arg = latency)
	EvFlitInject                          // one flit entered the network
	EvFlitEject                           // one flit left the network
	EvSMSend                              // SM won link arbitration (Arg = spin cycle)
	EvSMDrop                              // SM dropped: contention loss or spin-claimed port
	EvSMDeliver                           // SM handed to the destination agent
	EvVCFreeze                            // VC frozen by a recovery agent
	EvVCUnfreeze                          // freeze lifted (kill_move processing)
	EvSpinStart                           // VC began force-transmitting a spin
	EvSpinEnd                             // spinning resident's tail dequeued
	EvOracleDeadlock                      // deadlock oracle saw >= 1 deadlocked VC (Arg = count)
	numEventKinds
)

// eventKindNames is the JSON vocabulary; artifacts and traces use names,
// not ordinals, so recorded events survive kind renumbering.
var eventKindNames = [numEventKinds]string{
	EvPacketQueued:   "packet_queued",
	EvPacketInject:   "packet_inject",
	EvPacketEject:    "packet_eject",
	EvFlitInject:     "flit_inject",
	EvFlitEject:      "flit_eject",
	EvSMSend:         "sm_send",
	EvSMDrop:         "sm_drop",
	EvSMDeliver:      "sm_deliver",
	EvVCFreeze:       "vc_freeze",
	EvVCUnfreeze:     "vc_unfreeze",
	EvSpinStart:      "spin_start",
	EvSpinEnd:        "spin_end",
	EvOracleDeadlock: "oracle_deadlock",
}

// String returns the event kind name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name (artifact replay).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("sim: unknown event kind %q", s)
}

// Event is one discrete simulator occurrence. All fields are plain
// values; which are meaningful depends on Kind (packet events carry
// Packet/Src/Dst, SM events carry SM/Tag, VC events carry Port/VC).
type Event struct {
	Cycle  int64     `json:"cycle"`
	Kind   EventKind `json:"kind"`
	Router int       `json:"router"`
	Port   int       `json:"port,omitempty"`
	VC     int       `json:"vc,omitempty"`
	Packet uint64    `json:"packet,omitempty"` // packet ID
	Src    int       `json:"src,omitempty"`    // source terminal
	Dst    int       `json:"dst,omitempty"`    // destination terminal
	VNet   int       `json:"vnet,omitempty"`
	SM     string    `json:"sm,omitempty"`  // SM kind name (sm_* events)
	Tag    uint64    `json:"tag,omitempty"` // recovery-attempt tag (sm_* events)
	Arg    int64     `json:"arg,omitempty"` // kind-specific: latency, spin cycle, deadlock count
}

// Probe receives telemetry events. Implementations must not block: Event
// is called from inside Network.Step.
type Probe interface {
	Event(Event)
}

// TimeSeriesSchema versions the windowed time-series encoding.
const TimeSeriesSchema = "spin-timeseries-v1"

// WindowSample is one closed epoch window of the time-series sampler.
type WindowSample struct {
	// Start is the first cycle of the window; Cycles its width (equal to
	// the configured window except for a flushed trailing partial).
	Start  int64 `json:"start"`
	Cycles int64 `json:"cycles"`

	InjectedFlits int64 `json:"injected_flits"`
	EjectedFlits  int64 `json:"ejected_flits"`
	// QueuedPackets and InFlight are instantaneous counts at window close.
	QueuedPackets int `json:"queued_packets"`
	InFlight      int `json:"in_flight"`
	// LinkBusy and SMBusy are the fraction of link-cycles spent carrying
	// flits / special messages during the window.
	LinkBusy float64 `json:"link_busy"`
	SMBusy   float64 `json:"sm_busy"`
	// VCOccupancy is the per-vnet fraction of buffer slots holding flits
	// at window close.
	VCOccupancy []float64 `json:"vc_occupancy"`
	// Spins counts synchronized movements initiated during the window.
	Spins int64 `json:"spins"`
}

// TimeSeries is the sampler's output: one sample per closed window.
type TimeSeries struct {
	Schema  string         `json:"schema"`
	Window  int64          `json:"window"`
	Samples []WindowSample `json:"samples"`
}

// LatencyHist is a log₂-bucketed histogram of packet latencies over the
// measurement window. Bucket i counts values v with bits.Len64(v) == i,
// i.e. v in [2^(i-1), 2^i); bucket 0 holds non-positive values.
type LatencyHist struct {
	counts [65]int64
	count  int64
	sum    int64
	max    int64
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *LatencyHist) Count() int64 { return h.count }

// Sum reports the sum of observed values.
func (h *LatencyHist) Sum() int64 { return h.sum }

// Max reports the largest observed value.
func (h *LatencyHist) Max() int64 { return h.max }

// bucketBounds reports the value range [lo, hi] bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << uint(i-1)
	hi = lo*2 - 1
	return lo, hi
}

// Quantile estimates the q-quantile (0 < q <= 1) by cumulating bucket
// counts and interpolating linearly inside the selected bucket. The
// estimate always lies within the log₂ bucket containing the exact
// rank-ceil(q·count) order statistic.
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketBounds(i)
		frac := float64(rank-cum) / float64(c)
		est := float64(lo) + frac*float64(hi-lo)
		// Interpolation inside the histogram's last occupied bucket can
		// overshoot the largest value actually observed; the true order
		// statistic never does.
		if est > float64(h.max) {
			est = float64(h.max)
		}
		return est
	}
	return float64(h.max)
}

// LatencySummary is the histogram condensed to headline percentiles,
// reported alongside Stats.AvgLatency.
type LatencySummary struct {
	Count int64   `json:"count"`
	Avg   float64 `json:"avg"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary extracts the headline percentiles.
func (h *LatencyHist) Summary() LatencySummary {
	s := LatencySummary{Count: h.count, Max: h.max}
	if h.count > 0 {
		s.Avg = float64(h.sum) / float64(h.count)
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// TelemetryOptions configures the observability layer attached by
// Network.AttachTelemetry. The zero value enables only event delivery
// (and only if Probe is set).
type TelemetryOptions struct {
	// Window, when > 0, enables the epoch-windowed time-series sampler
	// with that window width in cycles.
	Window int64
	// Hist enables the measurement-window latency histogram.
	Hist bool
	// Probe, when non-nil, receives every discrete event.
	Probe Probe
	// Recorder, when non-nil, keeps a bounded ring of SPIN protocol
	// events for post-mortem forensics (see FlightRecorder).
	Recorder *FlightRecorder
}

// Telemetry is the per-network observability state. Obtain one with
// Network.AttachTelemetry; it is inert (and the network pays only
// nil-checks) when no telemetry is attached.
type Telemetry struct {
	net  *Network
	opt  TelemetryOptions
	hist *LatencyHist

	// Window accumulators. Flit/spin deltas come from the unconditional
	// Stats counters; link busy cycles are telemetry-owned because the
	// per-link counters in Stats only run inside the measurement window.
	winStart  int64
	baseInjF  int64
	baseEjF   int64
	baseSpins int64
	busyFlit  int64
	busySM    int64
	samples   []WindowSample
}

// AttachTelemetry installs the observability layer (replacing any
// previous one; nil-equivalent options detach nothing — the layer stays,
// inert). It may be attached at any point; windows start at the current
// cycle.
func (n *Network) AttachTelemetry(opt TelemetryOptions) *Telemetry {
	t := &Telemetry{net: n, opt: opt, winStart: n.now}
	if opt.Hist {
		t.hist = &LatencyHist{}
	}
	st := &n.stats
	t.baseInjF, t.baseEjF, t.baseSpins = st.InjectedFlits, st.EjectedFlits, st.Spins
	n.tele = t
	return t
}

// Telemetry returns the attached observability layer, or nil.
func (n *Network) Telemetry() *Telemetry { return n.tele }

// emit delivers an event to the flight recorder and the probe. Call
// sites guard with probeOn() so no Event struct is built when nobody
// listens.
func (t *Telemetry) emit(e Event) {
	if t.opt.Recorder != nil {
		t.opt.Recorder.record(e)
	}
	if t.opt.Probe != nil {
		t.opt.Probe.Event(e)
	}
}

// probeOn reports whether events need to be constructed at all.
func (t *Telemetry) probeOn() bool { return t.opt.Probe != nil || t.opt.Recorder != nil }

// Latency returns the measurement-window latency histogram (nil unless
// TelemetryOptions.Hist was set).
func (t *Telemetry) Latency() *LatencyHist { return t.hist }

// LatencySummary condenses the histogram (zero value without Hist).
func (t *Telemetry) LatencySummary() LatencySummary {
	if t.hist == nil {
		return LatencySummary{}
	}
	return t.hist.Summary()
}

// onEject accounts a fully ejected packet. measured mirrors the Stats
// gating: only packets generated inside the measurement window feed the
// histogram, so hist totals equal LatencySum/EjectedMeasured exactly.
func (t *Telemetry) onEject(p *Packet, lat int64, measured bool) {
	if t.hist != nil && measured {
		t.hist.Observe(lat)
	}
	if t.probeOn() {
		t.emit(Event{Cycle: t.net.now, Kind: EvPacketEject, Router: p.DstRouter,
			Packet: p.ID, Src: p.Src, Dst: p.Dst, VNet: p.VNet, Arg: lat})
	}
}

// onCycle runs at the end of Network.Step (after the cycle counters
// advanced); it closes the current window at each epoch boundary.
func (t *Telemetry) onCycle() {
	if t.opt.Window <= 0 {
		return
	}
	if t.net.now-t.winStart >= t.opt.Window {
		t.closeWindow()
	}
}

// closeWindow snapshots one sample and resets the accumulators.
func (t *Telemetry) closeWindow() {
	n := t.net
	st := &n.stats
	s := WindowSample{
		Start:         t.winStart,
		Cycles:        n.now - t.winStart,
		InjectedFlits: st.InjectedFlits - t.baseInjF,
		EjectedFlits:  st.EjectedFlits - t.baseEjF,
		QueuedPackets: n.queuedPackets,
		InFlight:      n.inNetwork,
		Spins:         st.Spins - t.baseSpins,
		VCOccupancy:   t.vcOccupancy(),
	}
	if links := int64(len(n.links)); links > 0 && s.Cycles > 0 {
		total := float64(links * s.Cycles)
		s.LinkBusy = float64(t.busyFlit) / total
		s.SMBusy = float64(t.busySM) / total
	}
	t.samples = append(t.samples, s)
	t.winStart = n.now
	t.baseInjF, t.baseEjF, t.baseSpins = st.InjectedFlits, st.EjectedFlits, st.Spins
	t.busyFlit, t.busySM = 0, 0
}

// vcOccupancy scans every input VC once (only at window close) and
// reports the per-vnet fraction of buffer slots holding flits.
func (t *Telemetry) vcOccupancy() []float64 {
	n := t.net
	occ := make([]float64, n.cfg.VNets)
	slots := make([]int64, n.cfg.VNets)
	for _, r := range n.routers {
		r.ForEachVC(func(v *VC) {
			vn := v.VNet()
			occ[vn] += float64(len(v.buf))
			slots[vn] += int64(v.depth)
		})
	}
	for i := range occ {
		if slots[i] > 0 {
			occ[i] /= float64(slots[i])
		}
	}
	return occ
}

// Flush closes a partially filled trailing window (if any cycles have
// elapsed since the last boundary). Call once at end of run before
// reading TimeSeries.
func (t *Telemetry) Flush() {
	if t.opt.Window > 0 && t.net.now > t.winStart {
		t.closeWindow()
	}
}

// TimeSeries returns the closed windows collected so far (nil without a
// configured window). The samples slice is shared; callers must not
// mutate it.
func (t *Telemetry) TimeSeries() *TimeSeries {
	if t.opt.Window <= 0 {
		return nil
	}
	return &TimeSeries{Schema: TimeSeriesSchema, Window: t.opt.Window, Samples: t.samples}
}
