package sim_test

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func meshNet(t *testing.T, x, y, vcs int, rate float64, pattern string, seed int64) *sim.Network {
	t.Helper()
	m, err := topology.NewMesh(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := traffic.ByName(pattern, m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: rate},
		VCsPerVNet: vcs,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestXYMeshDeliversAllPackets(t *testing.T) {
	n := meshNet(t, 4, 4, 2, 0.1, "uniform_random", 1)
	n.Run(2000)
	if n.Stats().Injected == 0 {
		t.Fatal("no packets injected")
	}
	if !n.Drain(5000) {
		t.Fatalf("network failed to drain: %d in flight, %d queued", n.InFlight(), n.QueuedPackets())
	}
	if n.Stats().Ejected != n.Stats().Injected {
		t.Fatalf("ejected %d != injected %d", n.Stats().Ejected, n.Stats().Injected)
	}
	if n.Stats().EjectedFlits != n.Stats().InjectedFlits {
		t.Fatalf("flit conservation broken: %d in, %d out", n.Stats().InjectedFlits, n.Stats().EjectedFlits)
	}
}

func TestZeroLoadLatencyMatchesHops(t *testing.T) {
	// A single 1-flit packet from corner to corner of a 4x4 mesh under XY:
	// 6 router-to-router hops. Count cycles from generation to ejection.
	m, _ := topology.NewMesh(4, 4, 1)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VCsPerVNet: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got *sim.Packet
	n.SetEjectHook(func(p *sim.Packet) { got = p })
	n.InjectPacket(0, sim.PacketSpec{Dst: 15, Length: 1})
	n.Run(100)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Hops != 6 {
		t.Fatalf("hops = %d, want 6", got.Hops)
	}
	lat := got.EjectCycle - got.GenCycle
	// Each hop costs 1 link cycle + 1 router pipeline cycle.
	if lat < 12 || lat > 18 {
		t.Fatalf("zero-load latency = %d, outside sane range", lat)
	}
	if got.Misroutes != 0 {
		t.Fatalf("XY produced %d misroutes", got.Misroutes)
	}
}

func TestMultiFlitPacketsStayOrdered(t *testing.T) {
	m, _ := topology.NewMesh(4, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VCsPerVNet: 1,
	})
	delivered := 0
	n.SetEjectHook(func(p *sim.Packet) { delivered++ })
	for i := 0; i < 5; i++ {
		n.InjectPacket(0, sim.PacketSpec{Dst: 3, Length: 5})
	}
	n.Run(400)
	if delivered != 5 {
		t.Fatalf("delivered %d/5 packets", delivered)
	}
}

func TestHighLoadXYStillDrains(t *testing.T) {
	// XY routing is deadlock-free; even saturated it must drain.
	n := meshNet(t, 4, 4, 1, 0.8, "bit_complement", 3)
	n.Run(3000)
	if !n.Drain(20000) {
		t.Fatalf("XY mesh failed to drain under saturation: %d in flight", n.InFlight())
	}
}

func TestXYNeverDeadlocks(t *testing.T) {
	n := meshNet(t, 4, 4, 1, 0.9, "transpose", 4)
	for i := 0; i < 3000; i++ {
		n.Step()
		if i%500 == 499 && n.Deadlocked() {
			t.Fatalf("oracle reports deadlock under XY at cycle %d", i)
		}
	}
}

func TestDragonflyMinimalDelivers(t *testing.T) {
	d, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   d,
		Routing:    &routing.DflyMinimal{Dfly: d, VCLadder: true, VCs: 2},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(d.NumTerminals()), Rate: 0.1},
		VCsPerVNet: 2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2000)
	if n.Stats().Ejected == 0 {
		t.Fatal("no packets delivered on dragonfly")
	}
	if !n.Drain(10000) {
		t.Fatalf("dragonfly failed to drain: %d in flight", n.InFlight())
	}
	if n.Stats().AvgHops() > 3.01 {
		t.Fatalf("minimal dragonfly avg hops = %f > 3", n.Stats().AvgHops())
	}
}

func TestWestFirstMeshDrains(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	pat, _ := traffic.ByName("transpose", m)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.WestFirst{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.6},
		VCsPerVNet: 1,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3000)
	if !n.Drain(20000) {
		t.Fatalf("west-first failed to drain: %d in flight", n.InFlight())
	}
}

func TestVNetIsolation(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	pat := traffic.Uniform(16)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.3, VNets: 3},
		VNets:      3,
		VCsPerVNet: 1,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2000)
	if !n.Drain(10000) {
		t.Fatal("3-vnet run failed to drain")
	}
	if n.Stats().Ejected == 0 {
		t.Fatal("no traffic in vnet run")
	}
}

func TestConfigValidation(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	if _, err := sim.NewNetwork(sim.Config{Routing: &routing.XY{Mesh: m}}); err == nil {
		t.Fatal("missing topology accepted")
	}
	if _, err := sim.NewNetwork(sim.Config{Topology: m}); err == nil {
		t.Fatal("missing routing accepted")
	}
	if _, err := sim.NewNetwork(sim.Config{Topology: m, Routing: &routing.XY{Mesh: m}, VCDepth: 2, MaxPktLen: 5}); err == nil {
		t.Fatal("VCDepth < MaxPktLen accepted")
	}
	if _, err := sim.NewNetwork(sim.Config{Topology: m, Routing: &routing.XY{Mesh: m}, VCsPerVNet: 40}); err == nil {
		t.Fatal("over-wide VC config accepted")
	}
}

func TestStatsThroughputMatchesOfferedLoadBelowSaturation(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	pat := traffic.Uniform(16)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.2},
		VCsPerVNet: 2,
		Seed:       5,
		StatsStart: 1000,
	})
	n.Run(11000)
	got := n.Stats().Throughput(16)
	if got < 0.15 || got > 0.25 {
		t.Fatalf("throughput %f far from offered 0.2", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n := meshNet(t, 4, 4, 2, 0.3, "uniform_random", 99)
		n.Run(2000)
		return n.Stats().Ejected, n.Stats().LatencySum
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", e1, l1, e2, l2)
	}
}
