package sim_test

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSwitchAllocationFairness: two terminals streaming through a shared
// link must each get a sustained share — the rotating allocation pointer
// may not starve either.
func TestSwitchAllocationFairness(t *testing.T) {
	// 3x1 line: terminals 0 and 1 both flood router 2.
	m, err := topology.NewMesh(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VCsPerVNet: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[int]int{}
	n.SetEjectHook(func(p *sim.Packet) { delivered[p.Src]++ })
	for i := 0; i < 40; i++ {
		n.InjectPacket(0, sim.PacketSpec{Dst: 2, Length: 1})
		n.InjectPacket(1, sim.PacketSpec{Dst: 2, Length: 1})
	}
	n.Run(400)
	if !n.Drain(5000) {
		t.Fatal("flood did not drain")
	}
	if delivered[0] != 40 || delivered[1] != 40 {
		t.Fatalf("unfair delivery: %v", delivered)
	}
}

// TestEjectionBandwidthOnePerCycle: a terminal port ejects at most one
// flit per cycle, so 10 single-flit packets to one node need >= 10 cycles
// of ejection.
func TestEjectionBandwidthOnePerCycle(t *testing.T) {
	m, _ := topology.NewMesh(3, 3, 1)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VCsPerVNet: 4,
	})
	var ejectCycles []int64
	n.SetEjectHook(func(p *sim.Packet) { ejectCycles = append(ejectCycles, p.EjectCycle) })
	for src := 0; src < 9; src++ {
		if src != 4 {
			n.InjectPacket(src, sim.PacketSpec{Dst: 4, Length: 1})
		}
	}
	n.Run(200)
	if len(ejectCycles) != 8 {
		t.Fatalf("delivered %d/8", len(ejectCycles))
	}
	seen := map[int64]bool{}
	for _, c := range ejectCycles {
		if seen[c] {
			t.Fatalf("two ejections at terminal 4 in cycle %d", c)
		}
		seen[c] = true
	}
}

// TestInputPortOneFlitPerCycle: two VCs at one input port share a single
// crossbar input — aggregate forward progress from a port is bounded by
// one flit per cycle.
func TestInputPortOneFlitPerCycle(t *testing.T) {
	m, _ := topology.NewMesh(3, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		VNets:      2,
		VCsPerVNet: 1,
	})
	// Two packets in different vnets traverse the same middle input port.
	n.InjectPacket(0, sim.PacketSpec{Dst: 2, Length: 5, VNet: 0})
	n.InjectPacket(0, sim.PacketSpec{Dst: 2, Length: 5, VNet: 1})
	start := n.Now()
	n.Run(200)
	if n.Stats().Ejected != 2 {
		t.Fatal("packets not delivered")
	}
	// 10 flits over a shared path of single-flit links: at least 10+hops
	// cycles must elapse (no magical parallel crossbar inputs).
	if n.Stats().EjectedFlits == 10 && n.Now()-start < 14 {
		t.Fatalf("10 flits crossed a shared port in %d cycles", n.Now()-start)
	}
}
