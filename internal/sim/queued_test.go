package sim_test

import (
	"testing"
)

// TestQueuedPacketsCounterMatchesRecount audits the incremental
// source-queue counter against a brute-force NIC scan at many points
// mid-simulation, across the full queue lifecycle: growth under an
// oversaturating load, plateau, and drain back to zero after traffic
// stops. The counter is read on every stats call, so a drift here
// silently corrupts every saturation measurement.
func TestQueuedPacketsCounterMatchesRecount(t *testing.T) {
	// XY at rate 0.9 oversaturates a 4x4 mesh: queues grow, so push,
	// pop, ring-compaction and mid-injection states all occur.
	n := meshNet(t, 4, 4, 2, 0.9, "transpose", 11)
	for i := 0; i < 2000; i++ {
		n.Step()
		if i%50 == 0 {
			if got, want := n.QueuedPackets(), n.RecountQueuedPackets(); got != want {
				t.Fatalf("cycle %d: QueuedPackets() = %d, recount = %d", i, got, want)
			}
		}
	}
	if n.QueuedPackets() == 0 {
		t.Fatal("oversaturated run built no backlog; the audit exercised nothing")
	}
	// Drain: the counter must walk back down to exactly zero.
	n.Drain(200000)
	if got, want := n.QueuedPackets(), n.RecountQueuedPackets(); got != want || got != 0 {
		t.Fatalf("after drain: QueuedPackets() = %d, recount = %d, want 0", got, want)
	}
}
