package sim

// Stats accumulates simulation measurements. Latency, hop and utilisation
// figures cover the measurement window (after Config.StatsStart);
// injection/ejection totals cover the whole run.
type Stats struct {
	Cycles         int64
	MeasuredCycles int64

	Injected, Ejected           int64 // packets
	InjectedFlits, EjectedFlits int64

	// Measurement-window packet metrics.
	EjectedMeasured  int64
	LatencySum       int64 // generation -> tail ejection
	NetLatencySum    int64 // head injection -> tail ejection
	HopSum           int64
	MisrouteSum      int64
	MaxLatency       int64
	EjectedFlitsMeas int64

	// Energy proxies (measurement window).
	BufferReads, BufferWrites      int64
	XbarTraversals, LinkTraversals int64

	// Scheme activity.
	Spins     int64
	SMSent    [numSMKinds]int64
	SMDropped int64
	// Counters carries scheme-specific counts (probes sent, false
	// positives, kill_moves, ...).
	Counters map[string]int64
}

// Count adds delta to the named scheme counter.
func (s *Stats) Count(name string, delta int64) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[name] += delta
}

// Counter reads a scheme counter.
func (s *Stats) Counter(name string) int64 { return s.Counters[name] }

// drainInto folds this accumulator into dst and zeroes it. The sharded
// engine drains every shard's Stats into the global one at each commit;
// only the additive fields move — Cycles/MeasuredCycles are advanced by
// the commit itself and never accumulate per shard.
func (s *Stats) drainInto(dst *Stats) {
	dst.Injected += s.Injected
	dst.Ejected += s.Ejected
	dst.InjectedFlits += s.InjectedFlits
	dst.EjectedFlits += s.EjectedFlits
	dst.EjectedMeasured += s.EjectedMeasured
	dst.LatencySum += s.LatencySum
	dst.NetLatencySum += s.NetLatencySum
	dst.HopSum += s.HopSum
	dst.MisrouteSum += s.MisrouteSum
	dst.EjectedFlitsMeas += s.EjectedFlitsMeas
	dst.BufferReads += s.BufferReads
	dst.BufferWrites += s.BufferWrites
	dst.XbarTraversals += s.XbarTraversals
	dst.LinkTraversals += s.LinkTraversals
	dst.Spins += s.Spins
	dst.SMDropped += s.SMDropped
	s.Injected, s.Ejected = 0, 0
	s.InjectedFlits, s.EjectedFlits = 0, 0
	s.EjectedMeasured, s.LatencySum, s.NetLatencySum = 0, 0, 0
	s.HopSum, s.MisrouteSum, s.EjectedFlitsMeas = 0, 0, 0
	s.BufferReads, s.BufferWrites = 0, 0
	s.XbarTraversals, s.LinkTraversals = 0, 0
	s.Spins, s.SMDropped = 0, 0
	if s.MaxLatency > dst.MaxLatency {
		dst.MaxLatency = s.MaxLatency
	}
	s.MaxLatency = 0
	for k := range s.SMSent {
		dst.SMSent[k] += s.SMSent[k]
		s.SMSent[k] = 0
	}
	if len(s.Counters) > 0 {
		if dst.Counters == nil {
			dst.Counters = make(map[string]int64)
		}
		for name, d := range s.Counters {
			dst.Counters[name] += d
			delete(s.Counters, name)
		}
	}
}

// AvgLatency reports mean packet latency (cycles, source queueing
// included) over the measurement window.
func (s *Stats) AvgLatency() float64 {
	if s.EjectedMeasured == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.EjectedMeasured)
}

// AvgNetLatency reports mean network latency (injection to ejection).
func (s *Stats) AvgNetLatency() float64 {
	if s.EjectedMeasured == 0 {
		return 0
	}
	return float64(s.NetLatencySum) / float64(s.EjectedMeasured)
}

// AvgHops reports the mean hop count of measured packets.
func (s *Stats) AvgHops() float64 {
	if s.EjectedMeasured == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.EjectedMeasured)
}

// Throughput reports accepted traffic in flits/terminal/cycle over the
// measurement window.
func (s *Stats) Throughput(terminals int) float64 {
	if s.MeasuredCycles == 0 || terminals == 0 {
		return 0
	}
	return float64(s.EjectedFlitsMeas) / float64(s.MeasuredCycles) / float64(terminals)
}

// LinkUtilisation summarises how link-cycles were spent over the
// measurement window, as fractions of links×cycles.
type LinkUtilisation struct {
	Flit  float64
	SM    [4]float64 // by SMKind
	SMAll float64
	Idle  float64
}
