package sim

// NIC is a network interface: a per-terminal source queue injecting flits
// into the attached router's terminal-port VCs (one flit per cycle) and a
// stall-free sink for ejected flits.
//
// The queue is a sliding ring over one backing array: pops advance head
// instead of reslicing the front away, so a steady-state queue reuses its
// capacity instead of reallocating on every push.
type NIC struct {
	term   int
	router *Router
	port   int // terminal input port at the router

	queue  []*Packet
	head   int // index of the front packet in queue
	cur    *Packet
	curVC  *VC
	curSeq int

	// pktSeq counts packets injected at this terminal; packet IDs are
	// derived from it (interleaved across terminals) so they are unique and
	// independent of the cross-terminal generation order.
	pktSeq int64
}

// QueueLen reports the number of packets waiting at the source, including
// the one mid-injection.
func (n *NIC) QueueLen() int { return len(n.queue) - n.head }

// push enqueues a freshly generated packet.
func (n *NIC) push(p *Packet) { n.queue = append(n.queue, p) }

// pop removes and returns the front packet.
func (n *NIC) pop() *Packet {
	p := n.queue[n.head]
	n.queue[n.head] = nil
	n.head++
	if n.head == len(n.queue) {
		n.queue = n.queue[:0]
		n.head = 0
	} else if n.head >= 32 && n.head*2 >= len(n.queue) {
		// Compact once the dead prefix dominates, keeping pushes O(1)
		// amortised without unbounded growth of the backing array.
		kept := copy(n.queue, n.queue[n.head:])
		for i := kept; i < len(n.queue); i++ {
			n.queue[i] = nil
		}
		n.queue = n.queue[:kept]
		n.head = 0
	}
	return p
}

// injectStep moves at most one flit into the router this cycle. It runs in
// phase 1 on the shard owning the attached router; gauges and stats go
// through the shard's accumulators. The terminal VCs it touches are
// shard-local, so reservation and enqueue stay on the live path.
func (n *NIC) injectStep(net *Network, s *shardState) {
	now := net.now
	if n.cur == nil {
		if n.head == len(n.queue) {
			return
		}
		p := n.queue[n.head]
		v := n.pickVC(net, p)
		if v == nil {
			return
		}
		n.pop()
		s.dQueued--
		n.cur, n.curVC, n.curSeq = p, v, 0
		p.InjectCycle = now
		s.dInNetwork++
		v.reserve(p, now, false)
		if net.tele != nil && net.tele.probeOn() {
			s.emitEvent(Event{Cycle: now, Kind: EvPacketInject, Router: n.router.ID,
				Port: n.port, VC: v.index, Packet: p.ID, Src: p.Src, Dst: p.Dst, VNet: p.VNet})
		}
	}
	n.curVC.enqueue(Flit{Pkt: n.cur, Seq: n.curSeq}, now)
	if net.measuring() {
		s.stats.BufferWrites++
	}
	s.stats.InjectedFlits++
	if net.tele != nil && net.tele.probeOn() {
		s.emitEvent(Event{Cycle: now, Kind: EvFlitInject, Router: n.router.ID,
			Port: n.port, VC: n.curVC.index, Packet: n.cur.ID, VNet: n.cur.VNet})
	}
	n.curSeq++
	if n.curSeq == n.cur.Length {
		s.stats.Injected++
		n.cur, n.curVC, n.curSeq = nil, nil, 0
	}
}

// pickVC selects an input VC of the packet's vnet at the terminal port,
// honouring virtual cut-through and the scheme's injection filter.
func (n *NIC) pickVC(net *Network, p *Packet) *VC {
	base := p.VNet * net.cfg.VCsPerVNet
	for k := 0; k < net.cfg.VCsPerVNet; k++ {
		v := n.router.in[n.port][base+k]
		if !v.CanAccept(p.Length) {
			continue
		}
		if n.router.agent != nil && !n.router.agent.FilterInject(v, p) {
			continue
		}
		return v
	}
	return nil
}
