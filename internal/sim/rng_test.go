package sim

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/topology"
)

// TestEntitySeedMatchesRunner pins the derivation contract: EntitySeed
// and runner.SeedFor are one scheme (FNV-1a over the little-endian base
// plus the key, splitmix64-finalized), so per-entity engine streams and
// per-point sweep seeds can be reasoned about together.
func TestEntitySeedMatchesRunner(t *testing.T) {
	cases := []struct {
		base int64
		key  string
	}{
		{0, ""},
		{1, RouterKey(0)},
		{1, TerminalKey(0)},
		{42, RouterKey(1023)},
		{-7, TerminalKey(255)},
		{1 << 40, "mesh_favors_min/uniform_random@0.3"},
	}
	for _, c := range cases {
		if got, want := EntitySeed(c.base, c.key), runner.SeedFor(c.base, c.key); got != want {
			t.Errorf("EntitySeed(%d, %q) = %d, runner.SeedFor = %d", c.base, c.key, got, want)
		}
	}
}

// TestEntitySeedStable pins a few concrete derivations so an accidental
// change to the scheme (which would silently re-seed every simulation)
// fails loudly rather than just shifting results.
func TestEntitySeedStable(t *testing.T) {
	if RouterKey(3) != "R:3" || TerminalKey(3) != "T:3" {
		t.Fatalf("entity key format changed: %q %q", RouterKey(3), TerminalKey(3))
	}
	if a, b := EntitySeed(1, RouterKey(3)), EntitySeed(1, RouterKey(3)); a != b {
		t.Fatalf("EntitySeed not deterministic: %d vs %d", a, b)
	}
}

// TestEntityStreamIndependence checks the properties the determinism
// contract needs from the per-entity streams: distinct entities (and the
// same entity id in router vs terminal space) get distinct streams, and
// draws from one stream never perturb another.
func TestEntityStreamIndependence(t *testing.T) {
	const seed = 99
	same := func(a, b string) bool {
		ra, rb := newEntityRand(seed, a), newEntityRand(seed, b)
		for i := 0; i < 16; i++ {
			if ra.Uint64() != rb.Uint64() {
				return false
			}
		}
		return true
	}
	if !same(RouterKey(5), RouterKey(5)) {
		t.Error("identical keys must give identical streams")
	}
	if same(RouterKey(5), RouterKey(6)) {
		t.Error("distinct router ids share a stream")
	}
	if same(RouterKey(5), TerminalKey(5)) {
		t.Error("router and terminal streams collide for one id")
	}

	// Interleaving draws must not couple streams: the sequence entity A
	// observes is the same whether or not entity B draws in between.
	ra1 := newEntityRand(seed, RouterKey(1))
	ra2 := newEntityRand(seed, RouterKey(1))
	rb := newEntityRand(seed, RouterKey(2))
	for i := 0; i < 64; i++ {
		rb.Uint64() // unrelated draws interleaved
		if ra1.Uint64() != ra2.Uint64() {
			t.Fatalf("draw %d: stream coupled to another entity's draws", i)
		}
	}
}

// rngStubRouting satisfies RoutingAlgorithm for networks that never
// route a packet (the stream-wiring test below injects nothing).
type rngStubRouting struct{ BaseRouting }

func (rngStubRouting) Name() string { return "stub" }
func (rngStubRouting) Route(_ *Router, _ int, _ *Packet, buf []PortRequest) []PortRequest {
	return buf
}

// TestNetworkEntityStreams asserts the network wires the streams as
// documented: RouterRNG(i) is the (seed, "R:i") stream and
// TerminalRNG(i) the (seed, "T:i") stream.
func TestNetworkEntityStreams(t *testing.T) {
	m, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 321
	n, err := NewNetwork(Config{Topology: m, Routing: rngStubRouting{}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want := newEntityRand(seed, RouterKey(2)).Uint64()
	if got := n.RouterRNG(2).Uint64(); got != want {
		t.Errorf("RouterRNG(2) first draw = %d, want %d", got, want)
	}
	wantT := newEntityRand(seed, TerminalKey(3)).Uint64()
	if got := n.TerminalRNG(3).Uint64(); got != wantT {
		t.Errorf("TerminalRNG(3) first draw = %d, want %d", got, wantT)
	}
}
