package sim

import (
	"strings"
	"testing"
)

// hasRule reports whether any violation carries the rule.
func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// rulesOf collects the distinct rule names for failure messages.
func rulesOf(vs []Violation) string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Rule)
	}
	return strings.Join(names, ",")
}

// account makes the conservation check agree with manually enqueued
// flits so targeted corruption tests only trip their own rule.
func account(n *Network, flits int64) { n.stats.InjectedFlits += flits }

func TestCheckerCleanOnLegalSpinOverlap(t *testing.T) {
	n, v := vcFixture(t)
	// Old packet's draining tail ahead of the new owner's arriving head —
	// exactly the overlap StartSpin produces.
	old := &Packet{ID: 1, Length: 3}
	new_ := &Packet{ID: 2, Length: 3}
	v.enqueue(Flit{Pkt: old, Seq: 2}, 0) // tail of old
	v.enqueue(Flit{Pkt: new_, Seq: 0}, 1)
	v.enqueue(Flit{Pkt: new_, Seq: 1}, 2)
	v.reserve(new_, 1, true)
	account(n, 3)
	if vs := n.CheckStructural(); len(vs) != 0 {
		t.Fatalf("legal spin overlap flagged: %s (%v)", rulesOf(vs), vs)
	}
}

func TestCheckerDetectsThreePacketInterleave(t *testing.T) {
	n, v := vcFixture(t)
	for i, p := range []*Packet{{ID: 1, Length: 1}, {ID: 2, Length: 1}, {ID: 3, Length: 1}} {
		v.enqueue(Flit{Pkt: p, Seq: 0}, int64(i))
	}
	v.reserve(&Packet{ID: 3, Length: 1}, 0, true)
	account(n, 3)
	if vs := n.CheckStructural(); !hasRule(vs, RuleVCTInterleave) {
		t.Fatalf("three resident packets not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsSplitPacket(t *testing.T) {
	n, v := vcFixture(t)
	a := &Packet{ID: 1, Length: 2}
	b := &Packet{ID: 2, Length: 1}
	v.enqueue(Flit{Pkt: a, Seq: 0}, 0)
	v.enqueue(Flit{Pkt: b, Seq: 0}, 1)
	v.enqueue(Flit{Pkt: a, Seq: 1}, 2) // a resumes after b: illegal
	v.reserve(a, 0, true)
	account(n, 3)
	if vs := n.CheckStructural(); !hasRule(vs, RuleVCTInterleave) {
		t.Fatalf("split packet not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsTruncatedOldPacket(t *testing.T) {
	n, v := vcFixture(t)
	// Old packet's run does not end in its tail — the overlap is not the
	// old-tail + new-head shape the VCT contract allows.
	old := &Packet{ID: 1, Length: 3}
	new_ := &Packet{ID: 2, Length: 2}
	v.enqueue(Flit{Pkt: old, Seq: 1}, 0) // mid-packet, tail (seq 2) missing
	v.enqueue(Flit{Pkt: new_, Seq: 0}, 1)
	v.reserve(new_, 1, true)
	account(n, 2)
	if vs := n.CheckStructural(); !hasRule(vs, RuleVCTInterleave) {
		t.Fatalf("truncated old packet not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsHeadlessNewPacket(t *testing.T) {
	n, v := vcFixture(t)
	old := &Packet{ID: 1, Length: 1}
	new_ := &Packet{ID: 2, Length: 3}
	v.enqueue(Flit{Pkt: old, Seq: 0}, 0)  // tail of old (length 1)
	v.enqueue(Flit{Pkt: new_, Seq: 1}, 1) // new packet arrives mid-body
	v.reserve(new_, 1, true)
	account(n, 2)
	if vs := n.CheckStructural(); !hasRule(vs, RuleVCTInterleave) {
		t.Fatalf("headless new packet not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsSeqGap(t *testing.T) {
	n, v := vcFixture(t)
	p := &Packet{ID: 1, Length: 4}
	v.enqueue(Flit{Pkt: p, Seq: 0}, 0)
	v.enqueue(Flit{Pkt: p, Seq: 2}, 1) // seq 1 missing
	v.reserve(p, 0, true)
	account(n, 2)
	if vs := n.CheckStructural(); !hasRule(vs, RuleVCTOrder) {
		t.Fatalf("sequence gap not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsMissingReservation(t *testing.T) {
	n, v := vcFixture(t)
	p := &Packet{ID: 1, Length: 2}
	v.enqueue(Flit{Pkt: p, Seq: 0}, 0)
	account(n, 1)
	if vs := n.CheckStructural(); !hasRule(vs, RuleReservation) {
		t.Fatalf("buffered flits without owner not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsStaleReservation(t *testing.T) {
	n, v := vcFixture(t)
	// Owner is a packet with no buffered flits and nothing in flight.
	resident := &Packet{ID: 1, Length: 2}
	v.enqueue(Flit{Pkt: resident, Seq: 0}, 0)
	v.reserve(&Packet{ID: 2, Length: 2}, 0, true)
	account(n, 1)
	if vs := n.CheckStructural(); !hasRule(vs, RuleReservation) {
		t.Fatalf("stale owner not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsCreditLeak(t *testing.T) {
	n, v := vcFixture(t)
	// An in-flight promise with no flit on any link: the credit
	// cross-check against link transit state must catch it, and the
	// phantom promise also drives FreeSlots negative when the buffer
	// fills.
	v.inFlight = 2
	if vs := n.CheckStructural(); !hasRule(vs, RuleCredit) {
		t.Fatalf("phantom in-flight promise not flagged: %s", rulesOf(vs))
	}
	v.inFlight = -1
	if vs := n.CheckStructural(); !hasRule(vs, RuleCredit) {
		t.Fatalf("negative in-flight not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsConservationBreak(t *testing.T) {
	n, _ := vcFixture(t)
	n.stats.InjectedFlits = 7 // nothing buffered or in transit
	if vs := n.CheckStructural(); !hasRule(vs, RuleConservation) {
		t.Fatalf("flit leak not flagged: %s", rulesOf(vs))
	}
}

func TestCheckerDetectsDuplicateDelivery(t *testing.T) {
	n, _ := vcFixture(t)
	c := n.AttachChecker(CheckOptions{})
	p := &Packet{ID: 9, Length: 1}
	c.onEject(p)
	c.onEject(p)
	if !hasRule(c.Violations(), RuleDelivery) {
		t.Fatalf("duplicate delivery not flagged: %s", rulesOf(c.Violations()))
	}
}

func TestCheckerDetectsHopBoundBreak(t *testing.T) {
	n, _ := vcFixture(t)
	c := n.AttachChecker(CheckOptions{})
	// Diameter of the 2-router line is 1: 3 productive hops overshoot.
	c.onEject(&Packet{ID: 1, Length: 1, Hops: 40, Misroutes: 2})
	if !hasRule(c.Violations(), RuleHopBound) {
		t.Fatalf("hop overshoot not flagged: %s", rulesOf(c.Violations()))
	}
	if hasRule(c.Violations(), RuleDelivery) {
		t.Fatal("single delivery mis-flagged")
	}
}

func TestCheckerFlagsStalledVC(t *testing.T) {
	g := lineTopology(t)
	n, err := NewNetwork(Config{Topology: g, Routing: nopRouting{}, VCsPerVNet: 1, VCDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := n.AttachChecker(CheckOptions{StallBound: 20})
	// A complete resident frozen with no recovery scheme attached: its
	// front flit can never move, which the progress bound must flag.
	v := n.Router(0).VC(1, 0)
	p := &Packet{ID: 1, Length: 2, DstRouter: 1}
	v.reserve(p, 0, false)
	v.enqueue(Flit{Pkt: p, Seq: 0}, 0)
	v.enqueue(Flit{Pkt: p, Seq: 1}, 0)
	account(n, 2)
	n.Router(0).FreezeVC(v)
	n.Run(60)
	if !hasRule(c.Violations(), RuleProgress) {
		t.Fatalf("stalled VC not flagged: %s", rulesOf(c.Violations()))
	}
	if c.MaxStall() <= 20 {
		t.Fatalf("max stall %d not tracked past bound", c.MaxStall())
	}
}

func TestCheckerCleanOnRealTraffic(t *testing.T) {
	// End-to-end sanity: the engine itself must never trip the checker.
	g := lineTopology(t)
	n, err := NewNetwork(Config{Topology: g, Routing: nopRouting{}, VCsPerVNet: 2, VCDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := n.AttachChecker(CheckOptions{StallBound: 200})
	for i := 0; i < 30; i++ {
		n.InjectPacket(0, PacketSpec{Dst: 1, Length: 1 + i%5})
	}
	n.Run(400)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Ejected != 30 {
		t.Fatalf("delivered %d of 30", n.Stats().Ejected)
	}
}
