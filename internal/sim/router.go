package sim

import (
	"fmt"
	"math/rand"
)

// Router is one network router: a set of input ports each holding
// VNets×VCsPerVNet virtual channels, an output crossbar with one flit per
// input port and one per output port per cycle, and an optional
// deadlock-freedom agent.
type Router struct {
	net        *Network
	ID         int
	radix      int
	localPorts int

	in      [][]*VC // [port][vcIdx]
	vcFlat  []*VC   // all input VCs in (port, vcIdx) order, for the SA scan
	outLink []*link // per output port; nil for terminal/unwired ports

	// shard is the engine partition that steps this router; all shard-local
	// scratch, pools, stats, and outboxes live there.
	shard *shardState

	agent  Agent
	qagent Quiescer      // agent's optional quiescence probe (nil: always active)
	vpub   ViewPublisher // agent's optional cross-shard view hook

	// Occupancy counters backing the active-set worklists: a router is
	// stepped only when one of them is non-zero (or its agent is awake).
	flitCount   int // buffered flits across all input VCs
	occupied    int // input VCs with at least one buffered flit
	spinningVCs int // VCs force-transmitting a spin this cycle
	smPending   int // SMs offered via SendSM awaiting arbitration

	// Per-cycle scratch state. The dirty flags record that a scratch array
	// holds non-zero entries, so skipped cycles never pay the clear loops
	// and stale state is cleared lazily at each stage's next run.
	smSends          [][]*SM // per output port: SMs competing for the link
	smBusy           []bool  // output port carries an SM this cycle
	smBusyDirty      bool
	spinClaimed      []bool // output port claimed by a spinning VC this cycle
	spinClaimedDirty bool
	inUsed           []bool
	outUsed          []bool
	usedDirty        bool

	routeBuf []PortRequest
}

func newRouter(n *Network, id int) *Router {
	topo := n.cfg.Topology
	radix := topo.Radix(id)
	r := &Router{
		net:         n,
		ID:          id,
		radix:       radix,
		localPorts:  topo.LocalPorts(id),
		in:          make([][]*VC, radix),
		outLink:     make([]*link, radix),
		smSends:     make([][]*SM, radix),
		smBusy:      make([]bool, radix),
		spinClaimed: make([]bool, radix),
		inUsed:      make([]bool, radix),
		outUsed:     make([]bool, radix),
	}
	vcs := n.cfg.VNets * n.cfg.VCsPerVNet
	r.vcFlat = make([]*VC, 0, radix*vcs)
	for p := 0; p < radix; p++ {
		r.in[p] = make([]*VC, vcs)
		for k := 0; k < vcs; k++ {
			v := &VC{router: r, port: p, index: k, depth: n.cfg.VCDepth, outPort: -1}
			r.in[p][k] = v
			r.vcFlat = append(r.vcFlat, v)
		}
	}
	return r
}

// active reports whether the router needs to be stepped this cycle: it
// holds flits, has SM or spin work pending, or its agent is awake.
func (r *Router) active() bool {
	if r.flitCount > 0 || r.smPending > 0 || r.spinningVCs > 0 {
		return true
	}
	if r.agent == nil {
		return false
	}
	return r.qagent == nil || !r.qagent.Quiescent()
}

// Net returns the owning network.
func (r *Router) Net() *Network { return r.net }

// Radix reports the number of ports.
func (r *Router) Radix() int { return r.radix }

// LocalPorts reports the number of terminal ports.
func (r *Router) LocalPorts() int { return r.localPorts }

// Agent returns the router's deadlock agent (nil without a scheme).
func (r *Router) Agent() Agent { return r.agent }

// VC returns the virtual channel at (port, idx).
func (r *Router) VC(port, idx int) *VC { return r.in[port][idx] }

// ForEachVC visits every input VC of the router in (port, index) order.
// Observers — the invariant checker, stats probes — use it instead of
// reaching into the port arrays.
func (r *Router) ForEachVC(f func(*VC)) {
	for p := 0; p < r.radix; p++ {
		for _, v := range r.in[p] {
			f(v)
		}
	}
}

// VCsPerPort reports how many VCs each input port has.
func (r *Router) VCsPerPort() int { return r.net.cfg.VNets * r.net.cfg.VCsPerVNet }

// HasOutLink reports whether port p drives an inter-router link.
func (r *Router) HasOutLink(p int) bool { return p >= 0 && p < r.radix && r.outLink[p] != nil }

// LinkLatency reports the traversal latency of the link at output port p
// (0 if p has no link).
func (r *Router) LinkLatency(p int) int {
	if !r.HasOutLink(p) {
		return 0
	}
	return r.outLink[p].topo.Latency
}

// Downstream resolves the router and input port at the far end of output
// port p.
func (r *Router) Downstream(p int) (*Router, int, bool) {
	if !r.HasOutLink(p) {
		return nil, 0, false
	}
	l := r.outLink[p]
	return l.dst, l.topo.DstPort, true
}

// RNG exposes the router's private deterministic random stream for
// adaptive tie-breaking. The stream is derived from (Config.Seed, router
// id), so its draw sequence never depends on other routers' activity or on
// the shard count.
func (r *Router) RNG() *rand.Rand { return r.net.routerRNG[r.ID] }

// Stats returns the shard-local statistics accumulator for this router.
// Agents counting during the parallel phases must go through it (not
// Net().Stats()); the deltas fold into the global Stats at commit.
func (r *Router) Stats() *Stats { return &r.shard.stats }

// Now reports the current cycle.
func (r *Router) Now() int64 { return r.net.now }

// DownstreamVCs returns the VCs of the packet-admissible set at output
// port p for vnet, i.e. the downstream input-port VCs selected by mask.
// It appends to buf. Returns nil when p has no link.
func (r *Router) DownstreamVCs(p, vnet int, mask uint32, buf []*VC) []*VC {
	d, inPort, ok := r.Downstream(p)
	if !ok {
		return buf
	}
	base := vnet * r.net.cfg.VCsPerVNet
	for k := 0; k < r.net.cfg.VCsPerVNet; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		buf = append(buf, d.in[inPort][base+k])
	}
	return buf
}

// FreeVCAt reports whether some downstream VC at output port p (vnet,
// mask) could accept a packet of the given length as of the last commit.
// Adaptive algorithms use it as their primary congestion signal; it reads
// the commit snapshot, matching what real hardware's delayed credit
// counters would show and keeping the answer shard-invariant.
func (r *Router) FreeVCAt(p, vnet int, mask uint32, length int) bool {
	d, inPort, ok := r.Downstream(p)
	if !ok {
		return false
	}
	base := vnet * r.net.cfg.VCsPerVNet
	for k := 0; k < r.net.cfg.VCsPerVNet; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		if d.in[inPort][base+k].canAcceptSnap(length) {
			return true
		}
	}
	return false
}

// MinActiveTime reports the smallest ActiveTime among the downstream VCs
// at output port p (vnet, mask) — 0 if any is idle — as of the last
// commit. This is the FAvORS port-contention proxy, obtainable in hardware
// from VC credits.
func (r *Router) MinActiveTime(p, vnet int, mask uint32) int64 {
	d, inPort, ok := r.Downstream(p)
	if !ok {
		return 1 << 30
	}
	now := r.net.now
	base := vnet * r.net.cfg.VCsPerVNet
	best := int64(1) << 30
	for k := 0; k < r.net.cfg.VCsPerVNet; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		if t := d.in[inPort][base+k].activeTimeSnap(now); t < best {
			best = t
		}
	}
	return best
}

// SendSM offers a special message for transmission on output port p this
// cycle. Contention among SMs on the same port is resolved at the end of
// the agent phase via Agent.PickSM; losers are dropped (the SM layer is
// bufferless).
func (r *Router) SendSM(p int, sm *SM) {
	if !r.HasOutLink(p) {
		r.shard.freeSM(sm)
		return
	}
	r.smSends[p] = append(r.smSends[p], sm)
	r.smPending++
}

// NewSM returns a zeroed special message from the shard's free list.
// Agents should build SMs with it (and CloneSM) so that steady-state SM
// traffic allocates nothing; SMs the engine drops or delivers are
// recycled automatically.
func (r *Router) NewSM() *SM { return r.shard.allocSM() }

// CloneSM returns a pooled deep copy of m, for forking or forwarding.
func (r *Router) CloneSM(m *SM) *SM {
	c := r.shard.allocSM()
	path := c.Path
	*c = *m
	c.pooled = true
	c.Path = append(path[:0], m.Path...)
	return c
}

// FreezeVC marks the VC as frozen: it no longer participates in normal
// switch allocation and its resident packet will only move during a spin.
func (r *Router) FreezeVC(v *VC) {
	if t := r.net.tele; t != nil && !v.frozen && t.probeOn() {
		r.shard.emitEvent(Event{Cycle: r.net.now, Kind: EvVCFreeze, Router: r.ID, Port: v.port, VC: v.index})
	}
	v.frozen = true
}

// UnfreezeVC lifts a freeze (kill_move processing).
func (r *Router) UnfreezeVC(v *VC) {
	if t := r.net.tele; t != nil && v.frozen && t.probeOn() {
		r.shard.emitEvent(Event{Cycle: r.net.now, Kind: EvVCUnfreeze, Router: r.ID, Port: v.port, VC: v.index})
	}
	v.frozen = false
}

// StartSpin begins the synchronized movement of v's frozen resident
// packet: from this cycle on the engine force-transmits one flit per cycle
// out of outPort into target, bypassing buffer-space checks. The space the
// flits land in is vacated by target's own simultaneous spin; the VC
// enqueue asserts the invariant.
func (r *Router) StartSpin(v *VC, outPort int, target *VC) {
	if v.FrontPacket() == nil {
		return
	}
	if !v.spinning {
		v.spinning = true
		r.spinningVCs++
		if t := r.net.tele; t != nil && t.probeOn() {
			r.shard.emitEvent(Event{Cycle: r.net.now, Kind: EvSpinStart, Router: r.ID,
				Port: v.port, VC: v.index, Arg: int64(outPort)})
		}
	}
	v.frozen = false
	v.outPort = outPort
	v.target = target
	// The target usually lives on another shard; its force reservation is
	// buffered and applied (before any normal reservation) at commit.
	r.shard.resvOps = append(r.shard.resvOps, resvOp{dvc: target, pkt: v.FrontPacket(), force: true})
}

// routeStage computes port requests for every VC whose resident head flit
// has reached the front and is not yet routed.
func (r *Router) routeStage() {
	// Only VCs holding flits can need routing; stop once every occupied VC
	// has been visited (no enqueue happens during this stage).
	left := r.occupied
	for p := 0; p < r.radix && left > 0; p++ {
		for _, v := range r.in[p] {
			if len(v.buf) == 0 {
				continue
			}
			left--
			if v.routed || !v.buf[0].IsHead() {
				continue
			}
			pkt := v.buf[0].Pkt
			if pkt.Intermediate >= 0 && pkt.Phase == 0 && r.ID == pkt.Intermediate {
				pkt.Phase = 1
			}
			if pkt.DstRouter == r.ID {
				termPort := r.net.cfg.Topology.TerminalPort(pkt.Dst)
				v.reqs = append(v.reqs[:0], PortRequest{Port: termPort, VCMask: AllVCs})
				v.routed = true
				continue
			}
			r.routeBuf = r.shard.routing.Route(r, p, pkt, r.routeBuf[:0])
			if len(r.routeBuf) == 0 {
				panic(fmt.Sprintf("sim: routing %s returned no ports for %v at router %d", r.shard.routing.Name(), pkt, r.ID))
			}
			v.reqs = append(v.reqs[:0], r.routeBuf...)
			v.routed = true
		}
	}
}

// claimSpinPorts reserves output ports for VCs that are spinning this
// cycle; SMs may not preempt a spin in progress.
func (r *Router) claimSpinPorts() {
	if !r.spinClaimedDirty && r.spinningVCs == 0 {
		return
	}
	for p := range r.spinClaimed {
		r.spinClaimed[p] = false
	}
	r.spinClaimedDirty = false
	if r.spinningVCs == 0 {
		return
	}
	for p := 0; p < r.radix; p++ {
		for _, v := range r.in[p] {
			if v.spinning && len(v.buf) > 0 {
				r.spinClaimed[v.outPort] = true
				r.spinClaimedDirty = true
			}
		}
	}
}

// resolveSMs arbitrates this cycle's SM sends per output port and places
// winners on the links.
func (r *Router) resolveSMs() {
	if r.smPending == 0 && !r.smBusyDirty {
		return
	}
	for p := range r.smBusy {
		r.smBusy[p] = false
	}
	r.smBusyDirty = false
	if r.smPending == 0 {
		return
	}
	r.smPending = 0
	s := r.shard
	for p := 0; p < r.radix; p++ {
		cands := r.smSends[p]
		if len(cands) == 0 {
			continue
		}
		r.smSends[p] = cands[:0]
		if r.spinClaimed[p] || r.outLink[p] == nil {
			s.stats.SMDropped += int64(len(cands))
			for _, c := range cands {
				if t := r.net.tele; t != nil && t.probeOn() {
					s.emitEvent(Event{Cycle: r.net.now, Kind: EvSMDrop, Router: r.ID, Port: p,
						Src: c.Sender, VNet: int(c.VNet), SM: c.Kind.String(), Tag: c.Tag, Arg: c.SpinCycle})
				}
				s.freeSM(c)
			}
			continue
		}
		var win *SM
		if len(cands) == 1 {
			win = cands[0]
		} else if r.agent != nil {
			win = r.agent.PickSM(p, cands)
		} else {
			win = cands[0]
		}
		s.stats.SMDropped += int64(len(cands) - 1)
		for _, c := range cands {
			if c != win {
				if t := r.net.tele; t != nil && t.probeOn() {
					s.emitEvent(Event{Cycle: r.net.now, Kind: EvSMDrop, Router: r.ID, Port: p,
						Src: c.Sender, VNet: int(c.VNet), SM: c.Kind.String(), Tag: c.Tag, Arg: c.SpinCycle})
				}
				s.freeSM(c)
			}
		}
		l := r.outLink[p]
		l.sendSM(r.net.now, win)
		s.linkMarks = append(s.linkMarks, int32(l.index))
		r.smBusy[p] = true
		r.smBusyDirty = true
		if r.net.measuring() {
			l.smCycles[win.Kind]++
		}
		s.stats.SMSent[win.Kind]++
		if t := r.net.tele; t != nil {
			s.busySM++
			if t.probeOn() {
				s.emitEvent(Event{Cycle: r.net.now, Kind: EvSMSend, Router: r.ID, Port: p,
					Src: win.Sender, VNet: int(win.VNet), SM: win.Kind.String(), Tag: win.Tag, Arg: win.SpinCycle})
			}
		}
	}
}

// clearUsed resets the crossbar port-usage scratch set by last cycle's
// spin and switch-allocation stages.
func (r *Router) clearUsed() {
	if !r.usedDirty {
		return
	}
	for p := range r.inUsed {
		r.inUsed[p] = false
		r.outUsed[p] = false
	}
	r.usedDirty = false
}

// spinStage force-transmits one flit from every spinning VC.
func (r *Router) spinStage() {
	if r.spinningVCs == 0 {
		return
	}
	for p := 0; p < r.radix; p++ {
		for _, v := range r.in[p] {
			if !v.spinning || len(v.buf) == 0 {
				continue
			}
			out, target := v.outPort, v.target
			if r.inUsed[p] || r.outUsed[out] {
				panic("sim: spin port collision")
			}
			r.sendFlitFrom(v, out, target)
			r.inUsed[p] = true
			r.outUsed[out] = true
			r.usedDirty = true
		}
	}
}

// saStage performs switch allocation for normal (non-frozen, non-spinning)
// traffic. Each input VC tries its port requests in preference order; a
// rotating start index provides fairness.
func (r *Router) saStage() {
	total := len(r.vcFlat)
	if total == 0 || r.occupied == 0 {
		return
	}
	// The rotating start index advances once per cycle; deriving it from
	// the clock (instead of a stored pointer bumped every call) lets idle
	// routers skip the stage entirely without desynchronising fairness.
	start := int(r.net.now % int64(total))
	// No VC gains flits during switch allocation and a VC only drains when
	// visited, so the scan may stop once every occupied VC has been seen.
	left := r.occupied
	for i := 0; i < total && left > 0; i++ {
		slot := start + i
		if slot >= total {
			slot -= total
		}
		v := r.vcFlat[slot]
		if len(v.buf) == 0 {
			continue
		}
		left--
		if v.frozen || v.spinning || r.inUsed[v.port] {
			continue
		}
		if v.target != nil || (v.outPort >= 0 && v.outPort < r.localPorts) {
			// Granted packet (or ejection in progress): stream next flit.
			r.tryContinue(v)
			continue
		}
		if v.routed && v.buf[0].IsHead() {
			r.tryGrant(v)
		}
	}
}

// tryContinue streams a flit of an already-granted packet.
func (r *Router) tryContinue(v *VC) {
	out := v.outPort
	if r.outUsed[out] {
		return
	}
	if v.target == nil {
		// Ejection continues unconditionally: the NIC never stalls.
		r.ejectFlit(v)
		r.inUsed[v.port] = true
		r.outUsed[out] = true
		r.usedDirty = true
		return
	}
	if r.smBusy[out] {
		return
	}
	// Downstream credit check against the commit snapshot: this VC is the
	// only sender toward its reserved target, and it streams at most one
	// flit per cycle, so the snapshot can never overshoot the live space.
	if v.target.snapFree <= 0 {
		return
	}
	r.sendFlitFrom(v, out, v.target)
	r.inUsed[v.port] = true
	r.outUsed[out] = true
	r.usedDirty = true
}

// tryGrant walks the request list of a routed head packet and performs VC
// allocation plus first-flit transmission on the first viable request.
func (r *Router) tryGrant(v *VC) {
	pkt := v.buf[0].Pkt
	for _, req := range v.reqs {
		out := req.Port
		if r.outUsed[out] {
			continue
		}
		if out < r.localPorts {
			// Ejection request.
			v.outPort = out
			r.ejectFlit(v)
			r.inUsed[v.port] = true
			r.outUsed[out] = true
			r.usedDirty = true
			return
		}
		if r.smBusy[out] || r.outLink[out] == nil {
			continue
		}
		l := r.outLink[out]
		dvcs := l.dst.in[l.topo.DstPort]
		base := pkt.VNet * r.net.cfg.VCsPerVNet
		for k := 0; k < r.net.cfg.VCsPerVNet; k++ {
			if req.VCMask&(1<<uint(k)) == 0 {
				continue
			}
			dvc := dvcs[base+k]
			if !dvc.canAcceptSnap(pkt.Length) {
				continue
			}
			if r.agent != nil && !r.agent.FilterSend(v, out, dvc) {
				continue
			}
			// The reservation is buffered: the target lives on whatever shard
			// owns the downstream router. Each input port has one feeding
			// link and each output port sends one head per cycle, so no other
			// normal reservation can race it at commit.
			r.shard.resvOps = append(r.shard.resvOps, resvOp{dvc: dvc, pkt: pkt})
			v.target = dvc
			v.outPort = out
			r.sendFlitFrom(v, out, dvc)
			r.inUsed[v.port] = true
			r.outUsed[out] = true
			r.usedDirty = true
			return
		}
	}
}

// sendFlitFrom dequeues v's front flit onto the output link toward dvc.
// The downstream credit (dvc.inFlight) and the link activation both cross
// shard boundaries, so they go through the outboxes.
func (r *Router) sendFlitFrom(v *VC, out int, dvc *VC) {
	f := v.dequeue()
	l := r.outLink[out]
	s := r.shard
	s.inFlightOps = append(s.inFlightOps, dvc)
	l.sendFlit(r.net.now, f, dvc)
	s.linkMarks = append(s.linkMarks, int32(l.index))
	if r.net.tele != nil {
		s.busyFlit++
	}
	if r.net.measuring() {
		l.flitCycles++
		s.stats.BufferReads++
		s.stats.XbarTraversals++
		s.stats.LinkTraversals++
	}
}

// ejectFlit removes v's front flit from the network into the NIC sink.
func (r *Router) ejectFlit(v *VC) {
	f := v.dequeue()
	if r.net.measuring() {
		r.shard.stats.BufferReads++
		r.shard.stats.XbarTraversals++
	}
	r.shard.ejected(f)
}
