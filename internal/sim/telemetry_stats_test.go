package sim_test

import (
	"math"
	"math/bits"
	"sort"
	"testing"

	spin "repro"
	"repro/internal/sim"
)

// telemetryRun builds a SPIN configuration with recovery activity and a
// measurement window, shared by the telemetry audits below. The rate
// picks the regime: light loads eject measured packets steadily (the
// histogram audit needs ejections), saturating loads spin (the window
// audit needs SPIN activity).
func telemetryRun(t *testing.T, rate float64) *spin.Simulation {
	t.Helper()
	s, err := spin.New(spin.Config{
		Topology:   "mesh:8x8",
		Routing:    "favors_min",
		Scheme:     "spin",
		Traffic:    "uniform_random",
		Rate:       rate,
		VCsPerVNet: 1,
		Warmup:     500,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTelemetryHistMatchesStats audits the latency histogram against
// both the engine's incremental sums and a brute-force recount from the
// eject hook: the histogram must observe exactly the measurement-window
// packets Stats counts, and its percentile estimates must land inside
// the log₂ bucket of the exact order statistic (the acceptance
// cross-check for p50/p95/p99).
func TestTelemetryHistMatchesStats(t *testing.T) {
	s := telemetryRun(t, 0.08)
	net := s.Network()
	tele := net.AttachTelemetry(sim.TelemetryOptions{Hist: true})
	start := net.Config().StatsStart
	var exact []int64
	net.SetEjectHook(func(p *sim.Packet) {
		if p.GenCycle >= start {
			exact = append(exact, p.EjectCycle-p.GenCycle)
		}
	})
	s.Run(4000)

	st := net.Stats()
	h := tele.Latency()
	if h.Count() == 0 {
		t.Fatal("histogram observed nothing; the audit exercised nothing")
	}
	if h.Count() != st.EjectedMeasured {
		t.Errorf("hist count %d != EjectedMeasured %d", h.Count(), st.EjectedMeasured)
	}
	if h.Sum() != st.LatencySum {
		t.Errorf("hist sum %d != LatencySum %d", h.Sum(), st.LatencySum)
	}
	if h.Max() != st.MaxLatency {
		t.Errorf("hist max %d != MaxLatency %d", h.Max(), st.MaxLatency)
	}

	// Brute-force recount from the eject hook.
	var sum, max int64
	for _, v := range exact {
		sum += v
		if v > max {
			max = v
		}
	}
	if int64(len(exact)) != h.Count() || sum != h.Sum() || max != h.Max() {
		t.Errorf("recount (n=%d sum=%d max=%d) != hist (n=%d sum=%d max=%d)",
			len(exact), sum, max, h.Count(), h.Sum(), h.Max())
	}

	// Percentiles: the estimate must lie inside the log₂ bucket holding
	// the exact rank-ceil(q·n) order statistic, and never above the
	// observed max.
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.50, 0.95, 0.99} {
		rank := int64(math.Ceil(q * float64(len(exact))))
		if rank < 1 {
			rank = 1
		}
		want := exact[rank-1]
		lo, hi := int64(0), int64(0)
		if want > 0 {
			lo = int64(1) << uint(bits.Len64(uint64(want))-1)
			hi = 2*lo - 1
		}
		got := h.Quantile(q)
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("q%.0f: estimate %g outside bucket [%d,%d] of exact %d", q*100, got, lo, hi, want)
		}
		if got > float64(h.Max()) {
			t.Errorf("q%.0f: estimate %g above observed max %d", q*100, got, h.Max())
		}
	}
	sum2 := tele.LatencySummary()
	if sum2.Count != h.Count() || sum2.Max != h.Max() {
		t.Errorf("summary disagrees with histogram: %+v", sum2)
	}
	if !(sum2.P50 <= sum2.P95 && sum2.P95 <= sum2.P99) {
		t.Errorf("percentiles not monotone: %+v", sum2)
	}
	if avg := st.AvgLatency(); math.Abs(sum2.Avg-avg) > 1e-9 {
		t.Errorf("summary avg %g != Stats avg %g", sum2.Avg, avg)
	}
}

// TestTelemetryWindowsSumToStats audits the time-series sampler: the
// windows must tile the run exactly, their flit and spin deltas must
// sum to the engine's unconditional totals, instantaneous gauges must
// match the network's own counters at flush, and every fraction must be
// a fraction.
func TestTelemetryWindowsSumToStats(t *testing.T) {
	s := telemetryRun(t, 0.30)
	net := s.Network()
	const window, cycles = 128, 3000 // deliberately not a multiple
	tele := net.AttachTelemetry(sim.TelemetryOptions{Window: window})
	s.Run(cycles)
	tele.Flush()

	ts := tele.TimeSeries()
	if ts == nil || ts.Schema != sim.TimeSeriesSchema || ts.Window != window {
		t.Fatalf("bad time-series header: %+v", ts)
	}
	if want := cycles/window + 1; len(ts.Samples) != want {
		t.Fatalf("got %d windows, want %d", len(ts.Samples), want)
	}
	var injF, ejF, spins, span int64
	next := int64(0)
	for i, w := range ts.Samples {
		if w.Start != next {
			t.Fatalf("window %d starts at %d, want %d (windows must tile)", i, w.Start, next)
		}
		if i < len(ts.Samples)-1 && w.Cycles != window {
			t.Fatalf("interior window %d has width %d", i, w.Cycles)
		}
		next = w.Start + w.Cycles
		injF += w.InjectedFlits
		ejF += w.EjectedFlits
		spins += w.Spins
		span += w.Cycles
		if w.LinkBusy < 0 || w.LinkBusy > 1 || w.SMBusy < 0 || w.SMBusy > 1 {
			t.Errorf("window %d busy fractions out of range: %+v", i, w)
		}
		for vn, occ := range w.VCOccupancy {
			if occ < 0 || occ > 1 {
				t.Errorf("window %d vnet %d occupancy %g out of [0,1]", i, vn, occ)
			}
		}
	}
	st := net.Stats()
	if span != cycles {
		t.Errorf("windows span %d cycles, ran %d", span, cycles)
	}
	if injF != st.InjectedFlits {
		t.Errorf("window injected-flit sum %d != Stats %d", injF, st.InjectedFlits)
	}
	if ejF != st.EjectedFlits {
		t.Errorf("window ejected-flit sum %d != Stats %d", ejF, st.EjectedFlits)
	}
	if spins != st.Spins {
		t.Errorf("window spin sum %d != Stats %d", spins, st.Spins)
	}
	if spins == 0 {
		t.Error("saturated SPIN run recorded no spins; the audit exercised nothing")
	}
	last := ts.Samples[len(ts.Samples)-1]
	if last.QueuedPackets != net.QueuedPackets() || last.InFlight != net.InFlight() {
		t.Errorf("final gauges (queued=%d inflight=%d) != network (queued=%d inflight=%d)",
			last.QueuedPackets, last.InFlight, net.QueuedPackets(), net.InFlight())
	}
	// Flushing twice must not mint an empty duplicate window.
	tele.Flush()
	if got := len(tele.TimeSeries().Samples); got != len(ts.Samples) {
		t.Errorf("double flush grew samples: %d -> %d", len(ts.Samples), got)
	}
}

// TestTelemetryMidRunAttach pins that attaching after warmup baselines
// the deltas: windows begin at the attach cycle and count only flits
// injected afterwards.
func TestTelemetryMidRunAttach(t *testing.T) {
	s := telemetryRun(t, 0.10)
	net := s.Network()
	s.Run(777)
	before := net.Stats().InjectedFlits
	tele := net.AttachTelemetry(sim.TelemetryOptions{Window: 100})
	s.Run(1000)
	tele.Flush()
	ts := tele.TimeSeries()
	if len(ts.Samples) == 0 || ts.Samples[0].Start != 777 {
		t.Fatalf("windows do not start at attach cycle: %+v", ts.Samples[0])
	}
	var injF int64
	for _, w := range ts.Samples {
		injF += w.InjectedFlits
	}
	if want := net.Stats().InjectedFlits - before; injF != want {
		t.Errorf("post-attach window sum %d != delta %d", injF, want)
	}
}
