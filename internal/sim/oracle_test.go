package sim_test

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// squareRingNet builds the canonical 2x2 dependency cycle with no
// recovery scheme, for oracle unit tests.
func squareRingNet(t *testing.T) *sim.Network {
	t.Helper()
	mesh, err := topology.NewMesh(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := []int{0, 1, 3, 2}
	ports := []int{
		topology.MeshPort(topology.East),
		topology.MeshPort(topology.North),
		topology.MeshPort(topology.West),
		topology.MeshPort(topology.South),
	}
	table := &routing.Table{}
	for i := range ring {
		dst := ring[(i+2)%len(ring)]
		table.Set(ring[i], dst, ports[i])
		table.Set(ring[(i+1)%len(ring)], dst, ports[(i+1)%len(ring)])
	}
	n, err := sim.NewNetwork(sim.Config{Topology: mesh, Routing: table, VCsPerVNet: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ring {
		n.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+2)%len(ring)], Length: 2})
	}
	return n
}

func TestOracleFindsExactCycle(t *testing.T) {
	n := squareRingNet(t)
	n.Run(30)
	dl := n.FindDeadlock()
	if len(dl) != 4 {
		t.Fatalf("oracle found %d deadlocked VCs, want the 4 ring VCs: %v", len(dl), dl)
	}
	routersSeen := map[int]bool{}
	for _, d := range dl {
		routersSeen[d.Router] = true
		if d.Port == 0 {
			t.Fatal("terminal-port VC reported as deadlocked ring member")
		}
	}
	if len(routersSeen) != 4 {
		t.Fatalf("cycle should span all 4 routers, got %v", routersSeen)
	}
}

func TestOracleCountsRhoVictims(t *testing.T) {
	n := squareRingNet(t)
	n.Run(10)
	// A victim: a packet from router 0 whose route enters the jammed ring
	// VC at router 1 (dst router 3 via E then N, same table entries as
	// the ring packet from 0).
	n.InjectPacket(0, sim.PacketSpec{Dst: 3, Length: 2})
	n.Run(30)
	dl := n.FindDeadlock()
	// The 4 ring VCs plus the victim starving at router 0's terminal VC:
	// a victim cannot be a cycle member, but it is permanently blocked on
	// the cycle and the oracle reports it.
	if len(dl) != 5 {
		t.Fatalf("oracle found %d deadlocked VCs, want 4 ring + 1 victim: %v", len(dl), dl)
	}
	victims := 0
	for _, d := range dl {
		if d.Port == 0 {
			victims++
		}
	}
	if victims != 1 {
		t.Fatalf("want exactly one terminal-VC victim, got %d", victims)
	}
}

func TestOracleClearOnEmptyAndLightLoad(t *testing.T) {
	mesh, _ := topology.NewMesh(3, 3, 1)
	n, err := sim.NewNetwork(sim.Config{Topology: mesh, Routing: &routing.XY{Mesh: mesh}, VCsPerVNet: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Deadlocked() {
		t.Fatal("empty network reported deadlocked")
	}
	n.InjectPacket(0, sim.PacketSpec{Dst: 8, Length: 5})
	for i := 0; i < 40; i++ {
		n.Step()
		if n.Deadlocked() {
			t.Fatalf("single moving packet reported deadlocked at cycle %d", i)
		}
	}
}

func TestOracleBlockedButLiveChainIsNotDeadlock(t *testing.T) {
	// A convoy into one ejector: every packet is head-blocked at some
	// point but the chain drains — the oracle must never flag it.
	mesh, _ := topology.NewMesh(6, 1, 1)
	n, _ := sim.NewNetwork(sim.Config{Topology: mesh, Routing: &routing.XY{Mesh: mesh}, VCsPerVNet: 1})
	for i := 0; i < 5; i++ {
		n.InjectPacket(0, sim.PacketSpec{Dst: 5, Length: 5})
		n.InjectPacket(1, sim.PacketSpec{Dst: 5, Length: 5})
	}
	for i := 0; i < 300; i++ {
		n.Step()
		if n.Deadlocked() {
			t.Fatalf("draining convoy flagged as deadlock at cycle %d", i)
		}
	}
	if n.Stats().Ejected != 10 {
		t.Fatalf("convoy not delivered: %d/10", n.Stats().Ejected)
	}
}

func TestOraclePersistsWhileUnrecovered(t *testing.T) {
	n := squareRingNet(t)
	n.Run(30)
	if !n.Deadlocked() {
		t.Fatal("ring not deadlocked")
	}
	n.Run(2000)
	if !n.Deadlocked() {
		t.Fatal("true deadlock dissolved without a recovery scheme")
	}
	if n.Stats().Ejected != 0 {
		t.Fatal("deadlocked packets delivered?!")
	}
}
