package sim

// Agent is the per-router deadlock-freedom agent. SPIN, Static Bubble and
// bubble flow control are implemented as Agents; pure avoidance schemes
// (turn models, VC ladders) need none and run with a nil agent.
//
// The engine calls the hooks at fixed points of each cycle:
//
//  1. arriving SMs are delivered via HandleSM (in input-port order),
//  2. Tick runs (counters, probes, freezes, spin launches),
//  3. switch allocation consults Frozen VCs, FilterSend and FilterInject.
type Agent interface {
	// Tick runs once per cycle after SM delivery and before switch
	// allocation.
	Tick()
	// HandleSM delivers a special message that arrived on inPort this
	// cycle.
	HandleSM(sm *SM, inPort int)
	// PickSM resolves contention among SMs that want the same output port
	// in the same cycle, returning the winner; the rest are dropped.
	PickSM(outPort int, candidates []*SM) *SM
	// FilterSend reports whether the resident packet of vc may take dvc at
	// outPort this cycle (bubble schemes veto sends that would consume the
	// last free packet slot of a ring).
	FilterSend(vc *VC, outPort int, dvc *VC) bool
	// FilterInject reports whether the NIC may begin injecting p into vc
	// this cycle.
	FilterInject(vc *VC, p *Packet) bool
}

// Quiescer is an optional Agent extension. An agent that implements it
// reports, each cycle, whether its Tick would be a no-op given the
// router's current state; the engine then skips Tick for routers with no
// buffered flits and a quiescent agent. Agents without the method are
// conservatively ticked every cycle. Quiescent must only return true when
// skipping Tick is observably identical to running it.
type Quiescer interface {
	Quiescent() bool
}

// Scheme builds the per-router Agents of a deadlock-freedom scheme and
// describes it for tables.
type Scheme interface {
	// Name identifies the scheme ("spin", "static_bubble", ...).
	Name() string
	// Attach is called once after the network is constructed; the scheme
	// installs agents with Network.SetAgent and may keep the Network for
	// global bookkeeping (rotating priorities need the router count).
	Attach(n *Network)
}

// BaseAgent is an Agent that does nothing and permits everything. Embed it
// to implement only the hooks a scheme needs.
type BaseAgent struct{}

// Tick implements Agent.
func (BaseAgent) Tick() {}

// HandleSM implements Agent; SMs are ignored.
func (BaseAgent) HandleSM(*SM, int) {}

// PickSM implements Agent with class priority then first-come order.
func (BaseAgent) PickSM(_ int, candidates []*SM) *SM {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Kind.ClassPriority() > best.Kind.ClassPriority() {
			best = c
		}
	}
	return best
}

// FilterSend implements Agent, permitting every send.
func (BaseAgent) FilterSend(*VC, int, *VC) bool { return true }

// FilterInject implements Agent, permitting every injection.
func (BaseAgent) FilterInject(*VC, *Packet) bool { return true }
