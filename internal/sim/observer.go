package sim

// The deadlock oracle gives tests and the Fig. 3 experiment a global view
// no distributed scheme has: it decides, from the instantaneous buffer
// state, whether some set of packets can never make progress.
//
// A VC is *live* when its resident packet can eventually move: it is
// ejecting, some admissible downstream VC can accept it now, or some
// admissible downstream VC is itself live (its resident will eventually
// drain and release buffer space — arbitration is fair, so eventual space
// implies eventual progress under virtual cut-through). Non-empty, routed,
// non-live VCs are deadlocked.

// DeadlockedVC identifies a VC found in a deadlock cycle.
type DeadlockedVC struct {
	Router, Port, Index int
}

// FindDeadlock computes the set of deadlocked VCs via a liveness fixpoint.
// An empty result means no routing deadlock exists at this instant.
// Frozen/spinning VCs in mid-recovery count as live (recovery will move
// them); tests bound how long recovery may take separately.
func (n *Network) FindDeadlock() []DeadlockedVC {
	type node struct {
		vc   *VC
		deps []*VC // admissible downstream VCs
	}
	var nodes []node
	idx := map[*VC]int{}
	for _, r := range n.routers {
		for p := 0; p < r.radix; p++ {
			for _, v := range r.in[p] {
				if len(v.buf) == 0 || !v.routed {
					continue
				}
				nodes = append(nodes, node{vc: v})
				idx[v] = len(nodes) - 1
			}
		}
	}
	live := make([]bool, len(nodes))
	var vcBuf []*VC
	for i := range nodes {
		v := nodes[i].vc
		r := v.router
		switch {
		case v.frozen || v.spinning:
			live[i] = true
		case v.WaitingToEject() || (v.target == nil && v.outPort >= 0 && v.outPort < r.localPorts):
			live[i] = true
		case v.target != nil:
			if v.target.FreeSlots() > 0 {
				live[i] = true
			} else {
				nodes[i].deps = append(nodes[i].deps, v.target)
			}
		default:
			pkt := v.FrontPacket()
			for _, req := range v.reqs {
				if req.Port < r.localPorts {
					live[i] = true
					break
				}
				vcBuf = r.DownstreamVCs(req.Port, pkt.VNet, req.VCMask, vcBuf[:0])
				for _, dvc := range vcBuf {
					if dvc.CanAccept(pkt.Length) {
						live[i] = true
						break
					}
					nodes[i].deps = append(nodes[i].deps, dvc)
				}
				if live[i] {
					break
				}
			}
		}
	}
	// Propagate liveness backwards to a fixpoint: v is live if any
	// dependency is live (space will eventually appear there).
	for changed := true; changed; {
		changed = false
		for i := range nodes {
			if live[i] {
				continue
			}
			for _, dvc := range nodes[i].deps {
				j, ok := idx[dvc]
				if !ok {
					// Dependency VC holds no routed resident: it is
					// draining space or idle-but-reserved; treat a
					// reserved-but-empty VC as live (its owner is moving).
					if dvc.resvOwner == nil || len(dvc.buf) == 0 {
						live[i] = true
						break
					}
					continue
				}
				if live[j] {
					live[i] = true
					break
				}
			}
			if live[i] {
				changed = true
			}
		}
	}
	var out []DeadlockedVC
	for i, nd := range nodes {
		if !live[i] {
			out = append(out, DeadlockedVC{Router: nd.vc.router.ID, Port: nd.vc.port, Index: nd.vc.index})
		}
	}
	return out
}

// Deadlocked reports whether any deadlocked VC exists right now.
func (n *Network) Deadlocked() bool { return len(n.FindDeadlock()) > 0 }
