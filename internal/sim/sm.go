package sim

import "fmt"

// SMKind enumerates the special-message classes of the SPIN protocol.
// Their processing priority under link contention is
// ProbeMove > Move = KillMove > Probe, and every SM outranks flits.
type SMKind uint8

// Special message kinds.
const (
	SMProbe SMKind = iota
	SMMove
	SMProbeMove
	SMKillMove
	numSMKinds
)

// String returns the SM kind name.
func (k SMKind) String() string {
	switch k {
	case SMProbe:
		return "probe"
	case SMMove:
		return "move"
	case SMProbeMove:
		return "probe_move"
	case SMKillMove:
		return "kill_move"
	}
	return fmt.Sprintf("sm(%d)", uint8(k))
}

// ClassPriority reports the SM's contention class: higher wins the link.
func (k SMKind) ClassPriority() int {
	switch k {
	case SMProbeMove:
		return 3
	case SMMove, SMKillMove:
		return 2
	case SMProbe:
		return 1
	}
	return 0
}

// SM is a special message. SMs are bufferless: they traverse regular links
// at higher priority than flits, are never stored, and are dropped on
// contention loss — the sender's FSM recovers via timeouts.
type SM struct {
	Kind   SMKind
	Sender int // initiating router id
	// Path holds output-port ids. A probe appends the port it leaves each
	// router by; move-class SMs consume the path from the front so that
	// the next hop's port is always Path[0].
	Path []uint8
	// SpinCycle is the absolute cycle of the synchronized movement
	// (move/probe_move only).
	SpinCycle int64
	// LoopLen is the dependency-loop traversal time in cycles, measured by
	// the initiator from its probe's accumulated hop latency.
	LoopLen int64
	// FirstOut is the output port the initiating router launched a probe
	// from — the initiator's own link of the dependency loop.
	FirstOut uint8
	// VNet is the virtual network whose buffer dependencies the SM
	// traces. Virtual networks are independent resource classes: a
	// deadlock lives entirely within one, so probes ignore other vnets'
	// VCs and moves only freeze VCs of their own class.
	VNet uint8
	// HopCycles accumulates the link latency of every hop a probe takes;
	// when the probe returns it equals the loop traversal time.
	HopCycles int64
	// Forked marks probe copies produced by a fork. Forked copies explore
	// secondary dependencies and are subject to priority culling
	// immediately, which bounds the fork tree.
	Forked bool
	// Tag identifies the recovery attempt for tracing.
	Tag uint64

	// pooled marks SMs owned by the network's free list (Router.NewSM /
	// CloneSM); the engine recycles them once dropped or delivered.
	pooled bool
}

// Clone returns a garbage-collected deep copy. Hot paths should prefer
// Router.CloneSM, which recycles through the network's free list.
func (m *SM) Clone() *SM {
	c := *m
	c.pooled = false
	c.Path = append([]uint8(nil), m.Path...)
	return &c
}

func (m *SM) String() string {
	return fmt.Sprintf("%s from r%d path=%v spin@%d", m.Kind, m.Sender, m.Path, m.SpinCycle)
}
