package sim

import "testing"

func TestSMKindStrings(t *testing.T) {
	cases := map[SMKind]string{
		SMProbe:     "probe",
		SMMove:      "move",
		SMProbeMove: "probe_move",
		SMKillMove:  "kill_move",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if SMKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestSMCloneIsDeep(t *testing.T) {
	m := &SM{Kind: SMProbe, Sender: 3, Path: []uint8{1, 2}, SpinCycle: 9, LoopLen: 4, HopCycles: 7, FirstOut: 2}
	c := m.Clone()
	c.Path = append(c.Path, 5)
	c.Path[0] = 9
	if len(m.Path) != 2 || m.Path[0] != 1 {
		t.Fatalf("clone shares path storage: %v", m.Path)
	}
	if c.Sender != 3 || c.SpinCycle != 9 || c.HopCycles != 7 || c.FirstOut != 2 {
		t.Fatal("clone lost fields")
	}
	if m.String() == "" || c.String() == "" {
		t.Fatal("empty SM render")
	}
}

func TestPacketHelpers(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, DstRouter: 5, Intermediate: 3, Phase: 0, Length: 5}
	if p.RouteDst() != 3 {
		t.Fatal("phase-0 non-minimal packet should head for the intermediate router")
	}
	p.Phase = 1
	if p.RouteDst() != 5 {
		t.Fatal("phase-1 packet should head for the destination router")
	}
	p.Intermediate = -1
	p.Phase = 0
	if p.RouteDst() != 5 {
		t.Fatal("minimal packet should head for the destination router")
	}
	if p.String() == "" {
		t.Fatal("empty packet render")
	}
	head := Flit{Pkt: p, Seq: 0}
	tail := Flit{Pkt: p, Seq: 4}
	if !head.IsHead() || head.IsTail() {
		t.Fatal("head flit misclassified")
	}
	if tail.IsHead() || !tail.IsTail() {
		t.Fatal("tail flit misclassified")
	}
	single := Flit{Pkt: &Packet{Length: 1}, Seq: 0}
	if !single.IsHead() || !single.IsTail() {
		t.Fatal("single-flit packet should be head and tail")
	}
}

func TestChecksumDistinguishesIdentity(t *testing.T) {
	a := checksumFor(1, 2, 3, 5)
	if a != checksumFor(1, 2, 3, 5) {
		t.Fatal("checksum not deterministic")
	}
	for _, b := range []uint64{
		checksumFor(2, 2, 3, 5),
		checksumFor(1, 3, 3, 5),
		checksumFor(1, 2, 4, 5),
		checksumFor(1, 2, 3, 1),
	} {
		if a == b {
			t.Fatal("checksum collision across identities")
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.AvgLatency() != 0 || s.AvgNetLatency() != 0 || s.AvgHops() != 0 || s.Throughput(8) != 0 {
		t.Fatal("zero-value stats should report zeros")
	}
	s.EjectedMeasured = 4
	s.LatencySum = 40
	s.NetLatencySum = 20
	s.HopSum = 12
	s.MeasuredCycles = 100
	s.EjectedFlitsMeas = 50
	if s.AvgLatency() != 10 || s.AvgNetLatency() != 5 || s.AvgHops() != 3 {
		t.Fatal("averages wrong")
	}
	if got := s.Throughput(5); got != 0.1 {
		t.Fatalf("throughput = %f, want 0.1", got)
	}
	s.Count("x", 2)
	s.Count("x", 3)
	if s.Counter("x") != 5 || s.Counter("y") != 0 {
		t.Fatal("counter bookkeeping wrong")
	}
}
