package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/topology"
)

// TrafficGen produces packets. Generate is called once per terminal per
// cycle and emits zero or more packet specs to inject at that terminal.
// The supplied rng is the terminal's private stream; generators must not
// share mutable state across terminals unless they declare themselves
// serial-only (see SerialOnly).
type TrafficGen interface {
	Name() string
	Generate(cycle int64, src int, rng *rand.Rand, emit func(PacketSpec))
}

// TrafficStepper is an optional TrafficGen extension: StepTraffic runs
// serially at the top of every Step, before the parallel phases. It is
// the place for work that must see the whole generator — pumping a
// streaming trace into per-source queues, advancing a global arrival
// process — while Generate stays shard-safe and source-local.
type TrafficStepper interface {
	StepTraffic(now int64)
}

// TrafficEjectObserver is an optional TrafficGen extension: OnEject is
// called for every ejected packet during the serial commit, in
// deterministic shard-major order. Closed-loop generators use it to
// retire outstanding requests and queue replies. The *Packet is only
// valid for the duration of the call — the engine may recycle it.
type TrafficEjectObserver interface {
	OnEject(p *Packet)
}

// TrafficQuiescer is an optional TrafficGen extension for generators
// with internal obligations (pending replies). During Drain the engine
// normally detaches traffic entirely; a quiescer instead stays attached
// with Quiesce(true) — it must stop sourcing new work but keep meeting
// obligations so the network can reach a truly empty state.
type TrafficQuiescer interface {
	Quiesce(on bool)
}

// WindowedTraffic is implemented by closed-loop generators with finite
// request windows. The invariant checker audits these accessors every
// sweep, and Drain does not report success while InWindow is nonzero.
type WindowedTraffic interface {
	// WindowLimit is W, the per-terminal outstanding-request cap.
	WindowLimit() int
	// Outstanding reports terminal t's current in-window requests.
	Outstanding(t int) int
	// InWindow reports the total outstanding requests across terminals.
	InWindow() int64
	// AuditWindows returns the first internal accounting violation the
	// generator has detected (a reply without a matching issued
	// request, completions exceeding issues), or nil.
	AuditWindows() error
}

// Config assembles a simulation.
type Config struct {
	Topology topology.Topology
	Routing  RoutingAlgorithm
	Scheme   Scheme     // nil: no deadlock handling beyond the routing itself
	Traffic  TrafficGen // nil: no open-loop traffic (tests drive manually)

	VNets       int // virtual networks (message classes); default 1
	VCsPerVNet  int // VCs per vnet per port; default 1
	VCDepth     int // flits per VC; default 5
	MaxPktLen   int // largest packet the traffic emits; default 5
	RouterDelay int // per-hop router pipeline cycles; default 1 (1-cycle router)

	// Shards is the number of spatial router partitions stepped in
	// parallel; 0 or 1 runs the engine inline with no goroutines. The
	// count is an execution knob, not part of the simulated system:
	// output is byte-identical at any value. It is clamped to the router
	// count and to 1 when the scheme, traffic generator, or routing
	// algorithm requires serial stepping (see SerialOnly/ShardCloner).
	Shards int

	Seed       int64
	StatsStart int64 // cycle measurement begins (warmup length)
}

func (c *Config) setDefaults() error {
	if c.Topology == nil {
		return fmt.Errorf("sim: config needs a topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("sim: config needs a routing algorithm")
	}
	if c.VNets == 0 {
		c.VNets = 1
	}
	if c.VCsPerVNet == 0 {
		c.VCsPerVNet = 1
	}
	if c.VCDepth == 0 {
		c.VCDepth = 5
	}
	if c.MaxPktLen == 0 {
		c.MaxPktLen = 5
	}
	if c.RouterDelay == 0 {
		c.RouterDelay = 1
	}
	if c.VCsPerVNet > 32 {
		return fmt.Errorf("sim: at most 32 VCs per vnet, got %d", c.VCsPerVNet)
	}
	if c.VCDepth < c.MaxPktLen {
		return fmt.Errorf("sim: VCDepth %d < MaxPktLen %d breaks virtual cut-through (and the spin space argument)", c.VCDepth, c.MaxPktLen)
	}
	return nil
}

// resolveShards clamps the configured shard count to what the assembled
// simulation supports. Schemes and traffic generators must positively
// declare shard-safety via SerialOnly; routing algorithms must implement
// ShardCloner. Anything else runs serial.
func (c *Config) resolveShards() int {
	s := c.Shards
	if s <= 0 {
		s = 1
	}
	if r := c.Topology.NumRouters(); s > r {
		s = r
	}
	if s == 1 {
		return 1
	}
	if c.Scheme != nil {
		so, ok := c.Scheme.(SerialOnly)
		if !ok || so.RequiresSerialStep() {
			return 1
		}
	}
	if c.Traffic != nil {
		so, ok := c.Traffic.(SerialOnly)
		if !ok || so.RequiresSerialStep() {
			return 1
		}
	}
	if _, ok := c.Routing.(ShardCloner); !ok {
		return 1
	}
	return s
}

// Network is a running simulation instance.
type Network struct {
	cfg     Config
	routers []*Router
	links   []*link
	nics    []*NIC
	rng     *rand.Rand
	now     int64
	stats   Stats

	// Per-entity RNG streams (see rng.go): routers draw for adaptive
	// tie-breaking, terminals for traffic generation. The engine never
	// draws from the legacy shared rng.
	routerRNG []*rand.Rand
	termRNG   []*rand.Rand

	inNetwork     int // packets injected (head) but not fully ejected
	queuedPackets int // packets waiting in NIC source queues (incremental)

	// Sharded engine state (see shard.go). nShards==1 still builds one
	// shard — the outbox discipline is the single code path — but runs it
	// inline with no worker goroutines.
	nShards     int
	shards      []*shardState
	routerShard []int32
	termShard   []int32
	linkShard   []int32
	work        chan func()
	phaseWG     sync.WaitGroup
	p1fns       []func()
	p2fns       []func()

	// ejectHook, when set, observes every ejected packet (tests, traces).
	ejectHook func(*Packet)

	// trafStep/trafObs cache the traffic generator's optional hooks so
	// the hot path pays a nil check, not a type assertion, per cycle.
	trafStep TrafficStepper
	trafObs  TrafficEjectObserver

	// checker, when attached, audits the network's invariants every
	// cycle (see checker.go).
	checker *InvariantChecker

	// tele, when attached, is the observability layer (see telemetry.go).
	// Every hot-path hook is a nil-check on it.
	tele *Telemetry
}

// NewNetwork builds a network from cfg, attaching the scheme's agents.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	cfg.Shards = cfg.resolveShards()
	n := &Network{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), nShards: cfg.Shards}
	topo := cfg.Topology
	n.routers = make([]*Router, topo.NumRouters())
	for i := range n.routers {
		n.routers[i] = newRouter(n, i)
	}
	// Links are ordered by destination router (stable over the topology's
	// declaration order) so each shard's inbound links form one contiguous
	// index range; shard-major traversal then equals global link order.
	topoLinks := append([]topology.Link(nil), topo.Links()...)
	sort.SliceStable(topoLinks, func(i, j int) bool { return topoLinks[i].Dst < topoLinks[j].Dst })
	for i, tl := range topoLinks {
		l := &link{topo: tl, index: i, dst: n.routers[tl.Dst]}
		n.links = append(n.links, l)
		n.routers[tl.Src].outLink[tl.SrcPort] = l
	}
	n.nics = make([]*NIC, topo.NumTerminals())
	for t := range n.nics {
		r := n.routers[topo.TerminalRouter(t)]
		n.nics[t] = &NIC{term: t, router: r, port: topo.TerminalPort(t)}
	}
	for _, l := range n.links {
		l.global = n.isGlobalHop(l)
	}
	n.routerRNG = make([]*rand.Rand, len(n.routers))
	for i := range n.routerRNG {
		n.routerRNG[i] = newEntityRand(cfg.Seed, RouterKey(i))
	}
	n.termRNG = make([]*rand.Rand, len(n.nics))
	for i := range n.termRNG {
		n.termRNG[i] = newEntityRand(cfg.Seed, TerminalKey(i))
	}
	n.buildShards()
	if tp, ok := cfg.Traffic.(TrafficPrep); ok {
		tp.PrepareTerminals(len(n.nics))
	}
	n.trafStep, _ = cfg.Traffic.(TrafficStepper)
	n.trafObs, _ = cfg.Traffic.(TrafficEjectObserver)
	if cfg.Scheme != nil {
		cfg.Scheme.Attach(n)
	}
	for _, r := range n.routers {
		for _, v := range r.vcFlat {
			v.refreshSnap()
		}
	}
	return n, nil
}

// buildShards partitions routers into contiguous ranges, assigns
// terminals and inbound links to their owners, clones per-shard routing
// scratch, and (for multi-shard runs) starts the persistent workers.
func (n *Network) buildShards() {
	topo := n.cfg.Topology
	nr := len(n.routers)
	n.shards = make([]*shardState, n.nShards)
	n.routerShard = make([]int32, nr)
	for si := 0; si < n.nShards; si++ {
		s := &shardState{n: n, id: si, r0: si * nr / n.nShards, r1: (si + 1) * nr / n.nShards}
		n.shards[si] = s
		for r := s.r0; r < s.r1; r++ {
			n.routerShard[r] = int32(si)
			n.routers[r].shard = s
		}
		if si == 0 || n.nShards == 1 {
			s.routing = n.cfg.Routing
		} else {
			s.routing = n.cfg.Routing.(ShardCloner).CloneForShard()
		}
		sh := s
		s.injectFn = func(spec PacketSpec) { n.inject(sh, sh.injectTerm, spec, true) }
	}
	n.termShard = make([]int32, len(n.nics))
	for t := range n.nics {
		si := n.routerShard[topo.TerminalRouter(t)]
		n.termShard[t] = si
		s := n.shards[si]
		s.terms = append(s.terms, int32(t))
	}
	n.linkShard = make([]int32, len(n.links))
	for i, l := range n.links {
		n.linkShard[i] = n.routerShard[l.topo.Dst]
	}
	// Links are dst-sorted, so each shard's range is contiguous.
	lo := 0
	for si, s := range n.shards {
		s.l0 = lo
		for lo < len(n.links) && int(n.linkShard[lo]) == si {
			lo++
		}
		s.l1 = lo
		s.linkActive = make([]uint64, (s.l1-s.l0+63)/64)
	}
	n.p1fns = make([]func(), n.nShards)
	n.p2fns = make([]func(), n.nShards)
	for si, s := range n.shards {
		sh := s
		if si == 0 {
			n.p1fns[0] = sh.phase1
			n.p2fns[0] = sh.phase2
			continue
		}
		n.p1fns[si] = func() {
			defer n.phaseWG.Done()
			defer func() {
				if r := recover(); r != nil {
					sh.panicVal = r
				}
			}()
			sh.phase1()
		}
		n.p2fns[si] = func() {
			defer n.phaseWG.Done()
			defer func() {
				if r := recover(); r != nil {
					sh.panicVal = r
				}
			}()
			sh.phase2()
		}
	}
	if n.nShards > 1 {
		// Persistent workers blocked on the work channel. They capture
		// only the channel, so the finalizer can reclaim the network and
		// shut them down once it becomes unreachable.
		work := make(chan func())
		n.work = work
		for i := 0; i < n.nShards-1; i++ {
			go func() {
				for f := range work {
					f()
				}
			}()
		}
		runtime.SetFinalizer(n, func(nn *Network) { close(nn.work) })
	}
}

// Config returns the simulation configuration (with the resolved shard
// count).
func (n *Network) Config() Config { return n.cfg }

// Shards reports the resolved shard count the engine runs with.
func (n *Network) Shards() int { return n.nShards }

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.cfg.Topology }

// Router returns router id.
func (n *Network) Router(id int) *Router { return n.routers[id] }

// NumRouters reports the router count.
func (n *Network) NumRouters() int { return len(n.routers) }

// NIC returns terminal t's interface.
func (n *Network) NIC(t int) *NIC { return n.nics[t] }

// Now reports the current cycle.
func (n *Network) Now() int64 { return n.now }

// Stats returns the accumulated statistics. Between steps the shard
// accumulators are always drained, so the totals are current.
func (n *Network) Stats() *Stats { return &n.stats }

// RNG returns the legacy shared random source. The engine itself draws
// from per-router and per-terminal streams (RouterRNG/TerminalRNG); this
// source is kept for callers that need a deterministic scratch stream.
func (n *Network) RNG() *rand.Rand { return n.rng }

// RouterRNG returns router id's private stream.
func (n *Network) RouterRNG(id int) *rand.Rand { return n.routerRNG[id] }

// TerminalRNG returns terminal t's private stream.
func (n *Network) TerminalRNG(t int) *rand.Rand { return n.termRNG[t] }

// InFlight reports packets currently inside the network (injection started,
// ejection not finished).
func (n *Network) InFlight() int { return n.inNetwork }

// QueuedPackets reports packets waiting in NIC source queues. The count
// is maintained incrementally at push/pop; RecountQueuedPackets is the
// brute-force cross-check.
func (n *Network) QueuedPackets() int { return n.queuedPackets }

// RecountQueuedPackets recomputes QueuedPackets by scanning every NIC —
// the original O(terminals) accessor, kept for auditing the incremental
// counter.
func (n *Network) RecountQueuedPackets() int {
	total := 0
	for _, nic := range n.nics {
		total += nic.QueueLen()
	}
	return total
}

// SetAgent installs a deadlock agent on a router (called by schemes).
func (n *Network) SetAgent(router int, a Agent) {
	r := n.routers[router]
	r.agent = a
	r.qagent, _ = a.(Quiescer)
	r.vpub, _ = a.(ViewPublisher)
}

// SetEjectHook registers an observer for every ejected packet.
func (n *Network) SetEjectHook(f func(*Packet)) { n.ejectHook = f }

func (n *Network) measuring() bool { return n.now >= n.cfg.StatsStart }

// InjectPacket creates a packet and enqueues it at src's NIC, running the
// routing algorithm's source hook. Tests and traffic replay use it
// directly; open-loop traffic goes through Config.Traffic.
func (n *Network) InjectPacket(src int, spec PacketSpec) *Packet {
	// Packets injected through the public API are never pooled: callers
	// routinely retain the pointer past ejection (tests, trace capture).
	s := n.shards[n.termShard[src]]
	p := n.inject(s, src, spec, false)
	// Public injections happen between steps; fold the gauge delta now so
	// QueuedPackets is immediately consistent.
	n.queuedPackets += s.dQueued
	s.dQueued = 0
	return p
}

// inject creates (or recycles) a packet and enqueues it at src's NIC.
// Pooled packets come from — and on ejection return to — the shard free
// list; only the engine's own traffic-generation path uses pooling, and
// only while no eject observer could retain the pointer.
func (n *Network) inject(s *shardState, src int, spec PacketSpec, pooled bool) *Packet {
	if spec.Length <= 0 || spec.Length > n.cfg.MaxPktLen {
		panic(fmt.Sprintf("sim: packet length %d outside (0,%d]", spec.Length, n.cfg.MaxPktLen))
	}
	if spec.VNet < 0 || spec.VNet >= n.cfg.VNets {
		panic(fmt.Sprintf("sim: vnet %d out of range", spec.VNet))
	}
	nic := n.nics[src]
	// Packet IDs interleave per-terminal sequence numbers: unique, nonzero,
	// and independent of the generation order across terminals.
	id := uint64(nic.pktSeq)*uint64(len(n.nics)) + uint64(src) + 1
	nic.pktSeq++
	var p *Packet
	if pooled && len(s.pktPool) > 0 {
		k := len(s.pktPool) - 1
		p = s.pktPool[k]
		s.pktPool[k] = nil
		s.pktPool = s.pktPool[:k]
	} else {
		p = new(Packet)
	}
	*p = Packet{
		ID:           id,
		Src:          src,
		Dst:          spec.Dst,
		SrcRouter:    n.cfg.Topology.TerminalRouter(src),
		DstRouter:    n.cfg.Topology.TerminalRouter(spec.Dst),
		VNet:         spec.VNet,
		Length:       spec.Length,
		GenCycle:     n.now,
		Intermediate: -1,
		pooled:       pooled,
	}
	p.Checksum = checksumFor(p.ID, p.Src, p.Dst, p.Length)
	s.routing.AtSource(n.routers[p.SrcRouter], p)
	nic.push(p)
	s.dQueued++
	if n.tele != nil && n.tele.probeOn() {
		s.emitEvent(Event{Cycle: n.now, Kind: EvPacketQueued, Router: p.SrcRouter,
			Packet: p.ID, Src: p.Src, Dst: p.Dst, VNet: p.VNet})
	}
	return p
}

// Step advances the simulation by one cycle: two parallel phases over the
// shards, then the serial commit (see shard.go).
func (n *Network) Step() {
	if n.trafStep != nil && n.cfg.Traffic != nil {
		n.trafStep.StepTraffic(n.now)
	}
	n.runParallel(n.p1fns)
	n.runParallel(n.p2fns)
	n.commit()
}

// isGlobalHop reports whether a link is a dragonfly global channel.
func (n *Network) isGlobalHop(l *link) bool {
	d, ok := n.cfg.Topology.(*topology.Dragonfly)
	if !ok {
		return false
	}
	return d.Group(l.topo.Src) != d.Group(l.topo.Dst)
}

// Run advances the simulation by cycles steps.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain disables traffic and steps until the network is empty (all queued
// and in-flight packets ejected) or maxCycles elapse. It reports whether
// the network fully drained — the strongest liveness check available.
//
// A TrafficQuiescer (closed-loop generators with reply obligations)
// stays attached in quiesce mode instead of being detached: new requests
// stop, pending replies keep flowing, and the drain additionally waits
// for the request window to empty (zero in-window residue).
func (n *Network) Drain(maxCycles int64) bool {
	saved := n.cfg.Traffic
	var wt WindowedTraffic
	if q, ok := saved.(TrafficQuiescer); ok {
		q.Quiesce(true)
		defer q.Quiesce(false)
		wt, _ = saved.(WindowedTraffic)
	} else {
		n.cfg.Traffic = nil
		defer func() { n.cfg.Traffic = saved }()
	}
	empty := func() bool {
		if n.inNetwork != 0 || n.QueuedPackets() != 0 {
			return false
		}
		return wt == nil || wt.InWindow() == 0
	}
	for i := int64(0); i < maxCycles; i++ {
		if empty() {
			return true
		}
		n.Step()
	}
	return empty()
}

// LinkUtilisation aggregates the per-link busy accounting over the
// measurement window.
func (n *Network) LinkUtilisation() LinkUtilisation {
	var u LinkUtilisation
	if n.stats.MeasuredCycles == 0 || len(n.links) == 0 {
		return u
	}
	total := float64(n.stats.MeasuredCycles) * float64(len(n.links))
	var flit float64
	var sm [4]float64
	for _, l := range n.links {
		flit += float64(l.flitCycles)
		for k := 0; k < int(numSMKinds); k++ {
			sm[k] += float64(l.smCycles[k])
		}
	}
	u.Flit = flit / total
	for k := range sm {
		u.SM[k] = sm[k] / total
		u.SMAll += u.SM[k]
	}
	u.Idle = 1 - u.Flit - u.SMAll
	return u
}

// SetTraffic replaces the open-loop traffic generator (nil disables
// generation; queued and in-flight packets are unaffected). A sharded
// network rejects generators that require serial stepping — the shard
// count is fixed at construction.
func (n *Network) SetTraffic(g TrafficGen) {
	if g != nil && n.nShards > 1 {
		so, ok := g.(SerialOnly)
		if !ok || so.RequiresSerialStep() {
			panic(fmt.Sprintf("sim: traffic %s requires serial stepping but the network runs %d shards", g.Name(), n.nShards))
		}
	}
	if tp, ok := g.(TrafficPrep); ok {
		tp.PrepareTerminals(len(n.nics))
	}
	n.cfg.Traffic = g
	n.trafStep, _ = g.(TrafficStepper)
	n.trafObs, _ = g.(TrafficEjectObserver)
}
