package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// TrafficGen produces packets. Generate is called once per terminal per
// cycle and emits zero or more packet specs to inject at that terminal.
type TrafficGen interface {
	Name() string
	Generate(cycle int64, src int, rng *rand.Rand, emit func(PacketSpec))
}

// Config assembles a simulation.
type Config struct {
	Topology topology.Topology
	Routing  RoutingAlgorithm
	Scheme   Scheme     // nil: no deadlock handling beyond the routing itself
	Traffic  TrafficGen // nil: no open-loop traffic (tests drive manually)

	VNets       int // virtual networks (message classes); default 1
	VCsPerVNet  int // VCs per vnet per port; default 1
	VCDepth     int // flits per VC; default 5
	MaxPktLen   int // largest packet the traffic emits; default 5
	RouterDelay int // per-hop router pipeline cycles; default 1 (1-cycle router)

	Seed       int64
	StatsStart int64 // cycle measurement begins (warmup length)
}

func (c *Config) setDefaults() error {
	if c.Topology == nil {
		return fmt.Errorf("sim: config needs a topology")
	}
	if c.Routing == nil {
		return fmt.Errorf("sim: config needs a routing algorithm")
	}
	if c.VNets == 0 {
		c.VNets = 1
	}
	if c.VCsPerVNet == 0 {
		c.VCsPerVNet = 1
	}
	if c.VCDepth == 0 {
		c.VCDepth = 5
	}
	if c.MaxPktLen == 0 {
		c.MaxPktLen = 5
	}
	if c.RouterDelay == 0 {
		c.RouterDelay = 1
	}
	if c.VCsPerVNet > 32 {
		return fmt.Errorf("sim: at most 32 VCs per vnet, got %d", c.VCsPerVNet)
	}
	if c.VCDepth < c.MaxPktLen {
		return fmt.Errorf("sim: VCDepth %d < MaxPktLen %d breaks virtual cut-through (and the spin space argument)", c.VCDepth, c.MaxPktLen)
	}
	return nil
}

// Network is a running simulation instance.
type Network struct {
	cfg     Config
	routers []*Router
	links   []*link
	nics    []*NIC
	rng     *rand.Rand
	now     int64
	pktID   uint64
	stats   Stats

	inNetwork     int // packets injected (head) but not fully ejected
	queuedPackets int // packets waiting in NIC source queues (incremental)

	flitBuf []flitTransit
	smBuf   []smTransit

	// Hot-path scratch and free lists.
	activeRouters []*Router // routers stepped this cycle (ascending id)
	linkActive    []uint64  // bitset of links with traffic in flight
	pktPool       []*Packet // recycled traffic-generated packets
	smPool        []*SM     // recycled special messages
	injectTerm    int       // terminal the stored traffic closure injects at
	injectFn      func(PacketSpec)

	// ejectHook, when set, observes every ejected packet (tests, traces).
	ejectHook func(*Packet)

	// checker, when attached, audits the network's invariants every
	// cycle (see checker.go).
	checker *InvariantChecker

	// tele, when attached, is the observability layer (see telemetry.go).
	// Every hot-path hook is a nil-check on it.
	tele *Telemetry
}

// NewNetwork builds a network from cfg, attaching the scheme's agents.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	topo := cfg.Topology
	n.routers = make([]*Router, topo.NumRouters())
	for i := range n.routers {
		n.routers[i] = newRouter(n, i)
	}
	for i, tl := range topo.Links() {
		l := &link{topo: tl, index: i, dst: n.routers[tl.Dst]}
		n.links = append(n.links, l)
		n.routers[tl.Src].outLink[tl.SrcPort] = l
	}
	n.nics = make([]*NIC, topo.NumTerminals())
	for t := range n.nics {
		r := n.routers[topo.TerminalRouter(t)]
		n.nics[t] = &NIC{term: t, router: r, port: topo.TerminalPort(t)}
	}
	for _, l := range n.links {
		l.global = n.isGlobalHop(l)
	}
	n.linkActive = make([]uint64, (len(n.links)+63)/64)
	n.activeRouters = make([]*Router, 0, len(n.routers))
	// One stored closure serves every terminal's traffic generation; the
	// per-cycle loop in Step repoints injectTerm instead of allocating a
	// fresh closure per terminal per cycle.
	n.injectFn = func(spec PacketSpec) { n.inject(n.injectTerm, spec, true) }
	if cfg.Scheme != nil {
		cfg.Scheme.Attach(n)
	}
	return n, nil
}

// Config returns the simulation configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.cfg.Topology }

// Router returns router id.
func (n *Network) Router(id int) *Router { return n.routers[id] }

// NumRouters reports the router count.
func (n *Network) NumRouters() int { return len(n.routers) }

// NIC returns terminal t's interface.
func (n *Network) NIC(t int) *NIC { return n.nics[t] }

// Now reports the current cycle.
func (n *Network) Now() int64 { return n.now }

// Stats returns the accumulated statistics.
func (n *Network) Stats() *Stats { return &n.stats }

// RNG returns the simulation's random source.
func (n *Network) RNG() *rand.Rand { return n.rng }

// InFlight reports packets currently inside the network (injection started,
// ejection not finished).
func (n *Network) InFlight() int { return n.inNetwork }

// QueuedPackets reports packets waiting in NIC source queues. The count
// is maintained incrementally at push/pop; RecountQueuedPackets is the
// brute-force cross-check.
func (n *Network) QueuedPackets() int { return n.queuedPackets }

// RecountQueuedPackets recomputes QueuedPackets by scanning every NIC —
// the original O(terminals) accessor, kept for auditing the incremental
// counter.
func (n *Network) RecountQueuedPackets() int {
	total := 0
	for _, nic := range n.nics {
		total += nic.QueueLen()
	}
	return total
}

// SetAgent installs a deadlock agent on a router (called by schemes).
func (n *Network) SetAgent(router int, a Agent) {
	r := n.routers[router]
	r.agent = a
	r.qagent, _ = a.(Quiescer)
}

// SetEjectHook registers an observer for every ejected packet.
func (n *Network) SetEjectHook(f func(*Packet)) { n.ejectHook = f }

func (n *Network) measuring() bool { return n.now >= n.cfg.StatsStart }

// InjectPacket creates a packet and enqueues it at src's NIC, running the
// routing algorithm's source hook. Tests and traffic replay use it
// directly; open-loop traffic goes through Config.Traffic.
func (n *Network) InjectPacket(src int, spec PacketSpec) *Packet {
	// Packets injected through the public API are never pooled: callers
	// routinely retain the pointer past ejection (tests, trace capture).
	return n.inject(src, spec, false)
}

// inject creates (or recycles) a packet and enqueues it at src's NIC.
// Pooled packets come from — and on ejection return to — the free list;
// only the engine's own traffic-generation path uses pooling, and only
// while no eject observer could retain the pointer.
func (n *Network) inject(src int, spec PacketSpec, pooled bool) *Packet {
	if spec.Length <= 0 || spec.Length > n.cfg.MaxPktLen {
		panic(fmt.Sprintf("sim: packet length %d outside (0,%d]", spec.Length, n.cfg.MaxPktLen))
	}
	if spec.VNet < 0 || spec.VNet >= n.cfg.VNets {
		panic(fmt.Sprintf("sim: vnet %d out of range", spec.VNet))
	}
	n.pktID++
	var p *Packet
	if pooled && len(n.pktPool) > 0 {
		k := len(n.pktPool) - 1
		p = n.pktPool[k]
		n.pktPool[k] = nil
		n.pktPool = n.pktPool[:k]
	} else {
		p = new(Packet)
	}
	*p = Packet{
		ID:           n.pktID,
		Src:          src,
		Dst:          spec.Dst,
		SrcRouter:    n.cfg.Topology.TerminalRouter(src),
		DstRouter:    n.cfg.Topology.TerminalRouter(spec.Dst),
		VNet:         spec.VNet,
		Length:       spec.Length,
		GenCycle:     n.now,
		Intermediate: -1,
		pooled:       pooled,
	}
	p.Checksum = checksumFor(p.ID, p.Src, p.Dst, p.Length)
	n.cfg.Routing.AtSource(n.routers[p.SrcRouter], p)
	n.nics[src].push(p)
	n.queuedPackets++
	if n.tele != nil && n.tele.probeOn() {
		n.tele.emit(Event{Cycle: n.now, Kind: EvPacketQueued, Router: p.SrcRouter,
			Packet: p.ID, Src: p.Src, Dst: p.Dst, VNet: p.VNet})
	}
	return p
}

// allocSM pulls a recycled special message from the free list (keeping
// its Path capacity) or allocates a fresh one.
func (n *Network) allocSM() *SM {
	if k := len(n.smPool); k > 0 {
		sm := n.smPool[k-1]
		n.smPool[k-1] = nil
		n.smPool = n.smPool[:k-1]
		path := sm.Path[:0]
		*sm = SM{Path: path, pooled: true}
		return sm
	}
	return &SM{pooled: true}
}

// freeSM returns a pool-owned SM to the free list. SMs built directly by
// tests (composite literals) are left to the garbage collector.
func (n *Network) freeSM(sm *SM) {
	if sm == nil || !sm.pooled {
		return
	}
	n.smPool = append(n.smPool, sm)
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	// 1. Deliver link arrivals.
	n.deliverArrivals()
	// 2. Traffic generation and NIC injection.
	if n.cfg.Traffic != nil {
		for t := range n.nics {
			n.injectTerm = t
			n.cfg.Traffic.Generate(n.now, t, n.rng, n.injectFn)
		}
	}
	for t := range n.nics {
		n.nics[t].injectStep(n)
	}
	// Active-set worklist: the remaining stages only touch routers with
	// buffered flits, pending SMs, a spin in flight, or an awake agent.
	// Everything that could wake a router this cycle has happened by now
	// (arrivals, SM delivery, injection), and stale per-router scratch is
	// cleared lazily by each stage when the router next runs.
	active := n.activeRouters[:0]
	for _, r := range n.routers {
		if r.active() {
			active = append(active, r)
		}
	}
	n.activeRouters = active
	// 3. Route computation for freshly arrived heads.
	for _, r := range active {
		r.routeStage()
	}
	// 4. Deadlock agents.
	for _, r := range active {
		if r.agent != nil {
			r.agent.Tick()
		}
	}
	// 5. Spin claims, then SM arbitration onto links.
	for _, r := range active {
		r.claimSpinPorts()
	}
	for _, r := range active {
		r.resolveSMs()
	}
	// 6. Switch allocation and flit transmission.
	for _, r := range active {
		r.clearUsed()
	}
	for _, r := range active {
		r.spinStage()
	}
	for _, r := range active {
		r.saStage()
	}
	if n.checker != nil {
		n.checker.endOfStep()
	}
	if n.measuring() {
		n.stats.MeasuredCycles++
	}
	n.stats.Cycles++
	n.now++
	if n.tele != nil {
		n.tele.onCycle()
	}
}

// deliverArrivals moves flits and SMs that complete link traversal this
// cycle into input VCs and agent inboxes. Only links with traffic in
// flight are visited (the active-link bitset), in ascending link order —
// the same order the full scan used.
func (n *Network) deliverArrivals() {
	for w, word := range n.linkActive {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			l := n.links[w*64+b]
			n.deliverLink(l)
			if len(l.flits) == 0 && len(l.sms) == 0 {
				n.linkActive[w] &^= 1 << uint(b)
			}
		}
	}
}

func (n *Network) deliverLink(l *link) {
	n.flitBuf = n.flitBuf[:0]
	n.smBuf = n.smBuf[:0]
	n.flitBuf, n.smBuf = l.takeArrivals(n.now, n.flitBuf, n.smBuf)
	for _, t := range n.flitBuf {
		t.dst.inFlight--
		t.dst.enqueue(t.flit, n.now)
		if n.measuring() {
			n.stats.BufferWrites++
		}
		if t.flit.IsHead() {
			pkt := t.flit.Pkt
			pkt.Hops++
			// Misroute accounting: a hop that fails to reduce the
			// distance to the phase-local destination.
			cur, prev := l.dst.ID, l.topo.Src
			topo := n.cfg.Topology
			if topo.Distance(cur, pkt.RouteDst()) >= topo.Distance(prev, pkt.RouteDst()) {
				pkt.Misroutes++
			}
			if l.global {
				pkt.GlobalHops++
			}
		}
	}
	if len(n.smBuf) > 1 {
		sort.SliceStable(n.smBuf, func(i, j int) bool {
			return n.smBuf[i].sm.Kind.ClassPriority() > n.smBuf[j].sm.Kind.ClassPriority()
		})
	}
	for _, t := range n.smBuf {
		if n.tele != nil && n.tele.probeOn() {
			n.tele.emit(Event{Cycle: n.now, Kind: EvSMDeliver, Router: l.dst.ID,
				Port: l.topo.DstPort, Src: t.sm.Sender, VNet: int(t.sm.VNet),
				SM: t.sm.Kind.String(), Tag: t.sm.Tag, Arg: t.sm.SpinCycle})
		}
		if a := l.dst.agent; a != nil {
			a.HandleSM(t.sm, l.topo.DstPort)
		}
		// Delivered SMs are dead: agents copy (CloneSM) anything they
		// forward and never retain the original.
		n.freeSM(t.sm)
	}
}

// markLinkActive records that link i has traffic in flight, so
// deliverArrivals will visit it.
func (n *Network) markLinkActive(i int) {
	n.linkActive[i>>6] |= 1 << uint(i&63)
}

// isGlobalHop reports whether a link is a dragonfly global channel.
func (n *Network) isGlobalHop(l *link) bool {
	d, ok := n.cfg.Topology.(*topology.Dragonfly)
	if !ok {
		return false
	}
	return d.Group(l.topo.Src) != d.Group(l.topo.Dst)
}

// ejected accounts a flit leaving the network; on tails it finalises the
// packet and verifies end-to-end integrity.
func (n *Network) ejected(f Flit) {
	n.stats.EjectedFlits++
	if n.measuring() {
		n.stats.EjectedFlitsMeas++
	}
	if n.tele != nil && n.tele.probeOn() {
		n.tele.emit(Event{Cycle: n.now, Kind: EvFlitEject, Router: f.Pkt.DstRouter,
			Packet: f.Pkt.ID, VNet: f.Pkt.VNet})
	}
	if !f.IsTail() {
		return
	}
	p := f.Pkt
	if p.Checksum != checksumFor(p.ID, p.Src, p.Dst, p.Length) {
		panic(fmt.Sprintf("sim: payload corruption in %v", p))
	}
	if dst := n.cfg.Topology.TerminalRouter(p.Dst); dst != p.DstRouter {
		panic(fmt.Sprintf("sim: %v ejected at wrong router", p))
	}
	p.EjectCycle = n.now
	n.stats.Ejected++
	n.inNetwork--
	if p.GenCycle >= n.cfg.StatsStart {
		n.stats.EjectedMeasured++
		lat := p.EjectCycle - p.GenCycle
		n.stats.LatencySum += lat
		n.stats.NetLatencySum += p.EjectCycle - p.InjectCycle
		n.stats.HopSum += int64(p.Hops)
		n.stats.MisrouteSum += int64(p.Misroutes)
		if lat > n.stats.MaxLatency {
			n.stats.MaxLatency = lat
		}
	}
	if n.tele != nil {
		n.tele.onEject(p, p.EjectCycle-p.GenCycle, p.GenCycle >= n.cfg.StatsStart)
	}
	if n.ejectHook != nil {
		n.ejectHook(p)
	}
	if n.checker != nil {
		n.checker.onEject(p)
	}
	// Recycle traffic-generated packets, but only while nothing outside
	// the engine could have retained the pointer: eject observers (hooks,
	// the invariant checker) may legitimately hold ejected packets.
	if p.pooled && n.ejectHook == nil && n.checker == nil {
		n.pktPool = append(n.pktPool, p)
	}
}

// Run advances the simulation by cycles steps.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain disables traffic and steps until the network is empty (all queued
// and in-flight packets ejected) or maxCycles elapse. It reports whether
// the network fully drained — the strongest liveness check available.
func (n *Network) Drain(maxCycles int64) bool {
	saved := n.cfg.Traffic
	n.cfg.Traffic = nil
	defer func() { n.cfg.Traffic = saved }()
	for i := int64(0); i < maxCycles; i++ {
		if n.inNetwork == 0 && n.QueuedPackets() == 0 {
			return true
		}
		n.Step()
	}
	return n.inNetwork == 0 && n.QueuedPackets() == 0
}

// LinkUtilisation aggregates the per-link busy accounting over the
// measurement window.
func (n *Network) LinkUtilisation() LinkUtilisation {
	var u LinkUtilisation
	if n.stats.MeasuredCycles == 0 || len(n.links) == 0 {
		return u
	}
	total := float64(n.stats.MeasuredCycles) * float64(len(n.links))
	var flit float64
	var sm [4]float64
	for _, l := range n.links {
		flit += float64(l.flitCycles)
		for k := 0; k < int(numSMKinds); k++ {
			sm[k] += float64(l.smCycles[k])
		}
	}
	u.Flit = flit / total
	for k := range sm {
		u.SM[k] = sm[k] / total
		u.SMAll += u.SM[k]
	}
	u.Idle = 1 - u.Flit - u.SMAll
	return u
}

// SetTraffic replaces the open-loop traffic generator (nil disables
// generation; queued and in-flight packets are unaffected).
func (n *Network) SetTraffic(g TrafficGen) { n.cfg.Traffic = g }
