package sim

import "repro/internal/topology"

// flitTransit is a flit in flight on a link.
type flitTransit struct {
	arrive int64
	flit   Flit
	dst    *VC
}

// smTransit is a special message in flight on a link.
type smTransit struct {
	arrive int64
	sm     *SM
}

// link is the runtime state of one directed channel. Links are pipelined:
// one flit (or one SM) may enter per cycle and each traversal takes
// Latency cycles.
type link struct {
	topo   topology.Link
	index  int
	dst    *Router
	global bool // dragonfly global channel (precomputed at build)

	flits []flitTransit
	sms   []smTransit

	// Utilisation accounting (measured window only).
	flitCycles int64
	smCycles   [numSMKinds]int64
}

// sendFlit launches a flit: it occupies the wire for Latency cycles and
// then the downstream router pipeline for RouterDelay cycles before it
// becomes serviceable in dst.
func (l *link) sendFlit(now int64, f Flit, dst *VC) {
	delay := int64(l.topo.Latency + l.dst.net.cfg.RouterDelay)
	l.flits = append(l.flits, flitTransit{arrive: now + delay, flit: f, dst: dst})
}

func (l *link) sendSM(now int64, sm *SM) {
	l.sms = append(l.sms, smTransit{arrive: now + int64(l.topo.Latency), sm: sm})
}

// takeArrivals moves flits and SMs whose arrival cycle is now into the
// supplied buffers, compacting the in-flight lists in place.
func (l *link) takeArrivals(now int64, flits []flitTransit, sms []smTransit) ([]flitTransit, []smTransit) {
	if len(l.flits) > 0 {
		keep := l.flits[:0]
		for _, t := range l.flits {
			if t.arrive <= now {
				flits = append(flits, t)
			} else {
				keep = append(keep, t)
			}
		}
		l.flits = keep
	}
	if len(l.sms) > 0 {
		keep := l.sms[:0]
		for _, t := range l.sms {
			if t.arrive <= now {
				sms = append(sms, t)
			} else {
				keep = append(keep, t)
			}
		}
		l.sms = keep
	}
	return flits, sms
}
