// Package telemetry holds the observer-side half of the simulator's
// observability layer: an event recorder (a bounded ring buffer
// implementing sim.Probe) and a Chrome/Perfetto trace-event exporter.
// The emitting half — the probe hooks, window sampler, and latency
// histogram — lives in internal/sim so it can sit inside the hot path.
package telemetry

import "repro/internal/sim"

// KindMask selects which event kinds a Recorder keeps.
type KindMask uint64

// Has reports whether kind k is selected.
func (m KindMask) Has(k sim.EventKind) bool { return m&(1<<uint(k)) != 0 }

// With returns the mask with kind k added.
func (m KindMask) With(k sim.EventKind) KindMask { return m | 1<<uint(k) }

// Without returns the mask with kind k removed.
func (m KindMask) Without(k sim.EventKind) KindMask { return m &^ (1 << uint(k)) }

// AllEvents selects every event kind.
const AllEvents KindMask = ^KindMask(0)

// DefaultMask keeps lifecycle and SPIN events but drops the per-flit
// kinds, which dominate event volume at load (one event per flit per
// endpoint) while adding little over the packet-level events.
var DefaultMask = AllEvents.
	Without(sim.EvFlitInject).
	Without(sim.EvFlitEject)

// Recorder is a bounded ring buffer of simulator events. Attach it via
// sim.TelemetryOptions.Probe; when full it overwrites the oldest entry,
// so after a long run it holds the most recent Cap() events — exactly
// the "tail before the failure" that harness artifacts embed.
type Recorder struct {
	mask  KindMask
	ring  []sim.Event
	next  int   // ring slot the next event lands in
	total int64 // events kept (before capping), for Dropped accounting
}

// NewRecorder returns a recorder keeping the last cap events matching
// DefaultMask. Use SetMask to widen or narrow the selection.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 256
	}
	return &Recorder{mask: DefaultMask, ring: make([]sim.Event, 0, cap)}
}

// SetMask replaces the kind filter (affects future events only).
func (r *Recorder) SetMask(m KindMask) { r.mask = m }

// Event implements sim.Probe.
func (r *Recorder) Event(e sim.Event) {
	if !r.mask.Has(e.Kind) {
		return
	}
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
}

// Total reports how many events matched the mask (kept + overwritten).
func (r *Recorder) Total() int64 { return r.total }

// Len reports how many events are currently buffered.
func (r *Recorder) Len() int { return len(r.ring) }

// Events returns the buffered events oldest-first. The slice is a copy;
// the recorder may keep recording.
func (r *Recorder) Events() []sim.Event {
	out := make([]sim.Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}
