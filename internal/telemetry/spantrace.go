package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/otrace"
)

// Span-tree export: the serving layer's request spans rendered as the
// same Chrome trace-event JSON WriteChromeTrace emits for simulator
// events, so a cross-node request timeline loads in one Perfetto
// window. Each node becomes one process (pid, named by a process_name
// meta event); spans from one node share tid 1 and nest by time
// containment, which is exactly how "X" complete events stack.

// spanPidBase keeps span processes clear of the simulator trace's fixed
// pids (1 = packets, 2 = routers), so a span trace and a simulator
// trace can even be concatenated into one document.
const spanPidBase = 10

// WriteSpanTrace renders a set of otrace spans — typically one merged
// trace gathered from every fleet node — as Chrome trace-event JSON.
// Wall-clock nanoseconds become microsecond timestamps on a shared
// axis, so cross-node spans line up as well as the nodes' clocks do.
func WriteSpanTrace(w io.Writer, spans []otrace.SpanData) error {
	sorted := append([]otrace.SpanData(nil), spans...)
	otrace.SortSpans(sorted)

	// One pid per node, in first-seen (start-time) order.
	pids := map[string]int{}
	var nodes []string
	for _, s := range sorted {
		node := s.Node
		if node == "" {
			node = "unknown"
		}
		if _, ok := pids[node]; !ok {
			pids[node] = spanPidBase + len(nodes)
			nodes = append(nodes, node)
		}
	}
	sort.Strings(nodes)

	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(sorted)+len(nodes))}
	for _, node := range nodes {
		doc.TraceEvents = append(doc.TraceEvents, metaEvent(pids[node], "process_name", "node "+node))
	}
	for _, s := range sorted {
		node := s.Node
		if node == "" {
			node = "unknown"
		}
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.Parent != "" {
			args["parent_span_id"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		dur := s.Dur / 1000
		if dur < 1 {
			dur = 1 // sub-microsecond spans still need visible extent
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   s.Start / 1000,
			Dur:  dur,
			Pid:  pids[node],
			Tid:  1,
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(doc)
}
