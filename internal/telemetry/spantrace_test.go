package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/otrace"
)

func TestWriteSpanTraceMergesNodes(t *testing.T) {
	a := otrace.NewTracer("a", 0)
	b := otrace.NewTracer("b", 0)
	root := a.StartRequest("request", "")
	proxy := root.StartChild("proxy:b")
	remote := b.StartRequest("request", proxy.Traceparent())
	remote.StartChild("compute").End()
	remote.End()
	proxy.End()
	root.End()

	merged := append(a.Trace(root.TraceID()), b.Trace(root.TraceID())...)
	if len(merged) != 4 {
		t.Fatalf("merged %d spans, want 4", len(merged))
	}
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, merged); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span trace is not valid JSON: %v", err)
	}

	procNames := map[string]bool{}
	pidsByName := map[string]int{}
	spanPids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			name, _ := e.Args["name"].(string)
			procNames[name] = true
			pidsByName[name] = e.Pid
		case "X":
			spanPids[e.Pid] = true
			if e.Dur < 1 {
				t.Errorf("span %s has zero-extent dur %d", e.Name, e.Dur)
			}
			if e.Args["trace_id"] != root.TraceID() {
				t.Errorf("span %s trace_id %v, want %s", e.Name, e.Args["trace_id"], root.TraceID())
			}
		}
	}
	if !procNames["node a"] || !procNames["node b"] {
		t.Fatalf("process names %v, want node a and node b", procNames)
	}
	if len(spanPids) != 2 {
		t.Fatalf("spans landed on %d pids, want 2 (one per node)", len(spanPids))
	}
	if pidsByName["node a"] == pidsByName["node b"] {
		t.Fatal("nodes a and b share a pid")
	}
}

func TestWriteSpanTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty span trace is not valid JSON")
	}
}
