package telemetry

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// Chrome trace-event export: one JSON document loadable in Perfetto or
// chrome://tracing. Simulation cycles map to microseconds (1 cycle =
// 1 µs). Packet lifecycles render as async spans (queued → ejected, one
// row per source terminal under the "packets" process); SM, VC and
// oracle events render as instant markers on the router rows of the
// "routers" process; time-series windows render as counter tracks.

const (
	tracePidPackets = 1
	tracePidRouters = 2
)

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"` // "X" complete events only
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceDoc is the top-level trace-event JSON object form.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteChromeTrace renders events (and, when non-nil, the windowed
// time-series as counter tracks) as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []sim.Event, ts *sim.TimeSeries) error {
	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(events)+8)}
	doc.TraceEvents = append(doc.TraceEvents,
		metaEvent(tracePidPackets, "process_name", "packets (tid = source terminal)"),
		metaEvent(tracePidRouters, "process_name", "routers (tid = router)"),
	)
	for _, e := range events {
		doc.TraceEvents = append(doc.TraceEvents, convertEvent(e))
	}
	if ts != nil {
		for _, s := range ts.Samples {
			end := s.Start + s.Cycles
			doc.TraceEvents = append(doc.TraceEvents,
				counterEvent("queued_packets", end, float64(s.QueuedPackets)),
				counterEvent("in_flight_packets", end, float64(s.InFlight)),
				counterEvent("link_busy_fraction", end, s.LinkBusy),
				counterEvent("spins_per_window", end, float64(s.Spins)),
			)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func metaEvent(pid int, name, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Args: map[string]any{"name": value}}
}

func counterEvent(name string, ts int64, v float64) traceEvent {
	return traceEvent{Name: name, Cat: "timeseries", Ph: "C", Ts: ts,
		Pid: tracePidPackets, Args: map[string]any{"value": v}}
}

// convertEvent maps one simulator event onto a trace-event entry.
func convertEvent(e sim.Event) traceEvent {
	switch e.Kind {
	case sim.EvPacketQueued:
		return traceEvent{Name: "pkt", Cat: "packet", Ph: "b", Ts: e.Cycle,
			Pid: tracePidPackets, Tid: e.Src, ID: e.Packet,
			Args: map[string]any{"src": e.Src, "dst": e.Dst, "vnet": e.VNet}}
	case sim.EvPacketInject:
		return traceEvent{Name: "pkt", Cat: "packet", Ph: "n", Ts: e.Cycle,
			Pid: tracePidPackets, Tid: e.Src, ID: e.Packet,
			Args: map[string]any{"stage": "inject", "router": e.Router}}
	case sim.EvPacketEject:
		return traceEvent{Name: "pkt", Cat: "packet", Ph: "e", Ts: e.Cycle,
			Pid: tracePidPackets, Tid: e.Src, ID: e.Packet,
			Args: map[string]any{"latency": e.Arg, "router": e.Router}}
	case sim.EvSMSend, sim.EvSMDrop, sim.EvSMDeliver:
		return traceEvent{Name: e.Kind.String() + ":" + e.SM, Cat: "sm", Ph: "i",
			Ts: e.Cycle, Pid: tracePidRouters, Tid: e.Router, Scope: "t",
			Args: map[string]any{"port": e.Port, "sender": e.Src, "tag": e.Tag, "spin_cycle": e.Arg}}
	case sim.EvVCFreeze, sim.EvVCUnfreeze, sim.EvSpinStart, sim.EvSpinEnd:
		return traceEvent{Name: e.Kind.String(), Cat: "vc", Ph: "i",
			Ts: e.Cycle, Pid: tracePidRouters, Tid: e.Router, Scope: "t",
			Args: map[string]any{"port": e.Port, "vc": e.VC}}
	case sim.EvOracleDeadlock:
		return traceEvent{Name: "oracle_deadlock", Cat: "oracle", Ph: "i",
			Ts: e.Cycle, Pid: tracePidRouters, Tid: e.Router, Scope: "t",
			Args: map[string]any{"deadlocked_vcs": e.Arg}}
	default:
		// Flit-level (or future) kinds: generic instant marker so nothing
		// recorded is silently dropped from the export.
		return traceEvent{Name: e.Kind.String(), Cat: "flit", Ph: "i",
			Ts: e.Cycle, Pid: tracePidRouters, Tid: e.Router, Scope: "t",
			Args: map[string]any{"packet": e.Packet, "vnet": e.VNet}}
	}
}
