package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	spin "repro"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// saturatedSPIN builds the acceptance-criteria configuration: mesh-8x8
// with fully adaptive FAvORS routing, a single VC, and the SPIN scheme,
// driven past saturation so deadlocks form and the probe→move recovery
// protocol actually runs.
func saturatedSPIN(t *testing.T) *spin.Simulation {
	t.Helper()
	s, err := spin.New(spin.Config{
		Topology:   "mesh:8x8",
		Routing:    "favors_min",
		Scheme:     "spin",
		Traffic:    "uniform_random",
		Rate:       0.40,
		VCsPerVNet: 1,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRecorderCapturesSPINSequence runs the saturated config and asserts
// the recorder saw at least one complete probe→move SPIN sequence — a
// probe send followed (later or same cycle) by a move send — plus an
// actual spin executing (spin_start) and the recovery completing
// (spin_end).
func TestRecorderCapturesSPINSequence(t *testing.T) {
	s := saturatedSPIN(t)
	rec := telemetry.NewRecorder(1 << 16)
	s.Network().AttachTelemetry(sim.TelemetryOptions{Probe: rec, Window: 100, Hist: true})
	s.Run(6000)

	var probeCycle, moveCycle int64 = -1, -1
	var spinStarts, spinEnds int
	for _, e := range rec.Events() {
		switch {
		case e.Kind == sim.EvSMSend && e.SM == "probe" && probeCycle < 0:
			probeCycle = e.Cycle
		case e.Kind == sim.EvSMSend && e.SM == "move" && probeCycle >= 0 && moveCycle < 0:
			moveCycle = e.Cycle
		case e.Kind == sim.EvSpinStart:
			spinStarts++
		case e.Kind == sim.EvSpinEnd:
			spinEnds++
		}
	}
	if probeCycle < 0 || moveCycle < 0 {
		t.Fatalf("no complete probe→move sequence recorded (probe at %d, move at %d; %d events)",
			probeCycle, moveCycle, rec.Len())
	}
	if moveCycle < probeCycle {
		t.Fatalf("move (cycle %d) recorded before first probe (cycle %d)", moveCycle, probeCycle)
	}
	if spinStarts == 0 || spinEnds == 0 {
		t.Errorf("expected spin executions, got %d starts / %d ends", spinStarts, spinEnds)
	}
	if got, want := s.Spins(), int64(0); got == want {
		t.Errorf("saturated SPIN run performed no spins — config no longer deadlocks")
	}
}

// TestChromeTraceSchema validates the exported trace-event JSON: the
// document shape, required per-event fields, legal phases, and async
// begin/end pairing (every packet "e" has an earlier "b" with the same
// id, and the pair shares cat and name as the matching rules require).
func TestChromeTraceSchema(t *testing.T) {
	s := saturatedSPIN(t)
	rec := telemetry.NewRecorder(1 << 16)
	tele := s.Network().AttachTelemetry(sim.TelemetryOptions{Probe: rec, Window: 100})
	s.Run(3000)
	tele.Flush()

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, rec.Events(), tele.TimeSeries()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace is not a traceEvents document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents array")
	}

	legalPh := map[string]bool{"b": true, "e": true, "n": true, "i": true, "C": true, "M": true}
	type evt struct {
		Ph   string  `json:"ph"`
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ts   *int64  `json:"ts"`
		Pid  *int    `json:"pid"`
		Tid  *int    `json:"tid"`
		ID   *uint64 `json:"id"`
	}
	began := map[uint64]int{} // packet id -> index of its "b"
	counts := map[string]int{}
	for i, raw := range doc.TraceEvents {
		b, _ := json.Marshal(raw)
		var e evt
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event %d missing name/ph: %s", i, b)
		}
		if !legalPh[e.Ph] {
			t.Fatalf("event %d has phase %q outside the exporter's vocabulary", i, e.Ph)
		}
		if e.Ph != "M" && (e.Ts == nil || e.Pid == nil) {
			t.Fatalf("event %d missing ts/pid: %s", i, b)
		}
		counts[e.Ph]++
		switch e.Ph {
		case "b":
			if e.ID == nil {
				t.Fatalf("async begin %d without id", i)
			}
			began[*e.ID] = i
		case "e":
			if e.ID == nil {
				t.Fatalf("async end %d without id", i)
			}
			if _, ok := began[*e.ID]; !ok {
				t.Fatalf("async end %d (id %d) has no earlier begin", i, *e.ID)
			}
		}
	}
	for _, ph := range []string{"b", "e", "i", "C", "M"} {
		if counts[ph] == 0 {
			t.Errorf("trace contains no %q events", ph)
		}
	}
}

// TestRecorderRing verifies mask filtering, FIFO order, and oldest-first
// eviction once the ring wraps.
func TestRecorderRing(t *testing.T) {
	rec := telemetry.NewRecorder(4)
	rec.SetMask(telemetry.KindMask(0).With(sim.EvSMSend))
	for i := 0; i < 7; i++ {
		rec.Event(sim.Event{Cycle: int64(i), Kind: sim.EvSMSend})
		rec.Event(sim.Event{Cycle: int64(i), Kind: sim.EvFlitInject}) // masked out
	}
	if rec.Total() != 7 {
		t.Fatalf("Total = %d, want 7", rec.Total())
	}
	got := rec.Events()
	if len(got) != 4 {
		t.Fatalf("Len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(3 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (oldest-first after wrap)", i, e.Cycle, want)
		}
	}
}

// TestEventKindJSONRoundTrip locks the name vocabulary artifacts depend
// on: marshal → unmarshal is identity, and unknown names are rejected.
func TestEventKindJSONRoundTrip(t *testing.T) {
	kinds := []sim.EventKind{
		sim.EvPacketQueued, sim.EvPacketInject, sim.EvPacketEject,
		sim.EvFlitInject, sim.EvFlitEject,
		sim.EvSMSend, sim.EvSMDrop, sim.EvSMDeliver,
		sim.EvVCFreeze, sim.EvVCUnfreeze, sim.EvSpinStart, sim.EvSpinEnd,
		sim.EvOracleDeadlock,
	}
	for _, k := range kinds {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back sim.EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if back != k {
			t.Errorf("round trip %s -> %s", k, back)
		}
	}
	var k sim.EventKind
	if err := json.Unmarshal([]byte(`"no_such_event"`), &k); err == nil {
		t.Error("unknown kind name accepted")
	}
}
