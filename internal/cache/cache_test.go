package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOf(t *testing.T) {
	a := KeyOf("v1", []byte(`{"x":1}`))
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
	if a != KeyOf("v1", []byte(`{"x":1}`)) {
		t.Fatal("KeyOf is not deterministic")
	}
	if a == KeyOf("v2", []byte(`{"x":1}`)) {
		t.Fatal("version not part of the key")
	}
	if a == KeyOf("v1", []byte(`{"x":2}`)) {
		t.Fatal("body not part of the key")
	}
	// The separator keeps (version, body) unambiguous.
	if KeyOf("ab", []byte("c")) == KeyOf("a", []byte("bc")) {
		t.Fatal("version/body boundary ambiguous")
	}
}

func TestMemoryTier(t *testing.T) {
	s, err := Open("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k1"); !ok || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	// LRU eviction: touch k1, insert k2 and k3; k2 (coldest) must go.
	s.Put("k2", []byte("v2"))
	s.Get("k1")
	s.Put("k3", []byte("v3"))
	if _, ok := s.Get("k2"); ok {
		t.Fatal("k2 survived eviction in a memory-only store")
	}
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("recently-used k1 was evicted")
	}
	if st := s.Snapshot(); st.MemEntries != 2 {
		t.Fatalf("MemEntries = %d, want 2", st.MemEntries)
	}
}

func TestDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Values are JSON on the wire and on disk: the disk-read path
	// validates entries and would evict anything else as corrupt.
	s.Put("aa11", []byte(`"first"`))
	s.Put("bb22", []byte(`"second"`)) // evicts aa11 from memory, not disk
	v, ok := s.Get("aa11")
	if !ok || string(v) != `"first"` {
		t.Fatalf("disk get = %q, %v", v, ok)
	}
	if st := s.Snapshot(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
	// A second process over the same dir sees the entries.
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("bb22"); !ok || string(v) != `"second"` {
		t.Fatalf("fresh store over same dir: get = %q, %v", v, ok)
	}
	// No stray temp files survive.
	m, _ := filepath.Glob(filepath.Join(dir, "put-*"))
	if len(m) != 0 {
		t.Fatalf("leftover temp files: %v", m)
	}
}

func TestDiskIgnoresTornTemp(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 4)
	os.WriteFile(filepath.Join(dir, "put-123"), []byte("torn"), 0o644)
	if _, ok := s.Get("put-123"); ok {
		t.Fatal("temp-named file served as an entry")
	}
}

// TestDoSingleflight is the acceptance-criterion property: N concurrent
// identical requests run the computation exactly once, with one Miss and
// N-1 Shared outcomes.
func TestDoSingleflight(t *testing.T) {
	s, _ := Open("", 0)
	var computes int32
	gate := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		atomic.AddInt32(&computes, 1)
		<-gate
		return []byte("result"), nil
	}
	const n = 8
	outcomes := make([]Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, o, err := s.Do(context.Background(), "k", compute)
			if err != nil || string(v) != "result" {
				t.Errorf("Do = %q, %v", v, err)
			}
			outcomes[i] = o
		}()
	}
	// Let every goroutine join the flight before releasing it.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 || atomic.LoadInt32(&computes) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		st := s.Snapshot()
		if st.Misses+st.Shared == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never gathered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := atomic.LoadInt32(&computes); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	miss, shared := 0, 0
	for _, o := range outcomes {
		switch o {
		case Miss:
			miss++
		case Shared:
			shared++
		}
	}
	if miss != 1 || shared != n-1 {
		t.Fatalf("outcomes: %d miss, %d shared; want 1, %d", miss, shared, n-1)
	}
	st := s.Snapshot()
	if st.Misses != 1 || st.Shared != n-1 {
		t.Fatalf("stats: %+v", st)
	}
	// And the follow-up request is a pure hit.
	if _, o, _ := s.Do(context.Background(), "k", compute); o != Hit {
		t.Fatalf("second Do outcome = %v, want Hit", o)
	}
}

// TestDoErrorNotCached checks that failures propagate to every waiter
// and are retried by the next request.
func TestDoErrorNotCached(t *testing.T) {
	s, _ := Open("", 0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, _, err := s.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" || calls != 2 {
		t.Fatalf("retry: v=%q err=%v calls=%d", v, err, calls)
	}
	if st := s.Snapshot(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

// TestDoAbandonCancelsCompute checks the disconnect contract: the
// computation's context dies only when the last waiter leaves.
func TestDoAbandonCancelsCompute(t *testing.T) {
	s, _ := Open("", 0)
	cancelled := make(chan struct{})
	started := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	compute := func(fctx context.Context) ([]byte, error) {
		close(started)
		<-fctx.Done()
		close(cancelled)
		return nil, fctx.Err()
	}
	errc := make(chan error, 2)
	go func() {
		_, _, err := s.Do(ctx1, "k", compute)
		errc <- err
	}()
	<-started
	go func() {
		_, _, err := s.Do(ctx2, "k", func(context.Context) ([]byte, error) {
			t.Error("second compute started despite flight in progress")
			return nil, nil
		})
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Shared == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}
	// First waiter leaves: the flight must keep running for the second.
	cancel1()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter err = %v", err)
	}
	select {
	case <-cancelled:
		t.Fatal("compute cancelled while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}
	// Last waiter leaves: now the computation must be cancelled.
	cancel2()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("second waiter err = %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute never cancelled after all waiters left")
	}
}

// TestDoConcurrentDistinctKeys runs many keys in parallel under the race
// detector.
func TestDoConcurrentDistinctKeys(t *testing.T) {
	s, _ := Open(t.TempDir(), 8)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := KeyOf("v1", []byte{byte(i % 16)})
			v, _, err := s.Do(context.Background(), key, func(context.Context) ([]byte, error) {
				return []byte(fmt.Sprintf("val-%d", i%16)), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if want := fmt.Sprintf("val-%d", i%16); string(v) != want {
				t.Errorf("key %d: got %q, want %q", i, v, want)
			}
		}()
	}
	wg.Wait()
}
