// Package cache is a content-addressed result store for simulation
// serving: a key is the SHA-256 of a canonical request encoding plus a
// result-version string, and the value is the response bytes produced
// for it. Storage is two-tier — a bounded in-memory LRU in front of an
// optional on-disk JSON store — and Do adds singleflight deduplication
// so N concurrent identical requests cost exactly one computation.
//
// Determinism makes this safe: a simulation request's result is a pure
// function of its canonical encoding and the code version, so a cached
// value can be replayed byte-for-byte forever.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// KeyOf derives the content address of a request: SHA-256 over the
// result-version string, a separator that keeps (version, body) pairs
// unambiguous, and the canonical request bytes. Bumping the version
// string invalidates every prior entry, which is exactly what a change
// to simulator semantics requires.
func KeyOf(version string, canonical []byte) string {
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}

// Outcome classifies how Do satisfied a request.
type Outcome int

// Do outcomes.
const (
	// Hit: the value was already cached (memory or disk).
	Hit Outcome = iota
	// Miss: this call led the computation.
	Miss
	// Shared: an identical computation was already in flight; this call
	// waited for its result instead of starting another.
	Shared
)

// String names the outcome for response headers ("hit", "miss",
// "shared").
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// Stats is a snapshot of the store's counters, polled by the metrics
// endpoint.
type Stats struct {
	Hits       int64 // Do calls answered from cache
	DiskHits   int64 // subset of Hits served from disk (memory miss)
	Misses     int64 // Do calls that led a computation
	Shared     int64 // Do calls that piggybacked on an in-flight one
	Errors     int64 // led computations that failed (never cached)
	Corrupt    int64 // on-disk entries evicted for failing validation
	MemEntries int   // current in-memory LRU population
}

// Store is the two-tier content-addressed store. The zero value is not
// usable; construct with Open.
type Store struct {
	dir string // "" = memory-only

	mu      sync.Mutex
	mem     map[string]*list.Element
	order   *list.List // front = most recently used
	maxMem  int
	flights map[string]*flight
	stats   Stats
}

type memEntry struct {
	key string
	val []byte
}

// flight is one in-progress computation plus its waiters.
type flight struct {
	done    chan struct{} // closed when val/err are final
	val     []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Open builds a store. dir is the on-disk tier's directory (created if
// missing); an empty dir selects memory-only operation. maxMem bounds
// the in-memory LRU entry count (0 = 1024).
func Open(dir string, maxMem int) (*Store, error) {
	if maxMem <= 0 {
		maxMem = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: create dir: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		mem:     make(map[string]*list.Element),
		order:   list.New(),
		maxMem:  maxMem,
		flights: make(map[string]*flight),
	}, nil
}

// Get returns the cached value for key, consulting memory then disk and
// promoting disk hits into memory. The returned slice is shared; callers
// must not mutate it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if v, ok := s.getMemLocked(key); ok {
		s.stats.Hits++
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false
	}
	v, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	// Every stored value is a complete JSON response; anything else on
	// disk — a torn write from a crashed kernel, filesystem corruption, a
	// stray hand-edited file — must read as a miss, not get served. The
	// bad entry is evicted so the recompute's Put can land a clean one.
	if !json.Valid(v) {
		os.Remove(s.path(key))
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.putMemLocked(key, v)
	s.stats.Hits++
	s.stats.DiskHits++
	s.mu.Unlock()
	return v, true
}

// Put stores a value under key in both tiers. The disk write is atomic
// (temp file + rename) so a crashed daemon never leaves a torn entry for
// a later process to replay.
func (s *Store) Put(key string, val []byte) error {
	if s.dir != "" {
		tmp, err := os.CreateTemp(s.dir, "put-*")
		if err != nil {
			return fmt.Errorf("cache: put: %w", err)
		}
		_, werr := tmp.Write(val)
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), s.path(key))
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("cache: put: %w", werr)
		}
	}
	s.mu.Lock()
	s.putMemLocked(key, val)
	s.mu.Unlock()
	return nil
}

// Do returns the value for key, computing it at most once across all
// concurrent callers: a cached value is returned immediately (Hit); the
// first uncached caller leads the computation (Miss); callers arriving
// while it runs wait for the same result (Shared). Successful values are
// cached, errors are not. The computation runs on its own context,
// cancelled only when every waiter has abandoned it, so one impatient
// client cannot kill a result others are waiting for.
func (s *Store) Do(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if v, ok := s.Get(key); ok {
		return v, Hit, nil
	}
	s.mu.Lock()
	// Re-check under the lock: a flight may have completed between the
	// Get and here.
	if v, ok := s.getMemLocked(key); ok {
		s.stats.Hits++
		s.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.stats.Shared++
		s.mu.Unlock()
		return s.wait(ctx, key, f, Shared)
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.flights[key] = f
	s.stats.Misses++
	s.mu.Unlock()

	go func() {
		val, err := compute(fctx)
		if err == nil {
			err = s.Put(key, val)
		}
		s.mu.Lock()
		f.val, f.err = val, err
		if err != nil {
			s.stats.Errors++
		}
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return s.wait(ctx, key, f, Miss)
}

// wait blocks until the flight finishes or ctx is done, cancelling the
// computation when the last waiter leaves.
func (s *Store) wait(ctx context.Context, key string, f *flight, o Outcome) ([]byte, Outcome, error) {
	select {
	case <-f.done:
		return f.val, o, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		abandon := f.waiters == 0
		s.mu.Unlock()
		if abandon {
			f.cancel()
		}
		return nil, o, fmt.Errorf("cache: %s while computing %s: %w", o, key, ctx.Err())
	}
}

// InFlight reports the number of deduplicated computations currently
// running.
func (s *Store) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flights)
}

// Snapshot returns the current counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemEntries = len(s.mem)
	return st
}

// path maps a key to its on-disk file. Keys are hex, so the name is
// filesystem-safe by construction.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// getMemLocked reads the LRU; s.mu must be held.
func (s *Store) getMemLocked(key string) ([]byte, bool) {
	el, ok := s.mem[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// putMemLocked inserts into the LRU, evicting the coldest entry past the
// bound; s.mu must be held. Evictions only drop the memory copy — the
// disk tier still holds the value.
func (s *Store) putMemLocked(key string, val []byte) {
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	s.mem[key] = s.order.PushFront(&memEntry{key: key, val: val})
	for len(s.mem) > s.maxMem {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.mem, last.Value.(*memEntry).key)
	}
}
