package cache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCorruptDiskEntryIsMissAndEvicted writes garbage over on-disk
// entries and checks the contract from the serving layer's point of
// view: a corrupt or truncated entry strict-decode-fails into a cache
// miss — never an error — and is evicted so the recompute can land a
// clean replacement.
func TestCorruptDiskEntryIsMissAndEvicted(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"truncated json": []byte(`{"stats":{"injected":120,"ejec`),
		"empty file":     {},
		"binary":         {0x00, 0xff, 0x13, 0x37, 0x00},
		"trailing junk":  []byte(`{"ok":true}#corrupted`),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			key := KeyOf("v", []byte(name))
			if err := s.Put(key, []byte(`{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			// Corrupt the entry behind the store's back, then reopen so the
			// memory tier cannot mask the damage (a crashed daemon's
			// successor sees only the disk).
			if err := os.WriteFile(s.path(key), garbage, 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := s2.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %q", v)
			}
			if _, err := os.Stat(s2.path(key)); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not evicted from disk (stat err %v)", err)
			}
			if st := s2.Snapshot(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
			}

			// The miss is recoverable: Do recomputes and the clean value
			// round-trips from disk again.
			var computes atomic.Int64
			want := []byte(`{"recomputed":true}`)
			v, outcome, err := s2.Do(context.Background(), key, func(context.Context) ([]byte, error) {
				computes.Add(1)
				return want, nil
			})
			if err != nil || outcome != Miss || !bytes.Equal(v, want) {
				t.Fatalf("Do after corruption = (%q, %v, %v)", v, outcome, err)
			}
			if computes.Load() != 1 {
				t.Fatalf("computes = %d", computes.Load())
			}
			s3, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := s3.Get(key); !ok || !bytes.Equal(v, want) {
				t.Fatalf("recomputed entry lost: (%q, %v)", v, ok)
			}
		})
	}
}

// TestEvictedWhileInflightStillReturns races LRU eviction against
// singleflight waiters: with a one-entry memory tier being churned by
// unrelated Puts, a key evicted the instant its computation lands must
// still deliver the computed bytes to every waiter. Run with -race.
func TestEvictedWhileInflightStillReturns(t *testing.T) {
	s, err := Open("", 1) // memory-only, one slot: every Put evicts
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Put(KeyOf("churn", []byte(fmt.Sprint(i))), []byte(`{"churn":true}`))
			}
		}
	}()

	key := KeyOf("contended", nil)
	want := []byte(`{"contended":"result"}`)
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = s.Do(context.Background(), key, func(context.Context) ([]byte, error) {
				<-release
				return want, nil
			})
		}(i)
	}
	// Let every late arrival join the flight before the leader finishes.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Shared < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never joined: %+v", s.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(stop)
	churn.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("waiter %d got %q, want %q", i, results[i], want)
		}
	}
	if st := s.Snapshot(); st.Misses != 1 || st.Shared != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d shared", st, waiters-1)
	}
}
