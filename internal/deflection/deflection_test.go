package deflection

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func mesh(t *testing.T, x, y int) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeliversAllFlits(t *testing.T) {
	n := New(mesh(t, 4, 4), 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if src != dst {
			n.Inject(src, dst)
		}
	}
	if !n.Drain(20000) {
		t.Fatalf("deflection network failed to drain: %d in flight, %d queued", n.InFlight(), n.Queued())
	}
	if n.Ejected != n.Injected {
		t.Fatalf("ejected %d != injected %d", n.Ejected, n.Injected)
	}
}

func TestNeverDeadlocksUnderSaturation(t *testing.T) {
	m := mesh(t, 4, 4)
	n := New(m, 3)
	rng := rand.New(rand.NewSource(4))
	for cycle := 0; cycle < 3000; cycle++ {
		for src := 0; src < 16; src++ {
			if rng.Float64() < 0.4 {
				dst := rng.Intn(16)
				if dst != src {
					n.Inject(src, dst)
				}
			}
		}
		n.Step()
	}
	if !n.Drain(60000) {
		t.Fatal("saturated deflection mesh failed to drain (deflection must be deadlock-free by construction)")
	}
}

func TestDeflectionsHappenUnderLoad(t *testing.T) {
	m := mesh(t, 4, 4)
	n := New(m, 5)
	// Everyone to one corner: massive contention, many deflections.
	for i := 0; i < 200; i++ {
		for src := 1; src < 16; src++ {
			n.Inject(src, 0)
		}
	}
	n.Run(4000)
	if n.DeflectionSum == 0 {
		t.Fatal("hotspot load produced no deflections")
	}
}

func TestZeroLoadLatencyNearMinimal(t *testing.T) {
	m := mesh(t, 8, 8)
	n := New(m, 6)
	n.Inject(0, 63)
	if !n.Drain(200) {
		t.Fatal("single flit not delivered")
	}
	// 14 hops minimal; bufferless traversal is one hop per cycle.
	if got := n.AvgLatency(); got < 14 || got > 20 {
		t.Fatalf("zero-load latency %f, want ~14", got)
	}
}

func TestAgePriorityPreventsStarvation(t *testing.T) {
	m := mesh(t, 4, 4)
	n := New(m, 7)
	// A steady crossfire through the center plus one old flit that must
	// still arrive promptly.
	n.Inject(0, 15)
	for cycle := 0; cycle < 400; cycle++ {
		if cycle%2 == 0 {
			n.Inject(3, 12)
			n.Inject(12, 3)
		}
		n.Step()
	}
	if n.Ejected == 0 {
		t.Fatal("nothing delivered through the crossfire")
	}
	if !n.Drain(10000) {
		t.Fatal("crossfire did not drain")
	}
}
