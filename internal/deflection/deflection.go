// Package deflection implements BLESS-style bufferless deflection routing
// (Moscibroda & Mutlu), the fourth prior deadlock-freedom framework of the
// paper's Table I. Routers have no packet buffers: every arriving flit
// must be assigned some output port every cycle; when productive ports run
// out, flits are deflected. Age-based (oldest-first) priority provides
// livelock freedom.
//
// Deflection networks are modelled separately from the VC simulator: they
// have a fundamentally different router (no buffers, no VCs, mandatory
// movement), and the paper uses them only for qualitative comparison.
package deflection

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Flit is a single-flit packet in the bufferless network (BLESS operates
// at flit granularity; multi-flit packets are independent flits with
// reassembly at the NIC, whose cost is one of the scheme's documented
// drawbacks).
type Flit struct {
	ID          uint64
	Src, Dst    int
	InjectCycle int64
	Deflections int
}

// Network is a bufferless deflection-routed mesh.
type Network struct {
	mesh *topology.Mesh
	rng  *rand.Rand
	now  int64

	// flits in flight: position router -> flits that arrived this cycle.
	atRouter [][]*Flit
	next     [][]*Flit

	queues [][]*Flit // per-terminal source queues
	nextID uint64

	minScratch []int // productivePorts reuse; valid until the next call

	// Stats.
	Injected, Ejected int64
	LatencySum        int64
	DeflectionSum     int64
	EjectedMeasured   int64
	StatsStart        int64
}

// New builds a deflection network on a mesh.
func New(mesh *topology.Mesh, seed int64) *Network {
	n := mesh.NumRouters()
	return &Network{
		mesh:     mesh,
		rng:      rand.New(rand.NewSource(seed)),
		atRouter: make([][]*Flit, n),
		next:     make([][]*Flit, n),
		queues:   make([][]*Flit, n),
	}
}

// Now reports the current cycle.
func (n *Network) Now() int64 { return n.now }

// InFlight reports flits currently inside the network.
func (n *Network) InFlight() int {
	total := 0
	for _, fs := range n.atRouter {
		total += len(fs)
	}
	return total
}

// Queued reports flits waiting at source queues.
func (n *Network) Queued() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// Inject queues a flit from src to dst.
func (n *Network) Inject(src, dst int) {
	n.nextID++
	n.queues[src] = append(n.queues[src], &Flit{ID: n.nextID, Src: src, Dst: dst, InjectCycle: -1})
}

// productivePorts lists directions that reduce distance to dst.
func (n *Network) productivePorts(r, dst int) []int {
	n.minScratch = n.mesh.MinimalPortsInto(n.minScratch[:0], r, dst)
	return n.minScratch
}

// Step advances one cycle: age-order flits at each router, eject one
// arrived flit, assign every remaining flit a unique output port
// (productive if possible, otherwise deflected), and inject from the
// source queue into leftover port slots.
func (n *Network) Step() {
	for r := range n.next {
		n.next[r] = n.next[r][:0]
	}
	for r := 0; r < n.mesh.NumRouters(); r++ {
		flits := n.atRouter[r]
		// Oldest-first (BLESS age priority): livelock freedom.
		sort.SliceStable(flits, func(i, j int) bool {
			if flits[i].InjectCycle != flits[j].InjectCycle {
				return flits[i].InjectCycle < flits[j].InjectCycle
			}
			return flits[i].ID < flits[j].ID
		})
		// Eject at most one flit per cycle.
		keep := flits[:0]
		ejected := false
		for _, f := range flits {
			if !ejected && f.Dst == r {
				n.eject(f)
				ejected = true
				continue
			}
			keep = append(keep, f)
		}
		flits = keep
		// Port assignment.
		used := map[int]bool{}
		freePorts := n.linkPorts(r)
		for _, f := range flits {
			assigned := -1
			for _, p := range n.productivePorts(r, f.Dst) {
				if !used[p] {
					assigned = p
					break
				}
			}
			if assigned < 0 {
				for _, p := range freePorts {
					if !used[p] {
						assigned = p
						break
					}
				}
				if assigned >= 0 {
					f.Deflections++
					n.DeflectionSum++
				}
			}
			if assigned < 0 {
				// More flits than ports cannot happen: injection respects
				// the free-slot rule and each neighbour sends at most one.
				panic(fmt.Sprintf("deflection: router %d oversubscribed", r))
			}
			used[assigned] = true
			l, _ := n.mesh.OutLink(r, assigned)
			n.next[l.Dst] = append(n.next[l.Dst], f)
		}
		// Injection: allowed while flits-at-router < available ports.
		for len(n.queues[r]) > 0 {
			var openPort = -1
			for _, p := range freePorts {
				if !used[p] {
					openPort = p
					break
				}
			}
			if openPort < 0 {
				break
			}
			f := n.queues[r][0]
			// Prefer a productive free port for the fresh flit; launching
			// out a non-productive port counts as a deflection.
			productive := false
			for _, p := range n.productivePorts(r, f.Dst) {
				if !used[p] {
					openPort = p
					productive = true
					break
				}
			}
			if !productive {
				f.Deflections++
				n.DeflectionSum++
			}
			n.queues[r] = n.queues[r][1:]
			f.InjectCycle = n.now
			n.Injected++
			used[openPort] = true
			l, _ := n.mesh.OutLink(r, openPort)
			n.next[l.Dst] = append(n.next[l.Dst], f)
		}
	}
	n.atRouter, n.next = n.next, n.atRouter
	n.now++
}

// linkPorts lists the wired link ports of router r.
func (n *Network) linkPorts(r int) []int {
	var ports []int
	for p := n.mesh.LocalPorts(r); p < n.mesh.Radix(r); p++ {
		if _, ok := n.mesh.OutLink(r, p); ok {
			ports = append(ports, p)
		}
	}
	return ports
}

func (n *Network) eject(f *Flit) {
	n.Ejected++
	if f.InjectCycle >= n.StatsStart {
		n.EjectedMeasured++
		n.LatencySum += n.now - f.InjectCycle
	}
}

// Run advances the network by cycles steps.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain steps with no new traffic until empty or the budget runs out.
func (n *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 && n.Queued() == 0 {
			return true
		}
		n.Step()
	}
	return n.InFlight() == 0 && n.Queued() == 0
}

// AvgLatency reports mean flit latency over measured ejections.
func (n *Network) AvgLatency() float64 {
	if n.EjectedMeasured == 0 {
		return 0
	}
	return float64(n.LatencySum) / float64(n.EjectedMeasured)
}
