package deflection

import (
	"reflect"
	"testing"
)

// TestProductivePortsMatchMinimal: the scratch-backed productive-port
// lookup must agree with the topology's allocating MinimalPorts on every
// pair, including consecutive calls (the scratch is reused, so a second
// lookup must not corrupt the comparison semantics of the first's use).
func TestProductivePortsMatchMinimal(t *testing.T) {
	m := mesh(t, 4, 4)
	n := New(m, 1)
	for r := 0; r < 16; r++ {
		for dst := 0; dst < 16; dst++ {
			got := append([]int(nil), n.productivePorts(r, dst)...)
			want := m.MinimalPorts(r, dst)
			if len(want) == 0 {
				want = []int{}
			}
			if len(got) == 0 {
				got = []int{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("productivePorts(%d, %d) = %v, want %v", r, dst, got, want)
			}
		}
	}
	// Back-to-back lookups share one scratch buffer; the latest call must
	// win without mixing in the earlier result.
	_ = n.productivePorts(0, 15)
	second := n.productivePorts(15, 0)
	if !reflect.DeepEqual(append([]int(nil), second...), m.MinimalPorts(15, 0)) {
		t.Fatalf("scratch reuse corrupted second lookup: %v", second)
	}
}

// TestLinkPorts tables the wired-port census of a 4x4 mesh: corners have
// two links, edges three, the interior four.
func TestLinkPorts(t *testing.T) {
	m := mesh(t, 4, 4)
	n := New(m, 1)
	cases := []struct {
		name   string
		router int
		want   int
	}{
		{"corner", 0, 2},
		{"opposite corner", 15, 2},
		{"edge", 1, 3},
		{"interior", 5, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(n.linkPorts(tc.router)); got != tc.want {
				t.Fatalf("router %d has %d wired ports, want %d", tc.router, got, tc.want)
			}
		})
	}
}

// TestEjectAccounting tables the measurement-window rule: flits injected
// at or after StatsStart count toward latency, earlier ones only toward
// the raw ejection total.
func TestEjectAccounting(t *testing.T) {
	cases := []struct {
		name             string
		statsStart       int64
		injectCycle, now int64
		wantMeasured     int64
		wantLatency      int64
	}{
		{"inside window", 0, 10, 25, 1, 15},
		{"before window", 100, 10, 25, 0, 0},
		{"on the boundary", 10, 10, 25, 1, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New(mesh(t, 2, 2), 1)
			n.StatsStart = tc.statsStart
			n.now = tc.now
			n.eject(&Flit{InjectCycle: tc.injectCycle})
			if n.Ejected != 1 {
				t.Fatalf("Ejected = %d, want 1", n.Ejected)
			}
			if n.EjectedMeasured != tc.wantMeasured {
				t.Fatalf("EjectedMeasured = %d, want %d", n.EjectedMeasured, tc.wantMeasured)
			}
			if n.LatencySum != tc.wantLatency {
				t.Fatalf("LatencySum = %d, want %d", n.LatencySum, tc.wantLatency)
			}
		})
	}
}

// TestAvgLatencyEmptyWindow: no measured ejections must read as zero,
// not NaN.
func TestAvgLatencyEmptyWindow(t *testing.T) {
	n := New(mesh(t, 2, 2), 1)
	if got := n.AvgLatency(); got != 0 {
		t.Fatalf("AvgLatency on empty window = %v, want 0", got)
	}
}
