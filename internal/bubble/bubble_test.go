package bubble_test

import (
	"testing"

	"repro/internal/bubble"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// torusDOR is dimension-ordered routing with wraparound (shortest
// direction), the routing Bubble Flow Control protects.
type torusDOR struct {
	sim.BaseRouting
	m *topology.Mesh
}

func (t *torusDOR) Name() string { return "torus_dor" }

func (t *torusDOR) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	cx, cy := t.m.Coords(r.ID)
	dx, dy := t.m.Coords(p.RouteDst())
	var port int
	switch {
	case cx != dx:
		east := ((dx - cx) + t.m.X) % t.m.X
		if east <= t.m.X-east {
			port = topology.MeshPort(topology.East)
		} else {
			port = topology.MeshPort(topology.West)
		}
	default:
		north := ((dy - cy) + t.m.Y) % t.m.Y
		if north <= t.m.Y-north {
			port = topology.MeshPort(topology.North)
		} else {
			port = topology.MeshPort(topology.South)
		}
	}
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

func TestTorusDORWithoutBubbleDeadlocks(t *testing.T) {
	torus, err := topology.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   torus,
		Routing:    &torusDOR{m: torus},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Tornado(torus), Rate: 0.9, DataFrac: 1},
		VCsPerVNet: 1,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadlocked := false
	for i := 0; i < 4000 && !deadlocked; i++ {
		n.Step()
		if i%100 == 99 {
			deadlocked = n.Deadlocked()
		}
	}
	if !deadlocked {
		t.Skip("torus DOR did not deadlock at this seed/load; the CDG test proves the cycle exists")
	}
}

func TestRingBubbleKeepsTorusDeadlockFree(t *testing.T) {
	torus, err := topology.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   torus,
		Routing:    &torusDOR{m: torus},
		Scheme:     &bubble.RingBubble{Mesh: torus},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Tornado(torus), Rate: 0.6, DataFrac: 1},
		VCsPerVNet: 1,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(4000)
	if n.Stats().Ejected == 0 {
		t.Fatal("no traffic delivered under bubble flow control")
	}
	if !n.Drain(60000) {
		t.Fatalf("bubble-protected torus failed to drain: %d in flight", n.InFlight())
	}
}

func TestStaticBubbleMeshDeadlockFree(t *testing.T) {
	mesh, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb := &bubble.StaticBubble{Mesh: mesh, TDD: 32}
	pat, _ := traffic.ByName("transpose", mesh)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    sb.Routing(3),
		Scheme:     sb,
		Traffic:    &traffic.Synthetic{Pattern: pat, Rate: 0.4},
		VCsPerVNet: 3, // 2 usable + 1 reserved recovery VC
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(2500)
	if !n.Drain(300000) {
		t.Fatalf("static-bubble mesh failed to drain: %d in flight", n.InFlight())
	}
	if n.Stats().Ejected != n.Stats().Injected {
		t.Fatal("packet loss under static bubble")
	}
}

func TestStaticBubbleReservesVC0(t *testing.T) {
	mesh, _ := topology.NewMesh(3, 3, 1)
	sb := &bubble.StaticBubble{Mesh: mesh, TDD: 1 << 40} // never recover
	n, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    sb.Routing(2),
		Scheme:     sb,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(9), Rate: 0.2},
		VCsPerVNet: 2,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		n.Step()
		for r := 0; r < n.NumRouters(); r++ {
			rt := n.Router(r)
			for p := 0; p < rt.Radix(); p++ {
				v := rt.VC(p, 0)
				if v.Len() > 0 {
					t.Fatalf("recovery VC occupied at r%d p%d without any recovery", r, p)
				}
			}
		}
	}
}

func TestStaticBubbleRecoversConstructedDeadlock(t *testing.T) {
	mesh, _ := topology.NewMesh(2, 2, 1)
	e, no, w, s := topology.MeshPort(topology.East), topology.MeshPort(topology.North),
		topology.MeshPort(topology.West), topology.MeshPort(topology.South)
	// Adaptive minimal traffic that forms the square cycle: use corner-to-
	// corner packets which have two minimal paths; with seed-dependent
	// choices a cycle may form. Instead, force it with a table-routing
	// phase is not possible here (Static Bubble needs its escape request),
	// so drive the adaptive config hard and rely on the timeout counter.
	_ = []int{e, no, w, s}
	sb := &bubble.StaticBubble{Mesh: mesh, TDD: 16}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    sb.Routing(2),
		Scheme:     sb,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(4), Rate: 0.9},
		VCsPerVNet: 2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(3000)
	if !n.Drain(100000) {
		t.Fatalf("static bubble failed to drain hard-driven 2x2 mesh: %d in flight", n.InFlight())
	}
}
