package bubble

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// nullRouting satisfies sim.RoutingAlgorithm for networks that never
// route a packet (the unit tests below drive agents directly).
type nullRouting struct{ sim.BaseRouting }

func (nullRouting) Name() string { return "null" }

func (nullRouting) Route(_ *sim.Router, _ int, _ *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	return buf
}

// torusNet builds an idle scheme-less torus network for agent-level
// unit tests (the agents under test are constructed by hand so their
// filter decisions can be probed directly).
func torusNet(t *testing.T, x, y, vcs int) (*topology.Mesh, *sim.Network) {
	t.Helper()
	torus, err := topology.NewTorus(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   torus,
		Routing:    nullRouting{},
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(torus.NumTerminals()), Rate: 0},
		VCsPerVNet: vcs,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return torus, n
}

// TestRingOf pins the ring classification every bubble decision builds
// on: E/W ports belong to the X ring at the router's Y coordinate, N/S
// ports to the Y ring at its X coordinate, and everything else (terminal
// ports, out-of-range ports) to no ring.
func TestRingOf(t *testing.T) {
	torus, _ := torusNet(t, 4, 4, 1)
	b := &RingBubble{Mesh: torus}
	east := topology.MeshPort(topology.East)
	west := topology.MeshPort(topology.West)
	north := topology.MeshPort(topology.North)
	south := topology.MeshPort(topology.South)
	cases := []struct {
		name               string
		router, port       int
		wantDim, wantCoord int
	}{
		{"terminal port is no ring", 5, 0, -1, -1},
		{"out-of-range port is no ring", 5, 9, -1, -1},
		{"east at origin", 0, east, 0, 0},
		{"west shares the east ring", 0, west, 0, 0},
		{"north at origin", 0, north, 1, 0},
		{"south shares the north ring", 0, south, 1, 0},
		// Router 6 = (2, 1) on a 4x4 torus.
		{"east keys on y", 6, east, 0, 1},
		{"north keys on x", 6, north, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dim, coord := b.ringOf(tc.router, tc.port)
			if dim != tc.wantDim || coord != tc.wantCoord {
				t.Fatalf("ringOf(%d, %d) = (%d, %d), want (%d, %d)",
					tc.router, tc.port, dim, coord, tc.wantDim, tc.wantCoord)
			}
		})
	}
}

// TestRingAgentFilterSend tables the send-filter decisions on an idle
// network: intra-ring movement and empty input VCs always pass; an empty
// ring always has a spare bubble.
func TestRingAgentFilterSend(t *testing.T) {
	torus, n := torusNet(t, 4, 4, 1)
	b := &RingBubble{Mesh: torus}
	east := topology.MeshPort(topology.East)
	west := topology.MeshPort(topology.West)
	north := topology.MeshPort(topology.North)
	cases := []struct {
		name        string
		inPort, out int
		want        bool
	}{
		{"same ring continuation", east, west, true},
		{"same direction continuation", east, east, true},
		{"dimension change on empty vc", east, north, true},
		{"injection-port source on empty vc", 0, north, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := n.Router(5)
			a := &ringAgent{scheme: b, r: r}
			l, _, ok := r.Downstream(tc.out)
			if !ok {
				t.Fatalf("router 5 has no link on port %d", tc.out)
			}
			_ = l
			if got := a.FilterSend(r.VC(tc.inPort, 0), tc.out, nil); got != tc.want {
				t.Fatalf("FilterSend(in=%d, out=%d) = %v, want %v", tc.inPort, tc.out, got, tc.want)
			}
		})
	}
}

// TestRingHasSpareBubbleEmptyNetwork: with every buffer free, every ring
// has a spare bubble from every entry point, and terminal ports
// trivially pass.
func TestRingHasSpareBubbleEmptyNetwork(t *testing.T) {
	torus, n := torusNet(t, 3, 3, 1)
	b := &RingBubble{Mesh: torus}
	for r := 0; r < n.NumRouters(); r++ {
		for port := 0; port <= 4; port++ {
			if !b.ringHasSpareBubble(n, r, port, nil, 1) {
				t.Fatalf("empty network reports no spare bubble at r%d port %d", r, port)
			}
		}
	}
}

// TestRingAgentFilterInjectEmptyNetwork: injection into an idle torus is
// always allowed.
func TestRingAgentFilterInjectEmptyNetwork(t *testing.T) {
	torus, n := torusNet(t, 3, 3, 1)
	b := &RingBubble{Mesh: torus}
	for r := 0; r < n.NumRouters(); r++ {
		a := &ringAgent{scheme: b, r: n.Router(r)}
		if !a.FilterInject(n.Router(r).VC(0, 0), &sim.Packet{Length: 1}) {
			t.Fatalf("idle-network injection vetoed at router %d", r)
		}
	}
}

// TestSchemeNames pins the scheme identifiers experiment configs key on.
func TestSchemeNames(t *testing.T) {
	if got := (&RingBubble{}).Name(); got != "bubble_fc" {
		t.Fatalf("RingBubble.Name() = %q, want bubble_fc", got)
	}
	if got := (&StaticBubble{}).Name(); got != "static_bubble" {
		t.Fatalf("StaticBubble.Name() = %q, want static_bubble", got)
	}
}

// TestRingAgentQuiescent: bubble flow control is a pure send filter, so
// the agent must advertise an idle Tick to the active-set scheduler —
// this keeps bubble-protected routers out of the per-cycle worklist.
func TestRingAgentQuiescent(t *testing.T) {
	var a ringAgent
	if !a.Quiescent() {
		t.Fatal("ringAgent.Quiescent() = false, want true (Tick is a no-op)")
	}
}

// TestStaticBubbleAgentNotQuiescer: the static-bubble agent's Tick
// advances blocked timers every cycle, so it must NOT satisfy
// sim.Quiescer — if someone adds a Quiescent method without making it
// state-aware, recovery timeouts silently stop firing on idle-looking
// routers.
func TestStaticBubbleAgentNotQuiescer(t *testing.T) {
	var a interface{} = &sbAgent{}
	if _, ok := a.(sim.Quiescer); ok {
		t.Fatal("sbAgent implements Quiescer; its Tick mutates timeout state every cycle")
	}
}
