package bubble

import (
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// StaticBubble models the Static Bubble deadlock-recovery scheme for
// meshes: VC 0 of every vnet is a reserved recovery buffer that carries no
// traffic in normal operation (this is the cost Fig. 7 charges the
// scheme). A per-router timeout detects blocked packets; a detected packet
// is granted entry into the recovery VC, through which it drains over the
// dimension-ordered (acyclic) path. Packets already in the recovery VC
// keep using it freely, so the drain can never deadlock.
type StaticBubble struct {
	Mesh *topology.Mesh
	// TDD is the detection timeout in cycles (default 128).
	TDD int64

	net    *sim.Network
	agents []*sbAgent
}

// Name implements sim.Scheme.
func (s *StaticBubble) Name() string { return "static_bubble" }

// RequiresSerialStep implements sim.SerialOnly: the agents only inspect
// their own router's VCs and static downstream VC indices, so the scheme
// runs under the sharded engine.
func (s *StaticBubble) RequiresSerialStep() bool { return false }

// Attach implements sim.Scheme.
func (s *StaticBubble) Attach(n *sim.Network) {
	if s.TDD == 0 {
		s.TDD = 128
	}
	s.net = n
	for i := 0; i < n.NumRouters(); i++ {
		a := &sbAgent{scheme: s, r: n.Router(i)}
		s.agents = append(s.agents, a)
		n.SetAgent(i, a)
	}
}

// Routing returns the routing algorithm Static Bubble pairs with:
// fully-adaptive minimal requests over the regular VCs plus the
// dimension-ordered recovery request on VC 0 (vetoed by the agent until a
// timeout fires). vcs is the configuration's VCs per vnet.
func (s *StaticBubble) Routing(vcs int) sim.RoutingAlgorithm {
	return &routing.EscapeVC{Mesh: s.Mesh, VCs: vcs}
}

type sbAgent struct {
	sim.BaseAgent
	scheme *StaticBubble
	r      *sim.Router

	// blockedSince tracks, per (port, vc), when the resident packet became
	// head-blocked (0 = not blocked).
	blockedSince map[[2]int]int64
	// recovery marks VCs whose resident has been released into the
	// recovery buffer path.
	recovery map[[2]int]uint64 // -> packet id
}

// Tick implements sim.Agent: advance the blocked timers.
func (a *sbAgent) Tick() {
	now := a.r.Now()
	if a.blockedSince == nil {
		a.blockedSince = map[[2]int]int64{}
		a.recovery = map[[2]int]uint64{}
	}
	for p := a.r.LocalPorts(); p < a.r.Radix(); p++ {
		for k := 0; k < a.r.VCsPerPort(); k++ {
			v := a.r.VC(p, k)
			key := [2]int{p, k}
			pk := v.FrontPacket()
			if pk == nil || v.WaitingToEject() || v.Granted() >= 0 {
				delete(a.blockedSince, key)
				delete(a.recovery, key)
				continue
			}
			if since, ok := a.blockedSince[key]; !ok {
				a.blockedSince[key] = now
			} else if now-since >= a.scheme.TDD {
				if a.recovery[key] != pk.ID {
					a.recovery[key] = pk.ID
					a.r.Stats().Count("static_bubble_recoveries", 1)
				}
			}
		}
	}
}

// FilterSend implements sim.Agent: VC 0 is the reserved recovery buffer.
// Entry is allowed only for packets already travelling in a recovery VC
// (the acyclic drain) or blocked packets released by the timeout.
func (a *sbAgent) FilterSend(vc *sim.VC, outPort int, dvc *sim.VC) bool {
	if dvc.Index()%a.r.Net().Config().VCsPerVNet != 0 {
		return true // regular VC: no restriction
	}
	// Recovery packets keep draining through recovery VCs.
	if vc.Index()%a.r.Net().Config().VCsPerVNet == 0 && vc.Port() >= a.r.LocalPorts() {
		return true
	}
	pk := vc.FrontPacket()
	if pk == nil {
		return false
	}
	if a.recovery == nil {
		return false
	}
	return a.recovery[[2]int{vc.Port(), vc.Index()}] == pk.ID
}

// FilterInject implements sim.Agent: fresh packets may not claim the
// recovery buffer.
func (a *sbAgent) FilterInject(vc *sim.VC, _ *sim.Packet) bool {
	return vc.Index()%a.r.Net().Config().VCsPerVNet != 0
}
