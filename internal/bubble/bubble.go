// Package bubble implements the flow-control family of deadlock-freedom
// schemes the paper compares against:
//
//   - RingBubble: localized Bubble Flow Control (Carrion et al.) for
//     ring/torus networks — a packet may enter a ring only if the move
//     leaves at least one free packet buffer in it, so the ring can always
//     rotate.
//   - StaticBubble: the mesh deadlock-*recovery* scheme of Ramrakhyani &
//     Krishna (HPCA 2017), modelled as a reserved per-router recovery
//     buffer (VC 0) that normal traffic may not occupy and that a
//     timeout-detected blocked packet escapes into, draining over an
//     acyclic dimension-ordered path.
package bubble

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// RingBubble is bubble flow control on a torus/ring with dimension-ordered
// routing: intra-ring movement is unrestricted; ring entry (injection or
// dimension change) requires one spare packet slot beyond the one being
// claimed.
type RingBubble struct {
	Mesh *topology.Mesh // torus
}

// Name implements sim.Scheme.
func (b *RingBubble) Name() string { return "bubble_fc" }

// RequiresSerialStep implements sim.SerialOnly: the spare-bubble check
// scans live VC state around the whole ring, which crosses shard
// boundaries mid-phase, so the scheme needs the serial engine.
func (b *RingBubble) RequiresSerialStep() bool { return true }

// Attach implements sim.Scheme.
func (b *RingBubble) Attach(n *sim.Network) {
	for i := 0; i < n.NumRouters(); i++ {
		n.SetAgent(i, &ringAgent{scheme: b, r: n.Router(i)})
	}
}

type ringAgent struct {
	sim.BaseAgent
	scheme *RingBubble
	r      *sim.Router
}

// Quiescent implements sim.Quiescer: bubble flow control is a pure
// send/inject filter with a no-op Tick, so the agent never needs the
// engine's agent phase.
func (a *ringAgent) Quiescent() bool { return true }

// ringOf classifies a VC's link into its ring: dimension (0 = x, 1 = y)
// and the fixed coordinate. Terminal ports return (-1, -1).
func (b *RingBubble) ringOf(router, port int) (int, int) {
	if port < 1 || port > 4 {
		return -1, -1
	}
	x, y := b.Mesh.Coords(router)
	switch topology.MeshDirection(port) {
	case topology.East, topology.West:
		return 0, y
	default:
		return 1, x
	}
}

// ringHasSpareBubble counts free packet buffers in the ring of (router,
// outPort) excluding the one at dvc, requiring at least one more.
func (b *RingBubble) ringHasSpareBubble(n *sim.Network, router, outPort int, dvc *sim.VC, length int) bool {
	dim, coord := b.ringOf(router, outPort)
	if dim < 0 {
		return true
	}
	free := 0
	for r := 0; r < n.NumRouters(); r++ {
		x, y := b.Mesh.Coords(r)
		if (dim == 0 && y != coord) || (dim == 1 && x != coord) {
			continue
		}
		rt := n.Router(r)
		for p := 1; p <= 4; p++ {
			if d, c := b.ringOf(r, p); d != dim || c != coord {
				continue
			}
			// Input VCs fed by this ring live at the far end of the link.
			down, inPort, ok := rt.Downstream(p)
			if !ok {
				continue
			}
			for k := 0; k < down.VCsPerPort(); k++ {
				v := down.VC(inPort, k)
				if v == dvc {
					continue
				}
				if v.CanAccept(length) {
					free++
					if free >= 1 {
						return true
					}
				}
			}
		}
	}
	return false
}

// FilterSend implements sim.Agent: dimension changes must leave a bubble.
func (a *ringAgent) FilterSend(vc *sim.VC, outPort int, dvc *sim.VC) bool {
	sameRing := false
	if vc.Port() >= 1 && vc.Port() <= 4 {
		d1, c1 := a.scheme.ringOf(a.r.ID, outPort)
		// The input port belongs to the same ring when its direction is the
		// same dimension at the same coordinate.
		d0, c0 := a.scheme.ringOf(a.r.ID, vc.Port())
		sameRing = d0 == d1 && c0 == c1
	}
	if sameRing {
		return true
	}
	p := vc.FrontPacket()
	if p == nil {
		return true
	}
	return a.scheme.ringHasSpareBubble(a.r.Net(), a.r.ID, outPort, dvc, p.Length)
}

// FilterInject implements sim.Agent: injection is a ring entry.
func (a *ringAgent) FilterInject(vc *sim.VC, p *sim.Packet) bool {
	// The injected packet's first hop ring is determined by its route;
	// conservatively require a spare bubble in both rings through this
	// router that DOR could enter.
	for _, port := range []int{1, 2, 3, 4} {
		if _, _, ok := a.r.Downstream(port); !ok {
			continue
		}
		if !a.scheme.ringHasSpareBubble(a.r.Net(), a.r.ID, port, nil, p.Length) {
			return false
		}
	}
	return true
}
