package topology

import "fmt"

// Direction labels the four mesh/torus link ports. The local (terminal)
// port of a mesh router is port 0; directional ports follow.
type Direction int

// Mesh port directions. PortOf(d) = 1+d because port 0 is the terminal.
const (
	North Direction = iota
	East
	South
	West
	numDirections
)

// String returns the one-letter direction name used in probe paths.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return "?"
}

// MeshPort maps a direction to its router port number (terminal is port 0).
func MeshPort(d Direction) int { return 1 + int(d) }

// MeshDirection maps a mesh link port back to its direction.
// Port 0 (the terminal port) has no direction; MeshDirection panics on it.
func MeshDirection(port int) Direction {
	if port < 1 || port > int(numDirections) {
		panic(fmt.Sprintf("topology: port %d is not a mesh direction port", port))
	}
	return Direction(port - 1)
}

// Mesh is a 2-D mesh (optionally a torus) of X×Y routers with one terminal
// per router. Router r sits at coordinates (r mod X, r div X); +x is East,
// +y is North.
type Mesh struct {
	*Graph
	X, Y  int
	Torus bool
}

// NewMesh builds an X×Y mesh with the given link latency (cycles).
func NewMesh(x, y, linkLatency int) (*Mesh, error) {
	return newMesh(x, y, linkLatency, false)
}

// NewTorus builds an X×Y torus with the given link latency (cycles).
func NewTorus(x, y, linkLatency int) (*Mesh, error) {
	return newMesh(x, y, linkLatency, true)
}

func newMesh(x, y, lat int, torus bool) (*Mesh, error) {
	if x < 2 || y < 1 {
		return nil, fmt.Errorf("topology: mesh needs x >= 2, y >= 1, got %dx%d", x, y)
	}
	n := x * y
	terms := make([]int, n)
	for i := range terms {
		terms[i] = i
	}
	id := func(cx, cy int) int { return cy*x + cx }
	var links []Link
	addPair := func(a, ap, b, bp int) {
		links = append(links,
			Link{Src: a, SrcPort: ap, Dst: b, DstPort: bp, Latency: lat},
			Link{Src: b, SrcPort: bp, Dst: a, DstPort: ap, Latency: lat})
	}
	for cy := 0; cy < y; cy++ {
		for cx := 0; cx < x; cx++ {
			if cx+1 < x {
				addPair(id(cx, cy), MeshPort(East), id(cx+1, cy), MeshPort(West))
			} else if torus && x > 2 {
				addPair(id(cx, cy), MeshPort(East), id(0, cy), MeshPort(West))
			}
			if cy+1 < y {
				addPair(id(cx, cy), MeshPort(North), id(cx, cy+1), MeshPort(South))
			} else if torus && y > 2 {
				addPair(id(cx, cy), MeshPort(North), id(cx, 0), MeshPort(South))
			}
		}
	}
	kind := "mesh"
	if torus {
		kind = "torus"
	}
	g, err := NewGraph(fmt.Sprintf("%s%dx%d", kind, x, y), n, terms, links)
	if err != nil {
		return nil, err
	}
	return &Mesh{Graph: g, X: x, Y: y, Torus: torus}, nil
}

// Coords reports the (x, y) coordinates of router r.
func (m *Mesh) Coords(r int) (int, int) { return r % m.X, r / m.X }

// RouterAt reports the router id at coordinates (x, y).
func (m *Mesh) RouterAt(x, y int) int { return y*m.X + x }

// Ring is a unidirectional or bidirectional ring of n routers, one
// terminal each. It is the minimal substrate for bubble flow control.
type Ring struct {
	*Graph
	N             int
	Bidirectional bool
}

// Ring port layout: 0 terminal, 1 clockwise (toward r+1), 2 counter-
// clockwise (toward r-1; only wired when bidirectional).
const (
	RingPortCW  = 1
	RingPortCCW = 2
)

// NewRing builds a ring of n routers. If bidi is false only the clockwise
// channel exists.
func NewRing(n, linkLatency int, bidi bool) (*Ring, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 routers, got %d", n)
	}
	terms := make([]int, n)
	for i := range terms {
		terms[i] = i
	}
	var links []Link
	for r := 0; r < n; r++ {
		next := (r + 1) % n
		links = append(links, Link{Src: r, SrcPort: RingPortCW, Dst: next, DstPort: RingPortCCW, Latency: linkLatency})
		if bidi {
			links = append(links, Link{Src: next, SrcPort: RingPortCCW, Dst: r, DstPort: RingPortCW, Latency: linkLatency})
		}
	}
	// In the unidirectional case port 2 (CCW) is only ever an input port.
	g, err := NewGraph(fmt.Sprintf("ring%d", n), n, terms, links)
	if err != nil {
		return nil, err
	}
	return &Ring{Graph: g, N: n, Bidirectional: bidi}, nil
}
