package topology

import (
	"fmt"
	"math/rand"
)

// IrregularMesh is a mesh with a subset of its bidirectional links removed,
// modelling faulty or power-gated channels. Such topologies generally admit
// no turn-model routing and motivate SPIN's topology agnosticism.
type IrregularMesh struct {
	*Graph
	X, Y         int
	RemovedPairs [][2]int // router pairs whose channel was removed
}

// NewIrregularMesh builds an X×Y mesh and removes up to faults
// bidirectional links chosen with rng, never disconnecting the network.
// It reports the actually removed channel count via len(RemovedPairs).
func NewIrregularMesh(x, y, linkLatency, faults int, rng *rand.Rand) (*IrregularMesh, error) {
	base, err := NewMesh(x, y, linkLatency)
	if err != nil {
		return nil, err
	}
	// Collect candidate bidirectional channels as (lowRouter, highRouter).
	type chanPair struct{ a, b int }
	seen := map[chanPair]bool{}
	var channels []chanPair
	for _, l := range base.Links() {
		a, b := l.Src, l.Dst
		if a > b {
			a, b = b, a
		}
		cp := chanPair{a, b}
		if !seen[cp] {
			seen[cp] = true
			channels = append(channels, cp)
		}
	}
	rng.Shuffle(len(channels), func(i, j int) { channels[i], channels[j] = channels[j], channels[i] })

	removed := map[chanPair]bool{}
	var removedPairs [][2]int
	links := base.Links()
	build := func() (*Graph, error) {
		var kept []Link
		for _, l := range links {
			a, b := l.Src, l.Dst
			if a > b {
				a, b = b, a
			}
			if removed[chanPair{a, b}] {
				continue
			}
			kept = append(kept, l)
		}
		terms := make([]int, x*y)
		for i := range terms {
			terms[i] = i
		}
		return NewGraph(fmt.Sprintf("irrmesh%dx%d_f%d", x, y, len(removed)), x*y, terms, kept)
	}
	g := base.Graph
	for _, cp := range channels {
		if len(removedPairs) >= faults {
			break
		}
		removed[cp] = true
		cand, err := build()
		if err != nil || !cand.Connected() {
			delete(removed, cp)
			continue
		}
		g = cand
		removedPairs = append(removedPairs, [2]int{cp.a, cp.b})
	}
	return &IrregularMesh{Graph: g, X: x, Y: y, RemovedPairs: removedPairs}, nil
}

// Coords reports the (x, y) coordinates of router r.
func (m *IrregularMesh) Coords(r int) (int, int) { return r % m.X, r / m.X }
