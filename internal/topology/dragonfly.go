package topology

import "fmt"

// Dragonfly is the canonical dragonfly of Kim et al.: G groups of A
// routers; each router hosts P terminals and H global links; routers
// within a group are fully connected. Global channels are wired with the
// standard consecutive arrangement, giving at least one global channel
// between every pair of groups when A*H >= G-1.
//
// Port layout at every router:
//
//	[0, P)            terminal ports
//	[P, P+A-1)        intra-group ports (to each other router in the group)
//	[P+A-1, P+A-1+H)  global ports
type Dragonfly struct {
	*Graph
	P, A, H, G          int
	IntraLat, GlobalLat int
	globalPortBase      int
}

// NewDragonfly builds a dragonfly. The paper's 1024-node system is
// NewDragonfly(4, 8, 4, 32, 1, 3): group size 8, 256 routers, 1-cycle
// intra-group and 3-cycle inter-group links.
func NewDragonfly(p, a, h, g, intraLat, globalLat int) (*Dragonfly, error) {
	if p < 1 || a < 2 || h < 1 || g < 2 {
		return nil, fmt.Errorf("topology: invalid dragonfly p=%d a=%d h=%d g=%d", p, a, h, g)
	}
	if a*h < g-1 {
		return nil, fmt.Errorf("topology: dragonfly needs a*h >= g-1 for full group connectivity (a*h=%d, g-1=%d)", a*h, g-1)
	}
	routers := g * a
	terms := make([]int, routers*p)
	for t := range terms {
		terms[t] = t / p
	}
	gpBase := p + a - 1
	var links []Link
	rid := func(grp, j int) int { return grp*a + j }
	// Intra-group full crossbar.
	localPort := func(from, to int) int {
		if to < from {
			return p + to
		}
		return p + to - 1
	}
	for grp := 0; grp < g; grp++ {
		for j := 0; j < a; j++ {
			for k := j + 1; k < a; k++ {
				links = append(links,
					Link{Src: rid(grp, j), SrcPort: localPort(j, k), Dst: rid(grp, k), DstPort: localPort(k, j), Latency: intraLat},
					Link{Src: rid(grp, k), SrcPort: localPort(k, j), Dst: rid(grp, j), DstPort: localPort(j, k), Latency: intraLat})
			}
		}
	}
	// Global channels: for groups i < d, group i's channel d-1 pairs with
	// group d's channel i. Channel c belongs to router c/h, global slot c%h.
	for i := 0; i < g; i++ {
		for d := i + 1; d < g; d++ {
			ci, cd := d-1, i
			if ci >= a*h || cd >= a*h {
				continue
			}
			srcR, srcP := rid(i, ci/h), gpBase+ci%h
			dstR, dstP := rid(d, cd/h), gpBase+cd%h
			links = append(links,
				Link{Src: srcR, SrcPort: srcP, Dst: dstR, DstPort: dstP, Latency: globalLat},
				Link{Src: dstR, SrcPort: dstP, Dst: srcR, DstPort: srcP, Latency: globalLat})
		}
	}
	base, err := NewGraph(fmt.Sprintf("dragonfly_p%da%dh%dg%d", p, a, h, g), routers, terms, links)
	if err != nil {
		return nil, err
	}
	base.ensureRadix(gpBase + h)
	return &Dragonfly{
		Graph: base, P: p, A: a, H: h, G: g,
		IntraLat: intraLat, GlobalLat: globalLat,
		globalPortBase: gpBase,
	}, nil
}

// Group reports the group a router belongs to.
func (d *Dragonfly) Group(r int) int { return r / d.A }

// LocalPortTo reports the intra-group port from router r to router r2 of
// the same group (r != r2).
func (d *Dragonfly) LocalPortTo(r, r2 int) int {
	j, k := r%d.A, r2%d.A
	if k < j {
		return d.P + k
	}
	return d.P + k - 1
}

// GlobalPortsTo returns r's global ports whose links land in group gd.
func (d *Dragonfly) GlobalPortsTo(r, gd int) []int {
	var out []int
	for p := d.globalPortBase; p < d.globalPortBase+d.H; p++ {
		l, ok := d.OutLink(r, p)
		if ok && d.Group(l.Dst) == gd {
			out = append(out, p)
		}
	}
	return out
}

// CanonicalMinimalPorts returns the output ports of the canonical
// dragonfly minimal route (local, global, local): inside the destination
// group, the direct local port; otherwise the router's own global channel
// to the destination group if it has one, else the local hops toward
// group members that do. Unlike the BFS-based MinimalPorts, canonical
// paths never take two global hops, which is what the Dally VC ladder is
// designed around.
func (d *Dragonfly) CanonicalMinimalPorts(r, dst int) []int {
	if r == dst {
		return nil
	}
	g, gd := d.Group(r), d.Group(dst)
	if g == gd {
		return []int{d.LocalPortTo(r, dst)}
	}
	if direct := d.GlobalPortsTo(r, gd); len(direct) > 0 {
		return direct
	}
	var out []int
	for j := 0; j < d.A; j++ {
		r2 := g*d.A + j
		if r2 == r {
			continue
		}
		if len(d.GlobalPortsTo(r2, gd)) > 0 {
			out = append(out, d.LocalPortTo(r, r2))
		}
	}
	return out
}

// GlobalPortBase reports the first global port index at every router.
func (d *Dragonfly) GlobalPortBase() int { return d.globalPortBase }

// IsGlobalPort reports whether port p of a router drives a global link.
func (d *Dragonfly) IsGlobalPort(p int) bool { return p >= d.globalPortBase }

// RandomRouterInGroup maps a value v (any non-negative int) to a router id
// within group grp, for intermediate-node selection.
func (d *Dragonfly) RandomRouterInGroup(grp, v int) int {
	return grp*d.A + v%d.A
}
