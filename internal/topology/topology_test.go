package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m, err := NewMesh(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRouters() != 64 || m.NumTerminals() != 64 {
		t.Fatalf("got %d routers, %d terminals", m.NumRouters(), m.NumTerminals())
	}
	if got := len(m.Links()); got != 2*(7*8+7*8) {
		t.Fatalf("link count = %d, want %d", got, 2*2*7*8)
	}
	if !m.Connected() {
		t.Fatal("mesh not connected")
	}
	if d := m.Diameter(); d != 14 {
		t.Fatalf("diameter = %d, want 14", d)
	}
}

func TestMeshCoords(t *testing.T) {
	m, _ := NewMesh(4, 3, 1)
	for r := 0; r < 12; r++ {
		x, y := m.Coords(r)
		if m.RouterAt(x, y) != r {
			t.Fatalf("RouterAt(Coords(%d)) = %d", r, m.RouterAt(x, y))
		}
	}
	x, y := m.Coords(7)
	if x != 3 || y != 1 {
		t.Fatalf("Coords(7) = (%d,%d), want (3,1)", x, y)
	}
}

func TestMeshDistanceIsManhattan(t *testing.T) {
	m, _ := NewMesh(5, 4, 1)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	for a := 0; a < m.NumRouters(); a++ {
		for b := 0; b < m.NumRouters(); b++ {
			ax, ay := m.Coords(a)
			bx, by := m.Coords(b)
			want := abs(ax-bx) + abs(ay-by)
			if got := m.Distance(a, b); got != want {
				t.Fatalf("Distance(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMeshDirectionalPorts(t *testing.T) {
	m, _ := NewMesh(3, 3, 1)
	center := m.RouterAt(1, 1)
	cases := []struct {
		dir  Direction
		want int
	}{
		{North, m.RouterAt(1, 2)},
		{East, m.RouterAt(2, 1)},
		{South, m.RouterAt(1, 0)},
		{West, m.RouterAt(0, 1)},
	}
	for _, c := range cases {
		l, ok := m.OutLink(center, MeshPort(c.dir))
		if !ok {
			t.Fatalf("center router missing %v link", c.dir)
		}
		if l.Dst != c.want {
			t.Fatalf("%v neighbor = %d, want %d", c.dir, l.Dst, c.want)
		}
	}
	// Corner router 0 has no South/West links.
	if _, ok := m.OutLink(0, MeshPort(South)); ok {
		t.Fatal("corner has South link")
	}
	if _, ok := m.OutLink(0, MeshPort(West)); ok {
		t.Fatal("corner has West link")
	}
}

func TestMeshDirectionRoundTrip(t *testing.T) {
	for d := North; d < numDirections; d++ {
		if MeshDirection(MeshPort(d)) != d {
			t.Fatalf("direction round trip failed for %v", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MeshDirection(0) should panic")
		}
	}()
	MeshDirection(0)
}

func TestTorusDistance(t *testing.T) {
	m, err := NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wraparound: (0,0) to (3,0) is 1 hop in a 4-ary torus.
	if d := m.Distance(m.RouterAt(0, 0), m.RouterAt(3, 0)); d != 1 {
		t.Fatalf("torus wrap distance = %d, want 1", d)
	}
	if d := m.Diameter(); d != 4 {
		t.Fatalf("torus diameter = %d, want 4", d)
	}
}

func TestRing(t *testing.T) {
	r, err := NewRing(8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Connected() {
		t.Fatal("unidirectional ring should be connected")
	}
	if d := r.Distance(0, 7); d != 7 {
		t.Fatalf("ring distance 0->7 = %d, want 7 (unidirectional)", d)
	}
	bi, err := NewRing(8, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := bi.Distance(0, 7); d != 1 {
		t.Fatalf("bidi ring distance 0->7 = %d, want 1", d)
	}
}

func TestDragonflyPaper1024(t *testing.T) {
	d, err := NewDragonfly(4, 8, 4, 32, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTerminals() != 1024 {
		t.Fatalf("terminals = %d, want 1024", d.NumTerminals())
	}
	if d.NumRouters() != 256 {
		t.Fatalf("routers = %d, want 256", d.NumRouters())
	}
	if !d.Connected() {
		t.Fatal("dragonfly not connected")
	}
	// Minimal diameter of a fully group-connected dragonfly is 3:
	// local hop, global hop, local hop.
	if dia := d.Diameter(); dia != 3 {
		t.Fatalf("diameter = %d, want 3", dia)
	}
}

func TestDragonflyGroupConnectivity(t *testing.T) {
	d, err := NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every pair of groups must share at least one global channel.
	pair := make(map[[2]int]bool)
	for _, l := range d.Links() {
		ga, gb := d.Group(l.Src), d.Group(l.Dst)
		if ga != gb {
			pair[[2]int{ga, gb}] = true
		}
	}
	for a := 0; a < d.G; a++ {
		for b := 0; b < d.G; b++ {
			if a != b && !pair[[2]int{a, b}] {
				t.Fatalf("groups %d and %d not connected", a, b)
			}
		}
	}
}

func TestDragonflyPortLayout(t *testing.T) {
	d, _ := NewDragonfly(4, 8, 4, 32, 1, 3)
	if d.GlobalPortBase() != 4+8-1 {
		t.Fatalf("global port base = %d, want 11", d.GlobalPortBase())
	}
	for r := 0; r < d.NumRouters(); r++ {
		if d.LocalPorts(r) != 4 {
			t.Fatalf("router %d has %d terminal ports, want 4", r, d.LocalPorts(r))
		}
		if d.Radix(r) != 4+7+4 {
			t.Fatalf("router %d radix = %d, want 15", r, d.Radix(r))
		}
	}
	// Terminal t attaches to router t/4.
	if d.TerminalRouter(17) != 4 {
		t.Fatalf("terminal 17 router = %d, want 4", d.TerminalRouter(17))
	}
}

func TestDragonflyGlobalLinkLatency(t *testing.T) {
	d, _ := NewDragonfly(4, 8, 4, 32, 1, 3)
	for _, l := range d.Links() {
		inter := d.Group(l.Src) != d.Group(l.Dst)
		if inter && l.Latency != 3 {
			t.Fatalf("inter-group link latency = %d, want 3", l.Latency)
		}
		if !inter && l.Latency != 1 {
			t.Fatalf("intra-group link latency = %d, want 1", l.Latency)
		}
	}
}

func TestMinimalPortsLeadCloser(t *testing.T) {
	tops := []Topology{
		mustMesh(t, 6, 6),
		mustDfly(t),
	}
	for _, top := range tops {
		for r := 0; r < top.NumRouters(); r += 7 {
			for dst := 0; dst < top.NumRouters(); dst += 11 {
				if r == dst {
					continue
				}
				ports := top.MinimalPorts(r, dst)
				if len(ports) == 0 {
					t.Fatalf("%s: no minimal port %d->%d", top.Name(), r, dst)
				}
				for _, p := range ports {
					l, ok := top.OutLink(r, p)
					if !ok {
						t.Fatalf("%s: minimal port %d at %d has no link", top.Name(), p, r)
					}
					if top.Distance(l.Dst, dst) != top.Distance(r, dst)-1 {
						t.Fatalf("%s: port %d at %d not minimal toward %d", top.Name(), p, r, dst)
					}
				}
			}
		}
	}
}

func TestIrregularMeshStaysConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, err := NewIrregularMesh(8, 8, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.RemovedPairs) == 0 {
		t.Fatal("no links removed")
	}
	if !m.Connected() {
		t.Fatal("irregular mesh disconnected")
	}
	if got := len(m.Links()); got >= 2*2*7*8 {
		t.Fatalf("links not removed: %d", got)
	}
}

func TestIrregularMeshDeterministic(t *testing.T) {
	a, _ := NewIrregularMesh(6, 6, 1, 5, rand.New(rand.NewSource(7)))
	b, _ := NewIrregularMesh(6, 6, 1, 5, rand.New(rand.NewSource(7)))
	if len(a.RemovedPairs) != len(b.RemovedPairs) {
		t.Fatal("same seed produced different fault sets")
	}
	for i := range a.RemovedPairs {
		if a.RemovedPairs[i] != b.RemovedPairs[i] {
			t.Fatal("same seed produced different fault sets")
		}
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph("bad", 2, []int{0, 5}, nil); err == nil {
		t.Fatal("invalid terminal router accepted")
	}
	if _, err := NewGraph("bad", 2, []int{0, 1}, []Link{{Src: 0, SrcPort: 1, Dst: 5, DstPort: 1, Latency: 1}}); err == nil {
		t.Fatal("invalid link dst accepted")
	}
	if _, err := NewGraph("bad", 2, []int{0, 1}, []Link{{Src: 0, SrcPort: 1, Dst: 1, DstPort: 1, Latency: 0}}); err == nil {
		t.Fatal("zero latency accepted")
	}
	if _, err := NewGraph("bad", 2, []int{0, 1}, []Link{{Src: 0, SrcPort: 0, Dst: 1, DstPort: 1, Latency: 1}}); err == nil {
		t.Fatal("link on terminal port accepted")
	}
	if _, err := NewGraph("bad", 2, []int{0, 1}, []Link{
		{Src: 0, SrcPort: 1, Dst: 1, DstPort: 1, Latency: 1},
		{Src: 0, SrcPort: 1, Dst: 1, DstPort: 2, Latency: 1},
	}); err == nil {
		t.Fatal("duplicate source port accepted")
	}
}

func TestDragonflyValidation(t *testing.T) {
	if _, err := NewDragonfly(2, 2, 1, 9, 1, 3); err == nil {
		t.Fatal("under-connected dragonfly accepted")
	}
	if _, err := NewDragonfly(0, 2, 1, 2, 1, 3); err == nil {
		t.Fatal("p=0 accepted")
	}
}

// Property: in any mesh, distance is symmetric and satisfies the triangle
// inequality.
func TestMeshDistanceMetricProperties(t *testing.T) {
	m, _ := NewMesh(7, 5, 1)
	n := m.NumRouters()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		if m.Distance(x, y) != m.Distance(y, x) {
			return false
		}
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mustMesh(t *testing.T, x, y int) *Mesh {
	t.Helper()
	m, err := NewMesh(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustDfly(t *testing.T) *Dragonfly {
	t.Helper()
	d, err := NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
