package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property-based structural tests: every generated topology — whatever
// its parameters — must have symmetric links with mirrored port wiring
// and all-pairs reachability under the default (minimal-port) routing
// table. These are the assumptions the simulator's credit flow, the SPIN
// probe walk, and the CDG analysis all build on.

// generatedTopologies enumerates a spread of instances per family.
func generatedTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	out := map[string]Topology{}
	add := func(name string, topo Topology, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = topo
	}
	for _, d := range []struct{ x, y int }{{2, 2}, {3, 3}, {4, 4}, {5, 3}, {8, 8}, {2, 7}} {
		m, err := NewMesh(d.x, d.y, 1)
		add(fmt.Sprintf("mesh:%dx%d", d.x, d.y), m, err)
		if d.x > 2 || d.y > 2 { // wrap channels only exist for dims > 2
			tr, err := NewTorus(d.x, d.y, 1)
			add(fmt.Sprintf("torus:%dx%d", d.x, d.y), tr, err)
		}
	}
	for _, p := range []struct{ p, a, h, g int }{{1, 2, 1, 3}, {2, 4, 2, 9}} {
		df, err := NewDragonfly(p.p, p.a, p.h, p.g, 1, 3)
		add(fmt.Sprintf("dragonfly:%d,%d,%d,%d", p.p, p.a, p.h, p.g), df, err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		j, err := NewJellyfish(12, 2, 3, 1, rand.New(rand.NewSource(seed)))
		add(fmt.Sprintf("jellyfish:12,2,3/seed%d", seed), j, err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		im, err := NewIrregularMesh(4, 4, 1, 3, rand.New(rand.NewSource(seed)))
		add(fmt.Sprintf("irregular:4x4:3/seed%d", seed), im, err)
	}
	ft, err := NewFatTree(4, 2, 2, 1)
	add("fattree:4,2,2", ft, err)
	return out
}

// TestLinksAreSymmetricPairs: for every directed link A.p -> B.q there
// is the mirrored reverse link B.q -> A.p with the same latency — the
// port a router receives on is the port it sends back on.
func TestLinksAreSymmetricPairs(t *testing.T) {
	for name, topo := range generatedTopologies(t) {
		t.Run(name, func(t *testing.T) {
			type end struct{ r, p int }
			fwd := map[[2]end]int{}
			for _, l := range topo.Links() {
				fwd[[2]end{{l.Src, l.SrcPort}, {l.Dst, l.DstPort}}] = l.Latency
			}
			for _, l := range topo.Links() {
				lat, ok := fwd[[2]end{{l.Dst, l.DstPort}, {l.Src, l.SrcPort}}]
				if !ok {
					t.Fatalf("link r%d.p%d -> r%d.p%d has no mirrored reverse", l.Src, l.SrcPort, l.Dst, l.DstPort)
				}
				if lat != l.Latency {
					t.Fatalf("link r%d.p%d <-> r%d.p%d latency asymmetric: %d vs %d", l.Src, l.SrcPort, l.Dst, l.DstPort, l.Latency, lat)
				}
			}
		})
	}
}

// TestPortWiringIsConsistent: OutLink is injective per (router, port),
// agrees with Links(), and never collides with terminal ports.
func TestPortWiringIsConsistent(t *testing.T) {
	for name, topo := range generatedTopologies(t) {
		t.Run(name, func(t *testing.T) {
			seen := map[[2]int]Link{}
			for _, l := range topo.Links() {
				key := [2]int{l.Src, l.SrcPort}
				if prev, dup := seen[key]; dup {
					t.Fatalf("r%d port %d drives two links: %+v and %+v", l.Src, l.SrcPort, prev, l)
				}
				seen[key] = l
				got, ok := topo.OutLink(l.Src, l.SrcPort)
				if !ok || got != l {
					t.Fatalf("OutLink(r%d, p%d) = %+v, %v; want %+v", l.Src, l.SrcPort, got, ok, l)
				}
				if l.SrcPort < topo.LocalPorts(l.Src) {
					t.Fatalf("link r%d.p%d claims a terminal port (%d local)", l.Src, l.SrcPort, topo.LocalPorts(l.Src))
				}
				if l.SrcPort >= topo.Radix(l.Src) || l.DstPort >= topo.Radix(l.Dst) {
					t.Fatalf("link %+v outside radix (%d, %d)", l, topo.Radix(l.Src), topo.Radix(l.Dst))
				}
			}
			// Terminals attach to in-range routers on terminal ports.
			for term := 0; term < topo.NumTerminals(); term++ {
				r := topo.TerminalRouter(term)
				if r < 0 || r >= topo.NumRouters() {
					t.Fatalf("terminal %d on router %d of %d", term, r, topo.NumRouters())
				}
				if p := topo.TerminalPort(term); p >= topo.LocalPorts(r) {
					t.Fatalf("terminal %d uses port %d but router %d has %d local ports", term, p, r, topo.LocalPorts(r))
				}
			}
		})
	}
}

// TestAllPairsReachableViaMinimalPorts: from every router, every other
// router is reachable by greedily following the default routing table
// (MinimalPorts), with the distance dropping by exactly one per hop —
// the routing table is total and loop-free.
func TestAllPairsReachableViaMinimalPorts(t *testing.T) {
	for name, topo := range generatedTopologies(t) {
		t.Run(name, func(t *testing.T) {
			n := topo.NumRouters()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					cur, dist := src, topo.Distance(src, dst)
					if dist <= 0 {
						t.Fatalf("Distance(%d,%d) = %d for distinct routers", src, dst, dist)
					}
					for steps := 0; cur != dst; steps++ {
						if steps > dist {
							t.Fatalf("minimal walk %d->%d exceeded distance %d", src, dst, dist)
						}
						ports := topo.MinimalPorts(cur, dst)
						if len(ports) == 0 {
							t.Fatalf("MinimalPorts(%d,%d) empty en route %d->%d", cur, dst, src, dst)
						}
						// Every advertised port must reduce the distance.
						for _, p := range ports {
							l, ok := topo.OutLink(cur, p)
							if !ok {
								t.Fatalf("MinimalPorts(%d,%d) lists unwired port %d", cur, dst, p)
							}
							if topo.Distance(l.Dst, dst) != topo.Distance(cur, dst)-1 {
								t.Fatalf("port %d at r%d toward r%d does not reduce distance", p, cur, dst)
							}
						}
						l, _ := topo.OutLink(cur, ports[0])
						cur = l.Dst
					}
				}
			}
		})
	}
}

// TestGeneratedTopologiesConnected: the underlying graphs are connected
// (Distance is finite everywhere, which the walks above rely on).
func TestGeneratedTopologiesConnected(t *testing.T) {
	for name, topo := range generatedTopologies(t) {
		g, ok := topo.(interface{ Connected() bool })
		if !ok {
			continue
		}
		if !g.Connected() {
			t.Errorf("%s is not connected", name)
		}
	}
}
