package topology

import (
	"fmt"
	"math/rand"
)

// Jellyfish is the random regular-graph datacenter topology of Singla et
// al. (NSDI 2012) — the paper's opening motivation for topology-agnostic
// deadlock freedom: no turn model or escape-VC construction exists for an
// arbitrary random graph, but SPIN works unchanged.
//
// Each of N switches has P terminal ports and Degree network ports, wired
// by the classic Jellyfish procedure: connect random unsaturated switch
// pairs; when stuck with one switch holding two free ports, break a
// random existing link and splice the switch in.
type Jellyfish struct {
	*Graph
	N, P, Degree int
}

// NewJellyfish builds a random Jellyfish with n switches, p terminals per
// switch and the given network degree, using rng for the wiring. It
// retries until the graph is connected (a handful of attempts suffice for
// degree >= 3).
func NewJellyfish(n, p, degree, linkLatency int, rng *rand.Rand) (*Jellyfish, error) {
	if n < 4 || degree < 2 || degree >= n || p < 1 {
		return nil, fmt.Errorf("topology: invalid jellyfish n=%d p=%d degree=%d", n, p, degree)
	}
	if n*degree%2 != 0 {
		return nil, fmt.Errorf("topology: jellyfish needs n*degree even, got %d*%d", n, degree)
	}
	for attempt := 0; attempt < 32; attempt++ {
		g, err := buildJellyfish(n, p, degree, linkLatency, rng)
		if err != nil {
			continue
		}
		if g.Connected() {
			return &Jellyfish{Graph: g, N: n, P: p, Degree: degree}, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build a connected jellyfish (n=%d, degree=%d)", n, degree)
}

func buildJellyfish(n, p, degree, lat int, rng *rand.Rand) (*Graph, error) {
	type edge struct{ a, b int }
	free := make([]int, n) // free network ports per switch
	for i := range free {
		free[i] = degree
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	var edges []edge
	addEdge := func(a, b int) {
		adj[a][b] = true
		adj[b][a] = true
		free[a]--
		free[b]--
		edges = append(edges, edge{a, b})
	}
	removeEdge := func(i int) edge {
		e := edges[i]
		edges[i] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
		delete(adj[e.a], e.b)
		delete(adj[e.b], e.a)
		free[e.a]++
		free[e.b]++
		return e
	}
	candidates := func() (int, int, bool) {
		var open []int
		for s, f := range free {
			if f > 0 {
				open = append(open, s)
			}
		}
		rng.Shuffle(len(open), func(i, j int) { open[i], open[j] = open[j], open[i] })
		for i := 0; i < len(open); i++ {
			for j := i + 1; j < len(open); j++ {
				a, b := open[i], open[j]
				if !adj[a][b] {
					return a, b, true
				}
			}
		}
		return 0, 0, false
	}
	for guard := 0; guard < n*degree*4; guard++ {
		a, b, ok := candidates()
		if ok {
			addEdge(a, b)
			continue
		}
		// No pair available: either done, or one switch holds >= 2 free
		// ports — splice it into a random existing link.
		var stuck = -1
		for s, f := range free {
			if f >= 2 {
				stuck = s
				break
			}
		}
		if stuck < 0 {
			break
		}
		if len(edges) == 0 {
			return nil, fmt.Errorf("topology: jellyfish wiring stuck with no edges")
		}
		for try := 0; try < 16; try++ {
			e := edges[rng.Intn(len(edges))]
			if e.a == stuck || e.b == stuck || adj[stuck][e.a] || adj[stuck][e.b] {
				continue
			}
			for i := range edges {
				if edges[i] == e {
					removeEdge(i)
					break
				}
			}
			addEdge(stuck, e.a)
			addEdge(stuck, e.b)
			break
		}
	}
	// Materialise ports: terminals 0..p-1, network ports p..p+degree-1 in
	// edge order per switch.
	nextPort := make([]int, n)
	for i := range nextPort {
		nextPort[i] = p
	}
	var links []Link
	for _, e := range edges {
		pa, pb := nextPort[e.a], nextPort[e.b]
		nextPort[e.a]++
		nextPort[e.b]++
		links = append(links,
			Link{Src: e.a, SrcPort: pa, Dst: e.b, DstPort: pb, Latency: lat},
			Link{Src: e.b, SrcPort: pb, Dst: e.a, DstPort: pa, Latency: lat})
	}
	terms := make([]int, n*p)
	for t := range terms {
		terms[t] = t / p
	}
	g, err := NewGraph(fmt.Sprintf("jellyfish_n%dd%d", n, degree), n, terms, links)
	if err != nil {
		return nil, err
	}
	g.ensureRadix(p + degree)
	return g, nil
}

// FatTree is a folded-Clos (k-ary fat-tree style) indirect topology with
// two switch levels: E edge switches each hosting P terminals, and S
// spine switches each connected to every edge switch. Minimal routing is
// edge -> spine -> edge; like the dragonfly it is covered by the generic
// BFS minimal ports.
type FatTree struct {
	*Graph
	Edges, Spines, P int
}

// NewFatTree builds the two-level folded Clos.
func NewFatTree(edges, spines, p, linkLatency int) (*FatTree, error) {
	if edges < 2 || spines < 1 || p < 1 {
		return nil, fmt.Errorf("topology: invalid fattree e=%d s=%d p=%d", edges, spines, p)
	}
	n := edges + spines
	// Switch ids: [0, edges) edge switches, [edges, n) spines.
	terms := make([]int, edges*p)
	for t := range terms {
		terms[t] = t / p
	}
	var links []Link
	for e := 0; e < edges; e++ {
		for s := 0; s < spines; s++ {
			edgePort := p + s
			spinePort := e // spines host no terminals
			sw := edges + s
			links = append(links,
				Link{Src: e, SrcPort: edgePort, Dst: sw, DstPort: spinePort, Latency: linkLatency},
				Link{Src: sw, SrcPort: spinePort, Dst: e, DstPort: edgePort, Latency: linkLatency})
		}
	}
	g, err := NewGraph(fmt.Sprintf("fattree_e%ds%d", edges, spines), n, terms, links)
	if err != nil {
		return nil, err
	}
	return &FatTree{Graph: g, Edges: edges, Spines: spines, P: p}, nil
}
