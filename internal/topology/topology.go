// Package topology models interconnection-network topologies as directed
// graphs of routers, ports and links.
//
// Routers are numbered 0..NumRouters()-1. Each router exposes a set of
// ports; ports [0, LocalPorts(r)) attach terminals (network interfaces),
// the rest attach inter-router links. A Link is a directed channel with a
// latency in cycles; bidirectional physical channels are represented as a
// pair of Links. The Graph type supplies adjacency and all-pairs hop-count
// queries that topology-agnostic routing (and SPIN itself) rely on.
package topology

import (
	"fmt"
	"sort"
)

// Link is a directed channel between an output port of router Src and an
// input port of router Dst. Latency is the traversal time in cycles and
// must be at least 1.
type Link struct {
	Src, Dst         int
	SrcPort, DstPort int
	Latency          int
}

// Topology describes a network: its routers, terminals, and links.
//
// Port numbering convention: at router r, ports [0, LocalPorts(r)) are
// terminal (injection/ejection) ports; link ports occupy the remainder of
// [0, Radix(r)).
type Topology interface {
	// Name identifies the topology (e.g. "mesh8x8").
	Name() string
	// NumRouters reports the number of routers.
	NumRouters() int
	// NumTerminals reports the number of attached terminals (NICs).
	NumTerminals() int
	// TerminalRouter reports the router terminal t attaches to.
	TerminalRouter(t int) int
	// TerminalPort reports the local port at TerminalRouter(t) where
	// terminal t attaches.
	TerminalPort(t int) int
	// LocalPorts reports how many terminal ports router r has.
	LocalPorts(r int) int
	// Radix reports the total number of ports at router r.
	Radix(r int) int
	// Links returns every directed link. The slice must not be mutated.
	Links() []Link
	// OutLink resolves the link leaving router r via port p, if any.
	OutLink(r, p int) (Link, bool)
	// Distance reports the minimal hop count between routers a and b,
	// or -1 if b is unreachable from a.
	Distance(a, b int) int
	// MinimalPorts returns the output ports at router r that lie on some
	// minimal path toward router dst. The slice must not be mutated.
	MinimalPorts(r, dst int) []int
}

// Graph is a concrete Topology built from an explicit link list. Concrete
// topologies (Mesh, Dragonfly, ...) embed Graph and add coordinate helpers.
type Graph struct {
	name      string
	routers   int
	termOf    []int // terminal -> router
	termPort  []int // terminal -> local port
	localCnt  []int // router -> #terminal ports
	radix     []int // router -> total ports
	links     []Link
	outLink   [][]int // [router][port] -> index into links, or -1
	dist      [][]int16
	// Minimal out ports are stored as one flat pool indexed by offsets:
	// the ports for (r, dst) live in minPorts[minOff[r*routers+dst] :
	// minOff[r*routers+dst+1]]. A per-pair [][]int8 costs one allocation
	// per (router, dst) pair — ~16.7M slices at 4096 routers — while the
	// flat form is two allocations regardless of scale.
	minOff    []int32
	minPorts  []int8
	neighbors [][]int // [router] -> outgoing link indices
}

// NewGraph assembles a Graph. terminals[t] gives the router each terminal
// attaches to; terminal ports are assigned in order of appearance at each
// router. Link ports must be numbered >= the number of terminals at their
// router; NewGraph validates consistency and precomputes distances.
func NewGraph(name string, routers int, terminals []int, links []Link) (*Graph, error) {
	g := &Graph{
		name:     name,
		routers:  routers,
		termOf:   append([]int(nil), terminals...),
		localCnt: make([]int, routers),
		radix:    make([]int, routers),
		links:    append([]Link(nil), links...),
	}
	g.termPort = make([]int, len(terminals))
	for t, r := range terminals {
		if r < 0 || r >= routers {
			return nil, fmt.Errorf("topology %s: terminal %d attaches to invalid router %d", name, t, r)
		}
		g.termPort[t] = g.localCnt[r]
		g.localCnt[r]++
	}
	for r := 0; r < routers; r++ {
		g.radix[r] = g.localCnt[r]
	}
	for i, l := range g.links {
		if l.Src < 0 || l.Src >= routers || l.Dst < 0 || l.Dst >= routers {
			return nil, fmt.Errorf("topology %s: link %d connects invalid routers %d->%d", name, i, l.Src, l.Dst)
		}
		if l.Latency < 1 {
			return nil, fmt.Errorf("topology %s: link %d has latency %d < 1", name, i, l.Latency)
		}
		if l.SrcPort < g.localCnt[l.Src] || l.DstPort < g.localCnt[l.Dst] {
			return nil, fmt.Errorf("topology %s: link %d uses a terminal port", name, i)
		}
		if l.SrcPort+1 > g.radix[l.Src] {
			g.radix[l.Src] = l.SrcPort + 1
		}
		if l.DstPort+1 > g.radix[l.Dst] {
			g.radix[l.Dst] = l.DstPort + 1
		}
	}
	g.outLink = make([][]int, routers)
	for r := 0; r < routers; r++ {
		g.outLink[r] = make([]int, g.radix[r])
		for p := range g.outLink[r] {
			g.outLink[r][p] = -1
		}
	}
	inSeen := make(map[[2]int]bool)
	for i, l := range g.links {
		if g.outLink[l.Src][l.SrcPort] != -1 {
			return nil, fmt.Errorf("topology %s: two links leave router %d port %d", name, l.Src, l.SrcPort)
		}
		g.outLink[l.Src][l.SrcPort] = i
		key := [2]int{l.Dst, l.DstPort}
		if inSeen[key] {
			return nil, fmt.Errorf("topology %s: two links enter router %d port %d", name, l.Dst, l.DstPort)
		}
		inSeen[key] = true
	}
	g.neighbors = make([][]int, routers)
	for i, l := range g.links {
		g.neighbors[l.Src] = append(g.neighbors[l.Src], i)
	}
	g.computeDistances()
	g.computeMinimalPorts()
	return g, nil
}

func (g *Graph) computeDistances() {
	g.dist = make([][]int16, g.routers)
	queue := make([]int, 0, g.routers)
	for s := 0; s < g.routers; s++ {
		d := make([]int16, g.routers)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, li := range g.neighbors[r] {
				n := g.links[li].Dst
				if d[n] == -1 {
					d[n] = d[r] + 1
					queue = append(queue, n)
				}
			}
		}
		g.dist[s] = d
	}
}

func (g *Graph) computeMinimalPorts() {
	g.minOff = make([]int32, g.routers*g.routers+1)
	g.minPorts = g.minPorts[:0]
	var scratch []int8
	for r := 0; r < g.routers; r++ {
		for dst := 0; dst < g.routers; dst++ {
			g.minOff[r*g.routers+dst] = int32(len(g.minPorts))
			if r == dst || g.dist[r][dst] < 0 {
				continue
			}
			scratch = scratch[:0]
			for _, li := range g.neighbors[r] {
				l := g.links[li]
				if g.dist[l.Dst][dst] >= 0 && g.dist[l.Dst][dst] == g.dist[r][dst]-1 {
					scratch = append(scratch, int8(l.SrcPort))
				}
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			g.minPorts = append(g.minPorts, scratch...)
		}
	}
	g.minOff[g.routers*g.routers] = int32(len(g.minPorts))
}

// minimalAt returns the pooled minimal-port slice for (r, dst).
func (g *Graph) minimalAt(r, dst int) []int8 {
	i := r*g.routers + dst
	return g.minPorts[g.minOff[i]:g.minOff[i+1]]
}

// Name implements Topology.
func (g *Graph) Name() string { return g.name }

// NumRouters implements Topology.
func (g *Graph) NumRouters() int { return g.routers }

// NumTerminals implements Topology.
func (g *Graph) NumTerminals() int { return len(g.termOf) }

// TerminalRouter implements Topology.
func (g *Graph) TerminalRouter(t int) int { return g.termOf[t] }

// TerminalPort implements Topology.
func (g *Graph) TerminalPort(t int) int { return g.termPort[t] }

// LocalPorts implements Topology.
func (g *Graph) LocalPorts(r int) int { return g.localCnt[r] }

// Radix implements Topology.
func (g *Graph) Radix(r int) int { return g.radix[r] }

// Links implements Topology.
func (g *Graph) Links() []Link { return g.links }

// OutLink implements Topology.
func (g *Graph) OutLink(r, p int) (Link, bool) {
	if r < 0 || r >= g.routers || p < 0 || p >= len(g.outLink[r]) {
		return Link{}, false
	}
	li := g.outLink[r][p]
	if li < 0 {
		return Link{}, false
	}
	return g.links[li], true
}

// Distance implements Topology.
func (g *Graph) Distance(a, b int) int { return int(g.dist[a][b]) }

// MinimalPorts implements Topology.
func (g *Graph) MinimalPorts(r, dst int) []int {
	ports := g.minimalAt(r, dst)
	out := make([]int, len(ports))
	for i, p := range ports {
		out[i] = int(p)
	}
	return out
}

// MinimalPortsInto appends the minimal output ports of r toward dst to buf
// and returns it, avoiding allocation on hot paths.
func (g *Graph) MinimalPortsInto(buf []int, r, dst int) []int {
	for _, p := range g.minimalAt(r, dst) {
		buf = append(buf, int(p))
	}
	return buf
}

// ensureRadix grows every router's declared radix to at least min, leaving
// the extra ports unwired. Regular topologies use it so that spare channels
// (e.g. an unused dragonfly global port) still count toward the radix.
func (g *Graph) ensureRadix(min int) {
	for r := range g.radix {
		for len(g.outLink[r]) < min {
			g.outLink[r] = append(g.outLink[r], -1)
		}
		if g.radix[r] < min {
			g.radix[r] = min
		}
	}
}

// Connected reports whether every router can reach every other router.
func (g *Graph) Connected() bool {
	for a := 0; a < g.routers; a++ {
		for b := 0; b < g.routers; b++ {
			if g.dist[a][b] < 0 {
				return false
			}
		}
	}
	return true
}

// Diameter reports the maximum finite router-to-router distance.
func (g *Graph) Diameter() int {
	max := 0
	for a := 0; a < g.routers; a++ {
		for b := 0; b < g.routers; b++ {
			if d := int(g.dist[a][b]); d > max {
				max = d
			}
		}
	}
	return max
}
