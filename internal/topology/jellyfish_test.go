package topology

import (
	"math/rand"
	"testing"
)

func TestJellyfishBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	j, err := NewJellyfish(16, 2, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRouters() != 16 || j.NumTerminals() != 32 {
		t.Fatalf("got %d routers, %d terminals", j.NumRouters(), j.NumTerminals())
	}
	if !j.Connected() {
		t.Fatal("jellyfish not connected")
	}
	// Degree check: each switch has at most Degree network links and the
	// total is n*degree (regular up to splice slack).
	total := len(j.Links())
	if total > 16*4 {
		t.Fatalf("too many directed links: %d", total)
	}
	for r := 0; r < 16; r++ {
		out := 0
		for p := j.LocalPorts(r); p < j.Radix(r); p++ {
			if _, ok := j.OutLink(r, p); ok {
				out++
			}
		}
		if out > 4 {
			t.Fatalf("switch %d exceeds degree: %d", r, out)
		}
		if out < 2 {
			t.Fatalf("switch %d underwired: %d", r, out)
		}
	}
}

func TestJellyfishDeterministicPerSeed(t *testing.T) {
	a, err := NewJellyfish(12, 1, 3, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJellyfish(12, 1, 3, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatal("same seed, different wiring")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed, different wiring")
		}
	}
}

func TestJellyfishValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewJellyfish(3, 1, 2, 1, rng); err == nil {
		t.Fatal("tiny jellyfish accepted")
	}
	if _, err := NewJellyfish(9, 1, 3, 1, rng); err == nil {
		t.Fatal("odd n*degree accepted")
	}
	if _, err := NewJellyfish(8, 0, 3, 1, rng); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestJellyfishMinimalPortsWork(t *testing.T) {
	j, err := NewJellyfish(16, 1, 4, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			if len(j.MinimalPorts(a, b)) == 0 {
				t.Fatalf("no minimal ports %d->%d", a, b)
			}
		}
	}
}

func TestFatTreeBasics(t *testing.T) {
	ft, err := NewFatTree(8, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumTerminals() != 32 {
		t.Fatalf("terminals = %d, want 32", ft.NumTerminals())
	}
	if ft.NumRouters() != 12 {
		t.Fatalf("routers = %d, want 12", ft.NumRouters())
	}
	if !ft.Connected() {
		t.Fatal("fattree not connected")
	}
	// Minimal distance between terminals on different edge switches is 2
	// (edge -> spine -> edge).
	if d := ft.Distance(0, 1); d != 2 {
		t.Fatalf("edge-to-edge distance = %d, want 2", d)
	}
	if dia := ft.Diameter(); dia != 2 {
		t.Fatalf("diameter = %d, want 2", dia)
	}
	// Path diversity: every spine offers a minimal path.
	if got := len(ft.MinimalPorts(0, 1)); got != 4 {
		t.Fatalf("minimal ports edge->edge = %d, want 4 (one per spine)", got)
	}
}

func TestFatTreeValidation(t *testing.T) {
	if _, err := NewFatTree(1, 2, 2, 1); err == nil {
		t.Fatal("single-edge fattree accepted")
	}
	if _, err := NewFatTree(4, 0, 2, 1); err == nil {
		t.Fatal("spineless fattree accepted")
	}
}

// Property: every canonical dragonfly hop makes progress — the remaining
// BFS distance after taking it never exceeds the distance before it, for
// every (router, destination) pair.
func TestDragonflyCanonicalHopsNeverRegress(t *testing.T) {
	d, err := NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.NumRouters(); r++ {
		for dst := 0; dst < d.NumRouters(); dst++ {
			if r == dst {
				continue
			}
			ports := d.CanonicalMinimalPorts(r, dst)
			if len(ports) == 0 {
				t.Fatalf("no canonical port %d->%d", r, dst)
			}
			bfs := d.Distance(r, dst)
			for _, p := range ports {
				l, ok := d.OutLink(r, p)
				if !ok {
					t.Fatalf("canonical port %d at %d unwired", p, r)
				}
				// Walking the canonical hop must not lengthen the rest of
				// the journey beyond the canonical 3-hop structure.
				rest := d.Distance(l.Dst, dst)
				if rest > bfs {
					t.Fatalf("canonical hop %d->%d regresses: %d then %d (bfs %d)", r, l.Dst, bfs, rest, bfs)
				}
			}
		}
	}
}
