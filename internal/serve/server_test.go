package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/harness"
)

// newTestServer builds a Server over a fresh store. Callers must Close.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Cache == nil {
		store, err := cache.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = store
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// smallScenario is a fast 4x4-mesh point, the same shape as the paper's
// fig-7 sweep entries but sized for test latency.
const smallScenario = `{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1}`

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestSimulateRoundTripAndCacheHit is the tentpole acceptance check: a
// real simulation round-trips through /v1/simulate, and the identical
// request replays byte-for-byte from the cache, fast.
func TestSimulateRoundTripAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	var resp SimResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key != first.Header().Get("X-Cache-Key") {
		t.Fatalf("body key %q != header key %q", resp.Key, first.Header().Get("X-Cache-Key"))
	}
	if resp.Stats.Injected == 0 || resp.Stats.Ejected == 0 {
		t.Fatalf("simulation moved no traffic: %+v", resp.Stats)
	}
	// The canonical request is echoed back with defaults made explicit.
	if resp.Request.VNets == 0 || resp.Request.VCDepth == 0 {
		t.Fatalf("request echo not normalized: %+v", resp.Request)
	}

	start := time.Now()
	second := post(t, s.Handler(), "/v1/simulate", smallScenario)
	elapsed := time.Since(start)
	if second.Code != http.StatusOK {
		t.Fatalf("repeat status = %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit is not byte-identical to the original response")
	}
	// The paper-facing bound is 10ms; tests allow CI-grade jitter.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cache hit took %v", elapsed)
	}

	// A semantically identical spelling (defaults written out) hits too.
	explicit := `{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1,"vnets":1,"vcs_per_vnet":1,"vc_depth":5,"data_frac":0.5,"tdd":128}`
	third := post(t, s.Handler(), "/v1/simulate", explicit)
	if got := third.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("equivalent spelling X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Fatal("equivalent spelling returned different bytes")
	}
}

// TestSimulateSingleflight pins the dedup acceptance criterion: eight
// concurrent identical requests cost exactly one simulation, with the
// other seven joining the in-flight computation.
func TestSimulateSingleflight(t *testing.T) {
	var computes atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 4})
	s.testCompute = func(ctx context.Context, req SimRequest) ([]byte, error) {
		computes.Add(1)
		<-release
		return []byte(`{"ok":true}`), nil
	}

	const clients = 8
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, clients)
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(t, s.Handler(), "/v1/simulate", smallScenario)
		}(i)
	}
	// Wait until all the late arrivals have joined the flight, then let
	// the single leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for s.store.Snapshot().Shared < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never joined: %+v", s.store.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("ran %d simulations for %d identical requests, want 1", n, clients)
	}
	st := s.store.Snapshot()
	if st.Misses != 1 || st.Shared != clients-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared", st, clients-1)
	}
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
}

// TestQueueFullSheds pins the backpressure path: with the one worker
// busy and the one queue slot taken, the next distinct request is shed
// with 429 and a Retry-After hint.
func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	s.testCompute = func(ctx context.Context, req SimRequest) ([]byte, error) {
		<-release
		return []byte(`{}`), nil
	}
	defer close(release)

	body := func(seed int) string {
		return fmt.Sprintf(`{"topology":"mesh:4x4","routing":"min_adaptive","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":%d}`, seed)
	}
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			post(t, s.Handler(), "/v1/simulate", body(i))
			done <- struct{}{}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, r := s.pool.Depth(); q == 1 && r == 1 {
			break
		}
		if time.Now().After(deadline) {
			q, r := s.pool.Depth()
			t.Fatalf("pool never filled: queued=%d running=%d", q, r)
		}
		time.Sleep(time.Millisecond)
	}

	rec := post(t, s.Handler(), "/v1/simulate", body(2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestPanicBecomes500 pins the resilience contract from the runner pool
// up through HTTP: a panicking job answers 500 naming the job key, is
// never cached, and the daemon keeps serving.
func TestPanicBecomes500(t *testing.T) {
	s := newTestServer(t, Config{})
	s.testCompute = func(ctx context.Context, req SimRequest) ([]byte, error) {
		if req.Seed == 666 {
			panic("injected failure")
		}
		return []byte(`{}`), nil
	}
	evil := `{"topology":"mesh:4x4","routing":"min_adaptive","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":666}`
	rec := post(t, s.Handler(), "/v1/simulate", evil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	wantKey := cache.KeyOf(ResultVersion+"/simulate", SimRequest{Scenario: mustScenario(t, evil)}.canonical())
	if !strings.Contains(rec.Body.String(), wantKey) || !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("500 body does not name the panicked job: %s", rec.Body)
	}

	// The daemon survives and serves the next request normally.
	good := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if good.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d", good.Code)
	}
	// The failure was not cached: retrying the poisoned request computes
	// again (and panics again) rather than replaying an error.
	again := post(t, s.Handler(), "/v1/simulate", evil)
	if again.Code != http.StatusInternalServerError {
		t.Fatalf("retry status = %d, want 500 (recomputed)", again.Code)
	}
	if st := s.store.Snapshot(); st.Errors != 2 {
		t.Fatalf("errors cached? stats = %+v", st)
	}
}

// TestSweepMatchesCLIEncoding pins the anti-drift guarantee: the
// /v1/sweep response body is byte-identical to what spinsweep -json
// prints, because both are exp.Sweep piped through exp.EncodeJSON.
func TestSweepMatchesCLIEncoding(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/sweep", `{"fig":"10"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	v, err := exp.Sweep(context.Background(), "10", exp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := exp.EncodeJSON(&want, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatalf("API bytes differ from CLI encoding:\n--- api ---\n%s\n--- cli ---\n%s", rec.Body, want.Bytes())
	}

	// And the repeat is a cache hit with the same bytes.
	again := post(t, s.Handler(), "/v1/sweep", `{"fig":"10","cycles":20000,"warmup":2000}`)
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("normalized repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(again.Body.Bytes(), want.Bytes()) {
		t.Fatal("cached sweep bytes drifted")
	}
}

// TestRequestValidation pins the 4xx surface.
func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxCycles: 10_000})
	h := s.Handler()

	get := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, get)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", rec.Code)
	}
	for name, body := range map[string]string{
		"malformed":     `{"topology":`,
		"unknown field": `{"topology":"mesh:4x4","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1,"bogus":1}`,
		"no traffic":    `{"topology":"mesh:4x4","rate":0.05,"cycles":1000,"seed":1}`,
		"zero rate":     `{"topology":"mesh:4x4","traffic":"uniform_random","rate":0,"cycles":1000,"seed":1}`,
		"over budget":   `{"topology":"mesh:4x4","traffic":"uniform_random","rate":0.05,"cycles":1000000,"seed":1}`,
	} {
		if rec := post(t, h, "/v1/simulate", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, rec.Code)
		}
	}
	if rec := post(t, h, "/v1/sweep", `{"fig":"nope"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown figure: status = %d, want 400", rec.Code)
	}
	// A request the specs reject only at construction time (unknown
	// topology name) maps to 400, not 500.
	if rec := post(t, h, "/v1/simulate", `{"topology":"klein_bottle:4","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown topology: status = %d, want 400", rec.Code)
	}
}

// TestMetricsExposition scrapes /metrics after some traffic and checks
// the text-format rendering.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	post(t, h, "/v1/simulate", smallScenario)
	post(t, h, "/v1/simulate", smallScenario) // cache hit

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`spind_requests_total{code="200",endpoint="simulate"} 2`,
		"spind_cache_hits_total 1",
		"spind_cache_misses_total 1",
		"spind_singleflight_shared_total 0",
		"# TYPE spind_request_duration_seconds histogram",
		`spind_request_duration_seconds_bucket{endpoint="simulate",le="+Inf"} 2`,
		"# TYPE spind_queue_depth gauge",
		"spind_simulation_cycles_sum 1000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestGracefulShutdown runs the daemon on a real listener and checks the
// SIGTERM contract: http.Server.Shutdown lets the in-flight simulation
// finish and answer before the process exits.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	s := newTestServer(t, Config{})
	s.testCompute = func(ctx context.Context, req SimRequest) ([]byte, error) {
		close(started)
		time.Sleep(200 * time.Millisecond)
		return []byte(`{"slow":true}`), nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)

	type result struct {
		code int
		body []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/simulate", "application/json", strings.NewReader(smallScenario))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{code: resp.StatusCode, body: b}
	}()

	<-started // the request is in flight; now the SIGTERM path runs
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(context.Background()) }()

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.code != http.StatusOK || !bytes.Contains(res.body, []byte("slow")) {
		t.Fatalf("in-flight request: status %d body %s", res.code, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s.Close()
	// After the drain, new submissions fail closed.
	rec := post(t, s.Handler(), "/v1/simulate", smallScenario+" ")
	_ = rec // the cache may still answer; the pool is what closed
}

func mustScenario(t *testing.T, body string) harness.Scenario {
	t.Helper()
	var req SimRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	return req.normalized().Scenario
}
