// Package serve is the simulation-as-a-service subsystem behind
// cmd/spind: an HTTP API that accepts canonical-JSON simulation and
// sweep requests, answers repeats from a content-addressed result cache
// (internal/cache), and runs misses on a bounded internal/runner pool
// with per-request timeouts, client-disconnect cancellation, and
// load-shedding backpressure instead of collapse.
//
// The request lifecycle is: strict decode → validate → normalize →
// content-address (SHA-256 over the canonical encoding plus
// ResultVersion) → cache.Do, which either replays the stored bytes,
// joins an identical in-flight computation (singleflight), or leads a
// new one on the pool. Responses are byte-identical across cache hits
// forever, because simulations are deterministic in their canonical
// request.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/otrace"
	"repro/internal/runner"
	"repro/internal/sim"
)

// ResultVersion names the semantics of cached results. It participates
// in every cache key, so bumping it invalidates all previously stored
// results. Bump it whenever simulator behaviour or a response/result
// schema changes (see internal/exp's golden schema test).
const ResultVersion = "spin-results-v2"

// Config assembles a Server.
type Config struct {
	// Cache is the result store (required).
	Cache *cache.Store
	// Workers bounds concurrently running jobs (0 = GOMAXPROCS).
	Workers int
	// Shards is the spatial shard count each simulation's cycle engine
	// runs with (0 or 1 = serial). Shards never change results — the
	// engine is byte-deterministic at any count — so the knob does not
	// participate in cache keys. The effective value is capped so
	// Workers x Shards never oversubscribes GOMAXPROCS; both the
	// resolved worker and shard counts are exported on /metrics
	// (spind_workers_effective, spind_shards_effective).
	Shards int
	// QueueSize bounds accepted-but-not-running jobs (0 = 4x workers);
	// beyond it the server sheds load with 429 + Retry-After.
	QueueSize int
	// Timeout bounds each request's simulation work (0 = 2 minutes).
	Timeout time.Duration
	// MaxCycles rejects requests asking for more simulated cycles than
	// the deployment wants to pay for (0 = 2,000,000).
	MaxCycles int64
	// Log, when non-nil, receives one structured record per request:
	// request ID, endpoint, status code, cache outcome, job key,
	// duration, and the request's trace/span IDs — all as slog attrs, so
	// a JSON handler yields machine-queryable request logs. The request
	// ID is echoed in the X-Request-ID header and in error bodies, so a
	// client-reported failure is one query away from its server-side
	// record. With a fleet attached, the record also carries the peer-hop
	// path and how the fleet satisfied the request.
	Log *slog.Logger
	// Fleet, when non-nil, joins this server to a spind fleet: requests
	// consult the consistent-hash ring for their owner, fill from peer
	// caches before simulating, and proxy to (or fall back from) the
	// owner. The fleet's gossip/cache/admin endpoints are mounted on the
	// handler tree and its Prometheus series on /metrics. Single-node
	// behaviour is bit-for-bit unchanged when nil.
	Fleet *fleet.Fleet
}

// SimRequest is the /v1/simulate body: a harness scenario plus serving-
// only knobs. The scenario's own fields (topology, routing, traffic,
// rate, cycles, seed, ...) are documented on harness.Scenario.
type SimRequest struct {
	harness.Scenario
	// Check attaches the runtime invariant checker and reports its
	// verdict in the response.
	Check bool `json:"check,omitempty"`
	// Telemetry adds a latency-percentile summary and a windowed
	// time-series to the response. (Simulator-level Prometheus metrics
	// are recorded for every request regardless.)
	Telemetry bool `json:"telemetry,omitempty"`
	// Epoch is the time-series window in cycles (0 = default 100; only
	// meaningful with Telemetry).
	Epoch int64 `json:"epoch,omitempty"`
}

// normalized returns the canonical form of the request.
func (r SimRequest) normalized() SimRequest {
	n := SimRequest{Scenario: r.Scenario.Normalized(), Check: r.Check, Telemetry: r.Telemetry, Epoch: r.Epoch}
	switch {
	case !n.Telemetry:
		n.Epoch = 0
	case n.Epoch == 0:
		n.Epoch = 100
	}
	return n
}

// canonical returns the canonical bytes of the request.
func (r SimRequest) canonical() []byte {
	b, err := json.Marshal(r.normalized())
	if err != nil {
		panic(fmt.Sprintf("serve: canonical encoding failed: %v", err))
	}
	return b
}

// SimStats is the measured outcome of one simulation.
type SimStats struct {
	Injected      int64   `json:"injected"`
	Ejected       int64   `json:"ejected"`
	AvgLatency    float64 `json:"avg_latency"`
	AvgNetLatency float64 `json:"avg_net_latency"`
	MaxLatency    int64   `json:"max_latency"`
	AvgHops       float64 `json:"avg_hops"`
	Throughput    float64 `json:"throughput"`
	Spins         int64   `json:"spins"`
	// Drained is present only when the request asked for a drain
	// (drain_cycles > 0).
	Drained *bool `json:"drained,omitempty"`
}

// CheckReport is the invariant checker's verdict, present when the
// request set check.
type CheckReport struct {
	OK               bool            `json:"ok"`
	Violations       []sim.Violation `json:"violations,omitempty"`
	MaxDeadlockSpell int64           `json:"max_deadlock_spell"`
}

// SimResponse is the /v1/simulate body: the canonical request echoed
// back, its content address, and the results.
type SimResponse struct {
	Key     string       `json:"key"`
	Request SimRequest   `json:"request"`
	Stats   SimStats     `json:"stats"`
	Check   *CheckReport `json:"check,omitempty"`
	// Latency and TimeSeries are present when the request set telemetry.
	Latency    *sim.LatencySummary `json:"latency,omitempty"`
	TimeSeries *sim.TimeSeries     `json:"time_series,omitempty"`
}

// Server is the HTTP serving subsystem. Construct with New; it is ready
// immediately and stopped with Close.
type Server struct {
	cfg   Config
	store *cache.Store
	pool  *runner.Pool[[]byte]
	mux   *http.ServeMux
	start time.Time

	reg         *registry
	mRequests   *counter
	mReqSeconds *histogram
	mQueued     *gauge
	mRunning    *gauge
	mSimCycles  *histogram
	mSimSeconds *histogram

	// Simulator-level series, fed from each executed request's stats and
	// telemetry (cache hits don't re-observe: they ran no simulator).
	mSimSpins     *counter
	mSimRecovers  *counter
	mSimProbes    *counter
	mSimKillMoves *counter
	mSimDeadlocks *counter
	mSimLatency   *histogram

	// Resolved parallelism: workersEff is the pool size, shardsEff the
	// per-simulation shard count after the oversubscription cap.
	workersEff int
	shardsEff  int

	// fleet is the optional membership/ownership layer; draining flips
	// when shutdown starts so /readyz fails before the listener closes
	// (load balancers stop routing while in-flight requests finish).
	fleet    *fleet.Fleet
	draining atomic.Bool

	// tracer records every request's span tree into a bounded per-node
	// ring (served by /v1/trace/<id>); mSpanSeconds is the per-span-name
	// duration histogram its OnEnd hook feeds. build is the daemon's
	// identity, resolved once (served by /v1/version and gossiped).
	tracer       *otrace.Tracer
	mSpanSeconds *histogram
	build        BuildInfo

	reqSeq atomic.Uint64 // request-ID sequence (satellite: request logging)

	// testCompute, when set (tests only), replaces the simulation body
	// of /v1/simulate pool jobs. It still runs on the pool, so panic
	// capture and queueing behave exactly as in production.
	testCompute func(ctx context.Context, req SimRequest) ([]byte, error)
}

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, fmt.Errorf("serve: Config.Cache is required")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000
	}
	if cfg.QueueSize == 0 {
		workers := cfg.Workers
		if workers <= 0 {
			workers = 1
		}
		cfg.QueueSize = 4 * workers
	}
	s := &Server{cfg: cfg, store: cfg.Cache, mux: http.NewServeMux(), start: time.Now(), reg: newRegistry(), fleet: cfg.Fleet}
	s.build = ReadBuild()

	// The tracer's node name is the fleet identity when there is one, so
	// spans merged across nodes say which daemon ran them.
	node := "spind"
	if s.fleet != nil {
		node = s.fleet.SelfID()
	}
	s.tracer = otrace.NewTracer(node, 0)

	// Resolve the parallelism budget: request-level workers multiply
	// with per-simulation shards, so cap the shard count to keep the
	// product within GOMAXPROCS (shards never change results, so the
	// cap is free).
	maxp := runtime.GOMAXPROCS(0)
	s.workersEff = cfg.Workers
	if s.workersEff <= 0 {
		s.workersEff = maxp
	}
	s.shardsEff = cfg.Shards
	if s.shardsEff < 1 {
		s.shardsEff = 1
	}
	if s.workersEff*s.shardsEff > maxp {
		s.shardsEff = maxp / s.workersEff
		if s.shardsEff < 1 {
			s.shardsEff = 1
		}
	}

	s.mRequests = s.reg.counter("spind_requests_total", "HTTP requests by endpoint and status code.")
	s.mReqSeconds = s.reg.histogram("spind_request_duration_seconds", "End-to-end request latency by endpoint.",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60})
	s.mQueued = s.reg.gauge("spind_queue_depth", "Jobs accepted but not yet running.")
	s.mRunning = s.reg.gauge("spind_inflight_jobs", "Jobs currently executing on the pool.")
	s.mSimCycles = s.reg.histogram("spind_simulation_cycles", "Simulated cycles per executed request.",
		[]float64{1e3, 1e4, 1e5, 1e6, 1e7})
	s.mSimSeconds = s.reg.histogram("spind_simulation_duration_seconds", "Wall-clock time per executed simulation.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120})
	s.mSimSpins = s.reg.counter("spind_sim_spins_total", "Synchronized SPIN movements performed by executed simulations.")
	s.mSimRecovers = s.reg.counter("spind_sim_recoveries_total", "SPIN deadlock recoveries completed by executed simulations.")
	s.mSimProbes = s.reg.counter("spind_sim_probes_total", "SPIN probe messages sent by executed simulations.")
	s.mSimKillMoves = s.reg.counter("spind_sim_kill_moves_total", "SPIN kill_move messages sent by executed simulations.")
	s.mSimDeadlocks = s.reg.counter("spind_sim_deadlock_firings_total", "Deadlock-oracle firings observed by executed simulations (checked requests only).")
	s.mSimLatency = s.reg.histogram("spind_sim_packet_latency_cycles", "Packet-latency percentiles (quantile label) per executed simulation, in cycles.",
		[]float64{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 100000})
	s.mSpanSeconds = s.reg.histogram("spind_span_duration_seconds", "Request span durations by span name (per-peer spans collapse onto one label).",
		[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 10, 30, 60})
	s.tracer.OnEnd(func(d otrace.SpanData) {
		s.mSpanSeconds.ObserveL(map[string]string{"span": d.MetricName()}, float64(d.Dur)/1e9)
	})
	s.reg.collectorFunc(func(w io.Writer) {
		fmt.Fprintf(w, "# HELP spind_build_info Build identity of this daemon (value is always 1; the labels carry the information).\n")
		fmt.Fprintf(w, "# TYPE spind_build_info gauge\n")
		fmt.Fprintf(w, "spind_build_info{version=%q,commit=%q,go=%q} 1\n", s.build.Version, s.build.Commit, s.build.Go)
	})
	snap := func(f func(cache.Stats) float64) func() float64 {
		return func() float64 { return f(s.store.Snapshot()) }
	}
	s.reg.counterFunc("spind_cache_hits_total", "Requests answered from the result cache.",
		snap(func(st cache.Stats) float64 { return float64(st.Hits) }))
	s.reg.counterFunc("spind_cache_disk_hits_total", "Cache hits served from the disk tier.",
		snap(func(st cache.Stats) float64 { return float64(st.DiskHits) }))
	s.reg.counterFunc("spind_cache_misses_total", "Requests that led a new computation.",
		snap(func(st cache.Stats) float64 { return float64(st.Misses) }))
	s.reg.counterFunc("spind_singleflight_shared_total", "Requests that joined an identical in-flight computation.",
		snap(func(st cache.Stats) float64 { return float64(st.Shared) }))
	s.reg.counterFunc("spind_compute_errors_total", "Led computations that failed (never cached).",
		snap(func(st cache.Stats) float64 { return float64(st.Errors) }))
	s.reg.counterFunc("spind_cache_corrupt_evictions_total", "On-disk cache entries that failed strict decode and were evicted (served as misses).",
		snap(func(st cache.Stats) float64 { return float64(st.Corrupt) }))
	s.reg.gaugeFunc("spind_cache_mem_entries", "Entries in the in-memory cache tier.",
		snap(func(st cache.Stats) float64 { return float64(st.MemEntries) }))
	s.reg.gaugeFunc("spind_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.gaugeFunc("spind_workers_effective", "Resolved worker-pool size (concurrent simulations).",
		func() float64 { return float64(s.workersEff) })
	s.reg.gaugeFunc("spind_shards_effective", "Resolved per-simulation shard count after the GOMAXPROCS oversubscription cap.",
		func() float64 { return float64(s.shardsEff) })

	s.pool = runner.NewPool[[]byte](runner.PoolOptions{
		Workers:   cfg.Workers,
		QueueSize: cfg.QueueSize,
		Timeout:   cfg.Timeout,
		OnState: func(queued, running int) {
			s.mQueued.Set(float64(queued))
			s.mRunning.Set(float64(running))
		},
	})

	s.mux.HandleFunc("/v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/trace/", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("/v1/version", s.instrument("version", s.handleVersion))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.fleet != nil {
		// Gossip and cache-fill are fleet-internal chatter (every node,
		// every interval); they skip the request log. The admin view is
		// operator-facing and logged like any endpoint.
		s.mux.HandleFunc("/v1/fleet", s.instrument("fleet", s.fleet.HandleAdmin))
		s.mux.HandleFunc("/v1/gossip", s.fleet.HandleGossip)
		s.mux.HandleFunc("/v1/cache/", s.fleet.HandleCache)
		s.reg.collectorFunc(s.fleet.WriteMetrics)
	}
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. Call after the HTTP listener has shut
// down, so no request is still waiting on a job.
func (s *Server) Close() { s.pool.Close() }

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the instrumentation layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqInfo is the per-request context record behind request logging: the
// ID assigned at ingress plus whatever the handler learns along the way
// (cache outcome, job key, and — with a fleet — how the fleet satisfied
// the request and the peer-hop path).
type reqInfo struct {
	id    string
	cache string
	key   string
	fleet string // "-", "owner", "fill:<peer>", "proxy:<peer>", "fallback"
	path  string // hop path, e.g. "nodeA>nodeB" ("" without a fleet)
	// span is the request's root span; handlers hang child spans off it
	// (decode, validate, cache, queue_wait, compute, fill/proxy hops).
	span *otrace.Span
}

type reqInfoKey struct{}

// requestInfo retrieves the request record (nil outside instrument).
func requestInfo(r *http.Request) *reqInfo {
	info, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return info
}

// requestSpan retrieves the request's root span (nil outside
// instrument; every Span method is nil-safe, so callers never guard).
func requestSpan(r *http.Request) *otrace.Span {
	if info := requestInfo(r); info != nil {
		return info.span
	}
	return nil
}

// nextRequestID mints a process-unique request ID: a start-time salt so
// IDs from different daemon runs don't collide in aggregated logs, plus
// a sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%06d", s.start.UnixNano()&0xffffffff, s.reqSeq.Add(1))
}

// instrument wraps a handler with the request counter, the latency
// histogram, the request-ID header, the request's root span, and the
// per-request log record. An incoming X-Request-ID (a client
// correlation ID, or a peer hop inside the fleet) is adopted instead of
// minting a new one, so one ID follows a request across every node it
// touches; an incoming traceparent likewise parents this request's root
// span under the caller's hop span, which is what stitches per-node
// span trees into one cross-fleet timeline.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get(fleet.HeaderRequestID))
		if id == "" {
			id = s.nextRequestID()
		}
		info := &reqInfo{id: id, cache: "-", key: "-", fleet: "-"}
		info.span = s.tracer.StartRequest(endpoint, r.Header.Get(fleet.HeaderTraceparent))
		info.span.SetAttr("request_id", info.id)
		if s.fleet != nil {
			info.path = fleet.AppendPath(r.Header.Get(fleet.HeaderPath), s.fleet.SelfID())
		}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
		w.Header().Set("X-Request-ID", info.id)
		w.Header().Set(fleet.HeaderTraceparent, info.span.Traceparent())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		s.mRequests.AddL(map[string]string{"endpoint": endpoint, "code": fmt.Sprint(sw.code)}, 1)
		s.mReqSeconds.ObserveL(map[string]string{"endpoint": endpoint}, dur.Seconds())
		info.span.SetAttr("code", fmt.Sprint(sw.code))
		info.span.SetAttr("cache", info.cache)
		info.span.End()
		if s.cfg.Log != nil {
			args := []any{
				slog.String("id", info.id),
				slog.String("endpoint", endpoint),
				slog.Int("code", sw.code),
				slog.String("cache", info.cache),
				slog.String("key", info.key),
				slog.Duration("dur", dur.Round(time.Microsecond)),
				slog.String("trace", info.span.TraceID()),
				slog.String("span", info.span.SpanID()),
			}
			if s.fleet != nil {
				args = append(args, slog.String("fleet", info.fleet), slog.String("path", info.path))
			}
			s.cfg.Log.Info("request", args...)
		}
	}
}

// sanitizeRequestID accepts a forwarded request ID only when it is
// log-grep-safe: short and free of whitespace, quotes, and control
// bytes (an attacker-controlled header must not forge log fields).
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return ""
		}
	}
	return id
}

// httpError answers an error with the request ID appended, so a client
// report can be matched to the daemon's log line.
func httpError(w http.ResponseWriter, r *http.Request, msg string, code int) {
	if info := requestInfo(r); info != nil {
		msg += " (request " + info.id + ")"
	}
	http.Error(w, msg, code)
}

// handleHealthz reports liveness plus a queue snapshot. Liveness only:
// a draining daemon is still alive (it must finish in-flight work), so
// orchestrators should restart on /healthz and route on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.pool.Depth()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","uptime_seconds":%.1f,"queued":%d,"running":%d}`+"\n",
		time.Since(s.start).Seconds(), queued, running)
}

// handleReadyz reports readiness: whether this node should receive new
// traffic. It fails while draining (shutdown has begun but in-flight
// requests are finishing) and, in a fleet, before the first gossip
// round (the node has not learned the ring yet, so it would compute
// keys its peers already cached).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	case s.fleet != nil && !s.fleet.Ready():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"waiting-for-gossip"}`)
	default:
		fmt.Fprintln(w, `{"status":"ready"}`)
	}
}

// SetDraining flips the readiness gate; cmd/spind sets it when shutdown
// begins, before closing the listener, so load balancers and fleet
// peers stop routing here while in-flight requests complete.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	s.reg.writeTo(w)
}

// errBadRequest marks errors caused by the request content (as opposed
// to server state), mapped to 400.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

// handleSimulate is POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, "POST a scenario JSON body", http.StatusMethodNotAllowed)
		return
	}
	span := requestSpan(r)
	var req SimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	ds := span.StartChild("decode")
	err := dec.Decode(&req)
	ds.End()
	if err != nil {
		httpError(w, r, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	vs := span.StartChild("validate")
	err = req.Validate()
	vs.End()
	if err != nil {
		httpError(w, r, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Epoch < 0 {
		httpError(w, r, fmt.Sprintf("bad request: epoch must be >= 0, got %d", req.Epoch), http.StatusBadRequest)
		return
	}
	if req.Cycles > s.cfg.MaxCycles || req.DrainCycles > 100*s.cfg.MaxCycles {
		httpError(w, r, fmt.Sprintf("bad request: cycles beyond this server's limit (%d)", s.cfg.MaxCycles), http.StatusBadRequest)
		return
	}
	n := req.normalized()
	key := cache.KeyOf(ResultVersion+"/simulate", n.canonical())
	if stream := r.URL.Query().Get("stream"); stream != "" {
		if stream != "sse" {
			httpError(w, r, fmt.Sprintf("bad request: unknown stream mode %q (want sse)", stream), http.StatusBadRequest)
			return
		}
		s.handleSimulateSSE(w, r, req, n, key)
		return
	}
	s.serveCached(w, r, key, func(ctx context.Context) ([]byte, error) {
		qw := span.StartChild("queue_wait")
		b, err := s.pool.Submit(ctx, runner.Job[[]byte]{Key: key, Run: func(jctx context.Context, _ int64) ([]byte, error) {
			qw.End() // the job was dequeued: the wait is over
			cs := span.StartChild("compute")
			defer cs.End()
			if s.testCompute != nil {
				return s.testCompute(jctx, n)
			}
			return s.runSim(jctx, n, key, 0, nil, cs)
		}})
		qw.End() // a rejected submit records the wasted wait
		return b, err
	}, &fleet.ProxySpec{Path: "/v1/simulate", Body: n.canonical()})
}

// handleSweep is POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, "POST a sweep request JSON body", http.StatusMethodNotAllowed)
		return
	}
	req, err := exp.DecodeSweepRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, r, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, r, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	n := req.Normalized()
	if n.Cycles > s.cfg.MaxCycles {
		httpError(w, r, fmt.Sprintf("bad request: cycles beyond this server's limit (%d)", s.cfg.MaxCycles), http.StatusBadRequest)
		return
	}
	key := cache.KeyOf(ResultVersion+"/sweep", n.Canonical())
	span := requestSpan(r)
	s.serveCached(w, r, key, func(ctx context.Context) ([]byte, error) {
		qw := span.StartChild("queue_wait")
		b, err := s.pool.Submit(ctx, runner.Job[[]byte]{Key: key, Run: func(jctx context.Context, _ int64) ([]byte, error) {
			qw.End()
			cs := span.StartChild("compute")
			defer cs.End()
			o := n.Options()
			o.Workers = s.cfg.Workers
			o.Shards = s.shardsEff
			v, err := exp.Sweep(jctx, n.Fig, o)
			if err != nil {
				return nil, err
			}
			// The figure's canonical JSON IS the response body — the
			// same bytes spinsweep -json prints, so CLI and API can
			// never drift.
			es := cs.StartChild("encode")
			defer es.End()
			var buf bytes.Buffer
			if err := exp.EncodeJSON(&buf, v); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}})
		qw.End()
		return b, err
	}, &fleet.ProxySpec{Path: "/v1/sweep", Body: n.Canonical()})
}

// serveCached is the shared request tail: consult the cache (deduping
// concurrent identical requests), run the computation on a miss, map
// failure modes to status codes, and emit the result with cache
// metadata headers. proxy, when non-nil and a fleet is attached, allows
// the computation to be satisfied by the key's ring owner instead of
// locally (see fleetCompute).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func(context.Context) ([]byte, error), proxy *fleet.ProxySpec) {
	info := requestInfo(r)
	var span *otrace.Span
	if info != nil {
		info.key = key
		span = info.span
	}
	// One span covers lookup, singleflight join, and any led computation
	// — its children (queue_wait, compute, fill/proxy) say which of
	// those it was; the outcome attr says how the cache answered.
	cs := span.StartChild("cache")
	body, outcome, err := s.store.Do(r.Context(), key, s.fleetCompute(r, info, key, compute, proxy))
	if err != nil {
		if info != nil {
			info.cache = "error"
		}
		cs.SetAttr("outcome", "error")
		cs.End()
		s.writeError(w, r, key, err)
		return
	}
	if info != nil {
		info.cache = outcome.String()
	}
	cs.SetAttr("outcome", outcome.String())
	cs.End()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Cache-Key", key)
	if s.fleet != nil && info != nil {
		w.Header().Set("X-Fleet", info.fleet)
		w.Header().Set(fleet.HeaderPath, info.path)
	}
	if r.URL.Query().Get("trace") == "server" {
		// The wrapper is assembled after Do, so the cache stores (and
		// fills/backfills ship) only the inner result bytes — tracing a
		// request never perturbs what the fleet caches.
		body = s.wrapServerTrace(span, body)
	}
	w.Write(body)
}

// fleetCompute wraps a local computation with the fleet request path:
//
//  1. resolve the key's deterministic owner on the consistent-hash ring;
//  2. if we own it (or there is no fleet), compute locally;
//  3. otherwise ask the owner — then its successors — for the cached
//     bytes (peer cache-fill: a remote hit is byte-identical to a local
//     one, so it simply becomes our cached value);
//  4. on fill miss with a healthy owner, proxy the canonical request to
//     it, so each simulation runs once fleet-wide, on its owner, with
//     the owner's own singleflight deduping concurrent callers;
//  5. on owner failure, compute locally and backfill the result to the
//     ring, so availability never depends on any single node.
//
// The wrapper runs inside cache.Store.Do, so everything downstream of
// the local cache — including the peer round-trips — is deduplicated:
// N concurrent identical requests on this node cost one fill/proxy hop.
// Requests already forwarded once (X-Fleet-Forwarded) always compute
// locally; divergent ring views must not bounce a request around.
func (s *Server) fleetCompute(r *http.Request, info *reqInfo, key string, compute func(context.Context) ([]byte, error), proxy *fleet.ProxySpec) func(context.Context) ([]byte, error) {
	if s.fleet == nil || r.Header.Get(fleet.HeaderForwarded) != "" {
		return compute
	}
	var reqID, hopPath string
	var span *otrace.Span
	if info != nil {
		reqID, hopPath = info.id, info.path
		span = info.span
	}
	return func(ctx context.Context) ([]byte, error) {
		owner, ok := s.fleet.Owner(key)
		if !ok || owner.Self {
			if info != nil && ok {
				info.fleet = "owner"
			}
			return compute(ctx)
		}
		// Each peer hop gets its own span, and the hop carries that
		// span's traceparent: whatever the peer records becomes a child
		// of the hop, not of the whole request.
		fs := span.StartChild("fill")
		b, peer, hit := s.fleet.Fill(ctx, key, fleet.Hop{ReqID: reqID, Path: hopPath, Traceparent: fs.Traceparent()})
		if hit {
			fs.SetAttr("peer", peer)
			fs.End()
			if info != nil {
				info.fleet = "fill:" + peer
			}
			return b, nil
		}
		fs.SetAttr("outcome", "miss")
		fs.End()
		if proxy != nil && owner.State == fleet.StateAlive {
			ps := span.StartChild("proxy:" + owner.ID)
			ps.SetMetricName("proxy")
			b, upPath, err := s.fleet.Proxy(ctx, owner, *proxy, fleet.Hop{ReqID: reqID, Path: hopPath, Traceparent: ps.Traceparent()})
			if err == nil {
				ps.End()
				if info != nil {
					info.fleet = "proxy:" + owner.ID
					if upPath != "" {
						info.path = upPath
					}
				}
				return b, nil
			}
			ps.SetAttr("error", err.Error())
			ps.End()
			// Proxy failure is already counted and logged by the fleet;
			// fall through to local compute.
		}
		b, err := compute(ctx)
		if err == nil {
			if info != nil {
				info.fleet = "fallback"
			}
			s.fleet.Fallback()
			s.fleet.Backfill(key, b)
		}
		return b, err
	}
}

// writeError maps computation failures onto HTTP semantics.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, key string, err error) {
	var pe *runner.PanicError
	var bad errBadRequest
	switch {
	case r.Context().Err() != nil:
		// The client is gone; nothing can be written. 499 (nginx's
		// "client closed request") keeps the metrics honest.
		w.WriteHeader(499)
	case errors.Is(err, runner.ErrQueueFull):
		w.Header().Set("Retry-After", "2")
		httpError(w, r, "overloaded: job queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, runner.ErrPoolClosed):
		httpError(w, r, "shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, r, fmt.Sprintf("simulation exceeded the per-request budget (%v)", s.cfg.Timeout), http.StatusGatewayTimeout)
	case errors.As(err, &pe):
		// The panic is captured, the daemon lives on; the job key lets
		// operators replay the poisoned request.
		httpError(w, r, fmt.Sprintf("internal error: job %s panicked: %v", pe.Key, pe.Value), http.StatusInternalServerError)
	case errors.As(err, &bad):
		httpError(w, r, "bad request: "+bad.Error(), http.StatusBadRequest)
	default:
		httpError(w, r, "internal error: "+err.Error(), http.StatusInternalServerError)
	}
}

// runSim is the shared simulation body. When onSample is non-nil (the
// SSE streaming path), the run is chunked at epoch-window granularity
// and each freshly closed time-series window is delivered to onSample
// as the simulation progresses. Chunked stepping is state-for-state
// identical to one Run call and the window sampler is observational, so
// the rendered response bytes — the value that gets cached — are
// byte-identical with and without streaming. span, when non-nil, gets
// per-epoch child spans on chunked runs plus an encode span (span is
// passed explicitly, not via ctx: the singleflight leader's ctx is
// detached from the request that started the span).
func (s *Server) runSim(ctx context.Context, req SimRequest, key string, streamWindow int64, onSample func(sim.WindowSample), span *otrace.Span) ([]byte, error) {
	start := time.Now()
	sc := req.Scenario
	// SimShards attaches whatever traffic source the scenario carries —
	// synthetic, shaped workload, explicit injections, or a streamed
	// binary trace. Shard count is an execution knob: never in the key.
	simulation, err := sc.SimShards(s.shardsEff)
	if err != nil {
		// The specs parsed as JSON but name unknown topologies/routings:
		// the client's fault, not the server's.
		return nil, errBadRequest{err}
	}
	var checker *sim.InvariantChecker
	if req.Check {
		net := simulation.Network()
		checker = net.AttachChecker(sc.CheckOptions(net.NumRouters()))
	}
	// Telemetry is always attached: the latency histogram feeds the
	// simulator-level Prometheus series for every executed request. The
	// window sampler and response fields stay opt-in (req.Telemetry), so
	// response bytes for telemetry-free requests are unchanged. The
	// oracle-firing probe only matters on checked requests (the oracle
	// only runs under the checker), and attaching a probe makes the hot
	// path construct events, so it too is gated on req.Check.
	topt := sim.TelemetryOptions{Hist: true}
	if req.Telemetry {
		topt.Window = req.Epoch
	}
	if onSample != nil && topt.Window <= 0 {
		// Streaming needs a window even when the response itself carries
		// no time-series; the samples are progress-only and the response
		// fields stay gated on req.Telemetry below.
		topt.Window = streamWindow
	}
	var oracle oracleCounter
	if req.Check {
		topt.Probe = &oracle
	}
	tele := simulation.Network().AttachTelemetry(topt)
	// Traced telemetry requests also run chunked (identical state, see
	// above) so each epoch window becomes a child span — the Perfetto
	// view then shows where inside the simulation the time went.
	chunked := onSample != nil || (span != nil && topt.Window > 0)
	if !chunked {
		if err := runner.Cycles(ctx, simulation.Run, sc.Cycles); err != nil {
			return nil, err
		}
	} else {
		emitted := 0
		for done := int64(0); done < sc.Cycles; {
			chunk := topt.Window
			if rem := sc.Cycles - done; rem < chunk {
				chunk = rem
			}
			es := span.StartChild("epoch")
			es.SetMetricName("epoch")
			err := runner.Cycles(ctx, simulation.Run, chunk)
			es.End()
			if err != nil {
				return nil, err
			}
			done += chunk
			if onSample != nil {
				if ts := tele.TimeSeries(); ts != nil {
					for ; emitted < len(ts.Samples); emitted++ {
						onSample(ts.Samples[emitted])
					}
				}
			}
		}
	}
	st := simulation.Stats()
	resp := SimResponse{
		Key:     key,
		Request: req,
		Stats: SimStats{
			Injected:      st.Injected,
			Ejected:       st.Ejected,
			AvgLatency:    st.AvgLatency(),
			AvgNetLatency: st.AvgNetLatency(),
			MaxLatency:    st.MaxLatency,
			AvgHops:       st.AvgHops(),
			Throughput:    simulation.Throughput(),
			Spins:         st.Spins,
		},
	}
	if sc.DrainCycles > 0 {
		drained := simulation.Drain(sc.DrainCycles)
		resp.Stats.Drained = &drained
	}
	if checker != nil {
		violations := checker.Violations()
		resp.Check = &CheckReport{
			OK:               len(violations) == 0,
			Violations:       violations,
			MaxDeadlockSpell: checker.MaxDeadlockSpell(),
		}
	}
	tele.Flush()
	if req.Telemetry {
		sum := tele.LatencySummary()
		resp.Latency = &sum
		resp.TimeSeries = tele.TimeSeries()
	}
	s.observeSimulator(st, tele, oracle.firings)
	s.mSimCycles.Observe(float64(sc.Cycles))
	s.mSimSeconds.Observe(time.Since(start).Seconds())
	es := span.StartChild("encode")
	defer es.End()
	var buf bytes.Buffer
	if err := exp.EncodeJSON(&buf, resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// oracleCounter is a minimal telemetry probe counting deadlock-oracle
// firings (the only event kind it will see arrives from the checker).
type oracleCounter struct{ firings int64 }

func (o *oracleCounter) Event(e sim.Event) {
	if e.Kind == sim.EvOracleDeadlock {
		o.firings++
	}
}

// observeSimulator folds one executed simulation's counters and latency
// percentiles into the simulator-level Prometheus series.
func (s *Server) observeSimulator(st *sim.Stats, tele *sim.Telemetry, oracleFirings int64) {
	s.mSimSpins.Add(float64(st.Spins))
	s.mSimRecovers.Add(float64(st.Counter("recoveries")))
	s.mSimProbes.Add(float64(st.Counter("probes_sent")))
	s.mSimKillMoves.Add(float64(st.Counter("kill_moves_sent")))
	s.mSimDeadlocks.Add(float64(oracleFirings))
	sum := tele.LatencySummary()
	if sum.Count > 0 {
		s.mSimLatency.ObserveL(map[string]string{"quantile": "p50"}, sum.P50)
		s.mSimLatency.ObserveL(map[string]string{"quantile": "p95"}, sum.P95)
		s.mSimLatency.ObserveL(map[string]string{"quantile": "p99"}, sum.P99)
	}
}

// Snapshot exposes cache statistics (cmd/spind logs them on shutdown).
func (s *Server) Snapshot() cache.Stats { return s.store.Snapshot() }
