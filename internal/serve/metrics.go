package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// This file is a dependency-free Prometheus text-exposition registry:
// counters, gauges, and histograms with optional label pairs, rendered
// in the version 0.0.4 text format that every Prometheus scraper
// understands. The official client library would drag in a dependency
// tree the container does not have; the daemon needs exactly the subset
// implemented here.

// metricsContentType is the scrape content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// registry holds instruments in registration order, the order they
// render in.
type registry struct {
	mu    sync.Mutex
	insts []renderable
}

type renderable interface {
	render(w io.Writer)
}

func newRegistry() *registry { return &registry{} }

func (r *registry) add(i renderable) {
	r.mu.Lock()
	r.insts = append(r.insts, i)
	r.mu.Unlock()
}

// writeTo renders every registered instrument.
func (r *registry) writeTo(w io.Writer) {
	r.mu.Lock()
	insts := append([]renderable(nil), r.insts...)
	r.mu.Unlock()
	for _, i := range insts {
		i.render(w)
	}
}

// header writes the # HELP / # TYPE preamble.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatValue renders a sample value the way Prometheus expects. Values
// that are exactly integral render without an exponent (1e6 as
// "1000000", not "1e+06") so large counts round-trip through scrapers
// and diff cleanly; 2^53 is the largest magnitude where float64 still
// holds every integer exactly.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1<<53:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} with sorted keys ("" for no labels).
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + `="` + labels[k] + `"`
	}
	return s + "}"
}

// funcCounter renders a counter whose value is owned elsewhere and
// sampled at scrape time (e.g. the cache store's hit counters).
type funcCounter struct {
	name, help string
	fn         func() float64
}

func (r *registry) counterFunc(name, help string, fn func() float64) {
	r.add(&funcCounter{name: name, help: help, fn: fn})
}

func (c *funcCounter) render(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %s\n", c.name, formatValue(c.fn()))
}

// rawCollector delegates a whole block of exposition text to a callback
// that writes its own HELP/TYPE lines (e.g. the fleet's per-peer
// series, which own their label sets).
type rawCollector struct {
	fn func(io.Writer)
}

func (r *registry) collectorFunc(fn func(io.Writer)) {
	r.add(&rawCollector{fn: fn})
}

func (c *rawCollector) render(w io.Writer) { c.fn(w) }

// counter is a monotonically increasing sample set, one series per
// label combination.
type counter struct {
	name, help string
	mu         sync.Mutex
	series     map[string]float64 // rendered label string -> value
}

func (r *registry) counter(name, help string) *counter {
	c := &counter{name: name, help: help, series: map[string]float64{}}
	r.add(c)
	return c
}

// Add increments the unlabeled series.
func (c *counter) Add(delta float64) { c.AddL(nil, delta) }

// AddL increments the series selected by labels.
func (c *counter) AddL(labels map[string]string, delta float64) {
	ls := labelString(labels)
	c.mu.Lock()
	c.series[ls] += delta
	c.mu.Unlock()
}

// Value reads one series (tests and internal checks).
func (c *counter) Value(labels map[string]string) float64 {
	ls := labelString(labels)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series[ls]
}

func (c *counter) render(w io.Writer) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.series))
	for k := range c.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header(w, c.name, c.help, "counter")
	if len(keys) == 0 {
		fmt.Fprintf(w, "%s 0\n", c.name)
	}
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %s\n", c.name, k, formatValue(c.series[k]))
	}
	c.mu.Unlock()
}

// gauge is a settable value, optionally backed by a callback evaluated
// at scrape time (for values owned elsewhere, like queue depth).
type gauge struct {
	name, help string
	mu         sync.Mutex
	value      float64
	fn         func() float64
}

func (r *registry) gauge(name, help string) *gauge {
	g := &gauge{name: name, help: help}
	r.add(g)
	return g
}

// gaugeFunc registers a gauge sampled by fn at scrape time.
func (r *registry) gaugeFunc(name, help string, fn func() float64) {
	r.add(&gauge{name: name, help: help, fn: fn})
}

// Set stores the value.
func (g *gauge) Set(v float64) {
	g.mu.Lock()
	g.value = v
	g.mu.Unlock()
}

func (g *gauge) render(w io.Writer) {
	v := g.fn
	header(w, g.name, g.help, "gauge")
	if v != nil {
		fmt.Fprintf(w, "%s %s\n", g.name, formatValue(v()))
		return
	}
	g.mu.Lock()
	fmt.Fprintf(w, "%s %s\n", g.name, formatValue(g.value))
	g.mu.Unlock()
}

// histogram is a cumulative-bucket histogram, one series set per label
// combination.
type histogram struct {
	name, help string
	buckets    []float64 // upper bounds, ascending, +Inf implied
	mu         sync.Mutex
	series     map[string]*histSeries
}

type histSeries struct {
	counts []uint64 // one per bucket, plus the +Inf overflow at the end
	sum    float64
	count  uint64
}

func (r *registry) histogram(name, help string, buckets []float64) *histogram {
	h := &histogram{name: name, help: help, buckets: buckets, series: map[string]*histSeries{}}
	r.add(h)
	return h
}

// Observe records a sample into the unlabeled series.
func (h *histogram) Observe(v float64) { h.ObserveL(nil, v) }

// ObserveL records a sample into the series selected by labels.
func (h *histogram) ObserveL(labels map[string]string, v float64) {
	ls := labelString(labels)
	h.mu.Lock()
	s := h.series[ls]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets)+1)}
		h.series[ls] = s
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	s.counts[i]++
	s.sum += v
	s.count++
	h.mu.Unlock()
}

// Count reads one series' sample count (tests).
func (h *histogram) Count(labels map[string]string) uint64 {
	ls := labelString(labels)
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[ls]; s != nil {
		return s.count
	}
	return 0
}

func (h *histogram) render(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header(w, h.name, h.help, "histogram")
	empty := &histSeries{counts: make([]uint64, len(h.buckets)+1)}
	if len(keys) == 0 {
		// A histogram nobody has observed still exposes a complete
		// unlabeled series — every bucket including +Inf, zero sum and
		// count — so scrapers see the metric exists and rate() works from
		// the first sample. The zero series is render-only: once real
		// (possibly labeled) observations arrive, it disappears.
		keys = append(keys, "")
	}
	for _, k := range keys {
		s := h.series[k]
		if s == nil {
			s = empty
		}
		cum := uint64(0)
		for i, bound := range h.buckets {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLE(k, formatValue(bound)), cum)
		}
		cum += s.counts[len(h.buckets)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLE(k, "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, k, formatValue(s.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, k, s.count)
	}
	h.mu.Unlock()
}

// withLE splices the le label into a rendered label string.
func withLE(rendered, le string) string {
	if rendered == "" {
		return `{le="` + le + `"}`
	}
	return rendered[:len(rendered)-1] + `,le="` + le + `"}`
}
