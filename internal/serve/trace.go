package serve

import (
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/otrace"
	"repro/internal/telemetry"
)

// This file is the trace-retrieval surface: GET /v1/trace/<id> returns
// a trace's spans from this node's bounded ring and — with a fleet —
// merges in every peer's spans for the same trace, so one request's
// whole cross-node tree comes back from any node it touched. The same
// span set renders two ways: plain JSON (the default) or Chrome
// trace-event JSON (?format=perfetto) that loads directly in Perfetto,
// one process lane per node.

// traceResponse is the JSON envelope of /v1/trace/<id> and of the
// ?trace=server echo on /v1/simulate.
type traceResponse struct {
	TraceID string            `json:"trace_id"`
	Spans   []otrace.SpanData `json:"spans"`
	// Result carries the simulation response when the envelope wraps a
	// live request (?trace=server); absent on after-the-fact fetches.
	Result json.RawMessage `json:"result,omitempty"`
}

// handleTrace is GET /v1/trace/<id>. ?local=1 restricts to this node's
// ring (the form nodes use when fanning out to peers, so collection
// never recurses); ?format=perfetto renders the Chrome trace-event
// form.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, r, "GET a trace by ID", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if !otrace.ValidTraceID(id) {
		httpError(w, r, "bad trace ID: want 32 lowercase hex chars", http.StatusBadRequest)
		return
	}
	spans := s.tracer.Trace(id)
	if s.fleet != nil && r.URL.Query().Get("local") != "1" {
		for _, b := range s.fleet.CollectPeers(r.Context(), "/v1/trace/"+id+"?local=1") {
			var doc traceResponse
			if json.Unmarshal(b, &doc) == nil {
				spans = append(spans, doc.Spans...)
			}
		}
		otrace.SortSpans(spans)
	}
	if len(spans) == 0 {
		httpError(w, r, "unknown trace (expired from the ring, or never sampled here)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "perfetto" {
		telemetry.WriteSpanTrace(w, spans)
		return
	}
	json.NewEncoder(w).Encode(traceResponse{TraceID: id, Spans: spans})
}

// wrapServerTrace wraps response bytes in the trace envelope: the spans
// this node has recorded for the request's trace plus a live snapshot
// of the still-open root span. Peer spans are not fetched here — the
// client has the trace ID and can GET /v1/trace/<id> for the merged
// tree once the hop spans land.
func (s *Server) wrapServerTrace(span *otrace.Span, body []byte) []byte {
	if span == nil {
		return body
	}
	spans := s.tracer.Trace(span.TraceID())
	if d, ok := span.Snapshot(); ok {
		spans = append(spans, d)
	}
	otrace.SortSpans(spans)
	out, err := json.Marshal(traceResponse{TraceID: span.TraceID(), Spans: spans, Result: body})
	if err != nil {
		return body
	}
	return out
}
