package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/runner"
	"repro/internal/sim"
)

// This file is the server-sent-events view of /v1/simulate
// (?stream=sse): the same computation, the same cache key, the same
// final bytes — but with the windowed time-series pushed to the client
// as the simulation progresses instead of only after it finishes.
//
// Protocol (SSE, text/event-stream):
//
//	event: sample   one closed telemetry window (sim.WindowSample JSON),
//	                emitted live while this node leads the computation
//	event: result   the full SimResponse — byte-identical to the
//	                non-streaming response body for the same request
//	event: error    a failure, with the request ID for log correlation
//	: keepalive     comment heartbeats while waiting (cache hits and
//	                singleflight waiters see no samples, only the result)
//
// The stream flag is a transport knob, not a request parameter: it is
// excluded from the canonical encoding, so streaming and non-streaming
// callers share one cache entry and one singleflight flight.

// sseWriter serializes writes to one event-stream connection. The
// computation leader outlives its own handler when other waiters remain
// (cache.Store.Do runs compute on a flight goroutine), so the sample
// callback may fire after this handler returned; close() flips closed
// under the same mutex event() writes under, guaranteeing nothing
// touches the ResponseWriter after the handler exits.
type sseWriter struct {
	mu     sync.Mutex
	w      http.ResponseWriter
	fl     http.Flusher
	closed bool
	wrote  bool
}

// event emits one named event; multi-line data is split across data:
// lines per the SSE framing rules.
func (s *sseWriter) event(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.wrote = true
	s.w.Write([]byte("event: " + name + "\n"))
	for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		s.w.Write([]byte("data: "))
		s.w.Write(line)
		s.w.Write([]byte("\n"))
	}
	s.w.Write([]byte("\n"))
	s.fl.Flush()
}

// comment emits an SSE comment line (clients ignore it; proxies see
// traffic and keep the connection open).
func (s *sseWriter) comment(text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.wrote = true
	s.w.Write([]byte(": " + text + "\n\n"))
	s.fl.Flush()
}

// close detaches the writer from the connection; subsequent events are
// dropped. Returns whether anything was ever written (an untouched
// stream can still fall back to a plain HTTP error).
func (s *sseWriter) close() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.wrote
}

// streamWindowFor picks the sample-window size for a streamed run: the
// request's epoch when set (even without telemetry — the samples are
// the point of streaming), else ~50 windows across the run.
func streamWindowFor(req, n SimRequest) int64 {
	if n.Epoch > 0 {
		return n.Epoch
	}
	if req.Epoch > 0 {
		return req.Epoch
	}
	w := n.Cycles / 50
	if w < 1 {
		w = 1
	}
	return w
}

// handleSimulateSSE is POST /v1/simulate?stream=sse. req is the decoded
// request, n its canonical form, key the shared content address.
func (s *Server) handleSimulateSSE(w http.ResponseWriter, r *http.Request, req, n SimRequest, key string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, "streaming unsupported by this connection", http.StatusNotImplemented)
		return
	}
	info := requestInfo(r)
	span := requestSpan(r)
	if info != nil {
		info.key = key
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.Header().Set("X-Cache-Key", key)
	sw := &sseWriter{w: w, fl: fl}
	defer sw.close()

	window := streamWindowFor(req, n)
	compute := func(ctx context.Context) ([]byte, error) {
		qw := span.StartChild("queue_wait")
		b, err := s.pool.Submit(ctx, runner.Job[[]byte]{Key: key, Run: func(jctx context.Context, _ int64) ([]byte, error) {
			qw.End()
			cs := span.StartChild("compute")
			defer cs.End()
			if s.testCompute != nil {
				return s.testCompute(jctx, n)
			}
			return s.runSim(jctx, n, key, window, func(smp sim.WindowSample) {
				b, err := json.Marshal(smp)
				if err != nil {
					return
				}
				sw.event("sample", b)
			}, cs)
		}})
		qw.End()
		return b, err
	}

	// Do blocks until the flight finishes; run it aside so this handler
	// can heartbeat the connection meanwhile (a cache hit returns before
	// the first tick; a shared waiter may sit for minutes).
	type result struct {
		body    []byte
		outcome cache.Outcome
		err     error
	}
	done := make(chan result, 1)
	go func() {
		body, outcome, err := s.store.Do(r.Context(), key, s.fleetCompute(r, info, key, compute, nil))
		done <- result{body, outcome, err}
	}()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			sw.comment("keepalive")
		case res := <-done:
			if res.err != nil {
				if info != nil {
					info.cache = "error"
				}
				s.streamError(w, r, sw, key, res.err)
				return
			}
			if info != nil {
				info.cache = res.outcome.String()
			}
			sw.event("result", res.body)
			return
		}
	}
}

// streamError reports a failure on a stream. If nothing has been
// written yet the response falls back to the plain HTTP error mapping
// (status codes stay meaningful for non-led requests); otherwise the
// status line is long gone and the error travels in-band.
func (s *Server) streamError(w http.ResponseWriter, r *http.Request, sw *sseWriter, key string, err error) {
	sw.mu.Lock()
	wrote := sw.wrote
	sw.mu.Unlock()
	if !wrote {
		s.writeError(w, r, key, err)
		return
	}
	msg := struct {
		Error   string `json:"error"`
		Request string `json:"request_id,omitempty"`
	}{Error: err.Error()}
	if info := requestInfo(r); info != nil {
		msg.Request = info.id
	}
	b, _ := json.Marshal(msg)
	sw.event("error", b)
}
