package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/traffic"
)

// closedScenario is a closed-loop client scenario sized for test latency.
const closedScenario = `{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.3,"cycles":800,"seed":3,"workload":{"mode":"closed","window":4,"req_len":1,"resp_len":1,"think":4}}`

// TestSimulateWorkloadShardInvariant pins the serving half of the
// closed-loop determinism contract: the same workload scenario, executed
// on servers configured with different engine shard counts, renders
// byte-identical response bodies (and therefore identical cache
// entries).
func TestSimulateWorkloadShardInvariant(t *testing.T) {
	bodies := make([][]byte, 0, 2)
	for _, shards := range []int{1, 4} {
		s := newTestServer(t, Config{Workers: 1, Shards: shards})
		rec := post(t, s.Handler(), "/v1/simulate", closedScenario)
		if rec.Code != http.StatusOK {
			t.Fatalf("shards=%d: status %d, body %s", shards, rec.Code, rec.Body)
		}
		var resp SimResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Stats.Injected == 0 || resp.Stats.Ejected == 0 {
			t.Fatalf("shards=%d: closed loop moved no traffic: %+v", shards, resp.Stats)
		}
		if resp.Request.VNets < 2 {
			t.Fatalf("shards=%d: normalization did not reserve a reply vnet: %+v", shards, resp.Request)
		}
		bodies = append(bodies, rec.Body.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("workload response bytes differ between shard counts")
	}
}

// testTraceB64 encodes a small spintrace-v1 workload for trace-replay
// requests. Seed varies the destinations so different seeds yield
// different trace bytes, hence different content addresses.
func testTraceB64(t *testing.T, entries int, seed int) string {
	t.Helper()
	var buf bytes.Buffer
	tw := traffic.NewTraceWriter(&buf)
	for i := 0; i < entries; i++ {
		src := i % 16
		dst := (src + 1 + (i+seed)%15) % 16
		if dst == src {
			dst = (dst + 1) % 16
		}
		e := traffic.TraceEntry{Cycle: int64(i / 4), Src: src, Dst: dst, Length: 1 + i%5, VNet: 0}
		if err := tw.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// TestSimulateTraceContentAddressed checks the trace-replay request
// path: a binary trace uploaded through /v1/simulate runs (miss),
// replays byte-identically from the cache (hit), and a different trace
// — same everything else — lands on a different content address.
func TestSimulateTraceContentAddressed(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Workers: 1})
	body := func(seed int) string {
		return fmt.Sprintf(`{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"","rate":0,"cycles":400,"drain_cycles":4000,"seed":9,"trace_b64":%q}`, testTraceB64(t, 64, seed))
	}
	first := post(t, s.Handler(), "/v1/simulate", body(0))
	if first.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	var resp SimResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Injected != 64 {
		t.Fatalf("replayed %d packets, want 64", resp.Stats.Injected)
	}
	if resp.Stats.Drained == nil || !*resp.Stats.Drained {
		t.Fatalf("trace replay did not drain: %+v", resp.Stats)
	}

	second := post(t, s.Handler(), "/v1/simulate", body(0))
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("trace cache hit is not byte-identical")
	}

	other := post(t, s.Handler(), "/v1/simulate", body(7))
	if got := other.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("different trace X-Cache = %q, want miss", got)
	}
	if other.Header().Get("X-Cache-Key") == first.Header().Get("X-Cache-Key") {
		t.Fatal("different trace bytes mapped to the same content address")
	}
}

// TestSimulateRejectsCorruptTrace checks that a bit-flipped trace is
// rejected at validation time with a 4xx, before any cache interaction.
func TestSimulateRejectsCorruptTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	good := testTraceB64(t, 32, 0)
	raw, err := base64.StdEncoding.DecodeString(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	corrupt := base64.StdEncoding.EncodeToString(raw)
	rec := post(t, s.Handler(), "/v1/simulate",
		fmt.Sprintf(`{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"","rate":0,"cycles":100,"seed":1,"trace_b64":%q}`, corrupt))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt trace: status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}
