package serve

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsRenderGolden locks the full text exposition of every
// instrument kind against a golden file: label ordering is stable, an
// empty histogram still emits its complete bucket set including +Inf,
// and large integral counts render without an exponent. Regenerate with
// `go test ./internal/serve -run MetricsRenderGolden -update`.
func TestMetricsRenderGolden(t *testing.T) {
	reg := newRegistry()

	c := reg.counter("t_requests_total", "requests by label")
	c.AddL(map[string]string{"endpoint": "simulate", "code": "200"}, 3)
	c.AddL(map[string]string{"code": "500", "endpoint": "simulate"}, 1) // same set, shuffled insert order
	c.AddL(map[string]string{"endpoint": "sweep", "code": "200"}, 1<<52)

	reg.counter("t_untouched_total", "a counter nobody incremented")
	reg.counterFunc("t_sampled_total", "a scrape-time sampled counter", func() float64 { return 42 })

	g := reg.gauge("t_depth", "a settable gauge")
	g.Set(7)
	reg.gaugeFunc("t_ratio", "a sampled gauge", func() float64 { return math.NaN() })

	h := reg.histogram("t_latency_seconds", "an observed histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // lands in +Inf overflow
	h.ObserveL(map[string]string{"endpoint": "simulate"}, 2)
	h.ObserveL(map[string]string{"endpoint": "big"}, 1<<52) // must not render as 4.5e+15

	reg.histogram("t_empty_seconds", "a histogram nobody observed", []float64{1, 2})

	var buf bytes.Buffer
	reg.writeTo(&buf)
	got := buf.String()

	golden := filepath.Join("testdata", "metrics_render.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics render drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Spot-check the properties the golden encodes, so a careless
	// -update can't silently bless a regression.
	for _, must := range []string{
		`t_requests_total{code="200",endpoint="simulate"} 3`, // sorted label keys
		"t_requests_total{code=\"200\",endpoint=\"sweep\"} 4503599627370496\n",
		"t_untouched_total 0\n",
		`t_empty_seconds_bucket{le="1"} 0`,
		`t_empty_seconds_bucket{le="+Inf"} 0`,
		"t_empty_seconds_sum 0\n",
		"t_empty_seconds_count 0\n",
		"t_ratio NaN\n",
		"t_latency_seconds_sum{endpoint=\"big\"} 4503599627370496\n",
		`t_latency_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(got, must) {
			t.Errorf("render missing %q", must)
		}
	}
	if strings.Contains(got, "e+") {
		t.Error("render contains exponent notation; large counts must round-trip")
	}
}

// TestMetricsEmptyHistogramTransient pins that the render-only zero
// series of an untouched histogram vanishes once a labeled observation
// arrives — it must never persist as a phantom unlabeled series.
func TestMetricsEmptyHistogramTransient(t *testing.T) {
	reg := newRegistry()
	h := reg.histogram("t_h", "h", []float64{1})

	var before bytes.Buffer
	reg.writeTo(&before)
	if !strings.Contains(before.String(), `t_h_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram lacks +Inf bucket:\n%s", before.String())
	}

	h.ObserveL(map[string]string{"endpoint": "x"}, 0.5)
	var after bytes.Buffer
	reg.writeTo(&after)
	if strings.Contains(after.String(), `t_h_bucket{le="+Inf"} 0`) ||
		strings.Contains(after.String(), "t_h_count 0") {
		t.Errorf("phantom unlabeled zero series survived first observation:\n%s", after.String())
	}
	if !strings.Contains(after.String(), `t_h_bucket{endpoint="x",le="+Inf"} 1`) {
		t.Errorf("labeled series missing:\n%s", after.String())
	}
}
