package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/otrace"
)

// TestMetricsRenderConcurrent hammers the text renderer while every
// instrument kind mutates underneath it: scrapes must never tear, lose
// an instrument, or trip the race detector (run with -race), and the
// totals after the storm must account for every recorded sample —
// including series born mid-scrape.
func TestMetricsRenderConcurrent(t *testing.T) {
	reg := newRegistry()
	c := reg.counter("t_ops_total", "ops by worker and op")
	g := reg.gauge("t_level", "a settable gauge")
	h := reg.histogram("t_dur_seconds", "durations", []float64{0.001, 0.01, 0.1, 1})
	reg.gaugeFunc("t_sampled", "a scrape-time gauge", func() float64 { return 1 })

	const workers, iters = 8, 400
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				reg.writeTo(&buf)
				out := buf.String()
				// Every scrape is a complete exposition, whatever the
				// mutators are doing.
				for _, must := range []string{
					"# TYPE t_ops_total counter",
					"# TYPE t_dur_seconds histogram",
					"t_sampled 1\n",
				} {
					if !strings.Contains(out, must) {
						t.Errorf("concurrent scrape lost %q", must)
						return
					}
				}
			}
		}()
	}
	var mut sync.WaitGroup
	for w := 0; w < workers; w++ {
		mut.Add(1)
		go func(w int) {
			defer mut.Done()
			for i := 0; i < iters; i++ {
				c.AddL(map[string]string{"worker": fmt.Sprintf("w%d", w%3), "op": fmt.Sprintf("op%d", i%5)}, 1)
				g.Set(float64(i))
				h.ObserveL(map[string]string{"span": fmt.Sprintf("s%d", i%4)}, float64(i%7)/100)
				h.Observe(float64(i % 3))
			}
		}(w)
	}
	mut.Wait()
	close(stop)
	scrapers.Wait()

	var total float64
	for w := 0; w < 3; w++ {
		for op := 0; op < 5; op++ {
			total += c.Value(map[string]string{"worker": fmt.Sprintf("w%d", w), "op": fmt.Sprintf("op%d", op)})
		}
	}
	if total != workers*iters {
		t.Errorf("counter lost samples under scrape load: %v, want %d", total, workers*iters)
	}
	if n := h.Count(nil); n != workers*iters {
		t.Errorf("unlabeled histogram count %d, want %d", n, workers*iters)
	}
	for i := 0; i < 4; i++ {
		if n := h.Count(map[string]string{"span": fmt.Sprintf("s%d", i)}); n != workers*iters/4 {
			t.Errorf("series s%d count %d, want %d", i, n, workers*iters/4)
		}
	}
}

// TestSpanDurationHistogramEdges pins the span-duration histogram's
// edge behaviour: an untouched histogram renders its full zero bucket
// set, a sub-minimum observation lands in every cumulative bucket, an
// observation beyond the top bound lands only in +Inf (the finite
// buckets are clamped), and the tracer's OnEnd hook feeds the histogram
// under the span's metric name.
func TestSpanDurationHistogramEdges(t *testing.T) {
	s := newTestServer(t, Config{})
	scrape := func() string {
		return post(t, s.Handler(), "/metrics", "").Body.String()
	}

	// Empty: the complete unlabeled zero series, +Inf included, so
	// rate() works from the first real sample.
	out := scrape()
	for _, must := range []string{
		`spind_span_duration_seconds_bucket{le="1e-05"} 0`,
		`spind_span_duration_seconds_bucket{le="60"} 0`,
		`spind_span_duration_seconds_bucket{le="+Inf"} 0`,
		"spind_span_duration_seconds_count 0",
	} {
		if !strings.Contains(out, must) {
			t.Errorf("empty histogram render missing %q:\n%s", must, out)
		}
	}

	// Single bucket: one observation below the smallest bound shows up
	// in every cumulative bucket of its series.
	s.mSpanSeconds.ObserveL(map[string]string{"span": "edge"}, 5e-6)
	out = scrape()
	for _, le := range []string{"1e-05", "0.0001", "0.001", "0.01", "0.1", "0.5", "1", "5", "10", "30", "60", "+Inf"} {
		want := fmt.Sprintf(`spind_span_duration_seconds_bucket{span="edge",le=%q} 1`, le)
		if !strings.Contains(out, want) {
			t.Errorf("single-bucket render missing %q", want)
		}
	}

	// Max-clamped: an observation past the top bound increments only the
	// +Inf overflow; every finite bucket keeps its prior count.
	s.mSpanSeconds.ObserveL(map[string]string{"span": "edge"}, 3600)
	out = scrape()
	if !strings.Contains(out, `spind_span_duration_seconds_bucket{span="edge",le="60"} 1`) {
		t.Error("over-max observation leaked into a finite bucket")
	}
	if !strings.Contains(out, `spind_span_duration_seconds_bucket{span="edge",le="+Inf"} 2`) {
		t.Error("over-max observation missing from the +Inf overflow")
	}
	if !strings.Contains(out, `spind_span_duration_seconds_count{span="edge"} 2`) {
		t.Error("series count did not follow the observations")
	}

	// The tracer feeds the histogram on span end, under the span's
	// metric name — per-peer names like proxy:b collapse onto one label.
	root := s.tracer.StartRequest("probe", "")
	hop := root.StartChild("proxy:some-peer")
	hop.SetMetricName("proxy")
	hop.End()
	root.End()
	if n := s.mSpanSeconds.Count(map[string]string{"span": "probe"}); n != 1 {
		t.Errorf("root span not observed under its name: count %d", n)
	}
	if n := s.mSpanSeconds.Count(map[string]string{"span": "proxy"}); n != 1 {
		t.Errorf("hop span not collapsed onto its metric name: count %d", n)
	}
	if n := s.mSpanSeconds.Count(map[string]string{"span": "proxy:some-peer"}); n != 0 {
		t.Errorf("per-peer span name leaked into the label set: count %d", n)
	}
}

// TestTraceServerEnvelope pins the ?trace=server contract: the response
// becomes a {trace_id, spans, result} envelope whose result is the
// exact simulation payload, the span tree covers the request stages,
// and the cache below stores only the inner bytes — a repeat without
// the flag is a plain hit.
func TestTraceServerEnvelope(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/simulate?trace=server", smallScenario)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var doc traceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("response is not a trace envelope: %v", err)
	}
	if !otrace.ValidTraceID(doc.TraceID) {
		t.Fatalf("envelope trace ID %q invalid", doc.TraceID)
	}
	names := map[string]bool{}
	for _, sp := range doc.Spans {
		if sp.TraceID != doc.TraceID {
			t.Errorf("span %s belongs to trace %s, envelope says %s", sp.Name, sp.TraceID, doc.TraceID)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"simulate", "decode", "validate", "queue_wait", "compute", "cache"} {
		if !names[want] {
			t.Errorf("envelope missing span %q (have %v)", want, names)
		}
	}
	var inner SimResponse
	if err := json.Unmarshal(doc.Result, &inner); err != nil || inner.Stats.Injected == 0 {
		t.Fatalf("envelope result is not the simulation payload: %v", err)
	}

	// The envelope is presentation-only: the cache stored the inner
	// bytes, so an untraced repeat is a hit with the plain payload.
	plain := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if got := plain.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("untraced repeat X-Cache = %q, want hit (envelope leaked into the cache)", got)
	}
	if strings.Contains(plain.Body.String(), `"trace_id"`) {
		t.Error("plain response carries the trace envelope")
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, plain.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	var envCompact bytes.Buffer
	if err := json.Compact(&envCompact, doc.Result); err != nil {
		t.Fatal(err)
	}
	if compact.String() != envCompact.String() {
		t.Error("envelope result differs from the cached payload")
	}
}

// fetchTrace GETs /v1/trace/<id> from one fleet node (404 -> empty doc).
func fetchTrace(t *testing.T, n *fleetNode, id, query string) traceResponse {
	t.Helper()
	resp, err := http.Get("http://" + n.addr + "/v1/trace/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc traceResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("trace response undecodable: %v", err)
		}
	}
	return doc
}

// spanNodes reports the distinct node IDs a span set covers.
func spanNodes(spans []otrace.SpanData) map[string]bool {
	nodes := map[string]bool{}
	for _, sp := range spans {
		nodes[sp.Node] = true
	}
	return nodes
}

// TestFleetMergedTraceTimeline pins the cross-node acceptance criterion:
// one proxied request yields, from either node, a merged span tree
// covering both nodes, with the peer's root span stitched under the
// proxy hop span, and a Perfetto-loadable rendering with one process
// lane per node.
func TestFleetMergedTraceTimeline(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	seed := pickSeed(t, a, "b") // b owns it; a proxies
	resp, body := postNode(t, a, "/v1/simulate", simBody(seed), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet"); got != "proxy:b" {
		t.Fatalf("X-Fleet = %q, want proxy:b", got)
	}
	tid, _, ok := otrace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q malformed", resp.Header.Get("traceparent"))
	}

	// Root spans land in each node's ring when the request ends — after
	// the response body is written — so the merged view converges a beat
	// after the client sees the bytes.
	var doc traceResponse
	deadline := time.Now().Add(2 * time.Second)
	for {
		doc = fetchTrace(t, a, tid, "")
		if n := spanNodes(doc.Spans); n["a"] && n["b"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged trace never covered both nodes: %+v", doc.Spans)
		}
		time.Sleep(5 * time.Millisecond)
	}

	byID := map[string]otrace.SpanData{}
	var proxySpan, peerRoot *otrace.SpanData
	for i := range doc.Spans {
		sp := doc.Spans[i]
		if sp.TraceID != tid {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, tid)
		}
		byID[sp.SpanID] = sp
		if sp.Node == "a" && sp.Name == "proxy:b" {
			proxySpan = &doc.Spans[i]
		}
		if sp.Node == "b" && sp.Name == "simulate" {
			peerRoot = &doc.Spans[i]
		}
	}
	if proxySpan == nil || peerRoot == nil {
		t.Fatalf("merged trace lacks the hop pair (proxy=%v peerRoot=%v):\n%+v", proxySpan, peerRoot, doc.Spans)
	}
	// The stitch: b's root is a child of a's proxy span, which is itself
	// rooted in a's request span. One connected tree across two nodes.
	if peerRoot.Parent != proxySpan.SpanID {
		t.Errorf("peer root parent %s, want the proxy span %s", peerRoot.Parent, proxySpan.SpanID)
	}
	if parent, ok := byID[proxySpan.Parent]; !ok || parent.Node != "a" || parent.Name != "simulate" {
		t.Errorf("proxy span not rooted in a's request span (parent %q)", proxySpan.Parent)
	}

	// The same merged view is reachable from the peer: collection fans
	// out regardless of which node the operator asks.
	fromB := fetchTrace(t, b, tid, "")
	if n := spanNodes(fromB.Spans); !n["a"] || !n["b"] {
		t.Errorf("trace fetched from b covers %v, want both nodes", n)
	}

	// Perfetto rendering: valid Chrome trace-event JSON, one pid lane
	// per node so the two sides sit in separate tracks.
	pres, err := http.Get("http://" + a.addr + "/v1/trace/" + tid + "?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer pres.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Pid  int    `json:"pid"`
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(pres.Body).Decode(&chrome); err != nil {
		t.Fatalf("perfetto rendering is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if len(pids) < 2 {
		t.Errorf("perfetto timeline has %d process lanes, want one per node (>=2)", len(pids))
	}
}
