package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/otrace"
)

// syncBuffer is a log sink safe to read while the server writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// fleetNode is one full spind node — cache, fleet, server — on a real
// loopback listener, the same wiring cmd/spind performs.
type fleetNode struct {
	id       string
	addr     string
	store    *cache.Store
	f        *fleet.Fleet
	s        *Server
	hs       *http.Server
	logs     *syncBuffer
	computes atomic.Int64
}

// newFleetNode boots a node; peers seeds its membership. Simulations
// are stubbed (testCompute) so fleet tests measure routing, not the
// simulator.
func newFleetNode(t *testing.T, id string, peers []string, interval time.Duration) *fleetNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	n := &fleetNode{id: id, addr: ln.Addr().String(), store: store, logs: &syncBuffer{}}
	n.f, err = fleet.New(fleet.Config{
		ID:        id,
		Advertise: n.addr,
		Peers:     peers,
		Interval:  interval,
		Cache:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.s, err = New(Config{Cache: store, Workers: 2, Fleet: n.f, Log: slog.New(slog.NewJSONHandler(n.logs, nil))})
	if err != nil {
		t.Fatal(err)
	}
	n.s.testCompute = func(ctx context.Context, req SimRequest) ([]byte, error) {
		n.computes.Add(1)
		return []byte(fmt.Sprintf(`{"computed_on":%q,"seed":%d}`, id, req.Seed)), nil
	}
	n.hs = &http.Server{Handler: n.s.Handler()}
	go n.hs.Serve(ln)
	n.f.Start()
	t.Cleanup(func() {
		n.hs.Close()
		n.s.Close()
		n.f.Close()
	})
	return n
}

// converge waits until every node sees every other node alive and
// reports ready.
func converge(t *testing.T, nodes ...*fleetNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			ms := n.f.Members()
			if len(ms) != len(nodes) || !n.f.Ready() {
				ok = false
				break
			}
			for _, m := range ms {
				if m.State != fleet.StateAlive {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// simBody builds a distinct valid scenario per seed.
func simBody(seed int) string {
	return fmt.Sprintf(`{"topology":"mesh:4x4","routing":"min_adaptive","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":%d}`, seed)
}

// simKey is the content address the fleet routes on for simBody(seed).
func simKey(t *testing.T, seed int) string {
	t.Helper()
	var req SimRequest
	if err := json.Unmarshal([]byte(simBody(seed)), &req); err != nil {
		t.Fatal(err)
	}
	return cache.KeyOf(ResultVersion+"/simulate", req.normalized().canonical())
}

// postNode POSTs a body to one node over the real listener.
func postNode(t *testing.T, n *fleetNode, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+n.addr+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// pickSeed finds a seed whose key is owned by wantOwner according to
// asker's ring view.
func pickSeed(t *testing.T, asker *fleetNode, wantOwner string) int {
	t.Helper()
	for seed := 1; seed < 10_000; seed++ {
		if m, ok := asker.f.Owner(simKey(t, seed)); ok && m.ID == wantOwner {
			return seed
		}
	}
	t.Fatal("no seed hashed to the wanted owner")
	return 0
}

// TestFleetProxyToOwner pins the ownership data plane: a request landing
// on a non-owner is forwarded to the key's ring owner, computes exactly
// once fleet-wide, and both nodes answer repeats from cache.
func TestFleetProxyToOwner(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	seed := pickSeed(t, a, "b") // b owns it; a must forward
	resp, body := postNode(t, a, "/v1/simulate", simBody(seed), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet"); got != "proxy:b" {
		t.Fatalf("X-Fleet = %q, want proxy:b", got)
	}
	if !bytes.Contains(body, []byte(`"computed_on":"b"`)) {
		t.Fatalf("computed on the wrong node: %s", body)
	}
	if a.computes.Load() != 0 || b.computes.Load() != 1 {
		t.Fatalf("computes a=%d b=%d, want 0/1", a.computes.Load(), b.computes.Load())
	}

	// The proxied result was cached on both sides: repeats hit locally
	// everywhere, and nothing recomputes.
	for _, n := range []*fleetNode{a, b} {
		resp, again := postNode(t, n, "/v1/simulate", simBody(seed), nil)
		if got := resp.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("repeat on %s: X-Cache = %q, want hit", n.id, got)
		}
		if !bytes.Equal(again, body) {
			t.Fatalf("repeat on %s returned different bytes", n.id)
		}
	}
	if a.computes.Load()+b.computes.Load() != 1 {
		t.Fatal("repeat requests recomputed")
	}
}

// TestFleetFillFromPeer pins the cache-fill path: when the owner already
// holds the bytes, a non-owner serves them without computing anything.
func TestFleetFillFromPeer(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	seed := pickSeed(t, a, "b")
	key := simKey(t, seed)
	val := []byte(`{"precomputed":true}`)
	if err := b.store.Put(key, val); err != nil {
		t.Fatal(err)
	}
	resp, body := postNode(t, a, "/v1/simulate", simBody(seed), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet"); got != "fill:b" {
		t.Fatalf("X-Fleet = %q, want fill:b", got)
	}
	if !bytes.Equal(body, val) {
		t.Fatalf("fill returned %s, want the owner's exact bytes", body)
	}
	if a.computes.Load() != 0 && b.computes.Load() != 0 {
		t.Fatal("a fill hit ran a simulation")
	}
}

// TestFleetOwnerDownFallback pins availability: when the owner is
// unreachable (but not yet suspected), the receiving node computes
// locally instead of failing the request.
func TestFleetOwnerDownFallback(t *testing.T) {
	// A long interval keeps b "alive" in a's view for the whole test, so
	// the request exercises the fill-error → proxy-error → local path.
	a := newFleetNode(t, "a", nil, 500*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 500*time.Millisecond)
	converge(t, a, b)

	seed := pickSeed(t, a, "b")
	b.hs.Close() // SIGKILL stand-in: the port stops answering
	resp, body := postNode(t, a, "/v1/simulate", simBody(seed), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet"); got != "fallback" {
		t.Fatalf("X-Fleet = %q, want fallback", got)
	}
	if !bytes.Contains(body, []byte(`"computed_on":"a"`)) {
		t.Fatalf("fallback did not compute locally: %s", body)
	}
	if a.computes.Load() != 1 {
		t.Fatalf("a computed %d times, want 1", a.computes.Load())
	}
}

// TestFleetRequestIDPropagation pins the observability satellite: a
// client-supplied X-Request-ID survives the proxy hop, the response
// reports the full node path, and the same ID is greppable in both
// nodes' request logs.
func TestFleetRequestIDPropagation(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	const reqID = "e2e-corr-0042"
	seed := pickSeed(t, a, "b")
	resp, body := postNode(t, a, "/v1/simulate", simBody(seed), map[string]string{"X-Request-ID": reqID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID = %q, want %q (ID must survive the hop)", got, reqID)
	}
	if got := resp.Header.Get("X-Fleet-Path"); got != "a>b" {
		t.Fatalf("X-Fleet-Path = %q, want a>b", got)
	}
	// The trace ID travels with the request too: the response names the
	// trace, and both nodes' structured logs carry it.
	tid, _, ok := otrace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q is malformed", resp.Header.Get("traceparent"))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		la, lb := a.logs.String(), b.logs.String()
		if strings.Contains(la, `"id":"`+reqID+`"`) && strings.Contains(lb, `"id":"`+reqID+`"`) {
			if !strings.Contains(lb, `"path":"a>b"`) {
				t.Fatalf("owner log lacks the hop path:\n%s", lb)
			}
			if !strings.Contains(la, `"trace":"`+tid+`"`) || !strings.Contains(lb, `"trace":"`+tid+`"`) {
				t.Fatalf("trace ID %s not in both logs:\n--- a ---\n%s\n--- b ---\n%s", tid, la, lb)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request ID not in both logs:\n--- a ---\n%s\n--- b ---\n%s", la, lb)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetAdminEndpoint sanity-checks GET /v1/fleet: members, ring, and
// counters visible to operators.
func TestFleetAdminEndpoint(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	resp, err := http.Get("http://" + a.addr + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status fleet.AdminStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Self != "a" || !status.Ready || len(status.Members) != 2 || len(status.Ring.Nodes) != 2 {
		t.Fatalf("admin status = %+v", status)
	}
}

// TestFleetMetricsExposition checks the per-peer fleet series render on
// /metrics after a proxied request.
func TestFleetMetricsExposition(t *testing.T) {
	a := newFleetNode(t, "a", nil, 25*time.Millisecond)
	b := newFleetNode(t, "b", []string{a.addr}, 25*time.Millisecond)
	converge(t, a, b)

	seed := pickSeed(t, a, "b")
	postNode(t, a, "/v1/simulate", simBody(seed), nil)
	resp, err := http.Get("http://" + a.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`spind_fleet_members{state="alive"} 2`,
		"spind_fleet_ring_nodes 2",
		"spind_fleet_ready 1",
		`spind_fleet_proxied_total{peer="b"} 1`,
		"spind_fleet_gossip_rounds_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: a fleetless
// server is ready until draining; a fleet server is unready before its
// first gossip round.
func TestReadyzLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	get := func(path string) (int, string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh /readyz = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	s.SetDraining(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q", code, body)
	}
	// Liveness is unaffected by the drain: the process must not be
	// restarted for shutting down cleanly.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz = %d", code)
	}
	s.SetDraining(false)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("undrained /readyz = %d", code)
	}

	// A fleet member with peers is unready until gossip has run once.
	store, err := cache.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{ID: "x", Advertise: "127.0.0.1:1", Peers: []string{"127.0.0.1:2"}, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	fs := newTestServer(t, Config{Cache: store, Fleet: f})
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	fs.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "waiting-for-gossip") {
		t.Fatalf("pre-gossip /readyz = %d %q", rec.Code, rec.Body.String())
	}
}
