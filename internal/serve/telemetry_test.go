package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSimulateTelemetryResponse exercises the opt-in telemetry path: a
// request with telemetry gets latency percentiles and a windowed
// time-series, the same request without telemetry gets neither, and
// every executed request feeds the simulator-level Prometheus series.
func TestSimulateTelemetryResponse(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1,"telemetry":true,"epoch":250}`
	rec := post(t, s.Handler(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Latency == nil || resp.TimeSeries == nil {
		t.Fatalf("telemetry request missing latency/time_series: %s", rec.Body.String())
	}
	if resp.Latency.Count <= 0 || resp.Latency.Count != resp.Stats.Ejected {
		t.Errorf("latency count %d != ejected %d", resp.Latency.Count, resp.Stats.Ejected)
	}
	if !(resp.Latency.P50 <= resp.Latency.P95 && resp.Latency.P95 <= resp.Latency.P99) {
		t.Errorf("percentiles not monotone: %+v", resp.Latency)
	}
	if resp.TimeSeries.Schema != sim.TimeSeriesSchema || resp.TimeSeries.Window != 250 {
		t.Errorf("bad time-series header: %+v", resp.TimeSeries)
	}
	if len(resp.TimeSeries.Samples) == 0 {
		t.Error("time-series has no windows")
	}
	// Epoch normalisation: request echo carries the canonical form.
	if resp.Request.Epoch != 250 || !resp.Request.Telemetry {
		t.Errorf("request echo lost telemetry knobs: %+v", resp.Request)
	}

	// The same scenario without telemetry must not leak the new fields,
	// and must hash to a different cache key.
	plain := post(t, s.Handler(), "/v1/simulate", strings.Replace(body, `,"telemetry":true,"epoch":250`, "", 1))
	if plain.Code != http.StatusOK {
		t.Fatalf("plain status %d: %s", plain.Code, plain.Body.String())
	}
	for _, banned := range []string{`"latency"`, `"time_series"`, `"p95"`} {
		if strings.Contains(plain.Body.String(), banned) {
			t.Errorf("telemetry-free response leaks %s", banned)
		}
	}
	if a, b := rec.Header().Get("X-Cache-Key"), plain.Header().Get("X-Cache-Key"); a == b {
		t.Error("telemetry and plain requests share a cache key")
	}

	// Both requests executed a simulator, so the simulator-level series
	// must exist with real samples.
	mrec := post(t, s.Handler(), "/metrics", "")
	metrics := mrec.Body.String()
	for _, must := range []string{
		"spind_sim_spins_total",
		"spind_sim_recoveries_total",
		"spind_sim_probes_total",
		"spind_sim_kill_moves_total",
		"spind_sim_deadlock_firings_total",
		`spind_sim_packet_latency_cycles_bucket{quantile="p50",le="+Inf"}`,
	} {
		if !strings.Contains(metrics, must) {
			t.Errorf("/metrics missing %s", must)
		}
	}
	if s.mSimLatency.Count(map[string]string{"quantile": "p95"}) != 2 {
		t.Errorf("p95 series observed %d times, want 2 (one per executed request)",
			s.mSimLatency.Count(map[string]string{"quantile": "p95"}))
	}
}

// TestSimulateEpochValidation pins the serving-side epoch rules.
func TestSimulateEpochValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/simulate",
		`{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1,"epoch":-5}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative epoch: status %d", rec.Code)
	}
	// Epoch without telemetry is scrubbed: the request hits the same
	// cache entry as the bare scenario.
	a := SimRequest{Scenario: mustScenario(t, smallScenario), Epoch: 500}.canonical()
	b := SimRequest{Scenario: mustScenario(t, smallScenario)}.canonical()
	if string(a) != string(b) {
		t.Errorf("epoch without telemetry changes canonical form:\n%s\n%s", a, b)
	}
	// Telemetry defaults its epoch to 100.
	c := SimRequest{Scenario: mustScenario(t, smallScenario), Telemetry: true}.canonical()
	d := SimRequest{Scenario: mustScenario(t, smallScenario), Telemetry: true, Epoch: 100}.canonical()
	if string(c) != string(d) {
		t.Errorf("default epoch spellings diverge:\n%s\n%s", c, d)
	}
}

// reqRecord is the decoded shape of one structured request log record.
type reqRecord struct {
	Msg      string `json:"msg"`
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Code     int    `json:"code"`
	Cache    string `json:"cache"`
	Key      string `json:"key"`
	Trace    string `json:"trace"`
	Span     string `json:"span"`
}

// TestRequestLogging covers the structured per-request log record: one
// JSON object per request carrying the ID (echoed in the X-Request-ID
// header), endpoint, status, cache outcome, job key, and the trace/span
// IDs; and error bodies referencing the same ID.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{Log: slog.New(slog.NewJSONHandler(&buf, nil))})

	miss := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if miss.Code != http.StatusOK {
		t.Fatalf("miss status %d: %s", miss.Code, miss.Body.String())
	}
	hit := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if hit.Code != http.StatusOK {
		t.Fatalf("hit status %d", hit.Code)
	}
	bad := post(t, s.Handler(), "/v1/simulate", "{nope")
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("bad status %d", bad.Code)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 log records, got %d:\n%s", len(lines), buf.String())
	}
	recs := make([]reqRecord, len(lines))
	hexID := regexp.MustCompile(`^[0-9a-f]{32}$`)
	for i, l := range lines {
		if err := json.Unmarshal([]byte(l), &recs[i]); err != nil {
			t.Fatalf("record %d is not JSON: %q (%v)", i, l, err)
		}
		if recs[i].Msg != "request" || recs[i].Endpoint != "simulate" || recs[i].ID == "" {
			t.Errorf("record %d malformed: %+v", i, recs[i])
		}
		if !hexID.MatchString(recs[i].Trace) || len(recs[i].Span) != 16 {
			t.Errorf("record %d lacks trace/span IDs: %+v", i, recs[i])
		}
	}
	keyed := regexp.MustCompile(`^[0-9a-f]{64}$`)
	if recs[0].Code != 200 || recs[0].Cache != "miss" || !keyed.MatchString(recs[0].Key) {
		t.Errorf("miss record wrong: %+v", recs[0])
	}
	if recs[1].Code != 200 || recs[1].Cache != "hit" || !keyed.MatchString(recs[1].Key) {
		t.Errorf("hit record wrong: %+v", recs[1])
	}
	if recs[2].Code != 400 || recs[2].Cache != "-" || recs[2].Key != "-" {
		t.Errorf("reject record wrong: %+v", recs[2])
	}

	// The header ID, the log-record ID, and the error-body ID all agree.
	badID := bad.Header().Get("X-Request-ID")
	if badID == "" {
		t.Fatal("no X-Request-ID header")
	}
	if recs[2].ID != badID {
		t.Errorf("log record carries ID %s, header says %s", recs[2].ID, badID)
	}
	if !strings.Contains(bad.Body.String(), "(request "+badID+")") {
		t.Errorf("error body does not echo request ID: %q", bad.Body.String())
	}
	missID, hitID := miss.Header().Get("X-Request-ID"), hit.Header().Get("X-Request-ID")
	if missID == hitID {
		t.Error("request IDs repeat")
	}
}
