package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the daemon's build identity as the Go runtime reports
// it: module version, VCS commit (shortened), and toolchain. It backs
// GET /v1/version, the spind_build_info metric, and the version string
// gossiped to fleet peers — three views of one answer to "what exactly
// is running on that node?".
type BuildInfo struct {
	Version string `json:"version"`
	Commit  string `json:"commit,omitempty"`
	Go      string `json:"go"`
}

// String renders "version+commit", the compact form fleet members
// gossip and /v1/fleet displays.
func (b BuildInfo) String() string {
	if b.Commit != "" {
		return b.Version + "+" + b.Commit
	}
	return b.Version
}

// ReadBuild resolves the build identity via runtime/debug.ReadBuildInfo.
// Binaries built without module or VCS stamping (go test, plain go
// build in a work tree) degrade to "devel" with no commit.
func ReadBuild() BuildInfo {
	b := BuildInfo{Version: "devel", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
	}
	for _, st := range bi.Settings {
		if st.Key == "vcs.revision" && st.Value != "" {
			rev := st.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			b.Commit = rev
		}
	}
	return b
}

// handleVersion is GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, r, "GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.build)
}
