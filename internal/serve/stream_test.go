package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits an event-stream body into events (comments dropped).
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		var ev sseEvent
		var data []string
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = append(data, strings.TrimPrefix(line, "data: "))
			case strings.HasPrefix(line, ":"), line == "":
				// comment or trailing blank
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		if ev.name != "" {
			ev.data = strings.Join(data, "\n")
			events = append(events, ev)
		}
	}
	return events
}

// streamScenario asks for telemetry with a 100-cycle window over a
// 1000-cycle run: ten sample events, deterministically.
const streamScenario = `{"topology":"mesh:4x4","routing":"min_adaptive","scheme":"spin","traffic":"uniform_random","rate":0.05,"cycles":1000,"seed":1,"telemetry":true,"epoch":100}`

// TestSimulateSSEStreamsSamplesAndResult is the streaming tentpole
// check: ?stream=sse delivers one sample event per closed telemetry
// window followed by a result event whose payload is byte-identical to
// the non-streaming response — same cache key, same bytes.
func TestSimulateSSEStreamsSamplesAndResult(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/simulate?stream=sse", streamScenario)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	events := parseSSE(t, rec.Body.String())
	samples := 0
	var result string
	for _, ev := range events {
		switch ev.name {
		case "sample":
			if result != "" {
				t.Fatal("sample event after the result event")
			}
			if !strings.Contains(ev.data, `"injected_flits"`) {
				t.Fatalf("sample payload is not a WindowSample: %s", ev.data)
			}
			samples++
		case "result":
			result = ev.data
		case "error":
			t.Fatalf("stream errored: %s", ev.data)
		}
	}
	if samples != 10 {
		t.Fatalf("got %d sample events, want 10 (1000 cycles / epoch 100)", samples)
	}
	if result == "" {
		t.Fatal("stream ended without a result event")
	}

	// The streamed result must be the exact bytes a plain request gets.
	plain := post(t, s.Handler(), "/v1/simulate", streamScenario)
	if plain.Header().Get("X-Cache") != "hit" {
		t.Fatalf("plain repeat X-Cache = %q — stream and non-stream must share one cache entry", plain.Header().Get("X-Cache"))
	}
	if want := strings.TrimRight(plain.Body.String(), "\n"); result != want {
		t.Fatalf("streamed result differs from the non-streaming body:\n--- sse ---\n%s\n--- plain ---\n%s", result, want)
	}
	if got, want := rec.Header().Get("X-Cache-Key"), plain.Header().Get("X-Cache-Key"); got != want {
		t.Fatalf("stream key %q != plain key %q", got, want)
	}
}

// TestSimulateSSECacheHitSkipsSamples: a stream request for an
// already-cached result replays the bytes without re-simulating, so it
// carries no sample events.
func TestSimulateSSECacheHitSkipsSamples(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := post(t, s.Handler(), "/v1/simulate", streamScenario); rec.Code != http.StatusOK {
		t.Fatalf("priming request failed: %d", rec.Code)
	}
	misses := s.store.Snapshot().Misses

	rec := post(t, s.Handler(), "/v1/simulate?stream=sse", streamScenario)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	events := parseSSE(t, rec.Body.String())
	if len(events) != 1 || events[0].name != "result" {
		t.Fatalf("cache-hit stream events = %+v, want exactly one result", events)
	}
	if st := s.store.Snapshot(); st.Misses != misses {
		t.Fatal("cache-hit stream recomputed the simulation")
	}
}

// TestSimulateSSEWithoutTelemetry: streaming works for requests that
// never asked for a response time-series — the samples are synthesized
// from a default window and the cached bytes stay telemetry-free.
func TestSimulateSSEWithoutTelemetry(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/simulate?stream=sse", smallScenario)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	events := parseSSE(t, rec.Body.String())
	samples := 0
	var result string
	for _, ev := range events {
		switch ev.name {
		case "sample":
			samples++
		case "result":
			result = ev.data
		}
	}
	if samples == 0 {
		t.Fatal("no sample events for a telemetry-free stream")
	}
	if strings.Contains(result, `"time_series"`) {
		t.Fatal("streaming leaked a time-series into the cached response")
	}
	plain := post(t, s.Handler(), "/v1/simulate", smallScenario)
	if plain.Header().Get("X-Cache") != "hit" {
		t.Fatal("stream and non-stream diverged on the cache key")
	}
	if want := strings.TrimRight(plain.Body.String(), "\n"); result != want {
		t.Fatal("streamed result differs from the non-streaming body")
	}
}

// TestSimulateSSEBadParams pins the 4xx surface of the stream knob.
func TestSimulateSSEBadParams(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/simulate?stream=websocket", smallScenario)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown stream mode: status = %d, want 400", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("stream")) {
		t.Fatalf("error does not name the bad parameter: %s", rec.Body)
	}
	// Invalid scenarios fail before any streaming starts: a plain 400,
	// not an SSE error event.
	bad := post(t, s.Handler(), "/v1/simulate?stream=sse", `{"topology":"mesh:4x4","rate":0.05,"cycles":1000,"seed":1}`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("invalid scenario: status = %d, want 400", bad.Code)
	}
}
