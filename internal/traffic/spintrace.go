package traffic

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// spintrace-v1 is the streaming binary trace format. The CSV codec
// (Save/LoadTrace) stays for small, hand-editable cases; spintrace is
// for production-scale traces that never fit in memory.
//
// Layout (inside a standard gzip frame):
//
//	magic   "spintrace-v1\n"
//	chunk*  uvarint entryCount (1..4096)
//	        uvarint payloadLen
//	        payload            entryCount entries, varint-encoded
//	        crc32(payload)     4 bytes little-endian, IEEE
//	end     uvarint 0, then end of gzip stream
//
// Each entry is five uvarints: cycle delta from the previous entry
// (entries are nondecreasing in cycle by construction), src, dst,
// length, vnet. Encoding is canonical: every chunk except the last
// holds exactly chunkEntries entries, varints are minimal-length, and
// nothing may follow the terminator — so any stream the decoder
// accepts re-encodes to the same chunking and payload bytes, and the
// encoder is a byte-level fixpoint.

const (
	spintraceMagic = "spintrace-v1\n"
	// chunkEntries is the fixed chunk granularity: small enough that a
	// reader holds only a few hundred KB, large enough to amortise the
	// per-chunk header and CRC.
	chunkEntries = 4096
	// maxFieldValue bounds src/dst/length/vnet so decoded values always
	// fit an int on 32-bit platforms and arithmetic cannot overflow.
	maxFieldValue = 1 << 30
	// maxEntryBytes is the worst-case encoded entry (five maximal
	// uvarints); it bounds a chunk's declared payload length.
	maxEntryBytes   = 5 * binary.MaxVarintLen64
	maxChunkPayload = chunkEntries * maxEntryBytes
)

// Typed decode failures. Everything the decoder rejects wraps one of
// these, so callers can distinguish "not a spintrace" from "a spintrace
// that went bad in transit" with errors.Is.
var (
	// ErrTraceMagic means the stream does not start with the
	// spintrace-v1 magic (after gzip framing).
	ErrTraceMagic = errors.New("traffic: spintrace: bad magic")
	// ErrTraceCorrupt means the framing was recognised but the body is
	// damaged: CRC mismatch, truncation, non-canonical encoding, or
	// trailing garbage.
	ErrTraceCorrupt = errors.New("traffic: spintrace: corrupt stream")
)

// TraceWriter streams entries into the spintrace-v1 format. Entries
// must arrive in nondecreasing cycle order; Close flushes the final
// partial chunk and the terminator.
type TraceWriter struct {
	zw        *gzip.Writer
	payload   []byte
	count     int
	prevCycle int64
	entries   int64
	closed    bool
	scratch   [binary.MaxVarintLen64]byte
}

// NewTraceWriter starts a spintrace-v1 stream on w. The caller must
// Close the writer to produce a decodable stream.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{zw: gzip.NewWriter(w)}
	// gzip.Writer buffers; any underlying write error surfaces at
	// Flush/Close, which is where Add and Close report it.
	tw.zw.Write([]byte(spintraceMagic))
	return tw
}

func (tw *TraceWriter) putUvarint(v uint64) {
	n := binary.PutUvarint(tw.scratch[:], v)
	tw.payload = append(tw.payload, tw.scratch[:n]...)
}

// Add appends one entry. It validates the same structural rules the
// decoder enforces, so anything a decoder accepts can be re-encoded.
func (tw *TraceWriter) Add(e TraceEntry) error {
	if tw.closed {
		return errors.New("traffic: spintrace: Add after Close")
	}
	switch {
	case e.Cycle < 0:
		return fmt.Errorf("traffic: spintrace: negative cycle %d", e.Cycle)
	case e.Cycle < tw.prevCycle:
		return fmt.Errorf("traffic: spintrace: cycle %d before previous %d (entries must be time-ordered)", e.Cycle, tw.prevCycle)
	case e.Src < 0 || e.Src > maxFieldValue:
		return fmt.Errorf("traffic: spintrace: src %d out of range", e.Src)
	case e.Dst < 0 || e.Dst > maxFieldValue:
		return fmt.Errorf("traffic: spintrace: dst %d out of range", e.Dst)
	case e.Length <= 0 || e.Length > maxFieldValue:
		return fmt.Errorf("traffic: spintrace: length %d out of range", e.Length)
	case e.VNet < 0 || e.VNet > maxFieldValue:
		return fmt.Errorf("traffic: spintrace: vnet %d out of range", e.VNet)
	}
	tw.putUvarint(uint64(e.Cycle - tw.prevCycle))
	tw.putUvarint(uint64(e.Src))
	tw.putUvarint(uint64(e.Dst))
	tw.putUvarint(uint64(e.Length))
	tw.putUvarint(uint64(e.VNet))
	tw.prevCycle = e.Cycle
	tw.count++
	tw.entries++
	if tw.count == chunkEntries {
		return tw.flushChunk()
	}
	return nil
}

// Entries reports how many entries have been added.
func (tw *TraceWriter) Entries() int64 { return tw.entries }

func (tw *TraceWriter) flushChunk() error {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(tw.count))
	n += binary.PutUvarint(hdr[n:], uint64(len(tw.payload)))
	if _, err := tw.zw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := tw.zw.Write(tw.payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(tw.payload))
	if _, err := tw.zw.Write(crc[:]); err != nil {
		return err
	}
	tw.payload = tw.payload[:0]
	tw.count = 0
	return nil
}

// Close flushes the final chunk, writes the terminator, and closes the
// gzip frame. The underlying writer is not closed.
func (tw *TraceWriter) Close() error {
	if tw.closed {
		return nil
	}
	tw.closed = true
	if tw.count > 0 {
		if err := tw.flushChunk(); err != nil {
			return err
		}
	}
	if _, err := tw.zw.Write([]byte{0}); err != nil {
		return err
	}
	return tw.zw.Close()
}

// EncodeTrace writes an in-memory trace in spintrace-v1 format.
func EncodeTrace(w io.Writer, t *Trace) error {
	tw := NewTraceWriter(w)
	for _, e := range t.Entries {
		if err := tw.Add(e); err != nil {
			return err
		}
	}
	return tw.Close()
}

// TraceReader streams entries out of a spintrace-v1 stream, holding at
// most one decoded chunk (4096 entries) in memory regardless of trace
// length.
type TraceReader struct {
	zr        *gzip.Reader
	br        *bufio.Reader
	chunk     []TraceEntry
	pos       int
	chunkIdx  int
	cycle     int64
	sawShort  bool // a chunk under chunkEntries must be the last
	done      bool
	err       error
	payload   []byte
}

// StreamTrace opens a spintrace-v1 stream for incremental reading. It
// validates the framing and magic eagerly; entry decoding is lazy, one
// chunk at a time, so arbitrarily large traces replay in constant
// memory.
func StreamTrace(r io.Reader) (*TraceReader, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceMagic, err)
	}
	// A spintrace is exactly one gzip member; multistream mode would
	// silently splice concatenated frames past the terminator.
	zr.Multistream(false)
	tr := &TraceReader{zr: zr, br: bufio.NewReader(zr)}
	magic := make([]byte, len(spintraceMagic))
	if _, err := io.ReadFull(tr.br, magic); err != nil || string(magic) != spintraceMagic {
		return nil, ErrTraceMagic
	}
	return tr, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// nextChunk reads and verifies one chunk into tr.chunk.
func (tr *TraceReader) nextChunk() error {
	count, _, err := readCanonicalUvarint(tr.br)
	if err != nil {
		return fmt.Errorf("%w: chunk %d: bad count: %v", ErrTraceCorrupt, tr.chunkIdx, err)
	}
	if count == 0 {
		// Terminator: nothing may follow inside the gzip member, and
		// the member itself must end cleanly.
		if _, err := tr.br.ReadByte(); err != io.EOF {
			return fmt.Errorf("%w: data after terminator", ErrTraceCorrupt)
		}
		tr.done = true
		return io.EOF
	}
	if tr.sawShort {
		return fmt.Errorf("%w: chunk %d follows a short chunk", ErrTraceCorrupt, tr.chunkIdx)
	}
	if count > chunkEntries {
		return fmt.Errorf("%w: chunk %d: count %d exceeds %d", ErrTraceCorrupt, tr.chunkIdx, count, chunkEntries)
	}
	if count < chunkEntries {
		tr.sawShort = true
	}
	plen, _, err := readCanonicalUvarint(tr.br)
	if err != nil {
		return fmt.Errorf("%w: chunk %d: bad payload length: %v", ErrTraceCorrupt, tr.chunkIdx, err)
	}
	if plen > maxChunkPayload {
		return fmt.Errorf("%w: chunk %d: payload length %d exceeds %d", ErrTraceCorrupt, tr.chunkIdx, plen, maxChunkPayload)
	}
	if cap(tr.payload) < int(plen) {
		tr.payload = make([]byte, plen)
	}
	tr.payload = tr.payload[:plen]
	if _, err := io.ReadFull(tr.br, tr.payload); err != nil {
		return fmt.Errorf("%w: chunk %d: truncated payload: %v", ErrTraceCorrupt, tr.chunkIdx, err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(tr.br, crcb[:]); err != nil {
		return fmt.Errorf("%w: chunk %d: truncated crc: %v", ErrTraceCorrupt, tr.chunkIdx, err)
	}
	if got, want := crc32.ChecksumIEEE(tr.payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("%w: chunk %d: crc mismatch (got %08x want %08x)", ErrTraceCorrupt, tr.chunkIdx, got, want)
	}
	if err := tr.decodePayload(int(count)); err != nil {
		return err
	}
	tr.chunkIdx++
	return nil
}

// decodePayload parses exactly count entries out of tr.payload,
// rejecting non-minimal varints, field overflow, and leftover bytes.
func (tr *TraceReader) decodePayload(count int) error {
	if cap(tr.chunk) < count {
		tr.chunk = make([]TraceEntry, count)
	}
	tr.chunk = tr.chunk[:count]
	off := 0
	field := func(what string, limit uint64) (uint64, error) {
		v, n := binary.Uvarint(tr.payload[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: chunk %d: truncated %s", ErrTraceCorrupt, tr.chunkIdx, what)
		}
		if n != uvarintLen(v) {
			return 0, fmt.Errorf("%w: chunk %d: non-canonical varint for %s", ErrTraceCorrupt, tr.chunkIdx, what)
		}
		if v > limit {
			return 0, fmt.Errorf("%w: chunk %d: %s %d out of range", ErrTraceCorrupt, tr.chunkIdx, what, v)
		}
		off += n
		return v, nil
	}
	for i := 0; i < count; i++ {
		delta, err := field("cycle delta", math.MaxInt64)
		if err != nil {
			return err
		}
		if delta > math.MaxInt64-uint64(tr.cycle) {
			return fmt.Errorf("%w: chunk %d: cycle overflow", ErrTraceCorrupt, tr.chunkIdx)
		}
		tr.cycle += int64(delta)
		src, err := field("src", maxFieldValue)
		if err != nil {
			return err
		}
		dst, err := field("dst", maxFieldValue)
		if err != nil {
			return err
		}
		length, err := field("length", maxFieldValue)
		if err != nil {
			return err
		}
		if length == 0 {
			return fmt.Errorf("%w: chunk %d: zero-length packet", ErrTraceCorrupt, tr.chunkIdx)
		}
		vnet, err := field("vnet", maxFieldValue)
		if err != nil {
			return err
		}
		tr.chunk[i] = TraceEntry{
			Cycle: tr.cycle, Src: int(src), Dst: int(dst), Length: int(length), VNet: int(vnet),
		}
	}
	if off != len(tr.payload) {
		return fmt.Errorf("%w: chunk %d: %d trailing payload bytes", ErrTraceCorrupt, tr.chunkIdx, len(tr.payload)-off)
	}
	tr.pos = 0
	return nil
}

// Next returns the next entry, or io.EOF after the last one. Any other
// error wraps ErrTraceMagic or ErrTraceCorrupt; once an error is
// returned the reader is poisoned and repeats it.
func (tr *TraceReader) Next() (TraceEntry, error) {
	if tr.err != nil {
		return TraceEntry{}, tr.err
	}
	if tr.pos >= len(tr.chunk) {
		if tr.done {
			return TraceEntry{}, io.EOF
		}
		if err := tr.nextChunk(); err != nil {
			tr.err = err
			return TraceEntry{}, err
		}
	}
	e := tr.chunk[tr.pos]
	tr.pos++
	return e, nil
}

// Close releases the gzip reader. It does not close the underlying
// reader.
func (tr *TraceReader) Close() error { return tr.zr.Close() }

// readCanonicalUvarint reads a minimal-length uvarint from br.
func readCanonicalUvarint(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var shift uint
	n := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, n, errors.New("uvarint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if n > 1 && b == 0 {
				return 0, n, errors.New("non-canonical uvarint padding")
			}
			return v, n, nil
		}
		shift += 7
	}
}

// DecodeTrace reads an entire spintrace-v1 stream into memory. Use
// StreamTrace for traces that may not fit.
func DecodeTrace(r io.Reader) (*Trace, error) {
	tr, err := StreamTrace(r)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	var t Trace
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return &t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, e)
	}
}
