package traffic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{Entries: []TraceEntry{
		{Cycle: 3, Src: 1, Dst: 2, Length: 5, VNet: 0},
		{Cycle: 1, Src: 0, Dst: 3, Length: 1, VNet: 2},
	}}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	// LoadTrace sorts by cycle.
	if got.Entries[0].Cycle != 1 || got.Entries[1].Cycle != 3 {
		t.Fatalf("not sorted: %+v", got.Entries)
	}
	if got.Entries[1] != tr.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got.Entries[1])
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("1,2,3\n")); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := LoadTrace(strings.NewReader("a,b,c,d,e\n")); err == nil {
		t.Fatal("non-numeric record accepted")
	}
}

func TestRecorderThenReplayIdentical(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	gen := &Synthetic{Pattern: Uniform(16), Rate: 0.2, VNets: 2}
	rec := &Recorder{Gen: gen}
	rng := rand.New(rand.NewSource(7))
	for c := int64(0); c < 2000; c++ {
		for src := 0; src < 16; src++ {
			rec.Generate(c, src, rng, func(sim.PacketSpec) {})
		}
	}
	if len(rec.Trace.Entries) == 0 {
		t.Fatal("nothing recorded")
	}
	// Replay must emit exactly the recorded specs at the recorded cycles.
	rp := &Replay{Trace: &rec.Trace}
	var replayed []TraceEntry
	for c := int64(0); c < 2100; c++ {
		for src := 0; src < 16; src++ {
			rp.Generate(c, src, nil, func(spec sim.PacketSpec) {
				replayed = append(replayed, TraceEntry{Cycle: c, Src: src, Dst: spec.Dst, Length: spec.Length, VNet: spec.VNet})
			})
		}
	}
	if !rp.Done() {
		t.Fatal("replay not done")
	}
	if len(replayed) != len(rec.Trace.Entries) {
		t.Fatalf("replayed %d, recorded %d", len(replayed), len(rec.Trace.Entries))
	}
	count := map[TraceEntry]int{}
	for _, e := range rec.Trace.Entries {
		count[e]++
	}
	for _, e := range replayed {
		count[e]--
	}
	for e, c := range count {
		if c != 0 {
			t.Fatalf("entry %+v mismatch (%d)", e, c)
		}
	}
	_ = m
}

func TestReplayDrivesSimulationDeterministically(t *testing.T) {
	m, _ := topology.NewMesh(4, 4, 1)
	tr := &Trace{}
	for i := 0; i < 50; i++ {
		tr.Entries = append(tr.Entries, TraceEntry{Cycle: int64(i * 3), Src: i % 16, Dst: (i*7 + 1) % 16, Length: 1 + (i%2)*4})
	}
	// Drop self-destined entries.
	kept := tr.Entries[:0]
	for _, e := range tr.Entries {
		if e.Src != e.Dst {
			kept = append(kept, e)
		}
	}
	tr.Entries = kept
	run := func() int64 {
		n, err := sim.NewNetwork(sim.Config{
			Topology:   m,
			Routing:    &xyForTest{m: m},
			Traffic:    &Replay{Trace: tr},
			VCsPerVNet: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Run(1000)
		if n.Stats().Injected != int64(len(tr.Entries)) {
			t.Fatalf("injected %d, trace has %d", n.Stats().Injected, len(tr.Entries))
		}
		if !n.Drain(10000) {
			t.Fatal("replay run failed to drain")
		}
		return n.Stats().LatencySum
	}
	if run() != run() {
		t.Fatal("trace replay not deterministic")
	}
}

// xyForTest avoids an import cycle with the routing package (which
// imports traffic in its own tests).
type xyForTest struct {
	sim.BaseRouting
	m *topology.Mesh
}

func (x *xyForTest) Name() string { return "xy_test" }

func (x *xyForTest) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	cx, cy := x.m.Coords(r.ID)
	dx, dy := x.m.Coords(p.RouteDst())
	var port int
	switch {
	case dx > cx:
		port = topology.MeshPort(topology.East)
	case dx < cx:
		port = topology.MeshPort(topology.West)
	case dy > cy:
		port = topology.MeshPort(topology.North)
	default:
		port = topology.MeshPort(topology.South)
	}
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Entries: []TraceEntry{{Cycle: 0, Src: 0, Dst: 1, Length: 5, VNet: 0}}}
	if err := good.Validate(4, 1, 5); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{Entries: []TraceEntry{{Src: 9, Dst: 1, Length: 1}}},
		{Entries: []TraceEntry{{Src: 0, Dst: 9, Length: 1}}},
		{Entries: []TraceEntry{{Src: 1, Dst: 1, Length: 1}}},
		{Entries: []TraceEntry{{Src: 0, Dst: 1, Length: 9}}},
		{Entries: []TraceEntry{{Src: 0, Dst: 1, Length: 1, VNet: 3}}},
		{Entries: []TraceEntry{{Cycle: -1, Src: 0, Dst: 1, Length: 1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(4, 1, 5); err == nil {
			t.Fatalf("bad trace %d accepted", i)
		}
	}
}
