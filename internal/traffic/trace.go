package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// TraceEntry is one packet injection of a recorded workload.
type TraceEntry struct {
	Cycle  int64
	Src    int
	Dst    int
	Length int
	VNet   int
}

// Trace is a replayable packet workload. Traces make experiments exactly
// repeatable across configurations: the same injection sequence can drive
// a west-first baseline and a SPIN configuration, removing generator
// noise from comparisons.
type Trace struct {
	Entries []TraceEntry
}

// Save writes the trace as CSV: cycle,src,dst,length,vnet.
func (t *Trace) Save(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, e := range t.Entries {
		rec := []string{
			strconv.FormatInt(e.Cycle, 10),
			strconv.Itoa(e.Src),
			strconv.Itoa(e.Dst),
			strconv.Itoa(e.Length),
			strconv.Itoa(e.VNet),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadTrace parses a CSV trace.
func LoadTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var t Trace
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traffic: bad trace: %w", err)
		}
		var e TraceEntry
		vals := make([]int64, 5)
		for i, f := range rec {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: bad trace field %q: %w", f, err)
			}
			vals[i] = v
		}
		e.Cycle, e.Src, e.Dst, e.Length, e.VNet =
			vals[0], int(vals[1]), int(vals[2]), int(vals[3]), int(vals[4])
		t.Entries = append(t.Entries, e)
	}
	sort.SliceStable(t.Entries, func(i, j int) bool { return t.Entries[i].Cycle < t.Entries[j].Cycle })
	return &t, nil
}

// Validate checks every entry against a topology's terminal count and
// packet limits, so malformed traces fail with an error instead of a
// panic deep inside the simulator.
func (t *Trace) Validate(terminals, vnets, maxLen int) error {
	for i, e := range t.Entries {
		switch {
		case e.Src < 0 || e.Src >= terminals:
			return fmt.Errorf("traffic: trace entry %d: src %d outside [0,%d)", i, e.Src, terminals)
		case e.Dst < 0 || e.Dst >= terminals:
			return fmt.Errorf("traffic: trace entry %d: dst %d outside [0,%d)", i, e.Dst, terminals)
		case e.Src == e.Dst:
			return fmt.Errorf("traffic: trace entry %d: self-destined packet at node %d", i, e.Src)
		case e.Length <= 0 || e.Length > maxLen:
			return fmt.Errorf("traffic: trace entry %d: length %d outside (0,%d]", i, e.Length, maxLen)
		case e.VNet < 0 || e.VNet >= vnets:
			return fmt.Errorf("traffic: trace entry %d: vnet %d outside [0,%d)", i, e.VNet, vnets)
		case e.Cycle < 0:
			return fmt.Errorf("traffic: trace entry %d: negative cycle", i)
		}
	}
	return nil
}

// Replay implements sim.TrafficGen by injecting the trace's packets at
// their recorded cycles. The trace is partitioned into per-source
// cursor lists up front (PrepareTerminals, called by the simulator when
// traffic is attached), so Generate touches only source-local state and
// the replay composes with the sharded engine — each shard advances its
// own terminals' cursors with no shared writes.
type Replay struct {
	Trace *Trace
	// bySrc[src] holds that source's entries in trace order; next[src]
	// indexes its next un-injected entry.
	bySrc [][]TraceEntry
	next  []int
}

// Name implements sim.TrafficGen.
func (r *Replay) Name() string { return "trace_replay" }

// RequiresSerialStep implements sim.SerialOnly: replay is shard-safe.
func (r *Replay) RequiresSerialStep() bool { return false }

// PrepareTerminals implements sim.TrafficPrep, partitioning the trace
// by source before the first cycle.
func (r *Replay) PrepareTerminals(n int) {
	for _, e := range r.Trace.Entries {
		if e.Src >= n {
			n = e.Src + 1
		}
	}
	r.bySrc = make([][]TraceEntry, n)
	r.next = make([]int, n)
	for _, e := range r.Trace.Entries {
		if e.Src >= 0 {
			r.bySrc[e.Src] = append(r.bySrc[e.Src], e)
		}
	}
}

// Generate implements sim.TrafficGen.
func (r *Replay) Generate(cycle int64, src int, _ *rand.Rand, emit func(sim.PacketSpec)) {
	if r.bySrc == nil {
		// Direct use without a simulator attach (tests, tools); the
		// simulator always calls PrepareTerminals first.
		r.PrepareTerminals(0)
	}
	if src < 0 || src >= len(r.bySrc) {
		return
	}
	entries := r.bySrc[src]
	i := r.next[src]
	for i < len(entries) && entries[i].Cycle <= cycle {
		e := entries[i]
		emit(sim.PacketSpec{Dst: e.Dst, Length: e.Length, VNet: e.VNet})
		i++
	}
	r.next[src] = i
}

// Done reports whether every entry has been injected.
func (r *Replay) Done() bool {
	if r.bySrc == nil {
		return len(r.Trace.Entries) == 0
	}
	for src, entries := range r.bySrc {
		if r.next[src] < len(entries) {
			return false
		}
	}
	return true
}

// Recorder wraps a TrafficGen and captures everything it emits, producing
// a Trace that replays the same workload.
type Recorder struct {
	Gen   sim.TrafficGen
	Trace Trace
}

// Name implements sim.TrafficGen.
func (rec *Recorder) Name() string { return rec.Gen.Name() + "+record" }

// Generate implements sim.TrafficGen.
func (rec *Recorder) Generate(cycle int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	rec.Gen.Generate(cycle, src, rng, func(spec sim.PacketSpec) {
		rec.Trace.Entries = append(rec.Trace.Entries, TraceEntry{
			Cycle: cycle, Src: src, Dst: spec.Dst, Length: spec.Length, VNet: spec.VNet,
		})
		emit(spec)
	})
}
