package traffic

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// randomTrace builds a valid trace of n entries with nondecreasing
// cycles, perCycle entries per cycle on a 16-terminal topology.
func randomTrace(rng *rand.Rand, n, perCycle int) *Trace {
	tr := &Trace{Entries: make([]TraceEntry, n)}
	for i := range tr.Entries {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if dst == src {
			dst = (dst + 1) % 16
		}
		tr.Entries[i] = TraceEntry{
			Cycle:  int64(i / perCycle),
			Src:    src,
			Dst:    dst,
			Length: 1 + rng.Intn(5),
			VNet:   rng.Intn(2),
		}
	}
	return tr
}

func encodeBytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpintraceRoundTrip is the codec property test: encode → decode
// reproduces the entries exactly, the streaming and in-memory decoders
// agree, and re-encoding the decode is byte-identical to the original
// encoding (the fixpoint that makes traces content-addressable). Sizes
// bracket the chunk boundary (4096 entries per chunk).
func TestSpintraceRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 4095, 4096, 4097, 10000} {
		tr := randomTrace(rng, n, 4)
		enc := encodeBytes(t, tr)

		dec, err := DecodeTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(dec.Entries) != n {
			t.Fatalf("n=%d: decoded %d entries", n, len(dec.Entries))
		}
		for i := range dec.Entries {
			if dec.Entries[i] != tr.Entries[i] {
				t.Fatalf("n=%d: entry %d = %+v, want %+v", n, i, dec.Entries[i], tr.Entries[i])
			}
		}

		// Streaming decoder sees the identical sequence.
		sr, err := StreamTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			e, err := sr.Next()
			if err == io.EOF {
				if i != n {
					t.Fatalf("n=%d: stream ended after %d entries", n, i)
				}
				break
			}
			if err != nil {
				t.Fatalf("n=%d: stream entry %d: %v", n, i, err)
			}
			if e != tr.Entries[i] {
				t.Fatalf("n=%d: stream entry %d = %+v, want %+v", n, i, e, tr.Entries[i])
			}
		}
		// Re-encode fixpoint.
		if re := encodeBytes(t, dec); !bytes.Equal(re, enc) {
			t.Fatalf("n=%d: re-encode is not byte-identical (%d vs %d bytes)", n, len(re), len(enc))
		}
	}
}

// TestSpintraceWriterRejects pins the writer-side validation: encoding
// only ever produces decodable streams.
func TestSpintraceWriterRejects(t *testing.T) {
	t.Parallel()
	for name, e := range map[string]TraceEntry{
		"negative cycle": {Cycle: -1, Dst: 1, Length: 1},
		"zero length":    {Dst: 1},
		"huge field":     {Dst: 1 << 31, Length: 1},
	} {
		tw := NewTraceWriter(io.Discard)
		if err := tw.Add(e); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Cycle regression across Adds.
	tw := NewTraceWriter(io.Discard)
	if err := tw.Add(TraceEntry{Cycle: 5, Dst: 1, Length: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Add(TraceEntry{Cycle: 4, Dst: 1, Length: 1}); err == nil {
		t.Error("cycle regression accepted")
	}
}

// TestSpintraceCorruption feeds the decoder every corruption class the
// format defends against. The contract: a typed error (ErrTraceMagic
// for framing, ErrTraceCorrupt for everything after the magic), never a
// panic, never silent acceptance.
func TestSpintraceCorruption(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	valid := encodeBytes(t, randomTrace(rng, 5000, 4))

	consume := func(b []byte) error {
		tr, err := StreamTrace(bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer tr.Close()
		for {
			if _, err := tr.Next(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty input", nil, ErrTraceMagic},
		{"not gzip", []byte("spintrace-v1\nnope"), ErrTraceMagic},
		{"csv trace", []byte("1,0,1,5,0\n2,3,4,1,0\n"), ErrTraceMagic},
		{"wrong magic", gzipBytes(t, []byte("spamtrace-v1\n")), ErrTraceMagic},
		{"magic only, no terminator", gzipBytes(t, []byte("spintrace-v1\n")), ErrTraceCorrupt},
		{"garbage after magic", gzipBytes(t, append([]byte("spintrace-v1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)), ErrTraceCorrupt},
	}
	// Truncations at layer-meaningful offsets: inside the gzip header,
	// mid-stream, and just before the terminator.
	for _, cut := range []int{1, 10, len(valid) / 2, len(valid) - 1} {
		cases = append(cases, struct {
			name string
			b    []byte
			want error
		}{name: "truncated", b: valid[:cut], want: nil /* any error */})
	}
	// Bit flips across the body. Some flips land in gzip framing (magic
	// error), some in payload (corrupt); all must error.
	for _, pos := range []int{0, 3, len(valid) / 4, len(valid) / 2, len(valid) - 2} {
		b := append([]byte(nil), valid...)
		b[pos] ^= 0x10
		cases = append(cases, struct {
			name string
			b    []byte
			want error
		}{name: "bitflip", b: b, want: nil})
	}
	// Trailing garbage after the terminator.
	cases = append(cases, struct {
		name string
		b    []byte
		want error
	}{"data after terminator", gzipAppend(t, valid, []byte{1, 2, 3}), ErrTraceCorrupt})

	for i, tc := range cases {
		err := consume(tc.b)
		if err == nil {
			t.Errorf("case %d (%s): corruption accepted", i, tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("case %d (%s): err %v, want %v", i, tc.name, err, tc.want)
		}
		if tc.want == nil && !errors.Is(err, ErrTraceMagic) && !errors.Is(err, ErrTraceCorrupt) {
			t.Errorf("case %d (%s): untyped error %v", i, tc.name, err)
		}
	}
}

// gzipBytes gzip-compresses raw bytes (building not-quite-right streams
// the encoder itself would refuse to produce).
func gzipBytes(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// gunzipBytes undoes the gzip frame of a valid encoding.
func gunzipBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// gzipAppend decompresses a valid encoding, appends garbage inside the
// compressed frame, and recompresses — corruption the outer gzip CRC
// cannot catch.
func gzipAppend(t *testing.T, valid, extra []byte) []byte {
	t.Helper()
	raw := gunzipBytes(t, valid)
	return gzipBytes(t, append(raw, extra...))
}

// CloneForShard lets the sharded-engine tests below use xyForTest: it is
// stateless apart from the read-only mesh.
func (x *xyForTest) CloneForShard() sim.RoutingAlgorithm { return &xyForTest{m: x.m} }

// TestStreamReplayMatchesReplay pins the equivalence of the two replay
// paths: the in-memory Replay and the streaming StreamReplay drive a
// simulation to byte-identical statistics, serial and sharded alike.
func TestStreamReplayMatchesReplay(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(21))
	tr := randomTrace(rng, 400, 2)
	// Single vnet in the sim config below.
	for i := range tr.Entries {
		tr.Entries[i].VNet = 0
	}
	enc := encodeBytes(t, tr)

	m, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(gen sim.TrafficGen, shards int) (int64, int64, int64) {
		n, err := sim.NewNetwork(sim.Config{
			Topology:   m,
			Routing:    &xyForTest{m: m},
			Traffic:    gen,
			VCsPerVNet: 2,
			Shards:     shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && n.Shards() != shards {
			t.Fatalf("replay clamped to %d shards, want %d", n.Shards(), shards)
		}
		n.Run(300)
		if !n.Drain(10000) {
			t.Fatal("failed to drain")
		}
		st := n.Stats()
		return st.Injected, st.Ejected, st.LatencySum
	}
	stream := func() *StreamReplay {
		r, err := StreamTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		return NewStreamReplay(r, 16, 1, 5)
	}

	wi, we, wl := run(&Replay{Trace: tr}, 0)
	if wi != int64(len(tr.Entries)) {
		t.Fatalf("reference run injected %d of %d", wi, len(tr.Entries))
	}
	type variant struct {
		name string
		gen  sim.TrafficGen
		sh   int
	}
	for _, v := range []variant{
		{"replay/shards2", &Replay{Trace: tr}, 2},
		{"stream/serial", stream(), 0},
		{"stream/shards2", stream(), 2},
		{"stream/shards4", stream(), 4},
	} {
		gi, ge, gl := run(v.gen, v.sh)
		if gi != wi || ge != we || gl != wl {
			t.Fatalf("%s diverged: inj/eject/latsum %d/%d/%d, want %d/%d/%d", v.name, gi, ge, gl, wi, we, wl)
		}
		if sr, ok := v.gen.(*StreamReplay); ok {
			if err := sr.Err(); err != nil {
				t.Fatalf("%s: stream error %v", v.name, err)
			}
			if !sr.Done() {
				t.Fatalf("%s: stream not done", v.name)
			}
		}
	}
}

// TestRecorderStillClampsToSerial pins what did NOT change: recording
// captures the global injection order, so a sharded network must refuse
// it (by clamping at build time).
func TestRecorderStillClampsToSerial(t *testing.T) {
	t.Parallel()
	m, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &xyForTest{m: m},
		Traffic:    &Recorder{Gen: &Synthetic{Pattern: Uniform(16), Rate: 0.1}},
		VCsPerVNet: 2,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Shards() != 1 {
		t.Fatalf("recorder ran on %d shards", n.Shards())
	}
}

// TestStreamReplayBoundedMemory is the constant-memory acceptance test:
// a 10-million-packet trace is streamed from disk into a live
// simulation, and the replay's heap high-water mark stays a small
// constant — loading the same trace in memory would hold ~400 MB of
// entries (10M x 40 bytes) before the simulator allocated a thing.
func TestStreamReplayBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-entry trace encode is not short")
	}
	const entries = 10_000_000
	path := filepath.Join(t.TempDir(), "big.spintrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTraceWriter(f)
	// Two packets per cycle: light load, so queue depth — and therefore
	// heap — cannot grow with trace length. Destinations rotate
	// deterministically (no rng: keep the encode fast).
	for i := 0; i < entries; i++ {
		src := i % 16
		dst := (src + 1 + i%15) % 16
		if dst == src {
			dst = (dst + 1) % 16
		}
		if err := tw.Add(TraceEntry{Cycle: int64(i / 2), Src: src, Dst: dst, Length: 1 + i%3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		t.Logf("trace file: %d entries, %.1f MB", entries, float64(fi.Size())/(1<<20))
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr, err := StreamTrace(rf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReplay(tr, 16, 1, 5)
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &xyForTest{m: m},
		Traffic:    sr,
		VCsPerVNet: 2,
		Shards:     2,
	})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Replay a window of the trace: enough cycles to stream several
	// hundred thousand entries through the decoder.
	const cycles = 200_000
	n.Run(cycles)
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	if sr.Pumped() < int64(2*cycles)-16 {
		t.Fatalf("streamed only %d entries in %d cycles", sr.Pumped(), cycles)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("streamed %d entries, heap growth %.1f MB", sr.Pumped(), float64(growth)/(1<<20))
	// The in-memory alternative holds >=400 MB before injecting a single
	// packet; the streaming path must stay orders of magnitude below.
	const budget = 32 << 20
	if growth > budget {
		t.Fatalf("heap grew %d bytes during streaming replay (budget %d): replay memory is not independent of trace length", growth, budget)
	}
}
