package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func mesh8(t *testing.T) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPatternsAreValidDestinations(t *testing.T) {
	m := mesh8(t)
	rng := rand.New(rand.NewSource(1))
	names := []string{"uniform_random", "bit_complement", "bit_reverse", "bit_rotation", "shuffle", "neighbor", "transpose", "tornado"}
	for _, name := range names {
		p, err := ByName(name, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for src := 0; src < 64; src++ {
			for trial := 0; trial < 3; trial++ {
				d := p.Dest(src, rng)
				if d < 0 || d >= 64 {
					t.Fatalf("%s: Dest(%d) = %d out of range", name, src, d)
				}
			}
		}
	}
}

func TestPermutationPatternsAreBijective(t *testing.T) {
	m := mesh8(t)
	for _, name := range []string{"bit_complement", "bit_reverse", "bit_rotation", "shuffle", "neighbor", "transpose"} {
		p, _ := ByName(name, m)
		seen := map[int]bool{}
		for src := 0; src < 64; src++ {
			d := p.Dest(src, nil)
			if seen[d] {
				t.Fatalf("%s: destination %d hit twice", name, d)
			}
			seen[d] = true
		}
	}
}

func TestBitComplementValues(t *testing.T) {
	m := mesh8(t)
	p, _ := ByName("bit_complement", m)
	if d := p.Dest(0, nil); d != 63 {
		t.Fatalf("complement of 0 = %d, want 63", d)
	}
	if d := p.Dest(21, nil); d != 42 {
		t.Fatalf("complement of 21 = %d, want 42", d)
	}
}

func TestTransposeOnSquareMesh(t *testing.T) {
	m := mesh8(t)
	p, _ := Transpose(m)
	src := m.RouterAt(2, 5)
	want := m.RouterAt(5, 2)
	if d := p.Dest(src, nil); d != want {
		t.Fatalf("transpose(%d) = %d, want %d", src, d, want)
	}
}

func TestTornadoHalfway(t *testing.T) {
	m := mesh8(t)
	p := Tornado(m)
	// Router (0,0): halfway across x is (3,0) for 8-wide ((8+1)/2-1 = 3).
	if d := p.Dest(m.RouterAt(0, 0), nil); d != m.RouterAt(3, 0) {
		t.Fatalf("tornado(0) = %d, want %d", d, m.RouterAt(3, 0))
	}
}

func TestUniformNeverSelf(t *testing.T) {
	p := Uniform(16)
	f := func(src uint8, seed int64) bool {
		s := int(src) % 16
		rng := rand.New(rand.NewSource(seed))
		return p.Dest(s, rng) != s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternsTotalAcrossTopologies: on every topology class and size
// the harness generates, each legal pattern must be a total function
// over the terminal space — Dest is defined for every source and always
// lands in [0, NumTerminals) — and the fixed permutations must stay
// bijective. This is the property the scenario harness relies on when
// it pairs patterns with arbitrary topologies.
func TestPatternsTotalAcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topos := map[string]topology.Topology{}
	for _, d := range []struct{ x, y int }{{3, 3}, {4, 2}, {4, 4}, {5, 5}, {8, 8}} {
		m, err := topology.NewMesh(d.x, d.y, 1)
		if err != nil {
			t.Fatal(err)
		}
		topos[m.Name()] = m
	}
	if tor, err := topology.NewTorus(4, 4, 1); err == nil {
		topos[tor.Name()] = tor
	} else {
		t.Fatal(err)
	}
	if df, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3); err == nil {
		topos["dragonfly:2,4,2,9"] = df
	} else {
		t.Fatal(err)
	}
	if jf, err := topology.NewJellyfish(10, 1, 3, 1, rand.New(rand.NewSource(1))); err == nil {
		topos["jellyfish:10,1,3"] = jf
	} else {
		t.Fatal(err)
	}
	if im, err := topology.NewIrregularMesh(4, 4, 1, 3, rand.New(rand.NewSource(1))); err == nil {
		topos["irregular:4x4:3"] = im
	} else {
		t.Fatal(err)
	}

	bijective := map[string]bool{
		"bit_complement": true, "bit_reverse": true, "bit_rotation": true,
		"shuffle": true, "neighbor": true, "transpose": true,
	}
	for name, topo := range topos {
		t.Run(name, func(t *testing.T) {
			n := topo.NumTerminals()
			pow2 := n&(n-1) == 0
			m, isMesh := topo.(*topology.Mesh)
			square := isMesh && m.X == m.Y
			for _, pat := range []string{
				"uniform_random", "tornado", "neighbor",
				"bit_complement", "bit_reverse", "bit_rotation", "shuffle", "transpose",
			} {
				legal := pow2 || pat == "uniform_random" || pat == "tornado" ||
					pat == "neighbor" || (pat == "transpose" && square)
				p, err := ByName(pat, topo)
				if !legal {
					if err == nil {
						t.Errorf("%s on %d terminals accepted, want constraint error", pat, n)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: %v", pat, err)
				}
				seen := map[int]bool{}
				for src := 0; src < n; src++ {
					d := p.Dest(src, rng)
					if d < 0 || d >= n {
						t.Fatalf("%s: Dest(%d) = %d out of [0,%d)", pat, src, d, n)
					}
					if bijective[pat] {
						if d2 := p.Dest(src, nil); seen[d2] {
							t.Fatalf("%s: destination %d hit twice", pat, d2)
						} else {
							seen[d2] = true
						}
					}
				}
			}
		})
	}
}

func TestByNameErrors(t *testing.T) {
	m := mesh8(t)
	if _, err := ByName("nope", m); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	odd, _ := topology.NewMesh(3, 2, 1) // 6 terminals: not a power of two
	if _, err := ByName("bit_complement", odd); err == nil {
		t.Fatal("bit pattern on non-power-of-two accepted")
	}
}

func TestSyntheticOfferedLoad(t *testing.T) {
	m := mesh8(t)
	gen := &Synthetic{Pattern: Uniform(64), Rate: 0.3}
	rng := rand.New(rand.NewSource(2))
	flits := 0
	cycles := 20000
	for c := 0; c < cycles; c++ {
		gen.Generate(int64(c), 5, rng, func(s sim.PacketSpec) { flits += s.Length })
	}
	got := float64(flits) / float64(cycles)
	if got < 0.25 || got > 0.35 {
		t.Fatalf("offered load %.3f, want ~0.30", got)
	}
	_ = m
}

func TestSyntheticPacketMix(t *testing.T) {
	gen := &Synthetic{Pattern: Uniform(64), Rate: 0.5, DataLen: 5, DataFrac: 0.5}
	rng := rand.New(rand.NewSource(3))
	ones, fives := 0, 0
	for c := 0; c < 30000; c++ {
		gen.Generate(int64(c), 1, rng, func(s sim.PacketSpec) {
			switch s.Length {
			case 1:
				ones++
			case 5:
				fives++
			default:
				t.Fatalf("unexpected length %d", s.Length)
			}
		})
	}
	frac := float64(fives) / float64(ones+fives)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("data fraction %.2f, want ~0.5", frac)
	}
}

func TestPARSECProfiles(t *testing.T) {
	apps := PARSEC()
	if len(apps) < 10 {
		t.Fatalf("expected a full suite, got %d", len(apps))
	}
	m := mesh8(t)
	for _, app := range apps {
		gen := &AppTraffic{Profile: app, Topo: m}
		rng := rand.New(rand.NewSource(4))
		count := map[int]int{}
		flits := 0
		for c := 0; c < 50000; c++ {
			gen.Generate(int64(c), 9, rng, func(s sim.PacketSpec) {
				count[s.VNet]++
				flits += s.Length
				if s.Dst == 9 {
					t.Fatalf("%s: self-destined packet", app.Name)
				}
			})
		}
		if count[0] == 0 || count[2] == 0 {
			t.Fatalf("%s: vnets unused: %v", app.Name, count)
		}
		load := float64(flits) / 50000
		if load < app.Rate*0.6 || load > app.Rate*1.4 {
			t.Fatalf("%s: offered %.4f, want ~%.4f", app.Name, load, app.Rate)
		}
	}
}
