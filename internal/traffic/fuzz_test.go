package traffic

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceParser hardens LoadTrace against arbitrary input: malformed
// traces must fail with an error, never a panic, and anything that
// parses must survive a Save/LoadTrace round trip unchanged (LoadTrace
// sorts by cycle, so a second pass is a fixpoint) and Validate without
// panicking.
//
// Run it with: go test -fuzz FuzzTraceParser -fuzztime 30s ./internal/traffic
func FuzzTraceParser(f *testing.F) {
	f.Add([]byte("0,0,1,5,0\n12,3,2,1,0\n"))
	f.Add([]byte("")) // empty trace is valid
	f.Add([]byte("1,2\n"))
	f.Add([]byte("a,b,c,d,e\n"))
	f.Add([]byte("\"0\",0,1,5,0\n"))
	f.Add([]byte("9223372036854775807,0,1,5,0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the property under test
		}
		// Validate must be panic-free on anything the parser accepts,
		// whatever verdict it reaches.
		_ = tr.Validate(8, 2, 5)

		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		back, err := LoadTrace(&buf)
		if err != nil {
			t.Fatalf("saved trace failed to reload: %v\nsaved: %q", err, buf.String())
		}
		if !reflect.DeepEqual(tr.Entries, back.Entries) {
			t.Fatalf("round trip changed the trace:\nfirst:  %v\nreload: %v", tr.Entries, back.Entries)
		}
	})
}
