package traffic

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzTraceParser hardens LoadTrace against arbitrary input: malformed
// traces must fail with an error, never a panic, and anything that
// parses must survive a Save/LoadTrace round trip unchanged (LoadTrace
// sorts by cycle, so a second pass is a fixpoint) and Validate without
// panicking.
//
// Run it with: go test -fuzz FuzzTraceParser -fuzztime 30s ./internal/traffic
func FuzzTraceParser(f *testing.F) {
	f.Add([]byte("0,0,1,5,0\n12,3,2,1,0\n"))
	f.Add([]byte("")) // empty trace is valid
	f.Add([]byte("1,2\n"))
	f.Add([]byte("a,b,c,d,e\n"))
	f.Add([]byte("\"0\",0,1,5,0\n"))
	f.Add([]byte("9223372036854775807,0,1,5,0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the property under test
		}
		// Validate must be panic-free on anything the parser accepts,
		// whatever verdict it reaches.
		_ = tr.Validate(8, 2, 5)

		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		back, err := LoadTrace(&buf)
		if err != nil {
			t.Fatalf("saved trace failed to reload: %v\nsaved: %q", err, buf.String())
		}
		if !reflect.DeepEqual(tr.Entries, back.Entries) {
			t.Fatalf("round trip changed the trace:\nfirst:  %v\nreload: %v", tr.Entries, back.Entries)
		}
	})
}

// FuzzSpintraceDecoder hardens the binary spintrace-v1 decoder against
// arbitrary bytes. The invariants:
//
//  1. Decoding never panics; failures are the typed ErrTraceMagic or
//     ErrTraceCorrupt (wrapped), so servers can map them to 4xx.
//  2. Anything the decoder accepts is structurally valid (nonnegative
//     nondecreasing cycles, positive lengths), and encoding is canonical
//     past the gzip frame: one encode → decode → encode round trip is a
//     byte-level fixpoint. (The outer gzip header admits cosmetic
//     variation — mtime, level — so arbitrary accepted input is
//     normalized once, then stable.)
//
// Run it with: go test -fuzz FuzzSpintraceDecoder -fuzztime 30s ./internal/traffic
func FuzzSpintraceDecoder(f *testing.F) {
	seed := func(n, perCycle int, src int64) []byte {
		tr := randomTrace(rand.New(rand.NewSource(src)), n, perCycle)
		var buf bytes.Buffer
		if err := EncodeTrace(&buf, tr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("spintrace-v1\n"))
	f.Add([]byte("1,2,3,4,5\n"))
	f.Add(seed(0, 1, 1))
	f.Add(seed(50, 4, 2))
	f.Add(seed(5000, 8, 3)) // multi-chunk
	corrupt := seed(200, 2, 4)
	corrupt[len(corrupt)/2] ^= 0x20
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTraceMagic) && !errors.Is(err, ErrTraceCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		prev := int64(0)
		for i, e := range tr.Entries {
			if e.Cycle < prev || e.Length <= 0 || e.Src < 0 || e.Dst < 0 || e.VNet < 0 {
				t.Fatalf("decoder accepted invalid entry %d: %+v", i, e)
			}
			prev = e.Cycle
		}
		var re bytes.Buffer
		if err := EncodeTrace(&re, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeTrace(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		var re2 bytes.Buffer
		if err := EncodeTrace(&re2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), re2.Bytes()) {
			t.Fatalf("encoding is not canonical: second round trip changed bytes (%d vs %d)", re.Len(), re2.Len())
		}
		if !reflect.DeepEqual(tr.Entries, tr2.Entries) {
			t.Fatalf("round trip changed entries: %d vs %d", len(tr.Entries), len(tr2.Entries))
		}
		// The streaming decoder must agree with the in-memory one.
		sr, err := StreamTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("DecodeTrace accepted what StreamTrace rejects: %v", err)
		}
		defer sr.Close()
		for i := 0; ; i++ {
			e, err := sr.Next()
			if err == io.EOF {
				if i != len(tr.Entries) {
					t.Fatalf("stream ended after %d of %d entries", i, len(tr.Entries))
				}
				break
			}
			if err != nil {
				t.Fatalf("stream entry %d: %v", i, err)
			}
			if e != tr.Entries[i] {
				t.Fatalf("stream entry %d = %+v, DecodeTrace saw %+v", i, e, tr.Entries[i])
			}
		}
	})
}
