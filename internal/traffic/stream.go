package traffic

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/sim"
)

// StreamReplay replays a spintrace-v1 stream through the simulator
// without ever holding the trace in memory. It implements the
// sim.TrafficStepper split: StepTraffic (serial, once per cycle) pumps
// the entries that have come due into per-source queues, and Generate
// (parallel, per terminal) drains only its own source's queue — so
// streaming replay composes with the sharded engine instead of clamping
// it to one shard the way the legacy map-based Replay did.
//
// Memory is bounded by one decoder chunk plus the entries due in the
// current cycle, independent of trace length.
type StreamReplay struct {
	r *TraceReader

	// Validation bounds; entries outside them poison the replay with a
	// descriptive error instead of panicking inside the injector.
	terminals int
	vnets     int
	maxLen    int

	queues    [][]TraceEntry // entries due this cycle, per source
	next      TraceEntry     // lookahead: first entry not yet due
	nextValid bool
	eof       bool
	err       error
	pumped    int64
}

// NewStreamReplay wraps an open TraceReader. The bounds mirror
// Trace.Validate: terminals and vnets from the simulated configuration,
// maxLen from Config.MaxPktLen.
func NewStreamReplay(r *TraceReader, terminals, vnets, maxLen int) *StreamReplay {
	return &StreamReplay{r: r, terminals: terminals, vnets: vnets, maxLen: maxLen}
}

// Name implements sim.TrafficGen.
func (s *StreamReplay) Name() string { return "trace_stream" }

// RequiresSerialStep implements sim.SerialOnly: streaming replay is
// shard-safe by construction.
func (s *StreamReplay) RequiresSerialStep() bool { return false }

// PrepareTerminals implements sim.TrafficPrep.
func (s *StreamReplay) PrepareTerminals(n int) {
	if s.terminals == 0 {
		s.terminals = n
	}
	if n < s.terminals {
		n = s.terminals
	}
	s.queues = make([][]TraceEntry, n)
}

func (s *StreamReplay) check(e TraceEntry) error {
	switch {
	case e.Src < 0 || e.Src >= s.terminals:
		return fmt.Errorf("traffic: trace entry %d: src %d outside [0,%d)", s.pumped, e.Src, s.terminals)
	case e.Dst < 0 || e.Dst >= s.terminals:
		return fmt.Errorf("traffic: trace entry %d: dst %d outside [0,%d)", s.pumped, e.Dst, s.terminals)
	case e.Src == e.Dst:
		return fmt.Errorf("traffic: trace entry %d: self-destined packet at node %d", s.pumped, e.Src)
	case e.Length <= 0 || e.Length > s.maxLen:
		return fmt.Errorf("traffic: trace entry %d: length %d outside (0,%d]", s.pumped, e.Length, s.maxLen)
	case e.VNet < 0 || e.VNet >= s.vnets:
		return fmt.Errorf("traffic: trace entry %d: vnet %d outside [0,%d)", s.pumped, e.VNet, s.vnets)
	}
	return nil
}

// StepTraffic implements sim.TrafficStepper: advance the stream up to
// cycle now, queueing every entry that has come due. Runs serially
// before the parallel phases, so the per-source appends never race with
// Generate.
func (s *StreamReplay) StepTraffic(now int64) {
	if s.err != nil || s.queues == nil {
		return
	}
	for {
		if !s.nextValid {
			if s.eof {
				return
			}
			e, err := s.r.Next()
			if err == io.EOF {
				s.eof = true
				return
			}
			if err != nil {
				s.err = err
				s.eof = true
				return
			}
			if err := s.check(e); err != nil {
				s.err = err
				s.eof = true
				return
			}
			s.next = e
			s.nextValid = true
		}
		if s.next.Cycle > now {
			return
		}
		s.queues[s.next.Src] = append(s.queues[s.next.Src], s.next)
		s.nextValid = false
		s.pumped++
	}
}

// Generate implements sim.TrafficGen, draining this source's due
// entries. Each queue is filled serially in StepTraffic and emptied
// here, so steady-state replay does not allocate.
func (s *StreamReplay) Generate(_ int64, src int, _ *rand.Rand, emit func(sim.PacketSpec)) {
	if src < 0 || src >= len(s.queues) {
		return
	}
	q := s.queues[src]
	if len(q) == 0 {
		return
	}
	for _, e := range q {
		emit(sim.PacketSpec{Dst: e.Dst, Length: e.Length, VNet: e.VNet})
	}
	s.queues[src] = q[:0]
}

// Err reports the first decode or validation failure; replay halts at
// the failing entry rather than injecting garbage.
func (s *StreamReplay) Err() error { return s.err }

// Done reports whether the stream is exhausted and every queued entry
// has been injected.
func (s *StreamReplay) Done() bool {
	if !s.eof || s.nextValid {
		return false
	}
	for _, q := range s.queues {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// Pumped reports how many entries have been queued for injection.
func (s *StreamReplay) Pumped() int64 { return s.pumped }
