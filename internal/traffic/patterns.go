// Package traffic generates network workloads: the standard synthetic
// permutation/randomised patterns of the paper's evaluation (uniform
// random, bit complement, transpose, tornado, neighbor, bit reverse, bit
// rotation, shuffle) and the PARSEC-like application traces used for the
// EDP experiment.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Pattern maps a source terminal to its destination terminal. Synthetic
// patterns are defined over terminal ids; coordinate-based patterns
// (transpose, tornado) derive dimensions from the topology.
type Pattern interface {
	Name() string
	// Dest returns the destination terminal for a packet from src. rng
	// serves randomised patterns (uniform random).
	Dest(src int, rng *rand.Rand) int
}

// uniform selects destinations uniformly over all other terminals.
type uniform struct{ n int }

func (u uniform) Name() string { return "uniform_random" }
func (u uniform) Dest(src int, rng *rand.Rand) int {
	d := rng.Intn(u.n - 1)
	if d >= src {
		d++
	}
	return d
}

// Uniform returns the uniform-random pattern over n terminals.
func Uniform(n int) Pattern { return uniform{n} }

// bitComplement sends node b to ~b within log2(n) bits.
type bitComplement struct {
	n    int
	bits uint
}

func (p bitComplement) Name() string { return "bit_complement" }
func (p bitComplement) Dest(src int, _ *rand.Rand) int {
	return (^src) & (p.n - 1)
}

// BitComplement returns the bit-complement permutation (n must be a power
// of two).
func BitComplement(n int) (Pattern, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit_complement needs power-of-two terminals, got %d", n)
	}
	return bitComplement{n: n, bits: uint(bits.TrailingZeros(uint(n)))}, nil
}

// bitReverse reverses the address bits.
type bitReverse struct {
	n    int
	bits uint
}

func (p bitReverse) Name() string { return "bit_reverse" }
func (p bitReverse) Dest(src int, _ *rand.Rand) int {
	return int(bits.Reverse64(uint64(src)) >> (64 - p.bits))
}

// BitReverse returns the bit-reversal permutation (power-of-two n).
func BitReverse(n int) (Pattern, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit_reverse needs power-of-two terminals, got %d", n)
	}
	return bitReverse{n: n, bits: uint(bits.TrailingZeros(uint(n)))}, nil
}

// bitRotation rotates the address bits right by one.
type bitRotation struct {
	n    int
	bits uint
}

func (p bitRotation) Name() string { return "bit_rotation" }
func (p bitRotation) Dest(src int, _ *rand.Rand) int {
	return (src >> 1) | ((src & 1) << (p.bits - 1))
}

// BitRotation returns the bit-rotation permutation (power-of-two n).
func BitRotation(n int) (Pattern, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bit_rotation needs power-of-two terminals, got %d", n)
	}
	return bitRotation{n: n, bits: uint(bits.TrailingZeros(uint(n)))}, nil
}

// shuffle rotates the address bits left by one.
type shuffle struct {
	n    int
	bits uint
}

func (p shuffle) Name() string { return "shuffle" }
func (p shuffle) Dest(src int, _ *rand.Rand) int {
	return ((src << 1) | (src >> (p.bits - 1))) & (p.n - 1)
}

// Shuffle returns the perfect-shuffle permutation (power-of-two n).
func Shuffle(n int) (Pattern, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: shuffle needs power-of-two terminals, got %d", n)
	}
	return shuffle{n: n, bits: uint(bits.TrailingZeros(uint(n)))}, nil
}

// neighbor sends node i to node i+1 (mod n).
type neighbor struct{ n int }

func (p neighbor) Name() string { return "neighbor" }
func (p neighbor) Dest(src int, _ *rand.Rand) int {
	return (src + 1) % p.n
}

// Neighbor returns the nearest-neighbor pattern.
func Neighbor(n int) Pattern { return neighbor{n} }

// transpose swaps the (x, y) coordinates on a square mesh, or the
// high/low halves of the address otherwise.
type transpose struct {
	mesh *topology.Mesh
	n    int
	bits uint
}

func (p transpose) Name() string { return "transpose" }
func (p transpose) Dest(src int, _ *rand.Rand) int {
	if p.mesh != nil {
		x, y := p.mesh.Coords(src)
		return p.mesh.RouterAt(y, x)
	}
	half := p.bits / 2
	lo := src & (1<<half - 1)
	hi := src >> half
	return (lo << (p.bits - half)) | hi
}

// Transpose returns the matrix-transpose permutation. On a square mesh it
// swaps coordinates; on other power-of-two topologies it swaps address
// halves.
func Transpose(topo topology.Topology) (Pattern, error) {
	n := topo.NumTerminals()
	if m, ok := topo.(*topology.Mesh); ok && m.X == m.Y {
		return transpose{mesh: m, n: n}, nil
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: transpose needs a square mesh or power-of-two terminals")
	}
	return transpose{n: n, bits: uint(bits.TrailingZeros(uint(n)))}, nil
}

// tornado sends traffic halfway around each dimension: on a mesh/torus,
// dst_x = (x + ceil(X/2) - 1) mod X; on other topologies, half the
// terminal count away.
type tornado struct {
	mesh *topology.Mesh
	n    int
}

func (p tornado) Name() string { return "tornado" }
func (p tornado) Dest(src int, _ *rand.Rand) int {
	if p.mesh != nil {
		x, y := p.mesh.Coords(src)
		nx := (x + (p.mesh.X+1)/2 - 1) % p.mesh.X
		return p.mesh.RouterAt(nx, y)
	}
	return (src + p.n/2) % p.n
}

// Tornado returns the tornado pattern.
func Tornado(topo topology.Topology) Pattern {
	if m, ok := topo.(*topology.Mesh); ok {
		return tornado{mesh: m, n: topo.NumTerminals()}
	}
	return tornado{n: topo.NumTerminals()}
}

// ByName resolves the synthetic patterns used across the evaluation.
func ByName(name string, topo topology.Topology) (Pattern, error) {
	n := topo.NumTerminals()
	switch name {
	case "uniform_random", "uniform", "ur":
		return Uniform(n), nil
	case "bit_complement", "bitcomp":
		return BitComplement(n)
	case "bit_reverse", "bitrev":
		return BitReverse(n)
	case "bit_rotation", "bitrot":
		return BitRotation(n)
	case "shuffle":
		return Shuffle(n)
	case "neighbor":
		return Neighbor(n), nil
	case "transpose":
		return Transpose(topo)
	case "tornado":
		return Tornado(topo), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Synthetic is an open-loop Bernoulli source over a Pattern: every cycle
// each terminal independently generates a packet with probability
// Rate/E[len] so that offered load equals Rate flits/terminal/cycle. A
// DataFrac fraction of packets are long (DataLen flits); the rest are
// single-flit control packets, matching the paper's 1-flit/5-flit mix.
type Synthetic struct {
	Pattern  Pattern
	Rate     float64 // offered flits/terminal/cycle
	DataLen  int     // long-packet length (default 5)
	DataFrac float64 // fraction of packets that are long (default 0.5)
	VNets    int     // spread packets round-robin over vnets (default 1)

	// next rotates the vnet per terminal (not globally), so each
	// terminal's emission sequence is independent of the others' — the
	// property the sharded engine's determinism contract rests on.
	next []int32
}

// Name implements sim.TrafficGen.
func (s *Synthetic) Name() string {
	return fmt.Sprintf("%s@%.3f", s.Pattern.Name(), s.Rate)
}

// RequiresSerialStep implements sim.SerialOnly: generation is safe under
// the sharded engine (all state is per-terminal).
func (s *Synthetic) RequiresSerialStep() bool { return false }

// PrepareTerminals implements sim.TrafficPrep.
func (s *Synthetic) PrepareTerminals(n int) {
	if len(s.next) < n {
		s.next = make([]int32, n)
	}
}

// Generate implements sim.TrafficGen.
func (s *Synthetic) Generate(_ int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	dataLen := s.DataLen
	if dataLen == 0 {
		dataLen = 5
	}
	frac := s.DataFrac
	if frac == 0 {
		frac = 0.5
	}
	meanLen := frac*float64(dataLen) + (1 - frac)
	pInject := s.Rate / meanLen
	if rng.Float64() >= pInject {
		return
	}
	length := 1
	if rng.Float64() < frac {
		length = dataLen
	}
	vnet := 0
	if s.VNets > 1 {
		if src >= len(s.next) {
			s.PrepareTerminals(src + 1)
		}
		vnet = int(s.next[src]) % s.VNets
		s.next[src]++
	}
	dst := s.Pattern.Dest(src, rng)
	if dst == src {
		return
	}
	emit(sim.PacketSpec{Dst: dst, Length: length, VNet: vnet})
}
