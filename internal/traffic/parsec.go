package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/topology"
)

// AppProfile is a synthetic stand-in for one PARSEC benchmark's network
// traffic (DESIGN.md records the substitution: the paper drove the NoC
// from gem5 full-system runs over a directory protocol; the EDP
// comparison only needs per-benchmark offered load, locality and message
// mix, which are taken from published characterisations). Traffic runs
// over three virtual networks as a directory protocol does: requests
// (vnet 0, 1-flit), forwards/invalidations (vnet 1, 1-flit) and data
// responses (vnet 2, 5-flit).
type AppProfile struct {
	Name string
	// Rate is offered load in flits/node/cycle (well below synthetic
	// saturation — real applications filter traffic through caches).
	Rate float64
	// Locality is the probability a message targets a nearby node
	// (within 2 hops) rather than a uniform destination.
	Locality float64
	// DataRatio is the fraction of messages that are 5-flit data.
	DataRatio float64
}

// PARSEC returns the benchmark suite profiles used by the EDP experiment.
// Rates/localities are representative of published NoC characterisations
// of PARSEC working sets (light, cache-filtered traffic with varying
// sharing behaviour).
func PARSEC() []AppProfile {
	return []AppProfile{
		{Name: "blackscholes", Rate: 0.005, Locality: 0.3, DataRatio: 0.35},
		{Name: "bodytrack", Rate: 0.012, Locality: 0.4, DataRatio: 0.40},
		{Name: "canneal", Rate: 0.030, Locality: 0.1, DataRatio: 0.45},
		{Name: "dedup", Rate: 0.018, Locality: 0.3, DataRatio: 0.40},
		{Name: "ferret", Rate: 0.016, Locality: 0.3, DataRatio: 0.40},
		{Name: "fluidanimate", Rate: 0.010, Locality: 0.6, DataRatio: 0.40},
		{Name: "freqmine", Rate: 0.008, Locality: 0.4, DataRatio: 0.35},
		{Name: "streamcluster", Rate: 0.025, Locality: 0.2, DataRatio: 0.45},
		{Name: "swaptions", Rate: 0.004, Locality: 0.4, DataRatio: 0.35},
		{Name: "vips", Rate: 0.014, Locality: 0.3, DataRatio: 0.40},
		{Name: "x264", Rate: 0.020, Locality: 0.3, DataRatio: 0.40},
	}
}

// AppTraffic drives a simulation from an AppProfile over 3 vnets.
type AppTraffic struct {
	Profile AppProfile
	Topo    topology.Topology

	near [][]int // cached near-neighbour sets
}

// Name implements sim.TrafficGen.
func (a *AppTraffic) Name() string { return fmt.Sprintf("parsec:%s", a.Profile.Name) }

// Generate implements sim.TrafficGen.
func (a *AppTraffic) Generate(_ int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	p := a.Profile
	meanLen := p.DataRatio*5 + (1 - p.DataRatio)
	if rng.Float64() >= p.Rate/meanLen {
		return
	}
	dst := a.pickDst(src, rng)
	if dst == src {
		return
	}
	if rng.Float64() < p.DataRatio {
		emit(sim.PacketSpec{Dst: dst, Length: 5, VNet: 2})
		return
	}
	vnet := 0
	if rng.Float64() < 0.4 {
		vnet = 1
	}
	emit(sim.PacketSpec{Dst: dst, Length: 1, VNet: vnet})
}

// pickDst honours the locality knob.
func (a *AppTraffic) pickDst(src int, rng *rand.Rand) int {
	n := a.Topo.NumTerminals()
	if rng.Float64() >= a.Profile.Locality {
		d := rng.Intn(n - 1)
		if d >= src {
			d++
		}
		return d
	}
	if a.near == nil {
		a.near = make([][]int, n)
	}
	if a.near[src] == nil {
		srcR := a.Topo.TerminalRouter(src)
		for t := 0; t < n; t++ {
			if t != src && a.Topo.Distance(srcR, a.Topo.TerminalRouter(t)) <= 2 {
				a.near[src] = append(a.near[src], t)
			}
		}
	}
	if len(a.near[src]) == 0 {
		return src
	}
	return a.near[src][rng.Intn(len(a.near[src]))]
}
