package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// rectangleRing returns the routers of a clockwise rectangle perimeter on
// the mesh: a canonical dependency cycle.
func rectangleRing(m *topology.Mesh, x1, y1, x2, y2 int) []int {
	var ring []int
	for x := x1; x < x2; x++ {
		ring = append(ring, m.RouterAt(x, y1))
	}
	for y := y1; y < y2; y++ {
		ring = append(ring, m.RouterAt(x2, y))
	}
	for x := x2; x > x1; x-- {
		ring = append(ring, m.RouterAt(x, y2))
	}
	for y := y2; y > y1; y-- {
		ring = append(ring, m.RouterAt(x1, y))
	}
	return ring
}

// aheadPackets gives packet i the destination k positions ahead on the
// ring, which makes every successor hop minimal for k == 2 on a rectangle.
func aheadPackets(ring []int, k int, misroutes int) []RingPacket {
	m := len(ring)
	ps := make([]RingPacket, m)
	for i := range ps {
		ps[i] = RingPacket{Dst: ring[(i+k)%m], MisroutesLeft: misroutes}
	}
	return ps
}

func mustMesh(t *testing.T) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRectangleRingIsDeadlocked(t *testing.T) {
	m := mustMesh(t)
	ring := rectangleRing(m, 1, 1, 4, 3)
	r, err := NewRing(ring, aheadPackets(ring, 2, 0), m.Distance)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked() {
		t.Fatal("2-ahead rectangle ring should be deadlocked")
	}
}

func TestMinimalResolutionWithinBound(t *testing.T) {
	m := mustMesh(t)
	ring := rectangleRing(m, 0, 0, 7, 7)
	r, err := NewRing(ring, aheadPackets(ring, 2, 0), m.Distance)
	if err != nil {
		t.Fatal(err)
	}
	spins, err := r.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spins < 1 || spins > r.Len()-1 {
		t.Fatalf("spins = %d, want within [1, %d]", spins, r.Len()-1)
	}
	if r.Deadlocked() {
		t.Fatal("still deadlocked after Resolve")
	}
}

func TestSpinOnResolvedRingErrs(t *testing.T) {
	m := mustMesh(t)
	ring := rectangleRing(m, 0, 0, 2, 2)
	// Destination 1 ahead: the first spin delivers, so the ring is not
	// deadlocked at all.
	r, err := NewRing(ring, aheadPackets(ring, 1, 0), m.Distance)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked() {
		t.Fatal("1-ahead ring should not count as deadlocked")
	}
	if err := r.Spin(); err == nil {
		t.Fatal("Spin on non-deadlocked ring should err")
	}
}

func TestNewRingValidation(t *testing.T) {
	m := mustMesh(t)
	if _, err := NewRing([]int{1}, []RingPacket{{Dst: 2}}, m.Distance); err == nil {
		t.Fatal("length-1 ring accepted")
	}
	if _, err := NewRing([]int{1, 2}, []RingPacket{{Dst: 3}}, m.Distance); err == nil {
		t.Fatal("mismatched packet count accepted")
	}
	if _, err := NewRing([]int{1, 2}, []RingPacket{{Dst: 1}, {Dst: 3}}, m.Distance); err == nil {
		t.Fatal("packet already at destination accepted")
	}
}

func TestBound(t *testing.T) {
	cases := []struct{ m, p, want int }{
		{8, 0, 7},
		{8, 1, 15},
		{4, 2, 11},
		{2, 0, 1},
	}
	for _, c := range cases {
		if got := Bound(c.m, c.p); got != c.want {
			t.Fatalf("Bound(%d,%d) = %d, want %d", c.m, c.p, got, c.want)
		}
	}
}

// Property (Theorem, Case I): every 2-ahead rectangle ring on a mesh
// resolves within m-1 spins under minimal routing.
func TestTheoremMinimalProperty(t *testing.T) {
	m := mustMesh(t)
	f := func(a, b, c, d uint8) bool {
		x1, y1 := int(a)%7, int(b)%7
		x2 := x1 + 1 + int(c)%(7-x1)
		y2 := y1 + 1 + int(d)%(7-y1)
		ring := rectangleRing(m, x1, y1, x2, y2)
		r, err := NewRing(ring, aheadPackets(ring, 2, 0), m.Distance)
		if err != nil {
			return false
		}
		spins, err := r.Resolve()
		return err == nil && spins <= len(ring)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem, Case II): with per-packet misroute budgets <= p the
// ring resolves within m*p + m-1 spins.
func TestTheoremNonMinimalProperty(t *testing.T) {
	m := mustMesh(t)
	f := func(a, b uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x2 := 1 + int(a)%7
		y2 := 1 + int(b)%7
		if x2 == 0 || y2 == 0 {
			return true
		}
		ring := rectangleRing(m, 0, 0, x2, y2)
		pkts := aheadPackets(ring, 2, 0)
		p := 0
		for i := range pkts {
			pkts[i].MisroutesLeft = rng.Intn(3)
			if pkts[i].MisroutesLeft > p {
				p = pkts[i].MisroutesLeft
			}
		}
		r, err := NewRing(ring, pkts, m.Distance)
		if err != nil {
			return false
		}
		spins, err := r.Resolve()
		return err == nil && spins <= Bound(len(ring), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random destinations further along the ring (any k >= 2) still
// resolve within the minimal bound whenever the initial state is a
// deadlock.
func TestTheoremRandomAheadProperty(t *testing.T) {
	m := mustMesh(t)
	f := func(a, b, kRaw uint8) bool {
		x2 := 2 + int(a)%5
		y2 := 2 + int(b)%5
		ring := rectangleRing(m, 0, 0, x2, y2)
		k := 2 + int(kRaw)%(len(ring)-2)
		r, err := NewRing(ring, aheadPackets(ring, k, 0), m.Distance)
		if err != nil {
			return false
		}
		spins, err := r.Resolve()
		return err == nil && spins <= len(ring)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the theorem holds on tori as well (wraparound rings).
func TestTheoremTorusRowRing(t *testing.T) {
	torus, err := topology.NewTorus(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A full wraparound row is a cycle in a torus.
	var ring []int
	for x := 0; x < 8; x++ {
		ring = append(ring, torus.RouterAt(x, 3))
	}
	// Destination 3 ahead keeps every +x hop minimal on an 8-ary torus
	// (distance along the ring 3 <= 4).
	r, err := NewRing(ring, aheadPackets(ring, 3, 0), torus.Distance)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked() {
		t.Fatal("torus row ring should be deadlocked")
	}
	spins, err := r.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spins > len(ring)-1 {
		t.Fatalf("torus ring needed %d spins > bound %d", spins, len(ring)-1)
	}
}
