// Package core is the SPIN theory itself (Section III of the paper),
// separated from any router microarchitecture: a deadlocked dependency
// ring, the spin operator (simultaneous one-hop movement of every packet
// in the ring), and the resolution-bound theorem
//
//	k = m - 1            for minimal routing
//	k = m·p + (m - 1)    for non-minimal routing with misroute cap p
//
// where m is the ring length. The simulator's distributed implementation
// (internal/spin) realises this theory; the tests here check the theorem
// on randomly generated rings, independent of that implementation.
package core

import (
	"errors"
	"fmt"
)

// DistanceFunc reports the minimal hop count between two routers of the
// underlying network (-1 if unreachable).
type DistanceFunc func(a, b int) int

// RingPacket is a packet trapped in a deadlocked ring.
type RingPacket struct {
	// Dst is the packet's destination router.
	Dst int
	// MisroutesLeft is how many more non-minimal hops the routing may give
	// this packet (0 for minimal routing).
	MisroutesLeft int
}

// Ring is the abstract deadlocked dependency cycle: routers[i] holds
// packets[i], which waits for buffer space at routers[(i+1) mod m]. The
// ring is a genuine deadlock while every packet's requested next hop is
// its ring successor.
type Ring struct {
	routers []int
	packets []RingPacket
	dist    DistanceFunc
	spins   int
}

// NewRing validates and builds a ring. Every packet must be deliverable
// and no packet may already be at its destination.
func NewRing(routers []int, packets []RingPacket, dist DistanceFunc) (*Ring, error) {
	if len(routers) < 2 {
		return nil, errors.New("core: a dependency ring needs at least 2 routers")
	}
	if len(routers) != len(packets) {
		return nil, fmt.Errorf("core: %d routers but %d packets", len(routers), len(packets))
	}
	for i, p := range packets {
		if routers[i] == p.Dst {
			return nil, fmt.Errorf("core: packet %d is already at its destination %d", i, p.Dst)
		}
		if dist(routers[i], p.Dst) < 0 {
			return nil, fmt.Errorf("core: packet %d cannot reach %d from %d", i, p.Dst, routers[i])
		}
	}
	return &Ring{
		routers: append([]int(nil), routers...),
		packets: append([]RingPacket(nil), packets...),
		dist:    dist,
	}, nil
}

// Len reports the ring length m.
func (r *Ring) Len() int { return len(r.routers) }

// Spins reports how many spins have been performed.
func (r *Ring) Spins() int { return r.spins }

// wantsSuccessor reports whether the packet at position i still requests
// its ring successor: under minimal routing, iff the successor hop is
// minimal; under non-minimal routing, also if the packet may still be
// misrouted.
func (r *Ring) wantsSuccessor(i int) bool {
	m := len(r.routers)
	cur, next := r.routers[i], r.routers[(i+1)%m]
	p := r.packets[i]
	if next == p.Dst {
		// The successor hop delivers the packet: it exits the ring into
		// the destination's ejection path, which never blocks.
		return false
	}
	if r.dist(next, p.Dst) >= 0 && r.dist(next, p.Dst) == r.dist(cur, p.Dst)-1 {
		return true
	}
	return p.MisroutesLeft > 0
}

// Deadlocked reports whether every packet still requests its successor —
// the ring remains a (worst-case) deadlock.
func (r *Ring) Deadlocked() bool {
	for i := range r.packets {
		if !r.wantsSuccessor(i) {
			return false
		}
	}
	return true
}

// Spin performs one synchronized movement: every packet advances one hop
// along the ring at the same time. It reports an error when called on a
// ring that is no longer deadlocked (some packet can exit: the deadlock is
// already broken).
//
// Spin models the worst case of the theorem: a packet that could exit but
// is misrouted around the ring instead consumes one of its misroute
// credits.
func (r *Ring) Spin() error {
	if !r.Deadlocked() {
		return errors.New("core: ring is not deadlocked; no spin needed")
	}
	m := len(r.routers)
	// Consume misroute credits for packets whose successor hop is
	// non-minimal.
	for i := range r.packets {
		cur, next := r.routers[i], r.routers[(i+1)%m]
		p := &r.packets[i]
		minimal := next != p.Dst && r.dist(next, p.Dst) == r.dist(cur, p.Dst)-1
		if !minimal {
			p.MisroutesLeft--
		}
	}
	// Simultaneous one-hop rotation: packet i moves to position i+1.
	rotated := make([]RingPacket, m)
	for i := range r.packets {
		rotated[(i+1)%m] = r.packets[i]
	}
	r.packets = rotated
	r.spins++
	return nil
}

// Bound reports the theorem's worst-case spin count for a ring of length
// m whose packets may each be misrouted at most p more times.
func Bound(m, p int) int {
	if p <= 0 {
		return m - 1
	}
	return m*p + m - 1
}

// Resolve spins until the deadlock is broken, returning the number of
// spins used. It errs if the theorem bound is exceeded — which the
// theorem proves impossible for valid rings, so an error indicates a bug
// (or an invalid ring).
func (r *Ring) Resolve() (int, error) {
	maxP := 0
	for _, p := range r.packets {
		if p.MisroutesLeft > maxP {
			maxP = p.MisroutesLeft
		}
	}
	bound := Bound(len(r.routers), maxP)
	start := r.spins
	for r.Deadlocked() {
		if r.spins-start >= bound {
			return r.spins - start, fmt.Errorf("core: deadlock not resolved within the theorem bound %d", bound)
		}
		if err := r.Spin(); err != nil {
			return r.spins - start, err
		}
	}
	return r.spins - start, nil
}
