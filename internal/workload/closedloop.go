package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// ClosedLoop is a finite-window request/response client at every
// terminal: at most Window requests outstanding, each ejected reply
// credits a new injection, so offered load self-throttles at saturation
// and sweeps report achieved throughput instead of open-loop
// divergence. Requests travel on vnet 0 and replies on the last vnet —
// the classic message-class separation that keeps the request/reply
// dependency cycle out of the network.
//
// Shard discipline: Generate touches only the source terminal's state
// (window slot check, think timer, pending-reply queue), while request
// retirement and reply scheduling happen in OnEject during the
// simulator's serial commit, in deterministic shard-major order. Think
// times draw from per-terminal splitmix streams derived with
// sim.EntitySeed, so results are byte-identical at any shard count.
type ClosedLoop struct {
	pat      traffic.Pattern
	window   int32
	rate     float64
	pIssue   float64
	reqLen   int
	respLen  int
	think    int64
	thinkMax int64
	alpha    float64
	vnets    int
	seed     int64

	outstanding []int32
	thinkUntil  []int64
	pend        [][]pendingReply
	issued      []int64
	completed   []int64
	thinkSrc    []thinkStream
	quiesced    bool
	auditErr    error
}

type pendingReply struct {
	dst    int32
	length int32
}

// thinkStream is a per-terminal splitmix64, the same generator the
// engine's entity streams use, seeded from (seed, "W:<t>").
type thinkStream struct{ state uint64 }

func (s *thinkStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *thinkStream) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// ClosedLoopConfig assembles a ClosedLoop; zero fields take the
// documented defaults.
type ClosedLoopConfig struct {
	Pattern   traffic.Pattern
	Window    int     // default 4
	Rate      float64 // offered request flits/terminal/cycle when the window is open
	ReqLen    int     // default 1
	RespLen   int     // default 5
	Think     int64   // mean think time after a reply; 0 disables
	ThinkMax  int64   // bounded-Pareto cap; default 8x Think
	Alpha     float64 // Pareto shape; default 1.5
	VNets     int     // total vnets; must be >= 2
	MaxPktLen int     // engine packet-length cap (0 means 5)
	Seed      int64
}

// NewClosedLoop validates the configuration and builds the client set.
func NewClosedLoop(c ClosedLoopConfig) (*ClosedLoop, error) {
	if c.Pattern == nil {
		return nil, fmt.Errorf("workload: closed loop needs a destination pattern")
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Window < 0 || c.Window > 1024 {
		return nil, fmt.Errorf("workload: window %d outside (0,1024]", c.Window)
	}
	if c.ReqLen == 0 {
		c.ReqLen = 1
	}
	if c.RespLen == 0 {
		c.RespLen = 5
	}
	if c.MaxPktLen == 0 {
		c.MaxPktLen = 5
	}
	if c.ReqLen < 0 || c.ReqLen > c.MaxPktLen {
		return nil, fmt.Errorf("workload: request length %d outside (0,%d]", c.ReqLen, c.MaxPktLen)
	}
	if c.RespLen < 0 || c.RespLen > c.MaxPktLen {
		return nil, fmt.Errorf("workload: response length %d outside (0,%d]", c.RespLen, c.MaxPktLen)
	}
	if c.VNets < 2 {
		return nil, fmt.Errorf("workload: closed loop needs >= 2 vnets to separate requests and replies, got %d", c.VNets)
	}
	if c.Rate <= 0 {
		return nil, fmt.Errorf("workload: closed loop needs a positive rate")
	}
	if c.Think < 0 {
		return nil, fmt.Errorf("workload: negative think time")
	}
	if c.ThinkMax == 0 {
		c.ThinkMax = 8 * c.Think
	}
	if c.ThinkMax < c.Think {
		return nil, fmt.Errorf("workload: think cap %d below mean %d", c.ThinkMax, c.Think)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	p := c.Rate / float64(c.ReqLen)
	if p > 1 {
		p = 1
	}
	return &ClosedLoop{
		pat:      c.Pattern,
		window:   int32(c.Window),
		rate:     c.Rate,
		pIssue:   p,
		reqLen:   c.ReqLen,
		respLen:  c.RespLen,
		think:    c.Think,
		thinkMax: c.ThinkMax,
		alpha:    c.Alpha,
		vnets:    c.VNets,
		seed:     c.Seed,
	}, nil
}

// Name implements sim.TrafficGen.
func (cl *ClosedLoop) Name() string {
	return fmt.Sprintf("closed_loop(%s,W=%d)@%.3f", cl.pat.Name(), cl.window, cl.rate)
}

// RequiresSerialStep implements sim.SerialOnly: generation is
// terminal-local, commit-side accounting is serial by construction.
func (cl *ClosedLoop) RequiresSerialStep() bool { return false }

// PrepareTerminals implements sim.TrafficPrep.
func (cl *ClosedLoop) PrepareTerminals(n int) {
	if len(cl.outstanding) >= n {
		return
	}
	cl.outstanding = make([]int32, n)
	cl.thinkUntil = make([]int64, n)
	cl.pend = make([][]pendingReply, n)
	cl.issued = make([]int64, n)
	cl.completed = make([]int64, n)
	cl.thinkSrc = make([]thinkStream, n)
	for i := range cl.thinkSrc {
		cl.thinkSrc[i].state = uint64(sim.EntitySeed(cl.seed, "W:"+strconv.Itoa(i)))
	}
}

// Generate implements sim.TrafficGen: first flush replies this server
// owes (queued by OnEject at commit, so the slice is stable during the
// parallel phase), then issue a new request if a window slot is free
// and the think timer expired.
func (cl *ClosedLoop) Generate(cycle int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	if q := cl.pend[src]; len(q) > 0 {
		for _, r := range q {
			emit(sim.PacketSpec{Dst: int(r.dst), Length: int(r.length), VNet: cl.vnets - 1})
		}
		cl.pend[src] = q[:0]
	}
	if cl.quiesced || cl.outstanding[src] >= cl.window || cycle < cl.thinkUntil[src] {
		return
	}
	if rng.Float64() >= cl.pIssue {
		return
	}
	dst := cl.pat.Dest(src, rng)
	if dst == src {
		return
	}
	emit(sim.PacketSpec{Dst: dst, Length: cl.reqLen, VNet: 0})
	cl.outstanding[src]++
	cl.issued[src]++
}

// OnEject implements sim.TrafficEjectObserver, called in the serial
// commit for every ejected packet. A reply retires its requester's
// window slot and starts the think timer; a request schedules the reply
// the server owes.
func (cl *ClosedLoop) OnEject(p *sim.Packet) {
	if p.VNet == cl.vnets-1 {
		t := p.Dst
		if t < 0 || t >= len(cl.outstanding) {
			cl.fail("reply for unknown terminal %d", t)
			return
		}
		if cl.outstanding[t] <= 0 {
			cl.fail("terminal %d received a reply with no outstanding request", t)
			return
		}
		cl.outstanding[t]--
		cl.completed[t]++
		if cl.think > 0 {
			cl.thinkUntil[t] = p.EjectCycle + cl.drawThink(t)
		}
		return
	}
	if p.VNet == 0 {
		srv := p.Dst
		if srv < 0 || srv >= len(cl.pend) {
			cl.fail("request for unknown terminal %d", srv)
			return
		}
		cl.pend[srv] = append(cl.pend[srv], pendingReply{dst: int32(p.Src), length: int32(cl.respLen)})
	}
}

// drawThink samples the bounded-Pareto think time for terminal t.
func (cl *ClosedLoop) drawThink(t int) int64 {
	u := cl.thinkSrc[t].float64()
	if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	d := float64(cl.think) * math.Pow(1-u, -1/cl.alpha)
	if d > float64(cl.thinkMax) {
		d = float64(cl.thinkMax)
	}
	return int64(d)
}

func (cl *ClosedLoop) fail(format string, args ...any) {
	if cl.auditErr == nil {
		cl.auditErr = fmt.Errorf("workload: "+format, args...)
	}
}

// Quiesce implements sim.TrafficQuiescer: during drain the clients stop
// issuing requests but keep answering the ones already in flight, so
// the network can reach zero in-window residue.
func (cl *ClosedLoop) Quiesce(on bool) { cl.quiesced = on }

// WindowLimit implements sim.WindowedTraffic.
func (cl *ClosedLoop) WindowLimit() int { return int(cl.window) }

// Outstanding implements sim.WindowedTraffic.
func (cl *ClosedLoop) Outstanding(t int) int {
	if t < 0 || t >= len(cl.outstanding) {
		return 0
	}
	return int(cl.outstanding[t])
}

// InWindow implements sim.WindowedTraffic: total outstanding requests.
func (cl *ClosedLoop) InWindow() int64 {
	var total int64
	for _, o := range cl.outstanding {
		total += int64(o)
	}
	return total
}

// AuditWindows implements sim.WindowedTraffic: the first internal
// accounting violation (sticky), or nil.
func (cl *ClosedLoop) AuditWindows() error {
	if cl.auditErr != nil {
		return cl.auditErr
	}
	var issued, completed int64
	for i := range cl.issued {
		issued += cl.issued[i]
		completed += cl.completed[i]
		if got := int64(cl.outstanding[i]); got != cl.issued[i]-cl.completed[i] {
			return fmt.Errorf("workload: terminal %d outstanding %d != issued %d - completed %d",
				i, got, cl.issued[i], cl.completed[i])
		}
	}
	if completed > issued {
		return fmt.Errorf("workload: %d replies retired but only %d requests issued", completed, issued)
	}
	return nil
}

// Issued reports the total requests issued (for tests and reporting).
func (cl *ClosedLoop) Issued() int64 {
	var total int64
	for _, v := range cl.issued {
		total += v
	}
	return total
}

// Completed reports the total requests retired by a reply.
func (cl *ClosedLoop) Completed() int64 {
	var total int64
	for _, v := range cl.completed {
		total += v
	}
	return total
}
