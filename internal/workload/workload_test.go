package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestSpecValidate is the spec-validation table: every malformed field
// combination must fail with a message naming the problem.
func TestSpecValidate(t *testing.T) {
	t.Parallel()
	good := []Spec{
		{},
		{Mode: "open"},
		{Mode: "closed", Window: 8, Think: 16, ReqLen: 1, RespLen: 5},
		{BurstOn: 8, BurstOff: 24},
		{HotFrac: 0.2, Hotspots: 2},
		{Mode: "closed", HotFrac: 0.1},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		s    Spec
		frag string
	}{
		{Spec{Mode: "sideways"}, "unknown mode"},
		{Spec{Mode: "closed", Window: -1}, "window"},
		{Spec{Mode: "closed", Window: 4096}, "window"},
		{Spec{Window: 4}, "mode closed"},
		{Spec{Think: 8}, "mode closed"},
		{Spec{ReqLen: 1}, "mode closed"},
		{Spec{Mode: "closed", Think: -3}, "negative think"},
		{Spec{Mode: "closed", Think: 16, ThinkMax: 4}, "below think"},
		{Spec{Mode: "closed", ReqLen: -1}, "negative packet length"},
		{Spec{BurstOn: 8}, "set together"},
		{Spec{BurstOff: 8}, "set together"},
		{Spec{BurstOn: -1, BurstOff: 4}, "negative burst"},
		{Spec{Mode: "closed", BurstOn: 4, BurstOff: 4}, "mode open"},
		{Spec{HotFrac: 1.5}, "hot_frac"},
		{Spec{HotFrac: -0.1}, "hot_frac"},
		{Spec{Hotspots: 2}, "without hot_frac"},
		{Spec{HotFrac: 0.5, Hotspots: -1}, "negative hotspot"},
	}
	for i, tc := range bad {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("bad spec %d (%+v) accepted", i, tc.s)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("bad spec %d: error %q does not mention %q", i, err, tc.frag)
		}
	}
}

// TestSpecNormalize pins the default-filling rules the canonical
// scenario encoding depends on: two specs that simulate identically must
// normalize to identical structs.
func TestSpecNormalize(t *testing.T) {
	t.Parallel()
	s := Spec{Mode: "closed", Think: 10}
	s.Normalize()
	if s.Window != 4 || s.ReqLen != 1 || s.RespLen != 5 || s.ThinkMax != 80 {
		t.Fatalf("closed defaults wrong: %+v", s)
	}

	s = Spec{Mode: "closed"}
	s.Normalize()
	if s.ThinkMax != 0 {
		t.Fatalf("think_max set without think: %+v", s)
	}

	s = Spec{HotFrac: 0.3}
	s.Normalize()
	if s.Mode != "open" || s.Hotspots != 1 {
		t.Fatalf("hotspot defaults wrong: %+v", s)
	}

	for _, zero := range []Spec{{}, {Mode: "open"}} {
		zero.Normalize()
		if !zero.IsZero() {
			t.Fatalf("spec %+v should be zero", zero)
		}
	}
	for _, nz := range []Spec{{Mode: "closed"}, {BurstOn: 4, BurstOff: 4}, {HotFrac: 0.1}} {
		nz.Normalize()
		if nz.IsZero() {
			t.Fatalf("spec %+v should not be zero", nz)
		}
	}
}

// closedNet builds a mesh network driven by a closed-loop client set.
func closedNet(t *testing.T, cfg ClosedLoopConfig, shards int) (*sim.Network, *ClosedLoop) {
	t.Helper()
	m, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.Uniform(16)
	}
	if cfg.VNets == 0 {
		cfg.VNets = 2
	}
	cl, err := NewClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.NewNetwork(sim.Config{
		Topology:   m,
		Routing:    &routing.XY{Mesh: m},
		Traffic:    cl,
		VNets:      cfg.VNets,
		VCsPerVNet: 2,
		Shards:     shards,
		Seed:       cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 && n.Shards() != shards {
		t.Fatalf("closed loop clamped to %d shards, want %d", n.Shards(), shards)
	}
	return n, cl
}

// TestClosedLoopHonorsWindow runs the clients under the invariant
// checker and asserts the finite-window contract end to end: no checker
// violations, per-terminal outstanding within [0, W], audit clean, and
// conservation between issues and completions.
func TestClosedLoopHonorsWindow(t *testing.T) {
	t.Parallel()
	n, cl := closedNet(t, ClosedLoopConfig{Window: 2, Rate: 0.5, Think: 4, Seed: 7}, 0)
	checker := n.AttachChecker(sim.CheckOptions{})
	n.Run(600)
	for _, v := range checker.Violations() {
		t.Errorf("violation: %v", v)
	}
	if cl.Issued() == 0 {
		t.Fatal("closed loop issued nothing")
	}
	for term := 0; term < 16; term++ {
		if o := cl.Outstanding(term); o < 0 || o > cl.WindowLimit() {
			t.Fatalf("terminal %d outstanding %d outside [0,%d]", term, o, cl.WindowLimit())
		}
	}
	if err := cl.AuditWindows(); err != nil {
		t.Fatal(err)
	}
	if got, want := cl.InWindow(), cl.Issued()-cl.Completed(); got != want {
		t.Fatalf("in-window %d != issued-completed %d", got, want)
	}
	// Quiesced drain retires every outstanding request.
	if !n.Drain(20000) {
		t.Fatal("closed loop failed to drain")
	}
	if cl.InWindow() != 0 {
		t.Fatalf("%d requests still in window after drain", cl.InWindow())
	}
	if cl.Issued() != cl.Completed() {
		t.Fatalf("drained with issued %d != completed %d", cl.Issued(), cl.Completed())
	}
}

// TestClosedLoopShardDeterminism pins the workload half of the engine's
// byte-identical contract: every counter the closed loop exposes is
// identical at 1, 2, and 4 shards.
func TestClosedLoopShardDeterminism(t *testing.T) {
	t.Parallel()
	type snap struct {
		issued, completed, inWindow, injected, ejected, latSum int64
	}
	run := func(shards int) snap {
		n, cl := closedNet(t, ClosedLoopConfig{Window: 4, Rate: 0.4, Think: 8, Seed: 3}, shards)
		n.Run(800)
		st := n.Stats()
		return snap{cl.Issued(), cl.Completed(), cl.InWindow(), st.Injected, st.Ejected, st.LatencySum}
	}
	want := run(0)
	if want.issued == 0 {
		t.Fatal("nothing issued")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d diverged: %+v, want %+v", shards, got, want)
		}
	}
}

// TestBurstShardDeterminism pins the bursty generator's half of the
// byte-identical contract: the Markov on/off gating over per-terminal
// rng streams is identical at 1, 2, and 4 shards, with and without
// hotspot skew.
func TestBurstShardDeterminism(t *testing.T) {
	t.Parallel()
	type snap struct {
		injected, ejected, latSum int64
	}
	run := func(shards int) snap {
		m, err := topology.NewMesh(4, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := Build(Spec{BurstOn: 8, BurstOff: 24, HotFrac: 0.2, Hotspots: 2},
			traffic.Uniform(16), 0.15, 0.5, 1, 16, 5, 9)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sim.NewNetwork(sim.Config{
			Topology:   m,
			Routing:    &routing.XY{Mesh: m},
			Traffic:    gen,
			VCsPerVNet: 2,
			Shards:     shards,
			Seed:       9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && n.Shards() != shards {
			t.Fatalf("burst generator clamped to %d shards, want %d", n.Shards(), shards)
		}
		n.Run(800)
		st := n.Stats()
		return snap{st.Injected, st.Ejected, st.LatencySum}
	}
	want := run(0)
	if want.injected == 0 {
		t.Fatal("burst generator injected nothing")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d diverged: %+v, want %+v", shards, got, want)
		}
	}
}

// TestCheckerCatchesWindowOverflow corrupts the per-terminal outstanding
// counter above the window limit and asserts the invariant checker's
// RuleWindow fires — the detection path for a client that ignores its
// window.
func TestCheckerCatchesWindowOverflow(t *testing.T) {
	t.Parallel()
	n, cl := closedNet(t, ClosedLoopConfig{Window: 2, Rate: 0.5, Seed: 1}, 0)
	checker := n.AttachChecker(sim.CheckOptions{})
	n.Run(50)
	if vs := checker.Violations(); len(vs) != 0 {
		t.Fatalf("clean run reported %v", vs)
	}
	cl.outstanding[5] = int32(cl.WindowLimit() + 3) // corrupt: client over-issued
	cl.issued[5] += int64(cl.WindowLimit() + 3)     // keep the audit identity intact
	n.Run(2)
	found := false
	for _, v := range checker.Violations() {
		if v.Rule == sim.RuleWindow && strings.Contains(v.Detail, "terminal 5") {
			found = true
		}
	}
	if !found {
		t.Fatalf("window overflow not detected; violations: %v", checker.Violations())
	}
}

// TestCheckerCatchesAccountingMismatch corrupts the issued/completed
// books so outstanding no longer equals issued-completed; AuditWindows
// must report it and the checker must surface it as RuleWindow.
func TestCheckerCatchesAccountingMismatch(t *testing.T) {
	t.Parallel()
	n, cl := closedNet(t, ClosedLoopConfig{Window: 4, Rate: 0.5, Seed: 2}, 0)
	checker := n.AttachChecker(sim.CheckOptions{})
	n.Run(50)
	cl.completed[3] += 2 // corrupt: replies retired that were never issued
	if err := cl.AuditWindows(); err == nil {
		t.Fatal("audit missed the corrupted books")
	}
	n.Run(2)
	found := false
	for _, v := range checker.Violations() {
		if v.Rule == sim.RuleWindow {
			found = true
		}
	}
	if !found {
		t.Fatalf("accounting mismatch not surfaced; violations: %v", checker.Violations())
	}
}

// TestClosedLoopRejectsUnmatchedReplies drives OnEject directly with
// replies that have no matching request: the error must be sticky and
// specific, and must not panic or corrupt counters below zero.
func TestClosedLoopRejectsUnmatchedReplies(t *testing.T) {
	t.Parallel()
	cl, err := NewClosedLoop(ClosedLoopConfig{Pattern: traffic.Uniform(16), Rate: 0.5, VNets: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl.PrepareTerminals(16)
	cl.OnEject(&sim.Packet{VNet: 1, Dst: 3}) // reply with nothing outstanding
	if err := cl.AuditWindows(); err == nil || !strings.Contains(err.Error(), "no outstanding") {
		t.Fatalf("unmatched reply not flagged: %v", err)
	}
	if cl.Outstanding(3) != 0 {
		t.Fatalf("outstanding went negative: %d", cl.Outstanding(3))
	}

	cl2, err := NewClosedLoop(ClosedLoopConfig{Pattern: traffic.Uniform(16), Rate: 0.5, VNets: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl2.PrepareTerminals(16)
	cl2.OnEject(&sim.Packet{VNet: 1, Dst: 99}) // reply addressed off the grid
	if err := cl2.AuditWindows(); err == nil || !strings.Contains(err.Error(), "unknown terminal") {
		t.Fatalf("out-of-range reply not flagged: %v", err)
	}
}

// TestNewClosedLoopValidation pins the constructor's rejection table.
func TestNewClosedLoopValidation(t *testing.T) {
	t.Parallel()
	pat := traffic.Uniform(16)
	bad := []ClosedLoopConfig{
		{Rate: 0.5, VNets: 2},                             // no pattern
		{Pattern: pat, Rate: 0.5, VNets: 1},               // one vnet
		{Pattern: pat, VNets: 2},                          // no rate
		{Pattern: pat, Rate: 0.5, VNets: 2, Window: 2000}, // window too big
		{Pattern: pat, Rate: 0.5, VNets: 2, ReqLen: 9},    // req > MaxPktLen
		{Pattern: pat, Rate: 0.5, VNets: 2, Think: -1},    // negative think
		{Pattern: pat, Rate: 0.5, VNets: 2, Think: 8, ThinkMax: 2},
	}
	for i, c := range bad {
		if _, err := NewClosedLoop(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// countingGen records which (cycle, src) pairs the burst gate let
// through.
type countingGen struct {
	calls int
}

func (g *countingGen) Name() string { return "counting" }
func (g *countingGen) Generate(cycle int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	g.calls++
}

// TestBurstGatesAndIsDeterministic drives the burst wrapper standalone:
// the same rng stream yields the same on/off gating, and the long-run on
// fraction tracks the configured duty cycle.
func TestBurstGatesAndIsDeterministic(t *testing.T) {
	t.Parallel()
	run := func() (int, []bool) {
		inner := &countingGen{}
		b := &Burst{Inner: inner, OnMean: 10, OffMean: 30}
		b.PrepareTerminals(1)
		rng := rand.New(rand.NewSource(99))
		gates := make([]bool, 4000)
		for c := int64(0); c < 4000; c++ {
			before := inner.calls
			b.Generate(c, 0, rng, nil)
			gates[c] = inner.calls > before
		}
		return inner.calls, gates
	}
	calls, gates := run()
	calls2, gates2 := run()
	if calls != calls2 {
		t.Fatalf("burst gating not deterministic: %d vs %d", calls, calls2)
	}
	for i := range gates {
		if gates[i] != gates2[i] {
			t.Fatalf("gate sequence diverged at cycle %d", i)
		}
	}
	// Duty cycle 10/(10+30) = 0.25; allow generous slack for a finite run.
	frac := float64(calls) / 4000
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("on fraction %.3f wildly off duty cycle 0.25", frac)
	}
	if calls == 0 || calls == 4000 {
		t.Fatal("burst gate never switched state")
	}
}

// TestHotspotSkew checks the destination skew: Frac=1 concentrates all
// traffic on the hot terminal (except draws from the hot terminal
// itself), Frac=0 never does.
func TestHotspotSkew(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	hot := &Hotspot{Inner: traffic.Uniform(16), Frac: 1, Hot: []int{5}}
	for i := 0; i < 500; i++ {
		if d := hot.Dest(3, rng); d != 5 {
			t.Fatalf("Frac=1 draw %d went to %d", i, d)
		}
	}
	// From the hot terminal itself the draw falls through to the inner
	// pattern rather than self-addressing.
	for i := 0; i < 500; i++ {
		if d := hot.Dest(5, rng); d == 5 {
			t.Fatalf("hotspot self-addressed terminal 5")
		}
	}
	cold := &Hotspot{Inner: traffic.Uniform(16), Frac: 0, Hot: []int{5}}
	hits := 0
	for i := 0; i < 3200; i++ {
		if cold.Dest(3, rng) == 5 {
			hits++
		}
	}
	// Uniform background sends ~1/15 of terminal 3's packets to 5.
	if hits == 0 || hits > 3200/4 {
		t.Fatalf("Frac=0 hot hits %d/3200 not uniform-like", hits)
	}
}

// TestBuild pins the builder's dispatch: closed specs yield closed-loop
// clients, bursty specs yield duty-compensated burst wrappers, hotspot
// specs wrap the pattern, and impossible combinations error.
func TestBuild(t *testing.T) {
	t.Parallel()
	pat := traffic.Uniform(16)

	gen, err := Build(Spec{Mode: "closed", Window: 8}, pat, 0.3, 0.5, 2, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := gen.(*ClosedLoop)
	if !ok {
		t.Fatalf("closed spec built %T", gen)
	}
	if cl.WindowLimit() != 8 {
		t.Fatalf("window %d, want 8", cl.WindowLimit())
	}

	gen, err = Build(Spec{BurstOn: 10, BurstOff: 30}, pat, 0.2, 0.5, 1, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := gen.(*Burst)
	if !ok {
		t.Fatalf("burst spec built %T", gen)
	}
	syn, ok := b.Inner.(*traffic.Synthetic)
	if !ok {
		t.Fatalf("burst wraps %T", b.Inner)
	}
	if want := 0.2 / 0.25; syn.Rate < want-1e-9 || syn.Rate > want+1e-9 {
		t.Fatalf("duty-compensated rate %g, want %g", syn.Rate, want)
	}

	gen, err = Build(Spec{HotFrac: 0.3, Hotspots: 2}, pat, 0.2, 0.5, 1, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := gen.(*traffic.Synthetic); !ok {
		t.Fatalf("hotspot spec built %T", gen)
	} else if _, ok := s.Pattern.(*Hotspot); !ok {
		t.Fatalf("hotspot spec pattern %T", s.Pattern)
	}

	if _, err := Build(Spec{Mode: "closed"}, pat, 0.3, 0.5, 1, 16, 5, 1); err == nil {
		t.Fatal("closed loop with 1 vnet accepted")
	}
	if _, err := Build(Spec{HotFrac: 0.5, Hotspots: 32}, pat, 0.3, 0.5, 1, 16, 5, 1); err == nil {
		t.Fatal("more hotspots than terminals accepted")
	}
}
