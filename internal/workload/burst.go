package workload

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// Burst modulates an inner shard-safe generator with a per-terminal
// Markov on/off process: each terminal alternates between bursts (inner
// generator runs) and idle gaps (nothing injected), with exponentially
// distributed durations around OnMean/OffMean drawn from the terminal's
// private rng stream. State is strictly per-terminal, so the wrapper
// inherits the inner generator's shard safety and determinism.
type Burst struct {
	Inner   sim.TrafficGen
	OnMean  int64 // mean burst length in cycles (>= 1)
	OffMean int64 // mean idle gap in cycles (>= 1)

	on    []bool
	until []int64 // cycle at which the current state ends; -1 = not started
}

// Name implements sim.TrafficGen.
func (b *Burst) Name() string { return b.Inner.Name() + "+burst" }

// RequiresSerialStep implements sim.SerialOnly.
func (b *Burst) RequiresSerialStep() bool { return false }

// PrepareTerminals implements sim.TrafficPrep.
func (b *Burst) PrepareTerminals(n int) {
	if tp, ok := b.Inner.(sim.TrafficPrep); ok {
		tp.PrepareTerminals(n)
	}
	if len(b.until) >= n {
		return
	}
	b.on = make([]bool, n)
	b.until = make([]int64, n)
	for i := range b.until {
		b.until[i] = -1
	}
}

func draw(rng *rand.Rand, mean int64) int64 {
	if mean <= 1 {
		return 1
	}
	return 1 + int64(rng.ExpFloat64()*float64(mean-1))
}

// Generate implements sim.TrafficGen.
func (b *Burst) Generate(cycle int64, src int, rng *rand.Rand, emit func(sim.PacketSpec)) {
	if src >= len(b.until) {
		b.PrepareTerminals(src + 1)
	}
	if b.until[src] < 0 {
		// Every terminal starts mid-burst; the first draw desynchronises
		// the terminals since each uses its own stream.
		b.on[src] = true
		b.until[src] = cycle + draw(rng, b.OnMean)
	}
	for cycle >= b.until[src] {
		b.on[src] = !b.on[src]
		mean := b.OnMean
		if !b.on[src] {
			mean = b.OffMean
		}
		b.until[src] += draw(rng, mean)
	}
	if !b.on[src] {
		return
	}
	b.Inner.Generate(cycle, src, rng, emit)
}

// Hotspot skews a destination pattern: with probability Frac a packet
// goes to one of the Hot terminals (uniformly chosen), otherwise the
// inner pattern decides. A draw that lands on the source itself falls
// through to the inner pattern rather than self-addressing.
type Hotspot struct {
	Inner traffic.Pattern
	Frac  float64
	Hot   []int
}

// Name implements traffic.Pattern.
func (h *Hotspot) Name() string { return h.Inner.Name() + "+hotspot" }

// Dest implements traffic.Pattern.
func (h *Hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < h.Frac {
		d := h.Hot[rng.Intn(len(h.Hot))]
		if d != src {
			return d
		}
	}
	return h.Inner.Dest(src, rng)
}
