// Package workload builds production-shaped traffic on top of the
// synthetic pattern generators: closed-loop request/response clients
// with finite MSHR-style windows, Markov-modulated on/off bursts, and
// hotspot destination skew. Everything here is shard-safe — generation
// state is per-terminal, randomness comes from the per-entity streams,
// and global accounting runs only in the engine's serial commit — so
// workloads compose with the sharded engine and keep its byte-identical
// determinism contract.
package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// Spec is the serializable workload description shared by the harness
// scenario JSON (the `workload` block), the spinsim flags, and the
// /v1/simulate request body.
type Spec struct {
	// Mode is "open" (Bernoulli sources, optionally bursty) or "closed"
	// (finite-window request/response clients). Empty normalizes to
	// "open".
	Mode string `json:"mode,omitempty"`
	// Window is the closed-loop per-terminal outstanding-request cap W
	// (default 4).
	Window int `json:"window,omitempty"`
	// Think is the mean think time in cycles after a reply retires a
	// request; 0 disables think time. Draws are bounded-Pareto with
	// shape 1.5, capped at ThinkMax (default 8x Think).
	Think    int64 `json:"think,omitempty"`
	ThinkMax int64 `json:"think_max,omitempty"`
	// ReqLen/RespLen are the closed-loop packet lengths (defaults 1 and
	// 5: short requests, cache-line replies).
	ReqLen  int `json:"req_len,omitempty"`
	RespLen int `json:"resp_len,omitempty"`
	// BurstOn/BurstOff are the mean on/off durations (cycles) of the
	// per-terminal Markov-modulated burst process; both zero disables
	// bursts. Open mode only. The builder compensates the inner rate by
	// the duty cycle so the long-run offered load still matches Rate.
	BurstOn  int64 `json:"burst_on,omitempty"`
	BurstOff int64 `json:"burst_off,omitempty"`
	// HotFrac sends that fraction of packets to one of Hotspots hot
	// terminals (default 1 hot terminal when HotFrac > 0).
	HotFrac  float64 `json:"hot_frac,omitempty"`
	Hotspots int     `json:"hotspots,omitempty"`
}

// Validate rejects malformed specs with a descriptive error.
func (s *Spec) Validate() error {
	switch s.Mode {
	case "", "open", "closed":
	default:
		return fmt.Errorf("workload: unknown mode %q (want open or closed)", s.Mode)
	}
	closed := s.Mode == "closed"
	if s.Window < 0 || s.Window > 1024 {
		return fmt.Errorf("workload: window %d outside [0,1024]", s.Window)
	}
	if !closed && (s.Window != 0 || s.Think != 0 || s.ThinkMax != 0 || s.ReqLen != 0 || s.RespLen != 0) {
		return fmt.Errorf("workload: window/think/req_len/resp_len need mode closed")
	}
	if s.Think < 0 || s.ThinkMax < 0 {
		return fmt.Errorf("workload: negative think time")
	}
	if s.ThinkMax > 0 && s.ThinkMax < s.Think {
		return fmt.Errorf("workload: think_max %d below think %d", s.ThinkMax, s.Think)
	}
	if s.ReqLen < 0 || s.RespLen < 0 {
		return fmt.Errorf("workload: negative packet length")
	}
	if s.BurstOn < 0 || s.BurstOff < 0 {
		return fmt.Errorf("workload: negative burst duration")
	}
	if (s.BurstOn == 0) != (s.BurstOff == 0) {
		return fmt.Errorf("workload: burst_on and burst_off must be set together")
	}
	if closed && s.BurstOn != 0 {
		return fmt.Errorf("workload: bursts apply to mode open (closed-loop burstiness comes from think times)")
	}
	if s.HotFrac < 0 || s.HotFrac > 1 {
		return fmt.Errorf("workload: hot_frac %g outside [0,1]", s.HotFrac)
	}
	if s.Hotspots < 0 {
		return fmt.Errorf("workload: negative hotspot count")
	}
	if s.Hotspots > 0 && s.HotFrac == 0 {
		return fmt.Errorf("workload: hotspots without hot_frac")
	}
	return nil
}

// Normalize fills defaults in place, mirroring exactly what Build does,
// so two specs that simulate identically canonicalize identically.
func (s *Spec) Normalize() {
	if s.Mode == "" {
		s.Mode = "open"
	}
	if s.Mode == "closed" {
		if s.Window == 0 {
			s.Window = 4
		}
		if s.ReqLen == 0 {
			s.ReqLen = 1
		}
		if s.RespLen == 0 {
			s.RespLen = 5
		}
		if s.Think > 0 && s.ThinkMax == 0 {
			s.ThinkMax = 8 * s.Think
		}
		if s.Think == 0 {
			s.ThinkMax = 0
		}
	}
	if s.HotFrac > 0 && s.Hotspots == 0 {
		s.Hotspots = 1
	}
	if s.HotFrac == 0 {
		s.Hotspots = 0
	}
}

// IsZero reports whether the normalized spec changes nothing over plain
// open-loop synthetic traffic (so callers can drop the block entirely).
func (s *Spec) IsZero() bool {
	return (s.Mode == "" || s.Mode == "open") && s.BurstOn == 0 && s.HotFrac == 0
}

// Build assembles the traffic generator for a spec: pattern (wrapped
// with hotspot skew when requested), then either the closed-loop client
// or a Bernoulli source under the burst modulator. rate is offered
// flits/terminal/cycle; vnets and maxPktLen come from the simulated
// configuration (closed mode needs vnets >= 2 to separate the request
// and reply message classes); seed feeds the per-terminal think-time
// streams.
func Build(s Spec, pat traffic.Pattern, rate, dataFrac float64, vnets, terminals, maxPktLen int, seed int64) (sim.TrafficGen, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.Normalize()
	if s.HotFrac > 0 {
		if s.Hotspots > terminals {
			return nil, fmt.Errorf("workload: %d hotspots exceed %d terminals", s.Hotspots, terminals)
		}
		hot := make([]int, s.Hotspots)
		for i := range hot {
			hot[i] = i * terminals / s.Hotspots
		}
		pat = &Hotspot{Inner: pat, Frac: s.HotFrac, Hot: hot}
	}
	if s.Mode == "closed" {
		return NewClosedLoop(ClosedLoopConfig{
			Pattern: pat,
			Window:  s.Window,
			Rate:    rate,
			ReqLen:  s.ReqLen,
			RespLen: s.RespLen,
			Think:   s.Think,
			ThinkMax: s.ThinkMax,
			VNets:   vnets,
			MaxPktLen: maxPktLen,
			Seed:    seed,
		})
	}
	syn := &traffic.Synthetic{Pattern: pat, Rate: rate, DataFrac: dataFrac, VNets: vnets}
	if s.BurstOn > 0 {
		// Rate compensation: traffic only flows during the on fraction
		// of the cycle budget, so the instantaneous rate rises to keep
		// the long-run offered load at the requested value.
		duty := float64(s.BurstOn) / float64(s.BurstOn+s.BurstOff)
		syn.Rate = rate / duty
		return &Burst{Inner: syn, OnMean: s.BurstOn, OffMean: s.BurstOff}, nil
	}
	return syn, nil
}
