package exp

import (
	"context"
	"fmt"
	"strings"

	spin "repro"
	"repro/internal/runner"
)

// Fig3Result reports, per topology and traffic pattern, the minimum
// injection rate (flits/node/cycle) at which the network deadlocks at
// least once within the cycle budget — the paper's demonstration that
// routing deadlocks are rare events (Fig. 3). A zero entry means no
// deadlock was observed even at rate 1.0 (the paper sees this for mesh
// tornado/transpose-like patterns).
type Fig3Result struct {
	Cycles  int64
	Entries []Fig3Entry
}

// Fig3Entry is one bar of Fig. 3.
type Fig3Entry struct {
	Topology string
	Pattern  string
	MinRate  float64 // 0 = never deadlocked
}

// String renders the result.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig. 3: minimum injection rate (flits/node/cycle) causing a deadlock within %d cycles\n", r.Cycles)
	fmt.Fprintf(&b, "%-14s %-16s %s\n", "topology", "pattern", "min deadlock rate")
	for _, e := range r.Entries {
		v := "none"
		if e.MinRate > 0 {
			v = fmt.Sprintf("%.3f", e.MinRate)
		}
		fmt.Fprintf(&b, "%-14s %-16s %s\n", e.Topology, e.Pattern, v)
	}
	return b.String()
}

// Fig3 searches per pattern for the deadlock onset rate on the mesh
// (fully-adaptive minimal, 3 VCs, no recovery) and the dragonfly (UGAL
// with free VC use, 3 VCs, no recovery), using the global wait-for-graph
// oracle as the deadlock detector. 1-flit packets, as in the paper. Each
// (topology, pattern) onset search is one parallel job; the rate search
// inside a job stays sequential because it stops at the first deadlock.
func Fig3(ctx context.Context, o Options) (*Fig3Result, error) {
	o = o.withDefaults()
	res := &Fig3Result{Cycles: o.Cycles}
	type setup struct {
		label, topo, routing string
		patterns             []string
	}
	setups := []setup{
		{"mesh", o.meshSpec(), "min_adaptive",
			[]string{"uniform_random", "bit_complement", "bit_reverse", "transpose", "tornado", "shuffle"}},
		{"dragonfly", o.dflySpec(), "ugal_spin", // free-VC UGAL, scheme disabled below
			[]string{"uniform_random", "bit_complement", "transpose", "tornado", "neighbor"}},
	}
	rates := []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	var jobs []runner.Job[Fig3Entry]
	for _, su := range setups {
		for _, pat := range su.patterns {
			su, pat := su, pat
			key := "fig3/" + su.label + "/" + pat
			jobs = append(jobs, runner.Job[Fig3Entry]{Key: key, Run: func(ctx context.Context, _ int64) (Fig3Entry, error) {
				min := 0.0
				for _, rate := range rates {
					dl, err := deadlocksAt(ctx, su.topo, su.routing, pat, pointKey(key, rate), rate, o)
					if err != nil {
						return Fig3Entry{}, err
					}
					if dl {
						min = rate
						break
					}
				}
				return Fig3Entry{Topology: su.label, Pattern: pat, MinRate: min}, nil
			}})
		}
	}
	entries, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	res.Entries = entries
	return res, nil
}

// deadlocksAt runs one point with no recovery scheme and polls the oracle.
func deadlocksAt(ctx context.Context, topo, routing, pattern, key string, rate float64, o Options) (bool, error) {
	s, err := spin.New(spin.Config{
		Topology:   topo,
		Routing:    routing,
		Traffic:    pattern,
		Rate:       rate,
		VCsPerVNet: 3,
		DataFrac:   0.001, // 1-flit packets as in the paper's Fig. 3
		Seed:       runner.SeedFor(o.Seed, key),
	})
	if err != nil {
		return false, err
	}
	const pollEvery = 500
	for done := int64(0); done < o.Cycles; done += pollEvery {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		s.Run(pollEvery)
		if s.Deadlocked() {
			return true, nil
		}
	}
	return false, nil
}
