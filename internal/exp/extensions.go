package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bubble"
	"repro/internal/deflection"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TorusComparison pits the two deadlock-freedom strategies for a torus
// against each other at equal buffering: dimension-ordered routing under
// bubble flow control (the classic approach) versus fully-adaptive
// minimal routing under SPIN. This extends the paper's argument to the
// torus: SPIN needs no injection restriction and no routing restriction.
type TorusComparison struct {
	Rates  []float64
	Bubble []float64 // avg latency per rate
	SPIN   []float64
}

// String renders the comparison.
func (c *TorusComparison) String() string {
	var b strings.Builder
	b.WriteString("# Extension: 4x4 torus — DOR+BubbleFC vs MinAdaptive+SPIN (1 VC, avg latency)\n")
	fmt.Fprintf(&b, "%-8s %14s %14s\n", "rate", "bubble_fc", "spin")
	for i, r := range c.Rates {
		fmt.Fprintf(&b, "%-8.2f %14.1f %14.1f\n", r, c.Bubble[i], c.SPIN[i])
	}
	return b.String()
}

// Torus runs the comparison, one parallel job per (rate, scheme) point.
// Each job builds its own torus instance so no topology state is shared
// across goroutines.
func Torus(ctx context.Context, o Options) (*TorusComparison, error) {
	o = o.withDefaults()
	res := &TorusComparison{Rates: []float64{0.05, 0.1, 0.2, 0.3}}
	var jobs []runner.Job[float64]
	for _, variant := range []string{"bubble", "spin"} {
		for _, rate := range res.Rates {
			variant, rate := variant, rate
			key := pointKey("torus/"+variant, rate)
			jobs = append(jobs, runner.Job[float64]{Key: key, Run: func(ctx context.Context, seed int64) (float64, error) {
				torus, err := topology.NewTorus(4, 4, 1)
				if err != nil {
					return 0, err
				}
				return torusPoint(ctx, torus, rate, variant == "bubble", seed, o)
			}})
		}
	}
	lats, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	res.Bubble = lats[:len(res.Rates)]
	res.SPIN = lats[len(res.Rates):]
	return res, nil
}

func torusPoint(ctx context.Context, torus *topology.Mesh, rate float64, useBubble bool, seed int64, o Options) (float64, error) {
	cfg := sim.Config{
		Topology:   torus,
		VCsPerVNet: 1,
		Seed:       seed,
		StatsStart: o.Warmup,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Tornado(torus), Rate: rate, DataFrac: 1},
	}
	if useBubble {
		cfg.Routing = &torusDOR{m: torus}
		cfg.Scheme = &bubble.RingBubble{Mesh: torus}
	} else {
		cfg.Routing = &routing.MinAdaptive{Topo: torus}
		cfg.Scheme = spinScheme()
	}
	n, err := sim.NewNetwork(cfg)
	if err != nil {
		return 0, err
	}
	if err := runner.Cycles(ctx, n.Run, o.Cycles); err != nil {
		return 0, err
	}
	return n.Stats().AvgLatency(), nil
}

// DeflectionComparison contrasts BLESS-style deflection with buffered XY
// routing on a mesh: deflection's zero-load latency is competitive but
// its delivered latency degrades with load as misroutes accumulate —
// Table I's qualitative "high livelock cost / lower saturation" row, made
// quantitative.
type DeflectionComparison struct {
	Rates      []float64
	Deflection []float64 // avg flit latency
	Buffered   []float64 // avg packet latency (1-flit packets)
	AvgDeflect []float64 // deflections per delivered flit
}

// String renders the comparison.
func (c *DeflectionComparison) String() string {
	var b strings.Builder
	b.WriteString("# Extension: 4x4 mesh — deflection (bufferless) vs buffered XY (1-flit packets)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %14s\n", "rate", "deflection", "buffered_xy", "deflects/flit")
	for i, r := range c.Rates {
		fmt.Fprintf(&b, "%-8.2f %12.1f %12.1f %14.2f\n", r, c.Deflection[i], c.Buffered[i], c.AvgDeflect[i])
	}
	return b.String()
}

// deflectionSample is one rate point of the comparison.
type deflectionSample struct {
	Deflection float64
	Buffered   float64
	AvgDeflect float64
}

// Deflection runs the comparison, one parallel job per rate point (the
// bufferless and buffered runs of a rate share a job because they feed
// one output row).
func Deflection(ctx context.Context, o Options) (*DeflectionComparison, error) {
	o = o.withDefaults()
	res := &DeflectionComparison{Rates: []float64{0.05, 0.15, 0.3, 0.45}}
	var jobs []runner.Job[deflectionSample]
	for _, rate := range res.Rates {
		rate := rate
		key := pointKey("deflection", rate)
		jobs = append(jobs, runner.Job[deflectionSample]{Key: key, Run: func(ctx context.Context, seed int64) (deflectionSample, error) {
			return deflectionPoint(ctx, rate, seed, o)
		}})
	}
	samples, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		res.Deflection = append(res.Deflection, s.Deflection)
		res.Buffered = append(res.Buffered, s.Buffered)
		res.AvgDeflect = append(res.AvgDeflect, s.AvgDeflect)
	}
	return res, nil
}

// deflectionPoint runs the bufferless and buffered networks at one rate.
func deflectionPoint(ctx context.Context, rate float64, seed int64, o Options) (deflectionSample, error) {
	var out deflectionSample
	mesh, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		return out, err
	}
	// Bufferless run.
	dn := deflection.New(mesh, seed)
	dn.StatsStart = o.Warmup
	rng := rand.New(rand.NewSource(seed))
	stepAll := func(n int64) {
		for i := int64(0); i < n; i++ {
			for src := 0; src < 16; src++ {
				if rng.Float64() < rate {
					dst := rng.Intn(16)
					if dst != src {
						dn.Inject(src, dst)
					}
				}
			}
			dn.Step()
		}
	}
	if err := runner.Cycles(ctx, stepAll, o.Cycles); err != nil {
		return out, err
	}
	out.Deflection = dn.AvgLatency()
	if dn.EjectedMeasured > 0 {
		out.AvgDeflect = float64(dn.DeflectionSum) / float64(dn.Ejected)
	}
	// Buffered XY with 1-flit packets for apples-to-apples.
	bn, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    &routing.XY{Mesh: mesh},
		VCsPerVNet: 1,
		Seed:       seed,
		StatsStart: o.Warmup,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(16), Rate: rate, DataFrac: 0.0001},
	})
	if err != nil {
		return out, err
	}
	if err := runner.Cycles(ctx, bn.Run, o.Cycles); err != nil {
		return out, err
	}
	out.Buffered = bn.Stats().AvgLatency()
	return out, nil
}

// torusDOR is shortest-direction dimension-ordered torus routing (shared
// with the bubble tests).
type torusDOR struct {
	sim.BaseRouting
	m *topology.Mesh
}

func (t *torusDOR) Name() string { return "torus_dor" }

// Route implements sim.RoutingAlgorithm.
func (t *torusDOR) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	cx, cy := t.m.Coords(r.ID)
	dx, dy := t.m.Coords(p.RouteDst())
	var port int
	switch {
	case cx != dx:
		east := ((dx - cx) + t.m.X) % t.m.X
		if east <= t.m.X-east {
			port = topology.MeshPort(topology.East)
		} else {
			port = topology.MeshPort(topology.West)
		}
	default:
		north := ((dy - cy) + t.m.Y) % t.m.Y
		if north <= t.m.Y-north {
			port = topology.MeshPort(topology.North)
		} else {
			port = topology.MeshPort(topology.South)
		}
	}
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}
