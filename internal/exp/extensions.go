package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bubble"
	"repro/internal/deflection"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TorusComparison pits the two deadlock-freedom strategies for a torus
// against each other at equal buffering: dimension-ordered routing under
// bubble flow control (the classic approach) versus fully-adaptive
// minimal routing under SPIN. This extends the paper's argument to the
// torus: SPIN needs no injection restriction and no routing restriction.
type TorusComparison struct {
	Rates  []float64
	Bubble []float64 // avg latency per rate
	SPIN   []float64
}

// String renders the comparison.
func (c *TorusComparison) String() string {
	var b strings.Builder
	b.WriteString("# Extension: 4x4 torus — DOR+BubbleFC vs MinAdaptive+SPIN (1 VC, avg latency)\n")
	fmt.Fprintf(&b, "%-8s %14s %14s\n", "rate", "bubble_fc", "spin")
	for i, r := range c.Rates {
		fmt.Fprintf(&b, "%-8.2f %14.1f %14.1f\n", r, c.Bubble[i], c.SPIN[i])
	}
	return b.String()
}

// Torus runs the comparison.
func Torus(o Options) (*TorusComparison, error) {
	o = o.withDefaults()
	res := &TorusComparison{Rates: []float64{0.05, 0.1, 0.2, 0.3}}
	torus, err := topology.NewTorus(4, 4, 1)
	if err != nil {
		return nil, err
	}
	for _, rate := range res.Rates {
		lat, err := torusPoint(torus, rate, true, o)
		if err != nil {
			return nil, err
		}
		res.Bubble = append(res.Bubble, lat)
		lat, err = torusPoint(torus, rate, false, o)
		if err != nil {
			return nil, err
		}
		res.SPIN = append(res.SPIN, lat)
	}
	return res, nil
}

func torusPoint(torus *topology.Mesh, rate float64, useBubble bool, o Options) (float64, error) {
	cfg := sim.Config{
		Topology:   torus,
		VCsPerVNet: 1,
		Seed:       o.Seed,
		StatsStart: o.Warmup,
		Traffic:    &traffic.Synthetic{Pattern: traffic.Tornado(torus), Rate: rate, DataFrac: 1},
	}
	if useBubble {
		cfg.Routing = &torusDOR{m: torus}
		cfg.Scheme = &bubble.RingBubble{Mesh: torus}
	} else {
		cfg.Routing = &routing.MinAdaptive{Topo: torus}
		cfg.Scheme = spinScheme()
	}
	n, err := sim.NewNetwork(cfg)
	if err != nil {
		return 0, err
	}
	n.Run(o.Cycles)
	return n.Stats().AvgLatency(), nil
}

// DeflectionComparison contrasts BLESS-style deflection with buffered XY
// routing on a mesh: deflection's zero-load latency is competitive but
// its delivered latency degrades with load as misroutes accumulate —
// Table I's qualitative "high livelock cost / lower saturation" row, made
// quantitative.
type DeflectionComparison struct {
	Rates      []float64
	Deflection []float64 // avg flit latency
	Buffered   []float64 // avg packet latency (1-flit packets)
	AvgDeflect []float64 // deflections per delivered flit
}

// String renders the comparison.
func (c *DeflectionComparison) String() string {
	var b strings.Builder
	b.WriteString("# Extension: 4x4 mesh — deflection (bufferless) vs buffered XY (1-flit packets)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %14s\n", "rate", "deflection", "buffered_xy", "deflects/flit")
	for i, r := range c.Rates {
		fmt.Fprintf(&b, "%-8.2f %12.1f %12.1f %14.2f\n", r, c.Deflection[i], c.Buffered[i], c.AvgDeflect[i])
	}
	return b.String()
}

// Deflection runs the comparison.
func Deflection(o Options) (*DeflectionComparison, error) {
	o = o.withDefaults()
	res := &DeflectionComparison{Rates: []float64{0.05, 0.15, 0.3, 0.45}}
	mesh, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		return nil, err
	}
	for _, rate := range res.Rates {
		// Bufferless run.
		dn := deflection.New(mesh, o.Seed)
		dn.StatsStart = o.Warmup
		rng := rand.New(rand.NewSource(o.Seed))
		for c := int64(0); c < o.Cycles; c++ {
			for src := 0; src < 16; src++ {
				if rng.Float64() < rate {
					dst := rng.Intn(16)
					if dst != src {
						dn.Inject(src, dst)
					}
				}
			}
			dn.Step()
		}
		res.Deflection = append(res.Deflection, dn.AvgLatency())
		if dn.EjectedMeasured > 0 {
			res.AvgDeflect = append(res.AvgDeflect, float64(dn.DeflectionSum)/float64(dn.Ejected))
		} else {
			res.AvgDeflect = append(res.AvgDeflect, 0)
		}
		// Buffered XY with 1-flit packets for apples-to-apples.
		bn, err := sim.NewNetwork(sim.Config{
			Topology:   mesh,
			Routing:    &routing.XY{Mesh: mesh},
			VCsPerVNet: 1,
			Seed:       o.Seed,
			StatsStart: o.Warmup,
			Traffic:    &traffic.Synthetic{Pattern: traffic.Uniform(16), Rate: rate, DataFrac: 0.0001},
		})
		if err != nil {
			return nil, err
		}
		bn.Run(o.Cycles)
		res.Buffered = append(res.Buffered, bn.Stats().AvgLatency())
	}
	return res, nil
}

// torusDOR is shortest-direction dimension-ordered torus routing (shared
// with the bubble tests).
type torusDOR struct {
	sim.BaseRouting
	m *topology.Mesh
}

func (t *torusDOR) Name() string { return "torus_dor" }

// Route implements sim.RoutingAlgorithm.
func (t *torusDOR) Route(r *sim.Router, _ int, p *sim.Packet, buf []sim.PortRequest) []sim.PortRequest {
	cx, cy := t.m.Coords(r.ID)
	dx, dy := t.m.Coords(p.RouteDst())
	var port int
	switch {
	case cx != dx:
		east := ((dx - cx) + t.m.X) % t.m.X
		if east <= t.m.X-east {
			port = topology.MeshPort(topology.East)
		} else {
			port = topology.MeshPort(topology.West)
		}
	default:
		north := ((dy - cy) + t.m.Y) % t.m.Y
		if north <= t.m.Y-north {
			port = topology.MeshPort(topology.North)
		} else {
			port = topology.MeshPort(topology.South)
		}
	}
	return append(buf, sim.PortRequest{Port: port, VCMask: sim.AllVCs})
}
