package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the canonical sweep surface shared by cmd/spinsweep and
// the serving subsystem (internal/serve): a figure sweep is named by a
// serializable SweepRequest, dispatched through Sweep, and encoded with
// EncodeJSON. Because both entry points call exactly these functions,
// the CLI's -json output and the daemon's /v1/sweep responses are
// byte-identical by construction (TestSweepJSONSchemaGolden pins the
// encoding).

// Figures is a pattern-keyed set of figures, as produced by the
// config × pattern sweeps (Fig6, Fig7). JSON marshalling sorts map keys,
// and String renders in the same sorted-pattern order, so both encodings
// are deterministic.
type Figures map[string]*Figure

// String renders every figure, pattern-sorted.
func (f Figures) String() string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintln(&b, f[k])
	}
	return b.String()
}

// SweepRequest is the serializable description of one figure sweep — the
// unit a client POSTs to /v1/sweep and the shape behind spinsweep's
// flags. Execution knobs (workers, timeouts, progress) are deliberately
// absent: they never change results, so they must never change the
// content address.
type SweepRequest struct {
	// Fig names the sweep: one of SweepIDs().
	Fig string `json:"fig"`
	// Cycles per simulation point (0 = default 20000).
	Cycles int64 `json:"cycles,omitempty"`
	// Warmup cycles before measurement (0 = Cycles/10, negative = none).
	Warmup int64 `json:"warmup,omitempty"`
	// Full selects the paper-scale topologies (8x8 mesh, 1024-node
	// dragonfly); the default uses the scaled-down instances.
	Full bool `json:"full,omitempty"`
	// Seed is the base seed; per-point seeds derive from it and each
	// point's stable key.
	Seed int64 `json:"seed"`
	// Check attaches the runtime invariant checker to every point.
	Check bool `json:"check,omitempty"`
	// Telemetry adds a latency-percentile summary and an epoch-windowed
	// time-series to every point of the result.
	Telemetry bool `json:"telemetry,omitempty"`
	// Epoch is the time-series window in cycles (0 = default 100; only
	// meaningful with Telemetry).
	Epoch int64 `json:"epoch,omitempty"`
}

// SweepIDs lists the valid Fig names in canonical presentation order.
func SweepIDs() []string {
	return []string{"3", "6", "7", "8a", "8b", "9", "10", "costs", "torus", "deflection", "workload"}
}

// Validate reports whether the request names a runnable sweep.
func (r SweepRequest) Validate() error {
	for _, id := range SweepIDs() {
		if r.Fig == id {
			if r.Cycles < 0 {
				return fmt.Errorf("exp: cycles must be >= 0, got %d", r.Cycles)
			}
			if r.Epoch < 0 {
				return fmt.Errorf("exp: epoch must be >= 0, got %d", r.Epoch)
			}
			return nil
		}
	}
	return fmt.Errorf("exp: unknown figure %q (valid: %s)", r.Fig, strings.Join(SweepIDs(), ", "))
}

// Normalized resolves every defaulted knob to its explicit value, so
// semantically identical requests share one canonical encoding (and
// therefore one cache key). The rules mirror Options.withDefaults: zero
// cycles means 20000, zero warmup means a tenth of the resolved cycles,
// and any negative warmup collapses to -1 ("no warmup").
func (r SweepRequest) Normalized() SweepRequest {
	if r.Cycles == 0 {
		r.Cycles = 20000
	}
	switch {
	case r.Warmup < 0:
		r.Warmup = -1
	case r.Warmup == 0:
		r.Warmup = r.Cycles / 10
	}
	switch {
	case !r.Telemetry:
		r.Epoch = 0
	case r.Epoch == 0:
		r.Epoch = 100
	}
	return r
}

// Canonical returns the request's canonical bytes: the JSON of its
// normalized form, the content-address input for the result cache.
func (r SweepRequest) Canonical() []byte {
	b, err := json.Marshal(r.Normalized())
	if err != nil {
		panic(fmt.Sprintf("exp: canonical encoding failed: %v", err))
	}
	return b
}

// Options projects the request's semantic fields into run options; the
// caller layers its execution knobs (Workers, Timeout, Progress) on the
// result.
func (r SweepRequest) Options() Options {
	return Options{Cycles: r.Cycles, Warmup: r.Warmup, Small: !r.Full, Seed: r.Seed,
		Check: r.Check, Telemetry: r.Telemetry, Epoch: r.Epoch}
}

// DecodeSweepRequest reads one request from JSON, rejecting unknown
// fields.
func DecodeSweepRequest(rd io.Reader) (SweepRequest, error) {
	var r SweepRequest
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return SweepRequest{}, fmt.Errorf("exp: decode sweep request: %w", err)
	}
	if dec.More() {
		return SweepRequest{}, fmt.Errorf("exp: trailing data after sweep request")
	}
	return r, nil
}

// Sweep dispatches one figure sweep. The result is the figure's own
// structured type (every one prints with String and encodes with
// EncodeJSON).
func Sweep(ctx context.Context, fig string, o Options) (interface{}, error) {
	switch fig {
	case "3":
		return Fig3(ctx, o)
	case "6":
		return Fig6(ctx, o)
	case "7":
		return Fig7(ctx, o)
	case "8a":
		return Fig8a(ctx, o)
	case "8b":
		return Fig8b(ctx, o)
	case "9":
		return Fig9(ctx, o)
	case "10":
		return Fig10(), nil
	case "costs":
		return Costs(), nil
	case "torus":
		return Torus(ctx, o)
	case "deflection":
		return Deflection(ctx, o)
	case "workload":
		return WorkloadSweep(ctx, o)
	}
	return nil, fmt.Errorf("exp: unknown figure %q", fig)
}

// EncodeJSON writes the canonical JSON encoding of a sweep result: two-
// space indentation, key-sorted maps (Go's encoder), trailing newline.
// This is the one encoder behind both spinsweep -json and /v1/sweep;
// changing it is a result-schema change and must bump the serving
// result version (internal/serve.ResultVersion).
func EncodeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
