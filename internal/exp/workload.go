package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WorkloadSweepResult is the closed-loop saturation sweep: finite-window
// request/response clients on the mesh under MinAdaptive+SPIN, sweeping
// offered request rate. Unlike the open-loop figures, the clients
// self-throttle at saturation, so the sweep reports *achieved*
// transaction throughput next to the offered rate — the gap between the
// two columns is the saturation headroom, and the latency percentiles
// stay finite instead of diverging.
type WorkloadSweepResult struct {
	Topology string          `json:"topology"`
	Window   int             `json:"window"`
	Points   []WorkloadPoint `json:"points"`
}

// WorkloadPoint is one offered-rate sample of the closed-loop sweep.
type WorkloadPoint struct {
	// Offered is the request injection rate the clients attempt
	// (request flits/terminal/cycle when a window slot is free).
	Offered float64 `json:"offered"`
	// Achieved is the completed-transaction rate
	// (requests retired by a reply, per terminal per cycle).
	Achieved float64 `json:"achieved"`
	// AvgLat is the mean packet latency in cycles (requests and replies).
	AvgLat float64 `json:"avg_latency"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
}

// String renders the sweep as an aligned table.
func (r *WorkloadSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Extension: %s closed-loop clients (W=%d) — offered vs achieved\n", r.Topology, r.Window)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s\n", "offered", "achieved", "avg_latency", "p50", "p99")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.3f %10.3f %12.1f %10.1f %10.1f\n", p.Offered, p.Achieved, p.AvgLat, p.P50, p.P99)
	}
	return b.String()
}

// workloadWindow is the per-terminal outstanding-request limit the sweep
// runs with — large enough to keep the network busy at saturation, small
// enough that the closed loop visibly throttles.
const workloadWindow = 8

// WorkloadSweep runs the closed-loop saturation sweep, one parallel job
// per offered-rate point. Each point is a harness scenario, so the same
// configuration is reachable via /v1/simulate with an identical
// workload block — and byte-identical results, at any shard count.
func WorkloadSweep(ctx context.Context, o Options) (*WorkloadSweepResult, error) {
	o = o.withDefaults()
	res := &WorkloadSweepResult{Topology: o.meshSpec(), Window: workloadWindow}
	var jobs []runner.Job[WorkloadPoint]
	for _, rate := range defaultRates(0.6) {
		rate := rate
		key := pointKey("workload/closed", rate)
		jobs = append(jobs, runner.Job[WorkloadPoint]{Key: key, Run: func(ctx context.Context, seed int64) (WorkloadPoint, error) {
			return workloadPoint(ctx, rate, seed, o)
		}})
	}
	pts, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	res.Points = pts
	return res, nil
}

// workloadPoint runs one offered-rate point. Requests and replies are
// both single-flit, so offered and achieved are directly comparable.
func workloadPoint(ctx context.Context, rate float64, seed int64, o Options) (WorkloadPoint, error) {
	var pt WorkloadPoint
	sc := harness.Scenario{
		Topology:   o.meshSpec(),
		Routing:    "min_adaptive",
		Scheme:     "spin",
		Traffic:    "uniform_random",
		Rate:       rate,
		VNets:      2,
		VCsPerVNet: 2,
		Seed:       seed,
		TDD:        128,
		Cycles:     o.Cycles,
		Warmup:     o.Warmup,
		Workload:   &workload.Spec{Mode: "closed", Window: workloadWindow, ReqLen: 1, RespLen: 1},
	}
	s, err := sc.SimShards(o.Shards)
	if err != nil {
		return pt, err
	}
	s.Network().AttachTelemetry(sim.TelemetryOptions{Hist: true})
	if err := runner.Cycles(ctx, s.Run, o.Cycles); err != nil {
		return pt, err
	}
	cl, ok := s.Network().Config().Traffic.(*workload.ClosedLoop)
	if !ok {
		return pt, fmt.Errorf("exp: workload point built %T, want *workload.ClosedLoop", s.Network().Config().Traffic)
	}
	terminals := s.Topology().NumTerminals()
	pt.Offered = rate
	pt.Achieved = float64(cl.Completed()) / float64(o.Cycles) / float64(terminals)
	pt.AvgLat = s.AvgLatency()
	if tele := s.Network().Telemetry(); tele != nil {
		tele.Flush()
		sum := tele.LatencySummary()
		pt.P50, pt.P99 = sum.P50, sum.P99
	}
	return pt, nil
}
