package exp

import (
	"context"
	"fmt"
	"strings"

	spin "repro"
	"repro/internal/runner"
	spinimpl "repro/internal/spin"
)

// Fig9Result counts spins and oracle-verified false positives as a
// function of injection rate (Fig. 9), for 1-VC and 3-VC designs on the
// mesh (uniform random) and dragonfly (bit complement).
type Fig9Result struct {
	Entries []Fig9Entry
}

// Fig9Entry is one (topology, VC count, rate) sample.
type Fig9Entry struct {
	Topology       string
	VCs            int
	Rate           float64
	Spins          int64
	FalsePositives int64
	Probes         int64
}

// String renders the result.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 9: spins and false positives vs injection rate\n")
	fmt.Fprintf(&b, "%-12s %4s %8s %10s %14s %10s\n", "topology", "vcs", "rate", "spins", "false_pos", "probes")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-12s %4d %8.3f %10d %14d %10d\n",
			e.Topology, e.VCs, e.Rate, e.Spins, e.FalsePositives, e.Probes)
	}
	return b.String()
}

// Fig9 sweeps injection rates with oracle-backed recovery classification
// enabled, one parallel job per (setup, rate) point.
func Fig9(ctx context.Context, o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	type setup struct {
		label, topo, routing, pattern string
		vcs                           int
	}
	setups := []setup{
		{"mesh", o.meshSpec(), "min_adaptive", "uniform_random", 1},
		{"mesh", o.meshSpec(), "min_adaptive", "uniform_random", 3},
		{"dragonfly", o.dflySpec(), "dfly_min", "bit_complement", 1},
		{"dragonfly", o.dflySpec(), "dfly_min", "bit_complement", 3},
	}
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	var jobs []runner.Job[Fig9Entry]
	for _, su := range setups {
		curveKey := fmt.Sprintf("fig9/%s/%dvc/%s", su.label, su.vcs, su.pattern)
		for _, rate := range rates {
			su, rate := su, rate
			key := pointKey(curveKey, rate)
			jobs = append(jobs, runner.Job[Fig9Entry]{Key: key, Run: func(ctx context.Context, _ int64) (Fig9Entry, error) {
				cfg := spin.Config{
					Topology:   su.topo,
					Routing:    su.routing,
					Scheme:     "spin",
					VNets:      3,
					VCsPerVNet: su.vcs,
					SPIN:       spinimpl.Config{CountTruth: true},
				}
				s, err := runPoint(ctx, cfg, su.pattern, rate, key, o)
				if err != nil {
					return Fig9Entry{}, err
				}
				st := s.Stats()
				return Fig9Entry{
					Topology:       su.label,
					VCs:            su.vcs,
					Rate:           rate,
					Spins:          st.Spins,
					FalsePositives: st.Counter("false_positive_spins"),
					Probes:         st.Counter("probes_sent"),
				}, nil
			}})
		}
	}
	entries, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Entries: entries}, nil
}
