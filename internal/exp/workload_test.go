package exp

import (
	"context"
	"encoding/json"
	"testing"
)

// TestWorkloadSweepSaturates checks the closed-loop contract: at the top
// of the sweep the clients are window-limited, so achieved transaction
// throughput falls short of the offered rate while the latency
// percentiles stay finite and ordered — the sweep reports a saturation
// point instead of open-loop divergence.
func TestWorkloadSweepSaturates(t *testing.T) {
	t.Parallel()
	res, err := WorkloadSweep(context.Background(), Options{Cycles: 4000, Seed: 5, Small: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty sweep")
	}
	last := res.Points[len(res.Points)-1]
	if last.Achieved <= 0 {
		t.Fatalf("no transactions completed at offered %g", last.Offered)
	}
	if last.Achieved >= last.Offered {
		t.Fatalf("closed loop did not throttle: achieved %g >= offered %g", last.Achieved, last.Offered)
	}
	for _, p := range res.Points {
		if p.P99 < p.P50 {
			t.Fatalf("offered %g: p99 %g below p50 %g", p.Offered, p.P99, p.P50)
		}
		if p.P99 <= 0 || p.AvgLat <= 0 {
			t.Fatalf("offered %g: degenerate latency stats %+v", p.Offered, p)
		}
	}
}

// TestWorkloadSweepDeterministicAcrossShards pins the byte-identity of
// the closed-loop sweep across engine shard counts: the whole
// request/reply/think machinery (serial OnEject accounting, per-terminal
// think streams) must be invisible to sharding.
func TestWorkloadSweepDeterministicAcrossShards(t *testing.T) {
	t.Parallel()
	enc := func(shards int) string {
		res, err := WorkloadSweep(context.Background(), Options{Cycles: 1500, Seed: 11, Small: true, Workers: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := enc(1)
	for _, shards := range []int{2, 4} {
		if got := enc(shards); got != want {
			t.Fatalf("shards=%d diverged:\n%s\nvs shards=1:\n%s", shards, got, want)
		}
	}
}

// TestWorkloadSweepDeterministicAcrossWorkers pins the other axis of the
// execution-knob contract: sweep-level worker parallelism (per-point
// derived seeds, arbitrary completion order) renders the same bytes at 1
// and 8 workers.
func TestWorkloadSweepDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	enc := func(workers int) string {
		res, err := WorkloadSweep(context.Background(), Options{Cycles: 1500, Seed: 11, Small: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if one, eight := enc(1), enc(8); one != eight {
		t.Fatalf("workers=8 diverged:\n%s\nvs workers=1:\n%s", eight, one)
	}
}
