package exp

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// schemaSpecimens builds one synthetic instance of every sweep result
// type. The values are arbitrary; the golden file pins the *encoding* —
// field names, nesting, ordering — which is the schema contract between
// spinsweep -json, the spind /v1/sweep endpoint, and downstream plotting
// scripts.
func schemaSpecimens() []struct {
	Name string
	V    interface{}
} {
	return []struct {
		Name string
		V    interface{}
	}{
		{"fig3", &Fig3Result{Cycles: 1000, Entries: []Fig3Entry{
			{Topology: "mesh", Pattern: "uniform_random", MinRate: 0.35},
			{Topology: "dragonfly", Pattern: "tornado", MinRate: 0},
		}}},
		{"fig67", Figures{
			"uniform_random": {
				Title: "Fig. 7: mesh mesh:4x4 — uniform_random", XLabel: "inj_rate",
				YLabel: "avg packet latency (cycles)",
				Series: []Series{{Label: "WestFirst_3VC", Points: []Point{{X: 0.05, Y: 12.5}, {X: 0.1, Y: 14}}}},
			},
			"tornado": {
				Title: "Fig. 7: mesh mesh:4x4 — tornado", XLabel: "inj_rate",
				YLabel: "avg packet latency (cycles)",
				Series: []Series{{Label: "MinAdaptive_SPIN_3VC", Points: []Point{{X: 0.05, Y: 11}}}},
			},
		}},
		{"fig8a", &Fig8aResult{Entries: []Fig8aEntry{{Benchmark: "blackscholes", NormalizedEDP: 0.82}}}},
		{"fig8b", &Fig8bResult{Rates: []float64{0.1}, Entries: []sim.LinkUtilisation{
			{Flit: 0.1, SM: [4]float64{0.001, 0.002, 0, 0}, SMAll: 0.003, Idle: 0.897},
		}}},
		{"fig9", &Fig9Result{Entries: []Fig9Entry{
			{Topology: "mesh", VCs: 1, Rate: 0.3, Spins: 12, FalsePositives: 3, Probes: 40},
		}}},
		{"fig10", &Fig10Result{Entries: []Fig10Entry{{Design: "westfirst", Area: 4000, Normalized: 1}}}},
		{"costs", &CostSummary{Rows: []CostRow{{Topology: "mesh", AreaSave1v3: 0.52, AreaSave1v2: 0.33, PowerSave1v3: 0.5}}}},
		{"torus", &TorusComparison{Rates: []float64{0.05}, Bubble: []float64{20.1}, SPIN: []float64{18.3}}},
		{"deflection", &DeflectionComparison{Rates: []float64{0.05}, Deflection: []float64{9.1}, Buffered: []float64{10.2}, AvgDeflect: []float64{0.4}}},
		{"workload", &WorkloadSweepResult{Topology: "mesh:4x4", Window: 8, Points: []WorkloadPoint{
			{Offered: 0.3, Achieved: 0.21, AvgLat: 24.5, P50: 18, P99: 96},
		}}},
	}
}

// TestSweepJSONSchemaGolden pins the canonical JSON encoding of every
// sweep result type against a golden file. A diff here means the output
// schema of spinsweep -json (and the spind API, which shares EncodeJSON)
// changed: update the golden with -update AND bump
// internal/serve.ResultVersion so stale cached results are not replayed
// under the new schema.
func TestSweepJSONSchemaGolden(t *testing.T) {
	var got bytes.Buffer
	for _, sp := range schemaSpecimens() {
		fmt.Fprintf(&got, "===== %s =====\n", sp.Name)
		if err := EncodeJSON(&got, sp.V); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
	}
	compareGolden(t, filepath.Join("testdata", "sweep_schema.golden"), got.Bytes())
}

// TestAnalyticSweepGolden pins the full bytes of the two simulation-free
// sweeps (the area model is deterministic arithmetic), so the end-to-end
// Sweep → EncodeJSON path — not just hand-built specimens — is covered.
func TestAnalyticSweepGolden(t *testing.T) {
	var got bytes.Buffer
	for _, fig := range []string{"10", "costs"} {
		v, err := Sweep(context.Background(), fig, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&got, "===== fig %s =====\n", fig)
		if err := EncodeJSON(&got, v); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, filepath.Join("testdata", "analytic_sweeps.golden"), got.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output schema drifted from %s.\nIf intentional: re-run with -update and bump serve.ResultVersion.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSweepRequestNormalization pins the request-side canonical form.
func TestSweepRequestNormalization(t *testing.T) {
	if err := (SweepRequest{Fig: "nope"}).Validate(); err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, id := range SweepIDs() {
		if err := (SweepRequest{Fig: id}).Validate(); err != nil {
			t.Fatalf("%s rejected: %v", id, err)
		}
	}
	// Defaults collapse: explicit defaults and omitted knobs hash alike.
	a := SweepRequest{Fig: "7", Seed: 1}
	b := SweepRequest{Fig: "7", Seed: 1, Cycles: 20000, Warmup: 2000}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("defaults did not collapse:\n  %s\n  %s", a.Canonical(), b.Canonical())
	}
	// All negative warmups mean the same thing.
	c := SweepRequest{Fig: "7", Seed: 1, Warmup: -7}
	d := SweepRequest{Fig: "7", Seed: 1, Warmup: -1}
	if !bytes.Equal(c.Canonical(), d.Canonical()) {
		t.Fatal("negative warmups did not collapse")
	}
	// Distinct requests stay distinct.
	e := SweepRequest{Fig: "7", Seed: 2}
	if bytes.Equal(a.Canonical(), e.Canonical()) {
		t.Fatal("seed not part of the canonical form")
	}
	// Round trip through the strict decoder.
	dec, err := DecodeSweepRequest(bytes.NewReader(a.Canonical()))
	if err != nil {
		t.Fatal(err)
	}
	if dec != a.Normalized() {
		t.Fatalf("round trip changed the request: %+v vs %+v", dec, a.Normalized())
	}
	if _, err := DecodeSweepRequest(bytes.NewReader([]byte(`{"fig":"7","cycels":5}`))); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestSweepOptionsCarrySemantics checks the projection into run options.
func TestSweepOptionsCarrySemantics(t *testing.T) {
	o := SweepRequest{Fig: "7", Seed: 9, Cycles: 500, Full: true, Check: true}.Normalized().Options()
	if o.Cycles != 500 || o.Seed != 9 || o.Small || !o.Check || o.Warmup != 50 {
		t.Fatalf("options = %+v", o)
	}
}
