package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestSweepTelemetryOptIn runs one small figure sweep with telemetry on
// and asserts every point carries a consistent percentile summary and a
// windowed time-series, that the shared JSON encoder exposes them, and
// that the same sweep without telemetry encodes no trace of either (the
// goldens-stay-byte-identical contract, checked structurally here and
// byte-exactly by TestSweepJSONSchemaGolden/TestHotPathGolden).
func TestSweepTelemetryOptIn(t *testing.T) {
	o := small()
	o.Telemetry = true
	o.Epoch = 200
	fig, err := Fig7(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, f := range fig {
		for _, s := range f.Series {
			for _, p := range s.Points {
				points++
				if p.Latency == nil || p.TS == nil {
					t.Fatalf("%s point %+v missing telemetry", s.Label, p)
				}
				if p.Latency.Count <= 0 {
					t.Fatalf("%s: empty latency summary", s.Label)
				}
				if !(p.Latency.P50 <= p.Latency.P95 && p.Latency.P95 <= p.Latency.P99) {
					t.Fatalf("%s: percentiles not monotone: %+v", s.Label, p.Latency)
				}
				if float64(p.Latency.Max) < p.Latency.P99 {
					t.Fatalf("%s: max %d below p99 %g", s.Label, p.Latency.Max, p.Latency.P99)
				}
				if p.TS.Window != 200 || len(p.TS.Samples) == 0 {
					t.Fatalf("%s: bad time-series window=%d samples=%d", s.Label, p.TS.Window, len(p.TS.Samples))
				}
			}
		}
	}
	if points == 0 {
		t.Fatal("sweep produced no points")
	}

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, fig); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50"`, `"p95"`, `"p99"`, `"schema": "spin-timeseries-v1"`, `"link_busy"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("telemetry JSON missing %s", want)
		}
	}

	plain, err := Fig7(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeJSON(&buf, plain); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"Latency", "TS", "p95", "schema"} {
		if strings.Contains(buf.String(), banned) {
			t.Errorf("telemetry-free sweep encoding leaks %q", banned)
		}
	}
}

// TestSweepRequestTelemetryNormalization pins the canonical-form rules:
// epoch without telemetry is scrubbed, telemetry defaults its epoch, and
// the two spellings of the default share one canonical encoding.
func TestSweepRequestTelemetryNormalization(t *testing.T) {
	r := SweepRequest{Fig: "7", Epoch: 500}.Normalized()
	if r.Epoch != 0 {
		t.Errorf("epoch without telemetry kept: %d", r.Epoch)
	}
	a := SweepRequest{Fig: "7", Telemetry: true}.Canonical()
	b := SweepRequest{Fig: "7", Telemetry: true, Epoch: 100}.Canonical()
	if string(a) != string(b) {
		t.Errorf("default-epoch spellings diverge:\n%s\n%s", a, b)
	}
	if err := (SweepRequest{Fig: "7", Epoch: -1}).Validate(); err == nil {
		t.Error("negative epoch accepted")
	}
	if o := (SweepRequest{Fig: "7", Telemetry: true, Epoch: 50}).Options(); !o.Telemetry || o.Epoch != 50 {
		t.Errorf("Options() drops telemetry knobs: %+v", o)
	}
}
