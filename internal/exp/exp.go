// Package exp regenerates every table and figure of the paper's
// evaluation (Section VI). Each Fig*/Table* function runs the relevant
// simulations and returns a structured, printable result; cmd/spinsweep
// and the repository benchmarks are thin wrappers around this package.
//
// The sweeps are embarrassingly parallel — each simulation point is a
// self-contained network instance — so every Fig* function enumerates
// its points as internal/runner jobs. Each point's seed derives from
// Options.Seed and a stable point key (runner.SeedFor), never from sweep
// order, so results are bit-identical at any Options.Workers setting.
//
// Absolute cycle counts default to a fraction of the paper's 100K-cycle
// runs so a full reproduction finishes in minutes; Options.Cycles restores
// the paper's scale. Options.Small swaps the 1024-node dragonfly and 8x8
// mesh for scaled-down instances (useful in CI and benchmarks).
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	spin "repro"
	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	spinimpl "repro/internal/spin"
)

// Options control experiment scale and execution.
type Options struct {
	// Cycles per simulation point (default 20000).
	Cycles int64
	// Warmup cycles before measurement. The rule: zero means "derive" —
	// after Cycles is resolved (whether it was explicit or defaulted),
	// Warmup becomes Cycles/10. A negative value requests a true
	// zero-warmup run; there is no way to express that with 0 because
	// the zero value must keep meaning "use the default".
	Warmup int64
	// Small shrinks topologies: mesh 4x4 and a 256-terminal dragonfly.
	Small bool
	// Seed is the base seed. Each simulation point runs on
	// runner.SeedFor(Seed, pointKey), so two points of one sweep never
	// share a random stream.
	Seed int64
	// Workers bounds concurrently running simulation points (0 =
	// GOMAXPROCS). Worker count never changes results.
	Workers int
	// Shards is the per-simulation shard count handed to the cycle
	// engine (0 or 1 = serial). Like Workers it is an execution knob —
	// the engine is byte-deterministic at any shard count — so it never
	// appears in SweepRequest or the content address.
	Shards int
	// Timeout bounds each simulation job (0 = unlimited).
	Timeout time.Duration
	// Progress, when non-nil, observes each completed simulation job.
	Progress runner.ProgressFunc
	// Check attaches the runtime invariant checker (internal/sim) to
	// every sweep point; any violation fails that point's job. Fig. 3 is
	// exempt: its whole purpose is to drive schemeless networks into
	// deadlock, which the checker would rightly flag.
	Check bool
	// Telemetry attaches the observability layer to every sweep point:
	// each Point gains a latency-percentile summary and an epoch-windowed
	// time-series. Off by default (and omitted from the JSON encoding when
	// off), so existing encodings are byte-identical.
	Telemetry bool
	// Epoch is the time-series window in cycles (default 100 when
	// Telemetry is on).
	Epoch int64
}

func (o Options) withDefaults() Options {
	if o.Cycles == 0 {
		o.Cycles = 20000
	}
	switch {
	case o.Warmup < 0:
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = o.Cycles / 10
	}
	if o.Telemetry && o.Epoch == 0 {
		o.Epoch = 100
	}
	return o
}

// runnerOpts projects the execution knobs for internal/runner.
func (o Options) runnerOpts() runner.Options {
	return runner.Options{Workers: o.Workers, Seed: o.Seed, Timeout: o.Timeout, Progress: o.Progress}
}

// meshSpec and dflySpec resolve topology specs under the Small knob.
func (o Options) meshSpec() string {
	if o.Small {
		return "mesh:4x4"
	}
	return "mesh:8x8"
}

func (o Options) dflySpec() string {
	if o.Small {
		// 256 terminals (power of two for the bit permutations), 64 routers.
		return "dragonfly:4,4,4,16"
	}
	return "dragonfly1024"
}

// Point is one (x, y) sample. When the sweep ran with Options.Telemetry
// the point also carries a latency-percentile summary and the windowed
// time-series; both are nil otherwise, so encodings of telemetry-free
// sweeps are unchanged.
type Point struct {
	X, Y    float64
	Latency *sim.LatencySummary `json:",omitempty"`
	TS      *sim.TimeSeries     `json:",omitempty"`
}

// Series is a labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a set of curves with axis labels, printable as aligned text.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as a table: one x column, one column per
// series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "# y: %s\n", f.YLabel)
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xsorted []float64
	for x := range xs {
		xsorted = append(xsorted, x)
	}
	sort.Float64s(xsorted)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Label)
	}
	b.WriteByte('\n')
	lookup := func(s Series, x float64) (float64, bool) {
		for _, p := range s.Points {
			if p.X == x {
				return p.Y, true
			}
		}
		return 0, false
	}
	for _, x := range xsorted {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, " %20.4g", y)
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pointKey names one simulation point inside a sweep. The key doubles as
// the point's seed-derivation input, so its format is part of the
// reproducibility contract: "<curve key>@<rate>".
func pointKey(curve string, rate float64) string {
	return fmt.Sprintf("%s@%g", curve, rate)
}

// runPoint executes one configuration at one rate and returns the
// simulation for metric extraction. The point's seed derives from
// o.Seed and key; the run is advanced in chunks so ctx cancellation and
// per-job timeouts are honoured promptly.
func runPoint(ctx context.Context, cfg spin.Config, pattern string, rate float64, key string, o Options) (*spin.Simulation, error) {
	cfg.Traffic = pattern
	cfg.Rate = rate
	cfg.Seed = runner.SeedFor(o.Seed, key)
	cfg.Warmup = o.Warmup
	cfg.Shards = o.Shards
	s, err := spin.New(cfg)
	if err != nil {
		return nil, err
	}
	var checker *sim.InvariantChecker
	if o.Check {
		sc := harness.FromConfig(cfg, o.Cycles)
		checker = s.Network().AttachChecker(sc.CheckOptions(s.Network().NumRouters()))
	}
	if o.Telemetry {
		s.Network().AttachTelemetry(sim.TelemetryOptions{Window: o.Epoch, Hist: true})
	}
	if err := runner.Cycles(ctx, s.Run, o.Cycles); err != nil {
		return nil, err
	}
	if checker != nil {
		if err := checker.Err(); err != nil {
			return nil, fmt.Errorf("point %s: %w", key, err)
		}
	}
	return s, nil
}

// latencyCurve sweeps rates and reports (offered rate, avg latency)
// points, stopping after latency explodes past satLatency (the curve's
// vertical asymptote); the last point is still recorded so the knee
// shows. The early exit makes the sweep inherently sequential, so one
// whole curve is the unit of parallelism (one runner job), with
// per-point seeds still derived from the point keys.
func latencyCurve(ctx context.Context, cfg spin.Config, pattern string, rates []float64, satLatency float64, curveKey string, o Options) (Series, error) {
	var s Series
	for _, rate := range rates {
		simn, err := runPoint(ctx, cfg, pattern, rate, pointKey(curveKey, rate), o)
		if err != nil {
			return s, err
		}
		lat := simn.AvgLatency()
		if lat == 0 {
			continue
		}
		pt := Point{X: rate, Y: lat}
		if tele := simn.Network().Telemetry(); tele != nil {
			tele.Flush()
			sum := tele.LatencySummary()
			pt.Latency = &sum
			pt.TS = tele.TimeSeries()
		}
		s.Points = append(s.Points, pt)
		if lat > satLatency {
			break
		}
	}
	return s, nil
}

// defaultRates returns a geometric-ish sweep up to max.
func defaultRates(max float64) []float64 {
	fracs := []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0}
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = f * max
	}
	return out
}

// spinScheme builds a SPIN scheme with defaults for extension experiments
// that construct sim configs directly.
func spinScheme() sim.Scheme { return spinimpl.New(spinimpl.Config{}) }
