package exp

import spin "repro"

// fig67Config names one curve of a latency-vs-injection plot.
type fig67Config struct {
	label  string
	preset string
	vcs    int
}

// Fig6 reproduces the dragonfly latency-vs-injection-rate curves: the
// commercial UGAL + Dally VC ladder baseline against UGAL with free VC
// use under SPIN (3 VCs), and minimal 1-VC routing against FAvORS-NMin
// (both only possible with SPIN).
func Fig6(o Options) (map[string]*Figure, error) {
	o = o.withDefaults()
	configs := []fig67Config{
		{"UGAL_Dally_3VC", "dfly_ugal_ladder", 3},
		{"UGAL_SPIN_3VC", "dfly_ugal_spin", 3},
		{"Min_SPIN_1VC", "dfly_minimal_spin", 1},
		{"FAvORS_NMin_1VC", "dfly_favors_nmin", 1},
	}
	patterns := []string{"uniform_random", "bit_complement", "transpose", "tornado", "neighbor"}
	return latencyFigures("Fig. 6: dragonfly "+o.dflySpec(), o.dflySpec(), configs, patterns, defaultRates(0.5), 400, o)
}

// Fig7 reproduces the 8x8 mesh latency-vs-injection-rate curves: the
// west-first, escape-VC and Static Bubble baselines against minimal
// adaptive with SPIN (multi-VC), and west-first vs FAvORS-Min at 1 VC.
func Fig7(o Options) (map[string]*Figure, error) {
	o = o.withDefaults()
	configs := []fig67Config{
		{"WestFirst_3VC", "mesh_westfirst", 3},
		{"EscapeVC_3VC", "mesh_escape_vc", 3},
		{"StaticBubble_3VC", "mesh_static_bubble", 3},
		{"MinAdaptive_SPIN_3VC", "mesh_min_adaptive_spin", 3},
		{"WestFirst_1VC", "mesh_westfirst", 1},
		{"FAvORS_Min_SPIN_1VC", "mesh_favors_min", 1},
	}
	patterns := []string{"uniform_random", "bit_complement", "bit_reverse", "bit_rotation", "transpose", "tornado"}
	return latencyFigures("Fig. 7: mesh "+o.meshSpec(), o.meshSpec(), configs, patterns, defaultRates(0.6), 300, o)
}

// latencyFigures runs the config × pattern sweep, one Figure per pattern.
func latencyFigures(title, topo string, configs []fig67Config, patterns []string, rates []float64, satLat float64, o Options) (map[string]*Figure, error) {
	out := make(map[string]*Figure, len(patterns))
	for _, pat := range patterns {
		fig := &Figure{
			Title:  title + " — " + pat,
			XLabel: "inj_rate",
			YLabel: "avg packet latency (cycles)",
		}
		for _, c := range configs {
			preset, err := spin.PresetByName(c.preset)
			if err != nil {
				return nil, err
			}
			cfg := preset.Config
			cfg.Topology = topo
			cfg.VCsPerVNet = c.vcs
			series, err := latencyCurve(cfg, pat, rates, satLat, o)
			if err != nil {
				return nil, err
			}
			series.Label = c.label
			fig.Series = append(fig.Series, series)
		}
		out[pat] = fig
	}
	return out, nil
}

// SaturationSummary extracts the saturation throughput of each config for
// one pattern — the quantity behind the paper's "X% higher throughput"
// claims.
func SaturationSummary(topo string, configs []string, vcs []int, pattern string, maxRate float64, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	out := map[string]float64{}
	for i, name := range configs {
		preset, err := spin.PresetByName(name)
		if err != nil {
			return nil, err
		}
		cfg := preset.Config
		cfg.Topology = topo
		if i < len(vcs) && vcs[i] > 0 {
			cfg.VCsPerVNet = vcs[i]
		}
		sat, err := saturation(cfg, pattern, defaultRates(maxRate), o)
		if err != nil {
			return nil, err
		}
		out[name] = sat
	}
	return out, nil
}
