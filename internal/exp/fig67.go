package exp

import (
	"context"
	"fmt"

	spin "repro"
	"repro/internal/runner"
)

// fig67Config names one curve of a latency-vs-injection plot.
type fig67Config struct {
	label  string
	preset string
	vcs    int
}

// Fig6 reproduces the dragonfly latency-vs-injection-rate curves: the
// commercial UGAL + Dally VC ladder baseline against UGAL with free VC
// use under SPIN (3 VCs), and minimal 1-VC routing against FAvORS-NMin
// (both only possible with SPIN).
func Fig6(ctx context.Context, o Options) (Figures, error) {
	o = o.withDefaults()
	configs := []fig67Config{
		{"UGAL_Dally_3VC", "dfly_ugal_ladder", 3},
		{"UGAL_SPIN_3VC", "dfly_ugal_spin", 3},
		{"Min_SPIN_1VC", "dfly_minimal_spin", 1},
		{"FAvORS_NMin_1VC", "dfly_favors_nmin", 1},
	}
	patterns := []string{"uniform_random", "bit_complement", "transpose", "tornado", "neighbor"}
	return latencyFigures(ctx, "Fig. 6: dragonfly "+o.dflySpec(), "fig6", o.dflySpec(), configs, patterns, defaultRates(0.5), 400, o)
}

// Fig7 reproduces the 8x8 mesh latency-vs-injection-rate curves: the
// west-first, escape-VC and Static Bubble baselines against minimal
// adaptive with SPIN (multi-VC), and west-first vs FAvORS-Min at 1 VC.
func Fig7(ctx context.Context, o Options) (Figures, error) {
	o = o.withDefaults()
	configs := []fig67Config{
		{"WestFirst_3VC", "mesh_westfirst", 3},
		{"EscapeVC_3VC", "mesh_escape_vc", 3},
		{"StaticBubble_3VC", "mesh_static_bubble", 3},
		{"MinAdaptive_SPIN_3VC", "mesh_min_adaptive_spin", 3},
		{"WestFirst_1VC", "mesh_westfirst", 1},
		{"FAvORS_Min_SPIN_1VC", "mesh_favors_min", 1},
	}
	patterns := []string{"uniform_random", "bit_complement", "bit_reverse", "bit_rotation", "transpose", "tornado"}
	return latencyFigures(ctx, "Fig. 7: mesh "+o.meshSpec(), "fig7", o.meshSpec(), configs, patterns, defaultRates(0.6), 300, o)
}

// latencyFigures runs the config × pattern sweep, one Figure per pattern.
// Every (config, pattern) curve is one runner job; the figure is
// assembled from the job results in enumeration order, so the output is
// independent of scheduling.
func latencyFigures(ctx context.Context, title, figKey, topo string, configs []fig67Config, patterns []string, rates []float64, satLat float64, o Options) (Figures, error) {
	type slot struct {
		pattern string
		config  fig67Config
	}
	var slots []slot
	var jobs []runner.Job[Series]
	for _, pat := range patterns {
		for _, c := range configs {
			pat, c := pat, c
			preset, err := spin.PresetByName(c.preset)
			if err != nil {
				return nil, err
			}
			cfg := preset.Config
			cfg.Topology = topo
			cfg.VCsPerVNet = c.vcs
			curveKey := fmt.Sprintf("%s/%s/%s", figKey, c.label, pat)
			slots = append(slots, slot{pattern: pat, config: c})
			jobs = append(jobs, runner.Job[Series]{Key: curveKey, Run: func(ctx context.Context, _ int64) (Series, error) {
				series, err := latencyCurve(ctx, cfg, pat, rates, satLat, curveKey, o)
				if err != nil {
					return Series{}, err
				}
				series.Label = c.label
				return series, nil
			}})
		}
	}
	curves, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	out := make(Figures, len(patterns))
	for _, pat := range patterns {
		out[pat] = &Figure{
			Title:  title + " — " + pat,
			XLabel: "inj_rate",
			YLabel: "avg packet latency (cycles)",
		}
	}
	for i, s := range slots {
		out[s.pattern].Series = append(out[s.pattern].Series, curves[i])
	}
	return out, nil
}

// SaturationSummary extracts the saturation throughput of each config for
// one pattern — the quantity behind the paper's "X% higher throughput"
// claims. The sweep has no early exit, so every (config, rate) point is
// its own parallel job; the per-config maximum is folded afterwards.
func SaturationSummary(ctx context.Context, topo string, configs []string, vcs []int, pattern string, maxRate float64, o Options) (map[string]float64, error) {
	o = o.withDefaults()
	rates := defaultRates(maxRate)
	type satPoint struct {
		Name string
		TP   float64
	}
	var jobs []runner.Job[satPoint]
	for i, name := range configs {
		preset, err := spin.PresetByName(name)
		if err != nil {
			return nil, err
		}
		cfg := preset.Config
		cfg.Topology = topo
		if i < len(vcs) && vcs[i] > 0 {
			cfg.VCsPerVNet = vcs[i]
		}
		curveKey := fmt.Sprintf("sat/%s/%s/%s", topo, name, pattern)
		for _, rate := range rates {
			name, cfg, rate := name, cfg, rate
			key := pointKey(curveKey, rate)
			jobs = append(jobs, runner.Job[satPoint]{Key: key, Run: func(ctx context.Context, _ int64) (satPoint, error) {
				simn, err := runPoint(ctx, cfg, pattern, rate, key, o)
				if err != nil {
					return satPoint{}, err
				}
				return satPoint{Name: name, TP: simn.Throughput()}, nil
			}})
		}
	}
	points, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, p := range points {
		if tp, ok := out[p.Name]; !ok || p.TP > tp {
			out[p.Name] = p.TP
		}
	}
	return out, nil
}
