package exp

import (
	"fmt"
	"strings"

	"repro/internal/power"
)

// Fig10Result is the router-area comparison of the deadlock-freedom
// designs, normalised to the west-first baseline (Fig. 10).
type Fig10Result struct {
	Entries []Fig10Entry
}

// Fig10Entry is one design bar.
type Fig10Entry struct {
	Design     string
	Area       float64
	Normalized float64
}

// String renders the result.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 10: router area normalised to West-first (mesh design points)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "design", "area", "vs westfirst")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-22s %12.0f %12.3f\n", e.Design, e.Area, e.Normalized)
	}
	return b.String()
}

// Fig10 evaluates the analytical area model at the paper's design points:
// the west-first router (no scheme hardware), the same router with SPIN's
// modules, the Static Bubble router, and the escape-VC router (one extra
// VC plus escape state).
func Fig10() *Fig10Result {
	t := power.Default()
	base := power.RouterArea(t, power.MeshRouter(1, power.SchemeNone)).Total()
	entries := []Fig10Entry{
		{Design: "westfirst", Area: base},
		{Design: "spin", Area: power.RouterArea(t, power.MeshRouter(1, power.SchemeSPIN)).Total()},
		{Design: "static_bubble", Area: power.RouterArea(t, power.MeshRouter(1, power.SchemeStaticBubble)).Total()},
		{Design: "escape_vc", Area: power.RouterArea(t, power.MeshRouter(2, power.SchemeEscapeVC)).Total()},
	}
	res := &Fig10Result{}
	for _, e := range entries {
		e.Normalized = e.Area / base
		res.Entries = append(res.Entries, e)
	}
	return res
}

// CostSummary reports the headline VC-cost savings (Sec. VI-C/D): 1-VC
// router area and power relative to 2-VC and 3-VC, for mesh and
// dragonfly design points.
type CostSummary struct {
	Rows []CostRow
}

// CostRow is one comparison.
type CostRow struct {
	Topology     string
	AreaSave1v3  float64
	AreaSave1v2  float64
	PowerSave1v3 float64
}

// String renders the summary.
func (c *CostSummary) String() string {
	var b strings.Builder
	b.WriteString("# VC cost: savings of a 1-VC router\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "topology", "area vs 3VC", "area vs 2VC", "power vs 3VC")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-12s %13.0f%% %13.0f%% %13.0f%%\n",
			r.Topology, r.AreaSave1v3*100, r.AreaSave1v2*100, r.PowerSave1v3*100)
	}
	return b.String()
}

// Costs evaluates the headline savings.
func Costs() *CostSummary {
	t := power.Default()
	row := func(label string, mk func(int, power.SchemeKind) power.RouterConfig) CostRow {
		a1 := power.RouterArea(t, mk(1, power.SchemeNone)).Total()
		a2 := power.RouterArea(t, mk(2, power.SchemeNone)).Total()
		a3 := power.RouterArea(t, mk(3, power.SchemeNone)).Total()
		p1 := power.RouterPower(t, mk(1, power.SchemeNone), 0.2)
		p3 := power.RouterPower(t, mk(3, power.SchemeNone), 0.2)
		return CostRow{
			Topology:     label,
			AreaSave1v3:  1 - a1/a3,
			AreaSave1v2:  1 - a1/a2,
			PowerSave1v3: 1 - p1/p3,
		}
	}
	return &CostSummary{Rows: []CostRow{
		row("mesh", power.MeshRouter),
		row("dragonfly", power.DragonflyRouter),
	}}
}
