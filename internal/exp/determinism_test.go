package exp

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	spin "repro"
)

// figJSON canonicalises a figure map for byte-level comparison.
func figJSON(t *testing.T, figs map[string]*Figure) []byte {
	t.Helper()
	b, err := json.Marshal(figs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFig7DeterministicAcrossWorkers is the seeding contract's
// enforcement: the same Options.Seed must produce byte-identical Figure
// data at workers=1, workers=4, and workers=NumCPU.
func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Cycles: 1200, Small: true, Seed: 7}
	o.Workers = 1
	base, err := Fig7(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	want := figJSON(t, base)
	for _, workers := range []int{4, runtime.NumCPU()} {
		o.Workers = workers
		figs, err := Fig7(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got := figJSON(t, figs); string(got) != string(want) {
			t.Fatalf("workers=%d produced different figure data than workers=1", workers)
		}
	}
}

// TestFig7DeterministicAcrossShards is the sharded engine's determinism
// contract: the sweep JSON must be byte-identical whether each
// simulation steps serially or split across 2 or 8 spatial shards,
// independently of the worker-pool size. Run under -race this also
// exercises the compute/commit phase separation for data races.
func TestFig7DeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Cycles: 1200, Small: true, Seed: 7, Workers: 2, Shards: 1}
	base, err := Fig7(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	want := figJSON(t, base)
	for _, shards := range []int{2, 8} {
		o.Shards = shards
		figs, err := Fig7(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got := figJSON(t, figs); string(got) != string(want) {
			t.Fatalf("shards=%d produced different figure data than shards=1", shards)
		}
	}
}

// TestPresetDeterministicAcrossShards extends the shard-determinism
// matrix to the paper-scale presets — the 1024-node dragonfly and the
// 64x64 mesh, the configurations the sharded engine exists for — at
// cycle counts reduced far below a real sweep (their serial runs are
// what the engine amortizes). Byte-identical Stats JSON at 1, 2, and 4
// shards, packets in flight and all.
func TestPresetDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		preset string
		cycles int64
	}{
		{"dfly1024", 300},
		{"mesh64x64", 200},
	}
	for _, tc := range cases {
		t.Run(tc.preset, func(t *testing.T) {
			run := func(shards int) []byte {
				p, err := spin.PresetByName(tc.preset)
				if err != nil {
					t.Fatal(err)
				}
				cfg := p.Config
				cfg.Traffic = "uniform_random"
				cfg.Rate = 0.1
				cfg.Seed = 7
				cfg.TDD = 64
				cfg.Shards = shards
				s, err := spin.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && s.Network().Shards() != shards {
					t.Fatalf("preset clamped to %d shards, want %d", s.Network().Shards(), shards)
				}
				s.Run(tc.cycles)
				b, err := json.Marshal(s.Stats())
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			want := run(1)
			for _, shards := range []int{2, 4} {
				if got := run(shards); string(got) != string(want) {
					t.Errorf("shards=%d stats diverge from serial:\n  1: %s\n  %d: %s",
						shards, want, shards, got)
				}
			}
		})
	}
}

// TestFig3DeterministicAcrossWorkers covers the second sweep shape (the
// onset search, whose jobs derive per-rate sub-seeds internally).
func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Cycles: 1500, Small: true, Seed: 11, Workers: 1}
	base, err := Fig3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	again, err := Fig3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != len(again.Entries) {
		t.Fatal("entry count differs across worker counts")
	}
	for i := range base.Entries {
		if base.Entries[i] != again.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, base.Entries[i], again.Entries[i])
		}
	}
}

// TestSweepCancellation asserts a cancelled context aborts a sweep
// promptly with a context error rather than running it to completion.
func TestSweepCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	// Big enough that a full serial run would take far longer than the
	// cancellation deadline below.
	o := Options{Cycles: 500000, Small: true, Seed: 7, Workers: 2}
	start := time.Now()
	_, err := Fig7(ctx, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSweepTimeout asserts the per-job timeout surfaces as a deadline
// error naming the offending job.
func TestSweepTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Cycles: 500000, Small: true, Seed: 7, Workers: 2, Timeout: 30 * time.Millisecond}
	_, err := Fig8b(context.Background(), o)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
