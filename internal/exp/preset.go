package exp

import (
	"context"
	"fmt"

	spin "repro"
	"repro/internal/runner"
)

// PresetSweep runs the latency-vs-offered-load curve of one named
// Table III preset under a chosen synthetic pattern — the by-name entry
// point behind `spinsweep -preset`, and the convenient way to drive the
// large-scale presets (dfly1024, mesh64x64) through the sharded engine
// without defining a whole figure around them. The curve runs as one
// runner job so -timeout, -progress, and Ctrl-C behave exactly as in
// the figure sweeps, and per-point seeds derive from the same
// "preset/<name>/<pattern>@<rate>" key scheme.
func PresetSweep(ctx context.Context, name, pattern string, maxRate float64, o Options) (*Figure, error) {
	o = o.withDefaults()
	p, err := spin.PresetByName(name)
	if err != nil {
		return nil, err
	}
	if pattern == "" {
		pattern = "uniform_random"
	}
	if maxRate == 0 {
		maxRate = 0.6
	}
	curveKey := fmt.Sprintf("preset/%s/%s", name, pattern)
	job := runner.Job[Series]{Key: curveKey, Run: func(ctx context.Context, _ int64) (Series, error) {
		s, err := latencyCurve(ctx, p.Config, pattern, defaultRates(maxRate), 400, curveKey, o)
		if err != nil {
			return Series{}, err
		}
		s.Label = name
		return s, nil
	}}
	curves, err := runner.Run(ctx, o.runnerOpts(), []runner.Job[Series]{job})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Title:  "Preset " + name + " — " + pattern,
		XLabel: "inj_rate",
		YLabel: "avg packet latency (cycles)",
		Series: curves,
	}, nil
}
