package exp

import (
	"context"
	"strings"
	"testing"
)

// small returns fast options for CI-scale experiment smoke runs.
func small() Options {
	return Options{Cycles: 3000, Warmup: 300, Small: true, Seed: 7}
}

func TestFig3SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig3(context.Background(), Options{Cycles: 4000, Small: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("no entries")
	}
	// Shape: deadlocks require far more than real-application load
	// (~0.01-0.05 flits/node/cycle) whenever they occur at all.
	for _, e := range res.Entries {
		if e.MinRate != 0 && e.MinRate < 0.02 {
			t.Fatalf("%s/%s deadlocks at %.3f — below any plausible onset", e.Topology, e.Pattern, e.MinRate)
		}
	}
	if !strings.Contains(res.String(), "Fig. 3") {
		t.Fatal("missing render header")
	}
}

func TestFig7SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	figs, err := Fig7(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := figs["uniform_random"]
	if !ok {
		t.Fatal("missing uniform_random figure")
	}
	if len(fig.Series) != 6 {
		t.Fatalf("want 6 curves, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Fatalf("curve %s empty", s.Label)
		}
		// Low-load latency must be sane (zero-load on a 4x4 mesh ~10-30).
		if y := s.Points[0].Y; y < 5 || y > 120 {
			t.Fatalf("curve %s low-load latency %.1f out of range", s.Label, y)
		}
	}
	if fig.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := small()
	o.Cycles = 2000
	figs, err := Fig6(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("want 5 patterns, got %d", len(figs))
	}
	for pat, fig := range figs {
		if len(fig.Series) != 4 {
			t.Fatalf("%s: want 4 curves, got %d", pat, len(fig.Series))
		}
	}
}

func TestFig8aSmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := small()
	o.Cycles = 5000
	res, err := Fig8a(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) < 10 {
		t.Fatalf("expected the full PARSEC suite, got %d", len(res.Entries))
	}
	// Shape: the 2-VC SPIN router is cheaper at equal delivered traffic,
	// so normalised EDP should be below ~1 on average (paper: 0.82).
	gm := res.GeoMean()
	if gm <= 0 || gm >= 1.05 {
		t.Fatalf("geomean normalised EDP = %.3f, expected < 1", gm)
	}
}

func TestFig8bSmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig8b(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatal("want 3 load points")
	}
	low, high := res.Entries[0], res.Entries[2]
	if low.Flit >= high.Flit && high.Flit > 0.0 {
		// At low load links are mostly idle.
		t.Fatalf("flit utilisation should grow with load: %.3f -> %.3f", low.Flit, high.Flit)
	}
	if low.Idle < 0.9 {
		t.Fatalf("links should be ~idle at 0.01 load, got idle=%.3f", low.Idle)
	}
	// The paper's key claim: SM utilisation stays below a few percent.
	for i, u := range res.Entries {
		if u.SMAll > 0.05 {
			t.Fatalf("SM link utilisation %.3f at rate %.2f exceeds 5%%", u.SMAll, res.Rates[i])
		}
	}
}

func TestFig9SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig9(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 20 {
		t.Fatalf("want 4 setups x 5 rates = 20 entries, got %d", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.FalsePositives > e.Spins {
			t.Fatalf("false positives (%d) exceed spins (%d)", e.FalsePositives, e.Spins)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10()
	byName := map[string]float64{}
	for _, e := range res.Entries {
		byName[e.Design] = e.Normalized
	}
	if byName["westfirst"] != 1.0 {
		t.Fatal("baseline not normalised to 1")
	}
	if !(byName["spin"] < byName["static_bubble"] && byName["static_bubble"] < byName["escape_vc"]) {
		t.Fatalf("overhead ordering wrong: %+v", byName)
	}
	if byName["spin"] > 1.1 {
		t.Fatalf("SPIN overhead %.3f too large (paper: ~4%%)", byName["spin"])
	}
	if byName["escape_vc"] < 1.4 {
		t.Fatalf("escape-VC overhead %.3f too small (paper: ~2x)", byName["escape_vc"])
	}
}

func TestCosts(t *testing.T) {
	c := Costs()
	if len(c.Rows) != 2 {
		t.Fatal("want mesh + dragonfly rows")
	}
	for _, r := range c.Rows {
		if r.AreaSave1v3 < 0.40 || r.AreaSave1v3 > 0.65 {
			t.Fatalf("%s 1v3 area saving %.2f out of the paper's ballpark", r.Topology, r.AreaSave1v3)
		}
	}
	if c.String() == "" {
		t.Fatal("empty render")
	}
}

func TestTables(t *testing.T) {
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 5 {
		t.Fatalf("Table I should have 5 theories, got %d", len(t1.Rows))
	}
	if len(t1.Notes) != 6 {
		t.Fatalf("Table I should carry 6 CDG verifications, got %d", len(t1.Notes))
	}
	for _, n := range t1.Notes {
		if strings.Contains(n, "MISMATCH") {
			t.Fatalf("CDG verification failed: %s", n)
		}
	}
	t2 := Table2()
	if t2.LoopBufferBitsMesh != 192 {
		t.Fatalf("mesh loop buffer = %d bits, want 192", t2.LoopBufferBitsMesh)
	}
	t3 := Table3()
	if len(t3.Presets) < 8 {
		t.Fatal("Table III presets missing")
	}
	for _, s := range []string{t1.String(), t2.String(), t3.String()} {
		if s == "" {
			t.Fatal("empty table render")
		}
	}
}

func TestTorusExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := small()
	res, err := Torus(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bubble) != len(res.Rates) || len(res.SPIN) != len(res.Rates) {
		t.Fatal("missing points")
	}
	for i := range res.Rates {
		if res.Bubble[i] <= 0 || res.SPIN[i] <= 0 {
			t.Fatalf("zero latency at rate %.2f", res.Rates[i])
		}
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestDeflectionExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Deflection(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deflection) != len(res.Rates) {
		t.Fatal("missing points")
	}
	// Shape: deflections per flit grow with load.
	if res.AvgDeflect[len(res.AvgDeflect)-1] <= res.AvgDeflect[0] {
		t.Fatalf("deflections should grow with load: %v", res.AvgDeflect)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{
		Title:  "t",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Label: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	out := f.String()
	if !strings.Contains(out, "# t") || !strings.Contains(out, "a") || !strings.Contains(out, "-") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Cycles != 20000 || o.Warmup != 2000 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// The warmup rule: zero derives Cycles/10 from the *resolved* cycle
	// count — also when Cycles was set explicitly.
	explicit := Options{Cycles: 50000}.withDefaults()
	if explicit.Warmup != 5000 {
		t.Fatalf("explicit Cycles with zero Warmup should derive Cycles/10, got %d", explicit.Warmup)
	}
	// A negative Warmup is the explicit way to ask for no warmup at all.
	none := Options{Cycles: 50000, Warmup: -1}.withDefaults()
	if none.Warmup != 0 {
		t.Fatalf("negative Warmup should resolve to 0, got %d", none.Warmup)
	}
	if o.meshSpec() != "mesh:8x8" || o.dflySpec() != "dragonfly1024" {
		t.Fatal("full-size specs wrong")
	}
	small := Options{Small: true}.withDefaults()
	if small.meshSpec() != "mesh:4x4" || small.dflySpec() != "dragonfly:4,4,4,16" {
		t.Fatal("small specs wrong")
	}
}

func TestSaturationSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := small()
	o.Cycles = 1500
	sat, err := SaturationSummary(context.Background(), o.meshSpec(), []string{"mesh_westfirst", "mesh_favors_min"}, []int{1, 1}, "transpose", 0.4, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sat) != 2 {
		t.Fatalf("want 2 entries, got %v", sat)
	}
	for name, v := range sat {
		if v <= 0 {
			t.Fatalf("%s: zero saturation", name)
		}
	}
}

func TestAreaModelNote(t *testing.T) {
	if AreaModelNote() == "" {
		t.Fatal("empty note")
	}
}
