package exp

import (
	"fmt"
	"math"
	"strings"

	spin "repro"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Fig8aResult holds the PARSEC network-EDP comparison: minimal adaptive
// with 2 VCs under SPIN versus the escape-VC design with 3 VCs,
// normalised to the escape-VC baseline per benchmark (Fig. 8a).
type Fig8aResult struct {
	Entries []Fig8aEntry
}

// Fig8aEntry is one benchmark bar.
type Fig8aEntry struct {
	Benchmark     string
	NormalizedEDP float64 // SPIN-2VC EDP / EscapeVC-3VC EDP
}

// GeoMean reports the geometric mean of the normalised EDPs.
func (r *Fig8aResult) GeoMean() float64 {
	if len(r.Entries) == 0 {
		return 0
	}
	prod := 1.0
	for _, e := range r.Entries {
		prod *= e.NormalizedEDP
	}
	return math.Pow(prod, 1/float64(len(r.Entries)))
}

// String renders the result.
func (r *Fig8aResult) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 8(a): network EDP, MinAdaptive-2VC-SPIN normalised to EscapeVC-3VC\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-16s %.3f\n", e.Benchmark, e.NormalizedEDP)
	}
	fmt.Fprintf(&b, "%-16s %.3f\n", "geomean", r.GeoMean())
	return b.String()
}

// Fig8a runs each PARSEC profile through both configurations and combines
// activity counters with the power model into network EDP.
func Fig8a(o Options) (*Fig8aResult, error) {
	o = o.withDefaults()
	res := &Fig8aResult{}
	for _, app := range traffic.PARSEC() {
		spinEDP, err := appEDP(app, "min_adaptive", "spin", 2, power.SchemeSPIN, o)
		if err != nil {
			return nil, err
		}
		escEDP, err := appEDP(app, "escape_vc", "", 3, power.SchemeEscapeVC, o)
		if err != nil {
			return nil, err
		}
		if escEDP == 0 {
			continue
		}
		res.Entries = append(res.Entries, Fig8aEntry{Benchmark: app.Name, NormalizedEDP: spinEDP / escEDP})
	}
	return res, nil
}

// appEDP runs one application profile on one router configuration.
func appEDP(app traffic.AppProfile, routing, scheme string, vcs int, pk power.SchemeKind, o Options) (float64, error) {
	cfg := spin.Config{
		Topology:   o.meshSpec(),
		Routing:    routing,
		Scheme:     scheme,
		VNets:      3,
		VCsPerVNet: vcs,
		Seed:       o.Seed,
		Warmup:     o.Warmup,
	}
	s, err := spin.New(cfg)
	if err != nil {
		return 0, err
	}
	topo := s.Topology()
	// Drive the run from the application trace instead of a synthetic
	// pattern.
	s.Network().SetTraffic(&traffic.AppTraffic{Profile: app, Topo: topo})
	s.Run(o.Cycles)
	st := s.Stats()
	rc := power.MeshRouter(3*vcs, pk)
	rc.NumRouters = topo.NumRouters()
	energy := power.NetworkEnergy(power.DefaultTech, rc,
		st.BufferWrites, st.BufferReads, st.XbarTraversals, st.LinkTraversals, st.MeasuredCycles)
	lat := st.AvgLatency()
	if lat == 0 {
		return 0, fmt.Errorf("exp: %s produced no measured traffic", app.Name)
	}
	return power.EDP(energy, lat), nil
}

// Fig8bResult is the link-utilisation breakdown at three load points
// (Fig. 8b): flits, each SM class, idle.
type Fig8bResult struct {
	Rates   []float64
	Entries []sim.LinkUtilisation
}

// String renders the result.
func (r *Fig8bResult) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 8(b): link utilisation, mesh 3VC MinAdaptive+SPIN, uniform random\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %8s %8s\n", "rate", "flit", "probe", "move", "pmove", "kill", "idle")
	for i, rate := range r.Rates {
		u := r.Entries[i]
		fmt.Fprintf(&b, "%-8.2f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			rate, u.Flit, u.SM[0], u.SM[1], u.SM[2], u.SM[3], u.Idle)
	}
	return b.String()
}

// Fig8b measures link-cycle usage at low/medium/high load.
func Fig8b(o Options) (*Fig8bResult, error) {
	o = o.withDefaults()
	res := &Fig8bResult{Rates: []float64{0.01, 0.2, 0.5}}
	for _, rate := range res.Rates {
		s, err := runPoint(spin.Config{
			Topology:   o.meshSpec(),
			Routing:    "min_adaptive",
			Scheme:     "spin",
			VNets:      3,
			VCsPerVNet: 3,
		}, "uniform_random", rate, o)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, s.Network().LinkUtilisation())
	}
	return res, nil
}
